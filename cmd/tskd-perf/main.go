// Command tskd-perf measures the serving hot path end to end: it boots
// an in-process server over a YCSB database, drives it with concurrent
// closed-loop clients over real TCP connections, and reports
// throughput, client-observed latency percentiles, and allocations per
// committed transaction (runtime Mallocs delta across the measured
// load), plus the wire/WAL microbenchmark allocation rates. Optional
// phases add overload (open-loop burst with deadlines), sharded
// scaling, a wire-protocol comparison (ndjson vs binary framing,
// lockstep vs pipelined submission), replication (a durable server
// with WAL shipping off vs async vs sync, quantifying the
// synchronous-ack tail-latency cost), and distributed load generation
// (1 vs N agent subprocesses coordinated over the warp-style control
// protocol).
//
// Results are written as JSON (default BENCH_serve.json) stamped with
// the measuring environment (go version, GOOS/GOARCH, GOMAXPROCS,
// commit). When -prev points at an earlier results file, its "current"
// block is embedded as "previous", so the committed baseline carries
// its own history. -reps N repeats the serve phase and records the raw
// per-rep samples, enabling cmp's confidence-interval rule.
//
// Subcommands:
//
//	tskd-perf                         # measure, write BENCH_serve.json
//	tskd-perf analyze BENCH_serve.json
//	tskd-perf cmp OLD.json NEW.json   # exit 1 on significant regression
//	tskd-perf agent 127.0.0.1:0       # internal: load-agent subprocess
//
// cmp refuses comparisons across incompatible environments (different
// go toolchain or platform) unless -allow-env-mismatch is passed; CI
// passes it deliberately, with loosened thresholds, when gating a PR
// against the committed baseline. The gate itself can be bypassed by
// labeling the PR `perf-override` (see .github/workflows/ci.yml).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"time"

	"tskd/internal/bench"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "analyze":
			os.Exit(analyzeMain(os.Args[2:]))
		case "cmp":
			os.Exit(cmpMain(os.Args[2:]))
		case "agent":
			agentMain(os.Args[2:])
			return
		}
	}
	os.Exit(measureMain(os.Args[1:]))
}

// analyzeMain pretty-prints one results file.
func analyzeMain(args []string) int {
	fs := flag.NewFlagSet("tskd-perf analyze", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tskd-perf analyze <result.json>")
		return 2
	}
	rep, err := bench.ReadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		return 2
	}
	bench.Analyze(os.Stdout, rep)
	return 0
}

// cmpMain diffs two results files and exits 1 when any metric
// regresses beyond the significance rule — the CI gate's teeth.
func cmpMain(args []string) int {
	fs := flag.NewFlagSet("tskd-perf cmp", flag.ExitOnError)
	var (
		tputDrop    = fs.Float64("tput-drop", bench.DefaultThresholds.TputDrop, "relative throughput drop that fails (threshold rule)")
		goodputDrop = fs.Float64("goodput-drop", bench.DefaultThresholds.GoodputDrop, "relative overload-goodput drop that fails")
		p99Grow     = fs.Float64("p99-grow", bench.DefaultThresholds.P99Grow, "relative p99 growth that fails")
		allocsGrow  = fs.Float64("allocs-grow", bench.DefaultThresholds.AllocsGrow, "relative allocs/txn growth that fails")
		noiseFloor  = fs.Float64("noise-floor", 0.02, "minimum relative delta treated as meaningful under the CI-overlap rule")
		allowEnv    = fs.Bool("allow-env-mismatch", false, "compare across incompatible environments anyway (warns instead of refusing)")
	)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tskd-perf cmp [flags] <old.json> <new.json>")
		return 2
	}
	oldRep, err := bench.ReadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		return 2
	}
	newRep, err := bench.ReadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		return 2
	}
	opt := bench.CmpOptions{
		Thresholds: bench.Thresholds{
			TputDrop: *tputDrop, GoodputDrop: *goodputDrop,
			P99Grow: *p99Grow, AllocsGrow: *allocsGrow,
		},
		AllowEnvMismatch: *allowEnv,
		NoiseFloor:       *noiseFloor,
	}
	verdicts, warnings, err := bench.Compare(oldRep, newRep, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		return 2
	}
	fmt.Printf("cmp %s -> %s\n", fs.Arg(0), fs.Arg(1))
	bench.FormatVerdicts(os.Stdout, verdicts, warnings)
	if bench.HasRegression(verdicts) {
		fmt.Println("result: REGRESSION")
		return 1
	}
	fmt.Println("result: ok")
	return 0
}

// agentMain is the subprocess side of the distributed phase: bind a
// control listener, announce it, serve coordinators until killed.
func agentMain(args []string) {
	listen := "127.0.0.1:0"
	if len(args) > 0 {
		listen = args[0]
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", bench.ListenBanner, ln.Addr())
	os.Stdout.Sync()
	logger := log.New(os.Stderr, "tskd-perf agent: ", log.LstdFlags)
	if err := bench.ServeAgent(ln, ln.Addr().String(), logger.Printf); err != nil {
		logger.Printf("listener: %v", err)
		os.Exit(1)
	}
}

func measureMain(args []string) int {
	fs := flag.NewFlagSet("tskd-perf", flag.ExitOnError)
	var (
		clients   = fs.Int("clients", 64, "concurrent closed-loop client connections")
		perClient = fs.Int("per-client", 500, "transactions submitted per client")
		records   = fs.Int("records", 100_000, "YCSB table size")
		theta     = fs.Float64("theta", 0.8, "YCSB zipf skew")
		ops       = fs.Int("ops", 16, "operations per transaction")
		bundle    = fs.Int("bundle", 256, "server bundle size")
		ccName    = fs.String("cc", "OCC", "CC protocol")
		workers   = fs.Int("workers", 4, "engine workers")
		seed      = fs.Int64("seed", 1, "workload seed")
		reps      = fs.Int("reps", 1, "serve-phase repetitions; >1 records per-rep samples for cmp's CI rule")
		overload  = fs.Float64("overload", 2, "overload phase: offered rate as a multiple of measured throughput (0 disables)")
		overDL    = fs.Duration("overload-deadline", 250*time.Millisecond, "deadline stamped on overload-phase submissions")
		overN     = fs.Int("overload-n", 0, "overload-phase submissions (0 = two seconds of offered load)")
		shardN    = fs.Int("shards", 4, "sharded phase: shard count to compare against single-shard (0 disables the phase)")
		shardCli  = fs.Int("shard-clients", 2048, "sharded phase: pipelined in-flight submitters (shared over a 16-conn pool)")
		shardPer  = fs.Int("shard-per-client", 6, "sharded phase: transactions per submitter")
		shardBun  = fs.Int("shard-bundle", 2048, "sharded phase: total admission batch (split per shard in sharded mode)")
		shardRec  = fs.Int("shard-records", 1000, "sharded phase: YCSB table size")
		shardTh   = fs.Float64("shard-theta", 0.99, "sharded phase: YCSB zipf skew")
		wireCli   = fs.Int("wire-clients", 2048, "wire phase: pipelined in-flight submitters (0 disables the phase)")
		wirePer   = fs.Int("wire-per-client", 12, "wire phase: transactions per submitter")
		wireWin   = fs.Int("wire-window", 0, "wire phase: pipelined in-flight window per connection (0 = default)")
		replCli   = fs.Int("replica-clients", 32, "replica phase: concurrent closed-loop clients (0 disables the phase)")
		replPer   = fs.Int("replica-per-client", 250, "replica phase: transactions per client")
		replRec   = fs.Int("replica-records", 20_000, "replica phase: YCSB table size")
		agents    = fs.Int("agents", 0, "distributed phase: agent subprocesses to compare against one (0 disables the phase)")
		agentRate = fs.Float64("agent-rate", 80_000, "distributed phase: aggregate open-loop target rate, txn/s (pinned past the single-process ceiling)")
		agentDur  = fs.Duration("agent-dur", time.Second, "distributed phase: target run length at the target rate")
		out       = fs.String("out", "BENCH_serve.json", "results file to write")
		prev      = fs.String("prev", "", "earlier results file whose 'current' becomes 'previous'")
	)
	fs.Parse(args)

	var previous *bench.Results
	if *prev != "" {
		if old, err := bench.ReadReport(*prev); err == nil {
			previous = &old.Current
		}
	}

	res, err := measureRepeated(*reps, *clients, *perClient, *records, *theta, *ops, *bundle, *ccName, *workers, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		return 1
	}
	res.Micro = measureMicro()

	var over *bench.OverloadResults
	if *overload > 0 && res.ThroughputTxnS > 0 {
		o, err := measureOverload(*records, *theta, *ops, *bundle, *ccName, *workers, *seed,
			*overload, res.ThroughputTxnS, *overDL, *overN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-perf: overload phase:", err)
			return 1
		}
		over = &o
	}

	var sharded *bench.ShardedResults
	if *shardN > 1 {
		sh, err := measureSharded(*shardRec, *shardTh, *ops, *shardBun, *ccName, *workers, *seed,
			*shardN, *shardCli, *shardPer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-perf: sharded phase:", err)
			return 1
		}
		sharded = &sh
	}

	var wireRes *bench.WireResults
	if *wireCli > 0 {
		w, err := measureWire(*ccName, *workers, *seed,
			*wireCli, *wirePer, *wireWin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-perf: wire phase:", err)
			return 1
		}
		wireRes = &w
	}

	var replicaRes *bench.ReplicaResults
	if *replCli > 0 {
		rp, err := measureReplica(*replRec, *theta, *ops, *bundle, *ccName, *workers, *seed, *replCli, *replPer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-perf: replica phase:", err)
			return 1
		}
		replicaRes = &rp
	}

	var distributed *bench.DistributedResults
	if *agents > 1 {
		d, err := measureDistributed(*agents, *records, *theta, *ops, *bundle, *ccName, *workers, *seed,
			*agentRate, *agentDur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-perf: distributed phase:", err)
			return 1
		}
		distributed = &d
	}

	env := bench.CaptureEnv()
	rep := bench.Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Env:         &env,
		Config: map[string]any{
			"clients": *clients, "per_client": *perClient, "records": *records,
			"theta": *theta, "ops_per_txn": *ops, "bundle": *bundle,
			"cc": *ccName, "workers": *workers, "seed": *seed, "reps": *reps,
			"overload": *overload, "overload_deadline_ms": overDL.Milliseconds(),
			"shards": *shardN, "shard_bundle": *shardBun, "shard_records": *shardRec,
			"shard_theta": *shardTh, "shard_clients": *shardCli, "shard_per_client": *shardPer,
			"agents": *agents, "agent_rate": *agentRate,
			"wire_clients": *wireCli, "wire_per_client": *wirePer, "wire_window": *wireWin,
			"wire_records": wireRecords, "wire_theta": wireTheta, "wire_ops": wireOps, "wire_bundle": wireBundle,
			"replica_clients": *replCli, "replica_per_client": *replPer, "replica_records": *replRec,
		},
		Current:     res,
		Overload:    over,
		Sharded:     sharded,
		Distributed: distributed,
		Replica:     replicaRes,
		Wire:        wireRes,
		Previous:    previous,
	}
	b, err := bench.EncodeReport(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		return 1
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		return 1
	}
	bench.Analyze(os.Stdout, rep)
	fmt.Println("wrote", *out)
	return 0
}
