// Command tskd-perf measures the serving hot path end to end: it boots
// an in-process server over a YCSB database, drives it with concurrent
// closed-loop clients over real TCP connections, and reports
// throughput, client-observed latency percentiles, and allocations per
// committed transaction (runtime Mallocs delta across the measured
// load), plus the wire/WAL microbenchmark allocation rates.
//
// Results are written as JSON (default BENCH_serve.json). When -prev
// points at an earlier results file, its "current" block is embedded as
// "previous", so the committed baseline carries its own history:
//
//	tskd-perf -out BENCH_serve.json -prev BENCH_serve.json
//
// The CI bench job runs exactly that (pinned seed) and uploads the
// file; compare runs with any JSON diff.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/metrics"
	"tskd/internal/server"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// Micro is the allocation rate of each wire/WAL micro-operation,
// measured with testing.AllocsPerRun.
type Micro struct {
	WireEncodeAllocs         float64 `json:"wire_encode_allocs_per_op"`
	WireDecodeRequestAllocs  float64 `json:"wire_decode_request_allocs_per_op"`
	WireDecodeResponseAllocs float64 `json:"wire_decode_response_allocs_per_op"`
	WALAppendAllocs          float64 `json:"wal_append_allocs_per_op"`
}

// Results is one measured serve-path run.
type Results struct {
	ThroughputTxnS float64 `json:"throughput_txn_s"`
	P50US          int64   `json:"latency_p50_us"`
	P95US          int64   `json:"latency_p95_us"`
	P99US          int64   `json:"latency_p99_us"`
	AllocsPerTxn   float64 `json:"allocs_per_txn"`
	Committed      uint64  `json:"committed"`
	Submitted      uint64  `json:"submitted"`
	Micro          Micro   `json:"micro"`
}

// OverloadResults is the overload phase: an open-loop burst offered at
// a multiple of the measured closed-loop throughput, every submission
// carrying a deadline. The point is graceful degradation — accepted
// work keeps a bounded p99 while the excess is shed or expired, rather
// than every response drowning in queueing delay.
type OverloadResults struct {
	Multiplier      float64 `json:"multiplier"`
	OfferedRateTxnS float64 `json:"offered_rate_txn_s"`
	DeadlineMS      int64   `json:"deadline_ms"`
	Submitted       uint64  `json:"submitted"`
	Committed       uint64  `json:"committed"`
	Rejected        uint64  `json:"rejected"`
	Shed            uint64  `json:"shed"`
	Expired         uint64  `json:"expired"`
	Other           uint64  `json:"other"`
	Errors          uint64  `json:"errors"`
	GoodputTxnS     float64 `json:"goodput_txn_s"`
	AcceptedP50US   int64   `json:"accepted_latency_p50_us"`
	AcceptedP99US   int64   `json:"accepted_latency_p99_us"`
	ServerShedLevel float64 `json:"server_shed_level"`
	ServerBrownouts uint64  `json:"server_brownout_enters"`
}

// ShardedPoint is one sharded serve-path measurement: a closed-loop
// run against a server with the given shard count, crossFrac of the
// generated transactions spanning two shards (committing via 2PC).
type ShardedPoint struct {
	Shards         int     `json:"shards"`
	CrossFrac      float64 `json:"cross_frac"`
	BundlePerShard int     `json:"bundle_per_shard"`
	ThroughputTxnS float64 `json:"throughput_txn_s"`
	P50US          int64   `json:"latency_p50_us"`
	P99US          int64   `json:"latency_p99_us"`
	Committed      uint64  `json:"committed"`
	Cross2PC       uint64  `json:"cross_2pc_committed"`
}

// ShardedResults is the sharded phase: the same total admission batch
// (-shard-bundle) either scheduled as one bundle on one engine, or
// hash-split by key ownership into N independent per-shard bundles of
// bundle/N. The phase runs its own operating point — a small, highly
// skewed table (-shard-records, -shard-theta) under a deep pipelined
// closed loop — because the win sharding buys on one box is a
// scheduling-cost effect, not core-count parallelism: conflict
// analysis is O(sum over keys of c_k^2) in the per-key access counts,
// so splitting a hot bundle N ways cuts both the bundle width and
// each hot key's accessor count, shrinking the quadratic term ~N^2/N
// = N-fold per transaction. At low skew or narrow bundles the
// partition-invariant per-request cost (wire, parse, respond)
// dominates and the ratio honestly approaches 1x, which is why the
// phase pins the contended configuration rather than inheriting the
// main phase's.
type ShardedResults struct {
	Points  []ShardedPoint `json:"points"`
	Speedup float64        `json:"speedup_sharded_0cross"`
}

// Report is the BENCH_serve.json document.
type Report struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	Config      map[string]any   `json:"config"`
	Current     Results          `json:"current"`
	Overload    *OverloadResults `json:"overload,omitempty"`
	Sharded     *ShardedResults  `json:"sharded,omitempty"`
	Previous    *Results         `json:"previous,omitempty"`
}

func main() {
	var (
		clients   = flag.Int("clients", 64, "concurrent closed-loop client connections")
		perClient = flag.Int("per-client", 500, "transactions submitted per client")
		records   = flag.Int("records", 100_000, "YCSB table size")
		theta     = flag.Float64("theta", 0.8, "YCSB zipf skew")
		ops       = flag.Int("ops", 16, "operations per transaction")
		bundle    = flag.Int("bundle", 256, "server bundle size")
		ccName    = flag.String("cc", "OCC", "CC protocol")
		workers   = flag.Int("workers", 4, "engine workers")
		seed      = flag.Int64("seed", 1, "workload seed")
		overload  = flag.Float64("overload", 2, "overload phase: offered rate as a multiple of measured throughput (0 disables)")
		overDL    = flag.Duration("overload-deadline", 250*time.Millisecond, "deadline stamped on overload-phase submissions")
		overN     = flag.Int("overload-n", 0, "overload-phase submissions (0 = two seconds of offered load)")
		shardN    = flag.Int("shards", 4, "sharded phase: shard count to compare against single-shard (0 disables the phase)")
		shardCli  = flag.Int("shard-clients", 2048, "sharded phase: pipelined in-flight submitters (shared over a 16-conn pool)")
		shardPer  = flag.Int("shard-per-client", 6, "sharded phase: transactions per submitter")
		shardBun  = flag.Int("shard-bundle", 2048, "sharded phase: total admission batch (split per shard in sharded mode)")
		shardRec  = flag.Int("shard-records", 1000, "sharded phase: YCSB table size")
		shardTh   = flag.Float64("shard-theta", 0.99, "sharded phase: YCSB zipf skew")
		out       = flag.String("out", "BENCH_serve.json", "results file to write")
		prev      = flag.String("prev", "", "earlier results file whose 'current' becomes 'previous'")
	)
	flag.Parse()

	var previous *Results
	if *prev != "" {
		if b, err := os.ReadFile(*prev); err == nil {
			var old Report
			if json.Unmarshal(b, &old) == nil {
				previous = &old.Current
			}
		}
	}

	res, err := measure(*clients, *perClient, *records, *theta, *ops, *bundle, *ccName, *workers, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		os.Exit(1)
	}
	res.Micro = measureMicro()

	var over *OverloadResults
	if *overload > 0 && res.ThroughputTxnS > 0 {
		o, err := measureOverload(*records, *theta, *ops, *bundle, *ccName, *workers, *seed,
			*overload, res.ThroughputTxnS, *overDL, *overN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-perf: overload phase:", err)
			os.Exit(1)
		}
		over = &o
	}

	var sharded *ShardedResults
	if *shardN > 1 {
		sh, err := measureSharded(*shardRec, *shardTh, *ops, *shardBun, *ccName, *workers, *seed,
			*shardN, *shardCli, *shardPer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-perf: sharded phase:", err)
			os.Exit(1)
		}
		sharded = &sh
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Config: map[string]any{
			"clients": *clients, "per_client": *perClient, "records": *records,
			"theta": *theta, "ops_per_txn": *ops, "bundle": *bundle,
			"cc": *ccName, "workers": *workers, "seed": *seed,
			"overload": *overload, "overload_deadline_ms": overDL.Milliseconds(),
			"shards": *shardN, "shard_bundle": *shardBun, "shard_records": *shardRec,
			"shard_theta": *shardTh, "shard_clients": *shardCli, "shard_per_client": *shardPer,
		},
		Current:  res,
		Overload: over,
		Sharded:  sharded,
		Previous: previous,
	}
	b, _ := json.MarshalIndent(rep, "", "  ")
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-perf:", err)
		os.Exit(1)
	}
	fmt.Printf("serve path: %.0f txn/s, p50=%dus p95=%dus p99=%dus, %.1f allocs/txn (%d/%d committed)\n",
		res.ThroughputTxnS, res.P50US, res.P95US, res.P99US, res.AllocsPerTxn, res.Committed, res.Submitted)
	fmt.Printf("micro allocs/op: encode=%.1f decode-req=%.1f decode-resp=%.1f wal-append=%.1f\n",
		res.Micro.WireEncodeAllocs, res.Micro.WireDecodeRequestAllocs,
		res.Micro.WireDecodeResponseAllocs, res.Micro.WALAppendAllocs)
	if over != nil {
		fmt.Printf("overload %.1fx (%.0f txn/s offered, %dms deadline): goodput=%.0f txn/s, accepted p99=%dus, shed=%d expired=%d rejected=%d (level=%.2f brownouts=%d)\n",
			over.Multiplier, over.OfferedRateTxnS, over.DeadlineMS, over.GoodputTxnS,
			over.AcceptedP99US, over.Shed, over.Expired, over.Rejected,
			over.ServerShedLevel, over.ServerBrownouts)
	}
	if sharded != nil {
		for _, p := range sharded.Points {
			fmt.Printf("sharded %d@%.0f%%: %.0f txn/s (p50=%dus p99=%dus, %d via 2PC)\n",
				p.Shards, 100*p.CrossFrac, p.ThroughputTxnS, p.P50US, p.P99US, p.Cross2PC)
		}
		fmt.Printf("sharded speedup at 0%% cross: %.2fx\n", sharded.Speedup)
	}
	fmt.Println("wrote", *out)
}

// measureSharded runs the sharded phase: single-shard baseline, then
// N shards at 0%% and 10%% cross-shard, all over the same generated
// workload shapes and the same total admission batch (-shard-bundle,
// split per shard in sharded mode).
func measureSharded(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, shards, clients, perClient int) (ShardedResults, error) {
	var out ShardedResults
	cases := []struct {
		shards    int
		crossFrac float64
	}{{1, 0}, {shards, 0}, {shards, 0.10}}
	for _, c := range cases {
		p, err := measureShardedPoint(records, theta, ops, bundle, ccName, workers, seed,
			c.shards, c.crossFrac, clients, perClient)
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, p)
	}
	if base := out.Points[0].ThroughputTxnS; base > 0 {
		out.Speedup = out.Points[1].ThroughputTxnS / base
	}
	return out, nil
}

// measureShardedPoint boots one server (sharded when shards > 1,
// the ordinary single-pipeline one otherwise) and drives a closed
// loop whose key footprints are confined by shard.Confine: crossFrac
// of the transactions span two shards, the rest stay on one.
func measureShardedPoint(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, shards int, crossFrac float64, clients, perClient int) (ShardedPoint, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	perShardBundle := bundle
	cfg := server.Config{
		Addr:          "127.0.0.1:0",
		FlushInterval: 2 * time.Millisecond,
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
	}
	if shards > 1 {
		perShardBundle = bundle / shards
		if perShardBundle < 1 {
			perShardBundle = 1
		}
		cfg.Shards = shards
		cfg.ShardDB = func(int) *storage.DB { return gen.BuildDB() }
	} else {
		cfg.DB = gen.BuildDB()
	}
	cfg.Bundle = perShardBundle
	s, err := server.New(cfg)
	if err != nil {
		return ShardedPoint{}, err
	}
	if err := s.Start(); err != nil {
		return ShardedPoint{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// Pipelined closed loop: `clients` submitter goroutines share a
	// small connection pool, so a thousand-plus transactions stay in
	// flight over a handful of sockets and the admission queue — and
	// therefore the bundles — actually fill to the configured size.
	// One socket per submitter would hit fd limits long before the
	// bundle width that makes the scheduling term measurable.
	const nconns = 16
	pool := make([]*client.Conn, nconns)
	for i := range pool {
		c, err := client.Dial(s.Addr())
		if err != nil {
			return ShardedPoint{}, err
		}
		defer c.Close()
		pool[i] = c
	}
	load := func(record bool) (uint64, *metrics.Histogram, error) {
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			werr      error
			merged    metrics.Histogram
			committed uint64
		)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				g := gen
				g.Txns = perClient
				g.Seed = seed + int64(ci)*101
				w := g.Generate()
				shard.Confine(w, shards, crossFrac, uint64(records), g.Seed)
				conn := pool[ci%nconns]
				var n uint64
				var h metrics.Histogram
				for _, tx := range w {
					req, err := client.NewRequest(0, tx)
					if err != nil {
						mu.Lock()
						werr = err
						mu.Unlock()
						return
					}
					for {
						t0 := time.Now()
						resp, err := conn.Submit(context.Background(), req)
						if err != nil {
							mu.Lock()
							werr = err
							mu.Unlock()
							return
						}
						if resp.Status == client.StatusRejected {
							time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
							continue
						}
						if record {
							h.Record(time.Since(t0))
						}
						if resp.Committed() {
							n++
						}
						break
					}
				}
				mu.Lock()
				committed += n
				merged.Merge(&h)
				mu.Unlock()
			}(ci)
		}
		wg.Wait()
		return committed, &merged, werr
	}

	if _, _, err := load(false); err != nil { // warm-up
		return ShardedPoint{}, err
	}
	t0 := time.Now()
	committed, lat, err := load(true)
	elapsed := time.Since(t0)
	if err != nil {
		return ShardedPoint{}, err
	}
	p := ShardedPoint{
		Shards:         shards,
		CrossFrac:      crossFrac,
		BundlePerShard: perShardBundle,
		ThroughputTxnS: float64(committed) / elapsed.Seconds(),
		P50US:          lat.Quantile(0.50).Microseconds(),
		P99US:          lat.Quantile(0.99).Microseconds(),
		Committed:      committed,
	}
	st := s.Stats()
	if st.TwoPC != nil {
		p.Cross2PC = st.TwoPC.Committed
	}
	return p, nil
}

func measure(clients, perClient, records int, theta float64, ops, bundle int, ccName string, workers int, seed int64) (Results, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	db := gen.BuildDB()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        bundle,
		FlushInterval: 2 * time.Millisecond,
		DB:            db,
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
	})
	if err != nil {
		return Results{}, err
	}
	if err := s.Start(); err != nil {
		return Results{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	load := func(record bool) (committed uint64, lat *metrics.Histogram, err error) {
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			werr   error
			merged metrics.Histogram
		)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				g := gen
				g.Txns = perClient
				g.Seed = seed + int64(ci)
				w := g.Generate()
				conn, err := client.Dial(s.Addr())
				if err != nil {
					mu.Lock()
					werr = err
					mu.Unlock()
					return
				}
				defer conn.Close()
				var n uint64
				var h metrics.Histogram
				for _, tx := range w {
					req, err := client.NewRequest(0, tx)
					if err != nil {
						mu.Lock()
						werr = err
						mu.Unlock()
						return
					}
					for {
						t0 := time.Now()
						resp, err := conn.Submit(context.Background(), req)
						if err != nil {
							mu.Lock()
							werr = err
							mu.Unlock()
							return
						}
						if resp.Status == client.StatusRejected {
							time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
							continue
						}
						if record {
							h.Record(time.Since(t0))
						}
						if resp.Committed() {
							n++
						}
						break
					}
				}
				mu.Lock()
				committed += n
				merged.Merge(&h)
				mu.Unlock()
			}(ci)
		}
		wg.Wait()
		return committed, &merged, werr
	}

	if _, _, err := load(false); err != nil { // warm pools, connections, JIT-ish caches
		return Results{}, err
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	committed, lat, err := load(true)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Results{}, err
	}
	total := uint64(clients * perClient)
	return Results{
		ThroughputTxnS: float64(committed) / elapsed.Seconds(),
		P50US:          lat.Quantile(0.50).Microseconds(),
		P95US:          lat.Quantile(0.95).Microseconds(),
		P99US:          lat.Quantile(0.99).Microseconds(),
		AllocsPerTxn:   float64(m1.Mallocs-m0.Mallocs) / float64(total),
		Committed:      committed,
		Submitted:      total,
	}, nil
}

// measureOverload boots a fresh server and offers an open-loop burst
// at multiplier × the measured closed-loop throughput, every
// submission stamped with the deadline. Arrivals fire on schedule
// regardless of outstanding responses — the honest overload model —
// and rejections, sheds and expiries are recorded, not retried.
func measureOverload(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, multiplier, baseRate float64, deadline time.Duration, n int) (OverloadResults, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	db := gen.BuildDB()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        bundle,
		FlushInterval: 2 * time.Millisecond,
		DB:            db,
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
	})
	if err != nil {
		return OverloadResults{}, err
	}
	if err := s.Start(); err != nil {
		return OverloadResults{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	rate := multiplier * baseRate
	if n <= 0 {
		n = int(rate * 2) // two seconds of offered load
	}
	if n < 2000 {
		n = 2000
	}
	if n > 100_000 {
		n = 100_000
	}
	g := gen
	g.Txns = n
	g.Seed = seed + 424243
	w := g.Generate()
	reqs := make([]client.Request, len(w))
	dlMS := deadline.Milliseconds()
	if dlMS < 1 {
		dlMS = 1
	}
	for i, tx := range w {
		req, err := client.NewRequest(0, tx)
		if err != nil {
			return OverloadResults{}, err
		}
		req.DeadlineMS = dlMS
		reqs[i] = req
	}

	const nconns = 16
	pool := make([]*client.Conn, nconns)
	for i := range pool {
		c, err := client.Dial(s.Addr())
		if err != nil {
			return OverloadResults{}, err
		}
		defer c.Close()
		pool[i] = c
	}

	var (
		mu       sync.Mutex
		res      OverloadResults
		accepted metrics.Histogram
		wg       sync.WaitGroup
	)
	mean := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	next := start
	for i := range reqs {
		next = next.Add(mean)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		conn := pool[i%nconns]
		wg.Add(1)
		go func(req client.Request) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), deadline*4+10*time.Second)
			t0 := time.Now()
			resp, err := conn.Submit(ctx, req)
			e2e := time.Since(t0)
			cancel()
			mu.Lock()
			defer mu.Unlock()
			res.Submitted++
			if err != nil {
				res.Errors++
				return
			}
			switch resp.Status {
			case client.StatusCommit:
				res.Committed++
				accepted.Record(e2e)
			case client.StatusRejected:
				res.Rejected++
			case client.StatusShed:
				res.Shed++
			case client.StatusExpired:
				res.Expired++
			default:
				res.Other++
			}
		}(reqs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := s.Stats()
	res.Multiplier = multiplier
	res.OfferedRateTxnS = rate
	res.DeadlineMS = dlMS
	if elapsed > 0 {
		res.GoodputTxnS = float64(res.Committed) / elapsed.Seconds()
	}
	res.AcceptedP50US = accepted.Quantile(0.50).Microseconds()
	res.AcceptedP99US = accepted.Quantile(0.99).Microseconds()
	res.ServerShedLevel = st.ShedLevel
	res.ServerBrownouts = st.BrownoutEnters
	return res, nil
}

func measureMicro() Micro {
	req := client.Request{
		Seq: 123456, Template: "ycsb",
		Params: []uint64{17, 4242, 99, 100000, 7, 8, 9, 10},
		Ops:    "R[x17]U[x4242]R[x99]W[x100000]R[x7]R[x8]U[x9]W[x10]",
	}
	resp := client.Response{Seq: 123456, Status: client.StatusCommit, Retries: 2, QueueUS: 1500, ExecUS: 870, Bundle: 42}
	var buf []byte
	enc := testing.AllocsPerRun(2000, func() {
		buf = client.AppendResponse(buf[:0], &resp)
	})
	reqLine := client.AppendRequest(nil, &req)
	reqLine = reqLine[:len(reqLine)-1]
	var dreq client.Request
	dr := testing.AllocsPerRun(2000, func() {
		if err := client.DecodeRequest(reqLine, &dreq); err != nil {
			panic(err)
		}
	})
	respLine := client.AppendResponse(nil, &resp)
	respLine = respLine[:len(respLine)-1]
	var dresp client.Response
	dp := testing.AllocsPerRun(2000, func() {
		if err := client.DecodeResponse(respLine, &dresp); err != nil {
			panic(err)
		}
	})
	l := wal.New(io.Discard, 0)
	rec := wal.Record{TxnID: 7, Writes: []wal.Update{
		{Key: 1, Ver: 10, Fields: []uint64{1, 2, 3, 4}},
		{Key: 2, Ver: 11, Fields: []uint64{5, 6, 7, 8}},
	}}
	wa := testing.AllocsPerRun(2000, func() {
		if err := l.Append(rec); err != nil {
			panic(err)
		}
	})
	return Micro{
		WireEncodeAllocs:         enc,
		WireDecodeRequestAllocs:  dr,
		WireDecodeResponseAllocs: dp,
		WALAppendAllocs:          wa,
	}
}
