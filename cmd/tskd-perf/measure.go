package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"tskd/internal/bench"
	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/metrics"
	"tskd/internal/replica"
	"tskd/internal/server"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// measureSharded runs the sharded phase: single-shard baseline, then
// N shards at 0%% and 10%% cross-shard, all over the same generated
// workload shapes and the same total admission batch (-shard-bundle,
// split per shard in sharded mode). The phase runs its own operating
// point — a small, highly skewed table under a deep pipelined closed
// loop — because the win sharding buys on one box is a scheduling-cost
// effect, not core-count parallelism: conflict analysis is
// O(sum over keys of c_k^2) in the per-key access counts, so splitting
// a hot bundle N ways cuts both the bundle width and each hot key's
// accessor count, shrinking the quadratic term N-fold per transaction.
func measureSharded(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, shards, clients, perClient int) (bench.ShardedResults, error) {
	var out bench.ShardedResults
	cases := []struct {
		shards    int
		crossFrac float64
	}{{1, 0}, {shards, 0}, {shards, 0.10}}
	for _, c := range cases {
		p, err := measureShardedPoint(records, theta, ops, bundle, ccName, workers, seed,
			c.shards, c.crossFrac, clients, perClient)
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, p)
	}
	if base := out.Points[0].ThroughputTxnS; base > 0 {
		out.Speedup = out.Points[1].ThroughputTxnS / base
	}
	return out, nil
}

// measureShardedPoint boots one server (sharded when shards > 1,
// the ordinary single-pipeline one otherwise) and drives a closed
// loop whose key footprints are confined by shard.Confine: crossFrac
// of the transactions span two shards, the rest stay on one.
func measureShardedPoint(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, shards int, crossFrac float64, clients, perClient int) (bench.ShardedPoint, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	perShardBundle := bundle
	cfg := server.Config{
		Addr:          "127.0.0.1:0",
		FlushInterval: 2 * time.Millisecond,
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
	}
	if shards > 1 {
		perShardBundle = bundle / shards
		if perShardBundle < 1 {
			perShardBundle = 1
		}
		cfg.Shards = shards
		cfg.ShardDB = func(int) *storage.DB { return gen.BuildDB() }
	} else {
		cfg.DB = gen.BuildDB()
	}
	cfg.Bundle = perShardBundle
	s, err := server.New(cfg)
	if err != nil {
		return bench.ShardedPoint{}, err
	}
	if err := s.Start(); err != nil {
		return bench.ShardedPoint{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// Pipelined closed loop: `clients` submitter goroutines share a
	// small connection pool, so a thousand-plus transactions stay in
	// flight over a handful of sockets and the admission queue — and
	// therefore the bundles — actually fill to the configured size.
	// One socket per submitter would hit fd limits long before the
	// bundle width that makes the scheduling term measurable.
	const nconns = 16
	pool := make([]*client.Conn, nconns)
	for i := range pool {
		c, err := client.Dial(s.Addr())
		if err != nil {
			return bench.ShardedPoint{}, err
		}
		defer c.Close()
		pool[i] = c
	}
	load := func(record bool) (uint64, *metrics.Histogram, error) {
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			werr      error
			merged    metrics.Histogram
			committed uint64
		)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				g := gen
				g.Txns = perClient
				g.Seed = seed + int64(ci)*101
				w := g.Generate()
				shard.Confine(w, shards, crossFrac, uint64(records), g.Seed)
				conn := pool[ci%nconns]
				var n uint64
				var h metrics.Histogram
				for _, tx := range w {
					req, err := client.NewRequest(0, tx)
					if err != nil {
						mu.Lock()
						werr = err
						mu.Unlock()
						return
					}
					for {
						t0 := time.Now()
						resp, err := conn.Submit(context.Background(), req)
						if err != nil {
							mu.Lock()
							werr = err
							mu.Unlock()
							return
						}
						if resp.Status == client.StatusRejected {
							time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
							continue
						}
						if record {
							h.Record(time.Since(t0))
						}
						if resp.Committed() {
							n++
						}
						break
					}
				}
				mu.Lock()
				committed += n
				merged.Merge(&h)
				mu.Unlock()
			}(ci)
		}
		wg.Wait()
		return committed, &merged, werr
	}

	if _, _, err := load(false); err != nil { // warm-up
		return bench.ShardedPoint{}, err
	}
	t0 := time.Now()
	committed, lat, err := load(true)
	elapsed := time.Since(t0)
	if err != nil {
		return bench.ShardedPoint{}, err
	}
	p := bench.ShardedPoint{
		Shards:         shards,
		CrossFrac:      crossFrac,
		BundlePerShard: perShardBundle,
		ThroughputTxnS: float64(committed) / elapsed.Seconds(),
		P50US:          lat.Quantile(0.50).Microseconds(),
		P99US:          lat.Quantile(0.99).Microseconds(),
		Committed:      committed,
	}
	st := s.Stats()
	if st.TwoPC != nil {
		p.Cross2PC = st.TwoPC.Committed
	}
	return p, nil
}

func measure(clients, perClient, records int, theta float64, ops, bundle int, ccName string, workers int, seed int64) (bench.Results, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	db := gen.BuildDB()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        bundle,
		FlushInterval: 2 * time.Millisecond,
		DB:            db,
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
	})
	if err != nil {
		return bench.Results{}, err
	}
	if err := s.Start(); err != nil {
		return bench.Results{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	load := func(record bool) (committed uint64, lat *metrics.Histogram, err error) {
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			werr   error
			merged metrics.Histogram
		)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				g := gen
				g.Txns = perClient
				g.Seed = seed + int64(ci)
				w := g.Generate()
				conn, err := client.Dial(s.Addr())
				if err != nil {
					mu.Lock()
					werr = err
					mu.Unlock()
					return
				}
				defer conn.Close()
				var n uint64
				var h metrics.Histogram
				for _, tx := range w {
					req, err := client.NewRequest(0, tx)
					if err != nil {
						mu.Lock()
						werr = err
						mu.Unlock()
						return
					}
					for {
						t0 := time.Now()
						resp, err := conn.Submit(context.Background(), req)
						if err != nil {
							mu.Lock()
							werr = err
							mu.Unlock()
							return
						}
						if resp.Status == client.StatusRejected {
							time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
							continue
						}
						if record {
							h.Record(time.Since(t0))
						}
						if resp.Committed() {
							n++
						}
						break
					}
				}
				mu.Lock()
				committed += n
				merged.Merge(&h)
				mu.Unlock()
			}(ci)
		}
		wg.Wait()
		return committed, &merged, werr
	}

	if _, _, err := load(false); err != nil { // warm pools, connections, JIT-ish caches
		return bench.Results{}, err
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	committed, lat, err := load(true)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return bench.Results{}, err
	}
	total := uint64(clients * perClient)
	return bench.Results{
		ThroughputTxnS: float64(committed) / elapsed.Seconds(),
		P50US:          lat.Quantile(0.50).Microseconds(),
		P95US:          lat.Quantile(0.95).Microseconds(),
		P99US:          lat.Quantile(0.99).Microseconds(),
		AllocsPerTxn:   float64(m1.Mallocs-m0.Mallocs) / float64(total),
		Committed:      committed,
		Submitted:      total,
	}, nil
}

// measureRepeated runs the serve-path measurement -reps times and
// returns the per-rep samples plus a Results whose headline numbers are
// sample means. The samples feed cmp's confidence-interval rule, which
// beats a blunt fixed threshold whenever both sides carry them.
func measureRepeated(reps, clients, perClient, records int, theta float64, ops, bundle int, ccName string, workers int, seed int64) (bench.Results, error) {
	if reps < 1 {
		reps = 1
	}
	var (
		res     bench.Results
		samples bench.Samples
	)
	for r := 0; r < reps; r++ {
		one, err := measure(clients, perClient, records, theta, ops, bundle, ccName, workers, seed)
		if err != nil {
			return bench.Results{}, err
		}
		if r == 0 {
			res = one
		}
		samples.ThroughputTxnS = append(samples.ThroughputTxnS, one.ThroughputTxnS)
		samples.P99US = append(samples.P99US, float64(one.P99US))
		samples.AllocsPerTxn = append(samples.AllocsPerTxn, one.AllocsPerTxn)
		if reps > 1 {
			fmt.Fprintf(os.Stderr, "tskd-perf: rep %d/%d: %.0f txn/s p99=%dus allocs/txn=%.1f\n",
				r+1, reps, one.ThroughputTxnS, one.P99US, one.AllocsPerTxn)
		}
	}
	if reps > 1 {
		res.ThroughputTxnS = mean(samples.ThroughputTxnS)
		res.P99US = int64(mean(samples.P99US))
		res.AllocsPerTxn = mean(samples.AllocsPerTxn)
		res.Samples = &samples
	}
	return res, nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// measureOverload boots a fresh server and offers an open-loop burst
// at multiplier × the measured closed-loop throughput, every
// submission stamped with the deadline. Arrivals fire on schedule
// regardless of outstanding responses — the honest overload model —
// and rejections, sheds and expiries are recorded, not retried.
func measureOverload(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, multiplier, baseRate float64, deadline time.Duration, n int) (bench.OverloadResults, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	db := gen.BuildDB()
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        bundle,
		FlushInterval: 2 * time.Millisecond,
		DB:            db,
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
	})
	if err != nil {
		return bench.OverloadResults{}, err
	}
	if err := s.Start(); err != nil {
		return bench.OverloadResults{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	rate := multiplier * baseRate
	if n <= 0 {
		n = int(rate * 2) // two seconds of offered load
	}
	if n < 2000 {
		n = 2000
	}
	if n > 100_000 {
		n = 100_000
	}
	g := gen
	g.Txns = n
	g.Seed = seed + 424243
	w := g.Generate()
	reqs := make([]client.Request, len(w))
	dlMS := deadline.Milliseconds()
	if dlMS < 1 {
		dlMS = 1
	}
	for i, tx := range w {
		req, err := client.NewRequest(0, tx)
		if err != nil {
			return bench.OverloadResults{}, err
		}
		req.DeadlineMS = dlMS
		reqs[i] = req
	}

	const nconns = 16
	pool := make([]*client.Conn, nconns)
	for i := range pool {
		c, err := client.Dial(s.Addr())
		if err != nil {
			return bench.OverloadResults{}, err
		}
		defer c.Close()
		pool[i] = c
	}

	var (
		mu       sync.Mutex
		res      bench.OverloadResults
		accepted metrics.Histogram
		wg       sync.WaitGroup
	)
	mean := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	next := start
	for i := range reqs {
		next = next.Add(mean)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		conn := pool[i%nconns]
		wg.Add(1)
		go func(req client.Request) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), deadline*4+10*time.Second)
			t0 := time.Now()
			resp, err := conn.Submit(ctx, req)
			e2e := time.Since(t0)
			cancel()
			mu.Lock()
			defer mu.Unlock()
			res.Submitted++
			if err != nil {
				res.Errors++
				return
			}
			switch resp.Status {
			case client.StatusCommit:
				res.Committed++
				accepted.Record(e2e)
			case client.StatusRejected:
				res.Rejected++
			case client.StatusShed:
				res.Shed++
			case client.StatusExpired:
				res.Expired++
			default:
				res.Other++
			}
		}(reqs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := s.Stats()
	res.Multiplier = multiplier
	res.OfferedRateTxnS = rate
	res.DeadlineMS = dlMS
	if elapsed > 0 {
		res.GoodputTxnS = float64(res.Committed) / elapsed.Seconds()
	}
	res.AcceptedP50US = accepted.Quantile(0.50).Microseconds()
	res.AcceptedP99US = accepted.Quantile(0.99).Microseconds()
	res.ServerShedLevel = st.ShedLevel
	res.ServerBrownouts = st.BrownoutEnters
	return res, nil
}

// measureDistributed runs the distributed load phase: the same
// aggregate open-loop target rate offered by 1 agent subprocess, then
// by nAgents of them, against a fresh sharded server each time. The
// measured quantity is the offered rate the fleet actually achieved —
// on a loaded box a single dispatcher process tops out well short of
// the target (one runtime, one timer wheel, one fair-share CPU slice),
// which is the single-process ceiling distributed generation exists to
// break. Percentiles in each point come from the merged population.
func measureDistributed(nAgents, records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, targetRate float64, runFor time.Duration) (bench.DistributedResults, error) {
	self, err := os.Executable()
	if err != nil {
		return bench.DistributedResults{}, err
	}
	var out bench.DistributedResults
	for _, fleet := range []int{1, nAgents} {
		p, err := distributedPoint(self, fleet, records, theta, ops, bundle, ccName, workers, seed, targetRate, runFor)
		if err != nil {
			return bench.DistributedResults{}, err
		}
		out.Points = append(out.Points, p)
		fmt.Fprintf(os.Stderr, "tskd-perf: distributed %d agent(s): offered %.0f/%.0f txn/s\n",
			fleet, p.OfferedRateTxnS, p.TargetRateTxnS)
	}
	if single := out.Points[0].OfferedRateTxnS; single > 0 {
		out.OfferedGain = out.Points[len(out.Points)-1].OfferedRateTxnS / single
	}
	return out, nil
}

func distributedPoint(self string, fleet, records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, targetRate float64, runFor time.Duration) (bench.DistributedPoint, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	const shards = 4
	perShard := bundle / shards
	if perShard < 1 {
		perShard = 1
	}
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        perShard,
		FlushInterval: 2 * time.Millisecond,
		Shards:        shards,
		ShardDB:       func(int) *storage.DB { return gen.BuildDB() },
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
	})
	if err != nil {
		return bench.DistributedPoint{}, err
	}
	if err := s.Start(); err != nil {
		return bench.DistributedPoint{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	n := int(targetRate * runFor.Seconds())
	if n < 1000 {
		n = 1000
	}
	spec := bench.Spec{
		Addr: s.Addr(), Mode: "open", Arrival: "poisson",
		Conns: 4 * fleet, Rate: targetRate, N: n,
		TimeoutMS: 10_000,
		Records:   records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true,
		Seed:   seed,
		Shards: shards,
		// Deadlines keep the overloaded server shedding instead of
		// queueing without bound, so the run length stays arrival-bound.
		DeadlineMS: 250,
	}
	agents, stop, err := bench.SpawnLocalAgents(fleet, self, "agent", "127.0.0.1:0")
	if err != nil {
		return bench.DistributedPoint{}, err
	}
	defer stop()
	results, err := bench.Coordinate(agents, spec.Split(fleet), 500*time.Millisecond, 10*time.Minute)
	if err != nil {
		return bench.DistributedPoint{}, err
	}
	sum, err := bench.Merge(results)
	if err != nil {
		return bench.DistributedPoint{}, err
	}
	p := bench.DistributedPoint{
		Agents:         fleet,
		TargetRateTxnS: targetRate,
		GoodputTxnS:    sum.GoodputTxnS,
		P50US:          sum.P50US,
		P99US:          sum.P99US,
		P999US:         sum.P999US,
		Sent:           sum.Counts.Sent,
		Committed:      sum.Counts.Committed,
		Rejected:       sum.Counts.Rejected,
		Shed:           sum.Counts.Shed,
		Expired:        sum.Counts.Expired,
		Errors:         sum.Counts.Errors,
	}
	if sum.ElapsedS > 0 {
		p.OfferedRateTxnS = float64(sum.Counts.Sent) / sum.ElapsedS
	}
	return p, nil
}

// measureReplica runs the replication phase: the same closed-loop
// load against a durable server with replication off, shipping
// asynchronously, and shipping synchronously (client ack waits for
// the backup flush) to an in-process backup over loopback TCP. All
// three points run with NoSync on both sides so the numbers isolate
// the shipping protocol's overhead — the framing, the extra loopback
// round trip, and (sync only) the ack wait on the flush path — rather
// than the disk's fsync latency, which would dominate and vary by
// box. The headline is the sync point's p99 relative to off.
func measureReplica(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, clients, perClient int) (bench.ReplicaResults, error) {
	var out bench.ReplicaResults
	for _, mode := range []string{"off", "async", "sync"} {
		p, err := measureReplicaPoint(records, theta, ops, bundle, ccName, workers, seed, clients, perClient, mode)
		if err != nil {
			return out, fmt.Errorf("mode %s: %w", mode, err)
		}
		out.Points = append(out.Points, p)
		fmt.Fprintf(os.Stderr, "tskd-perf: replica %-5s: %.0f txn/s p99=%dus\n", mode, p.ThroughputTxnS, p.P99US)
	}
	off, sync := out.Points[0], out.Points[2]
	if off.P99US > 0 {
		out.SyncP99OverheadPct = 100 * float64(sync.P99US-off.P99US) / float64(off.P99US)
	}
	if off.ThroughputTxnS > 0 {
		out.SyncTputFrac = sync.ThroughputTxnS / off.ThroughputTxnS
	}
	return out, nil
}

func measureReplicaPoint(records int, theta float64, ops, bundle int, ccName string, workers int, seed int64, clients, perClient int, mode string) (bench.ReplicaPoint, error) {
	gen := workload.YCSB{Records: records, Theta: theta, OpsPerTxn: ops, ReadRatio: 0.5, RMW: true}
	primaryDir, err := os.MkdirTemp("", "tskd-perf-primary-*")
	if err != nil {
		return bench.ReplicaPoint{}, err
	}
	defer os.RemoveAll(primaryDir)

	var ship *replica.Shipper
	if mode != "off" {
		backupDir, err := os.MkdirTemp("", "tskd-perf-backup-*")
		if err != nil {
			return bench.ReplicaPoint{}, err
		}
		defer os.RemoveAll(backupDir)
		recv, err := replica.NewServer(replica.ServerConfig{Dir: backupDir, NoSync: true})
		if err != nil {
			return bench.ReplicaPoint{}, err
		}
		if err := recv.Start("127.0.0.1:0"); err != nil {
			return bench.ReplicaPoint{}, err
		}
		defer recv.Close()
		ship, err = replica.NewShipper(replica.ShipperConfig{Addr: recv.Addr(), Sync: mode == "sync"})
		if err != nil {
			return bench.ReplicaPoint{}, err
		}
		defer ship.Close()
	}

	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        bundle,
		FlushInterval: 2 * time.Millisecond,
		DB:            gen.BuildDB(),
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
		Durability:    &server.DurabilityOptions{Dir: primaryDir, NoSync: true, Replication: ship},
	})
	if err != nil {
		return bench.ReplicaPoint{}, err
	}
	if err := s.Start(); err != nil {
		return bench.ReplicaPoint{}, err
	}
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
	defer shutdown()

	load := func(record bool) (uint64, *metrics.Histogram, error) {
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			werr      error
			merged    metrics.Histogram
			committed uint64
		)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				g := gen
				g.Txns = perClient
				g.Seed = seed + int64(ci)*13
				w := g.Generate()
				conn, err := client.Dial(s.Addr())
				if err != nil {
					mu.Lock()
					werr = err
					mu.Unlock()
					return
				}
				defer conn.Close()
				var n uint64
				var h metrics.Histogram
				for _, tx := range w {
					req, err := client.NewRequest(0, tx)
					if err != nil {
						mu.Lock()
						werr = err
						mu.Unlock()
						return
					}
					for {
						t0 := time.Now()
						resp, err := conn.Submit(context.Background(), req)
						if err != nil {
							mu.Lock()
							werr = err
							mu.Unlock()
							return
						}
						if resp.Status == client.StatusRejected {
							time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
							continue
						}
						if record {
							h.Record(time.Since(t0))
						}
						if resp.Committed() {
							n++
						}
						break
					}
				}
				mu.Lock()
				committed += n
				merged.Merge(&h)
				mu.Unlock()
			}(ci)
		}
		wg.Wait()
		return committed, &merged, werr
	}

	if _, _, err := load(false); err != nil { // warm-up
		return bench.ReplicaPoint{}, err
	}
	t0 := time.Now()
	committed, lat, err := load(true)
	elapsed := time.Since(t0)
	if err != nil {
		return bench.ReplicaPoint{}, err
	}
	p := bench.ReplicaPoint{
		Mode:           mode,
		ThroughputTxnS: float64(committed) / elapsed.Seconds(),
		P50US:          lat.Quantile(0.50).Microseconds(),
		P99US:          lat.Quantile(0.99).Microseconds(),
		Committed:      committed,
	}
	if ship != nil {
		// Snapshot after shutdown so async shipping has drained and
		// EndLagBytes reflects the steady state, not mid-flush chatter.
		shutdown()
		st := ship.Stats()
		p.ShippedGroups = st.ShippedGroups
		p.ShippedBytes = st.ShippedBytes
		p.SyncWaits = st.SyncWaits
		p.SyncTimeouts = st.SyncTimeouts
		p.EndLagBytes = st.LagBytes
	}
	return p, nil
}

func measureMicro() bench.Micro {
	req := client.Request{
		Seq: 123456, Template: "ycsb",
		Params: []uint64{17, 4242, 99, 100000, 7, 8, 9, 10},
		Ops:    "R[x17]U[x4242]R[x99]W[x100000]R[x7]R[x8]U[x9]W[x10]",
	}
	resp := client.Response{Seq: 123456, Status: client.StatusCommit, Retries: 2, QueueUS: 1500, ExecUS: 870, Bundle: 42}
	var buf []byte
	enc := testing.AllocsPerRun(2000, func() {
		buf = client.AppendResponse(buf[:0], &resp)
	})
	reqLine := client.AppendRequest(nil, &req)
	reqLine = reqLine[:len(reqLine)-1]
	var dreq client.Request
	dr := testing.AllocsPerRun(2000, func() {
		if err := client.DecodeRequest(reqLine, &dreq); err != nil {
			panic(err)
		}
	})
	respLine := client.AppendResponse(nil, &resp)
	respLine = respLine[:len(respLine)-1]
	var dresp client.Response
	dp := testing.AllocsPerRun(2000, func() {
		if err := client.DecodeResponse(respLine, &dresp); err != nil {
			panic(err)
		}
	})
	// Binary frame codec: the pipelined wire's hot path, budgeted at
	// zero steady-state allocations (see internal/client alloc gates).
	binOps, err := txn.ParseOps(nil, req.Ops)
	if err != nil {
		panic(err)
	}
	var binReq []byte
	be := testing.AllocsPerRun(2000, func() {
		var err error
		binReq, err = client.AppendRequestFrame(binReq[:0], &req, binOps)
		if err != nil {
			panic(err)
		}
	})
	frame, err := client.AppendRequestFrame(nil, &req, binOps)
	if err != nil {
		panic(err)
	}
	var bt txn.Transaction
	var breq client.Request
	in := client.NewInterner(0)
	bd := testing.AllocsPerRun(2000, func() {
		if err := client.DecodeRequestFrame(frame[4:], &breq, &bt, in); err != nil {
			panic(err)
		}
	})
	var binResp []byte
	bre := testing.AllocsPerRun(2000, func() {
		binResp = client.AppendResponseBody(binResp[:0], &resp)
	})
	body := client.AppendResponseBody(nil, &resp)
	var brd client.Response
	brdAllocs := testing.AllocsPerRun(2000, func() {
		if _, err := client.DecodeResponseBody(body, &brd); err != nil {
			panic(err)
		}
	})
	l := wal.New(io.Discard, 0)
	rec := wal.Record{TxnID: 7, Writes: []wal.Update{
		{Key: 1, Ver: 10, Fields: []uint64{1, 2, 3, 4}},
		{Key: 2, Ver: 11, Fields: []uint64{5, 6, 7, 8}},
	}}
	wa := testing.AllocsPerRun(2000, func() {
		if err := l.Append(rec); err != nil {
			panic(err)
		}
	})
	return bench.Micro{
		WireEncodeAllocs:            enc,
		WireDecodeRequestAllocs:     dr,
		WireDecodeResponseAllocs:    dp,
		WireBinEncodeRequestAllocs:  be,
		WireBinDecodeRequestAllocs:  bd,
		WireBinEncodeResponseAllocs: bre,
		WireBinDecodeResponseAllocs: brdAllocs,
		WALAppendAllocs:             wa,
	}
}
