package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"tskd/internal/bench"
	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/metrics"
	"tskd/internal/server"
	"tskd/internal/workload"
)

// The wire phase pins its own operating point instead of inheriting
// the serve-phase flags: the claim it gates (pipelined gain over the
// lockstep baseline) must not move when someone re-tunes the serve
// phase. Small uniform transactions keep the engine off the critical
// path so the wire discipline — not scheduling — is what's measured;
// at the serve phase's 16-op contended workload the engine ceiling
// caps every protocol alike and the comparison degenerates.
const (
	wireRecords = 100_000
	wireTheta   = 0.0
	wireOps     = 4
	wireBundle  = 512
)

// measureWire runs the wire phase: the same YCSB workload driven over
// the legacy NDJSON text protocol and the length-prefixed binary frame
// protocol, each in two submission disciplines — lockstep (one
// transaction in flight per connection, the pre-pipelining client
// architecture) and pipelined (thousands of submitters multiplexed
// over the same connections, completions arriving out of order under
// the credit window). Both disciplines use the identical
// 16-connection pool so the discipline is the only variable: the
// headline, PipelinedGain, is binary+pipelined throughput over the
// ndjson+lockstep baseline at equal socket count. The protocol's win
// is not the codec alone but what the framing enables — one coalesced
// write per response bundle and enough in-flight transactions to fill
// the admission queue from a handful of sockets.
func measureWire(ccName string, workers int, seed int64, submitters, perSubmitter, window int) (bench.WireResults, error) {
	var out bench.WireResults
	cases := []struct {
		proto     client.WireProto
		pipelined bool
	}{
		{client.ProtoNDJSON, false},
		{client.ProtoBinary, false},
		{client.ProtoNDJSON, true},
		{client.ProtoBinary, true},
	}
	for _, c := range cases {
		p, err := measureWirePoint(ccName, workers, seed,
			submitters, perSubmitter, window, c.proto, c.pipelined)
		if err != nil {
			return out, fmt.Errorf("%s pipelined=%v: %w", c.proto, c.pipelined, err)
		}
		out.Points = append(out.Points, p)
		disc := "lockstep "
		if c.pipelined {
			disc = "pipelined"
		}
		fmt.Fprintf(os.Stderr, "tskd-perf: wire %-6s %s: %.0f txn/s p99=%dus\n",
			c.proto, disc, p.ThroughputTxnS, p.P99US)
	}
	if base := out.Points[0].ThroughputTxnS; base > 0 {
		out.PipelinedGain = out.Points[3].ThroughputTxnS / base
	}
	return out, nil
}

// wireConns is the connection-pool size shared by every point. The
// lockstep points run one submitter per connection (one transaction in
// flight each); the pipelined points multiplex all submitters over the
// same pool. Holding socket count constant is what makes the gain
// attributable to the discipline rather than to extra connections.
const wireConns = 16

// measureWirePoint boots a fresh server and drives one
// (protocol, discipline) combination. Lockstep submitters each own one
// pool connection and wait out every round trip — plain NDJSON Conn
// for the text protocol, a pipelined connection used one-at-a-time for
// binary — while the pipelined points share the pool among thousands
// of submitters, exactly the architecture the bundle-width argument
// needs (see measureShardedPoint). Both points split the same total
// transaction count so every point commits comparable work.
func measureWirePoint(ccName string, workers int, seed int64, submitters, perSubmitter, window int, proto client.WireProto, pipelined bool) (bench.WirePoint, error) {
	gen := workload.YCSB{Records: wireRecords, Theta: wireTheta, OpsPerTxn: wireOps, ReadRatio: 0.5, RMW: true}
	bundle := wireBundle
	// The admission queue must hold the pipelined in-flight population
	// (default 4×Bundle would reject most of a 2048-deep window into a
	// retry storm and trip the shedder). Every point — lockstep
	// included — runs against the identical server config.
	queue := 4 * bundle
	if queue < 2*submitters {
		queue = 2 * submitters
	}
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        bundle,
		QueueDepth:    queue,
		FlushInterval: 2 * time.Millisecond,
		DB:            gen.BuildDB(),
		Core:          core.Options{Workers: workers, Protocol: ccName, Seed: seed},
		// A deep pipeline IS a standing queue: the CoDel shedder would
		// (correctly, for a live service) shed most of a 2048-deep
		// closed loop. This phase measures wire capacity, not overload
		// policy — that is the overload phase's job — so adaptive
		// shedding is off and backpressure is the bounded queue alone.
		Overload: server.OverloadOptions{DisableShed: true},
	})
	if err != nil {
		return bench.WirePoint{}, err
	}
	if err := s.Start(); err != nil {
		return bench.WirePoint{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	dialOne := func() (client.WireConn, error) {
		if pipelined || proto == client.ProtoBinary {
			return client.DialPipelined(s.Addr(), client.PipelineConfig{Proto: proto, Window: window})
		}
		return client.Dial(s.Addr())
	}

	total := submitters * perSubmitter
	nsub, per := submitters, perSubmitter
	if !pipelined {
		nsub = wireConns
		per = total / wireConns
		if per < 1 {
			per = 1
		}
	}

	// Pre-generate and pre-encode every request before any clock
	// starts: workload generation (zipf sampler setup in particular) is
	// real CPU work, and on a small box thousands of submitter
	// goroutines generating concurrently would timeshare against the
	// engine's workers and drown the very path being measured.
	reqs := make([][]client.Request, nsub)
	for ci := range reqs {
		g := gen
		g.Txns = per
		g.Seed = seed + int64(ci)*211
		w := g.Generate()
		rs := make([]client.Request, len(w))
		for i, tx := range w {
			req, err := client.NewRequest(0, tx)
			if err != nil {
				return bench.WirePoint{}, err
			}
			rs[i] = req
		}
		reqs[ci] = rs
	}

	pool := make([]client.WireConn, wireConns)
	for i := range pool {
		c, err := dialOne()
		if err != nil {
			return bench.WirePoint{}, err
		}
		defer c.Close()
		pool[i] = c
	}

	// Warm-up runs a bounded slice per point — enough to warm the
	// engine scaffolding, pools, and template history without doubling
	// the phase's wall clock (the lockstep points are RTT-bound and
	// slow, so re-running their full workload untimed would cost more
	// than the measurement).
	warmN := (4096 + nsub - 1) / nsub
	if warmN > per {
		warmN = per
	}

	load := func(record bool, limit int) (uint64, *metrics.Histogram, error) {
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			werr      error
			merged    metrics.Histogram
			committed uint64
		)
		for ci := 0; ci < nsub; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				conn := pool[ci%len(pool)]
				var n uint64
				var h metrics.Histogram
				for _, req := range reqs[ci][:limit] {
					for {
						t0 := time.Now()
						resp, err := conn.Submit(context.Background(), req)
						if err != nil {
							mu.Lock()
							werr = err
							mu.Unlock()
							return
						}
						if resp.Status == client.StatusRejected || resp.Status == client.StatusShed {
							time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
							continue
						}
						if record {
							h.Record(time.Since(t0))
						}
						if resp.Committed() {
							n++
						}
						break
					}
				}
				mu.Lock()
				committed += n
				merged.Merge(&h)
				mu.Unlock()
			}(ci)
		}
		wg.Wait()
		return committed, &merged, werr
	}

	if _, _, err := load(false, warmN); err != nil { // warm-up
		return bench.WirePoint{}, err
	}
	t0 := time.Now()
	committed, lat, err := load(true, per)
	elapsed := time.Since(t0)
	if err != nil {
		return bench.WirePoint{}, err
	}
	return bench.WirePoint{
		Proto:          string(proto),
		Pipelined:      pipelined,
		ThroughputTxnS: float64(committed) / elapsed.Seconds(),
		P50US:          lat.Quantile(0.50).Microseconds(),
		P99US:          lat.Quantile(0.99).Microseconds(),
		Committed:      committed,
	}, nil
}
