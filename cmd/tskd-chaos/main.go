// Command tskd-chaos runs the deterministic fault-injection harness
// (internal/chaos) and prints one JSON verdict line per (scenario,
// seed) pair. Verdict lines are a pure function of scenario and seed —
// a failing seed from CI reproduces locally with nothing but
//
//	tskd-chaos -seed <S> [-scenario <name>]
//
// Exit status is 0 only if every scenario passed. -check-repro runs
// everything twice and additionally fails if any verdict line is not
// byte-identical across the runs, enforcing the determinism contract
// itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tskd/internal/chaos"
)

func main() {
	// The kill-restart scenario re-execs this binary as its durable
	// server child; in that mode MaybeServerChild never returns.
	chaos.MaybeServerChild()

	seed := flag.Int64("seed", 1, "base seed for the fault schedules")
	n := flag.Int("n", 1, "number of consecutive seeds to run (seed, seed+1, ...)")
	scenario := flag.String("scenario", "", "run only this scenario (default: all)")
	list := flag.Bool("list", false, "list scenarios and exit")
	checkRepro := flag.Bool("check-repro", false, "run every (scenario, seed) twice and fail on any verdict mismatch")
	verbose := flag.Bool("v", false, "print verdict lines for passing runs too")
	flag.Parse()

	if *list {
		for _, s := range chaos.Scenarios() {
			fmt.Printf("%-20s %s\n", s.Name, s.Doc)
		}
		return
	}

	scenarios := chaos.Scenarios()
	if *scenario != "" {
		s := chaos.Find(*scenario)
		if s == nil {
			fmt.Fprintf(os.Stderr, "tskd-chaos: unknown scenario %q (use -list)\n", *scenario)
			os.Exit(2)
		}
		scenarios = []chaos.Scenario{*s}
	}

	verdict := func(r chaos.Report) string {
		b, err := json.Marshal(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tskd-chaos: marshal: %v\n", err)
			os.Exit(2)
		}
		return string(b)
	}

	runs, failures, mismatches := 0, 0, 0
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		for _, sc := range scenarios {
			r := sc.Run(s)
			line := verdict(r)
			runs++
			if *checkRepro {
				if again := verdict(sc.Run(s)); again != line {
					mismatches++
					fmt.Printf("%s\n", line)
					fmt.Fprintf(os.Stderr, "tskd-chaos: NONDETERMINISTIC VERDICT for %s seed %d:\n  first:  %s\n  second: %s\n",
						sc.Name, s, line, again)
					continue
				}
			}
			if !r.Pass {
				failures++
				fmt.Printf("%s\n", line)
				fmt.Fprintf(os.Stderr, "tskd-chaos: FAIL %s seed %d — reproduce with: tskd-chaos -scenario %s -seed %d\n",
					sc.Name, s, sc.Name, s)
			} else if *verbose {
				fmt.Printf("%s\n", line)
			}
		}
	}

	fmt.Fprintf(os.Stderr, "tskd-chaos: %d runs, %d failures", runs, failures)
	if *checkRepro {
		fmt.Fprintf(os.Stderr, ", %d nondeterministic verdicts", mismatches)
	}
	fmt.Fprintln(os.Stderr)
	if failures > 0 || mismatches > 0 {
		os.Exit(1)
	}
}
