// Command tskd-load benchmarks a tskd-serve instance end to end, in
// the style of object-storage load generators like minio/warp: a
// closed-loop mode (N concurrent clients, each submit-wait-repeat)
// measures peak sustainable throughput, and an open-loop mode (target
// arrival rate with Poisson or uniform interarrivals) measures latency
// under a fixed offered load — the honest way to observe queueing
// delay, since closed loops self-throttle.
//
// Usage:
//
//	tskd-load -addr localhost:7070 -mode closed -clients 16 -n 50000
//	tskd-load -mode open -rate 20000 -arrival poisson -n 100000
//
// Transactions are YCSB-style: -theta, -opstxn, -readratio, -records
// shape the generated access patterns (they must target the schema
// tskd-serve loaded). Latency percentiles come from the repo's
// log-bucketed histograms (internal/metrics).
//
// Against a sharded server (tskd-serve -shards N), pass the matching
// -shards here and -multi-key F to make fraction F of the generated
// transactions span two shards (exercising the server's two-phase
// commit path); the remainder are confined to a single shard.
//
// -reliable switches closed-loop clients to the reconnecting client
// (idempotency keys, resubmit on connection loss, jittered backoff):
// the benchmark then survives a server crash-restart mid-run, and
// against a -data-dir server every counted commit is exactly-once.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"tskd/internal/client"
	"tskd/internal/metrics"
	"tskd/internal/shard"
	"tskd/internal/workload"
)

type outcome struct {
	status  string
	retries int
	raMS    int64         // retry-after hint on rejection
	e2e     time.Duration // submit to response, wall clock
	queue   time.Duration // server-reported admission wait
	exec    time.Duration // server-reported virtual execution time
}

type tally struct {
	sent, committed, rejected, aborted, canceled, errors uint64
	expired, shed                                        uint64
	retries                                              uint64
	e2e, queue, exec                                     metrics.Histogram
}

func (ta *tally) add(o outcome) {
	ta.sent++
	switch o.status {
	case client.StatusCommit:
		ta.committed++
		ta.retries += uint64(o.retries)
		ta.e2e.Record(o.e2e)
		ta.queue.Record(o.queue)
		ta.exec.Record(o.exec)
	case client.StatusRejected:
		ta.rejected++
	case client.StatusShed:
		ta.shed++
	case client.StatusExpired:
		ta.expired++
	case client.StatusAbort:
		ta.aborted++
	case client.StatusCanceled:
		ta.canceled++
	default:
		ta.errors++
	}
}

// terminal reports how many submissions reached a terminal decision —
// the denominator of throughput, versus goodput's committed-only
// numerator. Rejected and shed attempts are excluded: in a closed loop
// they are resubmitted, in an open loop they are lost offered load.
func (ta *tally) terminal() uint64 {
	return ta.committed + ta.aborted + ta.canceled + ta.expired
}

func main() {
	var (
		addr      = flag.String("addr", "localhost:7070", "tskd-serve transaction address")
		mode      = flag.String("mode", "closed", "load mode: closed or open")
		clients   = flag.Int("clients", 8, "closed-loop concurrent clients (each its own connection)")
		conns     = flag.Int("conns", 4, "open-loop connections to spread submissions over")
		rate      = flag.Float64("rate", 5000, "open-loop target arrival rate, txn/s")
		arrival   = flag.String("arrival", "poisson", "open-loop interarrivals: poisson or uniform")
		n         = flag.Int("n", 10_000, "total transactions to submit")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-submission timeout")
		records   = flag.Int("records", 100_000, "YCSB key space (match the server's -records)")
		theta     = flag.Float64("theta", 0.8, "YCSB zipf skew")
		opsTxn    = flag.Int("opstxn", 16, "operations per transaction")
		readRatio = flag.Float64("readratio", 0.5, "fraction of reads")
		rmw       = flag.Bool("rmw", true, "read-modify-write updates (vs blind writes)")
		seed      = flag.Int64("seed", 1, "generation seed")
		reliable  = flag.Bool("reliable", false, "closed loop: reconnect + resubmit under idempotency keys")
		shards    = flag.Int("shards", 1, "server shard count (match tskd-serve -shards); enables -multi-key")
		multiKey  = flag.Float64("multi-key", 0, "fraction of transactions whose keys span 2+ shards (needs -shards > 1)")
		deadline  = flag.Duration("deadline", 0, "end-to-end deadline stamped on every submission (0 = none)")
		lowpri    = flag.Float64("lowpri", 0, "fraction of submissions marked low priority (shed first)")
		jsonOut   = flag.Bool("json", false, "print the summary as JSON")
	)
	flag.Parse()

	gen := workload.YCSB{
		Records: *records, Theta: *theta, OpsPerTxn: *opsTxn,
		ReadRatio: *readRatio, RMW: *rmw,
	}
	if *multiKey > 0 && *shards <= 1 {
		fmt.Fprintln(os.Stderr, "tskd-load: -multi-key needs -shards > 1")
		os.Exit(2)
	}
	shape := reqShape{
		deadlineMS: deadlineMS(*deadline), lowpri: *lowpri,
		shards: *shards, multiKey: *multiKey,
	}

	var (
		ta      tally
		elapsed time.Duration
		err     error
	)
	switch *mode {
	case "closed":
		elapsed, err = runClosed(*addr, gen, shape, *clients, *n, *seed, *timeout, *reliable, &ta)
	case "open":
		elapsed, err = runOpen(*addr, gen, shape, *conns, *rate, *arrival, *n, *seed, *timeout, &ta)
	default:
		err = fmt.Errorf("unknown mode %q (closed, open)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-load:", err)
		os.Exit(1)
	}
	report(*mode, elapsed, &ta, *jsonOut)
	if ta.errors > 0 {
		os.Exit(1)
	}
}

// reqShape decorates generated requests with the overload-resilience
// wire fields — a relative deadline budget and a low-priority fraction
// — and, against a sharded server, reshapes key footprints so a
// configurable fraction of transactions span two shards (the rest are
// confined to one).
type reqShape struct {
	deadlineMS int64
	lowpri     float64
	shards     int
	multiKey   float64
}

func deadlineMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	if ms := d.Milliseconds(); ms >= 1 {
		return ms
	}
	return 1
}

func (rs reqShape) apply(reqs []client.Request, seed int64) {
	if rs.deadlineMS == 0 && rs.lowpri <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed ^ 0x10ad))
	for i := range reqs {
		reqs[i].DeadlineMS = rs.deadlineMS
		if rs.lowpri > 0 && rng.Float64() < rs.lowpri {
			reqs[i].Priority = 1
		}
	}
}

// makeRequests pre-generates a client's submission stream so encoding
// cost stays off the timed path.
func makeRequests(gen workload.YCSB, shape reqShape, n int, seed int64) ([]client.Request, error) {
	g := gen
	g.Txns = n
	g.Seed = seed
	w := g.Generate()
	if shape.shards > 1 {
		shard.Confine(w, shape.shards, shape.multiKey, uint64(gen.Records), seed)
	}
	reqs := make([]client.Request, len(w))
	for i, t := range w {
		req, err := client.NewRequest(0, t)
		if err != nil {
			return nil, err
		}
		reqs[i] = req
	}
	shape.apply(reqs, seed)
	return reqs, nil
}

// runClosed drives k clients, each submit-wait-repeat over its own
// connection. A rejected or shed submission backs off by the server's
// retry-after hint and retries; an expired one is terminal — its
// deadline budget is spent, so retrying it is exactly the wasted work
// deadlines exist to avoid. The closed-loop contract is that every
// generated transaction eventually reaches a terminal outcome. With
// reliable set, each client is a ReliableConn instead: rejections,
// shedding, reconnects and resubmissions happen inside Submit under a
// stable idempotency key (and Submit itself stops retrying a
// deadline-doomed request), so the loop keeps going through a server
// crash-restart.
func runClosed(addr string, gen workload.YCSB, shape reqShape, k, total int, seed int64, timeout time.Duration, reliable bool, ta *tally) (time.Duration, error) {
	perClient := (total + k - 1) / k
	outcomes := make(chan outcome, 1024)
	errs := make(chan error, k)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < k; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			reqs, err := makeRequests(gen, shape, perClient, seed+int64(ci)*7919)
			if err != nil {
				errs <- err
				return
			}
			if reliable {
				// Zero Seed: fresh idempotency keyspace every run.
				// Deriving it from -seed would make a re-run of the same
				// benchmark against a durable server an all-duplicate
				// no-op — the dedup window would answer every submission
				// from cache instead of executing it.
				rc := client.DialReliable(addr, client.RetryPolicy{})
				defer rc.Close()
				for _, req := range reqs {
					o, err := submitReliable(rc, req, timeout)
					if err != nil {
						errs <- err
						return
					}
					outcomes <- o
				}
				return
			}
			conn, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for _, req := range reqs {
				for {
					o, err := submitOne(conn, req, timeout)
					if err != nil {
						errs <- err
						return
					}
					if o.status != client.StatusRejected && o.status != client.StatusShed {
						outcomes <- o
						break
					}
					// Backpressure: honor the hint, then resubmit.
					outcomes <- o
					time.Sleep(time.Duration(maxI64(1, o.raMS)) * time.Millisecond)
				}
			}
		}(ci)
	}
	collectDone := make(chan struct{})
	go func() {
		for o := range outcomes {
			ta.add(o)
		}
		close(collectDone)
	}()
	wg.Wait()
	close(outcomes)
	<-collectDone
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return elapsed, err
	default:
		return elapsed, nil
	}
}

// runOpen offers load at a fixed rate: arrivals fire on schedule
// regardless of outstanding responses, spread round-robin over a small
// connection pool. Rejections are recorded, not retried — in an open
// system the arrival is lost offered load, which is exactly what the
// rejection rate measures.
func runOpen(addr string, gen workload.YCSB, shape reqShape, nconns int, rate float64, arrival string, total int, seed int64, timeout time.Duration, ta *tally) (time.Duration, error) {
	if rate <= 0 {
		return 0, fmt.Errorf("open loop needs -rate > 0")
	}
	if arrival != "poisson" && arrival != "uniform" {
		return 0, fmt.Errorf("unknown arrival process %q (poisson, uniform)", arrival)
	}
	reqs, err := makeRequests(gen, shape, total, seed)
	if err != nil {
		return 0, err
	}
	pool := make([]*client.Conn, nconns)
	for i := range pool {
		c, err := client.Dial(addr)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		pool[i] = c
	}

	rng := rand.New(rand.NewSource(seed))
	mean := float64(time.Second) / rate
	outcomes := make(chan outcome, 1024)
	collectDone := make(chan struct{})
	go func() {
		for o := range outcomes {
			ta.add(o)
		}
		close(collectDone)
	}()

	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for i, req := range reqs {
		// Schedule the next arrival instant, then sleep until it.
		var gap time.Duration
		if arrival == "poisson" {
			gap = time.Duration(rng.ExpFloat64() * mean)
		} else {
			gap = time.Duration(mean)
		}
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		conn := pool[i%nconns]
		wg.Add(1)
		go func(req client.Request) {
			defer wg.Done()
			o, err := submitOne(conn, req, timeout)
			if err != nil {
				o = outcome{status: "error"}
			}
			outcomes <- o
		}(req)
	}
	wg.Wait()
	close(outcomes)
	<-collectDone
	return time.Since(start), nil
}

// submitReliable submits through a ReliableConn until the transaction
// reaches a terminal outcome; the end-to-end latency includes every
// backoff and reconnect, which is what a real caller experiences.
func submitReliable(rc *client.ReliableConn, req client.Request, timeout time.Duration) (outcome, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	t0 := time.Now()
	resp, err := rc.Submit(ctx, req)
	if err != nil {
		return outcome{}, err
	}
	return outcome{
		status:  resp.Status,
		retries: resp.Retries,
		raMS:    resp.RetryAfterMS,
		e2e:     time.Since(t0),
		queue:   time.Duration(resp.QueueUS) * time.Microsecond,
		exec:    time.Duration(resp.ExecUS) * time.Microsecond,
	}, nil
}

// submitOne submits and converts the response into an outcome.
func submitOne(conn *client.Conn, req client.Request, timeout time.Duration) (outcome, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	t0 := time.Now()
	resp, err := conn.Submit(ctx, req)
	if err != nil {
		return outcome{}, err
	}
	o := outcome{
		status:  resp.Status,
		retries: resp.Retries,
		e2e:     time.Since(t0),
		queue:   time.Duration(resp.QueueUS) * time.Microsecond,
		exec:    time.Duration(resp.ExecUS) * time.Microsecond,
	}
	o.raMS = resp.RetryAfterMS
	return o, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// report prints the run summary, human or JSON. Throughput counts
// terminal decisions per second (committed, aborted, canceled,
// expired); goodput counts only commits — under overload the gap
// between the two is the work the server concluded without doing.
func report(mode string, elapsed time.Duration, ta *tally, asJSON bool) {
	tput, goodput := 0.0, 0.0
	if elapsed > 0 {
		tput = float64(ta.terminal()) / elapsed.Seconds()
		goodput = float64(ta.committed) / elapsed.Seconds()
	}
	if asJSON {
		out := map[string]any{
			"mode":       mode,
			"elapsed_s":  elapsed.Seconds(),
			"sent":       ta.sent,
			"committed":  ta.committed,
			"rejected":   ta.rejected,
			"shed":       ta.shed,
			"expired":    ta.expired,
			"aborted":    ta.aborted,
			"canceled":   ta.canceled,
			"errors":     ta.errors,
			"retries":    ta.retries,
			"throughput": tput,
			"goodput":    goodput,
			"latency":    ta.e2e.Snapshot(),
			"queue_wait": ta.queue.Snapshot(),
			"exec":       ta.exec.Snapshot(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	fmt.Printf("tskd-load: mode=%s elapsed=%v\n", mode, elapsed.Round(time.Millisecond))
	fmt.Printf(" sent=%d committed=%d rejected=%d shed=%d expired=%d aborted=%d canceled=%d errors=%d server-retries=%d\n",
		ta.sent, ta.committed, ta.rejected, ta.shed, ta.expired, ta.aborted, ta.canceled, ta.errors, ta.retries)
	fmt.Printf(" throughput=%.1f txn/s goodput=%.1f txn/s\n", tput, goodput)
	ta.e2e.Print(os.Stdout, " latency  ")
	ta.queue.Print(os.Stdout, " queuewait")
	ta.exec.Print(os.Stdout, " exec     ")
}
