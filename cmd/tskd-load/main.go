// Command tskd-load benchmarks a tskd-serve instance end to end, in
// the style of object-storage load generators like minio/warp: a
// closed-loop mode (N concurrent clients, each submit-wait-repeat)
// measures peak sustainable throughput, and an open-loop mode (target
// arrival rate with Poisson or uniform interarrivals) measures latency
// under a fixed offered load — the honest way to observe queueing
// delay, since closed loops self-throttle.
//
// Usage:
//
//	tskd-load -addr localhost:7070 -mode closed -clients 16 -n 50000
//	tskd-load -mode open -rate 20000 -arrival poisson -n 100000
//
// Distributed generation (warp-style agent/coordinator): run one agent
// per load machine, then point a coordinator at the fleet. The
// coordinator splits the workload, starts every agent on a synchronized
// wall-clock barrier, and merges the shipped histograms — percentiles
// come from the combined population, never from averaging per-agent
// percentiles.
//
//	tskd-load -agent :7071                 # on each load machine
//	tskd-load -agents lg1:7071,lg2:7071 -mode open -rate 80000 -n 400000
//	tskd-load -local-agents 4 -mode open -rate 80000 -n 400000
//
// -local-agents N forks N agent subprocesses of this binary on
// ephemeral ports and coordinates them — multi-process load generation
// on one box with no external orchestration (what CI uses).
//
// Transactions are YCSB-style: -theta, -opstxn, -readratio, -records
// shape the generated access patterns (they must target the schema
// tskd-serve loaded). Latency percentiles come from the repo's
// log-bucketed histograms (internal/metrics).
//
// Against a sharded server (tskd-serve -shards N), pass the matching
// -shards here and -multi-key F to make fraction F of the generated
// transactions span two shards (exercising the server's two-phase
// commit path); the remainder are confined to a single shard.
//
// Submissions default to the length-prefixed binary frame protocol
// over pipelined connections (many in-flight transactions multiplexed
// per socket, -window bounding the credit window); -wire ndjson is
// the escape hatch back to the legacy text protocol — lockstep plain
// connections, exactly the pre-upgrade client, for debugging or
// driving an older server — and -pipeline multiplexes even NDJSON
// over pipelined connections for an apples-to-apples protocol
// comparison.
//
// -reliable switches closed-loop clients to the reconnecting client
// (idempotency keys, resubmit on connection loss, jittered backoff):
// the benchmark then survives a server crash-restart mid-run, and
// against a -data-dir server every counted commit is exactly-once.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"tskd/internal/bench"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7070", "tskd-serve transaction address")
		mode      = flag.String("mode", "closed", "load mode: closed or open")
		clients   = flag.Int("clients", 8, "closed-loop concurrent clients (each its own connection)")
		conns     = flag.Int("conns", 4, "open-loop connections to spread submissions over")
		rate      = flag.Float64("rate", 5000, "open-loop target arrival rate, txn/s")
		arrival   = flag.String("arrival", "poisson", "open-loop interarrivals: poisson or uniform")
		n         = flag.Int("n", 10_000, "total transactions to submit")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-submission timeout")
		records   = flag.Int("records", 100_000, "YCSB key space (match the server's -records)")
		theta     = flag.Float64("theta", 0.8, "YCSB zipf skew")
		opsTxn    = flag.Int("opstxn", 16, "operations per transaction")
		readRatio = flag.Float64("readratio", 0.5, "fraction of reads")
		rmw       = flag.Bool("rmw", true, "read-modify-write updates (vs blind writes)")
		seed      = flag.Int64("seed", 1, "generation seed")
		reliable  = flag.Bool("reliable", false, "closed loop: reconnect + resubmit under idempotency keys")
		wire      = flag.String("wire", "binary", "wire protocol: binary (length-prefixed frames, default) or ndjson (legacy text escape hatch)")
		pipeline  = flag.Bool("pipeline", false, "closed loop: multiplex clients over pipelined connections (implied by -wire binary)")
		window    = flag.Int("window", 0, "pipelined in-flight window per connection (0 = default)")
		shards    = flag.Int("shards", 1, "server shard count (match tskd-serve -shards); enables -multi-key")
		multiKey  = flag.Float64("multi-key", 0, "fraction of transactions whose keys span 2+ shards (needs -shards > 1)")
		deadline  = flag.Duration("deadline", 0, "end-to-end deadline stamped on every submission (0 = none)")
		lowpri    = flag.Float64("lowpri", 0, "fraction of submissions marked low priority (shed first)")
		jsonOut   = flag.Bool("json", false, "print the summary as JSON")

		agentAddr  = flag.String("agent", "", "run as a load agent listening on this control address (e.g. :7071)")
		agents     = flag.String("agents", "", "coordinate these comma-separated agent control addresses")
		localN     = flag.Int("local-agents", 0, "spawn N local agent subprocesses and coordinate them")
		startDelay = flag.Duration("start-delay", 500*time.Millisecond, "coordinator: lead time before the synchronized start barrier")
	)
	flag.Parse()

	if *agentAddr != "" {
		runAgent(*agentAddr)
		return
	}

	nshards := *shards
	if nshards <= 1 {
		nshards = 0
	}
	spec := bench.Spec{
		Addr: *addr, Mode: *mode,
		Clients: *clients, Rate: *rate, Arrival: *arrival, N: *n,
		TimeoutMS: (*timeout).Milliseconds(),
		Records:   *records, Theta: *theta, OpsPerTxn: *opsTxn,
		ReadRatio: *readRatio, RMW: *rmw, Seed: *seed,
		Reliable: *reliable,
		Wire:     *wire, Pipeline: *pipeline, Window: *window,
		Shards: nshards, MultiKey: *multiKey,
		DeadlineMS: deadlineMS(*deadline), LowPri: *lowpri,
	}
	if *mode == "open" {
		spec.Conns = *conns
	}

	var (
		summary bench.Summary
		err     error
	)
	switch {
	case *agents != "" && *localN > 0:
		err = fmt.Errorf("-agents and -local-agents are mutually exclusive")
	case *agents != "":
		summary, err = coordinate(strings.Split(*agents, ","), spec, *startDelay, *timeout)
	case *localN > 0:
		summary, err = coordinateLocal(*localN, spec, *startDelay, *timeout)
	default:
		var res bench.Result
		res, err = bench.RunLocal(context.Background(), spec)
		if err == nil {
			summary, err = bench.Merge([]bench.Result{res})
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-load:", err)
		os.Exit(1)
	}
	report(*mode, summary, *jsonOut)
	if summary.Counts.Errors > 0 {
		os.Exit(1)
	}
}

// runAgent turns the process into a load agent: bind the control
// listener, announce the bound address on stdout (spawners scan for the
// banner to learn an ephemeral port), serve coordinators until killed.
func runAgent(listen string) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-load:", err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", bench.ListenBanner, ln.Addr())
	os.Stdout.Sync()
	logger := log.New(os.Stderr, "tskd-load agent: ", log.LstdFlags)
	if err := bench.ServeAgent(ln, ln.Addr().String(), logger.Printf); err != nil {
		logger.Printf("listener: %v", err)
		os.Exit(1)
	}
}

// coordinate fans spec out across already-running agents and merges
// their results.
func coordinate(addrs []string, spec bench.Spec, startDelay, timeout time.Duration) (bench.Summary, error) {
	var fleet []*bench.AgentClient
	defer func() {
		for _, a := range fleet {
			a.Close()
		}
	}()
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		a, err := bench.DialAgent(addr)
		if err != nil {
			return bench.Summary{}, err
		}
		fleet = append(fleet, a)
	}
	if len(fleet) == 0 {
		return bench.Summary{}, fmt.Errorf("no agent addresses in -agents")
	}
	return coordinateFleet(fleet, spec, startDelay, timeout)
}

// coordinateLocal spawns n agent subprocesses of this binary and
// coordinates them — a multi-process fleet on one machine.
func coordinateLocal(n int, spec bench.Spec, startDelay, timeout time.Duration) (bench.Summary, error) {
	self, err := os.Executable()
	if err != nil {
		return bench.Summary{}, err
	}
	fleet, stop, err := bench.SpawnLocalAgents(n, self, "-agent", "127.0.0.1:0")
	if err != nil {
		return bench.Summary{}, err
	}
	defer stop()
	return coordinateFleet(fleet, spec, startDelay, timeout)
}

func coordinateFleet(fleet []*bench.AgentClient, spec bench.Spec, startDelay, timeout time.Duration) (bench.Summary, error) {
	collect := 2*timeout + 10*time.Minute // run length is workload-bound, not timeout-bound
	results, err := bench.Coordinate(fleet, spec.Split(len(fleet)), startDelay, collect)
	if err != nil {
		return bench.Summary{}, err
	}
	return bench.Merge(results)
}

func deadlineMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	if ms := d.Milliseconds(); ms >= 1 {
		return ms
	}
	return 1
}

// report prints the merged summary, human or JSON. Throughput counts
// terminal decisions per second (committed, aborted, canceled,
// expired); goodput counts only commits — under overload the gap
// between the two is the work the server concluded without doing.
func report(mode string, s bench.Summary, asJSON bool) {
	if asJSON {
		out := struct {
			Mode string `json:"mode"`
			bench.Summary
		}{mode, s}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	c := s.Counts
	fmt.Printf("tskd-load: mode=%s agents=%d elapsed=%.3fs\n", mode, s.Agents, s.ElapsedS)
	fmt.Printf(" sent=%d committed=%d rejected=%d shed=%d expired=%d aborted=%d canceled=%d errors=%d server-retries=%d\n",
		c.Sent, c.Committed, c.Rejected, c.Shed, c.Expired, c.Aborted, c.Canceled, c.Errors, c.Retries)
	fmt.Printf(" throughput=%.1f txn/s goodput=%.1f txn/s\n", s.ThroughputTxnS, s.GoodputTxnS)
	fmt.Printf(" latency   p50=%dus p90=%dus p99=%dus p999=%dus max=%dus mean=%dus (merged across %d agent population(s))\n",
		s.P50US, s.P90US, s.P99US, s.P999US, s.MaxUS, s.MeanUS, s.Agents)
	fmt.Printf(" queuewait p99=%dus  exec p99=%dus\n", s.QueueP99US, s.ExecP99US)
}
