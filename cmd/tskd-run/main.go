// Command tskd-run executes a single system on a single benchmark and
// prints its metrics — the quickest way to poke at one configuration.
//
// Usage:
//
//	tskd-run -system "TSKD[S]" -bench ycsb -theta 0.9
//	tskd-run -system DBCC -bench tpcc -c 0.35 -cc TICTOC
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tskd/internal/harness"
)

func main() {
	var (
		system  = flag.String("system", "TSKD[S]", "system under test")
		bench   = flag.String("bench", "ycsb", "benchmark: ycsb or tpcc")
		theta   = flag.Float64("theta", 0.8, "YCSB zipf skew")
		cpct    = flag.Float64("c", 0.25, "TPC-C cross-warehouse fraction")
		whn     = flag.Int("whn", 0, "TPC-C warehouses (0 = scale default)")
		cores   = flag.Int("cores", 0, "#core (0 = scale default)")
		ccName  = flag.String("cc", "OCC", "CC protocol")
		bundle  = flag.Int("bundle", 0, "bundle size (0 = scale default)")
		scale   = flag.String("scale", "quick", "parameter scale: full or quick")
		seed    = flag.Int64("seed", 1, "random seed")
		lookups = flag.Int("lookups", 2, "TsDEFER #lookups")
		deferP  = flag.Float64("deferp", 0.6, "TsDEFER defer probability")
		minT    = flag.Float64("mint", 0.5, "runtime-skew minT (0 disables)")
		lio     = flag.Int("lio", 0, "I/O latency ratio lIO (0 disables)")
	)
	flag.Parse()

	p := harness.Quick()
	if *scale == "full" {
		p = harness.Default()
	}
	p.Theta = *theta
	p.CPct = *cpct
	p.CC = *ccName
	p.Seed = *seed
	p.Lookups = *lookups
	p.DeferP = *deferP
	p.MinT = *minT
	p.LIO = *lio
	if *whn > 0 {
		p.Whn = *whn
	}
	if *cores > 0 {
		p.Cores = *cores
	}
	if *bundle > 0 {
		p.Bundle = *bundle
	}

	start := time.Now()
	t, err := harness.RunSystem(*system, *bench, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tskd-run: %v\n", err)
		fmt.Fprintln(os.Stderr, "systems:", harness.SystemNames())
		os.Exit(1)
	}
	t.Print(os.Stdout)
	fmt.Printf("(run took %v)\n", time.Since(start).Round(time.Millisecond))
}
