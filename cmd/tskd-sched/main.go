// Command tskd-sched shows what TsPAR does to a workload without
// executing it: it generates a bundle, partitions it, refines the
// partition into a schedule with TSgen, and prints the queues, the
// residual, the makespan, and the scheduled percentage — the analytic
// view of the paper's Examples 1-4 at benchmark scale.
//
// Usage:
//
//	tskd-sched -bench ycsb -theta 0.9 -k 8
//	tskd-sched -example            # the paper's Example 1 workload
package main

import (
	"flag"
	"fmt"
	"os"

	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/partition"
	"tskd/internal/sched"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "ycsb", "benchmark: ycsb or tpcc")
		theta   = flag.Float64("theta", 0.8, "YCSB zipf skew")
		k       = flag.Int("k", 4, "threads")
		n       = flag.Int("n", 1000, "bundle size")
		seed    = flag.Int64("seed", 1, "random seed")
		part    = flag.String("partitioner", "strife", "strife, schism, horticulture, or none")
		example = flag.Bool("example", false, "schedule the paper's Example 1 workload on 2 threads")
		gantt   = flag.Bool("gantt", false, "render the schedule as an ASCII Gantt chart")
	)
	flag.Parse()

	var w txn.Workload
	switch {
	case *example:
		w = txn.MustParseWorkload(`
			R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]
			R[x1]W[x2]W[x1]
			R[x3]W[x3]R[x2]R[x3]W[x2]
			R[x5]W[x5]R[x6]W[x6]
			R[x1]W[x1]R[x5]W[x5]R[x1]W[x1]
		`)
		*k = 2
	case *bench == "tpcc":
		cfg := workload.TPCC{Warehouses: 8, Txns: *n, Items: 200, CustomersPerDistrict: 50, CrossPct: 0.25, Seed: *seed}
		w = cfg.Generate()
	default:
		cfg := workload.YCSB{Records: 10_000, Theta: *theta, Txns: *n, OpsPerTxn: 16, ReadRatio: 0.5, Seed: *seed}
		w = cfg.Generate()
	}

	g := conflict.Build(w, conflict.Serializability)
	fmt.Printf("workload: %d transactions, %d ops, conflict graph: %d edges\n",
		len(w), w.TotalOps(), g.Edges())

	var plan *partition.Plan
	switch *part {
	case "strife":
		plan = partition.NewStrife(*seed).Partition(w, g, *k)
	case "schism":
		plan = partition.ExtractResidual(partition.NewSchism(*seed).Partition(w, g, *k), g)
	case "horticulture":
		plan = partition.ExtractResidual(partition.NewHorticulture().Partition(w, g, *k), g)
	case "none":
		plan = partition.NewPlan(*k)
		plan.Residual = append(plan.Residual, w...)
	default:
		fmt.Fprintf(os.Stderr, "unknown partitioner %q\n", *part)
		os.Exit(2)
	}
	fmt.Printf("partition (%s): residual %d, load ratio %.2f\n",
		*part, len(plan.Residual), plan.LoadRatio())

	s := sched.Generate(w, plan, g, estimator.AccessSetSize{}, sched.Options{Seed: *seed})
	if err := s.Validate(w); err != nil {
		fmt.Fprintf(os.Stderr, "schedule invalid: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("schedule: makespan %.0f units, residual R_s %d, s%% %.1f\n",
		float64(s.Makespan()), len(s.Residual), s.Stats.ScheduledPct())
	for i := range s.Queues {
		fmt.Printf("  Q%-2d %5d txns, %8.0f units", i+1, len(s.Queues[i]), float64(s.QueueTime(i)))
		if *example {
			fmt.Print("  <")
			for j, t := range s.Queues[i] {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("T%d", t.ID+1)
			}
			fmt.Print(">")
		}
		fmt.Println()
	}
	fmt.Printf("idealized total time: %.0f units (queues + residual over %d threads)\n",
		float64(s.TotalTime()), *k)
	if *gantt {
		fmt.Println()
		s.Gantt(os.Stdout, 72)
	}
}
