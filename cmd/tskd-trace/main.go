// Command tskd-trace generates, inspects, and replays workload traces
// — the serialized form of the bundled workloads the paper's
// partitioners and TsPAR consume.
//
// Usage:
//
//	tskd-trace -gen ycsb -n 5000 -theta 0.9 -out bundle.trace
//	tskd-trace -info bundle.trace
//	tskd-trace -replay bundle.trace -system "TSKD[0]" -cores 8
package main

import (
	"flag"
	"fmt"
	"os"

	"tskd/internal/conflict"
	"tskd/internal/core"
	"tskd/internal/partition"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func main() {
	var (
		gen    = flag.String("gen", "", "generate a trace: ycsb or tpcc")
		out    = flag.String("out", "bundle.trace", "output path for -gen")
		info   = flag.String("info", "", "print statistics of a trace file")
		replay = flag.String("replay", "", "execute a trace file")
		system = flag.String("system", "TSKD[0]", "system for -replay: STRIFE, TSKD[S], TSKD[0], DBCC, TSKD[CC]")
		n      = flag.Int("n", 2000, "bundle size for -gen")
		theta  = flag.Float64("theta", 0.8, "YCSB zipf skew for -gen")
		cores  = flag.Int("cores", 8, "workers for -replay")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *gen != "":
		w, err := generate(*gen, *n, *theta, *seed)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := workload.SaveTrace(f, w); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d transactions (%d ops) to %s\n", len(w), w.TotalOps(), *out)

	case *info != "":
		w := load(*info)
		g := conflict.Build(w, conflict.Serializability)
		byTemplate := map[string]int{}
		for _, t := range w {
			byTemplate[t.Template]++
		}
		fmt.Printf("%s: %d transactions, %d ops, %d conflict edges\n",
			*info, len(w), w.TotalOps(), g.Edges())
		for tpl, cnt := range byTemplate {
			fmt.Printf("  %-14s %d\n", tpl, cnt)
		}

	case *replay != "":
		w := load(*replay)
		db := rebuildDB(w)
		o := core.Options{Workers: *cores, Protocol: "OCC", Seed: *seed}
		var res core.Result
		var err error
		switch *system {
		case "STRIFE":
			res, err = core.RunBaseline(db, w, partition.NewStrife(*seed), o)
		case "TSKD[S]":
			res, err = core.RunTSKD(db, w, partition.NewStrife(*seed), o)
		case "TSKD[0]":
			res, err = core.RunTSKD(db, w, nil, o)
		case "DBCC":
			res, err = core.RunCC(db, w, o)
		case "TSKD[CC]":
			res, err = core.RunTSKDCC(db, w, o)
		default:
			fail(fmt.Errorf("unknown system %q", *system))
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d committed, %d retries, %d defers, k-core throughput %.0f/s\n",
			res.System, res.Committed, res.Retries, res.Defers, res.VThroughput())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(kind string, n int, theta float64, seed int64) (txn.Workload, error) {
	switch kind {
	case "ycsb":
		cfg := workload.YCSB{Records: 100_000, Theta: theta, Txns: n,
			OpsPerTxn: 16, ReadRatio: 0.5, RMW: true, Seed: seed}
		return cfg.Generate(), nil
	case "tpcc":
		cfg := workload.TPCC{Warehouses: 8, CrossPct: 0.25, Txns: n,
			Items: 400, CustomersPerDistrict: 120, Seed: seed}
		return cfg.Generate(), nil
	default:
		return nil, fmt.Errorf("unknown workload kind %q (want ycsb or tpcc)", kind)
	}
}

func load(path string) txn.Workload {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	w, err := workload.LoadTrace(f)
	if err != nil {
		fail(err)
	}
	return w
}

// rebuildDB creates a database covering every key the trace touches
// (replay does not know the original loader's parameters, so it builds
// the smallest store the trace needs; rows start zeroed).
func rebuildDB(w txn.Workload) *storage.DB {
	db := storage.NewDB()
	tables := map[uint16]bool{}
	for _, t := range w {
		for _, op := range t.Ops {
			id := op.Key.Table()
			if !tables[id] {
				tables[id] = true
				db.CreateTable(id, fmt.Sprintf("t%d", id), 4)
			}
			db.ResolveOrInsert(op.Key)
		}
	}
	return db
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tskd-trace:", err)
	os.Exit(1)
}
