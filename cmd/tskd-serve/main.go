// Command tskd-serve runs the TSKD serving layer: a TCP transaction
// service that bundles open-system arrivals and schedules each bundle
// with TSgen + TsDEFER over the chosen partitioner, streaming
// per-transaction outcomes back to clients (wire protocols:
// internal/client — length-prefixed binary frames with pipelined
// clients, NDJSON as a per-connection negotiated fallback; see
// DESIGN.md §14).
//
// Usage:
//
//	tskd-serve -schema ycsb -records 100000 -part strife -cc SILO
//	tskd-serve -listen :7070 -http :7071 -bundle 512 -flush-interval 10ms
//	tskd-serve -data-dir /var/lib/tskd -checkpoint-bytes 67108864
//	tskd-serve -shards 4 -data-dir /var/lib/tskd
//
// With -shards N > 1 the key space is hash-partitioned over N
// independent engine instances, each with its own store, WAL
// directory, and checkpoint/dedup sidecars. Requests touching one
// shard flow through that shard's bundler; cross-shard requests
// commit via coordinator-driven two-phase commit (presumed abort).
// Startup recovery replays every shard to a consistent cut, resolving
// in-doubt prepares against the coordinator log, before the listener
// accepts traffic. /metrics gains per-shard and 2PC counters.
//
// With -data-dir the server is durable: commits are acknowledged only
// after their WAL group flush fsyncs, checkpoints truncate sealed
// segments in the background, and startup recovers the directory
// (latest valid checkpoint + WAL tail replay) before the listener
// accepts a single connection — kill -9 and restart never loses an
// acknowledged commit. Without it the server is memory-only.
//
// Replication pairs two durable processes:
//
//	tskd-serve -replica-listen :7072 -data-dir /var/lib/tskd-b   # backup
//	tskd-serve -data-dir /var/lib/tskd -replica-of backup:7072 -replica-sync
//	tskd-serve -data-dir /var/lib/tskd-b -promote                # failover
//
// A primary (-replica-of) ships every fsynced WAL flush to the backup;
// with -replica-sync a commit is acknowledged only after the backup's
// fsync. A backup (-replica-listen) runs the receiver only — no
// transaction listener — and mirrors the primary's directory layout,
// never truncating. To fail over, stop the backup receiver and restart
// it as a server over the same directory with -promote: the promotion
// bumps the fencing epoch, so the old primary (should it come back) is
// refused by every future backup and fails its flushes with a fencing
// error instead of acknowledging commits on a dead timeline.
//
// Automatic failover replaces the operator-driven -promote with a
// lease arbiter (internal/arbiter):
//
//	tskd-serve -arbiter-listen :7073 -data-dir /var/lib/tskd-arb  # arbiter
//	tskd-serve -data-dir /var/lib/tskd -replica-of backup:7072 -replica-sync \
//	    -arbiter arb:7073 -announce primary:7070                 # primary
//	tskd-serve -data-dir /var/lib/tskd-b -replica-listen :7072 \
//	    -arbiter arb:7073 -announce backup:7070                  # backup
//
// The primary registers with the arbiter and gates every dispatch and
// WAL flush on its time-bounded lease; if renewals stop (crash,
// partition), the primary self-fences first, then the arbiter durably
// bumps the epoch and grants it to the most-caught-up backup. The
// backup self-promotes on the grant — bumps its directory's fencing
// epoch and falls through to normal serving — and fenced peers answer
// clients with a not_primary redirect naming the new leader.
//
// /healthz and /metrics are served on -http. SIGINT/SIGTERM drains
// gracefully: admission stops, in-flight bundles flush, then the
// process exits. A second signal — or -drain-timeout expiring — hard-
// cancels the in-flight bundle.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tskd/internal/arbiter"
	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/partition"
	"tskd/internal/replica"
	"tskd/internal/server"
	"tskd/internal/storage"
	"tskd/internal/workload"
)

func main() {
	var (
		listen    = flag.String("listen", ":7070", "transaction listener address")
		httpAddr  = flag.String("http", ":7071", "health/metrics address ('' disables)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on -http")
		schema    = flag.String("schema", "ycsb", "database schema to load: ycsb or tpcc")
		records   = flag.Int("records", 100_000, "YCSB table size")
		whn       = flag.Int("whn", 40, "TPC-C warehouses")
		part      = flag.String("part", "strife", "bundle partitioner: strife, schism, horticulture, none")
		ccName    = flag.String("cc", "OCC", "CC protocol")
		workers   = flag.Int("workers", 0, "execution threads (0 = GOMAXPROCS)")
		bundle    = flag.Int("bundle", 512, "max transactions per bundle")
		flushIv   = flag.Duration("flush-interval", 10*time.Millisecond, "max wait before a non-empty bundle flushes")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 4x bundle)")
		opUS      = flag.Int("optime-us", 0, "simulated per-op work in microseconds")
		lookups   = flag.Int("lookups", 2, "TsDEFER #lookups (0 disables deferment)")
		deferP    = flag.Float64("deferp", 0.6, "TsDEFER defer probability")
		seed      = flag.Int64("seed", 1, "random seed")
		shards    = flag.Int("shards", 1, "hash-partitioned shards; >1 routes by key ownership, cross-shard txns commit via 2PC")
		drainTime = flag.Duration("drain-timeout", 30*time.Second, "max graceful drain time before hard cancel")

		deadlineDefault = flag.Duration("deadline-default", 0, "deadline stamped on requests that carry none (0 = none)")
		shedTarget      = flag.Duration("shed-target", 0, "acceptable bundle queue sojourn before shedding arms (0 = 2x flush interval)")
		shedWindow      = flag.Duration("shed-window", 0, "standing-queue window before shedding engages (0 = default 100ms)")
		noShed          = flag.Bool("no-shed", false, "disable adaptive load shedding and brownout mode")
		breakerLatency  = flag.Duration("breaker-latency", 0, "WAL group-flush latency that trips the circuit breaker (0 = default 50ms)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0, "how long the tripped breaker stays open before probing (0 = default 250ms)")
		noBreaker       = flag.Bool("no-breaker", false, "disable the WAL-stall circuit breaker")

		dataDir   = flag.String("data-dir", "", "durable data directory ('' = memory-only, no WAL)")
		walWindow = flag.Duration("wal-window", 2*time.Millisecond, "WAL group-commit window")
		segBytes  = flag.Int64("segment-bytes", 0, "WAL segment rotation size (0 = default)")
		ckptBytes = flag.Int64("checkpoint-bytes", 0, "checkpoint once this many WAL bytes accumulate (0 = default)")
		dedupWin  = flag.Int("dedup-window", 0, "committed idempotency keys remembered (0 = default)")
		noSync    = flag.Bool("no-sync", false, "skip fsync (testing only: an OS crash may lose acked commits)")

		replicaOf     = flag.String("replica-of", "", "backup replication address to ship WAL flushes to (requires -data-dir)")
		replicaListen = flag.String("replica-listen", "", "run as a backup: receive WAL shipments on this address (requires -data-dir; no transaction listener)")
		replicaSync   = flag.Bool("replica-sync", false, "with -replica-of: ack commits only after the backup's fsync")
		promote       = flag.Bool("promote", false, "bump the data directory's fencing epoch before serving (failover of a shipped backup dir)")

		arbListen = flag.String("arbiter-listen", "", "run the lease arbiter on this address instead of serving (requires -data-dir for its decision log)")
		arbAddr   = flag.String("arbiter", "", "arbiter address: a primary registers and lease-gates serving; a backup (-replica-listen) reports lag and self-promotes on the arbiter's grant")
		arbGroup  = flag.String("arbiter-group", "default", "shard-group name registered with the arbiter")
		announce  = flag.String("announce", "", "address clients dial for this node, handed to peers through the arbiter (default: -listen)")
		leaseTTL  = flag.Duration("lease-ttl", time.Second, "with -arbiter-listen: lease TTL handed to primaries")
	)
	flag.Parse()

	if *arbListen != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "tskd-serve: -arbiter-listen requires -data-dir (arbiter decision log)")
			os.Exit(2)
		}
		if *arbAddr != "" || *replicaOf != "" || *replicaListen != "" || *promote {
			fmt.Fprintln(os.Stderr, "tskd-serve: -arbiter-listen is a standalone role")
			os.Exit(2)
		}
		runArbiter(*dataDir, *arbListen, *httpAddr, *leaseTTL)
		return
	}

	if (*replicaOf != "" || *replicaListen != "" || *promote) && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "tskd-serve: -replica-of/-replica-listen/-promote require -data-dir")
		os.Exit(2)
	}
	if *replicaOf != "" && *replicaListen != "" {
		fmt.Fprintln(os.Stderr, "tskd-serve: -replica-of and -replica-listen are mutually exclusive")
		os.Exit(2)
	}
	if *promote {
		epoch, err := replica.Promote(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-serve: promote:", err)
			os.Exit(1)
		}
		fmt.Printf("tskd-serve: promoted %s to epoch %d\n", *dataDir, epoch)
	}
	ann := *announce
	if ann == "" {
		ann = *listen
	}
	if *replicaListen != "" {
		if !runBackup(*dataDir, *replicaListen, *httpAddr, *noSync, *arbAddr, *arbGroup, ann) {
			return
		}
		// Promoted by the arbiter: the directory's fencing epoch is
		// bumped; fall through and serve over it as the new primary.
	}

	if _, err := buildPartitioner(*part, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve:", err)
		os.Exit(2)
	}
	var db *storage.DB
	if *shards <= 1 {
		var err error
		db, err = buildDB(*schema, *records, *whn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-serve:", err)
			os.Exit(2)
		}
	} else if _, err := buildDB(*schema, 1, 1); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve:", err)
		os.Exit(2)
	}
	p, _ := buildPartitioner(*part, *seed)

	cfg := server.Config{
		Addr:          *listen,
		HTTPAddr:      *httpAddr,
		EnablePprof:   *pprofOn,
		Bundle:        *bundle,
		FlushInterval: *flushIv,
		QueueDepth:    *queue,
		DB:            db,
		Partitioner:   p,
		Core: core.Options{
			Workers:  *workers,
			Protocol: *ccName,
			OpTime:   time.Duration(*opUS) * time.Microsecond,
			Defer:    &engine.DeferConfig{Lookups: *lookups, DeferP: *deferP, Horizon: 1, Alpha: 1, MaxDefers: 8, Exact: true},
			Seed:     *seed,
		},
		Overload: server.OverloadOptions{
			DefaultDeadline: *deadlineDefault,
			ShedTarget:      *shedTarget,
			ShedWindow:      *shedWindow,
			DisableShed:     *noShed,
			BreakerLatency:  *breakerLatency,
			BreakerCooldown: *breakerCooldown,
			DisableBreaker:  *noBreaker,
		},
	}
	if *shards > 1 {
		// Sharded mode: each shard owns its own full replica of the
		// schema (ownership is by key hash; a shard simply never touches
		// rows it does not own) and its own partitioner instance, seeded
		// per shard so bundle clustering stays independent.
		schemaName, n, w := *schema, *records, *whn
		partName, baseSeed := *part, *seed
		cfg.DB, cfg.Partitioner = nil, nil
		cfg.Shards = *shards
		cfg.ShardDB = func(int) *storage.DB {
			d, _ := buildDB(schemaName, n, w)
			return d
		}
		cfg.ShardPartitioner = func(i int) partition.Partitioner {
			sp, _ := buildPartitioner(partName, baseSeed+int64(i))
			return sp
		}
	}
	var ship *replica.Shipper
	if *dataDir != "" {
		cfg.Durability = &server.DurabilityOptions{
			Dir:             *dataDir,
			GroupWindow:     *walWindow,
			SegmentBytes:    *segBytes,
			CheckpointBytes: *ckptBytes,
			DedupWindow:     *dedupWin,
			NoSync:          *noSync,
		}
		if *replicaOf != "" {
			// The shipper dials before recovery runs: registration of the
			// directory streams (and their catch-up snapshots) happens
			// inside server.New, before any log opens for appending.
			epoch, err := replica.ReadEpoch(*dataDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tskd-serve:", err)
				os.Exit(1)
			}
			ship, err = replica.NewShipper(replica.ShipperConfig{
				Addr:  *replicaOf,
				Epoch: epoch,
				Sync:  *replicaSync,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "tskd-serve: replication:", err)
				os.Exit(1)
			}
			cfg.Durability.Replication = ship
			mode := "async"
			if *replicaSync {
				mode = "sync"
			}
			fmt.Printf("tskd-serve: replicating to %s (%s, epoch %d)\n", *replicaOf, mode, epoch)
		}
	}
	var lease *arbiter.LeaseClient
	if *arbAddr != "" {
		var epoch uint64
		if ship != nil {
			epoch = ship.Epoch()
		} else if *dataDir != "" {
			var err error
			if epoch, err = replica.ReadEpoch(*dataDir); err != nil {
				fmt.Fprintln(os.Stderr, "tskd-serve:", err)
				os.Exit(1)
			}
		}
		var err error
		lease, err = arbiter.NewLeaseClient(arbiter.LeaseConfig{
			Addr: *arbAddr, Group: *arbGroup, Epoch: epoch, Announce: ann,
			Logf: logfPrefix("tskd-serve: lease"),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-serve:", err)
			os.Exit(2)
		}
		cfg.Lease = lease
		// Hold the lease before any log opens: a durable server's boot
		// record flush runs through the lease gate, so a node the
		// arbiter fences (stale epoch) fails server.New instead of
		// coming up on a dead timeline.
		if !lease.WaitHeld(10 * time.Second) {
			fmt.Fprintln(os.Stderr, "tskd-serve: warning: lease not held (fenced or arbiter unreachable); a durable server will refuse to boot")
		}
		fmt.Printf("tskd-serve: lease-gated by arbiter %s (group=%s epoch=%d announce=%s)\n",
			*arbAddr, *arbGroup, epoch, ann)
	}
	// New runs recovery (checkpoint restore + WAL tail replay) when
	// durable; Start only binds the listeners afterwards, so clients
	// never reach a server that has not finished recovering.
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve:", err)
		os.Exit(2)
	}
	if *dataDir != "" && *shards > 1 {
		r := s.ShardRecovery()
		var replayed, prepares, committed, aborted int
		for _, sh := range r.Shards {
			replayed += sh.Replayed
			prepares += sh.Prepares
			committed += sh.ResolvedCommitted
			aborted += sh.ResolvedAborted
		}
		fmt.Printf("tskd-serve: recovered %s — %d shards, %d records replayed, %d coordinator decisions, %d in-doubt prepares (%d committed, %d presumed aborted)\n",
			*dataDir, len(r.Shards), replayed, r.CoordDecisions, prepares, committed, aborted)
	} else if *dataDir != "" {
		r := s.Recovery()
		fmt.Printf("tskd-serve: recovered %s — checkpoint lsn=%d, %d records replayed, %d idempotency keys, %d segments, next lsn=%d\n",
			*dataDir, r.CheckpointLSN, r.Replayed, r.DedupRestored, r.Segments, r.NextLSN)
	}
	if err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve:", err)
		os.Exit(1)
	}
	partName := "TSKD[0]"
	if p != nil {
		partName = p.Name()
	}
	fmt.Printf("tskd-serve: txns on %s, http on %s (schema=%s part=%s cc=%s bundle=%d flush=%v shards=%d)\n",
		s.Addr(), s.HTTPAddr(), *schema, partName, *ccName, *bundle, *flushIv, *shards)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("tskd-serve: draining (signal again to hard-stop)")

	ctx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	go func() {
		<-sig
		cancel()
	}()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve: hard stop:", err)
	}
	if ship != nil {
		// After Shutdown every log is closed; no flush can race the
		// teardown of the replication connection.
		ship.Close()
	}
	if lease != nil {
		lease.Close()
	}
	st := s.Stats()
	fmt.Printf("tskd-serve: done — %d bundles, %d committed, %d retries, %d rejected, %d shed, %d expired, %d canceled\n",
		st.Bundles, st.Committed, st.Retries, st.Rejected, st.Shed, st.Expired, st.Canceled)
}

// runBackup is -replica-listen mode: the replication receiver over the
// data directory, with /healthz and /metrics on the HTTP address, and
// no transaction listener — a backup serves no reads or writes until
// it is promoted. With an arbiter address it registers as a backup,
// streams lag reports, and self-promotes on the arbiter's grant:
// it stops the receiver, durably bumps the directory's fencing epoch,
// and returns true so main falls through to normal serving.
func runBackup(dataDir, listenAddr, httpAddr string, noSync bool, arbAddr, group, announce string) (promoted bool) {
	srv, err := replica.NewServer(replica.ServerConfig{Dir: dataDir, NoSync: noSync})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve: backup:", err)
		os.Exit(1)
	}
	if err := srv.Start(listenAddr); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve: backup:", err)
		os.Exit(1)
	}
	var httpLn net.Listener
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "ok\nrole=backup epoch=%d\n", srv.Epoch())
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Role string `json:"role"`
				replica.ServerStats
			}{"backup", srv.Stats()})
		})
		if httpLn, err = net.Listen("tcp", httpAddr); err != nil {
			fmt.Fprintln(os.Stderr, "tskd-serve: backup:", err)
			os.Exit(1)
		}
		go http.Serve(httpLn, mux)
	}
	var agent *arbiter.BackupAgent
	granted := make(<-chan uint64) // never fires without an arbiter
	if arbAddr != "" {
		agent, err = arbiter.StartBackupAgent(arbiter.BackupConfig{
			Addr: arbAddr, Group: group, Announce: announce,
			Seq:  func() uint64 { return srv.Stats().LastSeq },
			Logf: logfPrefix("tskd-serve: backup"),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-serve: backup:", err)
			os.Exit(2)
		}
		granted = agent.Granted()
	}
	fmt.Printf("tskd-serve: backup receiving on %s over %s (epoch %d), http on %s\n",
		srv.Addr(), dataDir, srv.Epoch(), httpAddr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		signal.Stop(sig)
		if agent != nil {
			agent.Close()
		}
		srv.Close()
		st := srv.Stats()
		fmt.Printf("tskd-serve: backup done — %d snapshots, %d appends, %d bytes, last seq %d\n",
			st.Snapshots, st.Appends, st.AppendedBytes, st.LastSeq)
		return false
	case epoch := <-granted:
		// Promotion: stop receiving first (no shipment from the deposed
		// primary lands after this), then bump the fencing epoch exactly
		// as an operator's -promote would. The epoch write is atomic and
		// fsynced, so a crash here leaves either the old epoch (the
		// arbiter re-grants to us on re-register) or the new one.
		signal.Stop(sig)
		agent.Close()
		srv.Close()
		if httpLn != nil {
			httpLn.Close() // free -http for the serving layer
		}
		if err := replica.WriteEpoch(dataDir, epoch); err != nil {
			fmt.Fprintln(os.Stderr, "tskd-serve: promote:", err)
			os.Exit(1)
		}
		fmt.Printf("tskd-serve: arbiter granted epoch %d — promoting %s and serving\n", epoch, dataDir)
		return true
	}
}

// runArbiter is -arbiter-listen mode: the standalone lease service.
func runArbiter(dataDir, listenAddr, httpAddr string, ttl time.Duration) {
	arb, err := arbiter.New(arbiter.Config{
		Dir:      dataDir,
		LeaseTTL: ttl,
		Logf:     logfPrefix("tskd-arbiter"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve: arbiter:", err)
		os.Exit(1)
	}
	if err := arb.Start(listenAddr); err != nil {
		fmt.Fprintln(os.Stderr, "tskd-serve: arbiter:", err)
		os.Exit(1)
	}
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "ok\nrole=arbiter groups=%d\n", len(arb.Snapshot()))
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Role   string                `json:"role"`
				Groups []arbiter.GroupStatus `json:"groups"`
			}{"arbiter", arb.Snapshot()})
		})
		go http.ListenAndServe(httpAddr, mux)
	}
	fmt.Printf("tskd-serve: arbiter on %s over %s (lease ttl %v), http on %s\n",
		arb.Addr(), dataDir, ttl, httpAddr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	arb.Close()
	fmt.Println("tskd-serve: arbiter done")
}

// logfPrefix adapts fmt.Printf to the Logf hooks with a fixed prefix.
func logfPrefix(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		fmt.Printf(prefix+": "+format+"\n", args...)
	}
}

func buildDB(schema string, records, whn int) (*storage.DB, error) {
	switch strings.ToLower(schema) {
	case "ycsb":
		c := workload.DefaultYCSB()
		c.Records = records
		return c.BuildDB(), nil
	case "tpcc":
		c := workload.DefaultTPCC()
		c.Warehouses = whn
		return c.BuildDB(), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (ycsb, tpcc)", schema)
	}
}

func buildPartitioner(name string, seed int64) (partition.Partitioner, error) {
	switch strings.ToLower(name) {
	case "strife":
		return partition.NewStrife(seed), nil
	case "schism":
		return partition.NewSchism(seed), nil
	case "horticulture":
		return partition.NewHorticulture(), nil
	case "none", "":
		return nil, nil // TSKD[0]: schedule from scratch
	default:
		return nil, fmt.Errorf("unknown partitioner %q (strife, schism, horticulture, none)", name)
	}
}
