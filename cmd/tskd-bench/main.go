// Command tskd-bench regenerates the paper's experiments: every figure
// and table of Section 6, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	tskd-bench -exp fig4a              # one experiment, full scale
//	tskd-bench -exp all -scale quick   # everything, reduced scale
//	tskd-bench -list                   # list experiment ids
//
// Results print as aligned text tables with the paper's expected
// qualitative shape noted above each.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"tskd/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all')")
		scale   = flag.String("scale", "full", "parameter scale: full, mid, or quick")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		seed    = flag.Int64("seed", 1, "random seed")
		bundle  = flag.Int("bundle", 0, "override bundle size")
		cores   = flag.Int("cores", 0, "override #core")
		ccName  = flag.String("cc", "", "override CC protocol")
		opUS    = flag.Int("optime-us", -1, "override per-op work in microseconds")
		csvDir  = flag.String("csv", "", "also write each experiment's rows to <dir>/<id>.csv")
		jsonDir = flag.String("json", "", "also write each experiment's rows to <dir>/<id>.json")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tskd-bench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tskd-bench:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tskd-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tskd-bench:", err)
			}
		}()
	}

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: tskd-bench -exp <id|all> [-scale quick|full]")
		fmt.Fprintln(os.Stderr, "known experiments:", harness.ExperimentIDs())
		os.Exit(2)
	}

	p := harness.Default()
	switch *scale {
	case "quick":
		p = harness.Quick()
	case "mid":
		p = harness.Mid()
	}
	p.Seed = *seed
	if *bundle > 0 {
		p.Bundle = *bundle
	}
	if *cores > 0 {
		p.Cores = *cores
	}
	if *ccName != "" {
		p.CC = *ccName
	}
	if *opUS >= 0 {
		p.OpTime = time.Duration(*opUS) * time.Microsecond
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.ExperimentIDs()
	}
	var tables []*harness.Table
	for _, id := range ids {
		start := time.Now()
		t, err := harness.Experiment(id, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tskd-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		t.Print(os.Stdout)
		if *csvDir != "" {
			if err := writeTableFile(*csvDir, id+".csv", t.WriteCSV); err != nil {
				fmt.Fprintf(os.Stderr, "tskd-bench: csv: %v\n", err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			if err := writeTableFile(*jsonDir, id+".json", t.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "tskd-bench: json: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		tables = append(tables, t)
	}
	if len(tables) > 1 {
		harness.Summarize(tables).Print(os.Stdout)
	}
}

func writeTableFile(dir, name string, write func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
