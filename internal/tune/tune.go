// Package tune searches for TSKD parameter settings specialized to a
// given workload — the paper's first future-work item ("develop ML
// models that decide TSKD parameters specialized for given
// workloads"). Instead of a learned model, it uses the direct
// approach: measure candidate knob settings on a sample of the bundle
// and climb to the best, which is cheap because bundles are
// homogeneous within a batch.
package tune

import (
	"math/rand"

	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// Knobs are the TsDEFER parameters the tuner explores (Section 5).
type Knobs struct {
	// Lookups is #lookups ∈ {0..8}.
	Lookups int
	// DeferP is deferp% ∈ [0, 1].
	DeferP float64
	// Horizon is the look-ahead window ∈ {1..8}.
	Horizon int
}

// DefaultKnobs returns the Table 1 defaults.
func DefaultKnobs() Knobs { return Knobs{Lookups: 2, DeferP: 0.6, Horizon: 1} }

// Objective scores a knob setting; higher is better. Implementations
// are expected to be noisy — the search re-evaluates the incumbent.
type Objective func(Knobs) float64

// Search performs coordinate descent over the knob space with the
// given evaluation budget. It returns the best setting found and its
// score. Deterministic per seed.
func Search(obj Objective, budget int, seed int64) (Knobs, float64) {
	rng := rand.New(rand.NewSource(seed))
	best := DefaultKnobs()
	bestScore := obj(best)
	budget--

	lookupSteps := []int{-2, -1, 1, 2}
	deferSteps := []float64{-0.2, -0.1, 0.1, 0.2}
	horizonSteps := []int{-2, -1, 1, 2}

	for budget > 0 {
		cand := best
		switch rng.Intn(3) {
		case 0:
			cand.Lookups = clampInt(best.Lookups+lookupSteps[rng.Intn(len(lookupSteps))], 0, 8)
		case 1:
			cand.DeferP = clampF(best.DeferP+deferSteps[rng.Intn(len(deferSteps))], 0, 1)
		default:
			cand.Horizon = clampInt(best.Horizon+horizonSteps[rng.Intn(len(horizonSteps))], 1, 8)
		}
		if cand == best {
			continue
		}
		score := obj(cand)
		budget--
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best, bestScore
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ForWorkload builds an Objective that measures TSKD[CC] throughput on
// a sample of the bundle against db, then searches with the given
// budget. sampleFrac in (0,1] bounds the probe cost; the returned
// knobs feed the full run.
//
// The sample runs mutate db; use a scratch copy, or accept the
// mutations the way the harness's database reuse does (access patterns
// do not depend on row values).
func ForWorkload(db *storage.DB, w txn.Workload, o core.Options, sampleFrac float64, budget int) (Knobs, float64) {
	if sampleFrac <= 0 || sampleFrac > 1 {
		sampleFrac = 0.2
	}
	n := int(float64(len(w)) * sampleFrac)
	if n < 1 {
		n = 1
	}
	sample := w[:n]
	obj := func(k Knobs) float64 {
		opts := o
		opts.Defer = &engine.DeferConfig{
			Lookups: k.Lookups, DeferP: k.DeferP, Horizon: k.Horizon,
			Alpha: 1, MaxDefers: 8, Exact: true,
		}
		res, err := core.RunTSKDCC(db, sample, opts)
		if err != nil {
			return 0
		}
		return res.VThroughput()
	}
	return Search(obj, budget, o.Seed)
}
