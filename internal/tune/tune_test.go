package tune

import (
	"math"
	"testing"

	"tskd/internal/core"
	"tskd/internal/workload"
)

// A synthetic objective with a known optimum at (Lookups=4,
// DeferP=0.8, Horizon=3).
func synthetic(k Knobs) float64 {
	return -math.Abs(float64(k.Lookups)-4) -
		3*math.Abs(k.DeferP-0.8) -
		math.Abs(float64(k.Horizon)-3)
}

func TestSearchFindsOptimumRegion(t *testing.T) {
	best, score := Search(synthetic, 200, 1)
	if score < -1.0 {
		t.Errorf("search stalled at %+v (score %v)", best, score)
	}
	if best.Lookups < 3 || best.Lookups > 5 {
		t.Errorf("Lookups = %d, want near 4", best.Lookups)
	}
	if best.DeferP < 0.6 || best.DeferP > 1.0 {
		t.Errorf("DeferP = %v, want near 0.8", best.DeferP)
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	a, _ := Search(synthetic, 60, 7)
	b, _ := Search(synthetic, 60, 7)
	if a != b {
		t.Error("same seed diverged")
	}
}

func TestSearchRespectsBounds(t *testing.T) {
	// An objective that pushes every knob outward must stay clamped.
	outward := func(k Knobs) float64 {
		return float64(k.Lookups) + k.DeferP + float64(k.Horizon)
	}
	best, _ := Search(outward, 300, 2)
	if best.Lookups > 8 || best.DeferP > 1 || best.Horizon > 8 {
		t.Errorf("bounds violated: %+v", best)
	}
	inward := func(k Knobs) float64 {
		return -float64(k.Lookups) - k.DeferP - float64(k.Horizon)
	}
	best, _ = Search(inward, 300, 2)
	if best.Lookups < 0 || best.DeferP < 0 || best.Horizon < 1 {
		t.Errorf("bounds violated: %+v", best)
	}
}

func TestSearchBudgetOne(t *testing.T) {
	calls := 0
	obj := func(Knobs) float64 { calls++; return 0 }
	Search(obj, 1, 1)
	if calls != 1 {
		t.Errorf("budget 1 made %d calls", calls)
	}
}

func TestForWorkloadIntegration(t *testing.T) {
	cfg := workload.YCSB{
		Records: 2000, Theta: 0.9, Txns: 300, OpsPerTxn: 8,
		ReadRatio: 0.5, RMW: true, Seed: 5,
	}
	db := cfg.BuildDB()
	w := cfg.Generate()
	o := core.Options{Workers: 4, Protocol: "OCC", Seed: 5}
	knobs, score := ForWorkload(db, w, o, 0.3, 6)
	if score <= 0 {
		t.Fatalf("objective never scored: %+v %v", knobs, score)
	}
	if knobs.Lookups < 0 || knobs.Lookups > 8 {
		t.Errorf("implausible knobs: %+v", knobs)
	}
}
