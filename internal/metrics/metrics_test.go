package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero histogram not zero")
	}
	h.Record(100 * time.Microsecond)
	h.Record(200 * time.Microsecond)
	h.Record(300 * time.Microsecond)
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 200*time.Microsecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 300*time.Microsecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

// Quantiles must be within the documented ~12% relative error of exact.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var exact []time.Duration
	for i := 0; i < 20000; i++ {
		d := time.Duration(rng.Intn(1_000_000)+1) * time.Nanosecond
		h.Record(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := exact[int(q*float64(len(exact)-1))]
		got := h.Quantile(q)
		ratio := float64(got) / float64(want)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("q=%v: got %v want %v (ratio %.3f)", q, got, want, ratio)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 200; i++ {
			h.Record(time.Duration(rng.Intn(1 << 30)))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(0) >= h.Min() && h.Quantile(1) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 200*time.Millisecond {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 80*time.Millisecond || med > 120*time.Millisecond {
		t.Errorf("merged median = %v", med)
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 200 {
		t.Error("merging empty changed count")
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-5) // clamped into bucket 0
	h.Record(18 * time.Second)
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Quantile(1) > 18*time.Second {
		t.Errorf("q1 = %v", h.Quantile(1))
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{1, 7, 8, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		b := bucketOf(d)
		lo := bucketLow(b)
		if lo > d {
			t.Errorf("bucketLow(%d)=%v above sample %v", b, lo, d)
		}
		// The next bucket's low bound must be above d.
		if b+1 < len((&Histogram{}).counts) {
			hi := bucketLow(b + 1)
			if hi <= d && hi > lo {
				t.Errorf("sample %v not inside bucket %d [%v,%v)", d, b, lo, hi)
			}
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistogramPrint(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	var sb strings.Builder
	h.Print(&sb, "lat")
	if !strings.Contains(sb.String(), "lat: n=1") {
		t.Errorf("Print output %q", sb.String())
	}
}

func TestHistogramDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(rng.Intn(1<<32) + 1))
	}
	got, err := FromData(h.Data())
	if err != nil {
		t.Fatalf("FromData: %v", err)
	}
	if *got != h {
		t.Error("round trip not identical")
	}
	// Empty round-trips too.
	var empty Histogram
	got, err = FromData(empty.Data())
	if err != nil || got.Count() != 0 {
		t.Errorf("empty round trip: %v, count=%d", err, got.Count())
	}
}

// Reconstructing per-worker histograms from exported data and merging
// them must equal recording the whole population into one histogram —
// the invariant the distributed bench coordinator relies on.
func TestHistogramDataMergeEqualsPopulation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var whole Histogram
		parts := make([]Histogram, 1+rng.Intn(6))
		for i := 0; i < 2000; i++ {
			d := time.Duration(rng.Intn(1 << 34))
			whole.Record(d)
			parts[rng.Intn(len(parts))].Record(d)
		}
		var merged Histogram
		for i := range parts {
			p, err := FromData(parts[i].Data())
			if err != nil {
				return false
			}
			merged.Merge(p)
		}
		return merged == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHistogramDataRejectsCorrupt(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	base := h.Data()
	cases := map[string]HistogramData{
		"index out of range": {Buckets: [][2]uint64{{9999, 1}}, Total: 1, MinNS: 1, MaxNS: 1, SumNS: 1},
		"not ascending":      {Buckets: [][2]uint64{{5, 1}, {5, 1}}, Total: 2, MinNS: 1, MaxNS: 1, SumNS: 2},
		"zero-count bucket":  {Buckets: [][2]uint64{{5, 0}}, Total: 0, MinNS: 0, MaxNS: 0},
		"sum mismatch":       {Buckets: base.Buckets, Total: base.Total + 1, MinNS: base.MinNS, MaxNS: base.MaxNS, SumNS: base.SumNS},
		"min above max":      {Buckets: base.Buckets, Total: base.Total, MinNS: 10, MaxNS: 1, SumNS: base.SumNS},
		"negative sum":       {Buckets: base.Buckets, Total: base.Total, MinNS: base.MinNS, MaxNS: base.MaxNS, SumNS: -1},
	}
	for name, d := range cases {
		if _, err := FromData(d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("commits", 5)
	c.Add("aborts", 2)
	c.Add("commits", 3)
	if c.Get("commits") != 8 || c.Get("aborts") != 2 || c.Get("missing") != 0 {
		t.Error("counter values wrong")
	}
	d := NewCounters()
	d.Add("commits", 1)
	d.Add("defers", 4)
	c.Merge(d)
	if c.Get("commits") != 9 || c.Get("defers") != 4 {
		t.Error("merge wrong")
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "commits" {
		t.Errorf("Names = %v", names)
	}
}
