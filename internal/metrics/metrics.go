// Package metrics provides the measurement primitives the engine and
// harness build on: log-bucketed duration histograms (HDR-style, fixed
// memory, no allocation on record) and simple counters with snapshot
// semantics. Workers record into private instances; aggregation merges
// them after the run, so the hot path is entirely uncontended.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"
)

// histBuckets spans 1ns..~18s in 64 log2 buckets with 8 sub-buckets
// each for ~12% relative error.
const (
	subBits    = 3
	subBuckets = 1 << subBits
)

// Histogram is a log-bucketed duration histogram. The zero value is
// ready to use. Not safe for concurrent use; merge per-worker
// instances instead.
type Histogram struct {
	counts [64 * subBuckets]uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	v := uint64(d)
	msb := 63 - bits.LeadingZeros64(v)
	if msb < subBits {
		return int(v)
	}
	sub := (v >> (uint(msb) - subBits)) & (subBuckets - 1)
	return (msb-subBits+1)*subBuckets + int(sub)
}

// bucketLow returns the lower bound of bucket i (inverse of bucketOf).
func bucketLow(i int) time.Duration {
	if i < subBuckets {
		return time.Duration(i)
	}
	msb := i/subBuckets + subBits - 1
	sub := uint64(i % subBuckets)
	return time.Duration(1<<uint(msb) | sub<<(uint(msb)-subBits))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min and Max return the extreme observations (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the approximate q-quantile (q in [0,1]); the answer
// is the lower bound of the bucket containing the target rank, so the
// relative error is bounded by the bucket width (~12%).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total-1))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Print writes a compact summary.
func (h *Histogram) Print(w io.Writer, name string) {
	fmt.Fprintf(w, "%s: n=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
		name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// HistogramSnapshot is an exported point-in-time view of a Histogram,
// shaped for JSON (machine-readable bench output, the serving layer's
// /metrics endpoint). Durations are microseconds.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MinUS  float64 `json:"min_us"`
	MaxUS  float64 `json:"max_us"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Snapshot exports the histogram's summary statistics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		MeanUS: us(h.Mean()),
		P50US:  us(h.Quantile(0.50)),
		P95US:  us(h.Quantile(0.95)),
		P99US:  us(h.Quantile(0.99)),
		MinUS:  us(h.Min()),
		MaxUS:  us(h.Max()),
	}
}

// HistogramData is a portable full-resolution export of a Histogram:
// the sparse bucket counts plus the summary moments, shaped for JSON.
// Unlike HistogramSnapshot (which carries only pre-computed quantiles),
// HistogramData round-trips losslessly through FromData, so histograms
// recorded in different processes can be shipped over a wire and merged
// into exact whole-population percentiles — merging data, never
// averaging per-source percentiles.
type HistogramData struct {
	// Buckets holds [bucketIndex, count] pairs for non-empty buckets,
	// in ascending index order.
	Buckets [][2]uint64 `json:"buckets,omitempty"`
	Total   uint64      `json:"total"`
	SumNS   int64       `json:"sum_ns"`
	MinNS   int64       `json:"min_ns"`
	MaxNS   int64       `json:"max_ns"`
}

// Data exports the histogram's full bucket contents.
func (h *Histogram) Data() HistogramData {
	d := HistogramData{
		Total: h.total,
		SumNS: int64(h.sum),
		MinNS: int64(h.min),
		MaxNS: int64(h.max),
	}
	for i, c := range h.counts {
		if c != 0 {
			d.Buckets = append(d.Buckets, [2]uint64{uint64(i), c})
		}
	}
	return d
}

// FromData reconstructs a histogram from an export, validating the
// invariants a hostile or corrupted file could violate: bucket indices
// in range and strictly ascending, counts non-zero, and the bucket sum
// equal to the declared total.
func FromData(d HistogramData) (*Histogram, error) {
	h := &Histogram{}
	if d.Total == 0 {
		if len(d.Buckets) != 0 {
			return nil, fmt.Errorf("metrics: histogram data: %d buckets but total=0", len(d.Buckets))
		}
		return h, nil
	}
	var sum uint64
	last := -1
	for _, b := range d.Buckets {
		idx, c := b[0], b[1]
		if idx >= uint64(len(h.counts)) {
			return nil, fmt.Errorf("metrics: histogram data: bucket index %d out of range", idx)
		}
		if int(idx) <= last {
			return nil, fmt.Errorf("metrics: histogram data: bucket index %d not ascending", idx)
		}
		if c == 0 {
			return nil, fmt.Errorf("metrics: histogram data: empty bucket %d present", idx)
		}
		if sum+c < sum {
			return nil, fmt.Errorf("metrics: histogram data: bucket counts overflow")
		}
		last = int(idx)
		h.counts[idx] = c
		sum += c
	}
	if sum != d.Total {
		return nil, fmt.Errorf("metrics: histogram data: bucket sum %d != total %d", sum, d.Total)
	}
	if d.MinNS < 0 || d.MaxNS < 0 || d.SumNS < 0 || d.MinNS > d.MaxNS {
		return nil, fmt.Errorf("metrics: histogram data: inconsistent min/max/sum (%d/%d/%d)", d.MinNS, d.MaxNS, d.SumNS)
	}
	h.total = d.Total
	h.sum = time.Duration(d.SumNS)
	h.min = time.Duration(d.MinNS)
	h.max = time.Duration(d.MaxNS)
	return h, nil
}

// Counters is a named counter set with deterministic iteration order.
type Counters struct {
	names  []string
	values map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Add increments name by delta.
func (c *Counters) Add(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Get returns name's value (0 if never added).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Merge folds other into c.
func (c *Counters) Merge(other *Counters) {
	keys := append([]string(nil), other.names...)
	sort.Strings(keys)
	for _, k := range keys {
		c.Add(k, other.values[k])
	}
}

// Names returns the counter names in first-added order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Snapshot exports the counters as a plain map (for JSON encoding).
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.names))
	for _, n := range c.names {
		out[n] = c.values[n]
	}
	return out
}
