package overload

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"tskd/internal/clock"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestShedderTraces drives the shedder with hand-written sojourn
// timelines on a fake clock and checks the resulting level and per-
// class drop probabilities at each step. No sleeps: time only moves
// when the trace says so.
func TestShedderTraces(t *testing.T) {
	const (
		target = 5 * time.Millisecond
		window = 100 * time.Millisecond
	)
	type step struct {
		advance time.Duration // clock movement before the observation
		sojourn time.Duration
		level   float64 // expected level after the observation
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			// Below target: level stays at zero, nothing sheds.
			name: "idle",
			steps: []step{
				{10 * time.Millisecond, 1 * time.Millisecond, 0},
				{10 * time.Millisecond, 4 * time.Millisecond, 0},
				{10 * time.Millisecond, 5 * time.Millisecond, 0},
			},
		},
		{
			// A burst shorter than the window never engages shedding:
			// sojourn spikes but drops back before Window elapses.
			name: "short burst tolerated",
			steps: []step{
				{0, 20 * time.Millisecond, 0},                     // goes above; arms the window
				{50 * time.Millisecond, 20 * time.Millisecond, 0}, // still inside the window
				{30 * time.Millisecond, 2 * time.Millisecond, 0},  // drains before 100ms
				{10 * time.Millisecond, 20 * time.Millisecond, 0}, // new burst re-arms
				{90 * time.Millisecond, 15 * time.Millisecond, 0}, // 90ms < window
				{5 * time.Millisecond, 1 * time.Millisecond, 0},   // drains again
			},
		},
		{
			// A standing queue ramps the level: sojourn 2x target held
			// past the window adds Step*(2-1)=0.1 per observation.
			name: "standing queue ramps",
			steps: []step{
				{0, 10 * time.Millisecond, 0},                        // arms
				{100 * time.Millisecond, 10 * time.Millisecond, 0.1}, // window elapsed
				{10 * time.Millisecond, 10 * time.Millisecond, 0.2},
				{10 * time.Millisecond, 10 * time.Millisecond, 0.3},
			},
		},
		{
			// The per-observation increment is capped at 4*Step even for
			// huge excess, and the level saturates at 1.
			name: "increment cap and saturation",
			steps: []step{
				{0, time.Second, 0},
				{100 * time.Millisecond, time.Second, 0.4},
				{10 * time.Millisecond, time.Second, 0.8},
				{10 * time.Millisecond, time.Second, 1.0},
				{10 * time.Millisecond, time.Second, 1.0},
			},
		},
		{
			// Recovery decays linearly once sojourn is back under target.
			name: "decay",
			steps: []step{
				{0, 10 * time.Millisecond, 0},
				{100 * time.Millisecond, 10 * time.Millisecond, 0.1},
				{10 * time.Millisecond, 10 * time.Millisecond, 0.2},
				{10 * time.Millisecond, 1 * time.Millisecond, 0.15},
				{10 * time.Millisecond, 1 * time.Millisecond, 0.1},
				{10 * time.Millisecond, 1 * time.Millisecond, 0.05},
				{10 * time.Millisecond, 1 * time.Millisecond, 0},
				{10 * time.Millisecond, 1 * time.Millisecond, 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := clock.NewFake(time.Unix(0, 0))
			s := NewShedder(ShedConfig{Target: target, Window: window, Clock: fc})
			for i, st := range tc.steps {
				fc.Advance(st.advance)
				s.Observe(st.sojourn)
				if got := s.Level(); !almost(got, st.level) {
					t.Fatalf("step %d: level = %v, want %v", i, got, st.level)
				}
				wantLow := math.Min(1, 2*st.level)
				wantHigh := math.Min(MaxHighShedProb, math.Max(0, 2*st.level-1))
				if got := s.Prob(PriLow); !almost(got, wantLow) {
					t.Fatalf("step %d: P(shed|low) = %v, want %v", i, got, wantLow)
				}
				if got := s.Prob(PriHigh); !almost(got, wantHigh) {
					t.Fatalf("step %d: P(shed|high) = %v, want %v", i, got, wantHigh)
				}
			}
		})
	}
}

// TestShedderPriority pins the low-sheds-first contract at
// characteristic levels via the pure ShouldShed decision.
func TestShedderPriority(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	s := NewShedder(ShedConfig{Target: time.Millisecond, Window: 10 * time.Millisecond, Step: 0.25, Clock: fc})
	// Ramp to level 0.25: low sheds at p=0.5, high not at all.
	s.Observe(2 * time.Millisecond)
	fc.Advance(10 * time.Millisecond)
	s.Observe(2 * time.Millisecond) // +0.25
	if got := s.Level(); !almost(got, 0.25) {
		t.Fatalf("level = %v, want 0.25", got)
	}
	if s.ShouldShed(PriHigh, 0.0) {
		t.Fatal("high priority shed below saturation")
	}
	if !s.ShouldShed(PriLow, 0.49) || s.ShouldShed(PriLow, 0.51) {
		t.Fatal("low priority should shed exactly below p=0.5")
	}
	if s.Saturated() {
		t.Fatal("saturated at level 0.25")
	}
	// Two more observations: level 0.75, all low shed, high at p=0.5.
	s.Observe(2 * time.Millisecond)
	s.Observe(2 * time.Millisecond)
	if got := s.Level(); !almost(got, 0.75) {
		t.Fatalf("level = %v, want 0.75", got)
	}
	if !s.Saturated() {
		t.Fatal("not saturated at level 0.75")
	}
	if !s.ShouldShed(PriLow, 0.999) {
		t.Fatal("low priority not fully shed at level 0.75")
	}
	if !s.ShouldShed(PriHigh, 0.49) || s.ShouldShed(PriHigh, 0.51) {
		t.Fatal("high priority should shed exactly below p=0.5 at level 0.75")
	}
	if s.Backoff() <= 0 {
		t.Fatal("no backoff hint while shedding")
	}
}

// TestShedderHighPriorityProbeTrickle pins the lockout safeguard: even
// fully saturated, some high-priority traffic must survive — the level
// only decays through bundle observations, so a total shed would have
// nothing left to observe recovery with.
func TestShedderHighPriorityProbeTrickle(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	s := NewShedder(ShedConfig{Target: time.Millisecond, Window: 10 * time.Millisecond, Clock: fc})
	s.Observe(time.Second)
	fc.Advance(20 * time.Millisecond)
	s.Observe(time.Second)
	s.Observe(time.Second)
	s.Observe(time.Second)
	if got := s.Level(); !almost(got, 1.0) {
		t.Fatalf("level = %v, want saturated at 1", got)
	}
	if got := s.Prob(PriLow); !almost(got, 1.0) {
		t.Fatalf("P(shed|low) = %v at level 1, want 1", got)
	}
	if got := s.Prob(PriHigh); !almost(got, MaxHighShedProb) {
		t.Fatalf("P(shed|high) = %v at level 1, want cap %v", got, MaxHighShedProb)
	}
	if s.ShouldShed(PriHigh, MaxHighShedProb+1e-6) {
		t.Fatal("high-priority probe trickle shed at full saturation")
	}
}

// TestBreakerTransitions walks the breaker through a scripted timeline
// of flushes and admissions on a fake clock.
func TestBreakerTransitions(t *testing.T) {
	const (
		trip     = 50 * time.Millisecond
		cooldown = 200 * time.Millisecond
	)
	fc := clock.NewFake(time.Unix(0, 0))
	var transitions []string
	b := NewBreaker(BreakerConfig{
		TripLatency: trip, Cooldown: cooldown, HalfOpenProbes: 2, Clock: fc,
		OnTransition: func(from, to BreakerState) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		},
	})

	// Healthy flushes keep it closed.
	b.FlushStart()
	fc.Advance(2 * time.Millisecond)
	b.FlushEnd(2*time.Millisecond, nil)
	if ok, _ := b.Allow(); !ok || b.State() != BreakerClosed {
		t.Fatal("healthy breaker should admit")
	}

	// A slow flush trips it.
	b.FlushStart()
	fc.Advance(120 * time.Millisecond)
	b.FlushEnd(120*time.Millisecond, nil)
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d after slow flush", b.State(), b.Trips())
	}
	if ok, ra := b.Allow(); ok || ra <= 0 {
		t.Fatalf("open breaker admitted (ok=%v retryAfter=%v)", ok, ra)
	}
	if b.RetryAfter() <= 0 {
		t.Fatal("open breaker should hint a retry-after")
	}

	// Cooldown elapses: half-open, probe budget of 2.
	fc.Advance(cooldown)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("first half-open probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("second half-open probe refused")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("third admission should wait for the flush verdict")
	}

	// The probe's flush comes back fast: closed again.
	b.FlushStart()
	fc.Advance(time.Millisecond)
	b.FlushEnd(time.Millisecond, nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after clean probe flush, want closed", b.State())
	}

	// An in-flight flush hung past the threshold trips at admission
	// time, before FlushEnd ever runs.
	b.FlushStart()
	fc.Advance(trip + time.Millisecond)
	if ok, ra := b.Allow(); ok || ra <= 0 {
		t.Fatal("hung in-flight flush should trip at admission")
	}
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state = %v trips = %d after hung flush", b.State(), b.Trips())
	}
	// The hung flush finally fails: stays open, no double trip count
	// for an already-open breaker.
	b.FlushEnd(trip+time.Millisecond, errors.New("device died"))
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state = %v trips = %d after late failure", b.State(), b.Trips())
	}

	// A slow probe flush re-opens from half-open.
	fc.Advance(cooldown)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe refused after second cooldown")
	}
	b.FlushStart()
	fc.Advance(trip * 2)
	b.FlushEnd(trip*2, nil)
	if b.State() != BreakerOpen || b.Trips() != 3 {
		t.Fatalf("state = %v trips = %d after slow probe", b.State(), b.Trips())
	}

	want := []string{
		"closed->open", "open->half-open", "half-open->closed",
		"closed->open", "open->half-open", "half-open->open",
	}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

// TestBreakerProbeWaveRearm pins the half-open starvation safeguard: if
// every granted probe dies upstream (shed, expired before execution, a
// dropped connection) the flush verdict the breaker is waiting for
// never arrives. With nothing in flight and the wave older than the
// trip latency, Allow must arm a fresh wave instead of rejecting
// forever.
func TestBreakerProbeWaveRearm(t *testing.T) {
	const (
		trip     = 50 * time.Millisecond
		cooldown = 200 * time.Millisecond
	)
	fc := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{TripLatency: trip, Cooldown: cooldown, HalfOpenProbes: 2, Clock: fc})
	b.FlushStart()
	fc.Advance(trip * 2)
	b.FlushEnd(trip*2, nil) // trip
	fc.Advance(cooldown)

	// Drain the probe wave; while it is fresh the breaker holds the
	// line awaiting a verdict.
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("probe %d refused", i)
		}
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("fresh exhausted wave should wait for the flush verdict")
	}

	// The probes all died without a flush. Past the trip latency with
	// nothing in flight, a new wave arms.
	fc.Advance(trip + time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("stale verdict-less wave not re-armed")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after re-arm, want half-open", b.State())
	}

	// But an in-flight flush blocks the re-arm: the verdict is coming.
	for ok, _ := b.Allow(); ok; ok, _ = b.Allow() {
	}
	fc.Advance(40 * time.Millisecond)
	b.FlushStart()
	fc.Advance(20 * time.Millisecond) // wave 60ms stale, flight only 20ms old
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-armed despite an in-flight flush")
	}
	b.FlushEnd(20*time.Millisecond, nil) // fast enough: closes
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after clean flush, want closed", b.State())
	}
}

// TestBreakerFlushError pins that an erroring flush trips regardless of
// latency.
func TestBreakerFlushError(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{Clock: fc})
	b.FlushStart()
	b.FlushEnd(time.Microsecond, errors.New("EIO"))
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after flush error, want open", b.State())
	}
}

func TestEventLogRing(t *testing.T) {
	e := NewEventLog(3)
	now := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		e.Record(now.Add(time.Duration(i)*time.Second), "k", fmt.Sprint(i))
	}
	snap := e.Snapshot()
	if len(snap) != 3 || snap[0].Detail != "2" || snap[2].Detail != "4" {
		t.Fatalf("snapshot = %+v, want details 2..4 oldest-first", snap)
	}
	if e.Total() != 5 {
		t.Fatalf("total = %d, want 5", e.Total())
	}
}
