package overload

import (
	"sync"
	"time"

	"tskd/internal/clock"
)

// BreakerState is the circuit breaker's state.
type BreakerState int32

const (
	// BreakerClosed: WAL healthy, durable admissions flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the log device is stalling; durable admissions fail
	// fast with a retry-after hint instead of queueing unbounded acks.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; a bounded number of probe
	// admissions are let through, and the next flush verdict decides
	// between Closed and Open.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes the WAL-stall breaker. Zero values take
// defaults.
type BreakerConfig struct {
	// TripLatency trips the breaker two ways: a finished group flush
	// slower than this, or an in-flight flush older than this at
	// admission time (the in-flight check catches a hung fsync before
	// it ever returns). Default 50ms.
	TripLatency time.Duration
	// Cooldown is how long the breaker stays open before half-opening.
	// Default 250ms.
	Cooldown time.Duration
	// HalfOpenProbes bounds admissions allowed while half-open and
	// awaiting a flush verdict. Default 64.
	HalfOpenProbes int
	// Clock supplies now; nil means the wall clock.
	Clock clock.Clock
	// OnTransition, when set, observes every state change. It is called
	// with the breaker's mutex held and must not call back into the
	// breaker or into the WAL (it runs inside flush completion).
	OnTransition func(from, to BreakerState)
}

func (c *BreakerConfig) withDefaults() {
	if c.TripLatency <= 0 {
		c.TripLatency = 50 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 64
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
}

// Breaker is the WAL-stall circuit breaker. It implements the WAL's
// FlushMonitor interface (FlushStart/FlushEnd bracket every physical
// group flush, write plus fsync), and the server consults Allow on
// every durable admission. Its mutex is a leaf: it never acquires the
// log's or the server's locks, so it is safe to call from inside the
// WAL flush path and from connection goroutines concurrently.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state       BreakerState
	openedAt    time.Time // when the breaker last tripped
	inFlight    bool
	flightStart time.Time
	probesLeft  int
	probeWave   time.Time // when the current half-open probe wave was armed
	trips       uint64
}

// NewBreaker returns a closed breaker with cfg's defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.withDefaults()
	return &Breaker{cfg: cfg}
}

// FlushStart marks a physical group flush entering the device.
func (b *Breaker) FlushStart() {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	b.inFlight = true
	b.flightStart = now
	b.mu.Unlock()
}

// FlushEnd delivers a flush verdict: an error or a flush slower than
// TripLatency trips the breaker from any state; a fast clean flush
// while half-open closes it.
func (b *Breaker) FlushEnd(d time.Duration, err error) {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inFlight = false
	if err != nil || d > b.cfg.TripLatency {
		b.tripLocked(now)
		return
	}
	if b.state == BreakerHalfOpen {
		b.setLocked(BreakerClosed)
	}
}

// Allow reports whether a durable admission may proceed. When it may
// not, retryAfter is the hint to return to the client (how long until
// the breaker could half-open, with the flush window as a floor).
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if b.inFlight && now.Sub(b.flightStart) > b.cfg.TripLatency {
			// A flush is hung past the trip threshold: trip now rather
			// than queue another ack behind a dead device.
			b.tripLocked(now)
			return false, b.cfg.Cooldown
		}
		return true, 0
	case BreakerOpen:
		remaining := b.cfg.Cooldown - now.Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		b.setLocked(BreakerHalfOpen)
		b.probesLeft = b.cfg.HalfOpenProbes
		b.probeWave = now
		fallthrough
	default: // BreakerHalfOpen
		if b.inFlight && now.Sub(b.flightStart) > b.cfg.TripLatency {
			b.tripLocked(now)
			return false, b.cfg.Cooldown
		}
		if b.probesLeft > 0 {
			b.probesLeft--
			return true, 0
		}
		if !b.inFlight && now.Sub(b.probeWave) > b.cfg.TripLatency {
			// The whole probe wave died without producing a flush
			// verdict — shed, expired before execution, or its
			// connection dropped — and nothing is in flight to deliver
			// one. Arm a fresh wave rather than reject forever.
			b.probeWave = now
			b.probesLeft = b.cfg.HalfOpenProbes - 1
			return true, 0
		}
		// Probe budget spent; wait for the in-flight verdict.
		return false, b.cfg.TripLatency
	}
}

// RetryAfter is the state-scaled backoff hint folded into the server's
// retryAfterMS: zero while closed, the remaining cooldown while open,
// and the trip latency while half-open (one flush verdict away).
func (b *Breaker) RetryAfter() time.Duration {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if remaining := b.cfg.Cooldown - now.Sub(b.openedAt); remaining > 0 {
			return remaining
		}
		return b.cfg.TripLatency
	case BreakerHalfOpen:
		return b.cfg.TripLatency
	}
	return 0
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped (entered Open
// from another state).
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

func (b *Breaker) tripLocked(now time.Time) {
	b.openedAt = now
	if b.state != BreakerOpen {
		b.trips++
		b.setLocked(BreakerOpen)
	}
}

func (b *Breaker) setLocked(to BreakerState) {
	from := b.state
	b.state = to
	if b.cfg.OnTransition != nil && from != to {
		b.cfg.OnTransition(from, to)
	}
}
