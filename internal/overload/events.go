package overload

import (
	"sync"
	"time"
)

// Event is one structured mode transition (brownout enter/exit,
// breaker state change), exposed in /metrics so operators can see when
// and why the server degraded.
type Event struct {
	UnixMS int64  `json:"unix_ms"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// EventLog is a fixed-capacity ring of recent events. Its mutex is a
// leaf (Record never calls out), so it is safe to record from inside
// breaker transitions, which themselves run inside WAL flush
// completion.
type EventLog struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// NewEventLog returns a ring holding the most recent capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &EventLog{ring: make([]Event, 0, capacity)}
}

// Record appends an event stamped now.
func (e *EventLog) Record(now time.Time, kind, detail string) {
	ev := Event{UnixMS: now.UnixMilli(), Kind: kind, Detail: detail}
	e.mu.Lock()
	if len(e.ring) < cap(e.ring) {
		e.ring = append(e.ring, ev)
	} else {
		e.ring[e.next] = ev
		e.next = (e.next + 1) % cap(e.ring)
	}
	e.total++
	e.mu.Unlock()
}

// Snapshot returns the retained events oldest-first.
func (e *EventLog) Snapshot() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, 0, len(e.ring))
	if len(e.ring) == cap(e.ring) {
		out = append(out, e.ring[e.next:]...)
		out = append(out, e.ring[:e.next]...)
	} else {
		out = append(out, e.ring...)
	}
	return out
}

// Total returns how many events have ever been recorded (including
// ones the ring has since evicted).
func (e *EventLog) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}
