// Package overload holds the serving layer's overload-resilience state
// machines: a CoDel-style adaptive load shedder driven by bundle
// sojourn time, and a circuit breaker that fails durable admissions
// fast while the WAL's fsync device is stalling. Both are deterministic
// given their inputs and take an injectable clock (internal/clock), so
// they are table-testable with hand-written timelines and replayable by
// the chaos harness. The paper's framing motivates both: a transaction
// executed after its caller gave up is pure wasted contention — it
// inflates runtime conflicts for everyone still waiting — so the right
// move under overload is to shed before the engine sees the work.
package overload

import (
	"math/rand"
	"sync"
	"time"

	"tskd/internal/clock"
)

// Priority is the request priority class carried on the wire (the
// request's "pri" byte). High priority is the zero value so requests
// that do not set the field keep today's behavior.
type Priority uint8

const (
	// PriHigh is the default class: shed only when the controller is
	// past half intensity.
	PriHigh Priority = 0
	// PriLow sheds first: any nonzero wire priority maps here.
	PriLow Priority = 1
)

// ShedConfig parameterizes the shedder. Zero values take defaults.
type ShedConfig struct {
	// Target is the acceptable bundle sojourn time (queue wait from
	// admission to execution start). Default 5ms.
	Target time.Duration
	// Window is how long the minimum sojourn must stay above Target
	// before shedding engages — CoDel's standing-queue interval, which
	// keeps bursts shorter than Window unshed. Default 100ms.
	Window time.Duration
	// Step scales how fast the shed level climbs per observation while
	// the standing queue persists; the increment is Step times the
	// relative excess (sojourn/Target - 1), capped at Step*4. Default
	// 0.1.
	Step float64
	// Decay is the per-observation level decrease once sojourn drops
	// back under Target. Default 0.05.
	Decay float64
	// Clock supplies now; nil means the wall clock.
	Clock clock.Clock
	// Seed seeds the internal RNG behind Decide.
	Seed int64
}

func (c *ShedConfig) withDefaults() {
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.Step <= 0 {
		c.Step = 0.1
	}
	if c.Decay <= 0 {
		c.Decay = 0.05
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
}

// Shedder is a CoDel-style admission controller. The serving layer
// feeds it one observation per bundle — the minimum queue sojourn of
// the bundle's transactions, CoDel's estimator of the standing queue
// (the minimum ignores transient bursts that drain by themselves).
// Once the minimum sojourn has exceeded Target continuously for
// Window, the shed level ramps up proportionally to the excess; when
// sojourn falls back under Target the level decays linearly. The level
// maps to per-class drop probabilities so low priority sheds first:
//
//	P(shed | low)  = min(1, 2·level)
//	P(shed | high) = max(0, 2·level - 1)
//
// At level ½ all low-priority traffic is shed and high-priority is
// untouched; only past ½ does high-priority traffic start dropping.
// Level ≥ ½ is also the Saturated signal the server uses to enter
// brownout mode. P(shed | high) is capped at MaxHighShedProb: the
// level only decays through bundle observations, so shedding the last
// high-priority admission would starve the controller of the very
// signal it needs to recover — a trickle must always get through.
type Shedder struct {
	mu  sync.Mutex
	cfg ShedConfig
	rng *rand.Rand

	above      bool      // minimum sojourn currently above Target
	aboveSince time.Time // when it first went above
	level      float64   // shed intensity in [0, 1]
}

// NewShedder returns a shedder with cfg's defaults applied.
func NewShedder(cfg ShedConfig) *Shedder {
	cfg.withDefaults()
	return &Shedder{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Observe records one bundle's minimum queue sojourn and updates the
// shed level. Called once per bundle by the server's bundler goroutine.
func (s *Shedder) Observe(sojourn time.Duration) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sojourn <= s.cfg.Target {
		s.above = false
		s.level -= s.cfg.Decay
		if s.level < 0 {
			s.level = 0
		}
		return
	}
	if !s.above {
		s.above = true
		s.aboveSince = now
		return
	}
	if now.Sub(s.aboveSince) < s.cfg.Window {
		return // burst, not yet a standing queue
	}
	excess := float64(sojourn)/float64(s.cfg.Target) - 1
	inc := s.cfg.Step * excess
	if max := s.cfg.Step * 4; inc > max {
		inc = max
	}
	s.level += inc
	if s.level > 1 {
		s.level = 1
	}
}

// Level returns the current shed intensity in [0, 1].
func (s *Shedder) Level() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.level
}

// Saturated reports whether the controller is past half intensity —
// all low-priority traffic shedding and high-priority about to — the
// server's trigger for brownout mode.
func (s *Shedder) Saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.level >= 0.5
}

// Prob returns the drop probability for the given class at the current
// level.
func (s *Shedder) Prob(pri Priority) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return prob(s.level, pri)
}

// MaxHighShedProb caps the high-priority drop probability. Without it
// a saturated controller (level 1) sheds every admission; with no
// admissions no bundles form, no sojourns are observed, and the level
// never decays — a permanent lockout. The cap keeps a high-priority
// probe trickle flowing so recovery is observable.
const MaxHighShedProb = 0.9

func prob(level float64, pri Priority) float64 {
	if pri == PriHigh {
		p := 2*level - 1
		if p < 0 {
			return 0
		}
		if p > MaxHighShedProb {
			return MaxHighShedProb
		}
		return p
	}
	p := 2 * level
	if p > 1 {
		return 1
	}
	return p
}

// ShouldShed is the pure decision: drop iff u (a uniform sample in
// [0,1)) falls under the class's drop probability. Tests and replays
// supply u explicitly.
func (s *Shedder) ShouldShed(pri Priority, u float64) bool {
	return u < s.Prob(pri)
}

// Decide samples the internal seeded RNG and reports whether this
// admission should be shed.
func (s *Shedder) Decide(pri Priority) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := prob(s.level, pri)
	if p <= 0 {
		return false
	}
	return s.rng.Float64() < p
}

// Backoff is the retry-after hint to attach to shed responses: the
// controller window scaled by the current level, so clients back off
// harder the deeper the overload.
func (s *Shedder) Backoff() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.level * float64(s.cfg.Window))
}
