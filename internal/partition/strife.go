package partition

import (
	"math/rand"
	"sort"

	"tskd/internal/conflict"
	"tskd/internal/txn"
)

// Strife reimplements the partitioner of Prasaad, Cheung and Suciu
// ("Handling Highly Contended OLTP Workloads Using Fast Dynamic
// Partitioning", SIGMOD'20), the paper's strongest baseline. Strife
// clusters a batch around its hottest data:
//
//  1. Spot: sample a fraction of the batch and union-find data items
//     co-accessed by the same transaction; the k most-referenced
//     clusters become seeds.
//  2. Fuse/allocate: walk the full batch; a transaction whose items
//     fall within a single seed cluster joins that cluster (absorbing
//     its unclaimed items), a transaction spanning two or more clusters
//     goes to the residual, and a transaction touching no seed joins
//     the currently smallest cluster (absorbing its items).
//  3. Merge/balance: Strife's merge phase packs clusters into k
//     balanced partitions; transactions that would overflow a
//     partition's capacity spill into the residual. (Without the cap, a
//     single hot mega-cluster — the normal case for skewed YCSB —
//     degenerates into one serial partition.)
//
// Strife is the only baseline that produces an explicit residual.
type Strife struct {
	// SampleFrac is the fraction of the batch sampled in the spot
	// phase (default 0.1).
	SampleFrac float64
	// Slack bounds each partition at (1+Slack)·total/k ops before
	// transactions overflow to the residual (default 0.5).
	Slack float64
	// Seed makes clustering deterministic.
	Seed int64
}

// NewStrife returns Strife with the defaults used in our experiments.
func NewStrife(seed int64) *Strife { return &Strife{SampleFrac: 0.1, Slack: 0.5, Seed: seed} }

// Name implements Partitioner.
func (s *Strife) Name() string { return "STRIFE" }

// Partition implements Partitioner. The conflict graph is not needed —
// Strife clusters on the data-access graph — but accepted for
// interface uniformity.
func (s *Strife) Partition(w txn.Workload, _ *conflict.Graph, k int) *Plan {
	plan := NewPlan(k)
	if len(w) == 0 {
		return plan
	}
	frac := s.SampleFrac
	if frac <= 0 || frac > 1 {
		frac = 0.1
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// --- Spot: union-find over data items from a sample. ---
	uf := newUnionFind()
	sampleN := int(float64(len(w))*frac) + 1
	for i := 0; i < sampleN; i++ {
		t := w[rng.Intn(len(w))]
		keys := t.AccessSet()
		for j := 1; j < len(keys); j++ {
			uf.union(keys[0], keys[j])
		}
	}
	// Hotness: transactions referencing each cluster root.
	hot := make(map[txn.Key]int)
	for i := 0; i < sampleN; i++ {
		t := w[rng.Intn(len(w))]
		if set := t.AccessSet(); len(set) > 0 {
			hot[uf.find(set[0])]++
		}
	}
	type cluster struct {
		root txn.Key
		n    int
	}
	clusters := make([]cluster, 0, len(hot))
	for r, n := range hot {
		clusters = append(clusters, cluster{r, n})
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].n != clusters[j].n {
			return clusters[i].n > clusters[j].n
		}
		return clusters[i].root < clusters[j].root
	})
	if len(clusters) > k {
		clusters = clusters[:k]
	}

	// item -> partition index; grows as transactions absorb items.
	owner := make(map[txn.Key]int)
	for i, c := range clusters {
		owner[c.root] = i
	}
	load := make([]int, k)
	slack := s.Slack
	if slack <= 0 {
		slack = 0.5
	}
	capLimit := int(float64(w.TotalOps()) / float64(k) * (1 + slack))
	if capLimit < 1 {
		capLimit = 1
	}

	// --- Fuse/allocate: walk the full batch. ---
	for _, t := range w {
		part := -1
		multi := false
		var unclaimed []txn.Key
		for _, key := range t.AccessSet() {
			p, ok := owner[key]
			if !ok {
				if p2, ok2 := owner[uf.find(key)]; ok2 {
					p, ok = p2, true
					owner[key] = p2
				}
			}
			if !ok {
				unclaimed = append(unclaimed, key)
				continue
			}
			if part >= 0 && p != part {
				multi = true
				break
			}
			part = p
		}
		switch {
		case multi:
			plan.Residual = append(plan.Residual, t)
		case part >= 0 && load[part]+t.Len() > capLimit:
			// Merge/balance: the home partition is full; the
			// transaction overflows to the residual rather than
			// serializing the hot cluster further.
			plan.Residual = append(plan.Residual, t)
		default:
			if part < 0 {
				// Cold transaction: smallest partition absorbs it.
				part = argminInt(load)
			}
			// Absorb the transaction's unclaimed items so later
			// transactions touching them land in (or conflict with)
			// this partition — preserving pairwise conflict-freedom.
			for _, key := range unclaimed {
				owner[key] = part
			}
			plan.Parts[part] = append(plan.Parts[part], t)
			load[part] += t.Len()
		}
	}
	return plan
}

func argminInt(xs []int) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// unionFind is a union-find over data-item keys with path compression.
type unionFind struct{ parent map[txn.Key]txn.Key }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[txn.Key]txn.Key)} }

func (u *unionFind) find(k txn.Key) txn.Key {
	p, ok := u.parent[k]
	if !ok {
		return k
	}
	root := u.find(p)
	u.parent[k] = root
	return root
}

func (u *unionFind) union(a, b txn.Key) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
