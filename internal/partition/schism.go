package partition

import (
	"math/rand"
	"sort"

	"tskd/internal/conflict"
	"tskd/internal/txn"
)

// Schism reimplements the workload-driven partitioner of Curino et al.
// (VLDB'10): model the workload as a graph whose edges are conflicts
// and compute a balanced k-way min-cut, so that conflicting
// transactions land in the same partition wherever balance permits.
// Curino et al. use METIS; we use the same multilevel scheme METIS
// popularized — heavy-edge-matching coarsening, greedy initial
// assignment, and boundary refinement — which reproduces balanced
// min-cuts at OLTP-bundle scale.
//
// Schism does not produce a residual; TSKD[C] extracts one with
// ExtractResidual as described in Section 6.1 of the TSKD paper.
type Schism struct {
	// MaxRefinePasses bounds boundary refinement (default 4).
	MaxRefinePasses int
	// Seed makes tie-breaking deterministic.
	Seed int64
}

// NewSchism returns Schism with default settings.
func NewSchism(seed int64) *Schism { return &Schism{MaxRefinePasses: 4, Seed: seed} }

// Name implements Partitioner.
func (s *Schism) Name() string { return "SCHISM" }

// coarseGraph is the working representation during multilevel
// partitioning: weighted vertices (transaction op counts) and weighted
// adjacency.
type coarseGraph struct {
	vwgt []int         // vertex weights
	adj  []map[int]int // adjacency with edge weights
	// members maps each coarse vertex to the original transaction
	// indices it contains.
	members [][]int32
}

func buildCoarse(w txn.Workload, g *conflict.Graph) *coarseGraph {
	n := len(w)
	cg := &coarseGraph{
		vwgt:    make([]int, n),
		adj:     make([]map[int]int, n),
		members: make([][]int32, n),
	}
	for i, t := range w {
		cg.vwgt[t.ID] = t.Len()
		cg.members[t.ID] = []int32{int32(t.ID)}
		_ = i
	}
	for v := 0; v < n; v++ {
		if deg := g.Degree(v); deg > 0 {
			cg.adj[v] = make(map[int]int, deg)
			ws := g.Weights(v)
			for i, u := range g.Neighbors(v) {
				cg.adj[v][int(u)] = int(ws[i])
			}
		} else {
			cg.adj[v] = map[int]int{}
		}
	}
	return cg
}

// coarsen performs one round of heavy-edge matching, merging matched
// vertex pairs. Returns the coarser graph and whether progress was
// made.
func (cg *coarseGraph) coarsen(rng *rand.Rand) (*coarseGraph, bool) {
	n := len(cg.vwgt)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	merged := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, 0
		for u, w := range cg.adj[v] {
			if match[u] < 0 && u != v && w > bestW {
				best, bestW = u, w
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			merged++
		}
	}
	if merged == 0 {
		return cg, false
	}
	// Build the coarser graph.
	newID := make([]int, n)
	for i := range newID {
		newID[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if newID[v] >= 0 {
			continue
		}
		newID[v] = next
		if m := match[v]; m >= 0 {
			newID[m] = next
		}
		next++
	}
	out := &coarseGraph{
		vwgt:    make([]int, next),
		adj:     make([]map[int]int, next),
		members: make([][]int32, next),
	}
	for i := range out.adj {
		out.adj[i] = map[int]int{}
	}
	for v := 0; v < n; v++ {
		nv := newID[v]
		out.vwgt[nv] += cg.vwgt[v]
		out.members[nv] = append(out.members[nv], cg.members[v]...)
		for u, w := range cg.adj[v] {
			nu := newID[u]
			if nu != nv {
				out.adj[nv][nu] += w
			}
		}
	}
	return out, true
}

// Partition implements Partitioner.
func (s *Schism) Partition(w txn.Workload, g *conflict.Graph, k int) *Plan {
	plan := NewPlan(k)
	if len(w) == 0 {
		return plan
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cg := buildCoarse(w, g)

	// Coarsen until small or no progress.
	target := 8 * k
	if target < 32 {
		target = 32
	}
	for len(cg.vwgt) > target {
		next, ok := cg.coarsen(rng)
		if !ok {
			break
		}
		cg = next
	}

	// Initial assignment: heaviest vertices first onto the lightest
	// partition, preferring the partition with the strongest
	// connectivity when balance permits.
	n := len(cg.vwgt)
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	totalW := 0
	for _, vw := range cg.vwgt {
		totalW += vw
	}
	capLimit := totalW/k + totalW/(4*k) + 1
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cg.vwgt[order[a]] > cg.vwgt[order[b]] })
	load := make([]int, k)
	for _, v := range order {
		bestP, bestScore := -1, -1
		for p := 0; p < k; p++ {
			if load[p]+cg.vwgt[v] > capLimit && load[p] > 0 {
				continue
			}
			score := 0
			for u, ew := range cg.adj[v] {
				if part[u] == p {
					score += ew
				}
			}
			// Prefer connectivity, break ties toward lighter load.
			if score > bestScore || (score == bestScore && (bestP < 0 || load[p] < load[bestP])) {
				bestP, bestScore = p, score
			}
		}
		if bestP < 0 {
			bestP = argminInt(load)
		}
		part[v] = bestP
		load[bestP] += cg.vwgt[v]
	}

	// Refinement: greedy boundary moves that reduce the cut without
	// breaking balance.
	passes := s.MaxRefinePasses
	if passes <= 0 {
		passes = 4
	}
	for pass := 0; pass < passes; pass++ {
		moved := false
		for v := 0; v < n; v++ {
			cur := part[v]
			gain := make([]int, k)
			for u, ew := range cg.adj[v] {
				gain[part[u]] += ew
			}
			bestP := cur
			for p := 0; p < k; p++ {
				if p == cur {
					continue
				}
				if gain[p] > gain[bestP] && load[p]+cg.vwgt[v] <= capLimit {
					bestP = p
				}
			}
			if bestP != cur {
				load[cur] -= cg.vwgt[v]
				load[bestP] += cg.vwgt[v]
				part[v] = bestP
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	// Project back to transactions.
	byID := w.ByID()
	for v := 0; v < n; v++ {
		for _, id := range cg.members[v] {
			plan.Parts[part[v]] = append(plan.Parts[part[v]], byID[int(id)])
		}
	}
	// Keep partition-internal order deterministic (by ID).
	for i := range plan.Parts {
		sort.Slice(plan.Parts[i], func(a, b int) bool {
			return plan.Parts[i][a].ID < plan.Parts[i][b].ID
		})
	}
	return plan
}
