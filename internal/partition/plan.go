// Package partition implements the transaction partitioners the paper
// evaluates TSKD against, reimplemented from their publications:
//
//   - Strife (Prasaad, Cheung, Suciu; SIGMOD'20): dynamic clustering of
//     contended batches with an explicit residual set.
//   - Schism (Curino et al.; VLDB'10): balanced min-cut of the conflict
//     graph, here via a multilevel heavy-edge-matching partitioner.
//   - Horticulture (Pavlo, Curino, Zdonik; SIGMOD'12): skew-aware
//     attribute-based partitioning, hard-coded for TPC-C and YCSB as in
//     the paper.
//
// plus round-robin/random baselines. A Partitioner turns a workload
// into a Plan (P_1..P_k, R) — the input TSgen refines into a schedule.
package partition

import (
	"fmt"

	"tskd/internal/conflict"
	"tskd/internal/txn"
)

// Plan is a transaction partitioning (P_1, ..., P_k, R): k CC-free
// partitions executed serially per thread plus a residual set executed
// with CC after the partitions complete (Section 2.1).
type Plan struct {
	// Parts are the k partitions, in thread order.
	Parts [][]*txn.Transaction
	// Residual holds the cross-partition (conflicting) transactions.
	Residual []*txn.Transaction
}

// NewPlan returns an empty plan over k threads.
func NewPlan(k int) *Plan {
	return &Plan{Parts: make([][]*txn.Transaction, k)}
}

// K returns the number of partitions.
func (p *Plan) K() int { return len(p.Parts) }

// Size returns the total number of transactions in the plan.
func (p *Plan) Size() int {
	n := len(p.Residual)
	for _, part := range p.Parts {
		n += len(part)
	}
	return n
}

// LoadRatio returns the ratio of the largest partition's op count to
// the smallest's, the imbalance measure quoted in Section 6.2 (ratio
// 1.0 is perfectly balanced). Empty partitions count as load 1 to keep
// the ratio finite.
func (p *Plan) LoadRatio() float64 {
	minL, maxL := -1, 0
	for _, part := range p.Parts {
		l := 0
		for _, t := range part {
			l += t.Len()
		}
		if l == 0 {
			l = 1
		}
		if minL < 0 || l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if minL <= 0 {
		return 1
	}
	return float64(maxL) / float64(minL)
}

// Validate checks that the plan is a disjoint cover of w and that the
// CC-free partitions are pairwise conflict-free under g. Partitioners
// without that guarantee must be passed through ExtractResidual first.
func (p *Plan) Validate(w txn.Workload, g *conflict.Graph) error {
	seen := make(map[int]bool, len(w))
	count := 0
	check := func(t *txn.Transaction) error {
		if seen[t.ID] {
			return fmt.Errorf("partition: transaction %d appears twice", t.ID)
		}
		seen[t.ID] = true
		count++
		return nil
	}
	for _, part := range p.Parts {
		for _, t := range part {
			if err := check(t); err != nil {
				return err
			}
		}
	}
	for _, t := range p.Residual {
		if err := check(t); err != nil {
			return err
		}
	}
	if count != len(w) {
		return fmt.Errorf("partition: plan covers %d of %d transactions", count, len(w))
	}
	// Pairwise conflict-freedom of the CC-free partitions.
	where := make(map[int]int, count)
	for i, part := range p.Parts {
		for _, t := range part {
			where[t.ID] = i
		}
	}
	for i, part := range p.Parts {
		for _, t := range part {
			for _, n := range g.Neighbors(t.ID) {
				if j, ok := where[int(n)]; ok && j != i {
					return fmt.Errorf("partition: cross-partition conflict %d(P%d) - %d(P%d)",
						t.ID, i, n, j)
				}
			}
		}
	}
	return nil
}

// ExtractResidual converts partitions without a conflict-freedom
// guarantee (Schism, Horticulture) into the canonical form: every
// transaction in conflict with some transaction in another partition is
// moved to the residual set, in one pass over the original assignment
// (Section 6.1). The input plan's existing residual is preserved.
func ExtractResidual(p *Plan, g *conflict.Graph) *Plan {
	where := make(map[int]int)
	for i, part := range p.Parts {
		for _, t := range part {
			where[t.ID] = i
		}
	}
	out := NewPlan(p.K())
	out.Residual = append(out.Residual, p.Residual...)
	for i, part := range p.Parts {
		for _, t := range part {
			crosses := false
			for _, n := range g.Neighbors(t.ID) {
				if j, ok := where[int(n)]; ok && j != i {
					crosses = true
					break
				}
			}
			if crosses {
				out.Residual = append(out.Residual, t)
			} else {
				out.Parts[i] = append(out.Parts[i], t)
			}
		}
	}
	return out
}

// Partitioner computes a partition plan for a bundled workload. The
// conflict graph is supplied by the caller and may be reused by the
// scheduler afterwards, as the paper prescribes.
type Partitioner interface {
	// Name returns the partitioner's display name.
	Name() string
	// Partition splits w into k partitions (plus residual, for
	// partitioners that produce one).
	Partition(w txn.Workload, g *conflict.Graph, k int) *Plan
}
