package partition

import (
	"sort"

	"tskd/internal/conflict"
	"tskd/internal/txn"
)

// Horticulture reimplements the skew-aware attribute partitioner of
// Pavlo, Curino and Zdonik (SIGMOD'12) in the hard-coded form the TSKD
// paper uses: transactions are grouped by their home attribute — the
// warehouse id for TPC-C templates (first parameter), a key-range
// bucket for YCSB — and the groups are packed onto k threads with
// skew-aware largest-processing-time (LPT) assignment, so hot groups
// are spread before cold ones fill the gaps.
//
// Horticulture produces no residual; TSKD[H] extracts one with
// ExtractResidual (Section 6.1).
type Horticulture struct {
	// Buckets is the number of key-range groups used for workloads
	// without a home-attribute parameter (YCSB). Default 4×k.
	Buckets int
}

// NewHorticulture returns Horticulture with default settings.
func NewHorticulture() *Horticulture { return &Horticulture{} }

// Name implements Partitioner.
func (h *Horticulture) Name() string { return "HORTICULTURE" }

// homeGroup derives the grouping attribute of a transaction: the first
// template parameter when present (TPC-C home warehouse), otherwise a
// range bucket of its first accessed key (YCSB).
func (h *Horticulture) homeGroup(t *txn.Transaction, buckets int) uint64 {
	if len(t.Params) > 0 {
		return t.Params[0]
	}
	set := t.AccessSet()
	if len(set) == 0 {
		return 0
	}
	return set[0].Row() % uint64(buckets)
}

// Partition implements Partitioner.
func (h *Horticulture) Partition(w txn.Workload, _ *conflict.Graph, k int) *Plan {
	plan := NewPlan(k)
	if len(w) == 0 {
		return plan
	}
	buckets := h.Buckets
	if buckets <= 0 {
		buckets = 4 * k
	}
	groups := make(map[uint64][]*txn.Transaction)
	weight := make(map[uint64]int)
	for _, t := range w {
		g := h.homeGroup(t, buckets)
		groups[g] = append(groups[g], t)
		weight[g] += t.Len()
	}
	// LPT: heaviest group first onto the lightest thread.
	ids := make([]uint64, 0, len(groups))
	for g := range groups {
		ids = append(ids, g)
	}
	sort.Slice(ids, func(a, b int) bool {
		if weight[ids[a]] != weight[ids[b]] {
			return weight[ids[a]] > weight[ids[b]]
		}
		return ids[a] < ids[b]
	})
	load := make([]int, k)
	for _, g := range ids {
		p := argminInt(load)
		plan.Parts[p] = append(plan.Parts[p], groups[g]...)
		load[p] += weight[g]
	}
	return plan
}
