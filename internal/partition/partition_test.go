package partition

import (
	"math/rand"
	"testing"

	"tskd/internal/conflict"
	"tskd/internal/txn"
	"tskd/internal/zipf"
)

// synthetic builds a workload of n transactions with zipfian key access
// over nKeys items, opsPer ops each.
func synthetic(n, nKeys, opsPer int, theta float64, seed int64) txn.Workload {
	g := zipf.New(uint64(nKeys), theta, seed)
	w := make(txn.Workload, n)
	for i := range w {
		t := txn.New(i)
		for j := 0; j < opsPer; j++ {
			k := txn.MakeKey(0, g.Next())
			if j%2 == 0 {
				t.R(k)
			} else {
				t.W(k)
			}
		}
		w[i] = t
	}
	return w
}

// clustered builds a workload whose transactions fall into `clusters`
// disjoint key groups — an easy case a good partitioner must get right.
func clustered(n, clusters, opsPer int, seed int64) txn.Workload {
	rng := rand.New(rand.NewSource(seed))
	w := make(txn.Workload, n)
	for i := range w {
		c := uint64(i % clusters)
		t := txn.New(i)
		for j := 0; j < opsPer; j++ {
			k := txn.MakeKey(0, c*1000+uint64(rng.Intn(50)))
			if j%2 == 0 {
				t.R(k)
			} else {
				t.W(k)
			}
		}
		w[i] = t
	}
	return w
}

func cutEdges(p *Plan, g *conflict.Graph) int {
	where := make(map[int]int)
	for i, part := range p.Parts {
		for _, t := range part {
			where[t.ID] = i
		}
	}
	cut := 0
	for i, part := range p.Parts {
		for _, t := range part {
			for _, n := range g.Neighbors(t.ID) {
				if j, ok := where[int(n)]; ok && j != i && t.ID < int(n) {
					cut++
				}
			}
		}
	}
	return cut
}

func TestPlanValidate(t *testing.T) {
	w := txn.MustParseWorkload(`
		W[x1]
		W[x2]
		W[x1]
	`)
	g := conflict.Build(w, conflict.Serializability)
	good := NewPlan(2)
	good.Parts[0] = []*txn.Transaction{w[0], w[2]}
	good.Parts[1] = []*txn.Transaction{w[1]}
	if err := good.Validate(w, g); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	// Cross-partition conflict.
	bad := NewPlan(2)
	bad.Parts[0] = []*txn.Transaction{w[0]}
	bad.Parts[1] = []*txn.Transaction{w[1], w[2]}
	if err := bad.Validate(w, g); err == nil {
		t.Error("cross-partition conflict not detected")
	}
	// Missing transaction.
	missing := NewPlan(2)
	missing.Parts[0] = []*txn.Transaction{w[0]}
	if err := missing.Validate(w, g); err == nil {
		t.Error("missing transaction not detected")
	}
	// Duplicate.
	dup := NewPlan(2)
	dup.Parts[0] = []*txn.Transaction{w[0], w[0], w[1]}
	dup.Residual = []*txn.Transaction{w[2]}
	if err := dup.Validate(w, g); err == nil {
		t.Error("duplicate transaction not detected")
	}
	// Residual conflicts are allowed.
	res := NewPlan(2)
	res.Parts[1] = []*txn.Transaction{w[1]}
	res.Residual = []*txn.Transaction{w[0], w[2]}
	if err := res.Validate(w, g); err != nil {
		t.Errorf("plan with conflicting residual rejected: %v", err)
	}
}

func TestExtractResidual(t *testing.T) {
	w := txn.MustParseWorkload(`
		W[x1]
		W[x1]
		W[x2]
		W[x3]
	`)
	g := conflict.Build(w, conflict.Serializability)
	p := NewPlan(2)
	p.Parts[0] = []*txn.Transaction{w[0], w[2]}
	p.Parts[1] = []*txn.Transaction{w[1], w[3]}
	out := ExtractResidual(p, g)
	if err := out.Validate(w, g); err != nil {
		t.Fatalf("extracted plan invalid: %v", err)
	}
	if len(out.Residual) != 2 {
		t.Errorf("residual size = %d, want 2 (both x1 writers)", len(out.Residual))
	}
	if out.Size() != 4 {
		t.Errorf("Size = %d, want 4", out.Size())
	}
}

func TestStrifeValidPlan(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		w := synthetic(500, 200, 8, 0.8, seed)
		g := conflict.Build(w, conflict.Serializability)
		p := NewStrife(seed).Partition(w, g, 4)
		if err := p.Validate(w, g); err != nil {
			t.Errorf("seed %d: Strife plan invalid: %v", seed, err)
		}
	}
}

func TestStrifeClusteredWorkload(t *testing.T) {
	// Four disjoint clusters over four threads: Strife should place
	// nearly everything in partitions, residual near zero.
	w := clustered(400, 4, 6, 1)
	g := conflict.Build(w, conflict.Serializability)
	p := NewStrife(1).Partition(w, g, 4)
	if err := p.Validate(w, g); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(p.Residual) > len(w)/10 {
		t.Errorf("residual %d too large for a perfectly clusterable workload", len(p.Residual))
	}
}

func TestStrifeEmptyWorkload(t *testing.T) {
	p := NewStrife(1).Partition(nil, conflict.Build(nil, conflict.Serializability), 3)
	if p.Size() != 0 || p.K() != 3 {
		t.Error("empty workload mishandled")
	}
}

func TestSchismCoversAndCuts(t *testing.T) {
	w := clustered(400, 4, 6, 2)
	g := conflict.Build(w, conflict.Serializability)
	p := NewSchism(2).Partition(w, g, 4)
	// Schism has no residual; everything must be in the parts.
	if p.Size() != len(w) || len(p.Residual) != 0 {
		t.Fatalf("Size = %d residual = %d", p.Size(), len(p.Residual))
	}
	// On a perfectly clusterable workload the cut should be near zero
	// and far below random assignment's cut.
	rp := Random{Seed: 9}.Partition(w, g, 4)
	sc, rc := cutEdges(p, g), cutEdges(rp, g)
	if sc*4 > rc {
		t.Errorf("schism cut %d not well below random cut %d", sc, rc)
	}
	// After residual extraction the plan must validate.
	if err := ExtractResidual(p, g).Validate(w, g); err != nil {
		t.Errorf("extracted schism plan invalid: %v", err)
	}
}

func TestSchismBalance(t *testing.T) {
	w := synthetic(800, 400, 8, 0.8, 3)
	g := conflict.Build(w, conflict.Serializability)
	p := NewSchism(3).Partition(w, g, 4)
	if r := p.LoadRatio(); r > 3.0 {
		t.Errorf("load ratio %.2f too imbalanced", r)
	}
}

func TestHorticultureGroupsByHomeAttribute(t *testing.T) {
	w := make(txn.Workload, 100)
	for i := range w {
		t := txn.New(i).W(txn.MakeKey(0, uint64(i)))
		t.Template = "Payment"
		t.Params = []uint64{uint64(i % 8)} // 8 home warehouses
		w[i] = t
	}
	g := conflict.Build(w, conflict.Serializability)
	p := NewHorticulture().Partition(w, g, 4)
	if p.Size() != len(w) {
		t.Fatalf("Size = %d", p.Size())
	}
	// All transactions of the same warehouse must share a partition.
	seen := make(map[uint64]int)
	for i, part := range p.Parts {
		for _, tx := range part {
			if prev, ok := seen[tx.Params[0]]; ok && prev != i {
				t.Fatalf("warehouse %d split across partitions %d and %d", tx.Params[0], prev, i)
			}
			seen[tx.Params[0]] = i
		}
	}
}

func TestHorticultureYCSBBuckets(t *testing.T) {
	// No params: falls back to key-range buckets.
	w := synthetic(200, 100, 4, 0.8, 4)
	g := conflict.Build(w, conflict.Serializability)
	p := NewHorticulture().Partition(w, g, 4)
	if p.Size() != len(w) {
		t.Fatalf("Size = %d", p.Size())
	}
	if err := ExtractResidual(p, g).Validate(w, g); err != nil {
		t.Errorf("extracted horticulture plan invalid: %v", err)
	}
}

func TestRoundRobinAndRandom(t *testing.T) {
	w := synthetic(100, 50, 4, 0.8, 5)
	g := conflict.Build(w, conflict.Serializability)
	rr := RoundRobin{}.Partition(w, g, 4)
	if rr.Size() != 100 {
		t.Error("round robin dropped transactions")
	}
	for i, part := range rr.Parts {
		if len(part) != 25 {
			t.Errorf("partition %d has %d, want 25", i, len(part))
		}
	}
	rd := Random{Seed: 1}.Partition(w, g, 4)
	if rd.Size() != 100 {
		t.Error("random dropped transactions")
	}
	// Determinism per seed.
	rd2 := Random{Seed: 1}.Partition(w, g, 4)
	for i := range rd.Parts {
		if len(rd.Parts[i]) != len(rd2.Parts[i]) {
			t.Error("random not deterministic per seed")
		}
	}
}

func TestAllResidual(t *testing.T) {
	w := synthetic(50, 20, 4, 0.8, 6)
	g := conflict.Build(w, conflict.Serializability)
	p := AllResidual{}.Partition(w, g, 4)
	if len(p.Residual) != 50 || p.Size() != 50 {
		t.Error("AllResidual wrong")
	}
	if err := p.Validate(w, g); err != nil {
		t.Errorf("AllResidual invalid: %v", err)
	}
}

func TestLoadRatio(t *testing.T) {
	w := txn.MustParseWorkload(`
		W[x1]W[x1]W[x1]W[x1]
		W[x2]
	`)
	p := NewPlan(2)
	p.Parts[0] = []*txn.Transaction{w[0]}
	p.Parts[1] = []*txn.Transaction{w[1]}
	if r := p.LoadRatio(); r != 4 {
		t.Errorf("LoadRatio = %v, want 4", r)
	}
	empty := NewPlan(2)
	if r := empty.LoadRatio(); r != 1 {
		t.Errorf("empty LoadRatio = %v, want 1", r)
	}
}

func TestPartitionerNames(t *testing.T) {
	cases := map[string]Partitioner{
		"STRIFE":       NewStrife(1),
		"SCHISM":       NewSchism(1),
		"HORTICULTURE": NewHorticulture(),
		"ROUND_ROBIN":  RoundRobin{},
		"RANDOM":       Random{},
		"NONE":         AllResidual{},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}
