package partition

import (
	"math/rand"

	"tskd/internal/conflict"
	"tskd/internal/txn"
)

// RoundRobin assigns transactions to threads in arrival order, the
// default lightweight transaction-to-thread assignment used for
// unbundled workloads (Section 2.1). It produces no residual and gives
// no conflict-freedom guarantee.
type RoundRobin struct{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "ROUND_ROBIN" }

// Partition implements Partitioner.
func (RoundRobin) Partition(w txn.Workload, _ *conflict.Graph, k int) *Plan {
	plan := NewPlan(k)
	for i, t := range w {
		plan.Parts[i%k] = append(plan.Parts[i%k], t)
	}
	return plan
}

// Random assigns transactions to uniformly random threads.
type Random struct{ Seed int64 }

// Name implements Partitioner.
func (Random) Name() string { return "RANDOM" }

// Partition implements Partitioner.
func (r Random) Partition(w txn.Workload, _ *conflict.Graph, k int) *Plan {
	rng := rand.New(rand.NewSource(r.Seed))
	plan := NewPlan(k)
	for _, t := range w {
		p := rng.Intn(k)
		plan.Parts[p] = append(plan.Parts[p], t)
	}
	return plan
}

// AllResidual places the entire workload in the residual set — the
// input used by TSKD[0], which schedules from scratch (Section 4,
// "Scheduling without input partition").
type AllResidual struct{}

// Name implements Partitioner.
func (AllResidual) Name() string { return "NONE" }

// Partition implements Partitioner.
func (AllResidual) Partition(w txn.Workload, _ *conflict.Graph, k int) *Plan {
	plan := NewPlan(k)
	plan.Residual = append(plan.Residual, w...)
	return plan
}
