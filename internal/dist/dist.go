// Package dist models the paper's generalization remark (Section 3,
// Limitations (3)): "In principal TsPAR is not limited to the
// in-memory setting; it can be applied to shared-nothing distributed
// systems. In contrast, TsDEFER cannot be trivially generalized
// [because its] lightweight probing operations ... will incur too much
// overhead in the shared-nothing architecture due to network latency."
//
// The model: data is hash-partitioned across N nodes; each node runs k
// local threads. A transaction is *local* when every key it touches
// lives on one node, *distributed* otherwise — distributed commits pay
// a two-phase-commit surcharge (round trips × network latency).
// Scheduling happens per node over the local transactions exactly as
// single-node TsPAR; distributed transactions form the residual and
// execute afterwards with the 2PC surcharge. Evaluation is analytic
// (virtual time, like internal/sim), which matches the remark's scope:
// this demonstrates the scheduling generalization.
//
// The real counterpart of this model is internal/shard: a running
// multi-shard runtime with actual two-phase commit. This package is a
// thin analytic wrapper over the same placement — Home and Split
// delegate to shard.Router, so the model and the runtime agree on
// ownership by construction and the model's local/distributed
// classification is exactly the runtime's single-/cross-shard one.
package dist

import (
	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/sched"
	"tskd/internal/shard"
	"tskd/internal/txn"
)

// Cluster describes the modeled deployment.
type Cluster struct {
	// Nodes is the number of shared-nothing nodes.
	Nodes int
	// ThreadsPerNode is k on each node.
	ThreadsPerNode int
	// NetRTT is the cost (in units) of one network round trip; a
	// distributed commit pays 2 × NetRTT (prepare + commit) per
	// participant beyond the coordinator.
	NetRTT clock.Units
}

// router returns the runtime router for this cluster's node count.
func (c Cluster) router() shard.Router { return shard.Router{Shards: c.Nodes} }

// Home returns the node owning a key: shard.Router's hash
// partitioning, so modeled placement is runtime placement.
func (c Cluster) Home(k txn.Key) int { return c.router().Home(k) }

// Placement is the outcome of distributing a workload.
type Placement struct {
	// Local holds each node's local transactions.
	Local [][]*txn.Transaction
	// Distributed holds cross-node transactions (the residual).
	Distributed []*txn.Transaction
	// Participants maps each distributed transaction ID to its
	// participant-node count.
	Participants map[int]int
}

// Split classifies the workload by node locality, delegating the
// participant computation to the runtime router.
func (c Cluster) Split(w txn.Workload) Placement {
	p := Placement{
		Local:        make([][]*txn.Transaction, c.Nodes),
		Participants: make(map[int]int),
	}
	r := c.router()
	var buf []int
	for _, t := range w {
		buf = r.Participants(t, buf[:0])
		if len(buf) == 1 {
			p.Local[buf[0]] = append(p.Local[buf[0]], t)
		} else {
			p.Distributed = append(p.Distributed, t)
			p.Participants[t.ID] = len(buf)
		}
	}
	return p
}

// Result is the analytic outcome.
type Result struct {
	// Makespan is the modeled total time: the slowest node's local
	// phase plus the distributed phase.
	Makespan clock.Units
	// LocalMakespan is the slowest node's local-phase time.
	LocalMakespan clock.Units
	// DistributedTime is the residual phase including 2PC surcharges.
	DistributedTime clock.Units
	// Scheduled is the number of local transactions placed in RC-free
	// queues across all nodes.
	Scheduled int
	// DistributedCount is the number of cross-node transactions.
	DistributedCount int
}

// Evaluate schedules each node's local transactions with TSgen (from
// scratch, over the node's threads) and models the total execution
// time. When useScheduling is false, local transactions are modeled as
// a balanced-but-unordered partition (conflict-free work spread over
// k, conflicting work serialized — the standard partitioned-execution
// baseline), so the comparison isolates what interval-aware ordering
// buys.
//
// The global conflict graph g is only used implicitly: per-node graphs
// are rebuilt over the reindexed local sub-workloads, mirroring how a
// shared-nothing deployment analyzes per-node batches.
func Evaluate(w txn.Workload, g *conflict.Graph, est estimator.Estimator, c Cluster, useScheduling bool) Result {
	_ = g
	p := c.Split(w)
	res := Result{DistributedCount: len(p.Distributed)}

	for n := 0; n < c.Nodes; n++ {
		if len(p.Local[n]) == 0 {
			continue
		}
		local := reindex(p.Local[n])
		lg := conflict.Build(local, conflict.Serializability)
		var nodeTime clock.Units
		if useScheduling {
			s := sched.GenerateFromScratch(local, lg, est, c.ThreadsPerNode, sched.Options{Seed: int64(n)})
			res.Scheduled += s.Stats.Merged
			nodeTime = s.Makespan() + s.ResidualUnits()/clock.Units(c.ThreadsPerNode)
		} else {
			var total, conflicting clock.Units
			for _, t := range local {
				cost := est.Estimate(t)
				if cost <= 0 {
					cost = 1
				}
				total += cost
				if lg.Degree(t.ID) > 0 {
					conflicting += cost
				}
			}
			free := total - conflicting
			nodeTime = free/clock.Units(c.ThreadsPerNode) + conflicting
		}
		if nodeTime > res.LocalMakespan {
			res.LocalMakespan = nodeTime
		}
	}

	// Distributed phase: residual spread over every thread in the
	// cluster, each paying the 2PC surcharge.
	totalThreads := clock.Units(c.Nodes * c.ThreadsPerNode)
	var distWork clock.Units
	for _, t := range p.Distributed {
		cost := est.Estimate(t)
		if cost <= 0 {
			cost = 1
		}
		parts := clock.Units(p.Participants[t.ID] - 1)
		distWork += cost + 2*c.NetRTT*parts
	}
	if totalThreads > 0 {
		res.DistributedTime = distWork / totalThreads
	}
	res.Makespan = res.LocalMakespan + res.DistributedTime
	return res
}

// reindex clones the transactions with dense IDs [0, n) — the form
// the per-node scheduler and conflict graph require. Operation slices
// are shared with the originals (they are read-only here).
func reindex(ts []*txn.Transaction) txn.Workload {
	out := make(txn.Workload, len(ts))
	for i, t := range ts {
		c := *t
		c.ID = i
		out[i] = &c
	}
	return out
}
