package dist

import (
	"testing"

	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/shard"
	"tskd/internal/txn"
	"tskd/internal/zipf"
)

func workload(n int, seed int64) txn.Workload {
	g := zipf.New(2000, 0.9, seed)
	w := make(txn.Workload, n)
	for i := range w {
		t := txn.New(i)
		ops := int(g.Uniform(6)) + 2
		for j := 0; j < ops; j++ {
			k := txn.MakeKey(0, g.Next())
			if g.Float64() < 0.5 {
				t.R(k)
			} else {
				t.W(k)
			}
		}
		w[i] = t
	}
	return w
}

func TestSplitCoversWorkload(t *testing.T) {
	c := Cluster{Nodes: 4, ThreadsPerNode: 4, NetRTT: 10}
	w := workload(500, 1)
	p := c.Split(w)
	n := len(p.Distributed)
	for _, l := range p.Local {
		n += len(l)
	}
	if n != 500 {
		t.Fatalf("split covers %d of 500", n)
	}
	// Locality: every local transaction's keys live on one node.
	for node, l := range p.Local {
		for _, tx := range l {
			for _, k := range tx.AccessSet() {
				if c.Home(k) != node {
					t.Fatalf("txn %d on node %d touches key of node %d", tx.ID, node, c.Home(k))
				}
			}
		}
	}
	// Every distributed transaction has >= 2 participants recorded.
	for _, tx := range p.Distributed {
		if p.Participants[tx.ID] < 2 {
			t.Fatalf("distributed txn %d has %d participants", tx.ID, p.Participants[tx.ID])
		}
	}
}

func TestHomeDeterministicAndInRange(t *testing.T) {
	c := Cluster{Nodes: 5}
	for i := uint64(0); i < 1000; i++ {
		k := txn.MakeKey(uint16(i%3), i)
		h := c.Home(k)
		if h < 0 || h >= 5 {
			t.Fatalf("home %d out of range", h)
		}
		if h != c.Home(k) {
			t.Fatal("home not deterministic")
		}
	}
}

// Scheduling reduces the modeled local makespan versus the unscheduled
// partitioned baseline (conflicting work serializes without it).
func TestSchedulingHelpsDistributed(t *testing.T) {
	c := Cluster{Nodes: 4, ThreadsPerNode: 4, NetRTT: 20}
	w := workload(800, 2)
	g := conflict.Build(w, conflict.Serializability)
	est := estimator.AccessSetSize{}
	base := Evaluate(w, g, est, c, false)
	schd := Evaluate(w, g, est, c, true)
	if schd.DistributedCount != base.DistributedCount {
		t.Fatalf("distributed counts differ: %d vs %d", schd.DistributedCount, base.DistributedCount)
	}
	if schd.LocalMakespan >= base.LocalMakespan {
		t.Errorf("scheduling did not reduce local makespan: %v vs %v",
			schd.LocalMakespan, base.LocalMakespan)
	}
	if schd.Scheduled == 0 {
		t.Error("no transactions scheduled")
	}
	t.Logf("local makespan: scheduled %v vs baseline %v (%.1f%% better); %d distributed, dist phase %v",
		schd.LocalMakespan, base.LocalMakespan,
		100*(1-float64(schd.LocalMakespan)/float64(base.LocalMakespan)),
		schd.DistributedCount, schd.DistributedTime)
}

// The 2PC surcharge scales with network latency; local scheduling
// quality is unaffected.
func TestNetRTTAffectsOnlyDistributedPhase(t *testing.T) {
	w := workload(400, 3)
	g := conflict.Build(w, conflict.Serializability)
	est := estimator.AccessSetSize{}
	slow := Evaluate(w, g, est, Cluster{Nodes: 4, ThreadsPerNode: 4, NetRTT: 100}, true)
	fast := Evaluate(w, g, est, Cluster{Nodes: 4, ThreadsPerNode: 4, NetRTT: 1}, true)
	if slow.LocalMakespan != fast.LocalMakespan {
		t.Errorf("RTT changed local makespan: %v vs %v", slow.LocalMakespan, fast.LocalMakespan)
	}
	if slow.DistributedTime <= fast.DistributedTime {
		t.Errorf("RTT did not grow the distributed phase: %v vs %v",
			slow.DistributedTime, fast.DistributedTime)
	}
}

func TestMoreNodesMoreDistributed(t *testing.T) {
	w := workload(600, 4)
	g := conflict.Build(w, conflict.Serializability)
	est := estimator.AccessSetSize{}
	two := Evaluate(w, g, est, Cluster{Nodes: 2, ThreadsPerNode: 4, NetRTT: 10}, true)
	eight := Evaluate(w, g, est, Cluster{Nodes: 8, ThreadsPerNode: 4, NetRTT: 10}, true)
	if eight.DistributedCount <= two.DistributedCount {
		t.Errorf("more nodes should strand more cross-node transactions: %d vs %d",
			eight.DistributedCount, two.DistributedCount)
	}
}

func TestPlacementMatchesShardRouter(t *testing.T) {
	// The analytic model delegates placement to the runtime router, so
	// a transaction the model calls "local" is exactly one the runtime
	// executes single-shard, and vice versa.
	c := Cluster{Nodes: 5, ThreadsPerNode: 2}
	r := shard.Router{Shards: 5}
	for row := uint64(0); row < 2048; row++ {
		k := txn.MakeKey(0, row)
		if c.Home(k) != r.Home(k) {
			t.Fatalf("Home(%v): model %d != runtime %d", k, c.Home(k), r.Home(k))
		}
	}
	w := workload(400, 11)
	p := c.Split(w)
	for _, tx := range p.Distributed {
		if n := len(r.Participants(tx, nil)); n < 2 {
			t.Fatalf("model calls T%d distributed, runtime sees %d participant(s)", tx.ID, n)
		}
	}
	for node, local := range p.Local {
		for _, tx := range local {
			parts := r.Participants(tx, nil)
			if len(parts) != 1 || parts[0] != node {
				t.Fatalf("model homes T%d on node %d, runtime says %v", tx.ID, node, parts)
			}
		}
	}
}
