package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tskd/internal/arbiter"
	"tskd/internal/client"
	"tskd/internal/history"
	"tskd/internal/replica"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// auto_scenario.go: the automatic-failover scenario. Replica-failover
// with the operator removed: a lease-gated, replicating multi-shard
// primary (a server child holding a lease from an in-parent arbiter)
// is SIGKILLed mid-load; nobody runs -promote. The arbiter observes
// the missed renewals, waits out the lease TTL plus its fail quorum,
// durably bumps the epoch in its decision log, and grants it to the
// most-caught-up backup — a decoy backup stuck at sequence zero
// competes and must lose. The backup self-promotes (epoch bump, then
// a fresh incarnation serves on the address the grant named) and the
// verdict audits the whole story:
//
//   - liveness with a bound: the grant lands within the arbiter's
//     grant bound of the kill (plus scheduling grace) — the scenario
//     fails if failover needs an operator or takes too long;
//   - no acknowledged commit lost and exactly-once, exactly as in
//     replica-failover, on the promoted timeline;
//   - epoch uniqueness: the decision log decides each epoch at most
//     once and holds exactly one grant, to the caught-up backup;
//   - fencing, every path: a deposed-epoch shipper is refused at the
//     handshake, a deposed-epoch lease register is fenced and told
//     the new leader, and a resurrected old-primary incarnation dies
//     at boot (its boot-record flush runs through the lease gate)
//     instead of ever acknowledging work again;
//   - discovery: reliable clients configured with the dead primary's
//     address converge on the promoted node and resubmissions
//     deduplicate under their original idempotency keys.

// autoFailGroup is the shard-group name every node in this scenario
// registers under.
const autoFailGroup = "autofail"

// autoKey is the stable idempotency key of submission (c, i) — its
// own site, disjoint from the other scenarios' key spaces.
func autoKey(seed int64, c, i int) uint64 {
	return site(seed, "autofail/kill", int64(c), int64(i)) | 1
}

// autoTxn builds auto-failover submission (c, i): the shard-crash
// shape (two contended updates + unique marker insert) over AutoShards
// shards, with the cross-shard decision from this scenario's own site.
func (p Plan) autoTxn(c, i int, marker uint64) *txn.Transaction {
	r := shard.Router{Shards: p.AutoShards}
	mk := txn.MakeKey(workload.YCSBTable, marker)
	home := r.Home(mk)
	cross := p.autoCross(c, i)
	t := txn.New(0)
	for j := 0; j < 2; j++ {
		row := site(p.Seed, "autofail/key", int64(c), int64(i), int64(j)) % shardCrashRows
		want := home
		if cross && j == 1 {
			want = (home + 1) % p.AutoShards
		}
		t.U(probeHomeRow(r, row, want), 1)
	}
	return t.I(mk)
}

// runAutoFailover drives the automatic-failover scenario for one seed.
func runAutoFailover(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	fail := func() Report { return report("auto-failover", seed, plan.autoSummary(), v) }

	root := os.Getenv(envKillDataRoot)
	if root == "" {
		root = os.TempDir()
	}
	dataDir, err := os.MkdirTemp(root, fmt.Sprintf("tskd-autofail-%d-", seed))
	if err != nil {
		v.addf("mkdir data dir: %v", err)
		return fail()
	}
	defer func() {
		if len(v) == 0 {
			os.RemoveAll(dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "chaos: auto-failover seed %d failed, data dir kept at %s\n", seed, dataDir)
		}
	}()
	primaryDir := filepath.Join(dataDir, "primary")
	backupDir := filepath.Join(dataDir, "backup")
	arbDir := filepath.Join(dataDir, "arbiter")
	for _, d := range []string{primaryDir, backupDir, arbDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			v.addf("mkdir %s: %v", d, err)
			return fail()
		}
	}

	// The arbiter's event stream goes to a file kept with the failure
	// artifacts (its durable decision log lives in arbDir).
	logF, err := os.Create(filepath.Join(dataDir, "arbiter-events.log"))
	if err != nil {
		v.addf("arbiter event log: %v", err)
		return fail()
	}
	defer logF.Close()
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(logF, format+"\n", args...)
	}

	// The arbiter runs in-parent on real time; every grant it issues is
	// observed with a wall-clock stamp for the promotion-bound check.
	type grantObs struct {
		at      time.Time
		epoch   uint64
		grantee string
	}
	var grantMu sync.Mutex
	var grantLog []grantObs
	grantCh := make(chan grantObs, 4)
	arbCfg := arbiter.Config{
		Dir:        arbDir,
		LeaseTTL:   plan.AutoLeaseTTL,
		ProbeEvery: plan.AutoLeaseTTL / 4,
		FailQuorum: 2,
		Logf:       logf,
		OnGrant: func(group string, epoch uint64, grantee string) {
			g := grantObs{at: time.Now(), epoch: epoch, grantee: grantee}
			grantMu.Lock()
			grantLog = append(grantLog, g)
			grantMu.Unlock()
			select {
			case grantCh <- g:
			default:
			}
		},
	}
	arb, err := arbiter.New(arbCfg)
	if err != nil {
		v.addf("arbiter: %v", err)
		return fail()
	}
	if err := arb.Start("127.0.0.1:0"); err != nil {
		v.addf("arbiter start: %v", err)
		return fail()
	}
	defer arb.Close()

	// Reserve the promoted incarnation's address up front: the backup
	// announces it, the grant names it, fenced peers redirect to it,
	// and the phase-2 child binds it — exactly how a real deployment's
	// -announce works.
	resLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		v.addf("reserve address: %v", err)
		return fail()
	}
	newAddr := resLn.Addr().String()

	// The backup receiver runs in-parent with real fsync; its arbiter
	// agent streams the genuinely applied ship sequence. The decoy
	// backup reports sequence zero forever under a lexically smaller
	// address — if the arbiter chose by address (or arbitrarily), the
	// decoy would win the grant.
	recv, err := replica.NewServer(replica.ServerConfig{Dir: backupDir})
	if err != nil {
		v.addf("backup receiver: %v", err)
		return fail()
	}
	if err := recv.Start("127.0.0.1:0"); err != nil {
		v.addf("backup receiver start: %v", err)
		return fail()
	}
	defer recv.Close()
	agent, err := arbiter.StartBackupAgent(arbiter.BackupConfig{
		Addr: arb.Addr(), Group: autoFailGroup, Announce: newAddr,
		Seq:         func() uint64 { return recv.Stats().LastSeq },
		ReportEvery: plan.AutoLeaseTTL / 8,
		Logf:        logf,
	})
	if err != nil {
		v.addf("backup agent: %v", err)
		return fail()
	}
	defer agent.Close()
	decoy, err := arbiter.StartBackupAgent(arbiter.BackupConfig{
		Addr: arb.Addr(), Group: autoFailGroup, Announce: "0-decoy",
		Seq:         func() uint64 { return 0 },
		ReportEvery: plan.AutoLeaseTTL / 8,
		Logf:        logf,
	})
	if err != nil {
		v.addf("decoy agent: %v", err)
		return fail()
	}
	defer decoy.Close()

	// Phase 1: the lease-gated replicating primary under load, SIGKILLed
	// at the seeded acknowledged-commit count — racing 2PC rounds, group
	// flushes, the replication stream, and its own lease renewals.
	cmd1, addr, err := spawnServerChild(seed, primaryDir, filepath.Join(dataDir, "addr-1"),
		plan.AutoShards,
		envReplicaAddr+"="+recv.Addr(),
		envArbiterAddr+"="+arb.Addr())
	if err != nil {
		v.addf("phase 1 spawn: %v", err)
		return fail()
	}
	total := plan.AutoClients * plan.AutoSubs
	const (
		outUnknown = iota
		outAcked
	)
	outcome := make([]int32, total)
	var ackCount atomic.Int64
	var killedAt atomic.Int64 // UnixNano of the SIGKILL
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			killedAt.Store(time.Now().UnixNano())
			cmd1.Process.Kill()
		})
	}
	errs := make(chan string, plan.AutoClients)
	var wg sync.WaitGroup
	for c := 0; c < plan.AutoClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Sprintf("phase 1 client %d dial: %v", c, err)
				return
			}
			defer conn.Close()
			for i := 0; i < plan.AutoSubs; i++ {
				req, err := client.NewRequest(0, plan.autoTxn(c, i, liveMarker(c, i)))
				if err != nil {
					errs <- fmt.Sprintf("phase 1 client %d req: %v", c, err)
					return
				}
				req.IdemKey = autoKey(seed, c, i)
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				resp, err := conn.Submit(ctx, req)
				cancel()
				if err == nil && resp.Status == client.StatusCommit {
					outcome[c*plan.AutoSubs+i] = outAcked
					if ackCount.Add(1) >= int64(plan.AutoAfterAcks) {
						kill()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	kill()
	cmd1.Wait()
	for msg := range errs {
		v.addf("%s", msg)
	}
	if len(v) > 0 {
		return fail()
	}

	// The arbiter must now promote on its own. The dead primary's last
	// renewal is no later than the kill, so the grant must land within
	// the grant bound of it; the assertion allows scheduling grace on
	// top, but an operator-shaped wait (tens of seconds) is a failure.
	bound := arbCfg.GrantBound()
	killTime := time.Unix(0, killedAt.Load())
	var g grantObs
	select {
	case g = <-grantCh:
	case <-time.After(bound + 15*time.Second):
		v.addf("arbiter never promoted (grant bound %v)", bound)
		return fail()
	}
	if lat := g.at.Sub(killTime); lat > bound+2*time.Second {
		v.addf("promotion took %v after the kill, want <= grant bound %v (+2s grace)", lat, bound)
	}
	if g.epoch != 1 {
		v.addf("granted epoch %d, want 1", g.epoch)
	}
	if g.grantee != newAddr {
		v.addf("grant went to %q, want the caught-up backup %q (the decoy must lose)", g.grantee, newAddr)
	}
	// The real agent itself observed the grant (this is what triggers
	// self-promotion in a real backup process).
	select {
	case e := <-agent.Granted():
		if e != g.epoch {
			v.addf("backup agent saw grant epoch %d, arbiter issued %d", e, g.epoch)
		}
	case <-time.After(5 * time.Second):
		v.addf("backup agent never received the grant frame")
	}
	// Stop both agents before anything slow: with zero registered
	// backups the arbiter cannot issue a second grant while the
	// promoted incarnation boots.
	agent.Close()
	decoy.Close()

	// Drain the replication stream and self-promote the backup: bump
	// the directory's fencing epoch to the granted one — what the
	// backup process does on the grant, with no operator involved.
	drainDeadline := time.Now().Add(30 * time.Second)
	for recv.Stats().Conns > 0 {
		if time.Now().After(drainDeadline) {
			v.addf("replication stream never drained after the kill")
			return fail()
		}
		time.Sleep(5 * time.Millisecond)
	}
	recv.Close()
	if err := replica.WriteEpoch(backupDir, g.epoch); err != nil {
		v.addf("write granted epoch: %v", err)
		return fail()
	}

	// Fencing at the replication boundary: a shipper presenting the
	// deposed epoch is refused at the handshake; the granted epoch is
	// accepted.
	fence, err := replica.NewServer(replica.ServerConfig{Dir: backupDir})
	if err != nil {
		v.addf("post-promotion receiver: %v", err)
		return fail()
	}
	if err := fence.Start("127.0.0.1:0"); err != nil {
		v.addf("post-promotion receiver start: %v", err)
		return fail()
	}
	if _, err := replica.NewShipper(replica.ShipperConfig{Addr: fence.Addr(), Epoch: 0}); !errors.Is(err, replica.ErrFenced) {
		v.addf("deposed primary (epoch 0) not fenced at the ship handshake: %v", err)
	}
	if s, err := replica.NewShipper(replica.ShipperConfig{Addr: fence.Addr(), Epoch: g.epoch}); err != nil {
		v.addf("promoted epoch %d refused at the ship handshake: %v", g.epoch, err)
	} else {
		s.Close()
	}
	fence.Close()

	// Fencing at the lease boundary: a lease client presenting the
	// deposed epoch is fenced and told who leads now.
	stale, err := arbiter.NewLeaseClient(arbiter.LeaseConfig{
		Addr: arb.Addr(), Group: autoFailGroup, Epoch: 0, Announce: "node:" + primaryDir,
	})
	if err != nil {
		v.addf("stale lease client: %v", err)
		return fail()
	}
	fenceDeadline := time.Now().Add(5 * time.Second)
	for !errors.Is(stale.Check(), arbiter.ErrLeaseFenced) {
		if time.Now().After(fenceDeadline) {
			v.addf("deposed-epoch lease register was never fenced")
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := stale.Stats(); st.Fenced && st.Leader != newAddr {
		v.addf("fenced lease client told leader %q, want %q", st.Leader, newAddr)
	}
	stale.Close()

	// Phase 2: the promoted incarnation binds the announced address and
	// acquires the lease at the granted epoch before serving.
	resLn.Close()
	cmd2, addr2, err := spawnServerChild(seed, backupDir, filepath.Join(dataDir, "addr-2"),
		plan.AutoShards,
		envArbiterAddr+"="+arb.Addr(),
		envListenAddr+"="+newAddr)
	if err != nil {
		v.addf("phase 2 spawn: %v", err)
		return fail()
	}
	if addr2 != newAddr {
		v.addf("phase 2 bound %q, want the announced %q", addr2, newAddr)
	}

	// The resurrected old primary must refuse to come back: its lease
	// register is fenced (stale epoch), so its boot-record flush fails
	// through the lease gate and the incarnation dies without ever
	// publishing an address or acknowledging work.
	exe, err := os.Executable()
	if err != nil {
		v.addf("executable: %v", err)
		return fail()
	}
	resurrectAddrFile := filepath.Join(dataDir, "addr-resurrect")
	res := exec.Command(exe)
	res.Env = append(os.Environ(),
		envKillChild+"=1",
		envKillDataDir+"="+primaryDir,
		envKillAddrFile+"="+resurrectAddrFile,
		envKillSeed+"="+strconv.FormatInt(seed, 10),
		envKillShards+"="+strconv.Itoa(plan.AutoShards),
		envArbiterAddr+"="+arb.Addr())
	var resurrectErr bytes.Buffer
	res.Stderr = &resurrectErr
	if err := res.Run(); err == nil {
		v.addf("resurrected deposed primary came up and served")
	}
	if _, err := os.Stat(resurrectAddrFile); err == nil {
		v.addf("resurrected deposed primary published an address (stderr: %s)", resurrectErr.String())
	}

	// Phase 2 resubmission through reliable clients that still list the
	// dead primary first: they must converge on the promoted node, and
	// redelivered acked keys must deduplicate, not re-execute.
	rc := client.DialReliableMulti([]string{addr, newAddr}, client.RetryPolicy{Seed: seed ^ 0x6175746F})
	for c := 0; c < plan.AutoClients; c++ {
		for i := 0; i < plan.AutoSubs; i++ {
			idx := c*plan.AutoSubs + i
			redeliver := outcome[idx] == outAcked && plan.redeliverAutoAcked(c, i)
			if outcome[idx] == outAcked && !redeliver {
				continue
			}
			req, err := client.NewRequest(0, plan.autoTxn(c, i, liveMarker(c, i)))
			if err != nil {
				v.addf("phase 2 req (%d,%d): %v", c, i, err)
				continue
			}
			req.IdemKey = autoKey(seed, c, i)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			resp, err := rc.Submit(ctx, req)
			cancel()
			if err != nil {
				v.addf("phase 2 submit (%d,%d): %v", c, i, err)
				continue
			}
			if resp.Status != client.StatusCommit {
				v.addf("phase 2 submit (%d,%d): status %s, want commit", c, i, resp.Status)
				continue
			}
			if redeliver && !resp.Duplicate {
				v.addf("redelivered acked key (%d,%d) re-executed instead of deduplicated", c, i)
			}
			outcome[idx] = outAcked
		}
	}
	if got := rc.Addr(); got != newAddr {
		v.addf("reliable client converged on %q, want the promoted %q", got, newAddr)
	}
	rc.Close()
	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()

	// Verdict, part 1: the promoted timeline carries every acked commit
	// exactly once — same audit as replica-failover; the primary's disk
	// is never consulted.
	st, err := shard.Recover(backupDir, plan.AutoShards, shardBase)
	if err != nil {
		v.addf("recover: %v", err)
		return fail()
	}
	r := shard.Router{Shards: plan.AutoShards}
	localKeys := make([]map[uint64]bool, plan.AutoShards)
	for s := range localKeys {
		localKeys[s] = make(map[uint64]bool, len(st.ShardKeys[s]))
		for _, k := range st.ShardKeys[s] {
			localKeys[s][k] = true
		}
	}
	crossKeys := make(map[uint64]bool, len(st.CrossKeys))
	for _, k := range st.CrossKeys {
		crossKeys[k] = true
	}
	submitted := make(map[uint64]bool, total)
	var parts []int
	for c := 0; c < plan.AutoClients; c++ {
		for i := 0; i < plan.AutoSubs; i++ {
			marker := liveMarker(c, i)
			submitted[marker] = true
			if outcome[c*plan.AutoSubs+i] != outAcked {
				continue // already reported as a phase-2 violation
			}
			t := plan.autoTxn(c, i, marker)
			parts = r.Participants(t, parts[:0])
			home := r.Home(txn.MakeKey(workload.YCSBTable, marker))
			row := st.DBs[home].Table(workload.YCSBTable).Get(marker)
			if row == nil {
				v.addf("lost acked commit: marker (%d,%d) missing from promoted shard %d", c, i, home)
				continue
			}
			if n := storage.VerNumber(row.Ver.Load()); n != 1 {
				v.addf("marker (%d,%d) at version %d, want 1 (double apply)", c, i, n)
			}
			key := autoKey(seed, c, i)
			if len(parts) == 1 {
				if !localKeys[parts[0]][key] {
					v.addf("acked single-shard key (%d,%d) missing from promoted shard %d dedup window", c, i, parts[0])
				}
			} else if !crossKeys[key] {
				v.addf("acked cross-shard key (%d,%d) missing from promoted coordinator dedup window", c, i)
			}
		}
	}
	for s := 0; s < plan.AutoShards; s++ {
		st.DBs[s].Table(workload.YCSBTable).Scan(liveMarkerBase, ^uint64(0), func(row *storage.Row) bool {
			if !submitted[row.Key.Row()] {
				v.addf("phantom marker %d on shard %d installed by no submission", row.Key.Row(), s)
			} else if r.Home(row.Key) != s {
				v.addf("marker %d misrouted: on shard %d, owned by %d", row.Key.Row(), s, r.Home(row.Key))
			}
			return true
		})
	}
	for _, sh := range st.Info.Shards {
		if sh.Prepares != sh.ResolvedCommitted+sh.ResolvedAborted {
			v.addf("shard %d: %d prepares, only %d committed + %d aborted resolved",
				sh.Shard, sh.Prepares, sh.ResolvedCommitted, sh.ResolvedAborted)
		}
	}
	if e, err := replica.ReadEpoch(backupDir); err != nil || e != 1 {
		v.addf("promoted directory epoch %d (%v), want 1", e, err)
	}
	var bootEpochs []uint64
	if _, _, err := wal.ReplayDir(filepath.Join(backupDir, "coord"), func(_ uint64, rec wal.Record) error {
		if rec.Kind == wal.RecordBoot {
			bootEpochs = append(bootEpochs, rec.IdemKey)
		}
		return nil
	}); err != nil {
		v.addf("coord replay: %v", err)
	} else if !reflect.DeepEqual(bootEpochs, []uint64{0, 1}) {
		v.addf("boot record epochs %v, want [0 1]", bootEpochs)
	}
	var events []history.Event
	for s := 0; s < plan.AutoShards; s++ {
		dir := filepath.Join(backupDir, fmt.Sprintf("shard-%02d", s))
		if _, _, err := wal.ReplayDir(dir, func(lsn uint64, rec wal.Record) error {
			install := rec.Kind == wal.RecordCommit
			if rec.Kind == wal.RecordPrepare {
				_, install = st.Committed[uint64(rec.TxnID)]
			}
			if !install {
				return nil
			}
			e := history.Event{TxnID: len(events)}
			for _, w := range rec.Writes {
				e.Writes = append(e.Writes, history.Obs{Key: txn.Key(w.Key), Ver: w.Ver})
			}
			events = append(events, e)
			return nil
		}); err != nil {
			v.addf("shard %d wal replay: %v", s, err)
		}
	}
	if err := history.CheckEvents(events); err != nil {
		v.addf("wal tails: %v", err)
	}
	if st2, err := shard.Recover(backupDir, plan.AutoShards, shardBase); err != nil {
		v.addf("second recover: %v", err)
	} else if !reflect.DeepEqual(st2.Info, st.Info) {
		v.addf("recovery not idempotent: %+v then %+v", st.Info, st2.Info)
	}

	// Verdict, part 2: epoch uniqueness. The arbiter's durable decision
	// log decides each epoch at most once and holds exactly one grant,
	// naming the caught-up backup — so no two nodes can ever have held
	// the same epoch.
	recs, err := arbiter.ReadLog(arbDir)
	if err != nil {
		v.addf("arbiter decision log: %v", err)
	} else {
		perEpoch := make(map[uint64]int)
		grants := 0
		for _, rec := range recs {
			perEpoch[rec.Epoch]++
			if rec.Kind == "grant" {
				grants++
				if rec.Epoch != 1 || rec.Grantee != newAddr {
					v.addf("logged grant epoch=%d grantee=%q, want epoch=1 grantee=%q", rec.Epoch, rec.Grantee, newAddr)
				}
			}
		}
		for e, n := range perEpoch {
			if n > 1 {
				v.addf("epoch %d decided %d times in the arbiter log (epoch uniqueness broken)", e, n)
			}
		}
		if grants != 1 {
			v.addf("%d grants in the arbiter log, want exactly 1", grants)
		}
	}
	grantMu.Lock()
	observed := len(grantLog)
	grantMu.Unlock()
	if observed != 1 {
		v.addf("arbiter issued %d grants, want exactly 1", observed)
	}
	return fail()
}
