package chaos

import (
	"os"
	"testing"
)

// TestMain lets the kill-restart scenario re-exec this test binary as
// its durable server child: MaybeServerChild takes over (and exits)
// when the child environment is set, and is a no-op otherwise.
func TestMain(m *testing.M) {
	MaybeServerChild()
	os.Exit(m.Run())
}
