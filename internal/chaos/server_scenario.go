package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/history"
	"tskd/internal/server"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

const (
	serverClients = 3
	serverSubs    = 40 // submissions per client
	// Marker rows live far above the YCSB key space: every submission
	// inserts one unique marker row, so the recorder proves how many
	// times that submission executed — the at-most-once/exactly-once
	// evidence that survives a dropped connection.
	liveMarkerBase  = 1 << 20
	burstMarkerBase = 1 << 21
)

func liveMarker(c, i int) uint64 {
	return liveMarkerBase + uint64(c)*1000 + uint64(i)
}

func burstMarker(c, i, j int) uint64 {
	return burstMarkerBase + (uint64(c)*1000+uint64(i))*32 + uint64(j)
}

// serverTxn builds one contended submission: a few hot-key operations
// plus the unique marker insert.
func (p Plan) serverTxn(c, i int, marker uint64) *txn.Transaction {
	t := txn.New(0)
	for j := 0; j < 4; j++ {
		k := p.hotKey(workload.YCSBTable, c, i, j)
		if j%2 == 0 {
			t.R(k)
		} else {
			t.U(k, 1)
		}
	}
	return t.I(txn.MakeKey(workload.YCSBTable, marker))
}

// dropSend fires a submission on a throwaway connection and slams it
// shut without reading the response — the injected connection drop.
// The server may or may not have admitted the transaction by the time
// the close lands; either way its outcome must not be lost *and* it
// must not execute twice.
func dropSend(addr string, req client.Request) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	return json.NewEncoder(nc).Encode(&req)
}

// runServerFaults drives a loopback server with concurrent clients
// under connection drops and queue-full bursts, then reconciles three
// views of the run — client-visible statuses, server counters, and the
// recorder — and checks serializability across bundles. Invariants:
//
//   - a committed response means the submission executed exactly once
//     (its marker row was installed by exactly one commit);
//   - a rejected response carries a retry-after hint and the
//     submission never executed at all;
//   - a dropped connection's submission executed at most once — lost
//     to the client, never duplicated by the server;
//   - every admitted transaction commits (graceful drain loses
//     nothing) and the recorder agrees with the server's counters.
func runServerFaults(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	ycsb := workload.YCSB{Records: 2000, Theta: 0.9, OpsPerTxn: 8, ReadRatio: 0.5, RMW: true}
	rec := history.NewRecorder()
	srv, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        16,
		FlushInterval: time.Millisecond,
		QueueDepth:    plan.QueueDepth,
		DB:            ycsb.BuildDB(),
		Core: core.Options{
			Workers: plan.Workers, Protocol: plan.Protocol,
			Recorder: rec, Hooks: plan.EngineHooks(), Seed: seed,
		},
	})
	if err != nil {
		v.addf("server: %v", err)
		return report("server-faults", seed, plan.serverSummary(), v)
	}
	if err := srv.Start(); err != nil {
		v.addf("server start: %v", err)
		return report("server-faults", seed, plan.serverSummary(), v)
	}

	type outcome struct {
		marker uint64
		status string // commit | rejected | dropped
		retry  int64
	}
	results := make(chan outcome, serverClients*serverSubs*(1+24))
	fail := make(chan string, serverClients)
	var wg sync.WaitGroup
	for c := 0; c < serverClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := client.Dial(srv.Addr())
			if err != nil {
				fail <- fmt.Sprintf("client %d dial: %v", c, err)
				return
			}
			defer conn.Close()
			for i := 0; i < serverSubs; i++ {
				marker := liveMarker(c, i)
				req, err := client.NewRequest(0, plan.serverTxn(c, i, marker))
				if err != nil {
					fail <- fmt.Sprintf("client %d req: %v", c, err)
					return
				}
				if plan.dropSubmission(c, i) {
					if err := dropSend(srv.Addr(), req); err != nil {
						fail <- fmt.Sprintf("client %d drop-send: %v", c, err)
						return
					}
					results <- outcome{marker: marker, status: "dropped"}
				} else {
					resp, err := conn.Submit(context.Background(), req)
					if err != nil {
						fail <- fmt.Sprintf("client %d submit: %v", c, err)
						return
					}
					results <- outcome{marker: marker, status: resp.Status, retry: resp.RetryAfterMS}
				}
				// Queue-full burst: a blast of concurrent submissions on
				// the same connection; each must terminate as a commit or
				// an explicit rejection, never hang or vanish.
				if plan.BurstEvery > 0 && i%plan.BurstEvery == plan.BurstEvery-1 {
					var bw sync.WaitGroup
					for j := 0; j < plan.BurstSize; j++ {
						bw.Add(1)
						go func(j int) {
							defer bw.Done()
							m := burstMarker(c, i, j)
							req, err := client.NewRequest(0, plan.serverTxn(c, i, m))
							if err != nil {
								fail <- fmt.Sprintf("client %d burst req: %v", c, err)
								return
							}
							resp, err := conn.Submit(context.Background(), req)
							if err != nil {
								fail <- fmt.Sprintf("client %d burst submit: %v", c, err)
								return
							}
							results <- outcome{marker: m, status: resp.Status, retry: resp.RetryAfterMS}
						}(j)
					}
					bw.Wait()
				}
			}
		}(c)
	}
	wg.Wait()
	close(results)
	close(fail)
	for msg := range fail {
		v.addf("%s", msg)
	}

	// Graceful drain: everything admitted — including submissions whose
	// connection died — must still execute.
	if err := srv.Shutdown(context.Background()); err != nil {
		v.addf("shutdown: %v", err)
	}

	// How many commits installed each marker row, per the recorder.
	installs := make(map[uint64]int)
	for _, e := range rec.Events() {
		for _, w := range e.Writes {
			if w.Key.Table() == workload.YCSBTable && w.Key.Row() >= liveMarkerBase {
				installs[w.Key.Row()]++
			}
		}
	}

	for o := range results {
		n := installs[o.marker]
		switch o.status {
		case client.StatusCommit:
			if n != 1 {
				v.addf("exactly-once: committed marker %d installed %d times", o.marker, n)
			}
		case client.StatusRejected:
			if o.retry <= 0 {
				v.addf("rejection without retry-after (marker %d)", o.marker)
			}
			if n != 0 {
				v.addf("rejected marker %d executed %d times", o.marker, n)
			}
		case client.StatusShed:
			// The adaptive shedder may engage if the bursts hold a
			// standing queue; a shed submission backs off and never ran.
			if o.retry <= 0 {
				v.addf("shed without retry-after (marker %d)", o.marker)
			}
			if n != 0 {
				v.addf("shed marker %d executed %d times", o.marker, n)
			}
		case "dropped":
			if n > 1 {
				v.addf("at-most-once: dropped marker %d executed %d times", o.marker, n)
			}
		default:
			v.addf("unexpected status %q (marker %d)", o.status, o.marker)
		}
	}

	// Reconcile the server's counters with the recorder.
	st := srv.Stats()
	if st.Committed != st.Admitted {
		v.addf("drain lost work: admitted %d, committed %d", st.Admitted, st.Committed)
	}
	if st.ResultsStreamed != st.Admitted {
		v.addf("results %d for %d admitted", st.ResultsStreamed, st.Admitted)
	}
	if uint64(rec.Len()) != st.Committed {
		v.addf("recorder has %d commits, server counted %d", rec.Len(), st.Committed)
	}
	if err := rec.Check(); err != nil {
		v.addf("serializability: %v", err)
	}
	return report("server-faults", seed, plan.serverSummary(), v)
}
