package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"tskd/internal/engine"
	"tskd/internal/txn"
)

// Fault points. Every injection decision is keyed by one of these
// names plus site-specific keys; DESIGN.md documents the registry.
const (
	// PointWorkerStall stalls a worker before an execution attempt
	// (keys: txnID, attempt).
	PointWorkerStall = "engine/worker-stall"
	// PointAccessLatency injects a per-access latency spike (keys:
	// txnID, opIdx).
	PointAccessLatency = "engine/access-latency"
	// PointDepWaitStall stalls a worker entering a dependency wait
	// (keys: txnID, dep).
	PointDepWaitStall = "engine/dep-wait-stall"
	// PointClockSkew skews a worker's virtual-time progress tracking
	// (keys: worker).
	PointClockSkew = "engine/clock-skew"
	// PointWALFault plants the WAL write fault (byte offset + mode are
	// drawn once per seed, not per site).
	PointWALFault = "wal/write-fault"
	// PointConnDrop drops a client connection right after submitting
	// (keys: client, submission index).
	PointConnDrop = "server/conn-drop"
	// PointQueueBurst fires a queue-full submission burst (keys:
	// client, submission index).
	PointQueueBurst = "server/queue-full-burst"
	// PointSimNoise is the simulator's duration-noise model (the
	// clock-skew model reused from internal/sim).
	PointSimNoise = "sim/duration-noise"
	// PointKillServer is the kill-and-restart scenario's process kill:
	// the instant is chosen by the seed-derived acknowledged-commit
	// threshold (Plan.KillAfterAcks), and PointKillRedeliver selects
	// which acknowledged keys are redelivered after the restart (keys:
	// client, submission index).
	PointKillServer    = "server/kill"
	PointKillRedeliver = "server/kill-redeliver"
	// PointOverloadPri assigns the overload scenario's burst submissions
	// their priority class (keys: client, submission index).
	PointOverloadPri = "server/overload-pri"
	// PointShardCross decides whether shard-crash submission (c, i)
	// spans two shards (commits via 2PC) or stays on one.
	PointShardCross = "shard/cross"
	// PointShardRedeliver selects which acknowledged shard-crash keys
	// are redelivered after the restart (keys: client, submission index).
	PointShardRedeliver = "shard/redeliver"
	// PointReplCross / PointReplRedeliver are the replica-failover
	// scenario's analogues of the shard points (separate sites so the
	// two scenarios' schedules stay independent per seed).
	PointReplCross     = "replica/cross"
	PointReplRedeliver = "replica/redeliver"
	// PointAutoCross / PointAutoRedeliver are the auto-failover
	// scenario's analogues (its own sites again, plus "autofail/key"
	// and "autofail/kill" for rows and idempotency keys).
	PointAutoCross     = "autofail/cross"
	PointAutoRedeliver = "autofail/redeliver"
)

// Plan is the seed-derived fault schedule for one chaos run: which
// faults are armed, at what rates and magnitudes, plus the workload
// shape knobs the scenarios share. Same seed, same Plan — the Plan
// (together with the site hash) IS the replayable fault schedule.
type Plan struct {
	Seed     int64
	Protocol string
	Workers  int

	// Engine faults.
	StallRate float64
	StallMax  time.Duration
	OpLatRate float64
	OpLatMax  time.Duration
	DepStall  time.Duration
	Skew      float64 // ± relative skew of worker virtual clocks
	// Defer enables TsDEFER in the scenarios whose schedules tolerate
	// reordering (never with dependency waits: deferring a queue head
	// behind its own dependent would self-deadlock the worker).
	Defer bool

	// WAL fault: sticky write failure after WALFailAfter bytes
	// (negative = no log fault this seed); WALTorn selects torn-prefix
	// vs clean-error mode.
	WALFailAfter int64
	WALTorn      bool

	// Serving faults.
	DropRate   float64
	BurstEvery int
	BurstSize  int
	QueueDepth int

	// Simulator clock-skew amplitude (sim.Config.Noise).
	SimNoise float64

	// Kill-and-restart scenario: a durable server child process is
	// SIGKILLed once KillAfterAcks commits were acknowledged, restarted
	// over the same data directory, and the in-doubt submissions are
	// resubmitted under their original idempotency keys.
	KillClients         int     // concurrent phase-1 clients
	KillSubs            int     // submissions per client
	KillAfterAcks       int     // SIGKILL once this many commits acked
	KillSegmentBytes    int64   // child WAL segment rotation threshold
	KillCheckpointBytes int64   // child checkpoint threshold
	KillRedeliver       float64 // P(redeliver an acked key after restart)

	// Overload + WAL-stall scenario: a burst of deadline-carrying,
	// mixed-priority submissions lands while the log's fsync device is
	// stalled far past the breaker's trip latency.
	OverClients    int           // concurrent burst clients
	OverBurst      int           // submissions per burst client
	OverStall      time.Duration // injected per-fsync latency
	OverDeadlineMS int64         // burst deadline budget (milliseconds)
	OverLowPri     float64       // P(a burst submission is low priority)

	// Shard-crash scenario: a durable multi-shard server child is
	// SIGKILLed mid-load — racing 2PC prepares, decisions and
	// participant installs against the kill — restarted over the same
	// directory, and every in-doubt submission resubmitted under its
	// original idempotency key.
	ShardCount     int     // shards in the child server (>= 2)
	ShardClients   int     // concurrent phase-1 clients
	ShardSubs      int     // submissions per client
	ShardAfterAcks int     // SIGKILL once this many commits acked
	ShardCross     float64 // P(a submission spans two shards)
	ShardRedeliver float64 // P(redeliver an acked key after restart)
	ShardSegBytes  int64   // child WAL segment rotation threshold
	ShardCkptBytes int64   // child checkpoint threshold

	// Replica-failover scenario: a durable multi-shard primary ships
	// every WAL flush synchronously to a backup receiver and is
	// SIGKILLed mid-2PC; the backup directory is promoted (epoch bump)
	// and a second incarnation serves over it. The primary's own
	// directory is abandoned — the promoted timeline is the truth.
	ReplShards     int     // shards in the primary (>= 2)
	ReplClients    int     // concurrent phase-1 clients
	ReplSubs       int     // submissions per client
	ReplAfterAcks  int     // SIGKILL the primary once this many commits acked
	ReplCross      float64 // P(a submission spans two shards)
	ReplRedeliver  float64 // P(redeliver an acked key after failover)

	// Auto-failover scenario: like replica-failover, but nobody runs
	// -promote. A lease-gated replicating primary is SIGKILLed mid-2PC;
	// the arbiter observes the missed renewals, durably bumps the
	// epoch, and grants it to the most-caught-up backup, which
	// self-promotes and serves.
	AutoShards    int           // shards in the primary (>= 2)
	AutoClients   int           // concurrent phase-1 clients
	AutoSubs      int           // submissions per client
	AutoAfterAcks int           // SIGKILL the primary once this many commits acked
	AutoCross     float64       // P(a submission spans two shards)
	AutoRedeliver float64       // P(redeliver an acked key after failover)
	AutoLeaseTTL  time.Duration // arbiter lease TTL (the grant bound derives from it)
}

// engineProtocols are the CC protocols the chaos scenarios rotate
// through. MVCC/SSI/HSTORE are exercised by their own unit tests; the
// chaos rotation sticks to the paper's evaluation set plus the lockers.
var engineProtocols = []string{"OCC", "SILO", "TICTOC", "NO_WAIT", "WAIT_DIE"}

// NewPlan derives the fault schedule for a seed. It is a pure function
// of the seed: the draws come from a private PRNG seeded with it.
func NewPlan(seed int64) Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x5EEDC4A05))
	p := Plan{
		Seed:       seed,
		Protocol:   engineProtocols[rng.Intn(len(engineProtocols))],
		Workers:    2 + rng.Intn(7), // 2..8
		StallRate:  0.01 + 0.04*rng.Float64(),
		StallMax:   time.Duration(50+rng.Intn(450)) * time.Microsecond,
		OpLatRate:  0.02 + 0.08*rng.Float64(),
		OpLatMax:   time.Duration(10+rng.Intn(190)) * time.Microsecond,
		DepStall:   time.Duration(rng.Intn(200)) * time.Microsecond,
		Skew:       0.3 * rng.Float64(),
		DropRate:   0.05 + 0.15*rng.Float64(),
		BurstEvery: 8 + rng.Intn(8),
		BurstSize:  8 + rng.Intn(17),
		QueueDepth: 8 + rng.Intn(57),
		SimNoise:   0.5 * rng.Float64(),
	}
	p.Defer = rng.Intn(2) == 0
	// One seed in five runs the WAL scenario fault-free (recovery of a
	// complete log must also hold); otherwise the log dies somewhere
	// inside — or just past — the expected ~40KB the workload writes.
	if rng.Intn(5) == 0 {
		p.WALFailAfter = -1
	} else {
		p.WALFailAfter = int64(1024 + rng.Intn(63*1024))
		p.WALTorn = rng.Intn(2) == 0
	}
	// Kill-and-restart knobs, drawn after everything else so the other
	// scenarios' schedules are unchanged per seed. The kill lands
	// between ~20% and ~70% of the way through the load; the tiny
	// segment and checkpoint thresholds force rotation + truncation to
	// happen before the kill, so recovery crosses real checkpoint and
	// truncation boundaries.
	p.KillClients = 2 + rng.Intn(2)
	p.KillSubs = 30 + rng.Intn(31)
	total := p.KillClients * p.KillSubs
	p.KillAfterAcks = total/5 + rng.Intn(total/2)
	p.KillSegmentBytes = int64(4096 + rng.Intn(4096))
	p.KillCheckpointBytes = int64(16384 + rng.Intn(16384))
	p.KillRedeliver = 0.2 + 0.3*rng.Float64()
	// Overload + WAL-stall knobs, drawn after the kill knobs for the
	// same reason: earlier scenarios' per-seed schedules must not shift.
	// The stall always exceeds the scenario's 10ms trip latency and the
	// deadlines always undercut the stall, so every seed exercises both
	// the breaker trip and deadline expiry under queueing.
	p.OverClients = 2 + rng.Intn(2)
	p.OverBurst = 24 + rng.Intn(17)
	p.OverStall = time.Duration(60+rng.Intn(91)) * time.Millisecond
	p.OverDeadlineMS = int64(40 + rng.Intn(41))
	p.OverLowPri = 0.3 + 0.4*rng.Float64()
	// Shard-crash knobs, drawn last for the same reason again. The kill
	// lands between ~20% and ~70% of the way through the load; the cross
	// fraction keeps a steady stream of 2PC rounds in flight so the kill
	// has prepared-but-undecided transactions to land on.
	p.ShardCount = 2 + rng.Intn(3) // 2..4
	p.ShardClients = 2 + rng.Intn(2)
	p.ShardSubs = 30 + rng.Intn(31)
	stotal := p.ShardClients * p.ShardSubs
	p.ShardAfterAcks = stotal/5 + rng.Intn(stotal/2)
	p.ShardCross = 0.25 + 0.5*rng.Float64()
	p.ShardRedeliver = 0.2 + 0.3*rng.Float64()
	p.ShardSegBytes = int64(4096 + rng.Intn(4096))
	p.ShardCkptBytes = int64(16384 + rng.Intn(16384))
	// Replica-failover knobs, drawn last — the standing rule: new knobs
	// append after every existing draw so earlier scenarios' per-seed
	// schedules never shift. The child reuses the shard-crash segment
	// and checkpoint thresholds (it is the same sharded server).
	p.ReplShards = 2 + rng.Intn(2) // 2..3
	p.ReplClients = 2 + rng.Intn(2)
	p.ReplSubs = 25 + rng.Intn(26)
	rtotal := p.ReplClients * p.ReplSubs
	p.ReplAfterAcks = rtotal/5 + rng.Intn(rtotal/2)
	p.ReplCross = 0.25 + 0.5*rng.Float64()
	p.ReplRedeliver = 0.2 + 0.3*rng.Float64()
	// Auto-failover knobs, appended after every existing draw (the
	// standing rule once more). The lease TTL is short enough to keep
	// the scenario fast but long enough that a healthy primary under
	// real-fsync load never misses a whole grant bound (1.75x TTL) of
	// renewals from scheduling noise alone.
	p.AutoShards = 2 + rng.Intn(2) // 2..3
	p.AutoClients = 2 + rng.Intn(2)
	p.AutoSubs = 25 + rng.Intn(26)
	ototal := p.AutoClients * p.AutoSubs
	p.AutoAfterAcks = ototal/5 + rng.Intn(ototal/2)
	p.AutoCross = 0.25 + 0.5*rng.Float64()
	p.AutoRedeliver = 0.2 + 0.3*rng.Float64()
	p.AutoLeaseTTL = time.Duration(300+rng.Intn(201)) * time.Millisecond
	return p
}

// EngineHooks builds the engine fault hooks driven by this plan. The
// returned hooks are stateless and safe for concurrent use: every
// decision is a site hash of the plan's seed.
func (p Plan) EngineHooks() *engine.Hooks {
	return &engine.Hooks{
		BeforeAttempt: func(worker, txnID, attempt int) time.Duration {
			h := site(p.Seed, PointWorkerStall, int64(txnID), int64(attempt))
			if hit(h, p.StallRate) {
				return stretch(h, p.StallMax)
			}
			return 0
		},
		BeforeOp: func(worker, txnID, opIdx int) time.Duration {
			h := site(p.Seed, PointAccessLatency, int64(txnID), int64(opIdx))
			if hit(h, p.OpLatRate) {
				return stretch(h, p.OpLatMax)
			}
			return 0
		},
		BeforeDepWait: func(worker, txnID, dep int) time.Duration {
			h := site(p.Seed, PointDepWaitStall, int64(txnID), int64(dep))
			if hit(h, 0.2) {
				return stretch(h, p.DepStall)
			}
			return 0
		},
		SkewBusy: func(worker int, busy time.Duration) time.Duration {
			h := site(p.Seed, PointClockSkew, int64(worker))
			f := 1 + p.Skew*(2*frac(h)-1)
			return time.Duration(float64(busy) * f)
		},
	}
}

// engineSummary renders the engine-fault side of the schedule; it is
// part of the verdict line and therefore deterministic.
func (p Plan) engineSummary() string {
	return fmt.Sprintf("proto=%s workers=%d stall=%.3f/%s oplat=%.3f/%s skew=%.3f defer=%v",
		p.Protocol, p.Workers, p.StallRate, p.StallMax, p.OpLatRate, p.OpLatMax, p.Skew, p.Defer)
}

// walSummary renders the WAL fault schedule.
func (p Plan) walSummary() string {
	if p.WALFailAfter < 0 {
		return p.engineSummary() + " wal=healthy"
	}
	mode := "clean"
	if p.WALTorn {
		mode = "torn"
	}
	return fmt.Sprintf("%s wal=%s@%d", p.engineSummary(), mode, p.WALFailAfter)
}

// simSummary renders the simulator noise schedule.
func (p Plan) simSummary() string {
	return fmt.Sprintf("workers=%d noise=%.3f", p.Workers, p.SimNoise)
}

// serverSummary renders the serving-fault schedule.
func (p Plan) serverSummary() string {
	return fmt.Sprintf("proto=%s workers=%d drop=%.3f burst=%dx%d queue=%d",
		p.Protocol, p.Workers, p.DropRate, p.BurstEvery, p.BurstSize, p.QueueDepth)
}

// killSummary renders the kill-and-restart schedule.
func (p Plan) killSummary() string {
	return fmt.Sprintf("proto=%s workers=%d load=%dx%d kill@%d seg=%d ckpt=%d redeliver=%.3f",
		p.Protocol, p.Workers, p.KillClients, p.KillSubs, p.KillAfterAcks,
		p.KillSegmentBytes, p.KillCheckpointBytes, p.KillRedeliver)
}

// shardSummary renders the shard-crash schedule.
func (p Plan) shardSummary() string {
	return fmt.Sprintf("proto=%s workers=%d shards=%d load=%dx%d kill@%d cross=%.3f seg=%d ckpt=%d redeliver=%.3f",
		p.Protocol, p.Workers, p.ShardCount, p.ShardClients, p.ShardSubs, p.ShardAfterAcks,
		p.ShardCross, p.ShardSegBytes, p.ShardCkptBytes, p.ShardRedeliver)
}

// replicaSummary renders the replica-failover schedule.
func (p Plan) replicaSummary() string {
	return fmt.Sprintf("proto=%s workers=%d shards=%d load=%dx%d kill@%d cross=%.3f seg=%d ckpt=%d redeliver=%.3f",
		p.Protocol, p.Workers, p.ReplShards, p.ReplClients, p.ReplSubs, p.ReplAfterAcks,
		p.ReplCross, p.ShardSegBytes, p.ShardCkptBytes, p.ReplRedeliver)
}

// autoSummary renders the auto-failover schedule.
func (p Plan) autoSummary() string {
	return fmt.Sprintf("proto=%s workers=%d shards=%d load=%dx%d kill@%d cross=%.3f ttl=%s redeliver=%.3f",
		p.Protocol, p.Workers, p.AutoShards, p.AutoClients, p.AutoSubs, p.AutoAfterAcks,
		p.AutoCross, p.AutoLeaseTTL, p.AutoRedeliver)
}

// autoCross decides whether auto-failover submission (c, i) spans two
// shards.
func (p Plan) autoCross(c, i int) bool {
	return hit(site(p.Seed, PointAutoCross, int64(c), int64(i)), p.AutoCross)
}

// redeliverAutoAcked decides whether the acked auto-failover
// submission (c, i) is redelivered after the failover (expected
// verdict: Duplicate).
func (p Plan) redeliverAutoAcked(client, i int) bool {
	return hit(site(p.Seed, PointAutoRedeliver, int64(client), int64(i)), p.AutoRedeliver)
}

// replCross decides whether replica-failover submission (c, i) spans
// two shards.
func (p Plan) replCross(c, i int) bool {
	return hit(site(p.Seed, PointReplCross, int64(c), int64(i)), p.ReplCross)
}

// redeliverReplAcked decides whether the acked replica-failover
// submission (c, i) is redelivered after the failover (expected
// verdict: Duplicate).
func (p Plan) redeliverReplAcked(client, i int) bool {
	return hit(site(p.Seed, PointReplRedeliver, int64(client), int64(i)), p.ReplRedeliver)
}

// crossShard decides whether shard-crash submission (c, i) spans two
// shards.
func (p Plan) crossShard(c, i int) bool {
	return hit(site(p.Seed, PointShardCross, int64(c), int64(i)), p.ShardCross)
}

// redeliverShardAcked decides whether the acked shard-crash submission
// (c, i) is redelivered after the restart (expected verdict:
// Duplicate).
func (p Plan) redeliverShardAcked(client, i int) bool {
	return hit(site(p.Seed, PointShardRedeliver, int64(client), int64(i)), p.ShardRedeliver)
}

// overloadSummary renders the overload + WAL-stall schedule.
func (p Plan) overloadSummary() string {
	return fmt.Sprintf("proto=%s workers=%d burst=%dx%d stall=%s deadline=%dms lowpri=%.3f",
		p.Protocol, p.Workers, p.OverClients, p.OverBurst, p.OverStall, p.OverDeadlineMS, p.OverLowPri)
}

// lowPriority decides the priority class of overload burst submission
// (c, i).
func (p Plan) lowPriority(c, i int) bool {
	return hit(site(p.Seed, PointOverloadPri, int64(c), int64(i)), p.OverLowPri)
}

// redeliverAcked decides whether the acked submission (c, i) is
// redelivered after the restart (expected verdict: Duplicate).
func (p Plan) redeliverAcked(client, i int) bool {
	return hit(site(p.Seed, PointKillRedeliver, int64(client), int64(i)), p.KillRedeliver)
}

// dropSubmission decides whether submission i of client c loses its
// connection right after the request is written.
func (p Plan) dropSubmission(client, i int) bool {
	return hit(site(p.Seed, PointConnDrop, int64(client), int64(i)), p.DropRate)
}

// hotKey returns a deterministic contended key for submission (c, i, j)
// out of a small hot set, so serving-scenario transactions conflict.
func (p Plan) hotKey(table uint16, client, i, j int) txn.Key {
	h := site(p.Seed, "server/hot-key", int64(client), int64(i), int64(j))
	return txn.MakeKey(table, h%64)
}
