//go:build chaosbug

package chaos

import (
	"strings"
	"testing"
)

// TestPlantedBug proves the harness is not vacuous: under the planted
// protocol (read validation skipped on half the commits) the
// serializability checker must report a cycle, on every seed tried.
func TestPlantedBug(t *testing.T) {
	sc := Find("planted-bug")
	if sc == nil {
		t.Fatal("planted-bug scenario not registered under -tags chaosbug")
	}
	for seed := int64(1); seed <= 5; seed++ {
		r := sc.Run(seed)
		if r.Pass {
			t.Fatalf("seed %d: checker passed a protocol that skips read validation", seed)
		}
		found := false
		for _, v := range r.Violations {
			if strings.Contains(v, "serialization cycle") || strings.Contains(v, "both installed") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %d: failed, but not with a serializability violation: %v", seed, r.Violations)
		}
	}
}

// TestPlantedScenarioHidden asserts the planted scenario is only
// reachable under the chaosbug build tag (this test IS tagged, so it
// can only check registration consistency: the registry must expose it
// exactly once, at the end).
func TestPlantedScenarioHidden(t *testing.T) {
	all := Scenarios()
	n := 0
	for _, s := range all {
		if s.Name == "planted-bug" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("planted-bug registered %d times", n)
	}
	if all[len(all)-1].Name != "planted-bug" {
		t.Fatal("planted-bug must sort last so untagged seed matrices are unaffected")
	}
}
