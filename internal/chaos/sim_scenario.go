package chaos

import (
	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/sim"
	"tskd/internal/txn"
)

// runSimSkew exercises the discrete-event simulator under its
// duration-noise model (the clock-skew analogue in pure virtual time):
// estimates drift by up to ±SimNoise per attempt. The simulator's whole
// value is bit-reproducibility — the same seed must yield the same
// Result on any machine — so the invariant is replay equality, with and
// without noise, plus completeness (noise delays transactions but may
// never lose one).
func runSimSkew(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	_, w := engineWorkload(seed)
	g := conflict.Build(w, conflict.Serializability)

	phase := make([][]*txn.Transaction, plan.Workers)
	for i, t := range w {
		phase[i%plan.Workers] = append(phase[i%plan.Workers], t)
	}
	phases := [][][]*txn.Transaction{phase}
	cost := func(t *txn.Transaction) clock.Units { return clock.Units(len(t.Ops)) }

	run := func(noise float64) sim.Result {
		return sim.Run(phases, g, sim.Config{Cost: cost, Noise: noise, Seed: seed})
	}
	noisy, noisyReplay := run(plan.SimNoise), run(plan.SimNoise)
	if noisy != noisyReplay {
		v.addf("sim replay diverged under noise %.3f: %+v vs %+v", plan.SimNoise, noisy, noisyReplay)
	}
	exact, exactReplay := run(0), run(0)
	if exact != exactReplay {
		v.addf("noise-free sim replay diverged: %+v vs %+v", exact, exactReplay)
	}
	if noisy.Committed != len(w) {
		v.addf("noisy sim committed %d of %d", noisy.Committed, len(w))
	}
	if exact.Committed != len(w) {
		v.addf("exact sim committed %d of %d", exact.Committed, len(w))
	}
	if noisy.Makespan <= 0 || exact.Makespan <= 0 {
		v.addf("degenerate makespan: noisy %d, exact %d", int64(noisy.Makespan), int64(exact.Makespan))
	}
	return report("sim-skew", seed, plan.simSummary(), v)
}
