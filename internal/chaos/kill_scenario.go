package chaos

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tskd/internal/arbiter"
	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/history"
	"tskd/internal/replica"
	"tskd/internal/server"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// kill_scenario.go: the crash-recovery scenario. Unlike the in-process
// scenarios, this one kills a real durable server — a child process
// running this same binary in server mode — with SIGKILL at an instant
// chosen by the seed (after Plan.KillAfterAcks acknowledged commits),
// restarts it over the same data directory, resubmits every in-doubt
// transaction under its original idempotency key, and then recovers
// the directory read-only to verify the durability contract:
//
//   - no acknowledged commit is lost (its marker row survives);
//   - no transaction applies twice (marker versions stay at 1, and the
//     WAL never holds two installs of one version);
//   - redelivering an already-acknowledged key after the restart is
//     answered from the recovered dedup window, not re-executed;
//   - recovery is idempotent (a second Recover sees identical state).
//
// The child runs with real fsync: the kill races actual group-commit
// flushes, segment rotations and checkpoint truncations (the plan's
// tiny thresholds force several of each before the kill lands).

// Child-mode environment. MaybeServerChild turns the process into the
// durable server when envKillChild is set; the parent fills the rest.
const (
	envKillChild    = "TSKD_CHAOS_SERVER_CHILD"
	envKillDataDir  = "TSKD_CHAOS_DATA_DIR"
	envKillAddrFile = "TSKD_CHAOS_ADDR_FILE"
	envKillSeed     = "TSKD_CHAOS_SEED"
	// envKillShards > 1 turns the child into a multi-shard server (the
	// shard-crash scenario); absent or 1 keeps the single-pipeline one.
	envKillShards = "TSKD_CHAOS_SHARDS"
	// envKillDataRoot (parent side) overrides where scenario data
	// directories are created (default os.TempDir()); CI points it at a
	// workspace path so failing runs can be uploaded as artifacts.
	envKillDataRoot = "TSKD_CHAOS_DATA_ROOT"
	// envReplicaAddr turns the child into a replicating primary: it
	// ships every WAL flush to this backup replication address, in sync
	// mode (acks wait for the backup's fsync while the pair is healthy).
	envReplicaAddr = "TSKD_CHAOS_REPLICA_ADDR"
	// envArbiterAddr turns the child into a lease-gated primary: it
	// registers with the arbiter at this address (group autoFailGroup,
	// epoch from the data directory) and gates every dispatch and WAL
	// flush on the lease. The child waits for its first lease before
	// any log opens; a child the arbiter fences instead (stale epoch)
	// fails its boot-record flush and dies — a deposed incarnation
	// refuses to come back up.
	envArbiterAddr = "TSKD_CHAOS_ARBITER_ADDR"
	// envListenAddr pins the child's transaction listener to a parent-
	// reserved address, which doubles as its arbiter announce — the
	// address the arbiter hands out as the leader to everyone else.
	envListenAddr = "TSKD_CHAOS_LISTEN_ADDR"
)

// killBaseDB is the initial store both server incarnations start from;
// it must be identical across them, so it is a pure function.
func killBaseDB() *workload.YCSB { return &workload.YCSB{Records: 2000} }

// killKey is the stable idempotency key of submission (c, i): derived
// from the seed, so the restarted phase resubmits under the exact keys
// the killed phase used. The low bit is forced — zero means "no key".
func killKey(seed int64, c, i int) uint64 {
	return site(seed, PointKillServer, int64(c), int64(i)) | 1
}

// MaybeServerChild turns the current process into the kill scenario's
// durable server when the child environment is set, and never returns
// in that case. Both entry points that can host the scenario — the
// chaos package's TestMain and cmd/tskd-chaos — call it first thing,
// so os.Executable() re-executed with the environment below comes up
// as a server instead of re-running the tests.
func MaybeServerChild() {
	if os.Getenv(envKillChild) == "" {
		return
	}
	die := func(err error) {
		fmt.Fprintf(os.Stderr, "chaos server child: %v\n", err)
		os.Exit(3)
	}
	seed, err := strconv.ParseInt(os.Getenv(envKillSeed), 10, 64)
	if err != nil {
		die(fmt.Errorf("bad %s: %v", envKillSeed, err))
	}
	plan := NewPlan(seed)
	cfg := server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        16,
		FlushInterval: time.Millisecond,
		QueueDepth:    256,
		DB:            killBaseDB().BuildDB(),
		Core: core.Options{
			Workers: plan.Workers, Protocol: plan.Protocol, Seed: seed,
		},
		Durability: &server.DurabilityOptions{
			Dir:             os.Getenv(envKillDataDir),
			GroupWindow:     time.Millisecond,
			SegmentBytes:    plan.KillSegmentBytes,
			CheckpointBytes: plan.KillCheckpointBytes,
			// Real fsync: the whole point is racing SIGKILL against
			// actual durability barriers.
		},
	}
	if shards, _ := strconv.Atoi(os.Getenv(envKillShards)); shards > 1 {
		// Shard-crash scenario: the same durable server, but multi-shard.
		// Each shard starts from its own full base replica; the kill now
		// additionally races 2PC prepares, coordinator decisions and
		// participant installs.
		cfg.DB = nil
		cfg.Shards = shards
		cfg.ShardDB = func(int) *storage.DB { return killBaseDB().BuildDB() }
		cfg.Durability.SegmentBytes = plan.ShardSegBytes
		cfg.Durability.CheckpointBytes = plan.ShardCkptBytes
	}
	if addr := os.Getenv(envReplicaAddr); addr != "" {
		// Replica-failover scenario: the child is a replicating primary.
		// Sync mode, so the SIGKILL races ack-after-replication — every
		// acknowledged commit must already be on the backup's disk or in
		// its receive path when the process dies.
		epoch, err := replica.ReadEpoch(cfg.Durability.Dir)
		if err != nil {
			die(err)
		}
		ship, err := replica.NewShipper(replica.ShipperConfig{
			Addr: addr, Epoch: epoch, Sync: true,
		})
		if err != nil {
			die(err)
		}
		cfg.Durability.Replication = ship
	}
	if arb := os.Getenv(envArbiterAddr); arb != "" {
		// Auto-failover scenario: the child is lease-gated. A reserved
		// listen address (the promoted incarnation) is also the announce;
		// otherwise announce a stable per-node identity — it is never a
		// redirect target while this node leads, and it is what the
		// arbiter reports as held-by when fencing a split-brain peer.
		if la := os.Getenv(envListenAddr); la != "" {
			cfg.Addr = la
		}
		announce := cfg.Addr
		if announce == "127.0.0.1:0" {
			announce = "node:" + cfg.Durability.Dir
		}
		epoch, err := replica.ReadEpoch(cfg.Durability.Dir)
		if err != nil {
			die(err)
		}
		lease, err := arbiter.NewLeaseClient(arbiter.LeaseConfig{
			Addr: arb, Group: autoFailGroup, Epoch: epoch, Announce: announce,
		})
		if err != nil {
			die(err)
		}
		// Hold the lease before the logs open: the boot record's flush
		// runs through the lease gate, so a fenced child dies here with
		// a fencing error from server.New below.
		lease.WaitHeld(10 * time.Second)
		cfg.Lease = lease
	}
	srv, err := server.New(cfg)
	if err != nil {
		die(err)
	}
	if err := srv.Start(); err != nil {
		die(err)
	}
	// Publish the address atomically: the parent polls for the file and
	// must never read a half-written one.
	addrFile := os.Getenv(envKillAddrFile)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(srv.Addr()), 0o644); err != nil {
		die(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		die(err)
	}
	// Serve until the parent's SIGTERM (phase 2 ends gracefully; phase
	// 1 ends with the SIGKILL this scenario exists for).
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM)
	<-ch
	if err := srv.Shutdown(context.Background()); err != nil {
		die(err)
	}
	os.Exit(0)
}

// spawnServerChild starts one server incarnation over dataDir and
// waits for it to publish its address — which a durable server only
// does after recovery completed, so a successful spawn is itself
// evidence that recovery runs before the listener accepts.
func spawnServerChild(seed int64, dataDir, addrFile string, shards int, extraEnv ...string) (*exec.Cmd, string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, "", err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		envKillChild+"=1",
		envKillDataDir+"="+dataDir,
		envKillAddrFile+"="+addrFile,
		envKillSeed+"="+strconv.FormatInt(seed, 10),
		envKillShards+"="+strconv.Itoa(shards))
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(b) > 0 {
			return cmd, string(b), nil
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, "", fmt.Errorf("server child never published %s", addrFile)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runKillRestart drives the kill-and-restart scenario for one seed.
func runKillRestart(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	fail := func() Report { return report("kill-restart", seed, plan.killSummary(), v) }

	root := os.Getenv(envKillDataRoot)
	if root == "" {
		root = os.TempDir()
	}
	dataDir, err := os.MkdirTemp(root, fmt.Sprintf("tskd-kill-%d-", seed))
	if err != nil {
		v.addf("mkdir data dir: %v", err)
		return fail()
	}
	// The directory is evidence on failure (CI uploads it) and garbage
	// on success.
	defer func() {
		if len(v) == 0 {
			os.RemoveAll(dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "chaos: kill-restart seed %d failed, data dir kept at %s\n", seed, dataDir)
		}
	}()

	// Phase 1: load the first incarnation and SIGKILL it once enough
	// commits were acknowledged. Submissions whose response never
	// arrived are in doubt — exactly what phase 2 resolves.
	cmd1, addr, err := spawnServerChild(seed, dataDir, filepath.Join(dataDir, "addr-1"), 0)
	if err != nil {
		v.addf("phase 1 spawn: %v", err)
		return fail()
	}
	total := plan.KillClients * plan.KillSubs
	const (
		outUnknown = iota // no commit ack: in doubt, resubmit in phase 2
		outAcked          // commit acknowledged: must survive the kill
	)
	outcome := make([]int32, total) // index c*KillSubs+i; owner-written, read after Wait
	var ackCount atomic.Int64
	var killOnce sync.Once
	kill := func() { killOnce.Do(func() { cmd1.Process.Kill() }) }
	errs := make(chan string, plan.KillClients)
	var wg sync.WaitGroup
	for c := 0; c < plan.KillClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Sprintf("phase 1 client %d dial: %v", c, err)
				return
			}
			defer conn.Close()
			for i := 0; i < plan.KillSubs; i++ {
				req, err := client.NewRequest(0, plan.serverTxn(c, i, liveMarker(c, i)))
				if err != nil {
					errs <- fmt.Sprintf("phase 1 client %d req: %v", c, err)
					return
				}
				req.IdemKey = killKey(seed, c, i)
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				resp, err := conn.Submit(ctx, req)
				cancel()
				// Errors are the kill landing mid-flight; rejections and
				// cancellations never executed. All stay in doubt.
				if err == nil && resp.Status == client.StatusCommit {
					outcome[c*plan.KillSubs+i] = outAcked
					if ackCount.Add(1) >= int64(plan.KillAfterAcks) {
						kill()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	kill() // backpressure kept acks under the threshold: kill at end of load
	cmd1.Wait()
	for msg := range errs {
		v.addf("%s", msg)
	}
	if len(v) > 0 {
		return fail()
	}

	// Phase 2: restart over the same directory; recovery must complete
	// before the address is published. Resubmit every in-doubt
	// submission under its original key (committed-but-unacked ones are
	// answered as duplicates, never-executed ones run now), and
	// redeliver a seed-chosen sample of the acknowledged keys, which
	// the recovered dedup window must answer without re-executing.
	cmd2, addr2, err := spawnServerChild(seed, dataDir, filepath.Join(dataDir, "addr-2"), 0)
	if err != nil {
		v.addf("phase 2 spawn: %v", err)
		return fail()
	}
	rc := client.DialReliable(addr2, client.RetryPolicy{Seed: seed ^ 0x6B696C6C})
	for c := 0; c < plan.KillClients; c++ {
		for i := 0; i < plan.KillSubs; i++ {
			idx := c*plan.KillSubs + i
			redeliver := outcome[idx] == outAcked && plan.redeliverAcked(c, i)
			if outcome[idx] == outAcked && !redeliver {
				continue
			}
			req, err := client.NewRequest(0, plan.serverTxn(c, i, liveMarker(c, i)))
			if err != nil {
				v.addf("phase 2 req (%d,%d): %v", c, i, err)
				continue
			}
			req.IdemKey = killKey(seed, c, i)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			resp, err := rc.Submit(ctx, req)
			cancel()
			if err != nil {
				v.addf("phase 2 submit (%d,%d): %v", c, i, err)
				continue
			}
			if resp.Status != client.StatusCommit {
				v.addf("phase 2 submit (%d,%d): status %s, want commit", c, i, resp.Status)
				continue
			}
			if redeliver && !resp.Duplicate {
				v.addf("redelivered acked key (%d,%d) re-executed instead of deduplicated", c, i)
			}
			outcome[idx] = outAcked
		}
	}
	rc.Close()
	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()

	// Verdict: recover the directory read-only and check what the two
	// incarnations together were required to make durable.
	db, info, keys, err := server.Recover(dataDir, killBaseDB().BuildDB())
	if err != nil {
		v.addf("recover: %v", err)
		return fail()
	}
	keySet := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		keySet[k] = true
	}
	tbl := db.Table(workload.YCSBTable)
	submitted := make(map[uint64]bool, total)
	for c := 0; c < plan.KillClients; c++ {
		for i := 0; i < plan.KillSubs; i++ {
			marker := liveMarker(c, i)
			submitted[marker] = true
			if outcome[c*plan.KillSubs+i] != outAcked {
				continue // already reported as a phase-2 violation
			}
			row := tbl.Get(marker)
			if row == nil {
				v.addf("lost acked commit: marker (%d,%d) missing after recovery", c, i)
				continue
			}
			if n := storage.VerNumber(row.Ver.Load()); n != 1 {
				v.addf("marker (%d,%d) at version %d, want 1 (double apply)", c, i, n)
			}
			if !keySet[killKey(seed, c, i)] {
				v.addf("committed key (%d,%d) missing from recovered dedup window", c, i)
			}
		}
	}
	// No phantom markers: every marker row in the store was submitted.
	tbl.Scan(liveMarkerBase, ^uint64(0), func(r *storage.Row) bool {
		if !submitted[r.Key.Row()] {
			v.addf("phantom marker %d installed by no submission", r.Key.Row())
		}
		return true
	})
	// Recovery is idempotent: a second pass over the (unchanged)
	// directory lands on the same state.
	if _, info2, keys2, err := server.Recover(dataDir, killBaseDB().BuildDB()); err != nil {
		v.addf("second recover: %v", err)
	} else if info2 != info || len(keys2) != len(keys) {
		v.addf("recovery not idempotent: %+v/%d keys then %+v/%d keys",
			info, len(keys), info2, len(keys2))
	}
	// The surviving WAL tail must be free of duplicate version installs
	// (each version of each row installed by exactly one record).
	var events []history.Event
	if _, _, err := wal.ReplayDir(dataDir, func(lsn uint64, rec wal.Record) error {
		e := history.Event{TxnID: int(lsn)}
		for _, w := range rec.Writes {
			e.Writes = append(e.Writes, history.Obs{Key: txn.Key(w.Key), Ver: w.Ver})
		}
		events = append(events, e)
		return nil
	}); err != nil {
		v.addf("wal replay: %v", err)
	} else if err := history.CheckEvents(events); err != nil {
		v.addf("wal tail: %v", err)
	}
	return fail()
}
