package chaos

import "time"

// The chaos harness must produce the same fault schedule for the same
// seed no matter how the host interleaves worker goroutines. A shared
// sequential PRNG cannot do that — the order in which concurrent
// workers draw from it is racy — so every injection decision is instead
// a pure function of (seed, fault point, site keys): an FNV-style fold
// over the point name mixed with the keys, finished with the splitmix64
// avalanche. Two runs with the same seed evaluate the same function at
// every site, which is exactly the "replayable from -seed alone"
// contract; which sites get *visited* (e.g. how many retries a
// transaction needs) still depends on real concurrency, but the
// schedule — the site→decision mapping — is bit-identical.

// site hashes (seed, point, keys...) into a uniform 64-bit value.
func site(seed int64, point string, keys ...int64) uint64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019
	for i := 0; i < len(point); i++ {
		h = (h ^ uint64(point[i])) * 0x100000001B3
	}
	for _, k := range keys {
		h ^= uint64(k) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// frac maps a hash to [0, 1).
func frac(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hit reports whether the site fires at the given rate.
func hit(h uint64, rate float64) bool { return rate > 0 && frac(h) < rate }

// stretch maps a hash to a duration in (0, max], reusing high bits so
// hit and stretch on the same site stay independent enough.
func stretch(h uint64, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return 1 + time.Duration(float64(max-1)*frac(h*0x9E3779B97F4A7C15+1))
}
