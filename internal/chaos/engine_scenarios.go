package chaos

import (
	"time"

	"tskd/internal/cc"
	"tskd/internal/engine"
	"tskd/internal/history"
	"tskd/internal/sched"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

// engineWorkload is the contended YCSB bundle the engine scenarios
// share: hot enough (θ=0.9 over 2k records) that injected stalls and
// latency spikes actually shift conflict windows, small enough that a
// 20-seed matrix stays fast.
func engineWorkload(seed int64) (workload.YCSB, txn.Workload) {
	cfg := workload.YCSB{
		Records: 2000, Theta: 0.9, Txns: 300, OpsPerTxn: 8,
		ReadRatio: 0.5, RMW: true, Seed: seed,
	}
	return cfg, cfg.Generate()
}

// runEngineFaults executes a contended bundle under worker stalls,
// per-access latency spikes and clock skew, then checks that every
// transaction committed exactly once and the whole execution is
// conflict-serializable.
func runEngineFaults(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	cfg, w := engineWorkload(seed)
	db := cfg.BuildDB()
	rec := history.NewRecorder()
	proto, err := cc.New(plan.Protocol)
	if err != nil {
		v.addf("protocol: %v", err)
		return report("engine-faults", seed, plan.engineSummary(), v)
	}
	var dc *engine.DeferConfig
	if plan.Defer {
		dc = engine.DefaultDefer()
	}
	m := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(w, plan.Workers)}, engine.Config{
		Workers: plan.Workers, Protocol: proto, DB: db, Defer: dc,
		Recorder: rec, Hooks: plan.EngineHooks(), Seed: seed,
	})
	if m.Committed != uint64(len(w)) {
		v.addf("committed %d of %d", m.Committed, len(w))
	}
	checkExactlyOnce(&v, rec.Events(), len(w))
	if err := rec.Check(); err != nil {
		v.addf("serializability: %v", err)
	}
	return report("engine-faults", seed, plan.engineSummary(), v)
}

// depGap spaces the chain dependencies farther apart than the largest
// worker count, so round-robin queue positions stay topologically
// consistent (a dependency always sits at a strictly earlier queue
// position, making the execution-time waits cycle-free by
// construction — which is exactly what the watchdog then verifies
// under injected dep-wait stalls).
const depGap = 16

// runEngineDepsFaults executes a dependency-constrained bundle under
// the same fault schedule plus dep-wait stalls, with a watchdog: if
// injected stalls could turn dependency waits into a deadlock, the run
// never finishes and the scenario fails loudly instead of hanging CI.
func runEngineDepsFaults(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	cfg, w := engineWorkload(seed)
	db := cfg.BuildDB()
	rec := history.NewRecorder()
	proto, err := cc.New(plan.Protocol)
	if err != nil {
		v.addf("protocol: %v", err)
		return report("engine-deps-faults", seed, plan.engineSummary(), v)
	}
	deps := sched.NewDeps()
	for i := depGap; i < len(w); i += 5 {
		deps.Add(i-depGap, i)
	}

	type outcome struct{ m engine.Metrics }
	done := make(chan outcome, 1)
	go func() {
		m := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(w, plan.Workers)}, engine.Config{
			Workers: plan.Workers, Protocol: proto, DB: db, Deps: deps,
			Recorder: rec, Hooks: plan.EngineHooks(), Seed: seed,
		})
		done <- outcome{m}
	}()
	select {
	case o := <-done:
		if o.m.Committed != uint64(len(w)) {
			v.addf("committed %d of %d", o.m.Committed, len(w))
		}
		checkExactlyOnce(&v, rec.Events(), len(w))
		if err := rec.Check(); err != nil {
			v.addf("serializability: %v", err)
		}
	case <-time.After(60 * time.Second):
		v.addf("deadlock: dependency-constrained run did not finish within 60s")
	}
	return report("engine-deps-faults", seed, plan.engineSummary(), v)
}
