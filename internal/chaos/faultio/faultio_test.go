package faultio

import (
	"bytes"
	"testing"
)

func TestPassThrough(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAfter: -1}
	for i := 0; i < 10; i++ {
		if n, err := w.Write([]byte("abcd")); n != 4 || err != nil {
			t.Fatalf("write = %d, %v", n, err)
		}
	}
	if buf.Len() != 40 || w.Written() != 40 || w.Failed() {
		t.Fatalf("len=%d written=%d failed=%v", buf.Len(), w.Written(), w.Failed())
	}
}

func TestTornWriteEmitsPrefixThenSticks(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAfter: 10, Torn: true}
	if n, err := w.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	// Crosses the fail point: 2 of 8 bytes land, then the injected error.
	n, err := w.Write(make([]byte, 8))
	if n != 2 || err != ErrInjected {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("buffer holds %d bytes, want the 10-byte torn prefix", buf.Len())
	}
	// Sticky: nothing more gets through.
	if n, err := w.Write([]byte("x")); n != 0 || err != ErrInjected {
		t.Fatalf("post-fault write = %d, %v", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("post-fault bytes leaked: %d", buf.Len())
	}
}

func TestCleanErrorEmitsNothing(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAfter: 4, Torn: false}
	if _, err := w.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("efgh"))
	if n != 0 || err != ErrInjected {
		t.Fatalf("failing write = %d, %v", n, err)
	}
	if buf.String() != "abcd" {
		t.Fatalf("buffer = %q", buf.String())
	}
}

func TestExactBoundaryDoesNotFire(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAfter: 8, Torn: true}
	if _, err := w.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write landing exactly on the boundary must succeed: %v", err)
	}
	if w.Failed() {
		t.Fatal("fault fired without crossing the boundary")
	}
	if n, err := w.Write([]byte("x")); n != 0 || err != ErrInjected {
		t.Fatalf("next write = %d, %v", n, err)
	}
}
