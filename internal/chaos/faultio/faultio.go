// Package faultio provides fault-injectable io wrappers for chaos
// testing the durability path. It is a leaf package (no tskd imports)
// so both internal/chaos and the wal tests can use it without cycles.
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the error returned by a Writer once its planned fault
// has fired.
var ErrInjected = errors.New("faultio: injected write error")

// Writer wraps an io.Writer with a deterministic, sticky write fault:
// after FailAfter bytes have been accepted, the next write fails. In
// torn mode the failing write still emits its prefix up to the fail
// point — a torn write, the on-disk shape of a crash mid-flush. In
// clean mode the failing write emits nothing. Either way the fault is
// sticky: every subsequent write fails too, modelling a log device
// that died (a WAL must not keep appending past a lost flush, because
// recovery stops at the first hole).
//
// Writer is not safe for concurrent use; wal.Log serializes writes
// under its own mutex, which is the intended deployment.
type Writer struct {
	// W is the underlying writer.
	W io.Writer
	// FailAfter is the number of bytes accepted before the fault
	// fires; negative disables the fault entirely.
	FailAfter int64
	// Torn makes the failing write emit its prefix up to FailAfter
	// (torn write); false suppresses the failing write entirely
	// (clean write error).
	Torn bool

	written int64
	failed  bool
}

// Written returns the number of bytes passed through to W.
func (w *Writer) Written() int64 { return w.written }

// Failed reports whether the fault has fired.
func (w *Writer) Failed() bool { return w.failed }

// Write implements io.Writer with the planned fault.
func (w *Writer) Write(p []byte) (int, error) {
	if w.failed {
		return 0, ErrInjected
	}
	if w.FailAfter < 0 || w.written+int64(len(p)) <= w.FailAfter {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	w.failed = true
	if !w.Torn {
		return 0, ErrInjected
	}
	keep := w.FailAfter - w.written
	if keep < 0 {
		keep = 0
	}
	n, err := w.W.Write(p[:keep])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}
