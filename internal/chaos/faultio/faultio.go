// Package faultio provides fault-injectable io wrappers for chaos
// testing the durability path. It is a leaf package (no tskd imports)
// so both internal/chaos and the wal tests can use it without cycles.
package faultio

import (
	"errors"
	"io"
	"sync"
	"time"
)

// ErrInjected is the error returned by a Writer once its planned fault
// has fired.
var ErrInjected = errors.New("faultio: injected write error")

// Writer wraps an io.Writer with a deterministic, sticky write fault:
// after FailAfter bytes have been accepted, the next write fails. In
// torn mode the failing write still emits its prefix up to the fail
// point — a torn write, the on-disk shape of a crash mid-flush. In
// clean mode the failing write emits nothing. Either way the fault is
// sticky: every subsequent write fails too, modelling a log device
// that died (a WAL must not keep appending past a lost flush, because
// recovery stops at the first hole).
//
// Writer is not safe for concurrent use; wal.Log serializes writes
// under its own mutex, which is the intended deployment.
type Writer struct {
	// W is the underlying writer.
	W io.Writer
	// FailAfter is the number of bytes accepted before the fault
	// fires; negative disables the fault entirely.
	FailAfter int64
	// Torn makes the failing write emit its prefix up to FailAfter
	// (torn write); false suppresses the failing write entirely
	// (clean write error).
	Torn bool

	written int64
	failed  bool
}

// Written returns the number of bytes passed through to W.
func (w *Writer) Written() int64 { return w.written }

// Failed reports whether the fault has fired.
func (w *Writer) Failed() bool { return w.failed }

// Write implements io.Writer with the planned fault.
func (w *Writer) Write(p []byte) (int, error) {
	if w.failed {
		return 0, ErrInjected
	}
	if w.FailAfter < 0 || w.written+int64(len(p)) <= w.FailAfter {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	w.failed = true
	if !w.Torn {
		return 0, ErrInjected
	}
	keep := w.FailAfter - w.written
	if keep < 0 {
		keep = 0
	}
	n, err := w.W.Write(p[:keep])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}

// SlowSyncer wraps a stable-storage barrier with a controllable stall:
// every Sync sleeps for the configured delay before (and in addition
// to) the underlying barrier. It models a log device whose fsync
// latency degrades — the condition a WAL-stall circuit breaker exists
// to detect. Arm and disarm it mid-run with SetDelay; SetInner lets
// the WAL's segment rotation hand it each new active file. Safe for
// concurrent use (chaos scenarios toggle the delay while flushes run).
type SlowSyncer struct {
	mu    sync.Mutex
	inner interface{ Sync() error } // nil: stall only, no real barrier
	delay time.Duration
	syncs int
}

// SetInner replaces the wrapped barrier (nil = none).
func (s *SlowSyncer) SetInner(inner interface{ Sync() error }) {
	s.mu.Lock()
	s.inner = inner
	s.mu.Unlock()
}

// SetDelay arms (d > 0) or disarms (d = 0) the stall for subsequent
// Sync calls.
func (s *SlowSyncer) SetDelay(d time.Duration) {
	s.mu.Lock()
	s.delay = d
	s.mu.Unlock()
}

// Syncs returns how many Sync calls have completed.
func (s *SlowSyncer) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// Sync stalls for the armed delay, then syncs the wrapped barrier.
func (s *SlowSyncer) Sync() error {
	s.mu.Lock()
	d := s.delay
	inner := s.inner
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	var err error
	if inner != nil {
		err = inner.Sync()
	}
	s.mu.Lock()
	s.syncs++
	s.mu.Unlock()
	return err
}
