package chaos

import (
	"reflect"
	"testing"

	"tskd/internal/history"
	"tskd/internal/txn"
)

// TestScenariosPassAndReplay runs every registered scenario twice on a
// couple of seeds: the verdicts must pass (no real bugs under fault
// injection) and must be deeply equal across the two runs (the
// determinism contract the CLI's -check-repro enforces over 20 seeds in
// CI).
func TestScenariosPassAndReplay(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, seed := range []int64{3, 11} {
			r1 := sc.Run(seed)
			r2 := sc.Run(seed)
			if !r1.Pass {
				t.Errorf("%s seed %d: %v", sc.Name, seed, r1.Violations)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("%s seed %d: verdict not reproducible:\n  %+v\n  %+v", sc.Name, seed, r1, r2)
			}
		}
	}
}

// TestPlanIsPureFunctionOfSeed pins the schedule-derivation contract.
func TestPlanIsPureFunctionOfSeed(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if a, b := NewPlan(seed), NewPlan(seed); a != b {
			t.Fatalf("seed %d: NewPlan not deterministic: %+v vs %+v", seed, a, b)
		}
	}
	if NewPlan(1) == NewPlan(2) {
		t.Error("distinct seeds produced identical plans")
	}
}

// TestSiteHashStability pins site-hash behaviour: stable across calls,
// sensitive to every input, and independent of evaluation order (there
// is no hidden stream state).
func TestSiteHashStability(t *testing.T) {
	a := site(1, PointWorkerStall, 7, 3)
	for i := 0; i < 3; i++ {
		if site(1, PointWorkerStall, 7, 3) != a {
			t.Fatal("site hash is not a pure function")
		}
	}
	if site(2, PointWorkerStall, 7, 3) == a {
		t.Error("seed does not perturb the hash")
	}
	if site(1, PointAccessLatency, 7, 3) == a {
		t.Error("fault point does not perturb the hash")
	}
	if site(1, PointWorkerStall, 7, 4) == a {
		t.Error("site key does not perturb the hash")
	}
	// Interleaving independence: evaluating other sites in between must
	// not change this site's decision.
	_ = site(1, PointWorkerStall, 99, 1)
	if site(1, PointWorkerStall, 7, 3) != a {
		t.Fatal("site hash depends on evaluation history")
	}
}

// TestCheckExactlyOnce exercises the lost/duplicate-commit detector on
// hand-built histories.
func TestCheckExactlyOnce(t *testing.T) {
	ev := func(id int) history.Event { return history.Event{TxnID: id} }
	var ok violations
	checkExactlyOnce(&ok, []history.Event{ev(0), ev(2), ev(1)}, 3)
	if len(ok) != 0 {
		t.Errorf("clean history flagged: %v", ok)
	}
	var lost violations
	checkExactlyOnce(&lost, []history.Event{ev(0), ev(2)}, 3)
	if len(lost) == 0 {
		t.Error("lost commit not flagged")
	}
	var dup violations
	checkExactlyOnce(&dup, []history.Event{ev(0), ev(1), ev(1), ev(2)}, 3)
	if len(dup) == 0 {
		t.Error("double commit not flagged")
	}
	var unknown violations
	checkExactlyOnce(&unknown, []history.Event{ev(0), ev(1), ev(7)}, 2)
	if len(unknown) == 0 {
		t.Error("out-of-range commit not flagged")
	}
}

// TestCheckerCatchesLostUpdate feeds the serializability checker the
// canonical lost-update history (both transactions read version 1,
// both install over it) and requires a violation — the same anomaly
// class the chaosbug planted protocol produces at scale.
func TestCheckerCatchesLostUpdate(t *testing.T) {
	k := txn.MakeKey(1, 42)
	events := []history.Event{
		{TxnID: 0, Reads: []history.Obs{{Key: k, Ver: 1}}, Writes: []history.Obs{{Key: k, Ver: 2}}},
		{TxnID: 1, Reads: []history.Obs{{Key: k, Ver: 1}}, Writes: []history.Obs{{Key: k, Ver: 3}}},
	}
	if err := history.CheckEvents(events); err == nil {
		t.Fatal("lost-update history passed the checker")
	}
}

// TestFindUnknown pins Find's miss behaviour for the CLI.
func TestFindUnknown(t *testing.T) {
	if Find("no-such-scenario") != nil {
		t.Error("Find invented a scenario")
	}
	if s := Find("wal-faults"); s == nil || s.Name != "wal-faults" {
		t.Error("Find missed a registered scenario")
	}
}
