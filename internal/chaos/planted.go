//go:build chaosbug

// Planted isolation bug: a harness that cannot fail proves nothing, so
// building with -tags chaosbug registers a scenario that MUST fail.
// The bug is the classic "validation skipped under load" class: a
// protocol that behaves like SILO except that every other commit goes
// through the unvalidated install path (cc.None.Commit — staged writes
// installed without read validation). Concurrent read-modify-writes on
// hot rows then interleave as lost updates: two transactions read the
// same version and both commit, which the serializability checker
// surfaces as an rw/ww cycle. TestPlantedBug asserts the checker
// catches it; CI runs that test on every push.

package chaos

import (
	"sync/atomic"

	"tskd/internal/cc"
	"tskd/internal/engine"
	"tskd/internal/history"
	"tskd/internal/storage"
	"tskd/internal/workload"
)

// brokenSilo is SILO with read validation skipped on every other
// commit.
type brokenSilo struct {
	silo *cc.Silo
	none *cc.None
	n    atomic.Uint64
}

func (p *brokenSilo) Name() string    { return "BROKEN_SILO" }
func (p *brokenSilo) Begin(c *cc.Ctx) { p.silo.Begin(c) }
func (p *brokenSilo) Abort(c *cc.Ctx) { p.silo.Abort(c) }
func (p *brokenSilo) Read(c *cc.Ctx, row *storage.Row) (*storage.Tuple, error) {
	return p.silo.Read(c, row)
}
func (p *brokenSilo) Write(c *cc.Ctx, row *storage.Row, upd cc.UpdateFunc) error {
	return p.silo.Write(c, row, upd)
}
func (p *brokenSilo) Commit(c *cc.Ctx) error {
	if p.n.Add(1)%2 == 0 {
		return p.none.Commit(c) // installs staged writes, validates nothing
	}
	return p.silo.Commit(c)
}

// runPlantedBug executes an extremely hot read-modify-write bundle
// under the broken protocol. The expected verdict is FAIL with a
// serialization cycle; a PASS here means the checker has gone blind.
func runPlantedBug(seed int64) Report {
	var v violations
	cfg := workload.YCSB{
		Records: 100, Theta: 0.99, Txns: 400, OpsPerTxn: 8,
		ReadRatio: 0.5, RMW: true, Seed: seed,
	}
	w := cfg.Generate()
	db := cfg.BuildDB()
	rec := history.NewRecorder()
	proto := &brokenSilo{silo: cc.NewSilo(), none: cc.NewNone()}
	m := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(w, 8)}, engine.Config{
		Workers: 8, Protocol: proto, DB: db, Recorder: rec, Seed: seed,
	})
	if m.Committed != uint64(len(w)) {
		v.addf("committed %d of %d", m.Committed, len(w))
	}
	checkExactlyOnce(&v, rec.Events(), len(w))
	if err := rec.Check(); err != nil {
		v.addf("serializability: %v", err)
	}
	return report("planted-bug", seed, "proto=BROKEN_SILO workers=8 (expected verdict: FAIL)", v)
}

func init() {
	plantedScenario = &Scenario{
		Name: "planted-bug",
		Doc:  "EXPECTED FAIL: SILO with validation skipped on half its commits; proves the checker can catch real bugs",
		Run:  runPlantedBug,
	}
}
