package chaos

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tskd/internal/client"
	"tskd/internal/history"
	"tskd/internal/replica"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// replica_scenario.go: the failover scenario. A durable multi-shard
// primary (a server child, as in shard-crash) ships every WAL flush —
// shard redo, 2PC prepares, coordinator decisions — synchronously to a
// backup receiver running in the parent, and is SIGKILLed mid-load at
// a seeded acknowledged-commit count. The primary's directory is then
// abandoned: the backup directory is promoted (fencing epoch bump) and
// a second incarnation recovers and serves over it. The verdict audits
// the promoted timeline:
//
//   - no acknowledged commit is lost — in sync mode the ack waited for
//     the backup, so every acked marker must survive on the backup's
//     recovered shards, never the primary's disk being needed at all;
//   - exactly-once: markers at version 1, redelivered acked keys are
//     answered from the shipped dedup windows as duplicates;
//   - fencing: promotion leaves the directory at epoch 1, a shipper
//     presenting the deposed epoch is refused at the handshake, and
//     the shipped coordinator log's boot records carry non-decreasing
//     epochs ending at the promoted one;
//   - no dangling in-doubt, no phantom or misrouted markers, and the
//     surviving WAL tails install each version exactly once
//     (serializability of the shipped history);
//   - recovery over the shipped directory is idempotent.

// replKey is the stable idempotency key of submission (c, i) — its own
// site, disjoint from the other scenarios' key spaces.
func replKey(seed int64, c, i int) uint64 {
	return site(seed, "replica/kill", int64(c), int64(i)) | 1
}

// replTxn builds replica-failover submission (c, i): the shard-crash
// shape (two contended updates + unique marker insert) over ReplShards
// shards, with the cross-shard decision drawn from this scenario's own
// site.
func (p Plan) replTxn(c, i int, marker uint64) *txn.Transaction {
	r := shard.Router{Shards: p.ReplShards}
	mk := txn.MakeKey(workload.YCSBTable, marker)
	home := r.Home(mk)
	cross := p.replCross(c, i)
	t := txn.New(0)
	for j := 0; j < 2; j++ {
		row := site(p.Seed, "replica/key", int64(c), int64(i), int64(j)) % shardCrashRows
		want := home
		if cross && j == 1 {
			want = (home + 1) % p.ReplShards
		}
		t.U(probeHomeRow(r, row, want), 1)
	}
	return t.I(mk)
}

// runReplicaFailover drives the replica-failover scenario for one seed.
func runReplicaFailover(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	fail := func() Report { return report("replica-failover", seed, plan.replicaSummary(), v) }

	root := os.Getenv(envKillDataRoot)
	if root == "" {
		root = os.TempDir()
	}
	dataDir, err := os.MkdirTemp(root, fmt.Sprintf("tskd-replica-%d-", seed))
	if err != nil {
		v.addf("mkdir data dir: %v", err)
		return fail()
	}
	defer func() {
		if len(v) == 0 {
			os.RemoveAll(dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "chaos: replica-failover seed %d failed, data dir kept at %s\n", seed, dataDir)
		}
	}()
	primaryDir := filepath.Join(dataDir, "primary")
	backupDir := filepath.Join(dataDir, "backup")
	for _, d := range []string{primaryDir, backupDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			v.addf("mkdir %s: %v", d, err)
			return fail()
		}
	}

	// The backup receiver runs in this process with real fsync — its
	// disk is what the sync-mode acks vouched for.
	recv, err := replica.NewServer(replica.ServerConfig{Dir: backupDir})
	if err != nil {
		v.addf("backup receiver: %v", err)
		return fail()
	}
	if err := recv.Start("127.0.0.1:0"); err != nil {
		v.addf("backup receiver start: %v", err)
		return fail()
	}
	defer recv.Close()

	// Phase 1: load the replicating primary, SIGKILL once enough commits
	// were acknowledged — the kill races 2PC rounds, group flushes and
	// the replication stream itself.
	cmd1, addr, err := spawnServerChild(seed, primaryDir, filepath.Join(dataDir, "addr-1"),
		plan.ReplShards, envReplicaAddr+"="+recv.Addr())
	if err != nil {
		v.addf("phase 1 spawn: %v", err)
		return fail()
	}
	total := plan.ReplClients * plan.ReplSubs
	const (
		outUnknown = iota
		outAcked
	)
	outcome := make([]int32, total)
	var ackCount atomic.Int64
	var killOnce sync.Once
	kill := func() { killOnce.Do(func() { cmd1.Process.Kill() }) }
	errs := make(chan string, plan.ReplClients)
	var wg sync.WaitGroup
	for c := 0; c < plan.ReplClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Sprintf("phase 1 client %d dial: %v", c, err)
				return
			}
			defer conn.Close()
			for i := 0; i < plan.ReplSubs; i++ {
				req, err := client.NewRequest(0, plan.replTxn(c, i, liveMarker(c, i)))
				if err != nil {
					errs <- fmt.Sprintf("phase 1 client %d req: %v", c, err)
					return
				}
				req.IdemKey = replKey(seed, c, i)
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				resp, err := conn.Submit(ctx, req)
				cancel()
				if err == nil && resp.Status == client.StatusCommit {
					outcome[c*plan.ReplSubs+i] = outAcked
					if ackCount.Add(1) >= int64(plan.ReplAfterAcks) {
						kill()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	kill()
	cmd1.Wait()
	for msg := range errs {
		v.addf("%s", msg)
	}
	if len(v) > 0 {
		return fail()
	}

	// Drain the replication stream: the primary's death closes the
	// connection once every in-flight frame was consumed; everything
	// the receiver read is fsynced before it acks, so after the last
	// connection goes away the backup directory is quiescent.
	drainDeadline := time.Now().Add(30 * time.Second)
	for recv.Stats().Conns > 0 {
		if time.Now().After(drainDeadline) {
			v.addf("replication stream never drained after the kill")
			return fail()
		}
		time.Sleep(5 * time.Millisecond)
	}
	recv.Close()

	// Failover: promote the shipped directory. The epoch bump is the
	// fence — a returning primary at the old epoch must be refused.
	epoch, err := replica.Promote(backupDir)
	if err != nil {
		v.addf("promote: %v", err)
		return fail()
	}
	if epoch != 1 {
		v.addf("promoted epoch %d, want 1", epoch)
	}
	fence, err := replica.NewServer(replica.ServerConfig{Dir: backupDir})
	if err != nil {
		v.addf("post-promotion receiver: %v", err)
		return fail()
	}
	if err := fence.Start("127.0.0.1:0"); err != nil {
		v.addf("post-promotion receiver start: %v", err)
		return fail()
	}
	if _, err := replica.NewShipper(replica.ShipperConfig{Addr: fence.Addr(), Epoch: 0}); !errors.Is(err, replica.ErrFenced) {
		v.addf("deposed primary (epoch 0) not fenced: %v", err)
	}
	if s, err := replica.NewShipper(replica.ShipperConfig{Addr: fence.Addr(), Epoch: epoch}); err != nil {
		v.addf("promoted epoch %d refused: %v", epoch, err)
	} else {
		s.Close()
	}
	fence.Close()

	// Phase 2: a fresh incarnation over the promoted directory. Its
	// recovery resolves every in-doubt prepare from the shipped
	// coordinator log before the address is published. Resubmit every
	// in-doubt submission and redeliver a seed-chosen sample of the
	// acknowledged ones.
	cmd2, addr2, err := spawnServerChild(seed, backupDir, filepath.Join(dataDir, "addr-2"), plan.ReplShards)
	if err != nil {
		v.addf("phase 2 spawn: %v", err)
		return fail()
	}
	rc := client.DialReliable(addr2, client.RetryPolicy{Seed: seed ^ 0x7265706C})
	for c := 0; c < plan.ReplClients; c++ {
		for i := 0; i < plan.ReplSubs; i++ {
			idx := c*plan.ReplSubs + i
			redeliver := outcome[idx] == outAcked && plan.redeliverReplAcked(c, i)
			if outcome[idx] == outAcked && !redeliver {
				continue
			}
			req, err := client.NewRequest(0, plan.replTxn(c, i, liveMarker(c, i)))
			if err != nil {
				v.addf("phase 2 req (%d,%d): %v", c, i, err)
				continue
			}
			req.IdemKey = replKey(seed, c, i)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			resp, err := rc.Submit(ctx, req)
			cancel()
			if err != nil {
				v.addf("phase 2 submit (%d,%d): %v", c, i, err)
				continue
			}
			if resp.Status != client.StatusCommit {
				v.addf("phase 2 submit (%d,%d): status %s, want commit", c, i, resp.Status)
				continue
			}
			if redeliver && !resp.Duplicate {
				v.addf("redelivered acked key (%d,%d) re-executed instead of deduplicated", c, i)
			}
			outcome[idx] = outAcked
		}
	}
	rc.Close()
	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()

	// Verdict: recover the promoted directory read-only and audit what
	// the pair together had to make durable. The primary's directory is
	// deliberately never consulted — the shipped copy must suffice.
	st, err := shard.Recover(backupDir, plan.ReplShards, shardBase)
	if err != nil {
		v.addf("recover: %v", err)
		return fail()
	}
	r := shard.Router{Shards: plan.ReplShards}
	localKeys := make([]map[uint64]bool, plan.ReplShards)
	for s := range localKeys {
		localKeys[s] = make(map[uint64]bool, len(st.ShardKeys[s]))
		for _, k := range st.ShardKeys[s] {
			localKeys[s][k] = true
		}
	}
	crossKeys := make(map[uint64]bool, len(st.CrossKeys))
	for _, k := range st.CrossKeys {
		crossKeys[k] = true
	}
	submitted := make(map[uint64]bool, total)
	var parts []int
	for c := 0; c < plan.ReplClients; c++ {
		for i := 0; i < plan.ReplSubs; i++ {
			marker := liveMarker(c, i)
			submitted[marker] = true
			if outcome[c*plan.ReplSubs+i] != outAcked {
				continue // already reported as a phase-2 violation
			}
			t := plan.replTxn(c, i, marker)
			parts = r.Participants(t, parts[:0])
			home := r.Home(txn.MakeKey(workload.YCSBTable, marker))
			row := st.DBs[home].Table(workload.YCSBTable).Get(marker)
			if row == nil {
				v.addf("lost acked commit: marker (%d,%d) missing from shipped shard %d", c, i, home)
				continue
			}
			if n := storage.VerNumber(row.Ver.Load()); n != 1 {
				v.addf("marker (%d,%d) at version %d, want 1 (double apply)", c, i, n)
			}
			key := replKey(seed, c, i)
			if len(parts) == 1 {
				if !localKeys[parts[0]][key] {
					v.addf("acked single-shard key (%d,%d) missing from shipped shard %d dedup window", c, i, parts[0])
				}
			} else if !crossKeys[key] {
				v.addf("acked cross-shard key (%d,%d) missing from shipped coordinator dedup window", c, i)
			}
		}
	}
	// No phantom or misrouted markers on the promoted timeline.
	for s := 0; s < plan.ReplShards; s++ {
		st.DBs[s].Table(workload.YCSBTable).Scan(liveMarkerBase, ^uint64(0), func(row *storage.Row) bool {
			if !submitted[row.Key.Row()] {
				v.addf("phantom marker %d on shard %d installed by no submission", row.Key.Row(), s)
			} else if r.Home(row.Key) != s {
				v.addf("marker %d misrouted: on shard %d, owned by %d", row.Key.Row(), s, r.Home(row.Key))
			}
			return true
		})
	}
	// No dangling in-doubt on the shipped tails.
	for _, sh := range st.Info.Shards {
		if sh.Prepares != sh.ResolvedCommitted+sh.ResolvedAborted {
			v.addf("shard %d: %d prepares, only %d committed + %d aborted resolved",
				sh.Shard, sh.Prepares, sh.ResolvedCommitted, sh.ResolvedAborted)
		}
	}
	// Fencing evidence in the log itself: the directory sits at the
	// promoted epoch, and the shipped coordinator log's boot records
	// carry non-decreasing epochs ending there — exactly one boot per
	// incarnation (the killed primary, then the promoted one).
	if e, err := replica.ReadEpoch(backupDir); err != nil || e != 1 {
		v.addf("promoted directory epoch %d (%v), want 1", e, err)
	}
	var bootEpochs []uint64
	if _, _, err := wal.ReplayDir(filepath.Join(backupDir, "coord"), func(_ uint64, rec wal.Record) error {
		if rec.Kind == wal.RecordBoot {
			bootEpochs = append(bootEpochs, rec.IdemKey)
		}
		return nil
	}); err != nil {
		v.addf("coord replay: %v", err)
	} else if !reflect.DeepEqual(bootEpochs, []uint64{0, 1}) {
		v.addf("boot record epochs %v, want [0 1]", bootEpochs)
	}
	// The shipped WAL tails must install each version of each row
	// exactly once across commits and decided prepares.
	var events []history.Event
	for s := 0; s < plan.ReplShards; s++ {
		dir := filepath.Join(backupDir, fmt.Sprintf("shard-%02d", s))
		if _, _, err := wal.ReplayDir(dir, func(lsn uint64, rec wal.Record) error {
			install := rec.Kind == wal.RecordCommit
			if rec.Kind == wal.RecordPrepare {
				_, install = st.Committed[uint64(rec.TxnID)]
			}
			if !install {
				return nil
			}
			e := history.Event{TxnID: len(events)}
			for _, w := range rec.Writes {
				e.Writes = append(e.Writes, history.Obs{Key: txn.Key(w.Key), Ver: w.Ver})
			}
			events = append(events, e)
			return nil
		}); err != nil {
			v.addf("shard %d wal replay: %v", s, err)
		}
	}
	if err := history.CheckEvents(events); err != nil {
		v.addf("wal tails: %v", err)
	}
	// Recovery over the shipped directory is idempotent.
	if st2, err := shard.Recover(backupDir, plan.ReplShards, shardBase); err != nil {
		v.addf("second recover: %v", err)
	} else if !reflect.DeepEqual(st2.Info, st.Info) {
		v.addf("recovery not idempotent: %+v then %+v", st.Info, st2.Info)
	}
	return fail()
}
