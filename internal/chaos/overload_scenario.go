package chaos

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"tskd/internal/chaos/faultio"
	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/history"
	"tskd/internal/server"
	"tskd/internal/storage"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// overload_scenario.go: the overload + WAL-stall scenario. A durable
// in-process server has its fsync device stalled (faultio.SlowSyncer)
// far past the circuit breaker's trip latency while a concurrent burst
// of deadline-carrying, mixed-priority submissions lands on it. The
// server is expected to degrade, not collapse: expire what it can no
// longer serve in time, shed what it cannot afford, trip the breaker
// and fail durable admissions fast with a retry hint — and then, once
// the stall clears, recover to full service. Invariants:
//
//   - a committed response means the submission executed exactly once
//     and its effects survive recovery (no acked-then-lost writes);
//   - an expired, shed, or rejected submission never executed at all —
//     in particular, zero expired transactions reach commit;
//   - the breaker trips at least once under the stall, fast-fails with
//     a positive retry-after while open, and is closed again by the
//     end of the recovery phase;
//   - everything committed is conflict-serializable, and the server's
//     counters, the recorder, and the recovered directory agree.
const overMarkerBase = 1 << 22

// overMarker is the unique marker row of submission (phase, c, i).
func overMarker(phase, c, i int) uint64 {
	return overMarkerBase + uint64(phase)<<16 + uint64(c)<<10 + uint64(i)
}

// overBaseDB is the initial store; pure so the read-only recovery
// audit can rebuild the exact seed state.
func overBaseDB() *workload.YCSB { return &workload.YCSB{Records: 2000} }

// runOverloadWALStall drives the overload + WAL-stall scenario for one
// seed.
func runOverloadWALStall(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	fail := func() Report { return report("overload-wal-stall", seed, plan.overloadSummary(), v) }

	root := os.Getenv(envKillDataRoot)
	if root == "" {
		root = os.TempDir()
	}
	dataDir, err := os.MkdirTemp(root, fmt.Sprintf("tskd-overload-%d-", seed))
	if err != nil {
		v.addf("mkdir data dir: %v", err)
		return fail()
	}
	defer func() {
		if len(v) == 0 {
			os.RemoveAll(dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "chaos: overload-wal-stall seed %d failed, data dir kept at %s\n", seed, dataDir)
		}
	}()

	slow := &faultio.SlowSyncer{}
	rec := history.NewRecorder()
	srv, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        16,
		FlushInterval: time.Millisecond,
		QueueDepth:    256,
		DB:            overBaseDB().BuildDB(),
		Core: core.Options{
			Workers: plan.Workers, Protocol: plan.Protocol,
			Recorder: rec, Seed: seed,
		},
		Durability: &server.DurabilityOptions{
			Dir:         dataDir,
			GroupWindow: time.Millisecond,
			// The scenario's device is fully synthetic: the SlowSyncer
			// keeps no inner barrier, so flush latency is exactly the
			// injected stall. Real fsync would add machine-dependent
			// noise — a loaded disk can exceed the 10ms trip latency on
			// its own and trip the breaker during the healthy phase —
			// and buys nothing here, since no phase crashes the process.
			WrapSyncer: func(wal.Syncer) wal.Syncer { return slow },
		},
		Overload: server.OverloadOptions{
			BreakerLatency:  10 * time.Millisecond,
			BreakerCooldown: 50 * time.Millisecond,
		},
	})
	if err != nil {
		v.addf("server: %v", err)
		return fail()
	}
	if err := srv.Start(); err != nil {
		v.addf("server start: %v", err)
		return fail()
	}

	type outcome struct {
		marker uint64
		status string
		retry  int64
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
	)
	record := func(o outcome) {
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	}
	submit := func(conn *client.Conn, req client.Request) (client.Response, bool) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		resp, err := conn.Submit(ctx, req)
		if err != nil {
			v.addf("submit: %v", err)
			return resp, false
		}
		return resp, true
	}

	conn, err := client.Dial(srv.Addr())
	if err != nil {
		v.addf("dial: %v", err)
		return fail()
	}
	defer conn.Close()

	// Phase 0 — healthy device: durable commits flow, breaker closed,
	// nothing sheds or expires.
	for c := 0; c < plan.OverClients; c++ {
		for i := 0; i < 3; i++ {
			m := overMarker(0, c, i)
			req, err := client.NewRequest(0, plan.serverTxn(c, i, m))
			if err != nil {
				v.addf("phase 0 req: %v", err)
				return fail()
			}
			resp, ok := submit(conn, req)
			if !ok {
				return fail()
			}
			if resp.Status != client.StatusCommit {
				v.addf("phase 0 (%d,%d): status %s on a healthy server, want commit", c, i, resp.Status)
			}
			record(outcome{marker: m, status: resp.Status})
		}
	}

	// Phase 1 — the stall lands, and with it the burst: every fsync now
	// takes OverStall (far past the 10ms trip latency), while
	// OverClients x OverBurst deadline-carrying submissions arrive
	// concurrently. Each must terminate as a commit, an expiry, a shed,
	// or a breaker/queue rejection — never hang, never vanish.
	slow.SetDelay(plan.OverStall)
	var wg sync.WaitGroup
	errs := make(chan string, plan.OverClients)
	for c := 0; c < plan.OverClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bc, err := client.Dial(srv.Addr())
			if err != nil {
				errs <- fmt.Sprintf("phase 1 client %d dial: %v", c, err)
				return
			}
			defer bc.Close()
			for i := 0; i < plan.OverBurst; i++ {
				m := overMarker(1, c, i)
				req, err := client.NewRequest(0, plan.serverTxn(c, i, m))
				if err != nil {
					errs <- fmt.Sprintf("phase 1 client %d req: %v", c, err)
					return
				}
				req.DeadlineMS = plan.OverDeadlineMS
				if plan.lowPriority(c, i) {
					req.Priority = 1
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				resp, err := bc.Submit(ctx, req)
				cancel()
				if err != nil {
					errs <- fmt.Sprintf("phase 1 client %d submit: %v", c, err)
					return
				}
				record(outcome{marker: m, status: resp.Status, retry: resp.RetryAfterMS})
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		v.addf("%s", msg)
	}
	if len(v) > 0 {
		return fail()
	}

	// Phase 2 — still stalled: durable admissions must fail fast. Any
	// admission that does slip through (a half-open probe) commits
	// behind a slow flush and re-trips the breaker, so within a bounded
	// number of sequential submissions one must be rejected with a
	// retry-after hint.
	sawReject := false
	for i := 0; i < 100 && !sawReject; i++ {
		m := overMarker(2, 0, i)
		req, err := client.NewRequest(0, plan.serverTxn(0, i, m))
		if err != nil {
			v.addf("phase 2 req: %v", err)
			return fail()
		}
		resp, ok := submit(conn, req)
		if !ok {
			return fail()
		}
		record(outcome{marker: m, status: resp.Status, retry: resp.RetryAfterMS})
		switch resp.Status {
		case client.StatusRejected:
			sawReject = true
			if resp.RetryAfterMS < 1 {
				v.addf("open-breaker rejection carries no retry hint")
			}
		case client.StatusCommit, client.StatusShed:
		default:
			v.addf("phase 2 submission %d: unexpected status %s", i, resp.Status)
		}
	}
	if !sawReject {
		v.addf("breaker never fast-failed an admission while the device was stalled")
	}

	// Phase 3 — the stall clears. The breaker half-opens after its
	// cooldown, a probe's fast flush closes it, the shed level decays,
	// and commits flow again: every recovery submission must commit
	// within a bounded number of retries.
	slow.SetDelay(0)
	for i := 0; i < 6; i++ {
		m := overMarker(3, 0, i)
		committed := false
		for try := 0; try < 300 && !committed; try++ {
			req, err := client.NewRequest(0, plan.serverTxn(0, i, m))
			if err != nil {
				v.addf("phase 3 req: %v", err)
				return fail()
			}
			resp, ok := submit(conn, req)
			if !ok {
				return fail()
			}
			if resp.Status == client.StatusCommit {
				record(outcome{marker: m, status: resp.Status})
				committed = true
				break
			}
			backoff := time.Duration(resp.RetryAfterMS) * time.Millisecond
			if backoff < 2*time.Millisecond {
				backoff = 2 * time.Millisecond
			}
			time.Sleep(backoff)
		}
		if !committed {
			v.addf("recovery submission %d never committed after the stall cleared", i)
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		v.addf("shutdown: %v", err)
	}
	st := srv.Stats()

	// The breaker must have tripped under the stall and recovered by
	// the end: the last thing that happened to it was a fast, clean
	// probe flush.
	if st.BreakerTrips < 1 {
		v.addf("breaker never tripped under a %s fsync stall", plan.OverStall)
	}
	if len(v) == 0 && st.BreakerState != "closed" {
		v.addf("breaker %s after recovery, want closed", st.BreakerState)
	}

	// Reconcile the recorder with the client-visible outcomes: a commit
	// executed exactly once, everything else never.
	installs := make(map[uint64]int)
	for _, e := range rec.Events() {
		for _, w := range e.Writes {
			if w.Key.Table() == workload.YCSBTable && w.Key.Row() >= overMarkerBase {
				installs[w.Key.Row()]++
			}
		}
	}
	committedSet := make(map[uint64]bool)
	var expiredSeen uint64
	for _, o := range outcomes {
		n := installs[o.marker]
		switch o.status {
		case client.StatusCommit:
			committedSet[o.marker] = true
			if n != 1 {
				v.addf("exactly-once: committed marker %d installed %d times", o.marker, n)
			}
		case client.StatusExpired:
			expiredSeen++
			if n != 0 {
				v.addf("expired marker %d executed %d times — expired work reached commit", o.marker, n)
			}
		case client.StatusShed:
			if o.retry <= 0 {
				v.addf("shed without retry-after (marker %d)", o.marker)
			}
			if n != 0 {
				v.addf("shed marker %d executed %d times", o.marker, n)
			}
		case client.StatusRejected:
			if o.retry <= 0 {
				v.addf("rejection without retry-after (marker %d)", o.marker)
			}
			if n != 0 {
				v.addf("rejected marker %d executed %d times", o.marker, n)
			}
		default:
			v.addf("unexpected status %q (marker %d)", o.status, o.marker)
		}
	}

	// Counter reconciliation across the three views of the run.
	if st.ResultsStreamed != st.Admitted {
		v.addf("results %d for %d admitted", st.ResultsStreamed, st.Admitted)
	}
	if uint64(rec.Len()) != st.Committed {
		v.addf("recorder has %d commits, server counted %d", rec.Len(), st.Committed)
	}
	if st.Expired != expiredSeen {
		v.addf("server counted %d expired, clients saw %d", st.Expired, expiredSeen)
	}
	if err := rec.Check(); err != nil {
		v.addf("serializability: %v", err)
	}

	// Durability audit: recover the directory read-only. Every
	// acknowledged commit's marker must survive at version 1 (acked
	// then lost / double-applied), and no marker may exist that was not
	// acknowledged (refused work must leave no trace).
	db, _, _, err := server.Recover(dataDir, overBaseDB().BuildDB())
	if err != nil {
		v.addf("recover: %v", err)
		return fail()
	}
	tbl := db.Table(workload.YCSBTable)
	for marker := range committedSet {
		row := tbl.Get(marker)
		if row == nil {
			v.addf("lost acked commit: marker %d missing after recovery", marker)
			continue
		}
		if n := storage.VerNumber(row.Ver.Load()); n != 1 {
			v.addf("marker %d at version %d, want 1 (double apply)", marker, n)
		}
	}
	tbl.Scan(overMarkerBase, ^uint64(0), func(r *storage.Row) bool {
		if !committedSet[r.Key.Row()] {
			v.addf("phantom marker %d durable without an acknowledged commit", r.Key.Row())
		}
		return true
	})
	return fail()
}
