package chaos

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tskd/internal/client"
	"tskd/internal/history"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// shard_scenario.go: the multi-shard crash-recovery scenario. A
// durable sharded server child (same child mode as kill-restart, with
// envKillShards set) is loaded with a seed-chosen mix of single- and
// cross-shard transactions and SIGKILLed mid-load — so the kill races
// not just group commits and checkpoints but 2PC prepares, coordinator
// decision appends and asynchronous participant installs. The restart
// must resolve every in-doubt prepare from the coordinator log before
// accepting traffic, and afterwards the directory must satisfy:
//
//   - no acknowledged commit is lost, single- or cross-shard (its
//     marker row survives on its home shard at version 1);
//   - redelivering an acknowledged key is answered from the recovered
//     dedup window — the per-shard one for single-shard transactions,
//     the coordinator one for cross-shard;
//   - no dangling in-doubt: every prepare in the surviving WAL tails
//     is resolved (committed via a coordinator decision or presumed
//     aborted), never left pending;
//   - no phantom or misrouted markers: every marker row in any shard's
//     store was submitted and lives on the shard that owns its key;
//   - the surviving WAL tails install each version of each row exactly
//     once across commits and decided prepares (history.CheckEvents);
//   - recovery is idempotent.

// shardCrashRows bounds the contended update keys: small enough that
// concurrent 2PC rounds collide (exercising vote-no and parking),
// large enough that the load makes progress.
const shardCrashRows = 512

// shardCrashKey is the stable idempotency key of submission (c, i) —
// a different site than killKey so the two scenarios' key spaces never
// collide on a shared dedup window.
func shardCrashKey(seed int64, c, i int) uint64 {
	return site(seed, "shard/kill", int64(c), int64(i)) | 1
}

// shardBase builds one shard's initial replica; like killBaseDB it
// must be identical across incarnations and the audit.
func shardBase(int) *storage.DB { return killBaseDB().BuildDB() }

// probeHomeRow walks rows upward from row until one lands on shard
// want under r's hash placement.
func probeHomeRow(r shard.Router, row uint64, want int) txn.Key {
	for {
		k := txn.MakeKey(workload.YCSBTable, row%shardCrashRows)
		if r.Home(k) == want {
			return k
		}
		row++
	}
}

// shardTxn builds shard-crash submission (c, i): two contended updates
// plus the unique marker insert. Single-shard submissions confine every
// key to the marker's home shard; cross-shard ones steer the second
// update to the next shard over, forcing a 2PC round.
func (p Plan) shardTxn(c, i int, marker uint64) *txn.Transaction {
	r := shard.Router{Shards: p.ShardCount}
	mk := txn.MakeKey(workload.YCSBTable, marker)
	home := r.Home(mk)
	cross := p.crossShard(c, i)
	t := txn.New(0)
	for j := 0; j < 2; j++ {
		row := site(p.Seed, "shard/key", int64(c), int64(i), int64(j)) % shardCrashRows
		want := home
		if cross && j == 1 {
			want = (home + 1) % p.ShardCount
		}
		t.U(probeHomeRow(r, row, want), 1)
	}
	return t.I(mk)
}

// runShardCrash drives the shard-crash scenario for one seed.
func runShardCrash(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	fail := func() Report { return report("shard-crash", seed, plan.shardSummary(), v) }

	root := os.Getenv(envKillDataRoot)
	if root == "" {
		root = os.TempDir()
	}
	dataDir, err := os.MkdirTemp(root, fmt.Sprintf("tskd-shard-%d-", seed))
	if err != nil {
		v.addf("mkdir data dir: %v", err)
		return fail()
	}
	defer func() {
		if len(v) == 0 {
			os.RemoveAll(dataDir)
		} else {
			fmt.Fprintf(os.Stderr, "chaos: shard-crash seed %d failed, data dir kept at %s\n", seed, dataDir)
		}
	}()

	// Phase 1: load the first incarnation, SIGKILL once enough commits
	// were acknowledged. Anything unacknowledged — including rejected
	// cross-shard rounds that lost a vote race — stays in doubt for
	// phase 2 to resolve under its original idempotency key.
	cmd1, addr, err := spawnServerChild(seed, dataDir, filepath.Join(dataDir, "addr-1"), plan.ShardCount)
	if err != nil {
		v.addf("phase 1 spawn: %v", err)
		return fail()
	}
	total := plan.ShardClients * plan.ShardSubs
	const (
		outUnknown = iota
		outAcked
	)
	outcome := make([]int32, total)
	var ackCount atomic.Int64
	var killOnce sync.Once
	kill := func() { killOnce.Do(func() { cmd1.Process.Kill() }) }
	errs := make(chan string, plan.ShardClients)
	var wg sync.WaitGroup
	for c := 0; c < plan.ShardClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Sprintf("phase 1 client %d dial: %v", c, err)
				return
			}
			defer conn.Close()
			for i := 0; i < plan.ShardSubs; i++ {
				req, err := client.NewRequest(0, plan.shardTxn(c, i, liveMarker(c, i)))
				if err != nil {
					errs <- fmt.Sprintf("phase 1 client %d req: %v", c, err)
					return
				}
				req.IdemKey = shardCrashKey(seed, c, i)
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				resp, err := conn.Submit(ctx, req)
				cancel()
				if err == nil && resp.Status == client.StatusCommit {
					outcome[c*plan.ShardSubs+i] = outAcked
					if ackCount.Add(1) >= int64(plan.ShardAfterAcks) {
						kill()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	kill()
	cmd1.Wait()
	for msg := range errs {
		v.addf("%s", msg)
	}
	if len(v) > 0 {
		return fail()
	}

	// Phase 2: restart over the same directory — startup recovery must
	// resolve every in-doubt prepare before the address is published.
	// Resubmit every in-doubt submission and redeliver a seed-chosen
	// sample of the acknowledged ones.
	cmd2, addr2, err := spawnServerChild(seed, dataDir, filepath.Join(dataDir, "addr-2"), plan.ShardCount)
	if err != nil {
		v.addf("phase 2 spawn: %v", err)
		return fail()
	}
	rc := client.DialReliable(addr2, client.RetryPolicy{Seed: seed ^ 0x73686172})
	for c := 0; c < plan.ShardClients; c++ {
		for i := 0; i < plan.ShardSubs; i++ {
			idx := c*plan.ShardSubs + i
			redeliver := outcome[idx] == outAcked && plan.redeliverShardAcked(c, i)
			if outcome[idx] == outAcked && !redeliver {
				continue
			}
			req, err := client.NewRequest(0, plan.shardTxn(c, i, liveMarker(c, i)))
			if err != nil {
				v.addf("phase 2 req (%d,%d): %v", c, i, err)
				continue
			}
			req.IdemKey = shardCrashKey(seed, c, i)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			resp, err := rc.Submit(ctx, req)
			cancel()
			if err != nil {
				v.addf("phase 2 submit (%d,%d): %v", c, i, err)
				continue
			}
			if resp.Status != client.StatusCommit {
				v.addf("phase 2 submit (%d,%d): status %s, want commit", c, i, resp.Status)
				continue
			}
			if redeliver && !resp.Duplicate {
				v.addf("redelivered acked key (%d,%d) re-executed instead of deduplicated", c, i)
			}
			outcome[idx] = outAcked
		}
	}
	rc.Close()
	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()

	// Verdict: recover the directory read-only to a consistent cut and
	// audit what the two incarnations together had to make durable.
	st, err := shard.Recover(dataDir, plan.ShardCount, shardBase)
	if err != nil {
		v.addf("recover: %v", err)
		return fail()
	}
	r := shard.Router{Shards: plan.ShardCount}
	localKeys := make([]map[uint64]bool, plan.ShardCount)
	for s := range localKeys {
		localKeys[s] = make(map[uint64]bool, len(st.ShardKeys[s]))
		for _, k := range st.ShardKeys[s] {
			localKeys[s][k] = true
		}
	}
	crossKeys := make(map[uint64]bool, len(st.CrossKeys))
	for _, k := range st.CrossKeys {
		crossKeys[k] = true
	}
	submitted := make(map[uint64]bool, total)
	var parts []int
	for c := 0; c < plan.ShardClients; c++ {
		for i := 0; i < plan.ShardSubs; i++ {
			marker := liveMarker(c, i)
			submitted[marker] = true
			if outcome[c*plan.ShardSubs+i] != outAcked {
				continue // already reported as a phase-2 violation
			}
			t := plan.shardTxn(c, i, marker)
			parts = r.Participants(t, parts[:0])
			home := r.Home(txn.MakeKey(workload.YCSBTable, marker))
			row := st.DBs[home].Table(workload.YCSBTable).Get(marker)
			if row == nil {
				v.addf("lost acked commit: marker (%d,%d) missing from shard %d", c, i, home)
				continue
			}
			if n := storage.VerNumber(row.Ver.Load()); n != 1 {
				v.addf("marker (%d,%d) at version %d, want 1 (double apply)", c, i, n)
			}
			key := shardCrashKey(seed, c, i)
			if len(parts) == 1 {
				if !localKeys[parts[0]][key] {
					v.addf("acked single-shard key (%d,%d) missing from shard %d dedup window", c, i, parts[0])
				}
			} else if !crossKeys[key] {
				v.addf("acked cross-shard key (%d,%d) missing from coordinator dedup window", c, i)
			}
		}
	}
	// No phantom or misrouted markers: every marker row in any store
	// was submitted, and lives on the shard that owns it.
	for s := 0; s < plan.ShardCount; s++ {
		st.DBs[s].Table(workload.YCSBTable).Scan(liveMarkerBase, ^uint64(0), func(row *storage.Row) bool {
			if !submitted[row.Key.Row()] {
				v.addf("phantom marker %d on shard %d installed by no submission", row.Key.Row(), s)
			} else if r.Home(row.Key) != s {
				v.addf("marker %d misrouted: on shard %d, owned by %d", row.Key.Row(), s, r.Home(row.Key))
			}
			return true
		})
	}
	// No dangling in-doubt: every surviving prepare was resolved one
	// way or the other.
	for _, sh := range st.Info.Shards {
		if sh.Prepares != sh.ResolvedCommitted+sh.ResolvedAborted {
			v.addf("shard %d: %d prepares, only %d committed + %d aborted resolved",
				sh.Shard, sh.Prepares, sh.ResolvedCommitted, sh.ResolvedAborted)
		}
	}
	// The surviving WAL tails must install each version of each row
	// exactly once: local commits plus prepares whose global transaction
	// has a coordinator decision (undecided prepares never install).
	var events []history.Event
	for s := 0; s < plan.ShardCount; s++ {
		dir := filepath.Join(dataDir, fmt.Sprintf("shard-%02d", s))
		if _, _, err := wal.ReplayDir(dir, func(lsn uint64, rec wal.Record) error {
			install := rec.Kind == wal.RecordCommit
			if rec.Kind == wal.RecordPrepare {
				_, install = st.Committed[uint64(rec.TxnID)]
			}
			if !install {
				return nil
			}
			e := history.Event{TxnID: len(events)}
			for _, w := range rec.Writes {
				e.Writes = append(e.Writes, history.Obs{Key: txn.Key(w.Key), Ver: w.Ver})
			}
			events = append(events, e)
			return nil
		}); err != nil {
			v.addf("shard %d wal replay: %v", s, err)
		}
	}
	if err := history.CheckEvents(events); err != nil {
		v.addf("wal tails: %v", err)
	}
	// Recovery is idempotent: a second pass lands on identical state.
	if st2, err := shard.Recover(dataDir, plan.ShardCount, shardBase); err != nil {
		v.addf("second recover: %v", err)
	} else if !reflect.DeepEqual(st2.Info, st.Info) {
		v.addf("recovery not idempotent: %+v then %+v", st.Info, st2.Info)
	}
	return fail()
}
