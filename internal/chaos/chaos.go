// Package chaos is a deterministic, seed-reproducible fault-injection
// harness for the whole TSKD stack. Each scenario wraps one layer —
// the execution engine, the WAL, the serving layer, the simulator —
// behind the fault points registered in plan.go, drives it with a
// seed-derived fault schedule (worker stalls, per-access latency
// spikes, clock skew, WAL write errors and torn writes, connection
// drops, queue-full bursts), and then verifies the invariants that no
// amount of fault injection may break:
//
//   - conflict-serializability of everything committed
//     (internal/history's precedence-graph checker);
//   - exactly one outcome per submitted transaction — never zero,
//     never two;
//   - no lost or phantom writes after WAL crash recovery;
//   - deadlock-freedom of dependency waits (watchdog);
//   - bit-identical replay of the simulator under its clock-skew
//     noise model.
//
// Determinism contract: a Report is a pure function of (scenario,
// seed). The fault schedule is derived from the seed alone (see
// rand.go for why decisions are site-hashed rather than drawn from a
// shared PRNG), and verdict lines contain only seed-derived fields —
// so `tskd-chaos -seed S` is bit-reproducible, and a failing seed from
// CI replays locally with nothing but the seed.
//
// The harness can also prove it is not vacuous: building with
// `-tags chaosbug` plants a known isolation bug (a protocol that skips
// read validation on half its commits) and registers a scenario whose
// expected verdict is FAIL; TestPlantedBug asserts the checker catches
// it. A checker that cannot fail is worthless.
package chaos

import (
	"fmt"

	"tskd/internal/history"
)

// Report is the verdict of one scenario run. Every field is
// deterministic for a given (scenario, seed) — nondeterministic
// counters (retry totals, injected-fault counts, bytes written) are
// deliberately excluded so that verdict lines are bit-reproducible.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Plan summarizes the armed fault schedule (seed-derived).
	Plan string `json:"plan"`
	Pass bool   `json:"pass"`
	// Violations lists every invariant breach; empty on pass.
	Violations []string `json:"violations,omitempty"`
}

// Scenario is one chaos target: a named, seeded run with invariant
// checking.
type Scenario struct {
	// Name identifies the scenario on the CLI and in verdict lines.
	Name string
	// Doc is a one-line description for -list.
	Doc string
	// Run executes the scenario under the seed's fault schedule.
	Run func(seed int64) Report
}

// plantedScenario is non-nil only when the chaosbug build tag plants
// the known isolation bug (planted.go); see the package comment.
var plantedScenario *Scenario

// Scenarios returns the registry in a fixed order.
func Scenarios() []Scenario {
	s := []Scenario{
		{
			Name: "engine-faults",
			Doc:  "engine under worker stalls, access latency spikes and clock skew; serializability + exactly-once",
			Run:  runEngineFaults,
		},
		{
			Name: "engine-deps-faults",
			Doc:  "dependency-constrained schedule under dep-wait stalls; deadlock-freedom + serializability",
			Run:  runEngineDepsFaults,
		},
		{
			Name: "wal-faults",
			Doc:  "redo logging under write errors and torn writes; recovery loses no acked commit, invents no write",
			Run:  runWALFaults,
		},
		{
			Name: "server-faults",
			Doc:  "serving layer under connection drops and queue-full bursts; at-most-once execution + serializability",
			Run:  runServerFaults,
		},
		{
			Name: "overload-wal-stall",
			Doc:  "durable server under fsync stall + deadline/priority burst; breaker trips and recovers, no acked-then-lost, no expired commit",
			Run:  runOverloadWALStall,
		},
		{
			Name: "kill-restart",
			Doc:  "durable server SIGKILLed mid-load, restarted, in-doubt txns resubmitted; no acked commit lost, exactly-once",
			Run:  runKillRestart,
		},
		{
			Name: "shard-crash",
			Doc:  "durable multi-shard server SIGKILLed mid-2PC, restarted; no acked commit lost, no dangling in-doubt",
			Run:  runShardCrash,
		},
		{
			Name: "replica-failover",
			Doc:  "replicating primary SIGKILLed mid-2PC, backup promoted under a bumped epoch; no acked commit lost, deposed epoch fenced",
			Run:  runReplicaFailover,
		},
		{
			Name: "auto-failover",
			Doc:  "lease-arbitrated primary SIGKILLed mid-2PC; arbiter promotes the most-caught-up backup within the lease bound, deposed epoch fenced, clients converge",
			Run:  runAutoFailover,
		},
		{
			Name: "sim-skew",
			Doc:  "discrete-event simulator under duration noise; bit-identical replay",
			Run:  runSimSkew,
		},
	}
	if plantedScenario != nil {
		s = append(s, *plantedScenario)
	}
	return s
}

// Find returns the scenario with the given name, or nil.
func Find(name string) *Scenario {
	for _, s := range Scenarios() {
		if s.Name == name {
			sc := s
			return &sc
		}
	}
	return nil
}

// violations accumulates invariant breaches.
type violations []string

func (v *violations) addf(format string, args ...any) {
	*v = append(*v, fmt.Sprintf(format, args...))
}

// report assembles the verdict.
func report(scenario string, seed int64, plan string, v violations) Report {
	return Report{
		Scenario:   scenario,
		Seed:       seed,
		Plan:       plan,
		Pass:       len(v) == 0,
		Violations: v,
	}
}

// checkExactlyOnce verifies the recorder holds exactly one commit event
// per transaction ID in [0, n): no lost transactions, no double
// commits.
func checkExactlyOnce(v *violations, events []history.Event, n int) {
	seen := make([]int, n)
	for _, e := range events {
		if e.TxnID < 0 || e.TxnID >= n {
			v.addf("exactly-once: commit event for unknown txn %d", e.TxnID)
			continue
		}
		seen[e.TxnID]++
	}
	missing, dup := 0, 0
	for id, c := range seen {
		switch {
		case c == 0:
			if missing == 0 {
				v.addf("exactly-once: txn %d never committed", id)
			}
			missing++
		case c > 1:
			if dup == 0 {
				v.addf("exactly-once: txn %d committed %d times", id, c)
			}
			dup++
		}
	}
	if missing > 1 {
		v.addf("exactly-once: %d transactions never committed", missing)
	}
	if dup > 1 {
		v.addf("exactly-once: %d transactions committed more than once", dup)
	}
}
