package chaos

import (
	"bytes"
	"sync"

	"tskd/internal/cc"
	"tskd/internal/chaos/faultio"
	"tskd/internal/engine"
	"tskd/internal/history"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// rowState is one row's committed version and image.
type rowState struct {
	ver    uint64
	fields []uint64
}

// snapshotTable captures every row's version counter and image.
func snapshotTable(db *storage.DB, table uint16) map[uint64]rowState {
	out := make(map[uint64]rowState)
	db.Table(table).Range(func(r *storage.Row) bool {
		t := r.Load()
		out[r.Key.Row()] = rowState{
			ver:    storage.VerNumber(r.Ver.Load()),
			fields: append([]uint64(nil), t.Fields...),
		}
		return true
	})
	return out
}

func fieldsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runWALFaults runs a contended bundle with redo logging over a writer
// that dies at a seed-chosen byte offset (torn or clean), then
// "crashes" and recovers the log prefix into a fresh database. The
// invariants are the durability contract:
//
//   - no lost writes: every commit whose Append was acknowledged is
//     at-or-below the recovered version of each row it wrote;
//   - no phantom writes: recovery never advances a row past the
//     in-memory final state, and where it reaches it, the images match
//     bit-for-bit;
//   - recovery is idempotent: replaying twice converges to the same
//     state.
func runWALFaults(seed int64) Report {
	plan := NewPlan(seed)
	var v violations
	cfg, w := engineWorkload(seed)
	db := cfg.BuildDB()
	rec := history.NewRecorder()
	proto, err := cc.New(plan.Protocol)
	if err != nil {
		v.addf("protocol: %v", err)
		return report("wal-faults", seed, plan.walSummary(), v)
	}

	var logBuf bytes.Buffer
	fw := &faultio.Writer{W: &logBuf, FailAfter: plan.WALFailAfter, Torn: plan.WALTorn}
	l := wal.New(fw, 0)

	// Track which commits lost durability to the injected log fault.
	var mu sync.Mutex
	failed := make(map[int]bool)
	hooks := plan.EngineHooks()
	hooks.OnWALError = func(t *txn.Transaction, err error) {
		mu.Lock()
		failed[t.ID] = true
		mu.Unlock()
	}

	m := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(w, plan.Workers)}, engine.Config{
		Workers: plan.Workers, Protocol: proto, DB: db, WAL: l,
		Recorder: rec, Hooks: hooks, Seed: seed,
	})
	l.Close()
	if m.Committed != uint64(len(w)) {
		v.addf("committed %d of %d", m.Committed, len(w))
	}
	if plan.WALFailAfter >= 0 && !fw.Failed() && fw.Written() > plan.WALFailAfter {
		v.addf("fault writer passed %d bytes without firing at %d", fw.Written(), plan.WALFailAfter)
	}
	if plan.WALFailAfter < 0 && len(failed) > 0 {
		v.addf("healthy log reported %d append failures", len(failed))
	}

	// Crash: recover the log prefix into a freshly loaded database.
	recovered := cfg.BuildDB()
	if _, err := wal.Recover(bytes.NewReader(logBuf.Bytes()), recovered); err != nil {
		v.addf("recover: %v", err)
		return report("wal-faults", seed, plan.walSummary(), v)
	}
	final := snapshotTable(db, workload.YCSBTable)
	recov := snapshotTable(recovered, workload.YCSBTable)

	// No phantom writes: recovery never invents state.
	phantoms, diverged := 0, 0
	for key, rs := range recov {
		fs, ok := final[key]
		if !ok {
			phantoms++
			continue
		}
		if rs.ver > fs.ver {
			phantoms++
			continue
		}
		if rs.ver == fs.ver && !fieldsEqual(rs.fields, fs.fields) {
			diverged++
		}
	}
	if phantoms > 0 {
		v.addf("phantom writes: %d rows recovered past the committed state", phantoms)
	}
	if diverged > 0 {
		v.addf("lost updates: %d rows at the final version with differing images", diverged)
	}

	// No lost acked writes: every durably acknowledged commit is
	// covered by the recovered state.
	lost := 0
	for _, e := range rec.Events() {
		if len(e.Writes) == 0 || failed[e.TxnID] {
			continue
		}
		for _, wr := range e.Writes {
			if recov[wr.Key.Row()].ver < wr.Ver {
				lost++
				break
			}
		}
	}
	if lost > 0 {
		v.addf("lost writes: %d acked commits missing after recovery", lost)
	}

	// Idempotence: replaying the same log again changes nothing.
	if _, err := wal.Recover(bytes.NewReader(logBuf.Bytes()), recovered); err != nil {
		v.addf("re-recover: %v", err)
	}
	again := snapshotTable(recovered, workload.YCSBTable)
	changed := 0
	for key, rs := range again {
		prev := recov[key]
		if rs.ver != prev.ver || !fieldsEqual(rs.fields, prev.fields) {
			changed++
		}
	}
	if changed > 0 {
		v.addf("recovery not idempotent: %d rows changed on replay", changed)
	}

	if err := rec.Check(); err != nil {
		v.addf("serializability: %v", err)
	}
	return report("wal-faults", seed, plan.walSummary(), v)
}
