// Package core is TSKD itself: the lightweight tool of Fig. 2 that
// sits between the transaction-to-thread assignment module and the
// execution engine, reducing runtime conflicts via scheduling (TsPAR,
// internal/sched) and proactive deferment (TsDEFER,
// internal/deferment).
//
// The package exposes the five deployed instances of Section 6.1 —
// TSKD[S] (over Strife), TSKD[C] (over Schism), TSKD[H] (over
// Horticulture), TSKD[0] (no input partition) and TSKD[CC] (unbundled,
// TsDEFER only) — together with their baselines, so benchmarks compare
// like against like.
package core

import (
	"context"
	"runtime"
	"time"

	"tskd/internal/cc"
	"tskd/internal/conflict"
	"tskd/internal/engine"
	"tskd/internal/estimator"
	"tskd/internal/history"
	"tskd/internal/partition"
	"tskd/internal/sched"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
)

// Options configures a run.
type Options struct {
	// Workers is #core (Table 1 default 20).
	Workers int
	// Protocol names the CC protocol (Table 1 default OCC).
	Protocol string
	// Isolation selects the conflict definition (default
	// serializability, as in all the paper's tests).
	Isolation conflict.Isolation
	// OpTime is the simulated per-operation work.
	OpTime time.Duration
	// Estimator supplies time(T); nil uses AccessSetSize with OpTime
	// as the unit (so the MinRuntime/IODelay knobs are visible to the
	// scheduler).
	Estimator estimator.Estimator
	// Sched configures TSgen.
	Sched sched.Options
	// Defer configures TsDEFER; nil uses the Table 1 defaults when a
	// TSKD instance needs it.
	Defer *engine.DeferConfig
	// Recorder optionally captures commits for serializability checks.
	Recorder *history.Recorder
	// CostSink optionally receives observed execution costs, feeding
	// the history-based estimator across bundles.
	CostSink *estimator.History
	// TraceSpans makes the engine record each commit's virtual-time
	// span (with its retry count) into Result.Spans — the serving layer
	// uses it to report per-transaction outcomes.
	TraceSpans bool
	// Ctx, when non-nil, cancels execution midway (deadlines, server
	// shutdown); abandoned transactions count into Metrics.Canceled.
	Ctx context.Context
	// Hooks, when non-nil, enables the engine's fault-injection points
	// (internal/chaos drives them); leave nil in production runs.
	Hooks *engine.Hooks
	// WAL, when non-nil, makes every commit append its redo record to
	// the log and block until durable (the serving layer's durability
	// path; see engine.Config.WAL).
	WAL *wal.Log
	// Brownout degrades RunTSKD for overload shedding: TsPAR refinement
	// is skipped (the partitioner's plan executes directly, a nil
	// partitioner degenerating to round-robin spread) and deferp is
	// raised, trading schedule quality for lower scheduling latency and
	// more proactive deferment while the serving layer is saturated.
	Brownout bool
	// Seed drives all randomized pieces.
	Seed int64
}

// normalized fills the defaults that every entry point shares: the
// partitioners and TSgen need a concrete #core, so Workers <= 0
// resolves to GOMAXPROCS here (the engine would do the same, but only
// after partitioning).
func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) protocol() (cc.Protocol, error) {
	name := o.Protocol
	if name == "" {
		name = "OCC"
	}
	return cc.New(name)
}

func (o Options) estimator() estimator.Estimator {
	if o.Estimator != nil {
		return o.Estimator
	}
	unit := o.OpTime
	if unit <= 0 {
		unit = time.Microsecond
	}
	return estimator.AccessSetSize{Unit: unit}
}

func (o Options) deferCfg() *engine.DeferConfig {
	if o.Defer != nil {
		return o.Defer
	}
	d := engine.DefaultDefer()
	d.DeferP = 0.6
	d.Lookups = 2
	return d
}

// Result is the outcome of a run.
type Result struct {
	engine.Metrics
	// System is the display name of what ran.
	System string
	// SchedStats reports TSgen's merge statistics when scheduling ran.
	SchedStats *sched.Stats
	// LoadRatio is max/min partition (or queue) op-count load.
	LoadRatio float64
	// PartitionTime is the time the partitioner took (including the
	// conflict graph it builds and TSgen reuses).
	PartitionTime time.Duration
	// SchedTime is the time TSgen took (the overhead TsPAR adds).
	SchedTime time.Duration
	// Makespan is the analytic makespan of the queues (estimate
	// units), when scheduling ran.
	Makespan float64
}

// OverheadR returns SchedTime / PartitionTime, the paper's overheadR
// metric (Section 6.2, "Overhead").
func (r Result) OverheadR() float64 {
	if r.PartitionTime <= 0 {
		return 0
	}
	return float64(r.SchedTime) / float64(r.PartitionTime)
}

// RunBaseline executes the partitioner's plan directly (no TSKD): the
// CC-free partitions run as thread-local lists, then the residual (if
// the partitioner produces one) spreads over all threads — everything
// under the configured CC protocol.
func RunBaseline(db *storage.DB, w txn.Workload, p partition.Partitioner, o Options) (Result, error) {
	o = o.normalized()
	proto, err := o.protocol()
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now()
	g := conflict.Build(w, o.Isolation)
	plan := p.Partition(w, g, o.Workers)
	partTime := time.Since(t0)

	phases := []engine.Phase{{PerThread: plan.Parts}}
	if len(plan.Residual) > 0 {
		phases = append(phases, engine.SpreadRoundRobin(plan.Residual, o.Workers))
	}
	m := engine.Run(w, phases, engine.Config{
		Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
		Recorder: o.Recorder, CostSink: o.CostSink, Seed: o.Seed,
		TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
	})
	return Result{
		Metrics: m, System: p.Name(),
		LoadRatio:     plan.LoadRatio(),
		PartitionTime: partTime,
	}, nil
}

// RunTSKD executes a workload through the full TSKD pipeline over the
// given partitioner: partition, extract a residual when the partitioner
// does not produce one (Section 6.1), refine into a schedule with TSgen
// (TsPAR), then execute the RC-free queues and the residual R_s with CC
// and TsDEFER guarding against estimate error — the paper's default
// deployment. A nil partitioner yields TSKD[0]: scheduling from
// scratch.
func RunTSKD(db *storage.DB, w txn.Workload, p partition.Partitioner, o Options) (Result, error) {
	o = o.normalized()
	proto, err := o.protocol()
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now()
	g := conflict.Build(w, o.Isolation)
	var plan *partition.Plan
	name := "TSKD[0]"
	if p != nil {
		plan = p.Partition(w, g, o.Workers)
		name = "TSKD[" + instanceLetter(p.Name()) + "]"
	} else {
		plan = partition.NewPlan(o.Workers)
		plan.Residual = append(plan.Residual, w...)
	}
	partTime := time.Since(t0)

	if o.Brownout {
		// Brownout: skip TSgen — its refinement latency is the one cost
		// the bundle path can drop without touching correctness — and
		// execute the partitioner's plan directly (round-robin when
		// there is no partitioner) with a raised defer probability, so
		// TsDEFER sidesteps conflicts the skipped schedule would have.
		phases := []engine.Phase{{PerThread: plan.Parts}}
		if len(plan.Residual) > 0 {
			phases = append(phases, engine.SpreadRoundRobin(plan.Residual, o.Workers))
		}
		d := *o.deferCfg()
		d.DeferP = brownoutDeferP(d.DeferP)
		m := engine.Run(w, phases, engine.Config{
			Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
			Defer: &d, Recorder: o.Recorder, CostSink: o.CostSink, Seed: o.Seed,
			TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
		})
		return Result{
			Metrics: m, System: name + "-brownout",
			LoadRatio:     plan.LoadRatio(),
			PartitionTime: partTime,
		}, nil
	}

	t1 := time.Now()
	if p != nil && len(plan.Residual) == 0 {
		// Partitioners without a native residual (Schism,
		// Horticulture): extract one so the CC-free partitions are
		// pairwise conflict-free, as TSgen requires.
		plan = partition.ExtractResidual(plan, g)
	}
	s := sched.Generate(w, plan, g, o.estimator(), o.Sched)
	schedTime := time.Since(t1)

	phases := []engine.Phase{{PerThread: s.Queues}}
	if len(s.Residual) > 0 {
		phases = append(phases, engine.SpreadRoundRobin(s.Residual, o.Workers))
	}
	m := engine.Run(w, phases, engine.Config{
		Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
		Defer: o.deferCfg(), Recorder: o.Recorder, CostSink: o.CostSink, Seed: o.Seed,
		TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
	})
	stats := s.Stats
	return Result{
		Metrics: m, System: name,
		SchedStats:    &stats,
		LoadRatio:     queueLoadRatio(s),
		PartitionTime: partTime,
		SchedTime:     schedTime,
		Makespan:      float64(s.Makespan()),
	}, nil
}

// RunTSKDNoCC executes the schedule the way the paper's introduction
// envisions when estimates are trusted: the RC-free queues run WITHOUT
// concurrency control (protocol NONE), and only the residual runs
// under the configured CC. This retains the full CC-free speedup but
// gives up the safety net — with inaccurate estimates the queue phase
// can produce non-serializable executions, which is exactly why the
// deployed TSKD defaults to CC + TsDEFER (Section 3). Pair it with a
// Recorder to measure how often estimates were good enough.
func RunTSKDNoCC(db *storage.DB, w txn.Workload, p partition.Partitioner, o Options) (Result, error) {
	o = o.normalized()
	proto, err := o.protocol()
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now()
	g := conflict.Build(w, o.Isolation)
	var plan *partition.Plan
	if p != nil {
		plan = p.Partition(w, g, o.Workers)
		if len(plan.Residual) == 0 {
			plan = partition.ExtractResidual(plan, g)
		}
	} else {
		plan = partition.NewPlan(o.Workers)
		plan.Residual = append(plan.Residual, w...)
	}
	partTime := time.Since(t0)

	t1 := time.Now()
	s := sched.Generate(w, plan, g, o.estimator(), o.Sched)
	schedTime := time.Since(t1)

	// Phase 1: queues without CC.
	m := engine.Run(w, []engine.Phase{{PerThread: s.Queues}}, engine.Config{
		Workers: o.Workers, Protocol: cc.NewNone(), DB: db, OpTime: o.OpTime,
		Recorder: o.Recorder, Seed: o.Seed,
		TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
	})
	// Phase 2: residual with CC (+ TsDEFER).
	if len(s.Residual) > 0 {
		m2 := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(s.Residual, o.Workers)}, engine.Config{
			Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
			Defer: o.deferCfg(), Recorder: o.Recorder, Seed: o.Seed + 1,
			TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
		})
		m.Add(m2)
	}
	stats := s.Stats
	return Result{
		Metrics: m, System: "TSKD-noCC",
		SchedStats:    &stats,
		LoadRatio:     queueLoadRatio(s),
		PartitionTime: partTime,
		SchedTime:     schedTime,
		Makespan:      float64(s.Makespan()),
	}, nil
}

// RunTsParOnly is the TSKD[x] ablation with TsDEFER disabled
// (Fig. 4j): scheduling only, execution with plain CC.
func RunTsParOnly(db *storage.DB, w txn.Workload, p partition.Partitioner, o Options) (Result, error) {
	o.Defer = &engine.DeferConfig{Lookups: 0}
	r, err := RunTSKD(db, w, p, o)
	r.System = "TsPAR"
	return r, err
}

// RunTsDeferOnly is the ablation with TsPAR disabled (Fig. 4j): the
// partitioner's plan executes directly, but with TsDEFER enabled.
func RunTsDeferOnly(db *storage.DB, w txn.Workload, p partition.Partitioner, o Options) (Result, error) {
	o = o.normalized()
	proto, err := o.protocol()
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now()
	g := conflict.Build(w, o.Isolation)
	plan := p.Partition(w, g, o.Workers)
	partTime := time.Since(t0)

	phases := []engine.Phase{{PerThread: plan.Parts}}
	if len(plan.Residual) > 0 {
		phases = append(phases, engine.SpreadRoundRobin(plan.Residual, o.Workers))
	}
	m := engine.Run(w, phases, engine.Config{
		Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
		Defer: o.deferCfg(), Recorder: o.Recorder, CostSink: o.CostSink, Seed: o.Seed,
		TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
	})
	return Result{
		Metrics: m, System: "TsDEFER",
		LoadRatio:     plan.LoadRatio(),
		PartitionTime: partTime,
	}, nil
}

// RunCC is DBCC: the engine's default unbundled path — round-robin
// thread-local buffers, plain CC, no TSKD.
func RunCC(db *storage.DB, w txn.Workload, o Options) (Result, error) {
	o = o.normalized()
	proto, err := o.protocol()
	if err != nil {
		return Result{}, err
	}
	m := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(w, o.Workers)}, engine.Config{
		Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
		Recorder: o.Recorder, CostSink: o.CostSink, Seed: o.Seed,
		TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
	})
	return Result{Metrics: m, System: "DBCC"}, nil
}

// RunTSKDCC is TSKD[CC]: unbundled transactions, round-robin
// assignment, CC plus TsDEFER (Section 6.3).
func RunTSKDCC(db *storage.DB, w txn.Workload, o Options) (Result, error) {
	o = o.normalized()
	proto, err := o.protocol()
	if err != nil {
		return Result{}, err
	}
	m := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(w, o.Workers)}, engine.Config{
		Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
		Defer: o.deferCfg(), Recorder: o.Recorder, CostSink: o.CostSink, Seed: o.Seed,
		TraceSpans: o.TraceSpans, Ctx: o.Ctx, Hooks: o.Hooks, WAL: o.WAL,
	})
	return Result{Metrics: m, System: "TSKD[CC]"}, nil
}

// brownoutDeferP raises the defer probability for brownout runs,
// capped so deferment cannot livelock a drain.
func brownoutDeferP(p float64) float64 {
	p += 0.3
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// instanceLetter maps a partitioner to the paper's instance letter:
// TSKD[S] = Strife, TSKD[C] = Schism (Curino et al.), TSKD[H] =
// Horticulture.
func instanceLetter(name string) string {
	switch name {
	case "STRIFE":
		return "S"
	case "SCHISM":
		return "C"
	case "HORTICULTURE":
		return "H"
	default:
		return name
	}
}

// queueLoadRatio is max/min queue load in estimate units.
func queueLoadRatio(s *sched.Schedule) float64 {
	minL, maxL := -1.0, 0.0
	for i := range s.Queues {
		l := float64(s.QueueTime(i))
		if l == 0 {
			l = 1
		}
		if minL < 0 || l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if minL <= 0 {
		return 1
	}
	return maxL / minL
}
