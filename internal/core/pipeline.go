package core

import (
	"context"

	"tskd/internal/estimator"
	"tskd/internal/partition"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// Pipeline processes a stream of bundles the way a deployed TSKD would
// (Section 3): each bundle is partitioned and scheduled using cost
// estimates learned from the execution history of earlier bundles,
// then executed; its observed per-transaction costs feed the history
// for the next bundle. The first bundle falls back to access-set-size
// estimates (the paper's cold-start fallback).
type Pipeline struct {
	// DB is the shared database.
	DB *storage.DB
	// Partitioner splits each bundle; nil schedules from scratch
	// (TSKD[0]).
	Partitioner partition.Partitioner
	// Opts configures each run; Estimator and CostSink are managed by
	// the pipeline and must be left nil.
	Opts Options

	history  *estimator.History
	bundles  int
	brownout bool
}

// NewPipeline returns a pipeline over db.
func NewPipeline(db *storage.DB, p partition.Partitioner, opts Options) *Pipeline {
	h := estimator.NewHistory()
	unit := opts.OpTime
	h.Fallback = estimator.AccessSetSize{Unit: unit}
	return &Pipeline{DB: db, Partitioner: p, Opts: opts, history: h}
}

// Bundles returns the number of bundles processed.
func (pl *Pipeline) Bundles() int { return pl.bundles }

// HistorySize returns the number of exact cost records learned so far.
func (pl *Pipeline) HistorySize() int { return pl.history.Len() }

// SetBrownout toggles degraded processing for subsequent bundles (see
// Options.Brownout). Call it from the same goroutine that calls
// Process — the serving layer's bundler — between bundles.
func (pl *Pipeline) SetBrownout(on bool) { pl.brownout = on }

// Process schedules and executes one bundle, learning its costs.
func (pl *Pipeline) Process(w txn.Workload) (Result, error) {
	return pl.ProcessContext(context.Background(), w)
}

// ProcessContext is Process under a context: cancellation (a deadline,
// or a serving drain turning into a hard stop) abandons the rest of
// the bundle's execution — abandoned transactions are reported in
// Result.Canceled and their costs are not learned.
func (pl *Pipeline) ProcessContext(ctx context.Context, w txn.Workload) (Result, error) {
	o := pl.Opts
	o.Ctx = ctx
	o.Estimator = pl.history
	o.CostSink = pl.history
	o.Seed = pl.Opts.Seed + int64(pl.bundles)*7919
	o.Brownout = pl.brownout
	res, err := RunTSKD(pl.DB, w, pl.Partitioner, o)
	if err != nil {
		return Result{}, err
	}
	pl.bundles++
	return res, nil
}
