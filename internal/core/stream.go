package core

import (
	"context"

	"tskd/internal/engine"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// StreamResult aggregates an open-system run.
type StreamResult struct {
	engine.Metrics
	// Flushes is the number of buffer flushes executed.
	Flushes int
}

// RunStream executes w as an open system (Section 2.1's unbundled
// model): transactions "arrive" in order and are periodically flushed
// to the thread-local buffers in groups of flushEvery, each flush
// executing round-robin under CC — with TsDEFER when o.Defer says so.
// This is DBCC / TSKD[CC] under arrival batching instead of one giant
// bundle: the progress tracker only ever sees the transactions that
// have actually arrived, as in a live system.
func RunStream(db *storage.DB, w txn.Workload, flushEvery int, o Options) (StreamResult, error) {
	return RunStreamContext(context.Background(), db, w, flushEvery, o)
}

// RunStreamContext is RunStream under a context: once ctx is done, the
// current flush finishes abandoning its in-flight work (counted in
// Metrics.Canceled) and no further flushes start — transactions never
// flushed are NOT counted as canceled, mirroring a live system that
// stops admitting on shutdown.
func RunStreamContext(ctx context.Context, db *storage.DB, w txn.Workload, flushEvery int, o Options) (StreamResult, error) {
	proto, err := o.protocol()
	if err != nil {
		return StreamResult{}, err
	}
	if flushEvery <= 0 {
		flushEvery = 256
	}
	var res StreamResult
	for start := 0; start < len(w); start += flushEvery {
		if ctx.Err() != nil {
			break
		}
		end := start + flushEvery
		if end > len(w) {
			end = len(w)
		}
		batch := w[start:end]
		m := engine.Run(batch, []engine.Phase{engine.SpreadRoundRobin(batch, o.Workers)}, engine.Config{
			Workers: o.Workers, Protocol: proto, DB: db, OpTime: o.OpTime,
			Defer: o.Defer, Recorder: o.Recorder, CostSink: o.CostSink,
			TraceSpans: o.TraceSpans, Ctx: ctx,
			Seed: o.Seed + int64(res.Flushes),
		})
		res.Metrics.Add(m)
		res.Flushes++
	}
	return res, nil
}
