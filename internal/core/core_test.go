package core

import (
	"testing"
	"time"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/engine"
	"tskd/internal/history"
	"tskd/internal/partition"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func smallYCSB(seed int64) (*storage.DB, txn.Workload) {
	c := workload.YCSB{Records: 400, Theta: 0.9, Txns: 400, OpsPerTxn: 8, ReadRatio: 0.5, RMW: true, Seed: seed}
	return c.BuildDB(), c.Generate()
}

func opts() Options {
	return Options{Workers: 4, Protocol: "OCC", Seed: 1}
}

func TestRunBaselineStrife(t *testing.T) {
	db, w := smallYCSB(1)
	rec := history.NewRecorder()
	o := opts()
	o.Recorder = rec
	r, err := RunBaseline(db, w, partition.NewStrife(1), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 400 {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.System != "STRIFE" {
		t.Errorf("System = %q", r.System)
	}
	if r.PartitionTime <= 0 {
		t.Error("partition time not measured")
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("baseline not serializable: %v", err)
	}
}

func TestRunTSKDOverEachPartitioner(t *testing.T) {
	cases := []struct {
		p    partition.Partitioner
		name string
	}{
		{partition.NewStrife(1), "TSKD[S]"},
		{partition.NewSchism(1), "TSKD[C]"},
		{partition.NewHorticulture(), "TSKD[H]"},
		{nil, "TSKD[0]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db, w := smallYCSB(2)
			rec := history.NewRecorder()
			o := opts()
			o.Recorder = rec
			r, err := RunTSKD(db, w, c.p, o)
			if err != nil {
				t.Fatal(err)
			}
			if r.Committed != 400 {
				t.Fatalf("committed %d", r.Committed)
			}
			if r.System != c.name {
				t.Errorf("System = %q, want %q", r.System, c.name)
			}
			if r.SchedStats == nil {
				t.Fatal("no scheduling stats")
			}
			if r.SchedTime <= 0 {
				t.Error("sched time not measured")
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("TSKD run not serializable: %v", err)
			}
		})
	}
}

func TestTSKDSchedulesResidual(t *testing.T) {
	db, w := smallYCSB(3)
	r, err := RunTSKD(db, w, partition.NewStrife(3), opts())
	if err != nil {
		t.Fatal(err)
	}
	if r.SchedStats.InputResidual > 0 && r.SchedStats.Merged == 0 {
		t.Error("TSgen merged nothing from a non-empty residual")
	}
	if r.SchedStats.ScheduledPct() < 0 || r.SchedStats.ScheduledPct() > 100 {
		t.Errorf("s%% = %v", r.SchedStats.ScheduledPct())
	}
}

func TestAblations(t *testing.T) {
	db, w := smallYCSB(4)
	p := partition.NewStrife(4)
	rp, err := RunTsParOnly(db, w, p, opts())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Committed != 400 || rp.Defers != 0 {
		t.Errorf("TsPAR-only: committed=%d defers=%d", rp.Committed, rp.Defers)
	}
	db2, w2 := smallYCSB(4)
	rd, err := RunTsDeferOnly(db2, w2, p, opts())
	if err != nil {
		t.Fatal(err)
	}
	if rd.Committed != 400 {
		t.Errorf("TsDEFER-only committed %d", rd.Committed)
	}
	if rd.SchedStats != nil {
		t.Error("TsDEFER-only must not schedule")
	}
}

func TestRunCCAndTSKDCC(t *testing.T) {
	db, w := smallYCSB(5)
	rec := history.NewRecorder()
	o := opts()
	o.Recorder = rec
	r, err := RunCC(db, w, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 400 || r.System != "DBCC" {
		t.Errorf("DBCC: %+v", r)
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}

	db2, w2 := smallYCSB(5)
	rec2 := history.NewRecorder()
	o2 := opts()
	o2.Recorder = rec2
	r2, err := RunTSKDCC(db2, w2, o2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Committed != 400 || r2.System != "TSKD[CC]" {
		t.Errorf("TSKD[CC]: %+v", r2)
	}
	if err := rec2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBadProtocolName(t *testing.T) {
	db, w := smallYCSB(6)
	o := opts()
	o.Protocol = "BOGUS"
	if _, err := RunCC(db, w, o); err == nil {
		t.Error("bogus protocol accepted")
	}
	if _, err := RunTSKD(db, w, nil, o); err == nil {
		t.Error("bogus protocol accepted by RunTSKD")
	}
	if _, err := RunBaseline(db, w, partition.NewStrife(1), o); err == nil {
		t.Error("bogus protocol accepted by RunBaseline")
	}
}

func TestOverheadR(t *testing.T) {
	r := Result{PartitionTime: 100 * time.Millisecond, SchedTime: 4 * time.Millisecond}
	if got := r.OverheadR(); got != 0.04 {
		t.Errorf("OverheadR = %v", got)
	}
	if (Result{}).OverheadR() != 0 {
		t.Error("zero partition time should report 0")
	}
}

// Failure injection: deliberately wrong estimates must not break
// serializability — CC plus TsDEFER backstop estimate error (Section 3).
func TestWrongEstimatesStaySerializable(t *testing.T) {
	db, w := smallYCSB(7)
	rec := history.NewRecorder()
	o := opts()
	o.Recorder = rec
	o.Estimator = constantEstimator(1) // every txn "costs the same": wrong
	r, err := RunTSKD(db, w, partition.NewStrife(7), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 400 {
		t.Fatalf("committed %d", r.Committed)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("wrong estimates broke serializability: %v", err)
	}
}

type constantEstimator float64

func (c constantEstimator) Estimate(*txn.Transaction) clock.Units {
	return clock.Units(c)
}

func TestCustomDeferKnobs(t *testing.T) {
	db, w := smallYCSB(8)
	o := opts()
	o.Defer = &engine.DeferConfig{Lookups: 5, DeferP: 1.0, Horizon: 2, Alpha: 0.7, MaxDefers: 3}
	r, err := RunTSKDCC(db, w, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 400 {
		t.Fatalf("committed %d", r.Committed)
	}
}

// Remark (3) of Section 3: TSKD is not fixed to serializability — it
// observes conflicts at the isolation level the system upholds. Under
// snapshot isolation only write-write pairs conflict, so the conflict
// graph is sparser and TSgen schedules at least as much of the
// residual as under serializability.
func TestSnapshotIsolationSchedulesMore(t *testing.T) {
	c := workload.YCSB{Records: 400, Theta: 0.9, Txns: 400, OpsPerTxn: 8,
		ReadRatio: 0.8, RMW: false, Seed: 12} // read-heavy: SI prunes most edges
	run := func(iso conflict.Isolation) *Result {
		db := c.BuildDB()
		w := c.Generate()
		o := opts()
		o.Isolation = iso
		o.Protocol = "MVCC"
		r, err := RunTSKD(db, w, partition.NewStrife(12), o)
		if err != nil {
			t.Fatal(err)
		}
		return &r
	}
	ser := run(conflict.Serializability)
	si := run(conflict.SnapshotIsolation)
	if si.SchedStats.ScheduledPct() < ser.SchedStats.ScheduledPct() {
		t.Errorf("SI scheduled %.1f%% < serializability %.1f%% — sparser graph should schedule more",
			si.SchedStats.ScheduledPct(), ser.SchedStats.ScheduledPct())
	}
	if si.Committed != 400 || ser.Committed != 400 {
		t.Error("not all committed")
	}
	t.Logf("s%%: serializability %.1f, snapshot isolation %.1f",
		ser.SchedStats.ScheduledPct(), si.SchedStats.ScheduledPct())
}

func TestRunTSKDNoCC(t *testing.T) {
	db, w := smallYCSB(14)
	r, err := RunTSKDNoCC(db, w, partition.NewStrife(14), opts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 400 {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.System != "TSKD-noCC" || r.SchedStats == nil {
		t.Errorf("result: %+v", r.System)
	}
	// From scratch variant.
	db2, w2 := smallYCSB(14)
	r2, err := RunTSKDNoCC(db2, w2, nil, opts())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Committed != 400 {
		t.Fatalf("committed %d", r2.Committed)
	}
	// Bad protocol name still surfaces (residual phase needs it).
	o := opts()
	o.Protocol = "BOGUS"
	if _, err := RunTSKDNoCC(db, w, nil, o); err == nil {
		t.Error("bogus protocol accepted")
	}
}
