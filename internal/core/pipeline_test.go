package core

import (
	"testing"

	"tskd/internal/partition"
	"tskd/internal/workload"
)

func TestPipelineLearnsAcrossBundles(t *testing.T) {
	cfg := workload.YCSB{
		Records: 500, Theta: 0.9, Txns: 200, OpsPerTxn: 8,
		ReadRatio: 0.5, RMW: true,
	}
	db := cfg.BuildDB()
	pl := NewPipeline(db, partition.NewStrife(1), Options{Workers: 4, Protocol: "OCC", Seed: 1})
	for b := 0; b < 3; b++ {
		c := cfg
		c.Seed = int64(b + 1)
		w := c.Generate()
		res, err := pl.Process(w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 200 {
			t.Fatalf("bundle %d: committed %d", b, res.Committed)
		}
	}
	if pl.Bundles() != 3 {
		t.Errorf("Bundles = %d", pl.Bundles())
	}
	if pl.HistorySize() == 0 {
		t.Error("pipeline learned nothing across bundles")
	}
}

func TestPipelineFromScratch(t *testing.T) {
	cfg := workload.YCSB{Records: 300, Theta: 0.8, Txns: 100, OpsPerTxn: 6, ReadRatio: 0.5, Seed: 2}
	db := cfg.BuildDB()
	pl := NewPipeline(db, nil, Options{Workers: 2, Protocol: "SILO", Seed: 2})
	res, err := pl.Process(cfg.Generate())
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "TSKD[0]" {
		t.Errorf("System = %q", res.System)
	}
}

func TestRunStream(t *testing.T) {
	cfg := workload.YCSB{Records: 1000, Theta: 0.9, Txns: 500, OpsPerTxn: 8,
		ReadRatio: 0.5, RMW: true, Seed: 13}
	db := cfg.BuildDB()
	w := cfg.Generate()
	o := Options{Workers: 4, Protocol: "TICTOC", Seed: 13}
	o.Defer = nil
	res, err := RunStream(db, w, 100, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 500 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.Flushes != 5 {
		t.Errorf("flushes = %d, want 5", res.Flushes)
	}
	// Uneven tail flush.
	db2 := cfg.BuildDB()
	res2, err := RunStream(db2, w, 150, o)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Flushes != 4 || res2.Committed != 500 {
		t.Errorf("tail flush wrong: %d flushes, %d committed", res2.Flushes, res2.Committed)
	}
	// Bad protocol surfaces.
	o.Protocol = "NOPE"
	if _, err := RunStream(db, w, 100, o); err == nil {
		t.Error("bad protocol accepted")
	}
}
