// Package workload provides the two benchmarks the paper evaluates on
// — YCSB (core workload A) and full TPC-C — plus the two benchmark
// extensions of Section 6.1: runtime skewness (minT, p, θ_T) and
// commit-time I/O latency (l_IO, θ_IO).
//
// Workload generators are deterministic per seed and produce
// stored-procedure-style transactions whose access sets are fully
// derivable from their parameters, the workload class partitioners and
// TsPAR target.
package workload

import (
	"time"

	"tskd/internal/txn"
	"tskd/internal/zipf"
)

// RuntimeSkew configures the runtime lower-bound extension: each
// transaction is assigned a minimum runtime drawn from
// [MinT·avg, P·MinT·avg] under a Zipfian distribution with skew
// ThetaT. A transaction that would finish earlier delays its commit
// until the lower bound has elapsed (the engine enforces this).
type RuntimeSkew struct {
	// MinT scales the unit lower bound relative to the average
	// transaction runtime (paper range [1/8, 1], default 1/2). Zero
	// disables the extension.
	MinT float64
	// P bounds the maximum lower bound as P·MinT·avg (paper range
	// [32, 64], default 48).
	P int
	// ThetaT is the Zipf skew of the lower-bound distribution (paper
	// range [0.7, 0.9], default 0.8). Smaller values produce more
	// long-running transactions.
	ThetaT float64
}

// DefaultRuntimeSkew returns the Table 1 defaults.
func DefaultRuntimeSkew() RuntimeSkew { return RuntimeSkew{MinT: 0.5, P: 48, ThetaT: 0.8} }

// skewBuckets discretizes the lower-bound range for the Zipf draw.
const skewBuckets = 1024

// ApplySkew assigns MinRuntime lower bounds to every transaction in w,
// given the average transaction runtime avg. It is a no-op when
// s.MinT <= 0 or avg <= 0.
func ApplySkew(w txn.Workload, s RuntimeSkew, avg time.Duration, seed int64) {
	if s.MinT <= 0 || avg <= 0 || len(w) == 0 {
		return
	}
	p := s.P
	if p < 1 {
		p = 1
	}
	g := zipf.New(skewBuckets, safeTheta(s.ThetaT), seed)
	lo := time.Duration(s.MinT * float64(avg))
	hi := time.Duration(float64(p) * s.MinT * float64(avg))
	for _, t := range w {
		rank := g.Next() // rank 0 (most frequent) = shortest bound
		t.MinRuntime = lo + time.Duration(float64(hi-lo)*float64(rank)/float64(skewBuckets-1))
	}
}

// IOLatency configures the commit-time I/O latency extension: each
// transaction receives an artificial delay at commit, drawn from
// [0, LIO·MinIO] under a Zipfian distribution with skew ThetaIO.
type IOLatency struct {
	// LIO is max latency / min latency (paper range [0, 100]); zero
	// disables the extension.
	LIO int
	// ThetaIO is the Zipf skew of the latency distribution (paper
	// range [0.8, 1.6], default 1.2). Larger values mean a longer tail
	// (most transactions see little delay).
	ThetaIO float64
	// MinIO is the unit latency (the paper uses 5000 CPU cycles,
	// roughly 1/6–1/8 of a TPC-C/YCSB transaction runtime).
	MinIO time.Duration
}

// DefaultIOLatency returns the Table 1 defaults with I/O disabled
// (LIO = 0); I/O experiments set LIO explicitly.
func DefaultIOLatency() IOLatency {
	return IOLatency{LIO: 0, ThetaIO: 1.2, MinIO: 2 * time.Microsecond}
}

// ApplyIO assigns commit-time IODelay values to every transaction in
// w. It is a no-op when io.LIO <= 0 or io.MinIO <= 0.
func ApplyIO(w txn.Workload, io IOLatency, seed int64) {
	if io.LIO <= 0 || io.MinIO <= 0 || len(w) == 0 {
		return
	}
	g := zipf.New(skewBuckets, safeTheta(io.ThetaIO), seed)
	hi := time.Duration(io.LIO) * io.MinIO
	for _, t := range w {
		rank := g.Next() // rank 0 = no delay; the tail gets up to hi
		t.IODelay = time.Duration(float64(hi) * float64(rank) / float64(skewBuckets-1))
	}
}

// safeTheta nudges theta away from the harmonic pole at 1.0 that the
// generator cannot evaluate.
func safeTheta(theta float64) float64 {
	if theta <= 0 {
		return 0.8
	}
	if theta == 1 {
		return 1.0001
	}
	return theta
}
