package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	w := smallTPCC(3).Generate()
	ApplySkew(w, DefaultRuntimeSkew(), 10000, 1)
	var buf bytes.Buffer
	if err := SaveTrace(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w) {
		t.Fatalf("loaded %d of %d", len(got), len(w))
	}
	for i := range w {
		if got[i].String() != w[i].String() {
			t.Fatalf("txn %d mismatch:\n  %v\n  %v", i, got[i], w[i])
		}
		if got[i].Template != w[i].Template || got[i].MinRuntime != w[i].MinRuntime ||
			got[i].IODelay != w[i].IODelay {
			t.Fatalf("txn %d metadata mismatch", i)
		}
		if len(got[i].Params) != len(w[i].Params) {
			t.Fatalf("txn %d params mismatch", i)
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("not a trace at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTraceTruncated(t *testing.T) {
	w := smallYCSB(2).Generate()
	var buf bytes.Buffer
	if err := SaveTrace(&buf, w); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestTraceEmptyWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("empty trace not empty")
	}
}
