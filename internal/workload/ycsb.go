package workload

import (
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/zipf"
)

// YCSBTable is the table id of the single YCSB user table.
const YCSBTable uint16 = 1

// ycsbFields is the number of columns per YCSB record (the paper's
// 128-byte records hold a handful of fields; field 0 is the one
// transactions update).
const ycsbFields = 2

// YCSB generates the YCSB core workload A used in Section 6: a single
// table of Records keys; each transaction performs OpsPerTxn accesses
// to distinct keys drawn from a Zipfian distribution with skew Theta,
// half reads and half updates.
type YCSB struct {
	// Records is the table size. The paper uses 20M; the default here
	// is 100k — a pure scale knob that leaves the contention profile
	// (set by Theta) unchanged.
	Records int
	// Theta is the Zipfian data-skew parameter (paper range
	// [0.7, 0.9], default 0.8).
	Theta float64
	// Txns is the bundle size (paper default 10,000).
	Txns int
	// OpsPerTxn is the number of records accessed per transaction
	// (paper: 16).
	OpsPerTxn int
	// ReadRatio is the fraction of reads (workload A: 0.5).
	ReadRatio float64
	// RMW makes updates read-modify-write instead of blind writes.
	RMW bool
	// ScanRatio turns that fraction of transactions into YCSB
	// workload-E style short range scans (plus inserts): each scan
	// transaction performs one range scan of up to MaxScanLen rows
	// starting at a Zipfian key, and one insert of a fresh key. Scans
	// have unknown access sets and always execute under CC (the
	// paper's treatment of range queries).
	ScanRatio float64
	// MaxScanLen bounds scan lengths (default 50, as in YCSB-E).
	MaxScanLen int
	// Seed drives generation.
	Seed int64
}

// DefaultYCSB returns the Table 1 defaults at test-friendly scale
// (core workload A, the paper's configuration).
func DefaultYCSB() YCSB {
	return YCSB{Records: 100_000, Theta: 0.8, Txns: 10_000, OpsPerTxn: 16, ReadRatio: 0.5}
}

// WorkloadB returns the YCSB core B preset: 95% reads, 5% updates.
func WorkloadB() YCSB {
	c := DefaultYCSB()
	c.ReadRatio = 0.95
	return c
}

// WorkloadC returns the YCSB core C preset: read-only.
func WorkloadC() YCSB {
	c := DefaultYCSB()
	c.ReadRatio = 1.0
	return c
}

// WorkloadE returns the YCSB core E preset: 95% short range scans, 5%
// inserts (approximated as scan+insert transactions at ScanRatio 0.95).
func WorkloadE() YCSB {
	c := DefaultYCSB()
	c.ScanRatio = 0.95
	c.MaxScanLen = 50
	return c
}

// WorkloadF returns the YCSB core F preset: read-modify-write.
func WorkloadF() YCSB {
	c := DefaultYCSB()
	c.RMW = true
	return c
}

// BuildDB creates and populates the YCSB table.
func (c YCSB) BuildDB() *storage.DB {
	db := storage.NewDB()
	tbl := db.CreateTable(YCSBTable, "usertable", ycsbFields)
	for i := 0; i < c.Records; i++ {
		r, _ := tbl.Insert(uint64(i))
		t := r.Load().Clone()
		t.Fields[0] = uint64(i)
		r.Install(t)
	}
	return db
}

// Generate produces the transaction bundle. IDs are dense in
// [0, Txns).
func (c YCSB) Generate() txn.Workload {
	g := zipf.New(uint64(c.Records), safeTheta(c.Theta), c.Seed)
	maxScan := c.MaxScanLen
	if maxScan <= 0 {
		maxScan = 50
	}
	nextInsert := uint64(c.Records) // fresh keys for workload-E inserts
	w := make(txn.Workload, c.Txns)
	for i := range w {
		if c.ScanRatio > 0 && g.Float64() < c.ScanRatio {
			t := txn.New(i)
			t.Template = "YCSB-E"
			lo := g.Next()
			span := g.Uniform(uint64(maxScan)) + 1
			t.S(txn.MakeKey(YCSBTable, lo), span)
			t.IF(txn.MakeKey(YCSBTable, nextInsert), 0, nextInsert)
			nextInsert++
			w[i] = t
			continue
		}
		t := txn.New(i)
		t.Template = "YCSB-A"
		seen := make(map[uint64]bool, c.OpsPerTxn)
		for j := 0; j < c.OpsPerTxn; j++ {
			row := g.Next()
			// YCSB transactions access distinct records; re-draw on
			// collision (bounded).
			for tries := 0; seen[row] && tries < 8; tries++ {
				row = g.Next()
			}
			seen[row] = true
			key := txn.MakeKey(YCSBTable, row)
			switch {
			case g.Float64() < c.ReadRatio:
				t.R(key)
			case c.RMW:
				t.U(key, 1)
			default:
				t.WF(key, 0, uint64(i)<<16|uint64(j))
			}
		}
		w[i] = t
	}
	return w
}
