package workload

import (
	"math/rand"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// TPC-C table ids.
const (
	TWarehouse uint16 = 2 + iota
	TDistrict
	TCustomer
	THistory
	TNewOrder
	TOrder
	TOrderLine
	TItem
	TStock
)

// TPC-C schema constants.
const (
	// DistrictsPerWarehouse is fixed at 10 by the TPC-C specification.
	DistrictsPerWarehouse = 10
	// orderSpace reserves the per-district order-id address space.
	orderSpace = 1 << 20
	// maxOrderLines is the TPC-C maximum of 15 lines per order.
	maxOrderLines = 15
)

// Column indexes, by table.
const (
	// warehouse
	WYTD = 0
	WTax = 1
	// district
	DYTD     = 0
	DNextOID = 1
	DTax     = 2
	// customer
	CBalance     = 0
	CYTDPayment  = 1
	CPaymentCnt  = 2
	CDeliveryCnt = 3
	// history
	HAmount = 0
	// new-order
	NOPending = 0
	// order
	OCID     = 0
	OOLCnt   = 1
	OCarrier = 2
	// order-line
	OLAmount   = 0
	OLItem     = 1
	OLDelivery = 2
	OLQty      = 3
	// item
	IPrice = 0
	// stock
	SQuantity  = 0
	SYTD       = 1
	SOrderCnt  = 2
	SRemoteCnt = 3
)

// InitialBalance seeds customer balances high enough that wrapping
// subtraction never crosses zero in practice, keeping invariant checks
// simple.
const InitialBalance = uint64(1) << 40

// Key constructors.

// WarehouseKey returns the key of warehouse w.
func WarehouseKey(w int) txn.Key { return txn.MakeKey(TWarehouse, uint64(w)) }

// DistrictKey returns the key of district d of warehouse w.
func DistrictKey(w, d int) txn.Key {
	return txn.MakeKey(TDistrict, uint64(w*DistrictsPerWarehouse+d))
}

// CustomerKey returns the key of customer c of district (w, d), given
// the customers-per-district scale cpd.
func CustomerKey(w, d, c, cpd int) txn.Key {
	return txn.MakeKey(TCustomer, uint64((w*DistrictsPerWarehouse+d)*cpd+c))
}

// ItemKey returns the key of item i.
func ItemKey(i int) txn.Key { return txn.MakeKey(TItem, uint64(i)) }

// StockKey returns the key of the stock row of item i at warehouse w,
// given the item-count scale items.
func StockKey(w, i, items int) txn.Key { return txn.MakeKey(TStock, uint64(w*items+i)) }

// OrderKey returns the key of order o of district (w, d).
func OrderKey(w, d, o int) txn.Key {
	return txn.MakeKey(TOrder, uint64(w*DistrictsPerWarehouse+d)*orderSpace+uint64(o))
}

// NewOrderKey returns the key of the NEW-ORDER row of order o.
func NewOrderKey(w, d, o int) txn.Key {
	return txn.MakeKey(TNewOrder, uint64(w*DistrictsPerWarehouse+d)*orderSpace+uint64(o))
}

// OrderLineKey returns the key of line l of order o of district (w, d).
func OrderLineKey(w, d, o, l int) txn.Key {
	return txn.MakeKey(TOrderLine,
		(uint64(w*DistrictsPerWarehouse+d)*orderSpace+uint64(o))*(maxOrderLines+1)+uint64(l))
}

// HistoryKey returns the key of the seq-th history row.
func HistoryKey(seq int) txn.Key { return txn.MakeKey(THistory, uint64(seq)) }

// TPCC generates the full TPC-C workload of Section 6.1: the standard
// five-transaction mix (NewOrder 45%, Payment 43%, OrderStatus 4%,
// Delivery 4%, StockLevel 4%), with insertions enabled in NewOrder and
// Payment, and the originally hard-coded cross-warehouse percentage
// exposed as the knob CrossPct (c%).
type TPCC struct {
	// Warehouses is #whn (paper range [20, 60], default 40).
	Warehouses int
	// CrossPct is c%, the fraction of NewOrder/Payment transactions
	// that touch a remote warehouse (paper range [0.15, 0.35], default
	// 0.25).
	CrossPct float64
	// Txns is the bundle size (paper default 10,000).
	Txns int
	// Items scales I_ID space (spec: 100k; default here 1,000 — a pure
	// scale knob).
	Items int
	// CustomersPerDistrict scales C_ID space (spec: 3,000; default
	// here 300).
	CustomersPerDistrict int
	// InitOrders is the number of pre-loaded orders per district, the
	// last initUndelivered of which start undelivered.
	InitOrders int
	// Seed drives generation.
	Seed int64
}

const initUndelivered = 10
const initOrderLines = 10

// DefaultTPCC returns the Table 1 defaults at test-friendly scale.
func DefaultTPCC() TPCC {
	return TPCC{
		Warehouses:           40,
		CrossPct:             0.25,
		Txns:                 10_000,
		Items:                1_000,
		CustomersPerDistrict: 300,
		InitOrders:           30,
	}
}

// orderInfo is the generator's record of an order, enough to derive
// the access sets of OrderStatus, Delivery and StockLevel
// deterministically.
type orderInfo struct {
	cid    int
	olCnt  int
	sum    uint64
	items  []int32
	remote int // supplying warehouse of remote lines, -1 if local
}

// gen carries generation state across transactions.
type gen struct {
	cfg     TPCC
	rng     *rand.Rand
	nextOID []int                 // per district
	dlvNext []int                 // per district: next undelivered order
	orders  map[txn.Key]orderInfo // OrderKey -> info
	// lastOrder tracks each customer's most recent order (OrderStatus
	// reads "the customer's last order" per the specification).
	lastOrder map[txn.Key]txn.Key // CustomerKey -> OrderKey
	history   int
}

// Build populates a fresh database with the TPC-C tables and initial
// rows, and returns the generated transaction bundle. IDs are dense in
// [0, Txns).
func (c TPCC) Build() (*storage.DB, txn.Workload) {
	db := c.BuildDB()
	return db, c.Generate()
}

// BuildDB creates and loads the nine TPC-C tables.
func (c TPCC) BuildDB() *storage.DB {
	c = c.withDefaults()
	db := storage.NewDB()
	wh := db.CreateTable(TWarehouse, "warehouse", 2)
	di := db.CreateTable(TDistrict, "district", 3)
	cu := db.CreateTable(TCustomer, "customer", 4)
	db.CreateTable(THistory, "history", 1)
	no := db.CreateTable(TNewOrder, "new_order", 1)
	or := db.CreateTable(TOrder, "orders", 3)
	ol := db.CreateTable(TOrderLine, "order_line", 4)
	it := db.CreateTable(TItem, "item", 1)
	st := db.CreateTable(TStock, "stock", 4)

	set := func(t *storage.Table, row uint64, vals ...uint64) {
		r, _ := t.Insert(row)
		tu := r.Load().Clone()
		copy(tu.Fields, vals)
		r.Install(tu)
	}
	for i := 0; i < c.Items; i++ {
		set(it, uint64(i), uint64(i%100)+1) // price
	}
	for w := 0; w < c.Warehouses; w++ {
		set(wh, uint64(w), 0, uint64(w%20)) // ytd, tax
		for i := 0; i < c.Items; i++ {
			set(st, StockKey(w, i, c.Items).Row(), 100, 0, 0, 0)
		}
		for d := 0; d < DistrictsPerWarehouse; d++ {
			set(di, DistrictKey(w, d).Row(), 0, uint64(c.InitOrders), uint64(d))
			for cu2 := 0; cu2 < c.CustomersPerDistrict; cu2++ {
				set(cu, CustomerKey(w, d, cu2, c.CustomersPerDistrict).Row(),
					InitialBalance, 0, 0, 0)
			}
			// Initial orders, the last initUndelivered pending.
			for o := 0; o < c.InitOrders; o++ {
				cid := o % c.CustomersPerDistrict
				set(or, OrderKey(w, d, o).Row(), uint64(cid), initOrderLines, 1)
				for l := 0; l < initOrderLines; l++ {
					item := (o*7 + l) % c.Items
					set(ol, OrderLineKey(w, d, o, l).Row(), 10, uint64(item), 1, 5)
				}
				if o >= c.InitOrders-initUndelivered {
					set(no, NewOrderKey(w, d, o).Row(), 1)
					// Pending orders have no carrier or delivery date.
					set(or, OrderKey(w, d, o).Row(), uint64(cid), initOrderLines, 0)
				}
			}
		}
	}
	return db
}

func (c TPCC) withDefaults() TPCC {
	d := DefaultTPCC()
	if c.Warehouses <= 0 {
		c.Warehouses = d.Warehouses
	}
	if c.Txns <= 0 {
		c.Txns = d.Txns
	}
	if c.Items <= 0 {
		c.Items = d.Items
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = d.CustomersPerDistrict
	}
	if c.InitOrders <= 0 {
		c.InitOrders = d.InitOrders
	}
	return c
}

// Generate produces the transaction bundle.
func (c TPCC) Generate() txn.Workload {
	c = c.withDefaults()
	nd := c.Warehouses * DistrictsPerWarehouse
	g := &gen{
		cfg:       c,
		rng:       rand.New(rand.NewSource(c.Seed)),
		nextOID:   make([]int, nd),
		dlvNext:   make([]int, nd),
		orders:    make(map[txn.Key]orderInfo),
		lastOrder: make(map[txn.Key]txn.Key),
	}
	for i := range g.nextOID {
		g.nextOID[i] = c.InitOrders
		g.dlvNext[i] = c.InitOrders - initUndelivered
	}
	// Register the pre-loaded pending orders so Delivery can target
	// them.
	for w := 0; w < c.Warehouses; w++ {
		for d := 0; d < DistrictsPerWarehouse; d++ {
			for o := 0; o < c.InitOrders; o++ {
				items := make([]int32, initOrderLines)
				var sum uint64
				for l := range items {
					items[l] = int32((o*7 + l) % c.Items)
					sum += 10
				}
				g.orders[OrderKey(w, d, o)] = orderInfo{
					cid: o % c.CustomersPerDistrict, olCnt: initOrderLines,
					sum: sum, items: items, remote: -1,
				}
			}
		}
	}

	w := make(txn.Workload, c.Txns)
	for i := range w {
		switch x := g.rng.Float64(); {
		case x < 0.45:
			w[i] = g.newOrder(i)
		case x < 0.88:
			w[i] = g.payment(i)
		case x < 0.92:
			w[i] = g.orderStatus(i)
		case x < 0.96:
			w[i] = g.delivery(i)
		default:
			w[i] = g.stockLevel(i)
		}
	}
	return w
}

func (g *gen) district() (w, d int) {
	return g.rng.Intn(g.cfg.Warehouses), g.rng.Intn(DistrictsPerWarehouse)
}

// lastNames returns the number of distinct customer last names per
// district: the spec has 3000 customers sharing 1000 names (three per
// name); the scaled ratio is preserved.
func (c TPCC) lastNames() int {
	n := c.CustomersPerDistrict / 3
	if n < 1 {
		n = 1
	}
	return n
}

// byLastName resolves a last name to its candidate customer ids within
// a district — deterministic from the name, exactly the property that
// keeps access sets derivable from parameters. Per the spec, the
// transaction examines all matching customers and operates on the
// midpoint one.
func (g *gen) byLastName(lname int) (candidates []int, mid int) {
	n := g.cfg.lastNames()
	for c := lname; c < g.cfg.CustomersPerDistrict; c += n {
		candidates = append(candidates, c)
	}
	return candidates, candidates[len(candidates)/2]
}

// newOrder builds a NewOrder transaction: read warehouse and customer,
// bump the district's next order id, read items and update stocks
// (remote warehouse stock for cross-warehouse transactions), and insert
// the order, new-order, and order-line rows.
func (g *gen) newOrder(id int) *txn.Transaction {
	c := g.cfg
	wh, d := g.district()
	dist := wh*DistrictsPerWarehouse + d
	cid := g.rng.Intn(c.CustomersPerDistrict)
	o := g.nextOID[dist]
	g.nextOID[dist]++
	cross := g.rng.Float64() < c.CrossPct

	t := txn.New(id)
	t.Template = "NewOrder"
	t.Params = []uint64{uint64(wh), uint64(d), uint64(o)}
	// Per the specification, ~1% of NewOrders hit an unused item id and
	// roll back after executing (rbk). The engine executes and aborts
	// them without retry.
	if g.rng.Float64() < 0.01 {
		t.UserAbort = true
	}
	t.R(WarehouseKey(wh))
	t.R(CustomerKey(wh, d, cid, c.CustomersPerDistrict))
	t.UF(DistrictKey(wh, d), DNextOID, 1)

	olCnt := 5 + g.rng.Intn(11)
	items := make([]int32, olCnt)
	var sum uint64
	remote := -1
	for l := 0; l < olCnt; l++ {
		item := g.rng.Intn(c.Items)
		items[l] = int32(item)
		supply := wh
		if cross && g.rng.Float64() < 0.5 && c.Warehouses > 1 {
			supply = g.rng.Intn(c.Warehouses - 1)
			if supply >= wh {
				supply++
			}
			remote = supply
		}
		qty := uint64(1 + g.rng.Intn(10))
		amount := qty * (uint64(item%100) + 1)
		sum += amount
		t.R(ItemKey(item))
		t.UF(StockKey(supply, item, c.Items), SQuantity, -qty) // wrapping decrement
		t.IF(OrderLineKey(wh, d, o, l), OLAmount, amount)
	}
	t.IF(OrderKey(wh, d, o), OCID, uint64(cid))
	t.IF(NewOrderKey(wh, d, o), NOPending, 1)
	g.orders[OrderKey(wh, d, o)] = orderInfo{cid: cid, olCnt: olCnt, sum: sum, items: items, remote: remote}
	if !t.UserAbort {
		g.lastOrder[CustomerKey(wh, d, cid, c.CustomersPerDistrict)] = OrderKey(wh, d, o)
	}
	return t
}

// payment builds a Payment transaction: add the amount to the
// warehouse and district YTDs, update the (possibly remote) customer,
// and insert a history row.
func (g *gen) payment(id int) *txn.Transaction {
	c := g.cfg
	wh, d := g.district()
	amount := uint64(1 + g.rng.Intn(5000))
	cw, cd := wh, d
	if g.rng.Float64() < c.CrossPct && c.Warehouses > 1 {
		cw = g.rng.Intn(c.Warehouses - 1)
		if cw >= wh {
			cw++
		}
		cd = g.rng.Intn(DistrictsPerWarehouse)
	}
	t := txn.New(id)
	t.Template = "Payment"
	t.UF(WarehouseKey(wh), WYTD, amount)
	t.UF(DistrictKey(wh, d), DYTD, amount)

	// Per the spec, 60% of Payments select the customer by last name:
	// read every matching customer, operate on the midpoint one.
	var cid int
	if g.rng.Float64() < 0.6 {
		lname := g.rng.Intn(c.lastNames())
		candidates, mid := g.byLastName(lname)
		for _, cand := range candidates {
			if cand != mid {
				t.R(CustomerKey(cw, cd, cand, c.CustomersPerDistrict))
			}
		}
		cid = mid
	} else {
		cid = g.rng.Intn(c.CustomersPerDistrict)
	}
	t.Params = []uint64{uint64(wh), uint64(d), uint64(cid)}
	ck := CustomerKey(cw, cd, cid, c.CustomersPerDistrict)
	t.UF(ck, CBalance, -amount) // wrapping subtraction
	t.UF(ck, CYTDPayment, amount)
	t.UF(ck, CPaymentCnt, 1)
	t.IF(HistoryKey(g.history), HAmount, amount)
	g.history++
	return t
}

// orderStatus builds the read-only OrderStatus transaction: read the
// customer and the district's most recent order with its lines.
func (g *gen) orderStatus(id int) *txn.Transaction {
	c := g.cfg
	wh, d := g.district()
	dist := wh*DistrictsPerWarehouse + d
	o := g.nextOID[dist] - 1

	t := txn.New(id)
	t.Template = "OrderStatus"
	// 60% by last name, as in Payment.
	var cid int
	if g.rng.Float64() < 0.6 {
		lname := g.rng.Intn(c.lastNames())
		candidates, mid := g.byLastName(lname)
		for _, cand := range candidates {
			if cand != mid {
				t.R(CustomerKey(wh, d, cand, c.CustomersPerDistrict))
			}
		}
		cid = mid
	} else {
		cid = g.rng.Intn(c.CustomersPerDistrict)
	}
	t.Params = []uint64{uint64(wh), uint64(d), uint64(cid)}
	ck := CustomerKey(wh, d, cid, c.CustomersPerDistrict)
	t.R(ck)
	// The customer's own last order when they have one in this bundle
	// or the load; otherwise the district's most recent order.
	ok := OrderKey(wh, d, o)
	if own, has := g.lastOrder[ck]; has {
		ok = own
	}
	t.R(ok)
	info := g.orders[ok]
	// Recover (w, d, o) from the key for the order-line reads.
	odist := int(ok.Row() / orderSpace)
	oid := int(ok.Row() % orderSpace)
	ow, od := odist/DistrictsPerWarehouse, odist%DistrictsPerWarehouse
	for l := 0; l < info.olCnt; l++ {
		t.R(OrderLineKey(ow, od, oid, l))
	}
	return t
}

// delivery builds a Delivery transaction: for every district of the
// warehouse, deliver the oldest undelivered order — clear its
// NEW-ORDER row, stamp the order and its lines, and credit the
// customer's balance.
func (g *gen) delivery(id int) *txn.Transaction {
	c := g.cfg
	wh := g.rng.Intn(c.Warehouses)
	carrier := uint64(1 + g.rng.Intn(10))

	t := txn.New(id)
	t.Template = "Delivery"
	t.Params = []uint64{uint64(wh)}
	for d := 0; d < DistrictsPerWarehouse; d++ {
		dist := wh*DistrictsPerWarehouse + d
		if g.dlvNext[dist] >= g.nextOID[dist] {
			continue // no undelivered order in this district
		}
		o := g.dlvNext[dist]
		g.dlvNext[dist]++
		info := g.orders[OrderKey(wh, d, o)]
		t.UF(NewOrderKey(wh, d, o), NOPending, ^uint64(0)) // wrapping -1: clear pending
		t.R(OrderKey(wh, d, o))
		t.WF(OrderKey(wh, d, o), OCarrier, carrier)
		for l := 0; l < info.olCnt; l++ {
			t.WF(OrderLineKey(wh, d, o, l), OLDelivery, 1)
		}
		ck := CustomerKey(wh, d, info.cid, c.CustomersPerDistrict)
		t.UF(ck, CBalance, info.sum)
		t.UF(ck, CDeliveryCnt, 1)
	}
	if len(t.Ops) == 0 {
		// Degenerate: nothing to deliver anywhere; read the warehouse
		// so the transaction is still well-formed.
		t.R(WarehouseKey(wh))
	}
	return t
}

// stockLevel builds the read-only StockLevel transaction: read the
// district and the stock rows of the items in its most recent orders.
func (g *gen) stockLevel(id int) *txn.Transaction {
	c := g.cfg
	wh, d := g.district()
	dist := wh*DistrictsPerWarehouse + d

	t := txn.New(id)
	t.Template = "StockLevel"
	t.Params = []uint64{uint64(wh), uint64(d)}
	t.R(DistrictKey(wh, d))
	const recentOrders = 5
	lo := g.nextOID[dist] - recentOrders
	if lo < 0 {
		lo = 0
	}
	for o := lo; o < g.nextOID[dist]; o++ {
		info := g.orders[OrderKey(wh, d, o)]
		for l := 0; l < info.olCnt; l++ {
			t.R(OrderLineKey(wh, d, o, l))
			t.R(StockKey(wh, int(info.items[l]), c.Items))
		}
	}
	return t
}
