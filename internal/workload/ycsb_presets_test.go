package workload

import (
	"testing"

	"tskd/internal/txn"
)

func TestYCSBPresets(t *testing.T) {
	shrink := func(c YCSB) YCSB {
		c.Records = 2000
		c.Txns = 200
		c.Seed = 4
		return c
	}
	t.Run("B", func(t *testing.T) {
		w := shrink(WorkloadB()).Generate()
		reads, writes := opMix(w)
		if frac := float64(reads) / float64(reads+writes); frac < 0.9 {
			t.Errorf("workload B read fraction %.2f", frac)
		}
	})
	t.Run("C", func(t *testing.T) {
		w := shrink(WorkloadC()).Generate()
		_, writes := opMix(w)
		if writes != 0 {
			t.Errorf("workload C has %d writes", writes)
		}
	})
	t.Run("E", func(t *testing.T) {
		w := shrink(WorkloadE()).Generate()
		scans := 0
		for _, tx := range w {
			if tx.HasScan() {
				scans++
			}
		}
		if frac := float64(scans) / float64(len(w)); frac < 0.85 {
			t.Errorf("workload E scan fraction %.2f", frac)
		}
	})
	t.Run("F", func(t *testing.T) {
		w := shrink(WorkloadF()).Generate()
		for _, tx := range w {
			for _, op := range tx.Ops {
				if op.Kind == txn.OpWrite {
					t.Fatal("workload F emitted a blind write")
				}
			}
		}
	})
}

func opMix(w txn.Workload) (reads, writes int) {
	for _, tx := range w {
		for _, op := range tx.Ops {
			if op.Kind == txn.OpRead {
				reads++
			} else {
				writes++
			}
		}
	}
	return
}
