package workload

import (
	"testing"
	"time"

	"tskd/internal/conflict"
	"tskd/internal/txn"
)

func smallYCSB(seed int64) YCSB {
	return YCSB{Records: 1000, Theta: 0.8, Txns: 200, OpsPerTxn: 16, ReadRatio: 0.5, Seed: seed}
}

func smallTPCC(seed int64) TPCC {
	return TPCC{
		Warehouses: 4, CrossPct: 0.25, Txns: 300,
		Items: 100, CustomersPerDistrict: 30, InitOrders: 15, Seed: seed,
	}
}

func TestYCSBGenerate(t *testing.T) {
	c := smallYCSB(1)
	w := c.Generate()
	if len(w) != 200 {
		t.Fatalf("generated %d txns", len(w))
	}
	reads, writes := 0, 0
	for i, tx := range w {
		if tx.ID != i {
			t.Fatalf("IDs not dense: %d at %d", tx.ID, i)
		}
		if tx.Template != "YCSB-A" {
			t.Errorf("template %q", tx.Template)
		}
		if len(tx.Ops) != 16 {
			t.Errorf("txn %d has %d ops", i, len(tx.Ops))
		}
		seen := map[txn.Key]bool{}
		for _, op := range tx.Ops {
			if op.Key.Table() != YCSBTable {
				t.Fatalf("op outside usertable: %v", op.Key)
			}
			if op.Key.Row() >= 1000 {
				t.Fatalf("key out of range: %v", op.Key)
			}
			seen[op.Key] = true
			if op.Kind == txn.OpRead {
				reads++
			} else {
				writes++
			}
		}
		if len(seen) < 14 { // near-distinct keys
			t.Errorf("txn %d reuses keys heavily: %d distinct", i, len(seen))
		}
	}
	frac := float64(reads) / float64(reads+writes)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("read fraction = %.3f, want ≈ 0.5", frac)
	}
}

func TestYCSBDeterministic(t *testing.T) {
	a, b := smallYCSB(7).Generate(), smallYCSB(7).Generate()
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("same seed diverged")
		}
	}
	c := smallYCSB(8).Generate()
	same := true
	for i := range a {
		if a[i].String() != c[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestYCSBBuildDB(t *testing.T) {
	c := smallYCSB(1)
	db := c.BuildDB()
	tbl := db.Table(YCSBTable)
	if tbl == nil || tbl.Len() != 1000 {
		t.Fatalf("usertable rows = %v", tbl)
	}
	if tbl.Get(42).Field(0) != 42 {
		t.Error("row not initialized")
	}
}

func TestYCSBSkewIncreasesConflicts(t *testing.T) {
	lo := YCSB{Records: 5000, Theta: 0.7, Txns: 300, OpsPerTxn: 16, ReadRatio: 0.5, Seed: 3}.Generate()
	hi := YCSB{Records: 5000, Theta: 0.9, Txns: 300, OpsPerTxn: 16, ReadRatio: 0.5, Seed: 3}.Generate()
	gl := conflict.Build(lo, conflict.Serializability)
	gh := conflict.Build(hi, conflict.Serializability)
	if gh.Edges() <= gl.Edges() {
		t.Errorf("theta 0.9 edges %d not above theta 0.7 edges %d", gh.Edges(), gl.Edges())
	}
}

func TestYCSBRMWMode(t *testing.T) {
	c := smallYCSB(1)
	c.RMW = true
	w := c.Generate()
	for _, tx := range w {
		for _, op := range tx.Ops {
			if op.Kind == txn.OpWrite {
				t.Fatal("RMW mode emitted a blind write")
			}
		}
	}
}

func TestTPCCBuildDB(t *testing.T) {
	c := smallTPCC(1)
	db := c.BuildDB()
	if db.Table(TWarehouse).Len() != 4 {
		t.Errorf("warehouses = %d", db.Table(TWarehouse).Len())
	}
	if db.Table(TDistrict).Len() != 40 {
		t.Errorf("districts = %d", db.Table(TDistrict).Len())
	}
	if db.Table(TCustomer).Len() != 4*10*30 {
		t.Errorf("customers = %d", db.Table(TCustomer).Len())
	}
	if db.Table(TStock).Len() != 4*100 {
		t.Errorf("stock = %d", db.Table(TStock).Len())
	}
	if db.Table(TOrder).Len() != 40*15 {
		t.Errorf("orders = %d", db.Table(TOrder).Len())
	}
	// Initial pending orders have NEW-ORDER rows.
	if db.Table(TNewOrder).Len() != 40*initUndelivered {
		t.Errorf("new_order = %d", db.Table(TNewOrder).Len())
	}
	// Customer balances initialized.
	if db.Resolve(CustomerKey(0, 0, 0, 30)).Field(CBalance) != InitialBalance {
		t.Error("customer balance not initialized")
	}
	// District next_o_id initialized to InitOrders.
	if db.Resolve(DistrictKey(1, 2)).Field(DNextOID) != 15 {
		t.Error("district next_o_id wrong")
	}
}

func TestTPCCGenerateMix(t *testing.T) {
	c := smallTPCC(2)
	c.Txns = 3000
	w := c.Generate()
	counts := map[string]int{}
	for i, tx := range w {
		if tx.ID != i {
			t.Fatalf("IDs not dense")
		}
		counts[tx.Template]++
		if len(tx.Ops) == 0 {
			t.Fatalf("empty transaction %d (%s)", i, tx.Template)
		}
	}
	frac := func(s string) float64 { return float64(counts[s]) / float64(len(w)) }
	if f := frac("NewOrder"); f < 0.40 || f > 0.50 {
		t.Errorf("NewOrder fraction %.3f", f)
	}
	if f := frac("Payment"); f < 0.38 || f > 0.48 {
		t.Errorf("Payment fraction %.3f", f)
	}
	for _, s := range []string{"OrderStatus", "Delivery", "StockLevel"} {
		if f := frac(s); f < 0.02 || f > 0.07 {
			t.Errorf("%s fraction %.3f", s, f)
		}
	}
}

func TestTPCCNewOrderShape(t *testing.T) {
	c := smallTPCC(3)
	w := c.Generate()
	for _, tx := range w {
		if tx.Template != "NewOrder" {
			continue
		}
		hasDistrict, hasOrderInsert, hasNOInsert, stocks := false, false, false, 0
		for _, op := range tx.Ops {
			switch op.Key.Table() {
			case TDistrict:
				if op.Kind == txn.OpUpdate && op.Field == DNextOID {
					hasDistrict = true
				}
			case TOrder:
				if op.Kind == txn.OpInsert {
					hasOrderInsert = true
				}
			case TNewOrder:
				if op.Kind == txn.OpInsert {
					hasNOInsert = true
				}
			case TStock:
				if op.Kind == txn.OpUpdate {
					stocks++
				}
			}
		}
		if !hasDistrict || !hasOrderInsert || !hasNOInsert {
			t.Fatalf("NewOrder %d malformed: district=%v order=%v neworder=%v",
				tx.ID, hasDistrict, hasOrderInsert, hasNOInsert)
		}
		if stocks < 5 || stocks > 15 {
			t.Fatalf("NewOrder %d has %d stock updates", tx.ID, stocks)
		}
	}
}

func TestTPCCPaymentShape(t *testing.T) {
	c := smallTPCC(4)
	w := c.Generate()
	histKeys := map[txn.Key]bool{}
	for _, tx := range w {
		if tx.Template != "Payment" {
			continue
		}
		var wAmt, dAmt, hAmt uint64
		for _, op := range tx.Ops {
			switch {
			case op.Key.Table() == TWarehouse && op.Field == WYTD:
				wAmt = op.Arg
			case op.Key.Table() == TDistrict && op.Field == DYTD:
				dAmt = op.Arg
			case op.Key.Table() == THistory:
				hAmt = op.Arg
				if histKeys[op.Key] {
					t.Fatalf("history key %v reused", op.Key)
				}
				histKeys[op.Key] = true
			}
		}
		if wAmt == 0 || wAmt != dAmt || wAmt != hAmt {
			t.Fatalf("Payment %d amounts inconsistent: w=%d d=%d h=%d", tx.ID, wAmt, dAmt, hAmt)
		}
	}
}

func TestTPCCDeliveryTargetsPending(t *testing.T) {
	c := smallTPCC(5)
	c.Txns = 2000
	w := c.Generate()
	// Every Delivery must touch NEW-ORDER rows and credit customers.
	found := false
	for _, tx := range w {
		if tx.Template != "Delivery" {
			continue
		}
		noOps, custOps := 0, 0
		for _, op := range tx.Ops {
			switch op.Key.Table() {
			case TNewOrder:
				noOps++
			case TCustomer:
				custOps++
			}
		}
		if noOps > 0 {
			found = true
			if custOps == 0 {
				t.Fatalf("Delivery %d clears orders without crediting customers", tx.ID)
			}
		}
	}
	if !found {
		t.Error("no Delivery transaction delivered anything")
	}
}

func TestTPCCCrossPctDrivesCrossWarehouseAccess(t *testing.T) {
	count := func(cross float64) int {
		c := smallTPCC(6)
		c.CrossPct = cross
		c.Txns = 2000
		n := 0
		for _, tx := range c.Generate() {
			if tx.Template != "Payment" && tx.Template != "NewOrder" {
				continue
			}
			home := tx.Params[0]
			for _, op := range tx.Ops {
				var w uint64
				switch op.Key.Table() {
				case TStock:
					w = op.Key.Row() / uint64(c.Items)
				case TCustomer:
					w = op.Key.Row() / uint64(DistrictsPerWarehouse*c.CustomersPerDistrict)
				default:
					continue
				}
				if w != home {
					n++
					break
				}
			}
		}
		return n
	}
	lo, hi := count(0.0), count(0.5)
	if lo != 0 {
		t.Errorf("c%%=0 produced %d cross-warehouse transactions", lo)
	}
	if hi < 200 {
		t.Errorf("c%%=0.5 produced only %d cross-warehouse transactions", hi)
	}
}

func TestTPCCAccessSetsDeriveFromParams(t *testing.T) {
	// Same seed → same transactions, including access sets: the
	// stored-procedure property TsPAR depends on.
	a := smallTPCC(7).Generate()
	b := smallTPCC(7).Generate()
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestApplySkew(t *testing.T) {
	w := smallYCSB(1).Generate()
	s := RuntimeSkew{MinT: 0.5, P: 48, ThetaT: 0.8}
	avg := 100 * time.Microsecond
	ApplySkew(w, s, avg, 1)
	lo := time.Duration(0.5 * float64(avg))
	hi := time.Duration(48 * 0.5 * float64(avg))
	short, long := 0, 0
	for _, tx := range w {
		if tx.MinRuntime < lo || tx.MinRuntime > hi {
			t.Fatalf("MinRuntime %v outside [%v,%v]", tx.MinRuntime, lo, hi)
		}
		if tx.MinRuntime < 2*lo {
			short++
		}
		if tx.MinRuntime > hi/2 {
			long++
		}
	}
	if short < len(w)/4 {
		t.Errorf("only %d/%d short transactions; zipf should concentrate at the bottom", short, len(w))
	}
	if long == 0 {
		t.Error("no long-tail transactions at all")
	}
}

func TestApplySkewDisabled(t *testing.T) {
	w := smallYCSB(1).Generate()
	ApplySkew(w, RuntimeSkew{}, time.Millisecond, 1)
	for _, tx := range w {
		if tx.MinRuntime != 0 {
			t.Fatal("disabled skew set MinRuntime")
		}
	}
}

func TestApplyIO(t *testing.T) {
	w := smallYCSB(2).Generate()
	io := IOLatency{LIO: 50, ThetaIO: 1.2, MinIO: time.Microsecond}
	ApplyIO(w, io, 1)
	hi := 50 * time.Microsecond
	zero, tail := 0, 0
	for _, tx := range w {
		if tx.IODelay < 0 || tx.IODelay > hi {
			t.Fatalf("IODelay %v outside [0,%v]", tx.IODelay, hi)
		}
		if tx.IODelay == 0 {
			zero++
		}
		if tx.IODelay > hi/2 {
			tail++
		}
	}
	if zero < len(w)/8 {
		t.Errorf("only %d zero-delay transactions; rank 0 should be the mode", zero)
	}
	_ = tail
}

func TestApplyIODisabled(t *testing.T) {
	w := smallYCSB(2).Generate()
	ApplyIO(w, IOLatency{LIO: 0, MinIO: time.Microsecond}, 1)
	for _, tx := range w {
		if tx.IODelay != 0 {
			t.Fatal("disabled IO set IODelay")
		}
	}
}

func TestLargerThetaIOShortensTail(t *testing.T) {
	mean := func(theta float64) time.Duration {
		w := smallYCSB(3).Generate()
		ApplyIO(w, IOLatency{LIO: 50, ThetaIO: theta, MinIO: time.Microsecond}, 9)
		var sum time.Duration
		for _, tx := range w {
			sum += tx.IODelay
		}
		return sum / time.Duration(len(w))
	}
	if mean(1.6) >= mean(0.8) {
		t.Errorf("theta_IO=1.6 mean delay %v not below theta_IO=0.8 %v", mean(1.6), mean(0.8))
	}
}

func TestSafeTheta(t *testing.T) {
	if safeTheta(1) == 1 || safeTheta(0) <= 0 || safeTheta(0.9) != 0.9 {
		t.Error("safeTheta wrong")
	}
}

func TestKeyEncodersDisjoint(t *testing.T) {
	// Sanity: key spaces of different tables never collide, and
	// order/orderline/neworder encodings are injective for plausible
	// ranges.
	seen := map[txn.Key]string{}
	add := func(k txn.Key, what string) {
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision: %s and %s -> %v", prev, what, k)
		}
		seen[k] = what
	}
	for w := 0; w < 3; w++ {
		add(WarehouseKey(w), "wh")
		for d := 0; d < DistrictsPerWarehouse; d++ {
			add(DistrictKey(w, d), "d")
			for o := 0; o < 5; o++ {
				add(OrderKey(w, d, o), "o")
				add(NewOrderKey(w, d, o), "no")
				for l := 0; l < maxOrderLines; l++ {
					add(OrderLineKey(w, d, o, l), "ol")
				}
			}
		}
	}
}
