package workload

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"tskd/internal/txn"
)

// traceRecord is the serialized form of one transaction. Using a
// dedicated record type (rather than gob-encoding txn.Transaction
// directly) keeps the trace format stable against internal changes to
// the transaction struct.
type traceRecord struct {
	ID         int
	Template   string
	Params     []uint64
	Ops        []traceOp
	MinRuntime int64 // nanoseconds
	IODelay    int64 // nanoseconds
}

type traceOp struct {
	Kind  uint8
	Key   uint64
	Arg   uint64
	Field uint8
}

// traceHeader versions the format.
type traceHeader struct {
	Magic   string
	Version int
	Count   int
}

const traceMagic = "tskd-trace"

// SaveTrace writes the workload to w in a stable binary format, so
// generated bundles can be replayed across runs and machines (the
// bundled-workload model assumes the batch is known ahead of time —
// a trace file is its natural serialization).
func SaveTrace(out io.Writer, w txn.Workload) error {
	bw := bufio.NewWriter(out)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Magic: traceMagic, Version: 1, Count: len(w)}); err != nil {
		return fmt.Errorf("workload: encoding trace header: %w", err)
	}
	for _, t := range w {
		rec := traceRecord{
			ID:         t.ID,
			Template:   t.Template,
			Params:     t.Params,
			Ops:        make([]traceOp, len(t.Ops)),
			MinRuntime: int64(t.MinRuntime),
			IODelay:    int64(t.IODelay),
		}
		for i, op := range t.Ops {
			rec.Ops[i] = traceOp{Kind: uint8(op.Kind), Key: uint64(op.Key), Arg: op.Arg, Field: op.Field}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: encoding transaction %d: %w", t.ID, err)
		}
	}
	return bw.Flush()
}

// LoadTrace reads a workload written by SaveTrace.
func LoadTrace(in io.Reader) (txn.Workload, error) {
	dec := gob.NewDecoder(bufio.NewReader(in))
	var h traceHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("workload: decoding trace header: %w", err)
	}
	if h.Magic != traceMagic {
		return nil, fmt.Errorf("workload: not a tskd trace (magic %q)", h.Magic)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("workload: unsupported trace version %d", h.Version)
	}
	w := make(txn.Workload, 0, h.Count)
	for i := 0; i < h.Count; i++ {
		var rec traceRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("workload: decoding transaction %d: %w", i, err)
		}
		t := &txn.Transaction{
			ID:         rec.ID,
			Template:   rec.Template,
			Params:     rec.Params,
			MinRuntime: time.Duration(rec.MinRuntime),
			IODelay:    time.Duration(rec.IODelay),
		}
		t.Ops = make([]txn.Op, len(rec.Ops))
		for j, op := range rec.Ops {
			t.Ops[j] = txn.Op{Kind: txn.OpKind(op.Kind), Key: txn.Key(op.Key), Arg: op.Arg, Field: op.Field}
		}
		w = append(w, t)
	}
	return w, nil
}
