package workload

import (
	"fmt"

	"tskd/internal/storage"
)

// CheckTPCC runs the TPC-C consistency conditions this schema supports
// against a database after execution:
//
//  1. For every warehouse, W_YTD equals the sum of its districts'
//     D_YTD (TPC-C consistency condition 1).
//  2. The sum of all HISTORY amounts equals the sum of all W_YTD
//     (every payment is recorded exactly once).
//  3. Every district's D_NEXT_O_ID never decreased below its load
//     value (order ids are never reused).
//
// It returns the first violation found, or nil.
func CheckTPCC(db *storage.DB, cfg TPCC) error {
	cfg = cfg.withDefaults()
	var wSum uint64
	for w := 0; w < cfg.Warehouses; w++ {
		row := db.Resolve(WarehouseKey(w))
		if row == nil {
			return fmt.Errorf("tpcc: warehouse %d missing", w)
		}
		wytd := row.Field(WYTD)
		var dSum uint64
		for d := 0; d < DistrictsPerWarehouse; d++ {
			dr := db.Resolve(DistrictKey(w, d))
			if dr == nil {
				return fmt.Errorf("tpcc: district (%d,%d) missing", w, d)
			}
			dSum += dr.Field(DYTD)
			if next := dr.Field(DNextOID); next < uint64(cfg.InitOrders) {
				return fmt.Errorf("tpcc: district (%d,%d) D_NEXT_O_ID %d below load value %d",
					w, d, next, cfg.InitOrders)
			}
		}
		if wytd != dSum {
			return fmt.Errorf("tpcc: warehouse %d: W_YTD %d != sum D_YTD %d", w, wytd, dSum)
		}
		wSum += wytd
	}
	var hSum uint64
	db.Table(THistory).Range(func(r *storage.Row) bool {
		hSum += r.Field(HAmount)
		return true
	})
	if hSum != wSum {
		return fmt.Errorf("tpcc: sum(history) %d != sum(W_YTD) %d", hSum, wSum)
	}
	return nil
}
