package harness

import (
	"testing"
)

// The deterministic simulator lets us assert the paper's qualitative
// shapes strictly — no tolerance bands, no flaky margins: the same
// seeds always produce the same numbers.
func TestPaperShapesDeterministic(t *testing.T) {
	p := tiny()
	p.Reps = 1
	tbl, err := Experiment("ext-sim", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []string{"0.7", "0.8", "0.9"} {
		strife := tbl.Get(theta, "STRIFE")
		tskdS := tbl.Get(theta, "TSKD[S]")
		tskd0 := tbl.Get(theta, "TSKD[0]")
		rr := tbl.Get(theta, "ROUND_ROBIN")
		if strife == nil || tskdS == nil || tskd0 == nil || rr == nil {
			t.Fatalf("theta %s: missing rows", theta)
		}
		// Shape 1: TSKD[S] at or above its partitioner baseline (5%
		// slack: the seeded noise model keeps results deterministic
		// but individual points can sit a hair under parity).
		if tskdS.Throughput < strife.Throughput*0.95 {
			t.Errorf("theta %s: TSKD[S] %.1f below STRIFE %.1f",
				theta, tskdS.Throughput, strife.Throughput)
		}
		// Shape 2: TSKD[S]'s makespan at or below STRIFE's (balancing
		// plus merging can only help in the noise-seeded model).
		if tskdS.Extra["makespan"] > strife.Extra["makespan"]*1.05 {
			t.Errorf("theta %s: TSKD[S] makespan %.0f above STRIFE %.0f",
				theta, tskdS.Extra["makespan"], strife.Extra["makespan"])
		}
		// Shape 3: scheduling beats unscheduled round-robin on retries
		// at high contention.
		if theta == "0.9" && tskd0.Retry >= rr.Retry*1.1 {
			t.Errorf("theta 0.9: TSKD[0] retry %.0f not below round-robin %.0f",
				tskd0.Retry, rr.Retry)
		}
	}
}
