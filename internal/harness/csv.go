package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV emits the table as CSV (one row per measurement, extra
// columns expanded), for plotting pipelines.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	extraCols := map[string]bool{}
	for _, r := range t.Rows {
		for k := range r.Extra {
			extraCols[k] = true
		}
	}
	cols := make([]string, 0, len(extraCols))
	for k := range extraCols {
		cols = append(cols, k)
	}
	sort.Strings(cols)

	header := append([]string{"experiment", t.XLabel, "system", "throughput", "retry_per_100k"}, cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{t.ID, r.X, r.System,
			fmt.Sprintf("%.3f", r.Throughput), fmt.Sprintf("%.3f", r.Retry)}
		for _, c := range cols {
			if v, ok := r.Extra[c]; ok {
				rec = append(rec, fmt.Sprintf("%.6f", v))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
