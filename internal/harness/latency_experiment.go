package harness

import (
	"fmt"
	"time"

	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

func init() {
	experiments["ext-latency"] = extLatency
	experiments["ext-adaptive"] = extAdaptive
}

// extLatency reports commit-latency percentiles per system: deferment
// trades per-transaction latency (deferred transactions wait) for
// fewer retries (retried transactions re-pay their whole runtime), so
// the tails tell the story throughput averages hide.
func extLatency(p Params) (*Table, error) {
	t := &Table{ID: "ext-latency", Title: "Commit-latency percentiles (virtual time, YCSB)",
		XLabel: "system", Shape: "TSKD trims the P99 retry tail at similar P50"}
	runners := []runner{
		{"DBCC", core.RunCC},
		{"TSKD[CC]", core.RunTSKDCC},
	}
	for _, r := range runners {
		db, w := p.build(ycsb)
		o := p.options()
		res, err := r.run(db, w, o)
		if err != nil {
			return nil, err
		}
		t.Add(Row{
			X: r.name, System: r.name,
			Throughput: res.VThroughput(),
			Retry:      res.RetryPer100k(),
			Extra: map[string]float64{
				"p50_us": float64(res.LatencyP50) / float64(time.Microsecond),
				"p95_us": float64(res.LatencyP95) / float64(time.Microsecond),
				"p99_us": float64(res.LatencyP99) / float64(time.Microsecond),
			},
		})
	}
	return t, nil
}

// extAdaptive compares fixed deferp settings against the online
// adaptive controller under low and high contention — the knob's
// raison d'être per Section 5 ("deferp% allows TsDEFER to adapt to
// varying contention levels").
func extAdaptive(p Params) (*Table, error) {
	t := &Table{ID: "ext-adaptive", Title: "Fixed deferp vs adaptive controller, varying contention (YCSB)",
		XLabel: "theta", Shape: "adaptive tracks the better fixed setting at each contention level"}
	variants := []struct {
		name     string
		deferP   float64
		adaptive bool
	}{
		{"deferp=0.2", 0.2, false},
		{"deferp=0.9", 0.9, false},
		{"adaptive", 0.6, true},
	}
	run := func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
		return core.RunTSKDCC(db, w, o)
	}
	for _, th := range []float64{0.7, 0.9} {
		q := p
		q.Theta = th
		for _, v := range variants {
			db, w := q.build(ycsb)
			o := q.options()
			o.Defer = &engine.DeferConfig{
				Lookups: q.Lookups, DeferP: v.deferP, Horizon: 1,
				Alpha: 1, MaxDefers: 8, Exact: true, Adaptive: v.adaptive,
			}
			res, err := run(db, w, o)
			if err != nil {
				return nil, err
			}
			t.Add(Row{
				X: fmt.Sprintf("%.1f", th), System: v.name,
				Throughput: res.VThroughput(),
				Retry:      res.RetryPer100k(),
				Extra:      map[string]float64{"defers": float64(res.Defers)},
			})
		}
	}
	return t, nil
}
