// Package harness drives the paper's experimental study (Section 6):
// it regenerates every figure and table as a parameter sweep over the
// systems under test, producing printable tables of throughput and
// #retry. Experiment ids follow the paper ("fig4a" ... "fig6",
// "tab2", "overhead") plus the ablation studies listed in DESIGN.md.
package harness

import (
	"time"

	"tskd/internal/workload"
)

// Params carries the Table 1 knobs plus the reproduction's scale
// knobs. The zero value is not useful; start from Default or Quick.
type Params struct {
	// --- Table 1: workload parameters ---

	// CPct is c%, the TPC-C cross-warehouse fraction.
	CPct float64
	// Whn is the number of TPC-C warehouses.
	Whn int
	// Theta is the YCSB Zipf skew.
	Theta float64

	// --- Table 1: system parameters ---

	// Cores is #core.
	Cores int
	// CC is the protocol name.
	CC string

	// --- Table 1: runtime skew and I/O latency ---

	// MinT, P, ThetaT configure the runtime lower bounds.
	MinT   float64
	P      int
	ThetaT float64
	// LIO, ThetaIO configure commit-time I/O latency (LIO = 0
	// disables, as the paper's default).
	LIO     int
	ThetaIO float64

	// --- Table 1: TsDEFER parameters ---

	Lookups int
	DeferP  float64

	// --- reproduction scale knobs ---

	// Bundle is the transactions per bundle.
	Bundle int
	// YCSBRecords is the user table size (paper: 20M).
	YCSBRecords int
	// TPCCItems and TPCCCustomers scale the TPC-C row counts.
	TPCCItems     int
	TPCCCustomers int
	// OpTime is the simulated per-op work.
	OpTime time.Duration
	// MinIO is the I/O latency unit (paper: 5000 cycles ≈ 1/6 of a
	// transaction).
	MinIO time.Duration
	// Seed drives everything.
	Seed int64
	// Alpha is the access-set accuracy for TsDEFER (Fig. 5h).
	Alpha float64
	// Reps is how many times each point is measured; the reported row
	// is the average (the paper runs each experiment 3 times).
	Reps int
}

// Default returns the paper's Table 1 defaults at a scale suitable for
// a full benchmark run on one machine.
func Default() Params {
	return Params{
		CPct: 0.25, Whn: 40, Theta: 0.8,
		Cores: 20, CC: "OCC",
		MinT: 0.5, P: 48, ThetaT: 0.8,
		LIO: 0, ThetaIO: 1.2,
		Lookups: 2, DeferP: 0.6,
		Bundle:      10_000,
		YCSBRecords: 2_000_000,
		TPCCItems:   1_000, TPCCCustomers: 300,
		OpTime: 2 * time.Microsecond,
		MinIO:  3 * time.Microsecond,
		Seed:   1, Alpha: 1, Reps: 3,
	}
}

// Mid returns an intermediate preset: large enough for stable
// comparisons on one machine, small enough that the full experiment
// suite finishes in minutes. EXPERIMENTS.md records results at this
// scale.
func Mid() Params {
	p := Default()
	p.Cores = 16
	p.Whn = 16
	p.Bundle = 2_000
	p.YCSBRecords = 600_000
	p.TPCCItems = 400
	p.TPCCCustomers = 120
	p.OpTime = time.Microsecond
	p.Reps = 3
	return p
}

// Quick returns a reduced-scale preset for smoke tests and CI: same
// defaults, two orders of magnitude smaller.
func Quick() Params {
	p := Default()
	p.Cores = 8
	p.Whn = 8
	p.Bundle = 600
	p.YCSBRecords = 200_000
	p.TPCCItems = 200
	p.TPCCCustomers = 50
	p.OpTime = time.Microsecond
	p.Reps = 3
	return p
}

// avgRuntime estimates the average transaction wall time for the skew
// extension, from the average op count of the generated bundle.
func (p Params) avgRuntime(avgOps float64) time.Duration {
	op := p.OpTime
	if op <= 0 {
		op = time.Microsecond
	}
	return time.Duration(avgOps * float64(op))
}

// skew returns the runtime-skew extension settings.
func (p Params) skew() workload.RuntimeSkew {
	return workload.RuntimeSkew{MinT: p.MinT, P: p.P, ThetaT: p.ThetaT}
}

// io returns the I/O latency extension settings.
func (p Params) io() workload.IOLatency {
	return workload.IOLatency{LIO: p.LIO, ThetaIO: p.ThetaIO, MinIO: p.MinIO}
}
