package harness

import (
	"encoding/json"
	"io"
)

// jsonRow is the machine-readable form of one measurement, mirroring
// the CSV columns.
type jsonRow struct {
	X          string             `json:"x"`
	System     string             `json:"system"`
	Throughput float64            `json:"throughput"`
	Retry      float64            `json:"retry_per_100k"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// jsonTable is the document WriteJSON emits.
type jsonTable struct {
	Experiment string    `json:"experiment"`
	Title      string    `json:"title"`
	XLabel     string    `json:"xlabel"`
	Shape      string    `json:"shape,omitempty"`
	Rows       []jsonRow `json:"rows"`
}

// WriteJSON emits the table as an indented JSON document (one object
// with a rows array), the machine-readable sibling of WriteCSV — for
// recording BENCH_*.json perf trajectories across PRs.
func (t *Table) WriteJSON(w io.Writer) error {
	doc := jsonTable{
		Experiment: t.ID,
		Title:      t.Title,
		XLabel:     t.XLabel,
		Shape:      t.Shape,
		Rows:       make([]jsonRow, 0, len(t.Rows)),
	}
	for _, r := range t.Rows {
		doc.Rows = append(doc.Rows, jsonRow{
			X: r.X, System: r.System,
			Throughput: r.Throughput, Retry: r.Retry,
			Extra: r.Extra,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
