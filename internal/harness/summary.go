package harness

import (
	"fmt"
	"io"
)

// Summary condenses a set of experiment tables into the paper-style
// headline numbers: mean and max throughput improvement of each TSKD
// instance over its baseline across all sweep points where both
// appear (the "+131% on average, up to +294%" form of Section 6).
type Summary struct {
	rows []summaryRow
}

type summaryRow struct {
	pair        string
	experiments int
	points      int
	mean, max   float64
}

// pairs lists the TSKD-vs-baseline comparisons the paper headlines.
var summaryPairs = [][2]string{
	{"TSKD[S]", "STRIFE"},
	{"TSKD[C]", "SCHISM"},
	{"TSKD[H]", "HORTICULTURE"},
	{"TSKD[CC]", "DBCC"},
}

// Summarize folds experiment tables into headline gains.
func Summarize(tables []*Table) *Summary {
	s := &Summary{}
	for _, pr := range summaryPairs {
		row := summaryRow{pair: fmt.Sprintf("%s vs %s", pr[0], pr[1]), max: 0}
		var sum float64
		for _, t := range tables {
			used := false
			for _, x := range t.xValues() {
				a, b := t.Get(x, pr[0]), t.Get(x, pr[1])
				if a == nil || b == nil || b.Throughput <= 0 {
					continue
				}
				g := a.Throughput/b.Throughput - 1
				sum += g
				row.points++
				if g > row.max {
					row.max = g
				}
				used = true
			}
			if used {
				row.experiments++
			}
		}
		if row.points > 0 {
			row.mean = sum / float64(row.points)
			s.rows = append(s.rows, row)
		}
	}
	return s
}

// Print writes the summary table.
func (s *Summary) Print(w io.Writer) {
	if len(s.rows) == 0 {
		fmt.Fprintln(w, "(no comparable system pairs measured)")
		return
	}
	fmt.Fprintln(w, "== headline gains (throughput, across all sweep points) ==")
	fmt.Fprintf(w, "%-26s %6s %8s %10s %10s\n", "comparison", "exps", "points", "mean", "max")
	for _, r := range s.rows {
		fmt.Fprintf(w, "%-26s %6d %8d %+9.1f%% %+9.1f%%\n",
			r.pair, r.experiments, r.points, 100*r.mean, 100*r.max)
	}
}

// Gain returns the mean gain for a comparison pair like
// "TSKD[S] vs STRIFE", and whether it was measured.
func (s *Summary) Gain(pair string) (float64, bool) {
	for _, r := range s.rows {
		if r.pair == pair {
			return r.mean, true
		}
	}
	return 0, false
}
