package harness

import (
	"fmt"
	"strings"
)

// SystemNames lists the systems RunSystem accepts.
func SystemNames() []string {
	return []string{
		"STRIFE", "TSKD[S]", "SCHISM", "TSKD[C]", "HORTICULTURE", "TSKD[H]",
		"TSKD[0]", "DBCC", "TSKD[CC]",
	}
}

// BenchNames lists the benchmarks RunSystem accepts.
func BenchNames() []string { return []string{"ycsb", "tpcc"} }

// RunSystem executes a single system on a single benchmark with the
// given parameters and returns a one-row table. It powers the
// tskd-run CLI.
func RunSystem(system, benchName string, p Params) (*Table, error) {
	var b bench
	switch strings.ToLower(benchName) {
	case "ycsb":
		b = ycsb
	case "tpcc", "tpc-c":
		b = tpcc
	default:
		return nil, fmt.Errorf("harness: unknown benchmark %q (want ycsb or tpcc)", benchName)
	}
	var selected *runner
	for _, r := range append(partitionedRunners(p.Seed), ccRunners()...) {
		if strings.EqualFold(r.name, system) {
			r := r
			selected = &r
			break
		}
	}
	if selected == nil {
		return nil, fmt.Errorf("harness: unknown system %q (known: %v)", system, SystemNames())
	}
	t := &Table{ID: "run", Title: fmt.Sprintf("%s on %s", selected.name, b), XLabel: "bench"}
	if err := p.runAll(t, b, b.String(), []runner{*selected}); err != nil {
		return nil, err
	}
	return t, nil
}
