package harness

import (
	"fmt"

	"tskd/internal/core"
)

func init() {
	experiments["ext-fig5-tpcc"] = extFig5TPCC
	experiments["ext-templates"] = extTemplates
	experiments["ext-stream"] = extStream
}

// extFig5TPCC is the TPC-C counterpart of Fig. 5a, which the paper
// omits with "the results over TPC-C are similar": TSKD[CC] vs DBCC
// over the cross-warehouse contention knob c%.
func extFig5TPCC(p Params) (*Table, error) {
	t := &Table{ID: "ext-fig5-tpcc", Title: "TPC-C: TSKD[CC] vs DBCC, varying c% (the sweep Fig. 5 omits)",
		XLabel: "c%", Shape: "TsDEFER gains grow with cross-warehouse contention"}
	for _, c := range []float64{0.15, 0.25, 0.35} {
		q := p
		q.CPct = c
		if err := q.runAll(t, tpcc, fmt.Sprintf("%.0f%%", c*100), ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// extTemplates breaks TPC-C down per transaction type: where the
// retries live (NewOrder/Payment contend on districts and warehouses;
// OrderStatus/StockLevel are read-only and should almost never abort).
func extTemplates(p Params) (*Table, error) {
	t := &Table{ID: "ext-templates", Title: "TPC-C per-transaction-type breakdown (DBCC vs TSKD[CC])",
		XLabel: "template", Shape: "retries concentrate in NewOrder/Payment; read-only types rarely abort"}
	for _, r := range ccRunners() {
		db, w := p.build(tpcc)
		res, err := r.run(db, w, p.options())
		if err != nil {
			return nil, err
		}
		for name, tm := range res.PerTemplate {
			retry := 0.0
			if tm.Committed > 0 {
				retry = float64(tm.Retries) * 100_000 / float64(tm.Committed)
			}
			t.Add(Row{
				X: name, System: r.name,
				Throughput: float64(tm.Committed),
				Retry:      retry,
			})
		}
	}
	return t, nil
}

// extStream runs the open-system arrival model (Section 2.1's
// "periodically flushed" unbundled path) across flush sizes: smaller
// flushes mean fresher buffers but more barrier overhead.
func extStream(p Params) (*Table, error) {
	t := &Table{ID: "ext-stream", Title: "Open-system arrival batching: flush size sweep (YCSB, TSKD[CC])",
		XLabel: "flush", Shape: "throughput grows with flush size, saturating once buffers cover the workers"}
	for _, flush := range []int{64, 256, 1024} {
		for _, enableDefer := range []bool{false, true} {
			db, w := p.build(ycsb)
			o := p.options()
			name := "DBCC"
			if !enableDefer {
				o.Defer = nil
			} else {
				name = "TSKD[CC]"
			}
			res, err := core.RunStream(db, w, flush, o)
			if err != nil {
				return nil, err
			}
			t.Add(Row{
				X: fmt.Sprintf("%d", flush), System: name,
				Throughput: res.VThroughput(),
				Retry:      res.RetryPer100k(),
				Extra:      map[string]float64{"flushes": float64(res.Flushes)},
			})
		}
	}
	return t, nil
}
