package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Row is one measured data point: system × sweep value.
type Row struct {
	// X is the sweep value (formatted).
	X string
	// System is the system under test.
	System string
	// Throughput is committed transactions per second.
	Throughput float64
	// Retry is #retry per 100k transactions.
	Retry float64
	// Extra carries experiment-specific columns (s%, overheadR, load
	// ratio, defers, contended, makespan).
	Extra map[string]float64
}

// Table is the result of one experiment.
type Table struct {
	// ID is the experiment id (e.g. "fig4a").
	ID string
	// Title describes the experiment.
	Title string
	// XLabel names the sweep parameter.
	XLabel string
	// Shape states the paper's qualitative expectation for this
	// experiment, printed alongside the data.
	Shape string
	// Rows are the measurements, in sweep order.
	Rows []Row
}

// Add appends a row.
func (t *Table) Add(r Row) { t.Rows = append(t.Rows, r) }

// Systems returns the distinct systems in first-appearance order.
func (t *Table) Systems() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range t.Rows {
		if !seen[r.System] {
			seen[r.System] = true
			out = append(out, r.System)
		}
	}
	return out
}

// Get returns the row for (x, system), or nil.
func (t *Table) Get(x, system string) *Row {
	for i := range t.Rows {
		if t.Rows[i].X == x && t.Rows[i].System == system {
			return &t.Rows[i]
		}
	}
	return nil
}

// Improvement returns the relative throughput gain of system a over
// system b at sweep value x, e.g. 1.31 for +131%.
func (t *Table) Improvement(x, a, b string) float64 {
	ra, rb := t.Get(x, a), t.Get(x, b)
	if ra == nil || rb == nil || rb.Throughput == 0 {
		return 0
	}
	return ra.Throughput/rb.Throughput - 1
}

// MeanImprovement averages Improvement over all sweep values.
func (t *Table) MeanImprovement(a, b string) float64 {
	xs := t.xValues()
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += t.Improvement(x, a, b)
	}
	return sum / float64(len(xs))
}

func (t *Table) xValues() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range t.Rows {
		if !seen[r.X] {
			seen[r.X] = true
			out = append(out, r.X)
		}
	}
	return out
}

// Print writes the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Shape != "" {
		fmt.Fprintf(w, "paper shape: %s\n", t.Shape)
	}
	// Collect extra columns.
	extraCols := map[string]bool{}
	for _, r := range t.Rows {
		for k := range r.Extra {
			extraCols[k] = true
		}
	}
	cols := make([]string, 0, len(extraCols))
	for k := range extraCols {
		cols = append(cols, k)
	}
	sort.Strings(cols)

	fmt.Fprintf(w, "%-10s %-14s %14s %12s", t.XLabel, "system", "throughput/s", "retry/100k")
	for _, c := range cols {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 52+13*len(cols)))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10s %-14s %14.0f %12.0f", r.X, r.System, r.Throughput, r.Retry)
		for _, c := range cols {
			if v, ok := r.Extra[c]; ok {
				fmt.Fprintf(w, " %12.3f", v)
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
