package harness

import (
	"fmt"
	"math/rand"

	"tskd/internal/clock"
	"tskd/internal/core"
	"tskd/internal/estimator"
	"tskd/internal/history"
	"tskd/internal/partition"
	"tskd/internal/txn"
)

func init() {
	experiments["ext-nocc"] = extNoCC
}

// noisyEstimator perturbs a base estimator's output by a seeded
// relative error, emulating bad cost estimates.
type noisyEstimator struct {
	base  estimator.Estimator
	noise float64
	rng   *rand.Rand
}

func (n *noisyEstimator) Estimate(t *txn.Transaction) clock.Units {
	e := n.base.Estimate(t)
	if n.noise <= 0 {
		return e
	}
	f := 1 + n.noise*(2*n.rng.Float64()-1)
	return clock.Units(float64(e) * f)
}

// extNoCC measures the paper's "queues can even be executed without
// CC" mode (Section 2.2) against estimate error: the RC-free queues
// run under protocol NONE, and the serializability checker reports how
// often that was actually safe. With exact estimates the execution is
// serializable; as estimate noise grows, runtime conflicts slip into
// the "conflict-free" queues — which is why deployed TSKD keeps CC +
// TsDEFER as the backstop.
func extNoCC(p Params) (*Table, error) {
	t := &Table{ID: "ext-nocc", Title: "CC-free queue execution vs estimate noise (YCSB, Strife)",
		XLabel: "noise", Shape: "execution drift alone already breaks serializability at high contention — the CC backstop of Section 3 is necessary, not optional"}
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	// Sharpen contention so queue-phase anomalies have a chance to
	// materialize: maximum skew, no runtime floor (tight windows).
	p.Theta = 0.95
	p.MinT = 0
	for _, noise := range []float64{0, 0.5, 2.0} {
		serializable := 0
		row := Row{X: fmt.Sprintf("%.1f", noise), System: "TSKD-noCC", Extra: map[string]float64{}}
		for rep := 0; rep < reps; rep++ {
			db, w := p.build(ycsb)
			o := p.options()
			o.Seed = p.Seed + int64(rep)*7919
			o.Estimator = &noisyEstimator{
				base:  estimator.AccessSetSize{Unit: p.OpTime},
				noise: noise,
				rng:   rand.New(rand.NewSource(o.Seed)),
			}
			rec := history.NewRecorder()
			o.Recorder = rec
			res, err := core.RunTSKDNoCC(db, w, partition.NewStrife(o.Seed), o)
			if err != nil {
				return nil, err
			}
			row.Throughput += res.VThroughput() / float64(reps)
			row.Retry += res.RetryPer100k() / float64(reps)
			if rec.Check() == nil {
				serializable++
			}
		}
		row.Extra["serializable%"] = 100 * float64(serializable) / float64(reps)
		t.Add(row)
	}
	return t, nil
}
