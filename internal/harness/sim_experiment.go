package harness

import (
	"fmt"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/partition"
	"tskd/internal/sched"
	"tskd/internal/sim"
	"tskd/internal/txn"
)

func init() {
	experiments["ext-sim"] = extSim
}

// extSim regenerates the Fig. 4a comparison through the deterministic
// discrete-event simulator (internal/sim) instead of the real
// executor: same partitioners, same TSgen schedules, but pure virtual
// time with seeded 20% estimate noise — so the shape is exactly
// reproducible on any machine. Throughput is committed transactions
// per 1000 cost units.
func extSim(p Params) (*Table, error) {
	t := &Table{ID: "ext-sim", Title: "Deterministic simulation: partitioners vs TSKD, varying theta (YCSB)",
		XLabel: "theta", Shape: "same shape as fig4a, bit-for-bit reproducible"}

	cost := func(tx *txn.Transaction) clock.Units {
		return estimator.AccessSetSize{Unit: p.OpTime}.Estimate(tx)
	}
	simCfg := sim.Config{Cost: cost, Noise: 0.2, MaxRetries: 64, Seed: p.Seed}

	for _, th := range []float64{0.7, 0.8, 0.9} {
		q := p
		q.Theta = th
		_, w := q.build(ycsb)
		g := conflict.Build(w, conflict.Serializability)
		x := fmt.Sprintf("%.1f", th)

		type variant struct {
			name   string
			phases [][][]*txn.Transaction
		}
		var variants []variant

		// Baseline: Strife partitions then residual.
		strife := partition.NewStrife(p.Seed).Partition(w, g, q.Cores)
		basePhases := [][][]*txn.Transaction{strife.Parts}
		if len(strife.Residual) > 0 {
			basePhases = append(basePhases, spread(strife.Residual, q.Cores))
		}
		variants = append(variants, variant{"STRIFE", basePhases})

		// TSKD[S]: TSgen refinement of the same partition.
		s := sched.Generate(w, strife, g, estimator.AccessSetSize{Unit: p.OpTime}, sched.Options{Seed: p.Seed})
		tskdPhases := [][][]*txn.Transaction{s.Queues}
		if len(s.Residual) > 0 {
			tskdPhases = append(tskdPhases, spread(s.Residual, q.Cores))
		}
		variants = append(variants, variant{"TSKD[S]", tskdPhases})

		// TSKD[0]: scheduling from scratch.
		s0 := sched.GenerateFromScratch(w, g, estimator.AccessSetSize{Unit: p.OpTime}, q.Cores, sched.Options{Seed: p.Seed})
		zeroPhases := [][][]*txn.Transaction{s0.Queues}
		if len(s0.Residual) > 0 {
			zeroPhases = append(zeroPhases, spread(s0.Residual, q.Cores))
		}
		variants = append(variants, variant{"TSKD[0]", zeroPhases})

		// Round-robin: the unbundled baseline.
		variants = append(variants, variant{"ROUND_ROBIN", [][][]*txn.Transaction{spread(w, q.Cores)}})

		for _, v := range variants {
			r := sim.Run(v.phases, g, simCfg)
			t.Add(Row{
				X: x, System: v.name,
				Throughput: r.Throughput(),
				Retry:      float64(r.Retries) * 100_000 / float64(max(r.Committed, 1)),
				Extra:      map[string]float64{"makespan": float64(r.Makespan)},
			})
		}
	}
	return t, nil
}

func spread(ts []*txn.Transaction, k int) [][]*txn.Transaction {
	per := make([][]*txn.Transaction, k)
	for i, t := range ts {
		per[i%k] = append(per[i%k], t)
	}
	return per
}
