package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/estimator"
	"tskd/internal/partition"
	"tskd/internal/sched"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

// bench selects the benchmark a sweep runs on.
type bench int

const (
	ycsb bench = iota
	tpcc
)

func (b bench) String() string {
	if b == tpcc {
		return "TPC-C"
	}
	return "YCSB"
}

// dbCache reuses loaded databases across runs of the same schema.
// Transaction access patterns are generated independently of row
// values, so reusing a mutated database does not change contention
// behaviour — it only avoids rebuilding millions of rows per run.
var (
	dbCacheMu sync.Mutex
	dbCache   = map[string]*storage.DB{}
)

func cachedDB(key string, build func() *storage.DB) *storage.DB {
	dbCacheMu.Lock()
	defer dbCacheMu.Unlock()
	if db, ok := dbCache[key]; ok {
		return db
	}
	db := build()
	dbCache[key] = db
	return db
}

// build returns the (cached) database and a fresh bundle for the given
// parameters, with the skew and I/O extensions applied.
func (p Params) build(b bench) (*storage.DB, txn.Workload) {
	var db *storage.DB
	var w txn.Workload
	switch b {
	case tpcc:
		cfg := workload.TPCC{
			Warehouses: p.Whn, CrossPct: p.CPct, Txns: p.Bundle,
			Items: p.TPCCItems, CustomersPerDistrict: p.TPCCCustomers,
			InitOrders: 30, Seed: p.Seed,
		}
		db = cachedDB(fmt.Sprintf("tpcc/%d/%d/%d/%d", p.Whn, p.TPCCItems, p.TPCCCustomers, p.Seed),
			cfg.BuildDB)
		w = cfg.Generate()
	default:
		cfg := workload.YCSB{
			Records: p.YCSBRecords, Theta: p.Theta, Txns: p.Bundle,
			OpsPerTxn: 16, ReadRatio: 0.5, RMW: true, Seed: p.Seed,
		}
		db = cachedDB(fmt.Sprintf("ycsb/%d", p.YCSBRecords), cfg.BuildDB)
		w = cfg.Generate()
	}
	avgOps := 1.0
	if len(w) > 0 {
		avgOps = float64(w.TotalOps()) / float64(len(w))
	}
	workload.ApplySkew(w, p.skew(), p.avgRuntime(avgOps), p.Seed+101)
	workload.ApplyIO(w, p.io(), p.Seed+202)
	return db, w
}

// options derives core.Options from the parameters.
func (p Params) options() core.Options {
	return core.Options{
		Workers:  p.Cores,
		Protocol: p.CC,
		OpTime:   p.OpTime,
		Seed:     p.Seed,
		Sched:    sched.Options{Seed: p.Seed},
		Defer: &engine.DeferConfig{
			Lookups: p.Lookups, DeferP: p.DeferP, Horizon: 1,
			Alpha: p.Alpha, MaxDefers: 8, Exact: true,
		},
	}
}

// runner is one system under test.
type runner struct {
	name string
	run  func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error)
}

// partitionedRunners returns the Section 6.2 lineup: each partitioner
// baseline next to its TSKD instance, plus TSKD[0].
func partitionedRunners(seed int64) []runner {
	strife := func() partition.Partitioner { return partition.NewStrife(seed) }
	schism := func() partition.Partitioner { return partition.NewSchism(seed) }
	horti := func() partition.Partitioner { return partition.NewHorticulture() }
	return []runner{
		{"STRIFE", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunBaseline(db, w, strife(), o)
		}},
		{"TSKD[S]", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunTSKD(db, w, strife(), o)
		}},
		{"SCHISM", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunBaseline(db, w, schism(), o)
		}},
		{"TSKD[C]", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunTSKD(db, w, schism(), o)
		}},
		{"HORTICULTURE", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunBaseline(db, w, horti(), o)
		}},
		{"TSKD[H]", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunTSKD(db, w, horti(), o)
		}},
		{"TSKD[0]", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunTSKD(db, w, nil, o)
		}},
	}
}

// ccRunners returns the Section 6.3 lineup.
func ccRunners() []runner {
	return []runner{
		{"DBCC", core.RunCC},
		{"TSKD[CC]", core.RunTSKDCC},
	}
}

// runAll executes every runner Reps times on fresh copies of the
// workload and appends one averaged row per system at sweep value x.
func (p Params) runAll(t *Table, b bench, x string, runners []runner) error {
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	for _, r := range runners {
		row := Row{X: x, System: r.name, Extra: map[string]float64{}}
		var sPct, load, defers, contended, wall float64
		hasSched, hasLoad := false, false
		for rep := 0; rep < reps; rep++ {
			db, w := p.build(b)
			o := p.options()
			o.Seed = p.Seed + int64(rep)*7919
			res, err := r.run(db, w, o)
			if err != nil {
				return fmt.Errorf("%s at %s=%s: %w", r.name, t.XLabel, x, err)
			}
			// Headline throughput is simulated k-core throughput (see
			// engine.Metrics.VirtualTime); wall-clock throughput is
			// reported alongside.
			row.Throughput += res.VThroughput() / float64(reps)
			wall += res.Throughput() / float64(reps)
			row.Retry += res.RetryPer100k() / float64(reps)
			if res.SchedStats != nil {
				hasSched = true
				sPct += res.SchedStats.ScheduledPct() / float64(reps)
			}
			if res.LoadRatio > 0 {
				hasLoad = true
				load += res.LoadRatio / float64(reps)
			}
			defers += float64(res.Defers) / float64(reps)
			contended += float64(res.Contended) / float64(reps)
		}
		if hasSched {
			row.Extra["s%"] = sPct
		}
		if hasLoad {
			row.Extra["loadratio"] = load
		}
		if defers > 0 {
			row.Extra["defers"] = defers
		}
		row.Extra["contended"] = contended
		row.Extra["wall_tput"] = wall
		t.Add(row)
	}
	return nil
}

// Experiment runs the experiment with the given id. See Experiments
// for the catalogue.
func Experiment(id string, p Params) (*Table, error) {
	f, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, ExperimentIDs())
	}
	return f(p)
}

// ExperimentIDs lists the available experiment ids, sorted.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

type expFunc func(Params) (*Table, error)

var experiments = map[string]expFunc{
	"fig4a": fig4a, "fig4b": fig4b, "fig4c": fig4c,
	"fig4d": fig4d, "fig4e": fig4e, "fig4f": fig4f,
	"fig4g": fig4g, "fig4h": fig4h, "fig4i": fig4i,
	"fig4j": fig4j, "fig4k": fig4k, "fig4l": fig4l,
	"tab2": tab2, "overhead": overhead,
	"fig5a": fig5a, "fig5b": fig5b, "fig5c": fig5c,
	"fig5d": fig5d, "fig5e": fig5e, "fig5f": fig5f,
	"fig5g": fig5g, "fig5h": fig5h, "fig6": fig6,
	"ablation-order":      ablationOrder,
	"ablation-ckrcf":      ablationCkRCF,
	"ablation-estimator":  ablationEstimator,
	"ablation-deferbound": ablationDeferBound,
}

// --- Section 6.2: TSKD on partitioning-based systems ---

func fig4a(p Params) (*Table, error) {
	t := &Table{ID: "fig4a", Title: "YCSB throughput, partitioners vs TSKD, varying theta",
		XLabel: "theta", Shape: "TSKD[x] above partitioner x everywhere; gap grows with theta"}
	for _, th := range []float64{0.7, 0.8, 0.9} {
		q := p
		q.Theta = th
		if err := q.runAll(t, ycsb, fmt.Sprintf("%.1f", th), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4b(p Params) (*Table, error) {
	t := &Table{ID: "fig4b", Title: "YCSB throughput, varying CC protocol",
		XLabel: "cc", Shape: "TSKD improvement robust across OCC, SILO, TICTOC"}
	for _, ccName := range []string{"OCC", "SILO", "TICTOC"} {
		q := p
		q.CC = ccName
		if err := q.runAll(t, ycsb, ccName, partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4c(p Params) (*Table, error) {
	t := &Table{ID: "fig4c", Title: "YCSB throughput, varying #core",
		XLabel: "#core", Shape: "TSKD gap widens with more cores"}
	for _, k := range []int{8, 20, 32} {
		q := p
		q.Cores = k
		if err := q.runAll(t, ycsb, fmt.Sprintf("%d", k), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4d(p Params) (*Table, error) {
	t := &Table{ID: "fig4d", Title: "YCSB throughput, varying minT (runtime skew)",
		XLabel: "minT", Shape: "TSKD improvement grows with longer transactions"}
	for _, m := range []float64{0.125, 0.5, 1.0} {
		q := p
		q.MinT = m
		if err := q.runAll(t, ycsb, fmt.Sprintf("%.3f", m), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4e(p Params) (*Table, error) {
	t := &Table{ID: "fig4e", Title: "YCSB throughput, varying p (max runtime bound)",
		XLabel: "p", Shape: "TSKD improvement grows with more variable runtimes"}
	for _, pp := range []int{32, 48, 64} {
		q := p
		q.P = pp
		if err := q.runAll(t, ycsb, fmt.Sprintf("%d", pp), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4f(p Params) (*Table, error) {
	t := &Table{ID: "fig4f", Title: "YCSB throughput, varying thetaT (runtime skew)",
		XLabel: "thetaT", Shape: "TSKD improvement larger at smaller thetaT (more long txns)"}
	for _, th := range []float64{0.7, 0.8, 0.9} {
		q := p
		q.ThetaT = th
		if err := q.runAll(t, ycsb, fmt.Sprintf("%.1f", th), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4g(p Params) (*Table, error) {
	t := &Table{ID: "fig4g", Title: "TPC-C throughput, varying c% (cross-warehouse)",
		XLabel: "c%", Shape: "TSKD improvement grows with contention (higher c%)"}
	for _, c := range []float64{0.15, 0.25, 0.35} {
		q := p
		q.CPct = c
		if err := q.runAll(t, tpcc, fmt.Sprintf("%.0f%%", c*100), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4h(p Params) (*Table, error) {
	t := &Table{ID: "fig4h", Title: "TPC-C throughput, varying #whn (warehouses)",
		XLabel: "#whn", Shape: "TSKD above baselines across warehouse counts"}
	whns := []int{20, 40, 60}
	if p.Whn < 20 { // quick preset: scale the sweep down
		whns = []int{p.Whn / 2, p.Whn, p.Whn * 2}
	}
	for _, whn := range whns {
		q := p
		q.Whn = whn
		if err := q.runAll(t, tpcc, fmt.Sprintf("%d", whn), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4i(p Params) (*Table, error) {
	t := &Table{ID: "fig4i", Title: "#retry, partitioners vs TSKD (YCSB and TPC-C, defaults)",
		XLabel: "bench", Shape: "#retry of TSKD[x] consistently below partitioner x"}
	if err := p.runAll(t, ycsb, "YCSB", partitionedRunners(p.Seed)); err != nil {
		return nil, err
	}
	if err := p.runAll(t, tpcc, "TPC-C", partitionedRunners(p.Seed)); err != nil {
		return nil, err
	}
	return t, nil
}

func fig4j(p Params) (*Table, error) {
	t := &Table{ID: "fig4j", Title: "Ablation: TSKD vs TsPAR-only vs TsDEFER-only over Strife (YCSB)",
		XLabel: "bench", Shape: "TsPAR > TsDEFER for bundled workloads; combination best"}
	strife := partition.NewStrife(p.Seed)
	runners := []runner{
		{"STRIFE", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunBaseline(db, w, strife, o)
		}},
		{"TSKD[S]", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunTSKD(db, w, strife, o)
		}},
		{"TsPAR[S]", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunTsParOnly(db, w, strife, o)
		}},
		{"TsDEFER[S]", func(db *storage.DB, w txn.Workload, o core.Options) (core.Result, error) {
			return core.RunTsDeferOnly(db, w, strife, o)
		}},
	}
	return t, p.runAll(t, ycsb, "YCSB", runners)
}

func fig4k(p Params) (*Table, error) {
	t := &Table{ID: "fig4k", Title: "YCSB throughput under I/O latency, varying lIO",
		XLabel: "lIO", Shape: "raw throughput degrades with lIO; TSKD improvement stays stable"}
	for _, l := range []int{0, 50, 100} {
		q := p
		q.LIO = l
		if err := q.runAll(t, ycsb, fmt.Sprintf("%d", l), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4l(p Params) (*Table, error) {
	t := &Table{ID: "fig4l", Title: "TPC-C retry under I/O latency, varying thetaIO",
		XLabel: "thetaIO", Shape: "TSKD reduces retries across latency tail shapes"}
	for _, th := range []float64{0.8, 1.2, 1.6} {
		q := p
		q.LIO = 50
		q.ThetaIO = th
		if err := q.runAll(t, tpcc, fmt.Sprintf("%.1f", th), partitionedRunners(p.Seed)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// tab2 reproduces Table 2: scheduled percentage s% and the #retry of
// the RC-free queues with and without TsDEFER.
func tab2(p Params) (*Table, error) {
	t := &Table{ID: "tab2", Title: "Accuracy of scheduling and effectiveness of TsDEFER",
		XLabel: "bench", Shape: "s% well above 0; TsDEFER cuts queue retries roughly in half"}
	parts := []struct {
		name string
		mk   func() partition.Partitioner
	}{
		{"TSKD[S]", func() partition.Partitioner { return partition.NewStrife(p.Seed) }},
		{"TSKD[C]", func() partition.Partitioner { return partition.NewSchism(p.Seed) }},
		{"TSKD[H]", func() partition.Partitioner { return partition.NewHorticulture() }},
	}
	for _, b := range []bench{ycsb, tpcc} {
		for _, pt := range parts {
			// Without TsDEFER.
			db, w := p.build(b)
			o := p.options()
			woRes, err := core.RunTsParOnly(db, w, pt.mk(), o)
			if err != nil {
				return nil, err
			}
			// With TsDEFER.
			db2, w2 := p.build(b)
			wRes, err := core.RunTSKD(db2, w2, pt.mk(), p.options())
			if err != nil {
				return nil, err
			}
			t.Add(Row{
				X: b.String(), System: pt.name,
				Throughput: wRes.VThroughput(),
				Retry:      wRes.RetryPer100k(),
				Extra: map[string]float64{
					"s%":          wRes.SchedStats.ScheduledPct(),
					"retry_wo_td": woRes.RetryPer100k(),
					"retry_w_td":  wRes.RetryPer100k(),
				},
			})
		}
	}
	return t, nil
}

// overhead measures overheadR = TSgen time / partitioner time.
func overhead(p Params) (*Table, error) {
	t := &Table{ID: "overhead", Title: "TsPAR overhead relative to partitioning time",
		XLabel: "bench", Shape: "overheadR below ~5%"}
	parts := []struct {
		name string
		mk   func() partition.Partitioner
	}{
		{"TSKD[S]", func() partition.Partitioner { return partition.NewStrife(p.Seed) }},
		{"TSKD[C]", func() partition.Partitioner { return partition.NewSchism(p.Seed) }},
	}
	for _, b := range []bench{ycsb, tpcc} {
		for _, pt := range parts {
			db, w := p.build(b)
			res, err := core.RunTSKD(db, w, pt.mk(), p.options())
			if err != nil {
				return nil, err
			}
			t.Add(Row{
				X: b.String(), System: pt.name,
				Throughput: res.VThroughput(),
				Retry:      res.RetryPer100k(),
				Extra: map[string]float64{
					"overheadR":    res.OverheadR(),
					"partition_ms": float64(res.PartitionTime) / float64(time.Millisecond),
					"sched_ms":     float64(res.SchedTime) / float64(time.Millisecond),
				},
			})
		}
	}
	return t, nil
}

// --- Section 6.3: TSKD on CC-based systems ---

func fig5a(p Params) (*Table, error) {
	t := &Table{ID: "fig5a", Title: "YCSB: TSKD[CC] vs DBCC, varying theta",
		XLabel: "theta", Shape: "TsDEFER gains grow with contention; #contended_mutex drops"}
	for _, th := range []float64{0.7, 0.8, 0.9} {
		q := p
		q.Theta = th
		if err := q.runAll(t, ycsb, fmt.Sprintf("%.1f", th), ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig5b(p Params) (*Table, error) {
	t := &Table{ID: "fig5b", Title: "YCSB: TSKD[CC] vs DBCC, varying CC",
		XLabel: "cc", Shape: "improvement across all protocols; best with TICTOC"}
	for _, ccName := range []string{"OCC", "SILO", "TICTOC"} {
		q := p
		q.CC = ccName
		if err := q.runAll(t, ycsb, ccName, ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig5c(p Params) (*Table, error) {
	t := &Table{ID: "fig5c", Title: "YCSB: TSKD[CC] vs DBCC, varying #core",
		XLabel: "#core", Shape: "gap widens with more cores"}
	for _, k := range []int{8, 20, 32} {
		q := p
		q.Cores = k
		if err := q.runAll(t, ycsb, fmt.Sprintf("%d", k), ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig5d(p Params) (*Table, error) {
	t := &Table{ID: "fig5d", Title: "YCSB: TSKD[CC] vs DBCC, varying minT",
		XLabel: "minT", Shape: "TsDEFER more effective for longer transactions"}
	for _, m := range []float64{0.125, 0.5, 1.0} {
		q := p
		q.MinT = m
		if err := q.runAll(t, ycsb, fmt.Sprintf("%.3f", m), ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig5e(p Params) (*Table, error) {
	t := &Table{ID: "fig5e", Title: "YCSB: TSKD[CC] vs DBCC, varying p",
		XLabel: "p", Shape: "more variable runtimes favor TsDEFER"}
	for _, pp := range []int{32, 48, 64} {
		q := p
		q.P = pp
		if err := q.runAll(t, ycsb, fmt.Sprintf("%d", pp), ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig5f(p Params) (*Table, error) {
	t := &Table{ID: "fig5f", Title: "YCSB: TSKD[CC] vs DBCC, varying thetaT",
		XLabel: "thetaT", Shape: "lower thetaT (more long txns) favors TsDEFER"}
	for _, th := range []float64{0.7, 0.8, 0.9} {
		q := p
		q.ThetaT = th
		if err := q.runAll(t, ycsb, fmt.Sprintf("%.1f", th), ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig5g(p Params) (*Table, error) {
	t := &Table{ID: "fig5g", Title: "YCSB: TsDEFER trade-off, varying #lookups",
		XLabel: "#lookups", Shape: "more lookups cut retries further; throughput peaks near 2"}
	if err := p.runAll(t, ycsb, "DBCC-ref", ccRunners()[:1]); err != nil {
		return nil, err
	}
	for _, lk := range []int{1, 2, 3, 5} {
		q := p
		q.Lookups = lk
		if err := q.runAll(t, ycsb, fmt.Sprintf("%d", lk), ccRunners()[1:]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig5h(p Params) (*Table, error) {
	t := &Table{ID: "fig5h", Title: "YCSB: TSKD[CC] under inaccurate access sets, varying alpha",
		XLabel: "alpha", Shape: "still improves DBCC at alpha=0.5; better with higher alpha"}
	if err := p.runAll(t, ycsb, "DBCC-ref", ccRunners()[:1]); err != nil {
		return nil, err
	}
	for _, a := range []float64{0.5, 0.75, 1.0} {
		q := p
		q.Alpha = a
		if err := q.runAll(t, ycsb, fmt.Sprintf("%.2f", a), ccRunners()[1:]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig6(p Params) (*Table, error) {
	t := &Table{ID: "fig6", Title: "I/O latency on TsDEFER: varying lIO and thetaIO (YCSB)",
		XLabel: "knob", Shape: "TSKD[CC] stays above DBCC across I/O patterns"}
	for _, l := range []int{0, 50, 100} {
		q := p
		q.LIO = l
		if err := q.runAll(t, ycsb, fmt.Sprintf("lIO=%d", l), ccRunners()); err != nil {
			return nil, err
		}
	}
	for _, th := range []float64{0.8, 1.6} {
		q := p
		q.LIO = 50
		q.ThetaIO = th
		if err := q.runAll(t, ycsb, fmt.Sprintf("thIO=%.1f", th), ccRunners()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// --- Ablations beyond the paper (DESIGN.md Section 5) ---

func ablationOrder(p Params) (*Table, error) {
	t := &Table{ID: "ablation-order", Title: "TSgen residual ordering strategies (YCSB, Strife)",
		XLabel: "order", Shape: "longest-first tends to schedule more residual work"}
	orders := []struct {
		name string
		o    sched.ResidualOrder
	}{
		{"random", sched.OrderRandom},
		{"longest", sched.OrderLongestFirst},
		{"conflicting", sched.OrderMostConflictingFirst},
	}
	for _, ord := range orders {
		db, w := p.build(ycsb)
		o := p.options()
		o.Sched.Order = ord.o
		res, err := core.RunTSKD(db, w, partition.NewStrife(p.Seed), o)
		if err != nil {
			return nil, err
		}
		t.Add(Row{X: ord.name, System: "TSKD[S]",
			Throughput: res.VThroughput(), Retry: res.RetryPer100k(),
			Extra: map[string]float64{"s%": res.SchedStats.ScheduledPct(), "makespan": res.Makespan}})
	}
	return t, nil
}

func ablationCkRCF(p Params) (*Table, error) {
	t := &Table{ID: "ablation-ckrcf", Title: "ckRCF exact interval test vs conservative tail test",
		XLabel: "mode", Shape: "exact schedules at least as much as tail"}
	for _, m := range []struct {
		name string
		mode sched.CkRCFMode
	}{{"exact", sched.CkExact}, {"tail", sched.CkTail}} {
		db, w := p.build(ycsb)
		o := p.options()
		o.Sched.CkRCF = m.mode
		res, err := core.RunTSKD(db, w, partition.NewStrife(p.Seed), o)
		if err != nil {
			return nil, err
		}
		t.Add(Row{X: m.name, System: "TSKD[S]",
			Throughput: res.VThroughput(), Retry: res.RetryPer100k(),
			Extra: map[string]float64{"s%": res.SchedStats.ScheduledPct(), "makespan": res.Makespan}})
	}
	return t, nil
}

func ablationEstimator(p Params) (*Table, error) {
	t := &Table{ID: "ablation-estimator", Title: "Cost estimators for TsPAR (YCSB, Strife)",
		XLabel: "estimator", Shape: "any relative-order-preserving estimator works"}
	// History estimator warmed up by a DBCC pass over the same bundle
	// (the paper uses DBx1000's warm-up runs as the history source).
	warm := estimator.NewHistory()
	warm.Fallback = estimator.AccessSetSize{Unit: p.OpTime}
	{
		db, w := p.build(ycsb)
		o := p.options()
		o.CostSink = warm
		if _, err := core.RunCC(db, w, o); err != nil {
			return nil, err
		}
	}
	cases := []struct {
		name string
		mk   func(db *storage.DB) estimator.Estimator
	}{
		{"opcount", func(*storage.DB) estimator.Estimator { return estimator.AccessSetSize{Unit: p.OpTime} }},
		{"dryrun", func(db *storage.DB) estimator.Estimator {
			d := estimator.NewDryRun(db)
			d.Unit = p.OpTime
			return d
		}},
		{"history", func(*storage.DB) estimator.Estimator { return warm }},
	}
	for _, cse := range cases {
		db, w := p.build(ycsb)
		o := p.options()
		o.Estimator = cse.mk(db)
		res, err := core.RunTSKD(db, w, partition.NewStrife(p.Seed), o)
		if err != nil {
			return nil, err
		}
		t.Add(Row{X: cse.name, System: "TSKD[S]",
			Throughput: res.VThroughput(), Retry: res.RetryPer100k(),
			Extra: map[string]float64{"s%": res.SchedStats.ScheduledPct()}})
	}
	return t, nil
}

func ablationDeferBound(p Params) (*Table, error) {
	t := &Table{ID: "ablation-deferbound", Title: "TsDEFER re-deferral bound (starvation control)",
		XLabel: "maxdefers", Shape: "small bounds limit deferment; large bounds risk churn"}
	for _, b := range []int{1, 8, 64} {
		db, w := p.build(ycsb)
		o := p.options()
		o.Defer = &engine.DeferConfig{
			Lookups: p.Lookups, DeferP: p.DeferP, Horizon: 1, Alpha: 1, MaxDefers: b,
		}
		res, err := core.RunTSKDCC(db, w, o)
		if err != nil {
			return nil, err
		}
		t.Add(Row{X: fmt.Sprintf("%d", b), System: "TSKD[CC]",
			Throughput: res.VThroughput(), Retry: res.RetryPer100k(),
			Extra: map[string]float64{"defers": float64(res.Defers)}})
	}
	return t, nil
}
