package harness

import (
	"strings"
	"testing"
)

// tiny returns a minimal-scale parameter set so every experiment can
// run inside the unit-test budget.
func tiny() Params {
	p := Quick()
	p.Cores = 4
	p.Whn = 4
	p.Bundle = 150
	p.YCSBRecords = 2_000
	p.TPCCItems = 100
	p.TPCCCustomers = 30
	p.OpTime = 0 // raw speed
	p.MinT = 0   // no spin-based runtime floor in unit tests
	return p
}

func TestExperimentUnknown(t *testing.T) {
	if _, err := Experiment("nope", tiny()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{
		"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
		"fig4g", "fig4h", "fig4i", "fig4j", "fig4k", "fig4l",
		"tab2", "overhead",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
		"fig5g", "fig5h", "fig6",
		"ablation-order", "ablation-ckrcf", "ablation-estimator", "ablation-deferbound",
		"ext-sim", "ext-nocc", "ext-latency", "ext-adaptive",
		"ext-fig5-tpcc", "ext-templates", "ext-stream",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}

// Every experiment must run end to end at tiny scale and produce a
// well-formed table: all systems commit the full bundle (throughput >
// 0) at every sweep point.
func TestAllExperimentsRunTiny(t *testing.T) {
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Experiment(id, tiny())
			if err != nil {
				t.Fatalf("experiment failed: %v", err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, r := range tbl.Rows {
				if r.Throughput <= 0 {
					t.Errorf("%s @%s: throughput %v", r.System, r.X, r.Throughput)
				}
				if r.Retry < 0 {
					t.Errorf("%s @%s: negative retry", r.System, r.X)
				}
			}
			var sb strings.Builder
			tbl.Print(&sb)
			if !strings.Contains(sb.String(), tbl.ID) {
				t.Error("printed table lacks its id")
			}
		})
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := &Table{ID: "x", XLabel: "v"}
	tbl.Add(Row{X: "1", System: "A", Throughput: 100})
	tbl.Add(Row{X: "1", System: "B", Throughput: 50})
	tbl.Add(Row{X: "2", System: "A", Throughput: 300})
	tbl.Add(Row{X: "2", System: "B", Throughput: 100})
	if got := tbl.Improvement("1", "A", "B"); got != 1.0 {
		t.Errorf("Improvement = %v, want 1.0", got)
	}
	if got := tbl.MeanImprovement("A", "B"); got != 1.5 {
		t.Errorf("MeanImprovement = %v, want 1.5", got)
	}
	if len(tbl.Systems()) != 2 {
		t.Error("Systems wrong")
	}
	if tbl.Get("2", "B").Throughput != 100 {
		t.Error("Get wrong")
	}
	if tbl.Get("9", "A") != nil {
		t.Error("Get invented a row")
	}
	if tbl.Improvement("9", "A", "B") != 0 {
		t.Error("missing row improvement should be 0")
	}
}

func TestDefaultAndQuickParams(t *testing.T) {
	d := Default()
	if d.CPct != 0.25 || d.Whn != 40 || d.Theta != 0.8 || d.Cores != 20 ||
		d.CC != "OCC" || d.MinT != 0.5 || d.P != 48 || d.ThetaT != 0.8 ||
		d.ThetaIO != 1.2 || d.Lookups != 2 || d.DeferP != 0.6 || d.Bundle != 10_000 {
		t.Errorf("Default() deviates from Table 1: %+v", d)
	}
	if d.LIO != 0 {
		t.Error("I/O latency must be disabled by default")
	}
	q := Quick()
	if q.Bundle >= d.Bundle {
		t.Error("Quick not smaller than Default")
	}
}
