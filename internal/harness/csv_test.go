package harness

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tbl := &Table{ID: "x", XLabel: "theta"}
	tbl.Add(Row{X: "0.7", System: "A", Throughput: 100.5, Retry: 3,
		Extra: map[string]float64{"s%": 42}})
	tbl.Add(Row{X: "0.8", System: "B", Throughput: 50, Retry: 1})
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "experiment,theta,system,throughput,retry_per_100k,s%" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "x,0.7,A,100.500,3.000,42") {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Missing extra column is empty, not zero.
	if !strings.HasSuffix(lines[2], ",") {
		t.Errorf("row 2 should end with empty extra: %q", lines[2])
	}
}

func TestRunSystem(t *testing.T) {
	p := tiny()
	tbl, err := RunSystem("TSKD[0]", "ycsb", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0].Throughput <= 0 {
		t.Fatalf("rows = %+v", tbl.Rows)
	}
	if _, err := RunSystem("NOPE", "ycsb", p); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := RunSystem("DBCC", "nope", p); err == nil {
		t.Error("unknown bench accepted")
	}
	if _, err := RunSystem("dbcc", "tpcc", p); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	t1 := &Table{ID: "a", XLabel: "x"}
	t1.Add(Row{X: "1", System: "STRIFE", Throughput: 100})
	t1.Add(Row{X: "1", System: "TSKD[S]", Throughput: 150})
	t1.Add(Row{X: "2", System: "STRIFE", Throughput: 100})
	t1.Add(Row{X: "2", System: "TSKD[S]", Throughput: 250})
	t2 := &Table{ID: "b", XLabel: "x"}
	t2.Add(Row{X: "1", System: "DBCC", Throughput: 200})
	t2.Add(Row{X: "1", System: "TSKD[CC]", Throughput: 220})
	s := Summarize([]*Table{t1, t2})
	g, ok := s.Gain("TSKD[S] vs STRIFE")
	if !ok || g < 0.99 || g > 1.01 { // mean of +50% and +150% = +100%
		t.Errorf("gain = %v, %v", g, ok)
	}
	gcc, ok := s.Gain("TSKD[CC] vs DBCC")
	if !ok || gcc < 0.09 || gcc > 0.11 {
		t.Errorf("cc gain = %v", gcc)
	}
	if _, ok := s.Gain("TSKD[H] vs HORTICULTURE"); ok {
		t.Error("unmeasured pair reported")
	}
	var sb strings.Builder
	s.Print(&sb)
	if !strings.Contains(sb.String(), "TSKD[S] vs STRIFE") {
		t.Error("summary print missing pair")
	}
	empty := Summarize(nil)
	var sb2 strings.Builder
	empty.Print(&sb2)
	if !strings.Contains(sb2.String(), "no comparable") {
		t.Error("empty summary not reported")
	}
}
