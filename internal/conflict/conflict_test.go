package conflict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tskd/internal/txn"
)

// example1 returns the workload of Example 1 in the paper.
func example1() txn.Workload {
	return txn.MustParseWorkload(`
		R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]
		R[x1]W[x2]W[x1]
		R[x3]W[x3]R[x2]R[x3]W[x2]
		R[x5]W[x5]R[x6]W[x6]
		R[x1]W[x1]R[x5]W[x5]R[x1]W[x1]
	`)
}

func TestConflictingSerializability(t *testing.T) {
	w := example1()
	// Per the paper: T1,T2,T3 mutually conflict; (T2,T5) and (T4,T5)
	// conflict. (Workload indices are 0-based here.)
	want := map[[2]int]bool{
		{0, 1}: true, {0, 2}: true, {1, 2}: true,
		{1, 4}: true, {3, 4}: true,
	}
	for i := 0; i < len(w); i++ {
		for j := i + 1; j < len(w); j++ {
			got := Conflicting(w[i], w[j], Serializability)
			if got != want[[2]int{i, j}] {
				t.Errorf("Conflicting(T%d,T%d) = %v, want %v", i+1, j+1, got, want[[2]int{i, j}])
			}
		}
	}
}

func TestConflictingSnapshotIsolation(t *testing.T) {
	w := example1()
	// Paper Section 2.1: under snapshot isolation T2 and T5 do NOT
	// conflict (T2 writes {x1,x2}, T5 writes {x1,x5} — wait, both
	// write x1, so they DO conflict under SI; the paper's example
	// refers to serializability-only pairs). Verify the definition
	// directly instead: read-write overlaps alone do not conflict.
	a := txn.MustParse(0, "R[x1]W[x2]")
	b := txn.MustParse(1, "W[x1]R[x2]")
	if Conflicting(a, b, SnapshotIsolation) {
		t.Error("read-write overlap conflicts under SI")
	}
	if !Conflicting(a, b, Serializability) {
		t.Error("read-write overlap must conflict under serializability")
	}
	c := txn.MustParse(2, "W[x2]")
	if !Conflicting(a, c, SnapshotIsolation) {
		t.Error("write-write overlap must conflict under SI")
	}
	_ = w
}

func TestConflictingSymmetricQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func(id int) *txn.Transaction {
			tx := txn.New(id)
			for i, n := 0, r.Intn(8); i < n; i++ {
				k := txn.MakeKey(0, uint64(r.Intn(6)))
				if r.Intn(2) == 0 {
					tx.R(k)
				} else {
					tx.W(k)
				}
			}
			return tx
		}
		a, b := gen(0), gen(1)
		for _, lvl := range []Isolation{Serializability, SnapshotIsolation} {
			if Conflicting(a, b, lvl) != Conflicting(b, a, lvl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGraphExample1(t *testing.T) {
	w := example1()
	g := Build(w, Serializability)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Edges() != 5 {
		t.Errorf("Edges = %d, want 5", g.Edges())
	}
	wantEdges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 4}, {3, 4}}
	for _, e := range wantEdges {
		if !g.Conflict(e[0], e[1]) || !g.Conflict(e[1], e[0]) {
			t.Errorf("edge (%d,%d) missing", e[0], e[1])
		}
	}
	if g.Conflict(0, 3) || g.Conflict(0, 4) || g.Conflict(2, 4) || g.Conflict(2, 3) || g.Conflict(1, 3) {
		t.Error("phantom edge present")
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(T2) = %d, want 3", g.Degree(1))
	}
}

func TestGraphMatchesPairwiseQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20) + 2
		w := make(txn.Workload, n)
		for i := range w {
			tx := txn.New(i)
			for j, m := 0, r.Intn(6); j < m; j++ {
				k := txn.MakeKey(0, uint64(r.Intn(8)))
				if r.Intn(2) == 0 {
					tx.R(k)
				} else {
					tx.W(k)
				}
			}
			w[i] = tx
		}
		for _, lvl := range []Isolation{Serializability, SnapshotIsolation} {
			g := Build(w, lvl)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					if g.Conflict(i, j) != Conflicting(w[i], w[j], lvl) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGraphNoSelfEdges(t *testing.T) {
	w := txn.Workload{txn.MustParse(0, "R[x1]W[x1]W[x1]R[x1]")}
	g := Build(w, Serializability)
	if g.Edges() != 0 || g.Degree(0) != 0 {
		t.Error("self edge created")
	}
}

func TestGraphReadOnlyNoConflict(t *testing.T) {
	w := txn.Workload{
		txn.MustParse(0, "R[x1]R[x2]"),
		txn.MustParse(1, "R[x1]R[x2]"),
	}
	g := Build(w, Serializability)
	if g.Edges() != 0 {
		t.Error("read-read created a conflict edge")
	}
}

func TestGraphSnapshotLevel(t *testing.T) {
	w := txn.Workload{
		txn.MustParse(0, "R[x1]W[x2]"),
		txn.MustParse(1, "W[x1]"),
		txn.MustParse(2, "W[x2]"),
	}
	g := Build(w, SnapshotIsolation)
	if g.Level() != SnapshotIsolation {
		t.Error("Level not recorded")
	}
	if g.Conflict(0, 1) {
		t.Error("rw edge under SI")
	}
	if !g.Conflict(0, 2) {
		t.Error("ww edge missing under SI")
	}
}

func TestBuildPanicsOnSparseIDs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with sparse IDs did not panic")
		}
	}()
	Build(txn.Workload{txn.New(5)}, Serializability)
}

func TestNeighborsSorted(t *testing.T) {
	w := example1()
	g := Build(w, Serializability)
	for i := 0; i < g.N(); i++ {
		ns := g.Neighbors(i)
		for j := 1; j < len(ns); j++ {
			if ns[j-1] >= ns[j] {
				t.Fatalf("Neighbors(%d) not strictly sorted: %v", i, ns)
			}
		}
	}
}

func TestGraphWeights(t *testing.T) {
	// T0 and T1 share two contended items (x1, x2); T0 and T2 share
	// one (x3). Weights must reflect that.
	w := txn.Workload{
		txn.MustParse(0, "W[x1]W[x2]W[x3]"),
		txn.MustParse(1, "W[x1]W[x2]"),
		txn.MustParse(2, "R[x3]"),
	}
	g := Build(w, Serializability)
	find := func(a, b int) int32 {
		ns, ws := g.Neighbors(a), g.Weights(a)
		for i, n := range ns {
			if int(n) == b {
				return ws[i]
			}
		}
		t.Fatalf("edge (%d,%d) missing", a, b)
		return 0
	}
	if w01 := find(0, 1); w01 != 2 {
		t.Errorf("weight(0,1) = %d, want 2", w01)
	}
	if w02 := find(0, 2); w02 != 1 {
		t.Errorf("weight(0,2) = %d, want 1", w02)
	}
	// Symmetric.
	if find(1, 0) != find(0, 1) {
		t.Error("weights not symmetric")
	}
	// Parallel arrays stay aligned.
	for id := 0; id < g.N(); id++ {
		if len(g.Neighbors(id)) != len(g.Weights(id)) {
			t.Fatalf("node %d: adjacency/weight length mismatch", id)
		}
	}
}
