// Package conflict defines transaction conflicts relative to an
// isolation level (Section 2.1 of the paper) and builds the conflict
// graph G_c that both the partitioners and the TSgen scheduler consult.
//
// Under serializability, T and T' conflict iff they access a common
// data item and at least one of them writes it. Under snapshot
// isolation, they conflict iff their write sets intersect. The graph is
// built once per bundle with an inverted key index (not pairwise
// comparison), the same strategy partitioners such as Schism use, and
// is reused by TSgen exactly as the paper prescribes.
package conflict

import (
	"fmt"
	"sort"

	"tskd/internal/txn"
)

// Isolation selects the conflict definition.
type Isolation int

const (
	// Serializability: conflict = shared item with at least one writer.
	Serializability Isolation = iota
	// SnapshotIsolation: conflict = overlapping write sets.
	SnapshotIsolation
)

func (i Isolation) String() string {
	switch i {
	case Serializability:
		return "SERIALIZABLE"
	case SnapshotIsolation:
		return "SNAPSHOT"
	default:
		return fmt.Sprintf("Isolation(%d)", int(i))
	}
}

// Conflicting reports whether a and b are in conflict under the given
// isolation level, by merging their sorted access sets.
func Conflicting(a, b *txn.Transaction, level Isolation) bool {
	if level == SnapshotIsolation {
		return intersects(a.WriteSet(), b.WriteSet())
	}
	return intersects(a.WriteSet(), b.WriteSet()) ||
		intersects(a.WriteSet(), b.ReadSet()) ||
		intersects(a.ReadSet(), b.WriteSet())
}

func intersects(a, b []txn.Key) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Graph is the undirected conflict graph of a workload: nodes are
// transactions (addressed by their dense IDs), and an edge joins every
// conflicting pair. Neighbor lists are sorted for O(log d) membership
// tests.
type Graph struct {
	level Isolation
	adj   [][]int32
	// wgt[i][j] is the weight of the edge to adj[i][j]: the number of
	// conflicting (key, accessor-pair) combinations behind it. Schism
	// cuts by weight.
	wgt   [][]int32
	edges int
}

// Build constructs the conflict graph for w under the given isolation
// level. Transaction IDs must be dense in [0, len(w)); Build panics
// otherwise, since every consumer indexes by ID.
func Build(w txn.Workload, level Isolation) *Graph {
	n := len(w)
	g := &Graph{level: level, adj: make([][]int32, n)}

	type access struct {
		id    int32
		write bool
	}
	// Inverted index: key -> transactions touching it.
	index := make(map[txn.Key][]access)
	for _, t := range w {
		if t.ID < 0 || t.ID >= n {
			panic(fmt.Sprintf("conflict: transaction ID %d outside [0,%d)", t.ID, n))
		}
		for _, k := range t.ReadSet() {
			if level == Serializability {
				index[k] = append(index[k], access{int32(t.ID), false})
			}
		}
		for _, k := range t.WriteSet() {
			index[k] = append(index[k], access{int32(t.ID), true})
		}
	}

	// For each key, connect every writer to every other accessor,
	// accumulating per-pair weights (shared contended items).
	weight := make(map[uint64]int32)
	for _, accs := range index {
		for i, a := range accs {
			for _, b := range accs[i+1:] {
				if a.id == b.id || (!a.write && !b.write) {
					continue
				}
				lo, hi := a.id, b.id
				if lo > hi {
					lo, hi = hi, lo
				}
				weight[uint64(lo)<<32|uint64(uint32(hi))]++
			}
		}
	}
	g.wgt = make([][]int32, n)
	for ek, wv := range weight {
		lo, hi := int32(ek>>32), int32(uint32(ek))
		g.adj[lo] = append(g.adj[lo], hi)
		g.adj[hi] = append(g.adj[hi], lo)
		g.wgt[lo] = append(g.wgt[lo], wv)
		g.wgt[hi] = append(g.wgt[hi], wv)
		g.edges++
	}
	for i := range g.adj {
		// Co-sort adjacency and weights by neighbor id.
		idx := make([]int, len(g.adj[i]))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return g.adj[i][idx[a]] < g.adj[i][idx[b]] })
		na := make([]int32, len(idx))
		nw := make([]int32, len(idx))
		for j, k := range idx {
			na[j] = g.adj[i][k]
			nw[j] = g.wgt[i][k]
		}
		g.adj[i], g.wgt[i] = na, nw
	}
	return g
}

// Weights returns the edge weights parallel to Neighbors(id): the
// number of contended-item pairs behind each conflict edge. Callers
// must not mutate the result.
func (g *Graph) Weights(id int) []int32 { return g.wgt[id] }

// Level returns the isolation level the graph was built under.
func (g *Graph) Level() Isolation { return g.level }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return g.edges }

// Neighbors returns the sorted IDs of transactions in conflict with id.
// Callers must not mutate the result.
func (g *Graph) Neighbors(id int) []int32 { return g.adj[id] }

// Degree returns the number of conflicts of id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Conflict reports whether transactions a and b are joined by an edge.
func (g *Graph) Conflict(a, b int) bool {
	ns := g.adj[a]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(b) })
	return i < len(ns) && ns[i] == int32(b)
}
