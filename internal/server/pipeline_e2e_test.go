package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/workload"
)

// pipeline_e2e_test.go: end-to-end coverage of the binary wire
// protocol and the pipelined client — negotiation by first-byte sniff,
// many in-flight transactions completing out of order, the NDJSON
// fallback over the same listener, and exactly-once effects across a
// mid-stream connection drop.

// TestPipelinedBinaryE2E drives one binary pipelined connection with
// many concurrent submitters: every transaction commits, completions
// interleave across bundles (out-of-order by construction), and the
// server reports the negotiated protocol.
func TestPipelinedBinaryE2E(t *testing.T) {
	s, ycsb := startServer(t, nil)
	defer s.Shutdown(context.Background())

	conn, err := client.DialPipelined(s.Addr(), client.PipelineConfig{Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Proto() != client.ProtoBinary {
		t.Fatalf("negotiated %q, want binary", conn.Proto())
	}

	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			reqs := genRequests(t, ycsb, perWorker, int64(300+wi))
			for i, req := range reqs {
				resp, err := conn.Submit(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				if !resp.Committed() {
					errs <- fmt.Errorf("worker %d req %d: status %q (%s)", wi, i, resp.Status, resp.Error)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Committed != workers*perWorker {
		t.Errorf("committed %d, want %d", st.Committed, workers*perWorker)
	}
	if st.ConnsBinary != 1 || st.ConnsNDJSON != 0 {
		t.Errorf("conns binary/ndjson = %d/%d, want 1/0", st.ConnsBinary, st.ConnsNDJSON)
	}
	if st.Bundles >= workers*perWorker {
		t.Errorf("bundles %d for %d txns: pipelining produced no batching", st.Bundles, workers*perWorker)
	}
}

// TestPipelinedNDJSONFallback runs the same pipelined client over the
// NDJSON fallback protocol against the same listener: the sniff must
// route it to the text path transparently (the compatibility a legacy
// tskd-load depends on) and count the downgrade.
func TestPipelinedNDJSONFallback(t *testing.T) {
	s, ycsb := startServer(t, nil)
	defer s.Shutdown(context.Background())

	conn, err := client.DialPipelined(s.Addr(), client.PipelineConfig{Proto: client.ProtoNDJSON, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 120
	reqs := genRequests(t, ycsb, n, 77)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, req := range reqs {
		wg.Add(1)
		go func(req client.Request) {
			defer wg.Done()
			resp, err := conn.Submit(context.Background(), req)
			if err != nil {
				errs <- err
				return
			}
			if !resp.Committed() {
				errs <- fmt.Errorf("status %q (%s)", resp.Status, resp.Error)
			}
		}(req)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Committed != n {
		t.Errorf("committed %d, want %d", st.Committed, n)
	}
	if st.ConnsBinary != 0 || st.ConnsNDJSON != 1 {
		t.Errorf("conns binary/ndjson = %d/%d, want 0/1", st.ConnsBinary, st.ConnsNDJSON)
	}
}

// TestPipelinedDropExactlyOnce interleaves out-of-order pipelined
// completions with deliberate mid-stream connection drops and checks
// that ReliableConn resubmission stays exactly-once: every marker row
// is inserted with version 1, even for transactions whose first
// submission's connection died with the outcome unknown.
func TestPipelinedDropExactlyOnce(t *testing.T) {
	ycsb := workload.YCSB{Records: 256}
	cfg := durableConfig(t.TempDir(), ycsb)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	// The reliable client heals over pipelined binary connections; the
	// dial hook captures the live one so the test can kill it.
	var connMu sync.Mutex
	var live *client.PipelinedConn
	rc := client.DialReliable(s.Addr(), client.RetryPolicy{
		Seed: 42,
		Dial: func(addr string) (client.WireConn, error) {
			c, err := client.DialPipelined(addr, client.PipelineConfig{Window: 64})
			if err != nil {
				return nil, err
			}
			connMu.Lock()
			live = c
			connMu.Unlock()
			return c, nil
		},
	})
	defer rc.Close()

	const workers, perWorker = 4, 50
	const total = workers * perWorker
	var completed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := markerReq(t, 0, wi*perWorker+i) // idem assigned by rc
				resp, err := rc.Submit(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("worker %d txn %d: %v", wi, i, err)
					return
				}
				if !resp.Committed() {
					errs <- fmt.Errorf("worker %d txn %d: status %q (%s)", wi, i, resp.Status, resp.Error)
					return
				}
				completed.Add(1)
			}
		}(wi)
	}
	// Kill the live connection twice mid-stream, with in-flight
	// pipelined submissions each time.
	go func() {
		for _, at := range []int64{total / 4, total / 2} {
			for completed.Load() < at {
				time.Sleep(time.Millisecond)
			}
			connMu.Lock()
			c := live
			connMu.Unlock()
			if c != nil {
				c.Close()
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exactly-once: every marker exists at version 1 — resubmissions
	// after the drops were answered by the dedup window, not re-run.
	assertMarkers(t, s.DB(), total)
	st := s.Stats()
	if st.ConnsBinary < 2 {
		t.Errorf("conns_binary = %d, want >= 2 (reconnect after drop)", st.ConnsBinary)
	}
}
