package server

// overload.go: the serving layer's overload-resilience wiring around
// internal/overload. Three mechanisms compose, in admission order:
//
//   - The WAL-stall circuit breaker (durable servers only) fails
//     admissions fast while the log device is stalling, instead of
//     queueing acknowledgements behind a dead fsync.
//   - The CoDel-style shedder drops a fraction of admissions once the
//     bundle queue has held a standing backlog past its target sojourn,
//     low priority first.
//   - End-to-end deadlines stamp each admitted transaction; expired
//     work is dropped at bundle formation (here) and between execution
//     attempts (in the engine), answering StatusExpired — a transaction
//     whose caller gave up is pure wasted contention if executed.
//
// When the shedder saturates (level ≥ ½: all low-priority traffic
// already dropping), the server additionally enters brownout mode:
// bundles skip TsPAR schedule refinement and raise the deferment
// probability, trading schedule quality for control-path latency until
// the backlog clears. Transitions are recorded in a bounded event log
// exposed through /metrics.

import (
	"time"

	"tskd/internal/client"
	"tskd/internal/overload"
)

// OverloadOptions configures the server's overload resilience. The
// zero value enables shedding and (on durable servers) the breaker
// with defaults; deadlines apply only when a request carries one or
// DefaultDeadline is set.
type OverloadOptions struct {
	// DefaultDeadline is applied to requests that carry no deadline_ms
	// of their own; zero means such requests never expire (today's
	// behavior).
	DefaultDeadline time.Duration
	// ShedTarget is the acceptable bundle queue sojourn before the
	// shedder sees a standing queue (default 2×FlushInterval).
	ShedTarget time.Duration
	// ShedWindow is how long the minimum sojourn must stay above
	// ShedTarget before shedding engages (default 100ms).
	ShedWindow time.Duration
	// DisableShed turns adaptive shedding (and brownout mode) off,
	// leaving only the static full-queue reject.
	DisableShed bool
	// BreakerLatency is the WAL group-flush latency that trips the
	// breaker (default 50ms); it also bounds how long an in-flight
	// fsync may hang before admissions fail fast.
	BreakerLatency time.Duration
	// BreakerCooldown is how long the breaker stays open before
	// half-opening onto probe traffic (default 250ms).
	BreakerCooldown time.Duration
	// DisableBreaker turns the WAL-stall breaker off.
	DisableBreaker bool
}

func (o *OverloadOptions) withDefaults(flushInterval time.Duration) {
	if o.ShedTarget <= 0 {
		o.ShedTarget = 2 * flushInterval
	}
	if o.ShedWindow <= 0 {
		o.ShedWindow = 100 * time.Millisecond
	}
	if o.BreakerLatency <= 0 {
		o.BreakerLatency = 50 * time.Millisecond
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
}

// refuse answers an admission without executing it: release the
// request's dedup claim, recycle the pending, count the outcome, and
// send status with the retry hint.
func (s *Server) refuse(req *client.Request, p *pending, cw *connWriter, status string, retryMS int64, f func(*Stats)) {
	if req.IdemKey != 0 && s.dedup != nil {
		s.dedup.release(req.IdemKey)
	}
	putPending(p)
	s.count(f)
	cw.send(client.Response{Seq: req.Seq, Status: status, RetryAfterMS: retryMS})
}

// gate applies the breaker, the shedder, and the deadline stamp to an
// admission, in that order. It returns false when the request was
// answered here (breaker-rejected, shed, or already expired) and the
// pending recycled; true means p carries its deadline (possibly zero)
// and should proceed to the admission queue.
func (s *Server) gate(req *client.Request, p *pending, cw *connWriter, now time.Time) bool {
	if s.breaker != nil {
		if ok, ra := s.breaker.Allow(); !ok {
			ms := ra.Milliseconds()
			if q := s.retryAfterMS(); q > ms {
				ms = q
			}
			if ms < 1 {
				ms = 1
			}
			s.refuse(req, p, cw, client.StatusRejected, ms, func(st *Stats) { st.BreakerRejected++ })
			return false
		}
	}
	if s.shed != nil {
		pri := overload.PriHigh
		if req.Priority != 0 {
			pri = overload.PriLow
		}
		if s.shed.Decide(pri) {
			ms := s.shed.Backoff().Milliseconds()
			if q := s.retryAfterMS(); q > ms {
				ms = q
			}
			if ms < 1 {
				ms = 1
			}
			s.refuse(req, p, cw, client.StatusShed, ms, func(st *Stats) { st.Shed++ })
			return false
		}
	}
	switch {
	case req.DeadlineMS < 0:
		// Expired before it ever reached us; terminal, no retry hint.
		s.refuse(req, p, cw, client.StatusExpired, 0, func(st *Stats) { st.Expired++ })
		return false
	case req.DeadlineMS > 0:
		p.t.Deadline = now.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	case s.cfg.Overload.DefaultDeadline > 0:
		p.t.Deadline = now.Add(s.cfg.Overload.DefaultDeadline)
	default:
		p.t.Deadline = time.Time{}
	}
	return true
}

// dropExpired runs at bundle formation: it answers and removes
// transactions whose deadline passed while they queued, and feeds the
// bundle's minimum queue sojourn — CoDel's standing-queue estimator —
// to the shedder, toggling brownout mode when the controller crosses
// half intensity. Expired drops still count into ResultsStreamed: they
// are admissions the server answered, just not by executing.
func (s *Server) dropExpired(batch []*pending) []*pending {
	now := time.Now()
	minSojourn := time.Duration(-1)
	live := batch[:0]
	for _, p := range batch {
		if so := now.Sub(p.enqueued); minSojourn < 0 || so < minSojourn {
			minSojourn = so
		}
		if !p.t.Deadline.IsZero() && now.After(p.t.Deadline) {
			if p.t.IdemKey != 0 && s.dedup != nil {
				s.dedup.release(p.t.IdemKey)
			}
			delivered := p.conn.send(client.Response{Seq: p.seq, Status: client.StatusExpired})
			s.mu.Lock()
			s.stats.Expired++
			s.stats.ResultsStreamed++
			if !delivered {
				s.stats.Forfeited++
			}
			s.mu.Unlock()
			putPending(p)
			continue
		}
		live = append(live, p)
	}
	if s.shed != nil && minSojourn >= 0 {
		s.shed.Observe(minSojourn)
		s.setBrownout(s.shed.Saturated())
	}
	return live
}

// setBrownout flips degraded bundle processing on saturation changes.
// Called only from the bundler goroutine (SetBrownout is not
// synchronized; the pipeline runs on this goroutine).
func (s *Server) setBrownout(on bool) {
	if on == s.brownoutOn {
		return
	}
	s.brownoutOn = on
	s.pipeline.SetBrownout(on)
	detail := "exit"
	if on {
		detail = "enter"
	}
	s.events.Record(time.Now(), "brownout", detail)
	s.count(func(st *Stats) {
		st.Brownout = on
		if on {
			st.BrownoutEnters++
		}
	})
}
