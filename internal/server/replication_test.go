package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/replica"
	"tskd/internal/workload"
)

// replication_test.go: the serving layer as a replicating primary —
// wire-protocol commits shipped synchronously to a backup receiver,
// replication surfaced on /metrics and /healthz, and the shipped
// directory recoverable into an identical server.

func TestServerReplicatesAndFailsOver(t *testing.T) {
	backup := t.TempDir()
	srv, err := replica.NewServer(replica.ServerConfig{Dir: backup, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ship, err := replica.NewShipper(replica.ShipperConfig{
		Addr: srv.Addr(), Sync: true, AckTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	primary := t.TempDir()
	s, ycsb := startServer(t, func(c *Config) {
		c.Durability = &DurabilityOptions{Dir: primary, NoSync: true, Replication: ship}
	})

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	reqs := genRequests(t, ycsb, n, 42)
	for i := range reqs {
		reqs[i].IdemKey = uint64(1000 + i)
		resp, err := conn.Submit(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Committed() {
			t.Fatalf("req %d: %q (%s)", i, resp.Status, resp.Error)
		}
	}
	conn.Close()

	// Replication shows up on /metrics and /healthz.
	st := s.Stats()
	if st.Replication == nil || st.Replication.Role != "primary" ||
		st.Replication.State != "sync" || st.Replication.ShippedGroups == 0 {
		t.Fatalf("replication stats: %+v", st.Replication)
	}
	resp, err := http.Get("http://" + s.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "role=primary") || !strings.Contains(string(body), "epoch=0") {
		t.Fatalf("/healthz body: %q", body)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if lag := ship.Stats().LagBytes; lag != 0 {
		t.Fatalf("lag %d after sync shipping", lag)
	}
	ship.Close()

	// Promote the backup and boot a server over the shipped directory:
	// every acknowledged commit must be there, and the restored dedup
	// window must answer the old idempotency keys as duplicates.
	if _, err := replica.Promote(backup); err != nil {
		t.Fatal(err)
	}
	ycsb2 := workload.YCSB{Records: 2000, Theta: 0.9, OpsPerTxn: 8, ReadRatio: 0.5, RMW: true}
	cfg := Config{
		Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0",
		Bundle: 64, FlushInterval: 2 * time.Millisecond, QueueDepth: 1024,
		DB:         ycsb2.BuildDB(),
		Durability: &DurabilityOptions{Dir: backup, NoSync: true},
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("open promoted backup: %v", err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if s2.Recovery().Replayed == 0 || s2.Recovery().DedupRestored < n {
		t.Fatalf("promoted recovery: %+v", s2.Recovery())
	}
	if s2.replicaEpoch != 1 {
		t.Fatalf("promoted epoch %d, want 1", s2.replicaEpoch)
	}
	conn2, err := client.Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	dup := reqs[0]
	r2, err := conn2.Submit(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Committed() || !r2.Duplicate {
		t.Fatalf("shipped dedup miss on promoted backup: %+v", r2)
	}
	hresp, err := http.Get("http://" + s2.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hbody), "role=promoted epoch=1") {
		t.Fatalf("promoted /healthz body: %q", hbody)
	}
}
