package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// durableConfig is the base configuration of the durability tests:
// loopback listener, small bundles, a data directory under dir.
func durableConfig(dir string, ycsb workload.YCSB) Config {
	return Config{
		Addr:          "127.0.0.1:0",
		Bundle:        16,
		FlushInterval: 2 * time.Millisecond,
		QueueDepth:    256,
		DB:            ycsb.BuildDB(),
		Core:          core.Options{Workers: 4, Protocol: "SILO", Seed: 1},
		Durability: &DurabilityOptions{
			Dir:         dir,
			GroupWindow: time.Millisecond,
			NoSync:      true, // keep the hot loop off the disk in tests
		},
	}
}

// markerKey addresses rows far above the preloaded YCSB range, so an
// insert at markerKey(i) proves submission i executed.
func markerKey(i int) txn.Key {
	return txn.MakeKey(workload.YCSBTable, (1<<20)+uint64(i))
}

func markerReq(t *testing.T, idem uint64, i int) client.Request {
	t.Helper()
	tx := txn.New(0).
		R(txn.MakeKey(workload.YCSBTable, uint64(i)%64)).
		U(txn.MakeKey(workload.YCSBTable, (uint64(i)+7)%64), 1).
		I(markerKey(i))
	req, err := client.NewRequest(0, tx)
	if err != nil {
		t.Fatal(err)
	}
	req.IdemKey = idem
	return req
}

// assertMarkers checks that markers [0,n) exist in db with version 1 —
// inserted exactly once — and that no marker >= n leaked in.
func assertMarkers(t *testing.T, db *storage.DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		row := db.Resolve(markerKey(i))
		if row == nil {
			t.Fatalf("marker %d lost", i)
		}
		if v := storage.VerNumber(row.Ver.Load()); v != 1 {
			t.Fatalf("marker %d at version %d, want 1 (exactly one install)", i, v)
		}
	}
}

// TestDurableRecovery is the tentpole's core contract end to end:
// acknowledged commits survive a full server stop, recovery happens in
// New (before any listener binds), and resubmitting the same
// idempotency keys against the recovered server answers Duplicate
// without re-executing.
func TestDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	ycsb := workload.YCSB{Records: 256}

	s, err := New(durableConfig(dir, ycsb))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		resp, err := conn.Submit(context.Background(), markerReq(t, uint64(1000+i), i))
		if err != nil || !resp.Committed() {
			t.Fatalf("submit %d: %+v %v", i, resp, err)
		}
		if resp.Duplicate {
			t.Fatalf("fresh submit %d marked duplicate", i)
		}
	}
	st := s.Stats()
	if st.WALRecords == 0 || st.WALFlushes == 0 {
		t.Fatalf("no WAL activity: %+v", st)
	}
	conn.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second incarnation over the same directory, with a *fresh* base
	// database: everything must come back from checkpoint + WAL.
	s2, err := New(durableConfig(dir, ycsb))
	if err != nil {
		t.Fatal(err)
	}
	// Recovery completed inside New — before Start binds anything.
	assertMarkers(t, s2.DB(), n)
	info := s2.Recovery()
	if info.Replayed == 0 && info.CheckpointLSN == 0 {
		t.Fatalf("recovery saw nothing: %+v", info)
	}
	if info.DedupRestored != n {
		t.Fatalf("restored %d idempotency keys, want %d", info.DedupRestored, n)
	}

	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	conn2, err := client.Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	// Resubmit every key: all must dedup, none may re-execute.
	for i := 0; i < n; i++ {
		resp, err := conn2.Submit(context.Background(), markerReq(t, uint64(1000+i), i))
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Committed() || !resp.Duplicate {
			t.Fatalf("resubmit %d: %+v, want duplicate commit", i, resp)
		}
	}
	st2 := s2.Stats()
	if st2.Committed != 0 {
		t.Fatalf("resubmission re-executed %d transactions", st2.Committed)
	}
	if st2.DedupHits != n {
		t.Fatalf("dedup hits %d, want %d", st2.DedupHits, n)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertMarkers(t, s2.DB(), n) // still exactly once
}

// TestCheckpointTruncation drives enough log volume through tiny
// segment/checkpoint thresholds to force background checkpoints and
// WAL truncation, then recovers and checks that nothing was lost —
// including idempotency keys whose WAL records were truncated away
// (they ride the dedup sidecar).
func TestCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	ycsb := workload.YCSB{Records: 256}
	cfg := durableConfig(dir, ycsb)
	cfg.Durability.SegmentBytes = 2 << 10
	cfg.Durability.CheckpointBytes = 8 << 10

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		resp, err := conn.Submit(context.Background(), markerReq(t, uint64(5000+i), i))
		if err != nil || !resp.Committed() {
			t.Fatalf("submit %d: %+v %v", i, resp, err)
		}
	}
	st := s.Stats()
	if st.Checkpoints == 0 {
		t.Fatalf("no checkpoints after %d commits over %d-byte threshold: %+v", n, cfg.Durability.CheckpointBytes, st)
	}
	if st.TruncatedSegments == 0 {
		t.Fatalf("checkpoints never truncated a segment: %+v", st)
	}
	if st.LastCheckpointLSN == 0 {
		t.Fatalf("checkpoint LSN not recorded: %+v", st)
	}
	conn.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The truncated directory must still recover completely.
	db, info, keys, err := Recover(dir, ycsb.BuildDB())
	if err != nil {
		t.Fatal(err)
	}
	assertMarkers(t, db, n)
	if info.CheckpointLSN == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", info)
	}
	if len(keys) != n {
		t.Fatalf("recovered %d idempotency keys, want %d (sidecar + WAL tail)", len(keys), n)
	}

	// And a recovered server still dedups a key whose WAL record was
	// truncated (the very first submission is the most likely one).
	s2, err := New(durableConfig(dir, ycsb))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	conn2, err := client.Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	resp, err := conn2.Submit(context.Background(), markerReq(t, 5000, 0))
	if err != nil || !resp.Committed() || !resp.Duplicate {
		t.Fatalf("resubmit of truncated-key: %+v %v, want duplicate commit", resp, err)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableSync runs one durable server with real fsync enabled —
// the configuration production uses — and checks every group flush
// carried a sync barrier.
func TestDurableSync(t *testing.T) {
	dir := t.TempDir()
	ycsb := workload.YCSB{Records: 64}
	cfg := durableConfig(dir, ycsb)
	cfg.Durability.NoSync = false

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		resp, err := conn.Submit(context.Background(), markerReq(t, 0, i))
		if err != nil || !resp.Committed() {
			t.Fatalf("submit %d: %+v %v", i, resp, err)
		}
	}
	st := s.Stats()
	if st.WALSyncs == 0 || st.WALSyncs != st.WALFlushes {
		t.Fatalf("syncs %d flushes %d, want equal and nonzero", st.WALSyncs, st.WALFlushes)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestInflightDuplicateRejected pins the third dedup state: while a
// key is executing, a duplicate submission is pushed back with
// retry-after rather than queued twice or answered early.
func TestInflightDuplicateRejected(t *testing.T) {
	dir := t.TempDir()
	ycsb := workload.YCSB{Records: 64}
	cfg := durableConfig(dir, ycsb)
	cfg.FlushInterval = 200 * time.Millisecond // hold the bundle open

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// First submission parks in the open bundle; fire and don't wait.
	go conn.Submit(context.Background(), markerReq(t, 77, 0))
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission stalled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := conn.Submit(context.Background(), markerReq(t, 77, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Rejected() || resp.RetryAfterMS <= 0 {
		t.Fatalf("in-flight duplicate: %+v, want rejection with retry-after", resp)
	}
	if st := s.Stats(); st.DedupInflight != 1 {
		t.Errorf("dedup inflight counter = %d", st.DedupInflight)
	}
}

// TestRetryAfterScalesWithOccupancy pins satellite #1: the backoff
// hint grows with the number of full bundles waiting in the admission
// queue. Exercised directly against the internal method so queue
// occupancy is exact rather than racing live traffic.
func TestRetryAfterScalesWithOccupancy(t *testing.T) {
	ycsb := workload.YCSB{Records: 64}
	s, err := New(Config{
		Addr:          "127.0.0.1:0",
		Bundle:        4,
		FlushInterval: 10 * time.Millisecond,
		QueueDepth:    16,
		DB:            ycsb.BuildDB(),
		Core:          core.Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := s.cfg.FlushInterval.Milliseconds() + 1
	if got := s.retryAfterMS(); got != base {
		t.Fatalf("empty queue: retry-after %d, want %d", got, base)
	}
	// Stuff 12 pendings = 3 full bundles into the queue (the server
	// was never started, so the bundler is not draining it).
	for i := 0; i < 12; i++ {
		s.admit <- &pending{}
	}
	if got := s.retryAfterMS(); got != 4*base {
		t.Fatalf("3-bundle backlog: retry-after %d, want %d", got, 4*base)
	}
	if st := s.Stats(); st.RetryAfterMS != 4*base {
		t.Errorf("Stats.RetryAfterMS = %d, want %d", st.RetryAfterMS, 4*base)
	}
}

// errWriter fails every write and counts attempts.
type errWriter struct{ writes int }

func (w *errWriter) Write([]byte) (int, error) {
	w.writes++
	return 0, errors.New("peer gone")
}

// TestConnWriterLatch pins satellite #2: the first encode error
// latches the writer dead and later sends are skipped without touching
// the connection again.
func TestConnWriterLatch(t *testing.T) {
	var w errWriter
	cw := newConnWriter(&w)
	if cw.send(client.Response{Seq: 1}) {
		t.Fatal("send on a broken connection reported success")
	}
	if w.writes != 1 {
		t.Fatalf("first send made %d writes, want 1", w.writes)
	}
	for i := 0; i < 5; i++ {
		if cw.send(client.Response{Seq: uint64(i)}) {
			t.Fatal("send on a dead writer reported success")
		}
	}
	if w.writes != 1 {
		t.Fatalf("dead writer still written to: %d writes total", w.writes)
	}
}

// TestRecoverEmptyDir pins the fresh-start path: a new data directory
// recovers to the base database with nothing replayed.
func TestRecoverEmptyDir(t *testing.T) {
	base := workload.YCSB{Records: 8}.BuildDB()
	db, info, keys, err := Recover(t.TempDir(), base)
	if err != nil {
		t.Fatal(err)
	}
	if db != base {
		t.Error("fresh recovery should hand back the base database")
	}
	if info.Replayed != 0 || info.CheckpointLSN != 0 || len(keys) != 0 {
		t.Errorf("fresh dir recovered state: %+v, %d keys", info, len(keys))
	}
}

// TestWALRecordsCarryIdemKeys checks the engine-to-log plumbing the
// dedup window depends on across restarts: each committed write-set's
// record carries the submitting request's idempotency key.
func TestWALRecordsCarryIdemKeys(t *testing.T) {
	dir := t.TempDir()
	ycsb := workload.YCSB{Records: 64}
	s, err := New(durableConfig(dir, ycsb))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		resp, err := conn.Submit(context.Background(), markerReq(t, uint64(9000+i), i))
		if err != nil || !resp.Committed() {
			t.Fatalf("submit %d: %+v %v", i, resp, err)
		}
	}
	conn.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	keys := map[uint64]bool{}
	if _, _, err := wal.ReplayDir(dir, func(_ uint64, rec wal.Record) error {
		if rec.IdemKey != 0 {
			keys[rec.IdemKey] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !keys[uint64(9000+i)] {
			t.Errorf("idempotency key %d missing from the log", 9000+i)
		}
	}
}

// TestReliableResubmitAcrossRestart is the client half of the
// exactly-once story without SIGKILL (the chaos harness covers the
// kill): a ReliableConn keeps a submission alive across a full server
// stop-and-restart on the same address and data directory, and a
// resubmitted known-committed key answers Duplicate instead of
// executing twice.
func TestReliableResubmitAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ycsb := workload.YCSB{Records: 256}

	s1, err := New(durableConfig(dir, ycsb))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr() // reuse the concrete port for the restart

	rc := client.DialReliable(addr, client.RetryPolicy{
		Base: time.Millisecond, Max: 50 * time.Millisecond, MaxAttempts: 200, Seed: 42,
	})
	defer rc.Close()

	const before = 10
	keys := make([]uint64, before)
	for i := 0; i < before; i++ {
		req := markerReq(t, 0, i)
		req.IdemKey = rc.NextIdemKey()
		keys[i] = req.IdemKey
		resp, err := rc.Submit(context.Background(), req)
		if err != nil || !resp.Committed() || resp.Duplicate {
			t.Fatalf("submit %d: %+v %v", i, resp, err)
		}
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Fire a submission into the outage: it must retry until the
	// restarted server accepts it.
	type outcome struct {
		resp client.Response
		err  error
	}
	inFlight := make(chan outcome, 1)
	go func() {
		req := markerReq(t, 0, before)
		resp, err := rc.Submit(context.Background(), req)
		inFlight <- outcome{resp, err}
	}()
	time.Sleep(20 * time.Millisecond) // let it fail against the dead port

	cfg2 := durableConfig(dir, ycsb)
	cfg2.Addr = addr
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	assertMarkers(t, s2.DB(), before) // recovered before accepting
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())

	got := <-inFlight
	if got.err != nil || !got.resp.Committed() {
		t.Fatalf("in-flight submission across restart: %+v %v", got.resp, got.err)
	}

	// Resubmit a pre-restart key: recovered dedup window must answer.
	req := markerReq(t, keys[0], 0)
	resp, err := rc.Submit(context.Background(), req)
	if err != nil || !resp.Committed() || !resp.Duplicate {
		t.Fatalf("resubmit of pre-restart key: %+v %v, want duplicate commit", resp, err)
	}
	assertMarkers(t, s2.DB(), before+1)
}
