package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/history"
	"tskd/internal/partition"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

// startServer boots a loopback server over a fresh YCSB database.
func startServer(t *testing.T, mut func(*Config)) (*Server, workload.YCSB) {
	t.Helper()
	ycsb := workload.YCSB{Records: 2000, Theta: 0.9, OpsPerTxn: 8, ReadRatio: 0.5, RMW: true}
	cfg := Config{
		Addr:          "127.0.0.1:0",
		HTTPAddr:      "127.0.0.1:0",
		Bundle:        64,
		FlushInterval: 2 * time.Millisecond,
		QueueDepth:    1024,
		Partitioner:   partition.NewStrife(1),
		DB:            ycsb.BuildDB(),
		Core:          core.Options{Workers: 4, Protocol: "SILO", Seed: 1},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, ycsb
}

// genRequests builds n wire requests from the YCSB generator.
func genRequests(t *testing.T, ycsb workload.YCSB, n int, seed int64) []client.Request {
	t.Helper()
	c := ycsb
	c.Txns = n
	c.Seed = seed
	w := c.Generate()
	reqs := make([]client.Request, len(w))
	for i, tx := range w {
		req, err := client.NewRequest(0, tx)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = req
	}
	return reqs
}

// TestClosedLoopSerializable drives the server with concurrent
// closed-loop clients and checks that every submission commits exactly
// once and that everything committed is conflict-serializable.
func TestClosedLoopSerializable(t *testing.T) {
	rec := history.NewRecorder()
	s, ycsb := startServer(t, func(c *Config) { c.Core.Recorder = rec })
	defer s.Shutdown(context.Background())

	const clients, perClient = 4, 150
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := client.Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			reqs := genRequests(t, ycsb, perClient, int64(100+ci))
			for _, req := range reqs {
				resp, err := conn.Submit(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				if !resp.Committed() {
					errs <- fmt.Errorf("client %d: status %q (%s)", ci, resp.Status, resp.Error)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Committed != clients*perClient {
		t.Errorf("committed %d, want %d", st.Committed, clients*perClient)
	}
	if st.Admitted != clients*perClient || st.Rejected != 0 {
		t.Errorf("admitted %d rejected %d, want %d/0", st.Admitted, st.Rejected, clients*perClient)
	}
	if st.ResultsStreamed != clients*perClient {
		t.Errorf("results %d, want %d", st.ResultsStreamed, clients*perClient)
	}
	if st.Bundles == 0 {
		t.Error("no bundles executed")
	}
	if rec.Len() != clients*perClient {
		t.Errorf("recorder has %d commits, want %d", rec.Len(), clients*perClient)
	}
	if err := rec.Check(); err != nil {
		t.Errorf("serializability: %v", err)
	}
}

// TestOpenLoopAndMetrics fires submissions without waiting for
// responses (open loop), asserts every one gets exactly one result,
// and exercises /healthz and /metrics.
func TestOpenLoopAndMetrics(t *testing.T) {
	s, ycsb := startServer(t, nil)
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 400
	reqs := genRequests(t, ycsb, n, 7)
	rng := rand.New(rand.NewSource(7))
	var wg sync.WaitGroup
	statuses := make(chan string, n)
	for _, req := range reqs {
		// Poisson-ish arrivals at ~100k/s so the bundler's timer and
		// size paths both trigger.
		time.Sleep(time.Duration(rng.ExpFloat64() * float64(10*time.Microsecond)))
		wg.Add(1)
		go func(req client.Request) {
			defer wg.Done()
			resp, err := conn.Submit(context.Background(), req)
			if err != nil {
				statuses <- "err:" + err.Error()
				return
			}
			statuses <- resp.Status
		}(req)
	}
	wg.Wait()
	close(statuses)
	got := map[string]int{}
	for st := range statuses {
		got[st]++
	}
	if got[client.StatusCommit] != n {
		t.Fatalf("statuses %v, want %d commits", got, n)
	}

	// Health endpoint.
	resp, err := http.Get("http://" + s.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}

	// Metrics endpoint must expose the engine counters.
	mresp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if st.Committed != n || st.Bundles == 0 || st.QueueCap == 0 {
		t.Errorf("metrics snapshot: %+v", st)
	}
	if st.ExecLat.Count != n {
		t.Errorf("exec latency count %d, want %d", st.ExecLat.Count, n)
	}
	if st.QueueWait.Count != n {
		t.Errorf("queue wait count %d, want %d", st.QueueWait.Count, n)
	}
}

// TestBackpressure saturates a tiny admission queue and checks that
// overflow is rejected with a retry-after hint instead of buffering,
// and that rejected transactions never execute.
func TestBackpressure(t *testing.T) {
	s, ycsb := startServer(t, func(c *Config) {
		c.Bundle = 4
		c.QueueDepth = 4
		c.FlushInterval = 200 * time.Millisecond // slow flush: queue fills
		c.Core.OpTime = 200 * time.Microsecond   // slow bundles: queue stays full
	})
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 64
	reqs := genRequests(t, ycsb, n, 3)
	var wg sync.WaitGroup
	results := make(chan client.Response, n)
	for _, req := range reqs {
		wg.Add(1)
		go func(req client.Request) {
			defer wg.Done()
			resp, err := conn.Submit(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			results <- resp
		}(req)
	}
	wg.Wait()
	close(results)

	var commits, rejects int
	for resp := range results {
		switch {
		case resp.Committed():
			commits++
		case resp.Rejected():
			rejects++
			if resp.RetryAfterMS <= 0 {
				t.Errorf("rejection without retry-after: %+v", resp)
			}
		default:
			t.Errorf("unexpected status %+v", resp)
		}
	}
	if rejects == 0 {
		t.Fatalf("no rejections with queue depth 4 and %d concurrent submits", n)
	}
	if commits+rejects != n {
		t.Fatalf("commits %d + rejects %d != %d", commits, rejects, n)
	}
	st := s.Stats()
	if st.Committed != uint64(commits) || st.Rejected != uint64(rejects) {
		t.Errorf("server stats %+v disagree with client view (%d commits, %d rejects)", st, commits, rejects)
	}
}

// TestDrainFlushesAdmitted checks the graceful-shutdown contract:
// everything admitted before Shutdown gets a result, new admissions
// are rejected while draining, and the server refuses double shutdown.
func TestDrainFlushesAdmitted(t *testing.T) {
	s, ycsb := startServer(t, func(c *Config) {
		c.Bundle = 512 // big bundle + long flush: drain must force the flush
		c.FlushInterval = time.Hour
	})

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 100
	reqs := genRequests(t, ycsb, n, 11)
	var wg sync.WaitGroup
	results := make(chan client.Response, n)
	for _, req := range reqs {
		wg.Add(1)
		go func(req client.Request) {
			defer wg.Done()
			resp, err := conn.Submit(context.Background(), req)
			if err == nil {
				results <- resp
			}
		}(req)
	}

	// Wait until everything is admitted, then drain: the hour-long
	// flush interval means only Shutdown can release these.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Admitted == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission stalled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	close(results)

	var commits int
	for resp := range results {
		if resp.Committed() {
			commits++
		} else {
			t.Errorf("admitted transaction did not commit: %+v", resp)
		}
	}
	if commits != n {
		t.Fatalf("drain dropped transactions: %d/%d committed", commits, n)
	}
	if err := s.Shutdown(context.Background()); err == nil {
		t.Error("second shutdown should error")
	}
}

// TestRejectedWhileDraining checks that a submission arriving on a
// live connection after drain starts is rejected, not dropped.
func TestRejectedWhileDraining(t *testing.T) {
	s, ycsb := startServer(t, nil)
	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	reqs := genRequests(t, ycsb, 2, 5)
	if resp, err := conn.Submit(context.Background(), reqs[0]); err != nil || !resp.Committed() {
		t.Fatalf("pre-drain submit: %+v %v", resp, err)
	}

	done := make(chan struct{})
	go func() { s.Shutdown(context.Background()); close(done) }()
	// The connection stays open during drain; submissions must bounce.
	// Shutdown may finish before or after the submit lands — both
	// orders must reject or fail cleanly, never hang or drop.
	resp, err := conn.Submit(context.Background(), reqs[1])
	if err == nil && !resp.Rejected() {
		t.Errorf("submit during drain: %+v", resp)
	}
	<-done
}

// TestMalformedRequests checks the error path of the wire protocol.
func TestMalformedRequests(t *testing.T) {
	s, _ := startServer(t, nil)
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	resp, err := conn.Submit(context.Background(), client.Request{Ops: "R[x1]X[x2]"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != client.StatusError || resp.Error == "" {
		t.Errorf("malformed ops: %+v", resp)
	}
	if st := s.Stats(); st.Malformed != 1 {
		t.Errorf("malformed counter = %d", st.Malformed)
	}
	// The connection must still work afterwards.
	good := txn.MustParse(0, "R[x1]W[x1]")
	req, _ := client.NewRequest(0, good)
	resp, err = conn.Submit(context.Background(), req)
	if err != nil || !resp.Committed() {
		t.Errorf("post-error submit: %+v %v", resp, err)
	}
}

// TestClientDisconnectMidStream kills a client connection after its
// transactions are admitted but (mostly) before their outcomes stream
// back. The contract under test: admitted transactions still execute
// exactly once — outcomes are forfeited by the dead client, never lost
// by the server and never executed twice — and other connections are
// unaffected. Unique marker inserts per submission make the execution
// count observable through the recorder.
func TestClientDisconnectMidStream(t *testing.T) {
	rec := history.NewRecorder()
	s, _ := startServer(t, func(c *Config) {
		c.Core.Recorder = rec
		c.FlushInterval = 50 * time.Millisecond // admit first, execute later
	})

	const markerBase = 1 << 20
	marker := func(i int) uint64 { return markerBase + uint64(i) }
	makeReq := func(t *testing.T, seq uint64, m uint64) client.Request {
		tx := txn.New(0).
			R(txn.MakeKey(workload.YCSBTable, m%64)).
			U(txn.MakeKey(workload.YCSBTable, (m+7)%64), 1).
			I(txn.MakeKey(workload.YCSBTable, m))
		req, err := client.NewRequest(seq, tx)
		if err != nil {
			t.Fatal(err)
		}
		return req
	}

	// The doomed client: fire-and-forget submissions on a raw
	// connection, then slam it shut without reading a single response.
	const doomed = 60
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(nc)
	for i := 0; i < doomed; i++ {
		req := makeReq(t, uint64(i+1), marker(i))
		if err := enc.Encode(&req); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Admitted < doomed {
		if time.Now().After(deadline) {
			t.Fatalf("admission stalled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	nc.Close() // mid-stream: admitted, outcomes still pending

	// A healthy client on a separate connection must be unaffected.
	const live = 40
	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < live; i++ {
		resp, err := conn.Submit(context.Background(), makeReq(t, 0, marker(doomed+i)))
		if err != nil {
			t.Fatalf("live submit %d: %v", i, err)
		}
		if !resp.Committed() {
			t.Fatalf("live submit %d: %+v", i, resp)
		}
	}

	// Drain, then reconcile: every admitted transaction executed
	// exactly once, dead connection or not.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	installs := make(map[uint64]int)
	for _, e := range rec.Events() {
		for _, w := range e.Writes {
			if w.Key.Row() >= markerBase {
				installs[w.Key.Row()]++
			}
		}
	}
	for i := 0; i < doomed+live; i++ {
		if n := installs[marker(i)]; n != 1 {
			t.Errorf("submission %d executed %d times, want exactly 1", i, n)
		}
	}
	st := s.Stats()
	if st.Admitted != doomed+live || st.Committed != doomed+live {
		t.Errorf("admitted %d committed %d, want %d/%d", st.Admitted, st.Committed, doomed+live, doomed+live)
	}
	if st.ResultsStreamed != doomed+live {
		t.Errorf("results streamed %d, want %d (dead client forfeits, server still streams)", st.ResultsStreamed, doomed+live)
	}
	if err := rec.Check(); err != nil {
		t.Errorf("serializability: %v", err)
	}
}

// TestPprofEndpoint verifies that EnablePprof mounts live profile
// handlers on the metrics mux: the heap profile must be retrievable
// from a running server, and must be absent when the flag is off.
func TestPprofEndpoint(t *testing.T) {
	s, _ := startServer(t, func(c *Config) { c.EnablePprof = true })
	defer s.Shutdown(context.Background())

	resp, err := http.Get("http://" + s.HTTPAddr() + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "heap profile") {
		t.Errorf("heap profile body looks wrong: %.80s", body)
	}

	off, _ := startServer(t, nil)
	defer off.Shutdown(context.Background())
	resp2, err := http.Get("http://" + off.HTTPAddr() + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled but /debug/pprof/heap = %d", resp2.StatusCode)
	}
}
