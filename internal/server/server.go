// Package server is the TSKD serving layer: a TCP front-end that turns
// open-system arrivals into the paper's bundled workload model
// (Section 2.1). Transactions arrive over the wire protocol of
// internal/client, pass a bounded admission queue with explicit
// backpressure, accumulate into bundles closed by size or by a flush
// timer, and execute through core.Pipeline — TSgen scheduling plus
// TsDEFER, with cost estimates learned from the execution history of
// earlier bundles. Per-transaction outcomes (commit/abort, retries,
// queue wait, execution latency) stream back on the submitting
// connection.
//
// The admission queue is the only buffer between the network and the
// engine, and it is bounded: when it is full — or the server is
// draining — a submission is rejected immediately with a retry-after
// hint, never buffered without limit. Graceful shutdown stops
// admitting, flushes everything already admitted, and only then
// returns; a hard deadline cancels the in-flight bundle through the
// engine's context plumbing, reporting the abandoned transactions as
// canceled rather than dropping them silently.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"tskd/internal/arbiter"
	"tskd/internal/cc"
	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/metrics"
	"tskd/internal/overload"
	"tskd/internal/replica"
	"tskd/internal/partition"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
)

// Config configures a Server.
type Config struct {
	// Addr is the transaction listener address (e.g. ":7070"; use
	// "127.0.0.1:0" in tests and read back Addr()).
	Addr string
	// HTTPAddr serves /healthz and /metrics; empty disables the HTTP
	// listener.
	HTTPAddr string
	// EnablePprof additionally mounts net/http/pprof under
	// /debug/pprof/ on the HTTP listener, so CPU, heap and allocation
	// profiles can be pulled from a live server. No effect when
	// HTTPAddr is empty.
	EnablePprof bool
	// Bundle closes a bundle once this many transactions have been
	// collected (default 512).
	Bundle int
	// FlushInterval closes a non-empty bundle at latest this long
	// after its first transaction was collected (default 10ms), so a
	// trickle of arrivals is never stranded waiting for a full bundle.
	FlushInterval time.Duration
	// QueueDepth is the admission queue capacity (default 4×Bundle).
	// Submissions beyond it are rejected with a retry-after hint.
	QueueDepth int
	// DB is the database the transactions run against; required.
	DB *storage.DB
	// Partitioner splits each bundle before TSgen; nil is TSKD[0]
	// (scheduling from scratch).
	Partitioner partition.Partitioner
	// Core configures workers, CC protocol, TsDEFER and friends.
	// Estimator, CostSink, TraceSpans, Ctx and WAL are managed by the
	// server and must be left zero. Recorder may be set (tests) to
	// capture commits for serializability checking.
	Core core.Options
	// Durability, when non-nil, makes the server durable: commits are
	// WAL-logged and fsynced before they acknowledge, the database is
	// checkpointed in the background, and New recovers the data
	// directory (checkpoint + WAL tail) before any listener binds.
	Durability *DurabilityOptions
	// Overload configures deadlines, adaptive shedding, and the
	// WAL-stall circuit breaker (see overload.go). The zero value
	// enables shedding and — on durable servers — the breaker, with
	// defaults.
	Overload OverloadOptions
	// Shards, when > 1, runs the server in sharded mode: the key space
	// is hash-partitioned over this many independent engine instances
	// (internal/shard), each with its own bundling loop — and, when
	// Durability is set, its own WAL directory and checkpoints under
	// Durability.Dir — while cross-shard transactions commit through
	// two-phase commit. DB and Partitioner are ignored in sharded mode;
	// ShardDB (and optionally ShardPartitioner) take their place.
	// Deadline stamping still applies, but the shedder and the WAL
	// breaker do not (each shard's bounded queue is the backpressure).
	Shards int
	// ShardDB builds shard i's initial store; required in sharded mode.
	ShardDB func(i int) *storage.DB
	// ShardPartitioner builds shard i's bundle partitioner (sharded
	// mode only; nil is TSKD[0] on every shard).
	ShardPartitioner func(i int) partition.Partitioner
	// Lease, when non-nil, gates the server on an arbiter lease
	// (internal/arbiter): a submission is dispatched only while the
	// lease is held — otherwise it is refused with StatusNotPrimary
	// carrying the current leader's address when known — and on a
	// durable server every WAL group flush re-checks the lease before
	// releasing client acks, so a deposed primary cannot acknowledge a
	// commit its successor will never have. /healthz reports 503 until
	// the lease is held. The server does not own the client: close it
	// after Shutdown.
	Lease *arbiter.LeaseClient
}

func (c *Config) withDefaults() error {
	if c.Shards > 1 {
		if c.ShardDB == nil {
			return errors.New("server: Config.ShardDB is required in sharded mode")
		}
	} else if c.DB == nil {
		return errors.New("server: Config.DB is required")
	}
	if c.Bundle <= 0 {
		c.Bundle = 512
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 10 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Bundle
	}
	name := c.Core.Protocol
	if name == "" {
		name = "OCC"
	}
	if _, err := cc.New(name); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if c.Durability != nil {
		if err := c.Durability.withDefaults(); err != nil {
			return err
		}
	}
	c.Overload.withDefaults(c.FlushInterval)
	return nil
}

// Stats is a point-in-time snapshot of the server's counters, the
// payload of the /metrics endpoint.
type Stats struct {
	// Admission.
	Admitted   uint64 `json:"admitted"`
	Rejected   uint64 `json:"rejected"`
	Malformed  uint64 `json:"malformed"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Draining   bool   `json:"draining"`

	// Wire protocol negotiation: connections served over the binary
	// frame protocol vs the NDJSON fallback (lifetime totals, not
	// currently-open counts).
	ConnsBinary uint64 `json:"conns_binary"`
	ConnsNDJSON uint64 `json:"conns_ndjson"`

	// Bundling.
	Bundles         int     `json:"bundles"`
	MeanOccupancy   float64 `json:"mean_bundle_occupancy"`
	MaxOccupancy    int     `json:"max_bundle_occupancy"`
	HistoryRecords  int     `json:"history_records"`
	ResultsStreamed uint64  `json:"results_streamed"`

	// Engine counters, accumulated across bundles.
	Committed  uint64 `json:"committed"`
	Retries    uint64 `json:"retries"`
	Defers     uint64 `json:"defers"`
	UserAborts uint64 `json:"user_aborts"`
	Canceled   uint64 `json:"canceled"`
	Contended  uint64 `json:"contended"`

	// Forfeited counts produced outcomes whose delivery failed because
	// the submitting connection died (they are included in
	// ResultsStreamed: produced, not delivered).
	Forfeited uint64 `json:"forfeited"`
	// RetryAfterMS is the backoff hint a rejection would carry right
	// now: the flush interval scaled by admission-queue occupancy,
	// raised to the breaker's and the shedder's own hints when either
	// is backing traffic off.
	RetryAfterMS int64 `json:"retry_after_ms"`

	// Overload resilience. Expired counts transactions dropped past
	// their deadline anywhere on the path (submission, bundle
	// formation, or inside the engine between attempts); Shed counts
	// admissions dropped by the adaptive controller; BreakerRejected
	// counts durable admissions failed fast while the WAL breaker was
	// not closed. The three are disjoint from each other and from
	// Rejected (static queue-full).
	Expired         uint64  `json:"expired"`
	Shed            uint64  `json:"shed"`
	BreakerRejected uint64  `json:"breaker_rejected,omitempty"`
	BreakerTrips    uint64  `json:"breaker_trips,omitempty"`
	BreakerState    string  `json:"breaker_state,omitempty"`
	ShedLevel       float64 `json:"shed_level"`
	Brownout        bool    `json:"brownout"`
	BrownoutEnters  uint64  `json:"brownout_enters,omitempty"`
	// OverloadEvents is the recent mode-transition history (breaker
	// state changes, brownout enter/exit), oldest first.
	OverloadEvents []overload.Event `json:"overload_events,omitempty"`

	// Durability (zero unless Config.Durability is set).
	WALRecords        uint64 `json:"wal_records,omitempty"`
	WALFlushes        uint64 `json:"wal_flushes,omitempty"`
	WALSyncs          uint64 `json:"wal_syncs,omitempty"`
	WALBytes          int64  `json:"wal_bytes,omitempty"`
	Checkpoints       uint64 `json:"checkpoints,omitempty"`
	CheckpointErrors  uint64 `json:"checkpoint_errors,omitempty"`
	LastCheckpointLSN uint64 `json:"last_checkpoint_lsn,omitempty"`
	TruncatedSegments uint64 `json:"truncated_segments,omitempty"`
	// DedupHits counts submissions answered from the idempotency
	// window (committed duplicates); DedupInflight counts duplicates
	// rejected because the original was still executing.
	DedupHits     uint64 `json:"dedup_hits,omitempty"`
	DedupInflight uint64 `json:"dedup_inflight,omitempty"`
	DedupSize     int    `json:"dedup_size,omitempty"`

	// NotPrimary counts submissions refused because the arbiter lease
	// was not held; Lease snapshots the lease itself (nil unless
	// Config.Lease is set).
	NotPrimary uint64              `json:"not_primary,omitempty"`
	Lease      *arbiter.LeaseStats `json:"lease,omitempty"`

	// Replication (nil unless this server ships to a backup): the
	// pair's role, fencing epoch, health state, and lag. The epoch is
	// also reported on /healthz so operators can spot a deposed
	// primary at a glance.
	Replication *ReplicationStats `json:"replication,omitempty"`

	// Sharded runtime (empty unless Config.Shards > 1): per-shard
	// counters plus the cross-shard 2PC counters
	// (prepared/committed/aborted/in-doubt and friends). The top-level
	// engine counters above are rolled up across shards, with 2PC
	// commits included in Committed.
	Shards []shard.ShardStats `json:"shards,omitempty"`
	TwoPC  *shard.TwoPCStats  `json:"twopc,omitempty"`

	// Throughput over the server's lifetime, commits per wall second.
	Throughput float64 `json:"throughput"`

	// Latency distributions.
	QueueWait metrics.HistogramSnapshot `json:"queue_wait"`
	ExecLat   metrics.HistogramSnapshot `json:"exec_latency"`
}

// ReplicationStats is the /metrics replication block: the pair role
// ("primary" while shipping; a receiver-mode process reports its own)
// plus the shipper's counters — epoch, sync flag, monitor state,
// lag_bytes, shipped/acked progress, and whether this primary has been
// fenced by a promoted backup.
type ReplicationStats struct {
	Role string `json:"role"`
	replica.ShipperStats
}

// pending is one admitted transaction awaiting execution. Pendings and
// their embedded transactions are pooled: the serve path allocates
// neither in steady state. Ownership moves with the struct — the
// reader goroutine owns it from getPending until tryAdmit succeeds,
// then the bundler owns it until the response has been buffered on the
// connection, at which point putPending recycles it.
type pending struct {
	t        *txn.Transaction
	seq      uint64
	conn     *connWriter
	enqueued time.Time
}

var pendingPool = sync.Pool{
	New: func() any { return &pending{t: &txn.Transaction{}} },
}

func getPending() *pending { return pendingPool.Get().(*pending) }

// putPending recycles p. The transaction keeps its Ops, Params and
// access-set capacity (params are pointer-free, so retaining the array
// pins no request memory) but drops the template reference.
func putPending(p *pending) {
	p.t.Template = ""
	p.t.Params = p.t.Params[:0]
	p.conn = nil
	pendingPool.Put(p)
}

// Server is a running tskd-serve instance.
type Server struct {
	cfg      Config
	pipeline *core.Pipeline
	rt       *shard.Runtime // non-nil in sharded mode; pipeline is nil

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	admit     chan *pending
	admitMu   sync.RWMutex // draining flips under the write lock
	draining  bool
	drainCh   chan struct{} // closed when draining starts
	bundlerWG sync.WaitGroup

	runCtx    context.Context
	runCancel context.CancelFunc

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// ndjsonOnce limits the protocol-downgrade warning to one line per
	// server: NDJSON is a supported fallback, not an error, so one
	// notice suffices.
	ndjsonOnce sync.Once

	start time.Time

	// Durability (nil/zero unless cfg.Durability is set). log and
	// dedup are internally synchronized; lastCkpt* are touched only by
	// the bundler goroutine.
	log           *wal.Log
	dedup         *dedupWindow
	recovery      RecoveryInfo
	lastCkptLSN   uint64
	lastCkptBytes int64

	// replicaEpoch is the fencing epoch this incarnation runs under
	// (the shipper's when replicating, the directory's persisted epoch
	// after a promotion, 0 otherwise). Immutable after New.
	replicaEpoch uint64

	// Overload resilience. shed and breaker are internally
	// synchronized leaves (safe from connection goroutines and from
	// inside WAL flush completion); events likewise. brownoutOn is
	// owned by the bundler goroutine. breaker is nil unless the server
	// is durable and the breaker enabled; shed is nil when shedding is
	// disabled.
	shed       *overload.Shedder
	breaker    *overload.Breaker
	events     *overload.EventLog
	brownoutOn bool

	mu        sync.Mutex // guards everything below
	stats     Stats
	queueWait metrics.Histogram
	execLat   metrics.Histogram

	// Bundle scaffolding, owned by the bundler goroutine and reused
	// across bundles so steady-state bundling does not allocate.
	batch    []*pending
	work     txn.Workload
	spans    []engine.ExecSpan // dense by in-bundle txn ID
	haveSpan []bool
}

// New validates cfg and returns an unstarted server. With
// Config.Durability set, New also runs startup recovery — newest valid
// checkpoint plus WAL tail — so by the time it returns, the server's
// database holds every commit a previous incarnation ever
// acknowledged; Start then binds the listeners over that state.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		admit:     make(chan *pending, cfg.QueueDepth),
		drainCh:   make(chan struct{}),
		runCtx:    runCtx,
		runCancel: cancel,
		conns:     make(map[net.Conn]struct{}),
		events:    overload.NewEventLog(0),
	}
	if cfg.Shards > 1 {
		// Sharded mode: the multi-shard runtime replaces the pipeline,
		// the WAL, the dedup window, the shedder and the breaker — each
		// shard runs its own bundling loop over its own slice of the key
		// space, and recovery (when durable) resolves every in-doubt
		// prepared transaction before Open returns.
		if err := s.openSharded(); err != nil {
			cancel()
			return nil, err
		}
		return s, nil
	}
	if !cfg.Overload.DisableShed {
		s.shed = overload.NewShedder(overload.ShedConfig{
			Target: cfg.Overload.ShedTarget,
			Window: cfg.Overload.ShedWindow,
			Seed:   cfg.Core.Seed + 1,
		})
	}
	if cfg.Durability != nil {
		if err := s.openDurable(); err != nil {
			cancel()
			return nil, err
		}
	}
	opts := s.cfg.Core
	opts.TraceSpans = true // per-transaction outcomes come from spans
	opts.WAL = s.log       // nil unless durable
	s.pipeline = core.NewPipeline(s.cfg.DB, s.cfg.Partitioner, opts)
	return s, nil
}

// DB returns the database the server runs against — the recovered one
// when Config.Durability is set.
func (s *Server) DB() *storage.DB { return s.cfg.DB }

// Recovery reports what startup recovery found (zero when the server
// is not durable or the directory was fresh).
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// Start binds the listeners and launches the accept and bundler loops.
// A lease-gated server first waits briefly for its first lease so the
// common case — a healthy primary booting — never answers early
// connections with not_primary; a server that cannot acquire the lease
// (arbiter down, or already fenced) still binds and serves refusals,
// redirecting clients to the leader.
func (s *Server) Start() error {
	if s.cfg.Lease != nil {
		s.cfg.Lease.WaitHeld(2 * time.Second)
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/metrics", s.handleMetrics)
		if s.cfg.EnablePprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(hln)
	}
	s.start = time.Now()
	if s.rt == nil {
		s.bundlerWG.Add(1)
		go s.bundler()
	}
	go s.acceptLoop()
	return nil
}

// Addr returns the transaction listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr returns the HTTP listener's bound address ("" if disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Shutdown drains gracefully: stop accepting connections and
// admitting transactions, flush every bundle already admitted, then
// close. If ctx expires first, the in-flight bundle is canceled
// through the engine (its unfinished transactions respond "canceled")
// and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if already {
		return errors.New("server: already shut down")
	}
	s.ln.Close()
	close(s.drainCh)

	done := make(chan struct{})
	go func() {
		s.bundlerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel() // hard stop: abandon the in-flight bundle
		<-done
		err = ctx.Err()
	}
	if s.rt != nil {
		// The runtime drains its own shards (in-flight 2PCs decide and
		// apply first) and closes its logs.
		if rerr := s.rt.Shutdown(ctx); err == nil {
			err = rerr
		}
	}

	if s.log != nil {
		// The bundler has exited: no commit can be in flight. Close
		// flushes and fsyncs whatever the group window still held.
		if cerr := s.log.Close(); err == nil {
			err = cerr
		}
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.connMu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.connMu.Unlock()
	return err
}

// acceptLoop owns the transaction listener.
func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.connMu.Lock()
		s.conns[nc] = struct{}{}
		s.connMu.Unlock()
		go s.serveConn(nc)
	}
}

// connWriter serializes responses onto one connection. Sends come
// from both the reader (rejections, parse errors) and the bundler
// (outcomes). Responses are encoded into per-connection scratch
// buffers (no per-send allocation) and written through a bufio.Writer:
// reader-path sends flush immediately, bundle outcomes stay buffered
// until the bundler's per-bundle flush so a bundle costs one syscall
// per connection instead of one per transaction. On a binary
// connection the buffered outcomes additionally coalesce into one
// BinFrameResponses frame per flush, so a pipelined client decodes a
// whole bundle's outcomes from one read. The first write error latches
// the writer dead: a TCP write to a gone peer can block for the whole
// kernel timeout, so retrying a dead connection once per outcome would
// stall the bundler — instead every later send is skipped immediately
// and the outcome counted as forfeited.
type connWriter struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	buf  []byte // encode scratch, owned by mu
	dead bool

	// Binary protocol state. batch accumulates encoded response bodies
	// for the next BinFrameResponses frame; batchN counts them.
	binary bool
	batch  []byte
	batchN uint32
}

// maxRespBatchBytes cuts a response frame early when the accumulated
// bodies grow large, keeping frames well under MaxBinFrameBytes.
const maxRespBatchBytes = 1 << 20

func newConnWriter(w io.Writer) *connWriter {
	return &connWriter{bw: bufio.NewWriterSize(w, 16<<10)}
}

// setBinary switches the writer to the binary frame protocol. Called
// once, after negotiation and before any send on the connection.
func (cw *connWriter) setBinary() {
	cw.mu.Lock()
	cw.binary = true
	cw.mu.Unlock()
}

// send encodes resp onto the connection and flushes, reporting whether
// it was (apparently) delivered. False means the connection is dead
// and the response was dropped.
func (cw *connWriter) send(resp client.Response) bool {
	return cw.write(&resp, true)
}

// sendBuffered encodes resp into the connection's write buffer without
// flushing. The caller must arrange a flush (the bundler flushes once
// per bundle per connection); until then the response is not on the
// wire.
func (cw *connWriter) sendBuffered(resp *client.Response) bool {
	return cw.write(resp, false)
}

func (cw *connWriter) write(resp *client.Response, flush bool) bool {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.dead {
		return false
	}
	if cw.binary {
		cw.batch = client.AppendResponseBody(cw.batch, resp)
		cw.batchN++
		if flush || len(cw.batch) >= maxRespBatchBytes {
			return cw.flushLocked()
		}
		return true
	}
	cw.buf = client.AppendResponse(cw.buf[:0], resp)
	if _, err := cw.bw.Write(cw.buf); err != nil {
		cw.dead = true
		return false
	}
	if flush {
		if err := cw.bw.Flush(); err != nil {
			cw.dead = true
			return false
		}
	}
	return true
}

// flush pushes any buffered responses to the socket (on a binary
// connection: assembles the pending bodies into one frame first).
func (cw *connWriter) flush() {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.dead {
		return
	}
	cw.flushLocked()
}

// flushLocked emits the pending binary frame, if any, and flushes the
// buffered writer. Caller holds cw.mu.
func (cw *connWriter) flushLocked() bool {
	if cw.batchN > 0 {
		var hdr [9]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(1+4+len(cw.batch)))
		hdr[4] = client.BinFrameResponses
		binary.LittleEndian.PutUint32(hdr[5:], cw.batchN)
		_, err := cw.bw.Write(hdr[:])
		if err == nil {
			_, err = cw.bw.Write(cw.batch)
		}
		cw.batch, cw.batchN = cw.batch[:0], 0
		if err != nil {
			cw.dead = true
			return false
		}
	}
	if cw.bw.Buffered() == 0 {
		return true
	}
	if err := cw.bw.Flush(); err != nil {
		cw.dead = true
		return false
	}
	return true
}

// serveConn negotiates the wire protocol by sniffing the first byte —
// a binary client opens with the preamble, whose first byte cannot
// begin a JSON value — and hands the connection to the matching serve
// loop.
func (s *Server) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.connMu.Lock()
		delete(s.conns, nc)
		s.connMu.Unlock()
	}()
	cw := newConnWriter(nc)
	br := bufio.NewReaderSize(nc, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return // closed before the first byte
	}
	if first[0] == client.BinPreamble[0] {
		s.serveBinary(nc, br, cw)
		return
	}
	s.count(func(st *Stats) { st.ConnsNDJSON++ })
	s.ndjsonOnce.Do(func() {
		log.Printf("tskd-serve: accepted NDJSON fallback client (binary wire protocol available; pass -wire binary to the client)")
	})
	s.serveNDJSON(br, cw)
}

// serveNDJSON reads request lines, parses them, and admits them — the
// fallback protocol, byte-compatible with every earlier client.
func (s *Server) serveNDJSON(br *bufio.Reader, cw *connWriter) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	dec := client.NewRequestDecoder(0)
	var req client.Request // reused across lines; Params copied below
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := dec.Decode(line, &req); err != nil {
			s.count(func(st *Stats) { st.Malformed++ })
			cw.send(client.Response{Status: client.StatusError, Error: "bad envelope: " + err.Error()})
			continue
		}
		if s.rt != nil {
			s.serveSharded(&req, cw)
			continue
		}
		p := getPending()
		if err := txn.ParseInto(p.t, 0, req.Ops); err != nil {
			putPending(p)
			s.count(func(st *Stats) { st.Malformed++ })
			cw.send(client.Response{Seq: req.Seq, Status: client.StatusError, Error: err.Error()})
			continue
		}
		p.t.Template = req.Template
		// Copied, not handed off: the pooled transaction and the decode
		// scratch each keep their backing arrays, so the steady state
		// allocates neither.
		p.t.Params = append(p.t.Params[:0], req.Params...)
		p.t.IdemKey = req.IdemKey
		s.admitDecoded(&req, p, cw)
	}
}

// serveBinary validates the preamble, acks it, and serves length-
// prefixed request frames. Frame decode errors are answered per
// request (the length prefix delimits them safely); header corruption
// — a bad length or frame type — kills the connection, since the
// stream can no longer be trusted.
func (s *Server) serveBinary(nc net.Conn, br *bufio.Reader, cw *connWriter) {
	var pre [len(client.BinPreamble)]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return
	}
	if string(pre[:]) != client.BinPreamble {
		s.count(func(st *Stats) { st.Malformed++ })
		return
	}
	// Ack before any response can race: nothing is admitted yet, so
	// writing to the socket directly is safe and keeps the handshake
	// out of the connWriter's framing.
	if _, err := nc.Write(pre[:]); err != nil {
		return
	}
	cw.setBinary()
	s.count(func(st *Stats) { st.ConnsBinary++ })
	in := client.NewInterner(0)
	var hdr [4]byte
	var payload []byte
	var req client.Request
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // EOF here is a clean close
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n < 1 || n > client.MaxBinFrameBytes {
			s.count(func(st *Stats) { st.Malformed++ })
			cw.send(client.Response{Status: client.StatusError, Error: fmt.Sprintf("bad frame length %d", n)})
			return
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		if payload[0] != client.BinFrameRequest {
			s.count(func(st *Stats) { st.Malformed++ })
			cw.send(client.Response{Status: client.StatusError, Error: fmt.Sprintf("unexpected frame type %d", payload[0])})
			return
		}
		if s.rt != nil {
			// Sharded mode: the runtime owns each transaction until its
			// response callback has run, so no pooling here (matching
			// the NDJSON sharded path).
			t := &txn.Transaction{}
			if err := client.DecodeRequestFrame(payload, &req, t, in); err != nil {
				s.count(func(st *Stats) { st.Malformed++ })
				cw.send(client.Response{Seq: req.Seq, Status: client.StatusError, Error: err.Error()})
				continue
			}
			s.serveShardedParsed(&req, t, cw)
			continue
		}
		p := getPending()
		if err := client.DecodeRequestFrame(payload, &req, p.t, in); err != nil {
			putPending(p)
			s.count(func(st *Stats) { st.Malformed++ })
			cw.send(client.Response{Seq: req.Seq, Status: client.StatusError, Error: err.Error()})
			continue
		}
		s.admitDecoded(&req, p, cw)
	}
}

// checkLease refuses a submission with StatusNotPrimary when the
// server is lease-gated and the lease is not currently held — the
// client-facing half of fencing: a deposed (or not-yet-promoted)
// server redirects clients to the leader instead of executing work it
// could never acknowledge. Returns true when dispatch may proceed.
func (s *Server) checkLease(seq uint64, cw *connWriter) bool {
	lc := s.cfg.Lease
	if lc == nil || lc.Check() == nil {
		return true
	}
	ls := lc.Stats()
	s.count(func(st *Stats) { st.NotPrimary++ })
	// The TTL is the natural retry horizon: by then the lease has
	// either been re-acquired or granted away to the leader named here.
	cw.send(client.Response{Seq: seq, Status: client.StatusNotPrimary,
		Leader: ls.Leader, RetryAfterMS: ls.TTLMS})
	return false
}

// admitDecoded runs the admission tail shared by both protocols for a
// request whose transaction p.t is fully populated: lease gate,
// idempotency window, overload gate, bounded admission.
func (s *Server) admitDecoded(req *client.Request, p *pending, cw *connWriter) {
	if !s.checkLease(req.Seq, cw) {
		putPending(p)
		return
	}
	if req.IdemKey != 0 && s.dedup != nil {
		switch state, cached := s.dedup.begin(req.IdemKey); state {
		case dedupHit:
			// Already committed (possibly in a previous incarnation):
			// answer without executing.
			putPending(p)
			cached.Seq = req.Seq
			cached.Duplicate = true
			s.count(func(st *Stats) { st.DedupHits++ })
			cw.send(cached)
			return
		case dedupInflight:
			// The original is still executing; its outcome will reach
			// whoever submitted it. Back off and retry: by then the key
			// is either committed (answered above) or released
			// (executes fresh).
			putPending(p)
			s.count(func(st *Stats) { st.DedupInflight++ })
			cw.send(client.Response{
				Seq: req.Seq, Status: client.StatusRejected,
				RetryAfterMS: s.retryAfterMS(),
			})
			return
		}
	}
	now := time.Now()
	p.seq, p.conn, p.enqueued = req.Seq, cw, now
	if !s.gate(req, p, cw, now) {
		return // answered: breaker-rejected, shed, or expired
	}
	if s.tryAdmit(p) {
		s.count(func(st *Stats) { st.Admitted++ })
	} else {
		s.refuse(req, p, cw, client.StatusRejected, s.retryAfterMS(),
			func(st *Stats) { st.Rejected++ })
	}
}

// retryAfterMS is the backoff hint for a rejection: the flush interval
// (plus one tick) scaled by how many full bundles are already waiting
// in the admission queue, so the hint grows with the backlog a
// retrying client is behind. When the breaker is open or the shedder
// engaged, their own hints take over if larger — there is no point
// retrying sooner than the WAL can recover or the backlog can drain.
func (s *Server) retryAfterMS() int64 {
	base := s.cfg.FlushInterval.Milliseconds() + 1
	waiting := len(s.admit) / s.cfg.Bundle
	ms := base * int64(1+waiting)
	if s.breaker != nil {
		if bra := s.breaker.RetryAfter().Milliseconds(); bra > ms {
			ms = bra
		}
	}
	if s.shed != nil {
		if sra := s.shed.Backoff().Milliseconds(); sra > ms {
			ms = sra
		}
	}
	return ms
}

// tryAdmit enqueues p unless the queue is full or the server is
// draining. The read lock pairs with Shutdown's write lock so that no
// admission can slip in after draining flips: every pending the
// bundler must flush is already in the channel when drainCh closes.
func (s *Server) tryAdmit(p *pending) bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		return false
	}
	select {
	case s.admit <- p:
		return true
	default:
		return false
	}
}

// bundler is the single consumer of the admission queue: it collects
// bundles (size- or timer-closed) and executes them in admission
// order.
func (s *Server) bundler() {
	defer s.bundlerWG.Done()
	for {
		var first *pending
		select {
		case first = <-s.admit:
		case <-s.drainCh:
			s.finalDrain()
			return
		}
		batch := append(s.batch[:0], first)
		timer := time.NewTimer(s.cfg.FlushInterval)
	collect:
		for len(batch) < s.cfg.Bundle {
			select {
			case p := <-s.admit:
				batch = append(batch, p)
			case <-timer.C:
				break collect
			case <-s.drainCh:
				break collect
			}
		}
		timer.Stop()
		s.batch = batch
		s.runBundle(batch)
		s.maybeCheckpoint()
	}
}

// finalDrain flushes whatever was admitted before draining flipped.
func (s *Server) finalDrain() {
	batch := s.batch[:0]
	for {
		select {
		case p := <-s.admit:
			batch = append(batch, p)
			if len(batch) >= s.cfg.Bundle {
				s.runBundle(batch)
				batch = batch[:0]
			}
		default:
			if len(batch) > 0 {
				s.runBundle(batch)
			}
			s.batch = batch[:0]
			return
		}
	}
}

// runBundle renumbers the batch densely, executes it through the
// pipeline, and streams one response per transaction. Responses are
// buffered per connection and flushed once at the bundle boundary —
// one write syscall per connection per bundle — and the batch's
// pendings (with their transactions) return to the pool afterwards.
func (s *Server) runBundle(batch []*pending) {
	batch = s.dropExpired(batch)
	if len(batch) == 0 {
		return
	}
	w := s.work[:0]
	for i, p := range batch {
		p.t.ID = i
		w = append(w, p.t)
	}
	s.work = w
	bundleNo := s.pipeline.Bundles()
	execStart := time.Now()
	res, err := s.pipeline.ProcessContext(s.runCtx, w)
	if err != nil {
		// Unreachable with a validated Config; fail the batch loudly
		// rather than dropping it.
		for _, p := range batch {
			p.conn.send(client.Response{Seq: p.seq, Status: client.StatusError, Error: err.Error()})
		}
		s.releaseBatch(batch)
		return
	}

	// Transaction IDs are dense 0..len(batch)-1, so span lookup is a
	// slice index, not a map.
	if cap(s.spans) < len(batch) {
		s.spans = make([]engine.ExecSpan, len(batch))
		s.haveSpan = make([]bool, len(batch))
	}
	spans, have := s.spans[:len(batch)], s.haveSpan[:len(batch)]
	for i := range have {
		have[i] = false
	}
	for _, sp := range res.Spans {
		if sp.TxnID >= 0 && sp.TxnID < len(batch) {
			spans[sp.TxnID], have[sp.TxnID] = sp, true
		}
	}
	respNow := time.Now()
	s.mu.Lock()
	for _, p := range batch {
		resp := client.Response{Seq: p.seq, Bundle: bundleNo}
		wait := execStart.Sub(p.enqueued)
		resp.QueueUS = wait.Microseconds()
		s.queueWait.Record(wait)
		if have[p.t.ID] {
			sp := spans[p.t.ID]
			exec := sp.End - sp.Start
			resp.Status = client.StatusCommit
			resp.Retries = sp.Retries
			resp.ExecUS = exec.Microseconds()
			s.execLat.Record(exec)
		} else if p.t.UserAbort {
			resp.Status = client.StatusAbort
		} else if !p.t.Deadline.IsZero() && respNow.After(p.t.Deadline) {
			// No span, no user abort, deadline passed: the engine
			// dropped it (before its first attempt or between retries).
			resp.Status = client.StatusExpired
		} else {
			resp.Status = client.StatusCanceled
		}
		if p.t.IdemKey != 0 && s.dedup != nil {
			if resp.Status == client.StatusCommit {
				// The commit is already durable (the engine blocks each
				// commit on its WAL group flush), so remembering the
				// key here keeps the window consistent with the log.
				s.dedup.commit(p.t.IdemKey, resp)
			} else {
				s.dedup.release(p.t.IdemKey) // abort/cancel: retryable
			}
		}
		s.stats.ResultsStreamed++
		if !p.conn.sendBuffered(&resp) {
			s.stats.Forfeited++
		}
	}
	s.stats.Bundles++
	if len(batch) > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = len(batch)
	}
	s.stats.HistoryRecords = s.pipeline.HistorySize()
	s.stats.Committed += res.Committed
	s.stats.Retries += res.Retries
	s.stats.Defers += res.Defers
	s.stats.UserAborts += res.UserAborts
	s.stats.Canceled += res.Canceled
	s.stats.Contended += res.Contended
	s.stats.Expired += res.Expired
	s.mu.Unlock()
	// Push the bundle's responses onto the wire, then recycle. Flushing
	// the same connection twice is a cheap no-op, so no dirty-set
	// bookkeeping is needed.
	for _, p := range batch {
		p.conn.flush()
	}
	s.releaseBatch(batch)
}

// releaseBatch returns a bundle's pendings to the pool and drops the
// workload's references so pooled transactions are not pinned by the
// retained scaffolding.
func (s *Server) releaseBatch(batch []*pending) {
	for i, p := range batch {
		if i < len(s.work) {
			s.work[i] = nil
		}
		putPending(p)
	}
}

// count applies a mutation to the stats under the lock.
func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Draining = draining
	st.QueueDepth = len(s.admit)
	st.QueueCap = cap(s.admit)
	st.RetryAfterMS = s.retryAfterMS()
	if s.rt != nil {
		s.mergeShardStats(&st)
	}
	if s.log != nil {
		st.WALRecords, st.WALFlushes, st.WALSyncs = s.log.Counters()
		st.WALBytes = s.log.AppendedBytes()
	}
	if s.dedup != nil {
		st.DedupSize = s.dedup.size()
	}
	if d := s.cfg.Durability; d != nil && d.Replication != nil {
		st.Replication = &ReplicationStats{Role: "primary", ShipperStats: d.Replication.Stats()}
	}
	if lc := s.cfg.Lease; lc != nil {
		ls := lc.Stats()
		st.Lease = &ls
	}
	// shed, breaker, and events are leaf-locked: safe under s.mu.
	if s.shed != nil {
		st.ShedLevel = s.shed.Level()
	}
	if s.breaker != nil {
		st.BreakerState = s.breaker.State().String()
		st.BreakerTrips = s.breaker.Trips()
	}
	st.OverloadEvents = s.events.Snapshot()
	if st.Bundles > 0 {
		st.MeanOccupancy = float64(st.ResultsStreamed) / float64(st.Bundles)
	}
	if elapsed := time.Since(s.start); elapsed > 0 && st.Committed > 0 {
		st.Throughput = float64(st.Committed) / elapsed.Seconds()
	}
	st.QueueWait = s.queueWait.Snapshot()
	st.ExecLat = s.execLat.Snapshot()
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if lc := s.cfg.Lease; lc != nil {
		if err := lc.Check(); err != nil {
			// Lease-gated but not primary: not ready for traffic. The
			// body names the leader so an operator (or load balancer
			// health probe) can see where the group went.
			ls := lc.Stats()
			http.Error(w, fmt.Sprintf("not primary: %v (epoch=%d leader=%s)", err, ls.Epoch, ls.Leader),
				http.StatusServiceUnavailable)
			return
		}
		ls := lc.Stats()
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		fmt.Fprintf(w, "role=primary lease=held epoch=%d ttl_ms=%d\n", ls.Epoch, ls.TTLMS)
		if d := s.cfg.Durability; d != nil && d.Replication != nil {
			rst := d.Replication.Stats()
			fmt.Fprintf(w, "replication=%s lag_bytes=%d\n", rst.State, rst.LagBytes)
		}
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
	if d := s.cfg.Durability; d != nil && d.Replication != nil {
		rst := d.Replication.Stats()
		fmt.Fprintf(w, "role=primary epoch=%d replication=%s lag_bytes=%d\n",
			rst.Epoch, rst.State, rst.LagBytes)
	} else if s.cfg.Durability != nil && s.replicaEpoch > 0 {
		fmt.Fprintf(w, "role=promoted epoch=%d\n", s.replicaEpoch)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}
