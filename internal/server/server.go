// Package server is the TSKD serving layer: a TCP front-end that turns
// open-system arrivals into the paper's bundled workload model
// (Section 2.1). Transactions arrive over the wire protocol of
// internal/client, pass a bounded admission queue with explicit
// backpressure, accumulate into bundles closed by size or by a flush
// timer, and execute through core.Pipeline — TSgen scheduling plus
// TsDEFER, with cost estimates learned from the execution history of
// earlier bundles. Per-transaction outcomes (commit/abort, retries,
// queue wait, execution latency) stream back on the submitting
// connection.
//
// The admission queue is the only buffer between the network and the
// engine, and it is bounded: when it is full — or the server is
// draining — a submission is rejected immediately with a retry-after
// hint, never buffered without limit. Graceful shutdown stops
// admitting, flushes everything already admitted, and only then
// returns; a hard deadline cancels the in-flight bundle through the
// engine's context plumbing, reporting the abandoned transactions as
// canceled rather than dropping them silently.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"tskd/internal/cc"
	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/metrics"
	"tskd/internal/partition"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// Config configures a Server.
type Config struct {
	// Addr is the transaction listener address (e.g. ":7070"; use
	// "127.0.0.1:0" in tests and read back Addr()).
	Addr string
	// HTTPAddr serves /healthz and /metrics; empty disables the HTTP
	// listener.
	HTTPAddr string
	// Bundle closes a bundle once this many transactions have been
	// collected (default 512).
	Bundle int
	// FlushInterval closes a non-empty bundle at latest this long
	// after its first transaction was collected (default 10ms), so a
	// trickle of arrivals is never stranded waiting for a full bundle.
	FlushInterval time.Duration
	// QueueDepth is the admission queue capacity (default 4×Bundle).
	// Submissions beyond it are rejected with a retry-after hint.
	QueueDepth int
	// DB is the database the transactions run against; required.
	DB *storage.DB
	// Partitioner splits each bundle before TSgen; nil is TSKD[0]
	// (scheduling from scratch).
	Partitioner partition.Partitioner
	// Core configures workers, CC protocol, TsDEFER and friends.
	// Estimator, CostSink, TraceSpans and Ctx are managed by the
	// server and must be left zero. Recorder may be set (tests) to
	// capture commits for serializability checking.
	Core core.Options
}

func (c *Config) withDefaults() error {
	if c.DB == nil {
		return errors.New("server: Config.DB is required")
	}
	if c.Bundle <= 0 {
		c.Bundle = 512
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 10 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Bundle
	}
	name := c.Core.Protocol
	if name == "" {
		name = "OCC"
	}
	if _, err := cc.New(name); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// Stats is a point-in-time snapshot of the server's counters, the
// payload of the /metrics endpoint.
type Stats struct {
	// Admission.
	Admitted   uint64 `json:"admitted"`
	Rejected   uint64 `json:"rejected"`
	Malformed  uint64 `json:"malformed"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Draining   bool   `json:"draining"`

	// Bundling.
	Bundles         int     `json:"bundles"`
	MeanOccupancy   float64 `json:"mean_bundle_occupancy"`
	MaxOccupancy    int     `json:"max_bundle_occupancy"`
	HistoryRecords  int     `json:"history_records"`
	ResultsStreamed uint64  `json:"results_streamed"`

	// Engine counters, accumulated across bundles.
	Committed  uint64 `json:"committed"`
	Retries    uint64 `json:"retries"`
	Defers     uint64 `json:"defers"`
	UserAborts uint64 `json:"user_aborts"`
	Canceled   uint64 `json:"canceled"`
	Contended  uint64 `json:"contended"`

	// Throughput over the server's lifetime, commits per wall second.
	Throughput float64 `json:"throughput"`

	// Latency distributions.
	QueueWait metrics.HistogramSnapshot `json:"queue_wait"`
	ExecLat   metrics.HistogramSnapshot `json:"exec_latency"`
}

// pending is one admitted transaction awaiting execution.
type pending struct {
	t        *txn.Transaction
	seq      uint64
	conn     *connWriter
	enqueued time.Time
}

// Server is a running tskd-serve instance.
type Server struct {
	cfg      Config
	pipeline *core.Pipeline

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	admit     chan *pending
	admitMu   sync.RWMutex // draining flips under the write lock
	draining  bool
	drainCh   chan struct{} // closed when draining starts
	bundlerWG sync.WaitGroup

	runCtx    context.Context
	runCancel context.CancelFunc

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	start time.Time

	mu        sync.Mutex // guards everything below
	stats     Stats
	queueWait metrics.Histogram
	execLat   metrics.Histogram
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	opts := cfg.Core
	opts.TraceSpans = true // per-transaction outcomes come from spans
	runCtx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:       cfg,
		pipeline:  core.NewPipeline(cfg.DB, cfg.Partitioner, opts),
		admit:     make(chan *pending, cfg.QueueDepth),
		drainCh:   make(chan struct{}),
		runCtx:    runCtx,
		runCancel: cancel,
		conns:     make(map[net.Conn]struct{}),
	}, nil
}

// Start binds the listeners and launches the accept and bundler loops.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/metrics", s.handleMetrics)
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(hln)
	}
	s.start = time.Now()
	s.bundlerWG.Add(1)
	go s.bundler()
	go s.acceptLoop()
	return nil
}

// Addr returns the transaction listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr returns the HTTP listener's bound address ("" if disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Shutdown drains gracefully: stop accepting connections and
// admitting transactions, flush every bundle already admitted, then
// close. If ctx expires first, the in-flight bundle is canceled
// through the engine (its unfinished transactions respond "canceled")
// and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if already {
		return errors.New("server: already shut down")
	}
	s.ln.Close()
	close(s.drainCh)

	done := make(chan struct{})
	go func() {
		s.bundlerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel() // hard stop: abandon the in-flight bundle
		<-done
		err = ctx.Err()
	}

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.connMu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.connMu.Unlock()
	return err
}

// acceptLoop owns the transaction listener.
func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.connMu.Lock()
		s.conns[nc] = struct{}{}
		s.connMu.Unlock()
		go s.serveConn(nc)
	}
}

// connWriter serializes response lines onto one connection. Sends
// come from both the reader (rejections, parse errors) and the
// bundler (outcomes).
type connWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (cw *connWriter) send(resp client.Response) {
	cw.mu.Lock()
	_ = cw.enc.Encode(&resp) // a dead client forfeits its results
	cw.mu.Unlock()
}

// serveConn reads request lines, parses them, and admits them.
func (s *Server) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.connMu.Lock()
		delete(s.conns, nc)
		s.connMu.Unlock()
	}()
	cw := &connWriter{enc: json.NewEncoder(nc)}
	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req client.Request
		if err := json.Unmarshal(line, &req); err != nil {
			s.count(func(st *Stats) { st.Malformed++ })
			cw.send(client.Response{Status: client.StatusError, Error: "bad envelope: " + err.Error()})
			continue
		}
		t, err := txn.Parse(0, req.Ops)
		if err != nil {
			s.count(func(st *Stats) { st.Malformed++ })
			cw.send(client.Response{Seq: req.Seq, Status: client.StatusError, Error: err.Error()})
			continue
		}
		t.Template = req.Template
		t.Params = req.Params
		p := &pending{t: t, seq: req.Seq, conn: cw, enqueued: time.Now()}
		if s.tryAdmit(p) {
			s.count(func(st *Stats) { st.Admitted++ })
		} else {
			s.count(func(st *Stats) { st.Rejected++ })
			cw.send(client.Response{
				Seq: req.Seq, Status: client.StatusRejected,
				RetryAfterMS: s.cfg.FlushInterval.Milliseconds() + 1,
			})
		}
	}
}

// tryAdmit enqueues p unless the queue is full or the server is
// draining. The read lock pairs with Shutdown's write lock so that no
// admission can slip in after draining flips: every pending the
// bundler must flush is already in the channel when drainCh closes.
func (s *Server) tryAdmit(p *pending) bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		return false
	}
	select {
	case s.admit <- p:
		return true
	default:
		return false
	}
}

// bundler is the single consumer of the admission queue: it collects
// bundles (size- or timer-closed) and executes them in admission
// order.
func (s *Server) bundler() {
	defer s.bundlerWG.Done()
	for {
		var first *pending
		select {
		case first = <-s.admit:
		case <-s.drainCh:
			s.finalDrain()
			return
		}
		batch := []*pending{first}
		timer := time.NewTimer(s.cfg.FlushInterval)
	collect:
		for len(batch) < s.cfg.Bundle {
			select {
			case p := <-s.admit:
				batch = append(batch, p)
			case <-timer.C:
				break collect
			case <-s.drainCh:
				break collect
			}
		}
		timer.Stop()
		s.runBundle(batch)
	}
}

// finalDrain flushes whatever was admitted before draining flipped.
func (s *Server) finalDrain() {
	var batch []*pending
	for {
		select {
		case p := <-s.admit:
			batch = append(batch, p)
			if len(batch) >= s.cfg.Bundle {
				s.runBundle(batch)
				batch = nil
			}
		default:
			if len(batch) > 0 {
				s.runBundle(batch)
			}
			return
		}
	}
}

// runBundle renumbers the batch densely, executes it through the
// pipeline, and streams one response per transaction.
func (s *Server) runBundle(batch []*pending) {
	w := make(txn.Workload, len(batch))
	for i, p := range batch {
		p.t.ID = i
		w[i] = p.t
	}
	bundleNo := s.pipeline.Bundles()
	execStart := time.Now()
	res, err := s.pipeline.ProcessContext(s.runCtx, w)
	if err != nil {
		// Unreachable with a validated Config; fail the batch loudly
		// rather than dropping it.
		for _, p := range batch {
			p.conn.send(client.Response{Seq: p.seq, Status: client.StatusError, Error: err.Error()})
		}
		return
	}

	spans := make(map[int]engine.ExecSpan, len(res.Spans))
	for _, sp := range res.Spans {
		spans[sp.TxnID] = sp
	}
	s.mu.Lock()
	for _, p := range batch {
		resp := client.Response{Seq: p.seq, Bundle: bundleNo}
		wait := execStart.Sub(p.enqueued)
		resp.QueueUS = wait.Microseconds()
		s.queueWait.Record(wait)
		if sp, ok := spans[p.t.ID]; ok {
			exec := sp.End - sp.Start
			resp.Status = client.StatusCommit
			resp.Retries = sp.Retries
			resp.ExecUS = exec.Microseconds()
			s.execLat.Record(exec)
		} else if p.t.UserAbort {
			resp.Status = client.StatusAbort
		} else {
			resp.Status = client.StatusCanceled
		}
		s.stats.ResultsStreamed++
		p.conn.send(resp)
	}
	s.stats.Bundles++
	if len(batch) > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = len(batch)
	}
	s.stats.HistoryRecords = s.pipeline.HistorySize()
	s.stats.Committed += res.Committed
	s.stats.Retries += res.Retries
	s.stats.Defers += res.Defers
	s.stats.UserAborts += res.UserAborts
	s.stats.Canceled += res.Canceled
	s.stats.Contended += res.Contended
	s.mu.Unlock()
}

// count applies a mutation to the stats under the lock.
func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Draining = draining
	st.QueueDepth = len(s.admit)
	st.QueueCap = cap(s.admit)
	if st.Bundles > 0 {
		st.MeanOccupancy = float64(st.ResultsStreamed) / float64(st.Bundles)
	}
	if elapsed := time.Since(s.start); elapsed > 0 && st.Committed > 0 {
		st.Throughput = float64(st.Committed) / elapsed.Seconds()
	}
	st.QueueWait = s.queueWait.Snapshot()
	st.ExecLat = s.execLat.Snapshot()
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.admitMu.RLock()
	draining := s.draining
	s.admitMu.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}
