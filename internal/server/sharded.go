package server

import (
	"time"

	"tskd/internal/client"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// sharded.go: the serving layer's sharded mode. With Config.Shards > 1
// the single pipeline/WAL/dedup stack is replaced by a shard.Runtime —
// N independent bundling loops over hash-partitioned slices of the key
// space, cross-shard transactions committing via 2PC — and the serve
// path routes each request by key ownership. The wire protocol, the
// deadline stamping, and the /metrics endpoint are unchanged; /metrics
// additionally reports per-shard and 2PC counters.

// openSharded builds the multi-shard runtime (running recovery first
// when durable) and wires it into the server.
func (s *Server) openSharded() error {
	var d *shard.Durability
	if o := s.cfg.Durability; o != nil {
		d = &shard.Durability{
			Dir:             o.Dir,
			GroupWindow:     o.GroupWindow,
			SegmentBytes:    o.SegmentBytes,
			CheckpointBytes: o.CheckpointBytes,
			DedupWindow:     o.DedupWindow,
			NoSync:          o.NoSync,
			Replication:     o.Replication,
		}
		if s.cfg.Lease != nil {
			d.FlushGate = s.cfg.Lease.Check
		}
	}
	rt, err := shard.Open(shard.Config{
		Shards:        s.cfg.Shards,
		DB:            s.cfg.ShardDB,
		Partitioner:   s.cfg.ShardPartitioner,
		Bundle:        s.cfg.Bundle,
		FlushInterval: s.cfg.FlushInterval,
		QueueDepth:    s.cfg.QueueDepth,
		Core:          s.cfg.Core,
		Durability:    d,
	})
	if err != nil {
		return err
	}
	s.rt = rt
	s.replicaEpoch = rt.ReplicaEpoch()
	return nil
}

// Runtime returns the sharded runtime (nil unless Config.Shards > 1).
func (s *Server) Runtime() *shard.Runtime { return s.rt }

// ShardRecovery reports what sharded startup recovery found (zero
// value when not sharded, not durable, or the directory was fresh).
func (s *Server) ShardRecovery() shard.RecoveryInfo {
	if s.rt == nil {
		return shard.RecoveryInfo{}
	}
	return s.rt.Recovery()
}

// RecoverSharded inspects a sharded data directory read-only: the
// multi-shard analogue of Recover, used by chaos audits and tools. It
// resolves in-doubt prepares against the coordinator log exactly as a
// restarting server would.
func RecoverSharded(dir string, shards int, base func(i int) *storage.DB) (*shard.RecoverState, error) {
	return shard.Recover(dir, shards, base)
}

// serveSharded handles one decoded request in sharded mode: parse,
// stamp the deadline, and hand the transaction to the runtime, which
// answers asynchronously through the connection writer. Transactions
// are not pooled here — the runtime owns each one until its response
// callback has run, and the sharded hot path favors simplicity.
func (s *Server) serveSharded(req *client.Request, cw *connWriter) {
	t := &txn.Transaction{}
	if err := txn.ParseInto(t, 0, req.Ops); err != nil {
		s.count(func(st *Stats) { st.Malformed++ })
		cw.send(client.Response{Seq: req.Seq, Status: client.StatusError, Error: err.Error()})
		return
	}
	t.Template = req.Template
	t.Params = req.Params
	req.Params = nil // the transaction owns the backing array now
	t.IdemKey = req.IdemKey
	s.serveShardedParsed(req, t, cw)
}

// serveShardedParsed stamps the deadline and hands an already-parsed
// transaction to the runtime — the tail shared by the NDJSON path
// above and the binary frame path, which decodes straight into t.
func (s *Server) serveShardedParsed(req *client.Request, t *txn.Transaction, cw *connWriter) {
	if !s.checkLease(req.Seq, cw) {
		return
	}
	now := time.Now()
	switch {
	case req.DeadlineMS < 0:
		// Expired before it ever reached us; terminal, no retry hint.
		s.count(func(st *Stats) { st.Expired++ })
		cw.send(client.Response{Seq: req.Seq, Status: client.StatusExpired})
		return
	case req.DeadlineMS > 0:
		t.Deadline = now.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	case s.cfg.Overload.DefaultDeadline > 0:
		t.Deadline = now.Add(s.cfg.Overload.DefaultDeadline)
	}
	seq := req.Seq
	s.rt.Submit(t, func(resp client.Response) {
		resp.Seq = seq
		delivered := cw.send(resp)
		s.count(func(st *Stats) {
			st.ResultsStreamed++
			if !delivered {
				st.Forfeited++
			}
		})
	})
}

// mergeShardStats rolls the runtime's counters up into the flat Stats
// so dashboards keyed on the single-shard fields keep working, and
// attaches the per-shard and 2PC breakdowns. Called under s.mu.
func (s *Server) mergeShardStats(st *Stats) {
	rst := s.rt.Stats()
	st.Shards = rst.Shards
	st.TwoPC = &rst.TwoPC
	queue, queueCap := 0, 0
	for _, sh := range rst.Shards {
		st.Admitted += sh.Admitted
		st.Rejected += sh.Rejected
		st.Bundles += int(sh.Bundles)
		st.Committed += sh.Committed
		st.Retries += sh.Retries
		st.UserAborts += sh.UserAborts
		st.Canceled += sh.Canceled
		st.Contended += sh.Contended
		st.Expired += sh.Expired
		st.WALRecords += sh.WALRecords
		st.WALFlushes += sh.WALFlushes
		st.WALSyncs += sh.WALSyncs
		st.WALBytes += sh.WALBytes
		st.Checkpoints += sh.Checkpoints
		st.DedupHits += sh.DedupHits
		st.DedupInflight += sh.DedupInflight
		st.DedupSize += sh.DedupSize
		queue += sh.QueueDepth
		queueCap += s.cfg.QueueDepth
	}
	st.QueueDepth = queue
	st.QueueCap = queueCap
	// A 2PC commit is one committed transaction from the client's view;
	// its per-shard sub-commits are not in the shard Committed counters
	// (participant installs bypass the engines).
	st.Committed += rst.TwoPC.Committed
	st.UserAborts += rst.TwoPC.UserAborts
	st.Rejected += rst.TwoPC.Rejected
	st.DedupHits += rst.TwoPC.DedupHits
	st.DedupInflight += rst.TwoPC.DedupInflight
}
