package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"tskd/internal/client"
)

// TestPoolingIntegrityUnderConcurrency hammers the pooled serve path —
// pooled pendings, pooled transactions, per-connection encode buffers,
// buffered bundle flushes — with many concurrent connections. If a
// pooled object were ever reused while its response was still in
// flight, response lines would interleave corruptly (the client's
// decoder would fail the connection) or a response would reach the
// wrong waiter. Every submission must come back exactly once with a
// coherent outcome, and the server must account for every result.
func TestPoolingIntegrityUnderConcurrency(t *testing.T) {
	s, ycsb := startServer(t, func(c *Config) {
		c.Bundle = 32 // many small bundles: maximal pool churn
		c.QueueDepth = 4096
	})

	const conns, perConn = 16, 300
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := make(map[string]int)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			reqs := genRequests(t, ycsb, perConn, int64(ci+1))
			conn, err := client.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for _, req := range reqs {
				for {
					resp, err := conn.Submit(context.Background(), req)
					if err != nil {
						t.Errorf("conn %d: %v", ci, err)
						return
					}
					if resp.Status == client.StatusRejected {
						time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
						continue
					}
					switch resp.Status {
					case client.StatusCommit, client.StatusAbort, client.StatusCanceled:
					default:
						t.Errorf("conn %d: incoherent outcome %+v", ci, resp)
					}
					if resp.QueueUS < 0 || resp.ExecUS < 0 || resp.Retries < 0 {
						t.Errorf("conn %d: corrupt response fields %+v", ci, resp)
					}
					mu.Lock()
					outcomes[resp.Status]++
					mu.Unlock()
					break
				}
			}
		}(ci)
	}
	wg.Wait()

	total := 0
	for _, n := range outcomes {
		total += n
	}
	if total != conns*perConn {
		t.Fatalf("got %d outcomes, want %d (%v)", total, conns*perConn, outcomes)
	}
	st := s.Stats()
	if st.Forfeited != 0 {
		t.Errorf("forfeited %d responses with all connections healthy", st.Forfeited)
	}
	if st.ResultsStreamed != uint64(conns*perConn) {
		t.Errorf("results streamed = %d, want %d", st.ResultsStreamed, conns*perConn)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
