package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tskd/internal/arbiter"
	"tskd/internal/client"
)

// TestLeaseGateRefusesAndRedirects wires two servers and a real
// arbiter together: server A holds the lease and commits; a rival
// registers the same group at a higher epoch (what a promoted backup
// does), which fences A; from then on A refuses every submission with
// not_primary plus the new leader's address, and a reliable client
// configured with only A's address converges on B via the redirect.
func TestLeaseGateRefusesAndRedirects(t *testing.T) {
	arb, err := arbiter.New(arbiter.Config{
		Dir:        t.TempDir(),
		LeaseTTL:   250 * time.Millisecond,
		ProbeEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer arb.Close()

	// Server B: the failover target. Plain server (its own lease is not
	// under test); its address is what the arbiter hands to fenced peers.
	b, ycsb := startServer(t, nil)
	defer b.Shutdown(context.Background())

	// Server A: the primary whose dispatch is lease-gated.
	lcA, err := arbiter.NewLeaseClient(arbiter.LeaseConfig{
		Addr: arb.Addr(), Group: "g0", Epoch: 1, Announce: "node-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lcA.Close()
	a, _ := startServer(t, func(c *Config) { c.Lease = lcA })
	defer a.Shutdown(context.Background())
	if !lcA.WaitHeld(2 * time.Second) {
		t.Fatal("server A never acquired the lease")
	}

	// Held lease: submissions commit and the lease shows on /metrics
	// and /healthz.
	conn, err := client.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	reqs := genRequests(t, ycsb, 4, 42)
	for _, req := range reqs[:2] {
		resp, err := conn.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Committed() {
			t.Fatalf("held-lease submit: status %q (%s)", resp.Status, resp.Error)
		}
	}
	conn.Close()
	if st := a.Stats(); st.Lease == nil || !st.Lease.Held || st.Lease.Epoch != 1 {
		t.Fatalf("stats lease = %+v, want held at epoch 1", st.Lease)
	}
	if body := healthz(t, a); !strings.Contains(body, "role=primary") {
		t.Fatalf("/healthz = %q, want role=primary", body)
	}

	// A promoted rival claims the group at epoch 2, announcing B's
	// address. A's next renew is fenced.
	lcB, err := arbiter.NewLeaseClient(arbiter.LeaseConfig{
		Addr: arb.Addr(), Group: "g0", Epoch: 2, Announce: b.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lcB.Close()
	if !lcB.WaitHeld(2 * time.Second) {
		t.Fatal("rival never acquired the lease")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !errors.Is(lcA.Check(), arbiter.ErrLeaseFenced) {
		if time.Now().After(deadline) {
			t.Fatal("server A was never fenced")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Direct submission to A is refused with the new leader's address.
	conn2, err := client.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := conn2.Submit(context.Background(), reqs[2])
	conn2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != client.StatusNotPrimary {
		t.Fatalf("fenced submit: status %q, want %q", resp.Status, client.StatusNotPrimary)
	}
	if resp.Leader != b.Addr() {
		t.Fatalf("fenced submit: leader %q, want %q", resp.Leader, b.Addr())
	}
	if st := a.Stats(); st.NotPrimary == 0 {
		t.Error("stats: NotPrimary counter never incremented")
	}
	if body := healthz(t, a); !strings.Contains(body, "not primary") {
		t.Fatalf("fenced /healthz = %q, want not primary", body)
	}

	// A reliable client that only knows A's address learns B from the
	// redirect and commits there.
	r := client.DialReliableMulti([]string{a.Addr()}, client.RetryPolicy{Seed: 7})
	defer r.Close()
	rresp, err := r.Submit(context.Background(), reqs[3])
	if err != nil {
		t.Fatal(err)
	}
	if !rresp.Committed() {
		t.Fatalf("redirected submit: status %q (%s)", rresp.Status, rresp.Error)
	}
	if got := r.Addr(); got != b.Addr() {
		t.Fatalf("reliable client converged on %q, want %q", got, b.Addr())
	}
	if st := b.Stats(); st.Committed == 0 {
		t.Error("server B committed nothing after the redirect")
	}
}

// healthz fetches the health endpoint body (any status).
func healthz(t *testing.T, s *Server) string {
	t.Helper()
	resp, err := http.Get("http://" + s.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
