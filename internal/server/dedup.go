package server

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"tskd/internal/client"
)

// dedup.go: the server's idempotency window, the state behind
// exactly-once resubmission. A client that lost its connection cannot
// know whether an in-flight transaction committed, so it resubmits
// under the same idempotency key; the window remembers recently
// committed keys (with their responses) and keys currently in flight,
// and answers duplicates without executing them again.
//
// The committed side of the window survives crashes in two pieces:
// keys whose WAL records still exist are re-collected during replay
// (the engine stamps each commit record with its key), and keys whose
// records a checkpoint already truncated are carried by a sidecar file
// written atomically next to the checkpoint at the same LSN.

// dedup states returned by begin.
const (
	dedupMiss     = iota // key unknown: caller proceeds, key is now inflight
	dedupInflight        // an earlier submission is still executing
	dedupHit             // key committed: answer from the cached response
)

type dedupWindow struct {
	mu        sync.Mutex // reader goroutines and the bundler both touch it
	inflight  map[uint64]struct{}
	committed map[uint64]client.Response
	order     []uint64 // committed keys, oldest first (FIFO eviction)
	limit     int
}

func newDedupWindow(limit int) *dedupWindow {
	return &dedupWindow{
		inflight:  make(map[uint64]struct{}),
		committed: make(map[uint64]client.Response),
		limit:     limit,
	}
}

// begin classifies key and, on a miss, marks it inflight. On dedupHit
// the cached response is returned (Seq is the original submission's;
// the caller rewrites it).
func (d *dedupWindow) begin(key uint64) (int, client.Response) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if resp, ok := d.committed[key]; ok {
		return dedupHit, resp
	}
	if _, ok := d.inflight[key]; ok {
		return dedupInflight, client.Response{}
	}
	d.inflight[key] = struct{}{}
	return dedupMiss, client.Response{}
}

// commit moves key from inflight to committed, caching resp for future
// duplicates, and evicts the oldest committed keys beyond the limit.
func (d *dedupWindow) commit(key uint64, resp client.Response) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.inflight, key)
	if _, ok := d.committed[key]; !ok {
		d.order = append(d.order, key)
	}
	d.committed[key] = resp
	for len(d.order) > d.limit {
		old := d.order[0]
		d.order = d.order[1:]
		delete(d.committed, old)
	}
}

// release drops an inflight mark (abort, cancel, failed admission):
// the client may retry the key.
func (d *dedupWindow) release(key uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.inflight, key)
}

// restore inserts a recovered key as committed with a synthetic
// response (the original's latency detail did not survive the crash;
// the commit fact did).
func (d *dedupWindow) restore(key uint64) {
	d.commit(key, client.Response{Status: client.StatusCommit})
}

// committedKeys returns the committed window oldest-first, for the
// checkpoint sidecar.
func (d *dedupWindow) committedKeys() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]uint64(nil), d.order...)
}

func (d *dedupWindow) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.committed) + len(d.inflight)
}

// Sidecar file format (little endian):
// "tskddedp" | u32 version | u32 count | count × u64 key | u32 CRC32
// of everything before it.

const dedupMagic = "tskddedp"

func dedupName(lsn uint64) string {
	return "dedup-" + lsnHex(lsn) + ".dd"
}

// writeDedupFile writes the key window to path atomically (tmp +
// fsync + rename + dir fsync, mirroring storage.WriteCheckpointFile).
func writeDedupFile(path string, keys []uint64, sync bool) error {
	buf := make([]byte, 0, len(dedupMagic)+8+8*len(keys)+4)
	buf = append(buf, dedupMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if sync {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
	return nil
}

// readDedupFile loads a sidecar; a missing file is an empty window, a
// corrupt one is an error (the matching checkpoint is then skipped).
func readDedupFile(path string) ([]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if len(data) < len(dedupMagic)+12 {
		return nil, errCorruptDedup
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, errCorruptDedup
	}
	if string(body[:len(dedupMagic)]) != dedupMagic {
		return nil, errCorruptDedup
	}
	off := len(dedupMagic)
	if binary.LittleEndian.Uint32(body[off:]) != 1 {
		return nil, errCorruptDedup
	}
	n := int(binary.LittleEndian.Uint32(body[off+4:]))
	off += 8
	if len(body) != off+8*n {
		return nil, errCorruptDedup
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(body[off:])
		off += 8
	}
	return keys, nil
}
