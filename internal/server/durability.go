package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"tskd/internal/overload"
	"tskd/internal/replica"
	"tskd/internal/storage"
	"tskd/internal/wal"
)

// durability.go: the serving layer's crash-consistency machinery. A
// durable server owns a data directory holding
//
//	wal-<lsn>.seg     redo log segments (internal/wal)
//	ckpt-<lsn>.ckpt   full-database checkpoints (internal/storage)
//	dedup-<lsn>.dd    idempotency-window sidecars
//
// where <lsn> is 16 hex digits. The commit path appends every write
// set to the WAL inside the engine (core.Options.WAL) and the bundler
// acknowledges a transaction only after its group flush fsynced — the
// write-ahead rule end to end. Between bundles, once enough log bytes
// have accumulated, the bundler checkpoints: dedup sidecar first, then
// the database image, both atomic, both named by the quiescent LSN;
// sealed segments fully below that LSN are then deleted and older
// checkpoint generations removed. Startup recovery inverts this:
// newest valid checkpoint, its sidecar, then the WAL tail — all before
// the listener binds, so a connection is only ever accepted by a
// server whose state includes every commit it ever acknowledged.

// DurabilityOptions turn a Server durable.
type DurabilityOptions struct {
	// Dir is the data directory (created if missing); required.
	Dir string
	// GroupWindow is the WAL group-commit window: commits acknowledge
	// at latest this long after their log record was appended (default
	// 2ms). Zero-cost for throughput — the engine's workers block per
	// transaction, not per bundle — and it bounds fsyncs per second.
	GroupWindow time.Duration
	// SegmentBytes rotates WAL segments (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// CheckpointBytes takes a checkpoint once this many WAL bytes have
	// accumulated since the last one (default 4 MiB). Checkpoints run
	// on the bundler between bundles, when the store is quiescent.
	CheckpointBytes int64
	// DedupWindow is how many committed idempotency keys the server
	// remembers (default 65536). A duplicate arriving after its key
	// was evicted re-executes; size the window to cover the client
	// retry horizon.
	DedupWindow int
	// NoSync skips every fsync (tests only: a crash of the OS can then
	// lose acknowledged commits; a crash of the process cannot).
	NoSync bool
	// WrapSyncer, when set, decorates the log's fsync syncer — on the
	// initial segment and again after every rotation. Fault injection
	// only (the chaos harness stalls fsyncs through it); ignored under
	// NoSync.
	WrapSyncer func(wal.Syncer) wal.Syncer
	// Replication, when set, makes this server a replicating primary:
	// every WAL flush is shipped through this live shipper to a backup
	// (internal/replica) after the local fsync, and in sync mode the
	// flush — and therefore the client ack — waits for the backup's
	// own fsync. The server does not own the shipper: close it after
	// Shutdown.
	Replication *replica.Shipper
}

func (d *DurabilityOptions) withDefaults() error {
	if d.Dir == "" {
		return errors.New("server: DurabilityOptions.Dir is required")
	}
	if d.GroupWindow <= 0 {
		d.GroupWindow = 2 * time.Millisecond
	}
	if d.SegmentBytes <= 0 {
		d.SegmentBytes = wal.DefaultSegmentBytes
	}
	if d.CheckpointBytes <= 0 {
		d.CheckpointBytes = 4 << 20
	}
	if d.DedupWindow <= 0 {
		d.DedupWindow = 65536
	}
	return nil
}

// RecoveryInfo reports what startup recovery found and did.
type RecoveryInfo struct {
	// CheckpointLSN is the LSN of the restored checkpoint (0 = none).
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// Replayed is the number of WAL records applied over it.
	Replayed int `json:"replayed"`
	// NextLSN is where the log resumes appending.
	NextLSN uint64 `json:"next_lsn"`
	// DedupRestored is the number of idempotency keys recovered
	// (sidecar + WAL tail).
	DedupRestored int `json:"dedup_restored"`
	// Segments is the number of WAL segment files found.
	Segments int `json:"segments"`
}

func lsnHex(lsn uint64) string { return fmt.Sprintf("%016x", lsn) }

func ckptName(lsn uint64) string { return "ckpt-" + lsnHex(lsn) + ".ckpt" }

var errCorruptDedup = errors.New("server: corrupt dedup sidecar")

// listByLSN returns the LSNs of files named <prefix><16 hex><suffix>
// under dir, ascending.
func listByLSN(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		lsn, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// Recover loads the durable state under dir: the newest checkpoint
// whose image and dedup sidecar both verify (older generations are
// fallbacks against torn or corrupt files), then the WAL tail replayed
// over it. base seeds the database when no checkpoint exists — the
// same initial store the server was first started with (nil: empty).
// base is mutated by replay in that case.
//
// It returns the recovered database, what happened, and the committed
// idempotency keys, and never opens the log for appending — chaos
// tests and tools use it to inspect a data directory read-only; the
// server wires the same result into a live log via openDurable.
func Recover(dir string, base *storage.DB) (*storage.DB, RecoveryInfo, []uint64, error) {
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, nil, err
	}

	db := base
	var keys []uint64
	ckpts, err := listByLSN(dir, "ckpt-", ".ckpt")
	if err != nil {
		return nil, info, nil, err
	}
	for i := len(ckpts) - 1; i >= 0; i-- {
		lsn := ckpts[i]
		cdb, cerr := storage.ReadCheckpointFile(filepath.Join(dir, ckptName(lsn)))
		if cerr != nil {
			continue // torn or corrupt generation: fall back
		}
		ckeys, derr := readDedupFile(filepath.Join(dir, dedupName(lsn)))
		if derr != nil {
			continue
		}
		db, keys, info.CheckpointLSN = cdb, ckeys, lsn
		break
	}
	if db == nil {
		db = storage.NewDB()
	}

	// The sidecar and the log overlap: the sidecar snapshots the whole
	// window, including keys whose records are still in untruncated
	// segments. Collect each key once, oldest first.
	seen := make(map[uint64]struct{}, len(keys))
	for _, k := range keys {
		seen[k] = struct{}{}
	}
	next, applied, err := wal.RecoverDir(dir, db, func(_ uint64, rec wal.Record) {
		if rec.IdemKey == 0 {
			return
		}
		if _, dup := seen[rec.IdemKey]; dup {
			return
		}
		seen[rec.IdemKey] = struct{}{}
		keys = append(keys, rec.IdemKey)
	})
	if err != nil {
		return nil, info, nil, err
	}
	if next < info.CheckpointLSN {
		// Every segment the checkpoint covers was truncated: resume at
		// the checkpoint's LSN so the numbering never moves backwards.
		next = info.CheckpointLSN
	}
	info.Replayed = applied
	info.NextLSN = next
	info.DedupRestored = len(keys)
	segs, err := wal.ListSegments(dir)
	if err != nil {
		return nil, info, nil, err
	}
	info.Segments = len(segs)
	return db, info, keys, nil
}

// openDurable runs recovery and opens the log for appending, wiring
// the results into the server: s.cfg.DB becomes the recovered
// database, s.log the live WAL, s.dedup the restored window.
func (s *Server) openDurable() error {
	d := s.cfg.Durability
	db, info, keys, err := Recover(d.Dir, s.cfg.DB)
	if err != nil {
		return err
	}
	opts := wal.DirOptions{
		GroupWindow:  d.GroupWindow,
		SegmentBytes: d.SegmentBytes,
		StartLSN:     info.NextLSN,
		NoSync:       d.NoSync,
		WrapSyncer:   d.WrapSyncer,
	}
	if s.cfg.Lease != nil {
		// Fencing at the durability boundary: a flush (and every client
		// ack riding on it) fails unless the lease is still held at
		// flush time, so a deposed primary cannot acknowledge commits
		// even if a request slipped past the admission-time check.
		opts.FlushGate = s.cfg.Lease.Check
	}
	// Attach replication before the log opens for appending: Stream
	// snapshots every existing file (the catch-up copy), then live
	// flushes ship through the returned hook.
	if d.Replication != nil {
		s.replicaEpoch = d.Replication.Epoch()
		stream, serr := d.Replication.Stream(".", d.Dir)
		if serr != nil {
			return serr
		}
		opts.Shipper = stream
	} else if s.replicaEpoch, err = replica.ReadEpoch(d.Dir); err != nil {
		return err
	}
	log, err := wal.OpenDir(d.Dir, opts)
	if err != nil {
		return err
	}
	s.cfg.DB = db
	s.log = log
	if !s.cfg.Overload.DisableBreaker {
		s.breaker = overload.NewBreaker(overload.BreakerConfig{
			TripLatency: s.cfg.Overload.BreakerLatency,
			Cooldown:    s.cfg.Overload.BreakerCooldown,
			OnTransition: func(from, to overload.BreakerState) {
				// Runs with the breaker's mutex held, possibly inside
				// WAL flush completion: the event log is a leaf, so
				// this never deadlocks.
				s.events.Record(time.Now(), "breaker", from.String()+"->"+to.String())
			},
		})
		log.SetMonitor(s.breaker)
	}
	s.recovery = info
	s.dedup = newDedupWindow(d.DedupWindow)
	for _, k := range keys {
		s.dedup.restore(k)
	}
	s.lastCkptLSN = info.CheckpointLSN
	s.lastCkptBytes = log.AppendedBytes()
	return nil
}

// maybeCheckpoint runs on the bundler between bundles — the only
// moment the store is guaranteed quiescent and the durable LSN
// boundary well-defined — and checkpoints once enough log has
// accumulated since the last one.
func (s *Server) maybeCheckpoint() {
	if s.log == nil {
		return
	}
	if s.log.AppendedBytes()-s.lastCkptBytes < s.cfg.Durability.CheckpointBytes {
		return
	}
	if err := s.checkpoint(); err != nil {
		// A failed checkpoint loses nothing: the log still holds every
		// commit. Count it and retry after the next bundle.
		s.count(func(st *Stats) { st.CheckpointErrors++ })
	}
}

// checkpoint writes the sidecar + database image at the current LSN
// boundary, truncates covered WAL segments, and deletes superseded
// checkpoint generations.
func (s *Server) checkpoint() error {
	d := s.cfg.Durability
	lsn := s.log.NextLSN()
	sync := !d.NoSync
	// Sidecar first: a crash between the two files leaves a sidecar
	// without its checkpoint, which recovery ignores (it walks
	// checkpoints, not sidecars).
	if err := writeDedupFile(filepath.Join(d.Dir, dedupName(lsn)), s.dedup.committedKeys(), sync); err != nil {
		return err
	}
	if err := storage.WriteCheckpointFile(filepath.Join(d.Dir, ckptName(lsn)), s.cfg.DB, sync); err != nil {
		return err
	}
	removed, err := s.log.TruncateSealed(lsn)
	if err != nil {
		return err
	}
	// Older generations are now superseded; losing this cleanup to a
	// crash only wastes disk, so failures are ignored.
	for _, prefixSuffix := range [][2]string{{"ckpt-", ".ckpt"}, {"dedup-", ".dd"}} {
		lsns, err := listByLSN(d.Dir, prefixSuffix[0], prefixSuffix[1])
		if err != nil {
			continue
		}
		for _, old := range lsns {
			if old < lsn {
				os.Remove(filepath.Join(d.Dir, prefixSuffix[0]+lsnHex(old)+prefixSuffix[1]))
			}
		}
	}
	s.lastCkptLSN = lsn
	s.lastCkptBytes = s.log.AppendedBytes()
	s.count(func(st *Stats) {
		st.Checkpoints++
		st.LastCheckpointLSN = lsn
		st.TruncatedSegments += uint64(removed)
	})
	return nil
}
