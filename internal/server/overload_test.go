package server

import (
	"context"
	"testing"
	"time"

	"tskd/internal/chaos/faultio"
	"tskd/internal/client"
	"tskd/internal/history"
	"tskd/internal/overload"
	"tskd/internal/wal"
)

// TestDeadlineExpiredOnArrival: a request whose deadline budget is
// already negative is answered StatusExpired at submission, without
// ever being admitted.
func TestDeadlineExpiredOnArrival(t *testing.T) {
	s, ycsb := startServer(t, nil)
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := genRequests(t, ycsb, 1, 42)[0]
	req.DeadlineMS = -1
	resp, err := conn.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != client.StatusExpired {
		t.Fatalf("status %q, want %q", resp.Status, client.StatusExpired)
	}
	st := s.Stats()
	if st.Expired != 1 || st.Admitted != 0 {
		t.Fatalf("expired=%d admitted=%d, want 1/0", st.Expired, st.Admitted)
	}
}

// TestDeadlineExpiresAtBundleFormation: a deadline shorter than the
// bundle flush interval passes while the transaction queues, so the
// bundler drops it at formation — StatusExpired on the wire, nothing
// executed, nothing committed, and the admission still answered
// (ResultsStreamed counts it).
func TestDeadlineExpiresAtBundleFormation(t *testing.T) {
	rec := history.NewRecorder()
	s, ycsb := startServer(t, func(c *Config) {
		c.FlushInterval = 50 * time.Millisecond
		c.Core.Recorder = rec
	})
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := genRequests(t, ycsb, 1, 43)[0]
	req.DeadlineMS = 1 // << 50ms flush interval
	resp, err := conn.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != client.StatusExpired {
		t.Fatalf("status %q, want %q", resp.Status, client.StatusExpired)
	}
	st := s.Stats()
	if st.Expired != 1 || st.Committed != 0 {
		t.Fatalf("expired=%d committed=%d, want 1/0", st.Expired, st.Committed)
	}
	if st.Admitted != 1 || st.ResultsStreamed != 1 {
		t.Fatalf("admitted=%d results=%d, want 1/1", st.Admitted, st.ResultsStreamed)
	}
	if rec.Len() != 0 {
		t.Fatalf("recorder has %d commits: an expired transaction executed", rec.Len())
	}
}

// TestDefaultDeadlineApplies: Overload.DefaultDeadline stamps requests
// that carry no deadline of their own.
func TestDefaultDeadlineApplies(t *testing.T) {
	s, ycsb := startServer(t, func(c *Config) {
		c.FlushInterval = 50 * time.Millisecond
		c.Overload.DefaultDeadline = time.Millisecond
	})
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Submit(context.Background(), genRequests(t, ycsb, 1, 44)[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != client.StatusExpired {
		t.Fatalf("status %q, want %q", resp.Status, client.StatusExpired)
	}
}

// TestShedSaturationAndBrownout forces the controller to a known level
// and checks the whole shedding surface: low priority sheds
// deterministically with a positive retry hint, high priority still
// gets through (and commits), and the first bundle formed while
// saturated flips the server into brownout mode.
func TestShedSaturationAndBrownout(t *testing.T) {
	s, ycsb := startServer(t, func(c *Config) {
		c.Overload.ShedWindow = time.Millisecond
	})
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Level 0: nothing sheds, regardless of priority.
	req := genRequests(t, ycsb, 1, 45)[0]
	req.Priority = 1
	resp, err := conn.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Committed() {
		t.Fatalf("healthy low-priority submit: status %q", resp.Status)
	}

	// Drive the controller to level 0.8 by hand: arm the standing
	// queue, wait out the (1ms) window, then two max-step increments.
	s.shed.Observe(time.Second)
	time.Sleep(5 * time.Millisecond)
	s.shed.Observe(time.Second)
	s.shed.Observe(time.Second)
	if lv := s.shed.Level(); lv < 0.79 || lv > 0.81 {
		t.Fatalf("shed level %v, want 0.8", lv)
	}

	// At level 0.8 the low-priority drop probability is 1: sheds
	// deterministically, with a backoff hint.
	req = genRequests(t, ycsb, 1, 46)[0]
	req.Priority = 1
	resp, err = conn.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != client.StatusShed {
		t.Fatalf("saturated low-priority submit: status %q, want %q", resp.Status, client.StatusShed)
	}
	if resp.RetryAfterMS < 1 {
		t.Fatalf("shed response carries no retry hint: %d", resp.RetryAfterMS)
	}

	// High priority drops at 0.6: retry until one is admitted. Its
	// bundle forms while the controller is saturated, entering
	// brownout — and still commits.
	committed := false
	for i := 0; i < 200 && !committed; i++ {
		hi := genRequests(t, ycsb, 1, int64(100+i))[0]
		resp, err = conn.Submit(context.Background(), hi)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case client.StatusCommit:
			committed = true
		case client.StatusShed:
		default:
			t.Fatalf("high-priority submit: status %q", resp.Status)
		}
	}
	if !committed {
		t.Fatal("no high-priority submission admitted in 200 tries at level 0.8")
	}

	st := s.Stats()
	if st.Shed < 1 {
		t.Fatalf("shed counter %d, want >= 1", st.Shed)
	}
	if !st.Brownout || st.BrownoutEnters < 1 {
		t.Fatalf("brownout=%v enters=%d, want engaged", st.Brownout, st.BrownoutEnters)
	}
	found := false
	for _, ev := range st.OverloadEvents {
		if ev.Kind == "brownout" && ev.Detail == "enter" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no brownout-enter event in %v", st.OverloadEvents)
	}
}

// TestBreakerFastFailAndRecovery stalls the WAL's fsync under a durable
// server: the slow group flush trips the breaker, the next durable
// admission fails fast with a retry hint instead of queueing behind the
// dead device, and once the stall clears the breaker half-opens on a
// probe and closes — subsequent submissions commit durably again.
func TestBreakerFastFailAndRecovery(t *testing.T) {
	slow := &faultio.SlowSyncer{}
	s, ycsb := startServer(t, func(c *Config) {
		c.Durability = &DurabilityOptions{
			Dir:         t.TempDir(),
			GroupWindow: time.Millisecond,
			WrapSyncer:  func(in wal.Syncer) wal.Syncer { slow.SetInner(in); return slow },
		}
		c.Overload.BreakerLatency = 10 * time.Millisecond
		c.Overload.BreakerCooldown = 50 * time.Millisecond
	})
	defer s.Shutdown(context.Background())

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Healthy: commits flow, breaker closed.
	resp, err := conn.Submit(context.Background(), genRequests(t, ycsb, 1, 50)[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Committed() {
		t.Fatalf("healthy submit: status %q", resp.Status)
	}
	if got := s.breaker.State(); got != overload.BreakerClosed {
		t.Fatalf("breaker %v before stall, want closed", got)
	}

	// Stall the device. The next commit's group flush takes ~100ms —
	// far past the 10ms trip latency — so by the time it acknowledges,
	// the breaker has tripped.
	slow.SetDelay(100 * time.Millisecond)
	resp, err = conn.Submit(context.Background(), genRequests(t, ycsb, 1, 51)[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Committed() {
		t.Fatalf("slow submit: status %q", resp.Status)
	}
	slow.SetDelay(0)
	if got := s.breaker.State(); got != overload.BreakerOpen {
		t.Fatalf("breaker %v after slow flush, want open", got)
	}

	// Fast fail while open: rejected immediately with a retry hint.
	resp, err = conn.Submit(context.Background(), genRequests(t, ycsb, 1, 52)[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != client.StatusRejected {
		t.Fatalf("open-breaker submit: status %q, want %q", resp.Status, client.StatusRejected)
	}
	if resp.RetryAfterMS < 1 {
		t.Fatalf("open-breaker rejection carries no retry hint: %d", resp.RetryAfterMS)
	}
	st := s.Stats()
	if st.BreakerRejected < 1 || st.BreakerTrips < 1 || st.BreakerState != "open" {
		t.Fatalf("breaker stats: rejected=%d trips=%d state=%q",
			st.BreakerRejected, st.BreakerTrips, st.BreakerState)
	}
	if st.RetryAfterMS < 1 {
		t.Fatalf("stats retry-after hint %d while open, want >= 1", st.RetryAfterMS)
	}

	// Past the cooldown the breaker half-opens: a probe admission runs,
	// its fast flush closes the breaker, and commits flow again.
	time.Sleep(60 * time.Millisecond)
	committed := false
	for i := 0; i < 100 && !committed; i++ {
		resp, err = conn.Submit(context.Background(), genRequests(t, ycsb, 1, int64(200+i))[0])
		if err != nil {
			t.Fatal(err)
		}
		if resp.Committed() {
			committed = true
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !committed {
		t.Fatal("no commit within 100 tries after the stall cleared")
	}
	if got := s.breaker.State(); got != overload.BreakerClosed {
		t.Fatalf("breaker %v after recovery, want closed", got)
	}
	foundTrip := false
	for _, ev := range s.Stats().OverloadEvents {
		if ev.Kind == "breaker" && ev.Detail == "closed->open" {
			foundTrip = true
		}
	}
	if !foundTrip {
		t.Fatal("no closed->open breaker event recorded")
	}
}
