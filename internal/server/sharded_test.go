package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/shard"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

// startSharded boots a loopback server in sharded mode: each shard
// owns a full YCSB replica (ownership is by key hash; non-owned rows
// are simply never touched).
func startSharded(t *testing.T, shards int, mut func(*Config)) (*Server, workload.YCSB) {
	t.Helper()
	ycsb := workload.YCSB{Records: 2000, Theta: 0.9, OpsPerTxn: 8, ReadRatio: 0.5, RMW: true}
	cfg := Config{
		Addr:          "127.0.0.1:0",
		HTTPAddr:      "127.0.0.1:0",
		Shards:        shards,
		ShardDB:       func(int) *storage.DB { return ycsb.BuildDB() },
		Bundle:        32,
		FlushInterval: 2 * time.Millisecond,
		QueueDepth:    1024,
		Core:          core.Options{Workers: 2, Protocol: "SILO", Seed: 1},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, ycsb
}

// genShardedRequests builds wire requests whose key footprints are
// confined per shard.Confine: crossFrac of them span two shards, the
// rest stay on one. Returns the requests plus the cross-shard count.
func genShardedRequests(t *testing.T, ycsb workload.YCSB, shards, n int, crossFrac float64, seed int64) ([]client.Request, int) {
	t.Helper()
	c := ycsb
	c.Txns = n
	c.Seed = seed
	w := c.Generate()
	_, cross := shard.Confine(w, shards, crossFrac, uint64(ycsb.Records), seed)
	reqs := make([]client.Request, len(w))
	for i, tx := range w {
		req, err := client.NewRequest(0, tx)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = req
	}
	return reqs, cross
}

// submitUntilCommitted drives one request closed-loop, retrying
// rejected responses (2PC vote-no under contention surfaces as
// Rejected with a retry hint) until it commits.
func submitUntilCommitted(t *testing.T, conn *client.Conn, req client.Request) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := conn.Submit(context.Background(), req)
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		switch resp.Status {
		case client.StatusCommit:
			return
		case client.StatusRejected:
			if time.Now().After(deadline) {
				t.Errorf("still rejected after 10s: %+v", resp)
				return
			}
			wait := time.Duration(resp.RetryAfterMS) * time.Millisecond
			if wait <= 0 {
				wait = time.Millisecond
			}
			time.Sleep(wait)
		default:
			t.Errorf("status %q (%s)", resp.Status, resp.Error)
			return
		}
	}
}

// TestShardedEndToEnd drives a 4-shard server over TCP with a mix of
// single- and cross-shard transactions and checks the rolled-up and
// per-shard counters, including over /metrics.
func TestShardedEndToEnd(t *testing.T) {
	const shards = 4
	s, ycsb := startSharded(t, shards, nil)
	defer s.Shutdown(context.Background())

	const clients, perClient = 2, 120
	totalCross := 0
	var crossMu sync.Mutex
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := client.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			reqs, cross := genShardedRequests(t, ycsb, shards, perClient, 0.25, int64(300+ci))
			crossMu.Lock()
			totalCross += cross
			crossMu.Unlock()
			for _, req := range reqs {
				submitUntilCommitted(t, conn, req)
			}
		}(ci)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st := s.Stats()
	const n = clients * perClient
	if st.Committed != n {
		t.Errorf("committed %d, want %d", st.Committed, n)
	}
	if len(st.Shards) != shards {
		t.Fatalf("per-shard stats: %d entries, want %d", len(st.Shards), shards)
	}
	if st.TwoPC == nil {
		t.Fatal("no 2PC stats in sharded mode")
	}
	if st.TwoPC.Committed != uint64(totalCross) {
		t.Errorf("2PC committed %d, want %d cross-shard txns", st.TwoPC.Committed, totalCross)
	}
	if st.TwoPC.Prepared < uint64(2*totalCross) {
		t.Errorf("2PC prepared %d, want >= %d (two participants each)", st.TwoPC.Prepared, 2*totalCross)
	}
	if st.TwoPC.InDoubt != 0 {
		t.Errorf("in-doubt gauge %d after drain, want 0", st.TwoPC.InDoubt)
	}
	var perShard int
	active := 0
	for _, sh := range st.Shards {
		perShard += int(sh.Committed)
		if sh.Admitted > 0 {
			active++
		}
	}
	if perShard+int(st.TwoPC.Committed) != n {
		t.Errorf("per-shard committed %d + cross %d != %d", perShard, st.TwoPC.Committed, n)
	}
	if active != shards {
		t.Errorf("only %d/%d shards saw traffic", active, shards)
	}

	// /metrics must carry the sharded breakdown.
	mresp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var mst Stats
	if err := json.Unmarshal(body, &mst); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if len(mst.Shards) != shards || mst.TwoPC == nil {
		t.Errorf("/metrics missing sharded counters: shards=%d twopc=%v", len(mst.Shards), mst.TwoPC != nil)
	}
}

// TestShardedDurableRestart commits one single-shard and one
// cross-shard transaction with idempotency keys against a durable
// 4-shard server, restarts it over the same directory, and checks
// that recovery reports the decision and both resubmissions dedup.
func TestShardedDurableRestart(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	durable := func(c *Config) {
		c.Durability = &DurabilityOptions{Dir: dir, NoSync: true}
	}
	s, ycsb := startSharded(t, shards, durable)

	conn, err := client.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// One key per shard pair: k0 on shard home(k0), k1 elsewhere.
	r := shard.Router{Shards: shards}
	var k0, k1 txn.Key
	k0 = txn.MakeKey(workload.YCSBTable, 0)
	for row := uint64(1); ; row++ {
		k := txn.MakeKey(workload.YCSBTable, row%uint64(ycsb.Records))
		if r.Home(k) != r.Home(k0) {
			k1 = k
			break
		}
	}

	local := &txn.Transaction{}
	local.UF(k0, 5, 0)
	lreq, err := client.NewRequest(1, local)
	if err != nil {
		t.Fatal(err)
	}
	lreq.IdemKey = 7001
	cross := &txn.Transaction{}
	cross.UF(k0, 3, 0)
	cross.UF(k1, 4, 0)
	creq, err := client.NewRequest(2, cross)
	if err != nil {
		t.Fatal(err)
	}
	creq.IdemKey = 7002

	for _, req := range []client.Request{lreq, creq} {
		resp, err := conn.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != client.StatusCommit {
			t.Fatalf("seq %d status %q (%s)", req.Seq, resp.Status, resp.Error)
		}
	}
	conn.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory.
	s2, _ := startSharded(t, shards, durable)
	defer s2.Shutdown(context.Background())
	info := s2.ShardRecovery()
	if info.CoordDecisions != 1 {
		t.Errorf("recovered %d coordinator decisions, want 1", info.CoordDecisions)
	}
	if info.Boots != 1 {
		t.Errorf("recovered %d boot records, want 1", info.Boots)
	}

	conn2, err := client.Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	for _, req := range []client.Request{lreq, creq} {
		resp, err := conn2.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != client.StatusCommit || !resp.Duplicate {
			t.Errorf("seq %d resubmit status %q dup=%v, want cached commit", req.Seq, resp.Status, resp.Duplicate)
		}
	}
}
