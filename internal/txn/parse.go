package txn

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a transaction from the paper's compact notation, e.g.
//
//	Parse(1, "R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]")
//
// yields T1 of Example 1. Item names are of the form x<N> (table 0, row
// N) or <table>:<row>. Whitespace between actions is ignored. An action
// is R (read), W (write), I (insert) or U (read-modify-write).
func Parse(id int, s string) (*Transaction, error) {
	t := &Transaction{}
	if err := ParseInto(t, id, s); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseInto parses s into t, resetting every field first. The Ops
// slice and cached access-set backing arrays are reused when capacity
// allows, so a pooled Transaction parses without allocating. On error
// t is left in the reset (empty) state.
func ParseInto(t *Transaction, id int, s string) error {
	ops := t.Ops[:0]
	if n := strings.Count(s, "["); cap(ops) < n {
		ops = make([]Op, 0, n)
	}
	*t = Transaction{ID: id, Ops: ops, readSet: t.readSet[:0], writeSet: t.writeSet[:0]}
	parsed, err := ParseOps(ops, s)
	if err != nil {
		return t.parseFail("%w", err)
	}
	t.Ops = parsed
	return nil
}

// ParseOps parses the compact notation in s, appending the operations
// to dst (which may be nil) and returning the extended slice — the
// string-to-ops half of ParseInto, usable without a Transaction (the
// binary wire encoder converts notation this way).
func ParseOps(dst []Op, s string) ([]Op, error) {
	rest := strings.TrimSpace(s)
	for rest != "" {
		if len(rest) < 4 { // minimal action: R[x]
			return dst, fmt.Errorf("txn.Parse: truncated action at %q", rest)
		}
		var kind OpKind
		switch rest[0] {
		case 'R':
			kind = OpRead
		case 'W':
			kind = OpWrite
		case 'I':
			kind = OpInsert
		case 'U':
			kind = OpUpdate
		default:
			return dst, fmt.Errorf("txn.Parse: unknown action %q", rest[0])
		}
		if rest[1] != '[' {
			return dst, fmt.Errorf("txn.Parse: expected '[' after %c in %q", rest[0], rest)
		}
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return dst, fmt.Errorf("txn.Parse: unterminated item in %q", rest)
		}
		key, err := parseItem(rest[2:end])
		if err != nil {
			return dst, err
		}
		dst = append(dst, Op{Kind: kind, Key: key})
		rest = strings.TrimSpace(rest[end+1:])
	}
	return dst, nil
}

// parseFail empties the half-parsed transaction and formats the error.
func (t *Transaction) parseFail(format string, args ...any) error {
	t.Ops = t.Ops[:0]
	return fmt.Errorf(format, args...)
}

// MustParse is Parse that panics on malformed input; for tests and
// examples with literal transactions.
func MustParse(id int, s string) *Transaction {
	t, err := Parse(id, s)
	if err != nil {
		panic(err)
	}
	return t
}

func parseItem(s string) (Key, error) {
	if strings.HasPrefix(s, "x") {
		n, err := strconv.ParseUint(s[1:], 10, 48)
		if err != nil {
			return 0, fmt.Errorf("txn.Parse: bad item %q: %v", s, err)
		}
		return MakeKey(0, n), nil
	}
	if table, row, ok := strings.Cut(s, ":"); ok {
		tn, err := strconv.ParseUint(table, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("txn.Parse: bad table in %q: %v", s, err)
		}
		rn, err := strconv.ParseUint(row, 10, 48)
		if err != nil {
			return 0, fmt.Errorf("txn.Parse: bad row in %q: %v", s, err)
		}
		return MakeKey(uint16(tn), rn), nil
	}
	return 0, fmt.Errorf("txn.Parse: bad item %q", s)
}

// MustParseWorkload parses one transaction per line; blank lines and
// lines starting with '#' are skipped. IDs are assigned 0..n-1 in line
// order.
func MustParseWorkload(s string) Workload {
	var w Workload
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		w = append(w, MustParse(len(w), line))
	}
	return w
}
