package txn

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMakeKeyRoundTrip(t *testing.T) {
	cases := []struct {
		table uint16
		row   uint64
	}{
		{0, 0},
		{1, 1},
		{65535, 1<<48 - 1},
		{42, 123456789},
	}
	for _, c := range cases {
		k := MakeKey(c.table, c.row)
		if k.Table() != c.table || k.Row() != c.row {
			t.Errorf("MakeKey(%d,%d) round-trips to (%d,%d)", c.table, c.row, k.Table(), k.Row())
		}
	}
}

func TestMakeKeyRowMasked(t *testing.T) {
	// Rows above 48 bits must be masked, not bleed into the table id.
	k := MakeKey(7, 1<<60|5)
	if k.Table() != 7 {
		t.Errorf("table corrupted by oversized row: got %d", k.Table())
	}
	if k.Row() != 5 {
		t.Errorf("row not masked: got %d", k.Row())
	}
}

func TestKeyRoundTripQuick(t *testing.T) {
	f := func(table uint16, row uint64) bool {
		row &= 1<<48 - 1
		k := MakeKey(table, row)
		return k.Table() == table && k.Row() == row
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadWriteSets(t *testing.T) {
	tx := MustParse(1, "R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]")
	wantR := []Key{MakeKey(0, 2), MakeKey(0, 3), MakeKey(0, 4)}
	if got := tx.ReadSet(); !reflect.DeepEqual(got, wantR) {
		t.Errorf("ReadSet = %v, want %v", got, wantR)
	}
	if got := tx.WriteSet(); !reflect.DeepEqual(got, wantR) {
		t.Errorf("WriteSet = %v, want %v", got, wantR)
	}
}

func TestSetsDeduplicated(t *testing.T) {
	tx := MustParse(0, "R[x1]R[x1]R[x1]W[x1]W[x1]")
	if len(tx.ReadSet()) != 1 || len(tx.WriteSet()) != 1 {
		t.Errorf("sets not deduplicated: R=%v W=%v", tx.ReadSet(), tx.WriteSet())
	}
}

func TestInsertCountsAsWrite(t *testing.T) {
	tx := New(0).I(MakeKey(1, 9))
	if !tx.Writes(MakeKey(1, 9)) {
		t.Error("insert not reflected in write set")
	}
	if len(tx.ReadSet()) != 0 {
		t.Error("insert leaked into read set")
	}
}

func TestBuilderInvalidatesCache(t *testing.T) {
	tx := New(0).R(MakeKey(0, 1))
	_ = tx.ReadSet() // force cache
	tx.W(MakeKey(0, 2))
	if !tx.Writes(MakeKey(0, 2)) {
		t.Error("write set cache not invalidated by builder")
	}
}

func TestEmptySets(t *testing.T) {
	tx := New(0)
	if tx.ReadSet() == nil || tx.WriteSet() == nil {
		t.Error("empty sets should be non-nil after computation")
	}
	if tx.Reads(MakeKey(0, 0)) || tx.Writes(MakeKey(0, 0)) {
		t.Error("empty transaction claims accesses")
	}
}

func TestAccessSetUnion(t *testing.T) {
	tx := MustParse(0, "R[x1]W[x2]R[x3]")
	want := []Key{MakeKey(0, 1), MakeKey(0, 2), MakeKey(0, 3)}
	if got := tx.AccessSet(); !reflect.DeepEqual(got, want) {
		t.Errorf("AccessSet = %v, want %v", got, want)
	}
}

func TestParseExample1(t *testing.T) {
	// The five transactions of Example 1 in the paper.
	w := MustParseWorkload(`
		R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]
		R[x1]W[x2]W[x1]
		R[x3]W[x3]R[x2]R[x3]W[x2]
		R[x5]W[x5]R[x6]W[x6]
		R[x1]W[x1]R[x5]W[x5]R[x1]W[x1]
	`)
	if len(w) != 5 {
		t.Fatalf("parsed %d transactions, want 5", len(w))
	}
	if w[0].Len() != 6 || w[1].Len() != 3 || w[2].Len() != 5 || w[3].Len() != 4 || w[4].Len() != 6 {
		t.Errorf("unexpected op counts: %d %d %d %d %d",
			w[0].Len(), w[1].Len(), w[2].Len(), w[3].Len(), w[4].Len())
	}
	if w.TotalOps() != 24 {
		t.Errorf("TotalOps = %d, want 24", w.TotalOps())
	}
}

func TestParseTableRowNotation(t *testing.T) {
	tx := MustParse(0, "R[3:17]W[3:18]")
	if tx.Ops[0].Key != MakeKey(3, 17) || tx.Ops[1].Key != MakeKey(3, 18) {
		t.Errorf("table:row notation mis-parsed: %v", tx.Ops)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"X[x1]", "R[x1", "Rx1]", "R[y1]", "R[1:2:3]", "R[x]extra["}
	for _, s := range bad {
		if _, err := Parse(0, s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	a := MustParse(0, "R[x1] W[x2]  R[x3]")
	b := MustParse(0, "R[x1]W[x2]R[x3]")
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Errorf("whitespace changes parse: %v vs %v", a.Ops, b.Ops)
	}
}

func TestStringRendering(t *testing.T) {
	tx := MustParse(7, "R[x1]W[x2]")
	if got, want := tx.String(), "T7 = R[0:1] W[0:2]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestWorkloadByIDAndMaxID(t *testing.T) {
	w := Workload{New(3), New(0), New(7)}
	m := w.ByID()
	if len(m) != 3 || m[7] != w[2] {
		t.Errorf("ByID wrong: %v", m)
	}
	if w.MaxID() != 7 {
		t.Errorf("MaxID = %d, want 7", w.MaxID())
	}
	if (Workload{}).MaxID() != -1 {
		t.Error("empty workload MaxID should be -1")
	}
}

// Property: read/write sets are always sorted, deduplicated, and
// consistent with the op list.
func TestSetsInvariantQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := New(0)
		n := r.Intn(30)
		for i := 0; i < n; i++ {
			k := MakeKey(uint16(r.Intn(3)), uint64(r.Intn(10)))
			switch r.Intn(3) {
			case 0:
				tx.R(k)
			case 1:
				tx.W(k)
			default:
				tx.I(k)
			}
		}
		rs, ws := tx.ReadSet(), tx.WriteSet()
		if !sort.SliceIsSorted(rs, func(i, j int) bool { return rs[i] < rs[j] }) {
			return false
		}
		if !sort.SliceIsSorted(ws, func(i, j int) bool { return ws[i] < ws[j] }) {
			return false
		}
		for i := 1; i < len(rs); i++ {
			if rs[i] == rs[i-1] {
				return false
			}
		}
		for i := 1; i < len(ws); i++ {
			if ws[i] == ws[i-1] {
				return false
			}
		}
		// Every op key must appear in the right set, and vice versa.
		for _, op := range tx.Ops {
			if op.Kind == OpRead && !tx.Reads(op.Key) {
				return false
			}
			if op.Kind != OpRead && !tx.Writes(op.Key) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRuntimeKnobsZeroByDefault(t *testing.T) {
	tx := New(0)
	if tx.MinRuntime != 0 || tx.IODelay != 0 {
		t.Error("runtime knobs must default to zero")
	}
	tx.MinRuntime = 3 * time.Millisecond
	tx.IODelay = time.Millisecond
	if tx.MinRuntime != 3*time.Millisecond {
		t.Error("MinRuntime not settable")
	}
}
