package txn

import (
	"reflect"
	"testing"
)

// TestBinaryOpsRoundTrip: encode → decode reproduces the op list
// exactly, for every encodable kind and across the key range.
func TestBinaryOpsRoundTrip(t *testing.T) {
	cases := [][]Op{
		nil,
		{{Kind: OpRead, Key: MakeKey(0, 1)}},
		{
			{Kind: OpRead, Key: MakeKey(1, 5)},
			{Kind: OpWrite, Key: MakeKey(0, 0)},
			{Kind: OpInsert, Key: MakeKey(65535, 1<<48 - 1)},
			{Kind: OpUpdate, Key: MakeKey(7, 123456789)},
		},
	}
	for _, ops := range cases {
		b, err := AppendOpsBinary(nil, ops)
		if err != nil {
			t.Fatalf("encode %v: %v", ops, err)
		}
		if len(b) != len(ops)*OpWireBytes {
			t.Fatalf("encoded %d ops into %d bytes, want %d", len(ops), len(b), len(ops)*OpWireBytes)
		}
		var tx Transaction
		if err := ParseBinaryInto(&tx, 3, b); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if tx.ID != 3 {
			t.Fatalf("ID = %d, want 3", tx.ID)
		}
		if len(ops) == 0 {
			if len(tx.Ops) != 0 {
				t.Fatalf("decoded %v from empty blob", tx.Ops)
			}
			continue
		}
		want := make([]Op, len(ops))
		for i, op := range ops {
			want[i] = Op{Kind: op.Kind, Key: op.Key}
		}
		if !reflect.DeepEqual([]Op(tx.Ops), want) {
			t.Fatalf("round trip changed ops: %v -> %v", want, tx.Ops)
		}
	}
}

// TestBinaryOpsMatchesNotation: for transactions built from the text
// notation, the binary encoding decodes to the same operation list the
// text parser produces — the semantic-equivalence property the wire
// protocol's fuzz parity extends.
func TestBinaryOpsMatchesNotation(t *testing.T) {
	for _, s := range []string{
		"",
		"R[x1]W[x2]",
		"U[3:17]I[2:5]R[65535:281474976710655]",
		"W[0:0]W[0:0]",
	} {
		viaText := MustParse(0, s)
		b, err := AppendOpsBinary(nil, viaText.Ops)
		if err != nil {
			t.Fatalf("%q: encode: %v", s, err)
		}
		var viaBin Transaction
		if err := ParseBinaryInto(&viaBin, 0, b); err != nil {
			t.Fatalf("%q: decode: %v", s, err)
		}
		if !opsEqual(viaText.Ops, viaBin.Ops) {
			t.Fatalf("%q: text %v != binary %v", s, viaText.Ops, viaBin.Ops)
		}
	}
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBinaryOpsRejects: malformed blobs are rejected and leave the
// transaction in the reset state, matching ParseInto's error contract.
func TestBinaryOpsRejects(t *testing.T) {
	good, err := AppendOpsBinary(nil, []Op{{Kind: OpRead, Key: 1}, {Kind: OpWrite, Key: 2}})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		good[:5],                      // truncated record
		append([]byte{9}, good[:8]...), // unknown kind byte
		{byte(OpScan), 0, 0, 0, 0, 0, 0, 0, 0}, // scan has no wire form
	}
	for _, b := range bad {
		tx := Transaction{Ops: []Op{{Kind: OpRead, Key: 42}}}
		if err := ParseBinaryInto(&tx, 0, b); err == nil {
			t.Fatalf("blob %v accepted", b)
		}
		if len(tx.Ops) != 0 {
			t.Fatalf("blob %v left ops %v after error", b, tx.Ops)
		}
	}
	// Scans are rejected on encode too.
	if _, err := AppendOpsBinary(nil, []Op{{Kind: OpScan, Key: 1, Arg: 5}}); err == nil {
		t.Fatal("scan encoded without error")
	}
}

// TestBinaryOpsReuse: decoding into a transaction with capacity does
// not allocate (the pooled-pending property the server's zero-alloc
// decode path relies on).
func TestBinaryOpsReuse(t *testing.T) {
	ops := []Op{
		{Kind: OpRead, Key: MakeKey(0, 17)},
		{Kind: OpUpdate, Key: MakeKey(0, 4242)},
		{Kind: OpWrite, Key: MakeKey(1, 99)},
	}
	blob, err := AppendOpsBinary(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	var tx Transaction
	if err := ParseBinaryInto(&tx, 0, blob); err != nil {
		t.Fatal(err) // first decode may allocate the ops array
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := ParseBinaryInto(&tx, 0, blob); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("ParseBinaryInto with warm capacity allocs/op = %v, budget 0", n)
	}
}
