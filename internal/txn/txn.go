// Package txn defines the transaction model shared by every subsystem:
// operations, access sets, templates, and the runtime knobs (minimum
// runtime lower bounds and commit-time I/O delays) used by the
// benchmark extensions of Section 6.1 of the paper.
//
// A Transaction here is a *declared* unit of work: a sequence of
// operations over global data-item keys, plus metadata that lets the
// scheduler (internal/sched), the partitioners (internal/partition) and
// the deferment module (internal/deferment) reason about it before and
// during execution. The execution engine (internal/engine) interprets
// the operations against the storage layer under a CC protocol.
package txn

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"
)

// Key identifies a data item globally across all tables. The high 16
// bits carry the table id and the low 48 bits the row key within the
// table, so conflict analysis can operate on flat key sets without
// consulting the catalog.
type Key uint64

const tableShift = 48

// MakeKey composes a global key from a table id and a row key.
func MakeKey(table uint16, row uint64) Key {
	return Key(uint64(table)<<tableShift | row&(1<<tableShift-1))
}

// Table extracts the table id from a global key.
func (k Key) Table() uint16 { return uint16(k >> tableShift) }

// Row extracts the row key within the table from a global key.
func (k Key) Row() uint64 { return uint64(k) & (1<<tableShift - 1) }

func (k Key) String() string {
	return fmt.Sprintf("%d:%d", k.Table(), k.Row())
}

// OpKind enumerates the kinds of database actions a transaction issues.
type OpKind uint8

const (
	// OpRead reads a data item.
	OpRead OpKind = iota
	// OpWrite blindly overwrites a data item (Fields[0] = Arg).
	OpWrite
	// OpInsert creates a new data item. Inserts count as writes for
	// conflict purposes.
	OpInsert
	// OpUpdate is a read-modify-write (Fields[0] += Arg, wrapping). It
	// counts as both a read and a write for conflict purposes, and the
	// engine validates the read so increments are never lost.
	OpUpdate
	// OpScan is a range read of rows with keys in [Key.Row(), Arg]
	// within Key's table. Its read set is not known before execution,
	// so scans contribute nothing to the declared access sets: they are
	// always executed with CC — per-row read validation plus a
	// table-structure-version check for phantom protection — exactly
	// the paper's treatment of range queries (Section 3, Limitations).
	OpScan
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpInsert:
		return "I"
	case OpUpdate:
		return "U"
	case OpScan:
		return "S"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is a single database action on a key. Arg carries the operation's
// argument for writing kinds (the value to store, or the wrapping
// delta for updates); Field selects the column it applies to.
type Op struct {
	Kind  OpKind
	Key   Key
	Arg   uint64
	Field uint8
}

// Transaction is a declared transaction: its logic template, its
// instantiation parameters, its operation list, and per-transaction
// runtime knobs added by the benchmark extensions.
type Transaction struct {
	// ID is unique within a workload bundle and indexes auxiliary
	// arrays (conflict graph adjacency, schedules, progress tracker).
	ID int

	// Template names the stored procedure this transaction was
	// instantiated from (e.g. "NewOrder", "YCSB-A"). The history-based
	// cost estimator matches on it.
	Template string

	// Params are the instantiation parameters of the template (e.g.
	// warehouse/district/customer ids). Used by the estimator to find
	// similar historical executions and by TsDEFER to predict access
	// sets without executing.
	Params []uint64

	// Ops is the declared operation sequence.
	Ops []Op

	// MinRuntime lower-bounds the execution time of the transaction:
	// if it finishes earlier, commit is delayed until MinRuntime has
	// elapsed (Section 6.1, "Extension with runtime skewness").
	MinRuntime time.Duration

	// IODelay is an artificial delay added at commit time to emulate
	// I/O latency (Section 6.1, "Extension with I/O latency").
	IODelay time.Duration

	// UserAbort marks a transaction that rolls back for application
	// reasons after executing (TPC-C: ~1% of NewOrders hit an invalid
	// item). The engine executes it, aborts instead of committing, and
	// does not retry.
	UserAbort bool

	// IdemKey is the client-chosen idempotency key of the request that
	// carried this transaction (0 = none). It rides into the WAL commit
	// record so the serving layer's exactly-once dedup window survives
	// crashes.
	IdemKey uint64

	// Deadline, when nonzero, is the wall-clock instant past which the
	// transaction must not (re-)execute: the engine drops it before the
	// first attempt and between retries, and the serving layer drops it
	// at bundle formation, answering StatusExpired. A transaction past
	// its deadline is abandoned work — executing it only inflates
	// runtime conflicts for live transactions.
	Deadline time.Time

	readSet   []Key // lazily computed, sorted, deduplicated
	writeSet  []Key // lazily computed, sorted, deduplicated
	setsValid bool  // readSet/writeSet reflect Ops (capacity is reused)
}

// New returns a transaction with the given id and operations.
func New(id int, ops ...Op) *Transaction {
	return &Transaction{ID: id, Ops: ops}
}

// R appends a read of key k and returns the transaction for chaining.
func (t *Transaction) R(k Key) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpRead, Key: k})
	t.invalidate()
	return t
}

// W appends a write of key k and returns the transaction for chaining.
func (t *Transaction) W(k Key) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpWrite, Key: k})
	t.invalidate()
	return t
}

// I appends an insert of key k and returns the transaction for chaining.
func (t *Transaction) I(k Key) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpInsert, Key: k})
	t.invalidate()
	return t
}

// U appends a read-modify-write of key k adding delta (wrapping) to
// field 0 and returns the transaction for chaining.
func (t *Transaction) U(k Key, delta uint64) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpUpdate, Key: k, Arg: delta})
	t.invalidate()
	return t
}

// UF appends a read-modify-write of field f of key k adding delta
// (wrapping) and returns the transaction for chaining.
func (t *Transaction) UF(k Key, f uint8, delta uint64) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpUpdate, Key: k, Arg: delta, Field: f})
	t.invalidate()
	return t
}

// WF appends a blind write of value v to field f of key k and returns
// the transaction for chaining.
func (t *Transaction) WF(k Key, f uint8, v uint64) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpWrite, Key: k, Arg: v, Field: f})
	t.invalidate()
	return t
}

// IF appends an insert of key k initializing field f to v and returns
// the transaction for chaining.
func (t *Transaction) IF(k Key, f uint8, v uint64) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpInsert, Key: k, Arg: v, Field: f})
	t.invalidate()
	return t
}

// S appends a range scan of [lo, lo+span] within lo's table and
// returns the transaction for chaining.
func (t *Transaction) S(lo Key, span uint64) *Transaction {
	t.Ops = append(t.Ops, Op{Kind: OpScan, Key: lo, Arg: lo.Row() + span})
	t.invalidate()
	return t
}

// SetOps replaces the operation list wholesale and invalidates the
// cached access sets. Workload rewriters (the sharded confinement
// helper) use it after mutating Ops in place, since direct writes
// through the Ops slice would leave previously computed sets stale.
func (t *Transaction) SetOps(ops []Op) {
	t.Ops = ops
	t.invalidate()
}

// HasScan reports whether t contains a range scan (and therefore has a
// partially unknown access set).
func (t *Transaction) HasScan() bool {
	for _, op := range t.Ops {
		if op.Kind == OpScan {
			return true
		}
	}
	return false
}

// invalidate marks the cached access sets stale. Their backing arrays
// are kept and rewritten by the next computeSets, so a caller holding a
// previously returned set must not mutate the transaction.
func (t *Transaction) invalidate() {
	t.setsValid = false
}

// ReadSet returns the sorted, deduplicated set of keys read by t.
// The result is cached; callers must not mutate it.
func (t *Transaction) ReadSet() []Key {
	if !t.setsValid {
		t.computeSets()
	}
	return t.readSet
}

// WriteSet returns the sorted, deduplicated set of keys written
// (including inserts) by t. The result is cached; callers must not
// mutate it.
func (t *Transaction) WriteSet() []Key {
	if !t.setsValid {
		t.computeSets()
	}
	return t.writeSet
}

func (t *Transaction) computeSets() {
	rs := t.readSet[:0]
	ws := t.writeSet[:0]
	for _, op := range t.Ops {
		switch op.Kind {
		case OpRead:
			rs = append(rs, op.Key)
		case OpWrite, OpInsert:
			ws = append(ws, op.Key)
		case OpUpdate:
			rs = append(rs, op.Key)
			ws = append(ws, op.Key)
		}
	}
	t.readSet = dedupe(rs)
	t.writeSet = dedupe(ws)
	// Guarantee non-nil: the zero Transaction's sets start nil and some
	// callers distinguish "computed empty" from "absent".
	if t.readSet == nil {
		t.readSet = []Key{}
	}
	if t.writeSet == nil {
		t.writeSet = []Key{}
	}
	t.setsValid = true
}

// AccessSet returns the sorted, deduplicated union of the read and
// write sets of t. The caller owns the returned slice.
func (t *Transaction) AccessSet() []Key {
	u := make([]Key, 0, len(t.ReadSet())+len(t.WriteSet()))
	u = append(u, t.ReadSet()...)
	u = append(u, t.WriteSet()...)
	return dedupe(u)
}

func dedupe(ks []Key) []Key {
	if len(ks) == 0 {
		return ks
	}
	slices.Sort(ks)
	out := ks[:1]
	for _, k := range ks[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// Len returns the number of operations in t, the brute-force cost
// estimate used as a fallback by the estimator (each read/write is one
// unit of time, as in Example 1 of the paper).
func (t *Transaction) Len() int { return len(t.Ops) }

// Reads reports whether t reads key k.
func (t *Transaction) Reads(k Key) bool { return contains(t.ReadSet(), k) }

// Writes reports whether t writes (or inserts) key k.
func (t *Transaction) Writes(k Key) bool { return contains(t.WriteSet(), k) }

func contains(set []Key, k Key) bool {
	i := sort.Search(len(set), func(i int) bool { return set[i] >= k })
	return i < len(set) && set[i] == k
}

// String renders the transaction in the paper's compact notation, e.g.
// "T1 = R[2:0]W[2:0]".
func (t *Transaction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "T%d =", t.ID)
	for _, op := range t.Ops {
		fmt.Fprintf(&b, " %s[%s]", op.Kind, op.Key)
	}
	return b.String()
}

// Workload is an ordered bundle of transactions revealed to the system
// at once (the "bundled" workload model of Section 2.1).
type Workload []*Transaction

// TotalOps returns the total number of operations across the workload.
func (w Workload) TotalOps() int {
	n := 0
	for _, t := range w {
		n += len(t.Ops)
	}
	return n
}

// ByID returns a lookup table from transaction ID to transaction.
// Transaction IDs must be unique within the workload.
func (w Workload) ByID() map[int]*Transaction {
	m := make(map[int]*Transaction, len(w))
	for _, t := range w {
		m[t.ID] = t
	}
	return m
}

// MaxID returns the largest transaction ID in the workload, or -1 for
// an empty workload. Dense auxiliary arrays are sized as MaxID()+1.
func (w Workload) MaxID() int {
	max := -1
	for _, t := range w {
		if t.ID > max {
			max = t.ID
		}
	}
	return max
}
