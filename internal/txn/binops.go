package txn

// binops.go: the binary wire form of an operation list, beside the
// text parser. The compact notation ("R[x17]U[1:42]") is readable but
// costs string splitting and integer parsing per op on the serve path;
// the binary form is a flat array of fixed-width records that decodes
// straight into a pooled Transaction's Ops slice with no intermediate
// strings:
//
//	kind u8 | key u64 (little endian)       — 9 bytes per op
//
// The blob carries no count: its length must be a multiple of the
// record size, and the container (the wire frame) delimits it. Exactly
// the op kinds with text notation are encodable — R, W, I, U — so the
// two encodings describe the same transaction class and fuzz parity
// between them is meaningful. Scans have no wire form in either
// encoding (their access sets are unknown before execution).

import (
	"encoding/binary"
	"fmt"
)

// OpWireBytes is the fixed wire size of one binary-encoded operation.
const OpWireBytes = 9

// AppendOpsBinary appends the binary encoding of ops to dst and
// returns the extended slice. Op kinds without a wire form (scans)
// are rejected, mirroring the notation encoder.
func AppendOpsBinary(dst []byte, ops []Op) ([]byte, error) {
	for _, op := range ops {
		switch op.Kind {
		case OpRead, OpWrite, OpInsert, OpUpdate:
		default:
			return dst, fmt.Errorf("txn: op kind %v has no binary wire encoding", op.Kind)
		}
		dst = append(dst, byte(op.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(op.Key))
	}
	return dst, nil
}

// ParseBinaryInto decodes a binary op blob into t, resetting every
// field first — the binary analogue of ParseInto, with the same reuse
// discipline: the Ops slice and cached access-set backing arrays keep
// their capacity, so a pooled Transaction decodes without allocating.
// On error t is left in the reset (empty) state.
func ParseBinaryInto(t *Transaction, id int, b []byte) error {
	ops := t.Ops[:0]
	n := len(b) / OpWireBytes
	if cap(ops) < n {
		ops = make([]Op, 0, n)
	}
	*t = Transaction{ID: id, Ops: ops, readSet: t.readSet[:0], writeSet: t.writeSet[:0]}
	if len(b)%OpWireBytes != 0 {
		return fmt.Errorf("txn: binary ops blob of %d bytes is not a whole number of %d-byte records", len(b), OpWireBytes)
	}
	for i := 0; i < n; i++ {
		rec := b[i*OpWireBytes:]
		kind := OpKind(rec[0])
		switch kind {
		case OpRead, OpWrite, OpInsert, OpUpdate:
		default:
			t.Ops = t.Ops[:0]
			return fmt.Errorf("txn: binary op %d has kind byte %d (no wire encoding)", i, rec[0])
		}
		t.Ops = append(t.Ops, Op{Kind: kind, Key: Key(binary.LittleEndian.Uint64(rec[1:9]))})
	}
	return nil
}
