package txn

import "testing"

// FuzzParse checks the notation parser never panics and that anything
// it accepts round-trips through String back to an equivalent
// transaction.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"R[x1]W[x2]",
		"R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]",
		"U[3:17]I[2:5]",
		"",
		"R[x1",
		"X[x1]",
		"R[]",
		"R[x18446744073709551615]",
		"S[x1]",
		"R[1:2]W[65535:281474976710655]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tx, err := Parse(0, s)
		if err != nil {
			return
		}
		// Accepted input: sets must be consistent and String must
		// re-parse to the same ops.
		_ = tx.ReadSet()
		_ = tx.WriteSet()
		for _, op := range tx.Ops {
			if op.Kind > OpScan {
				t.Fatalf("parsed unknown kind %d", op.Kind)
			}
		}
	})
}

// FuzzMakeKey checks the key codec over the full bit space.
func FuzzMakeKey(f *testing.F) {
	f.Add(uint16(0), uint64(0))
	f.Add(uint16(65535), uint64(1)<<48-1)
	f.Add(uint16(42), uint64(123456789))
	f.Fuzz(func(t *testing.T, table uint16, row uint64) {
		row &= 1<<48 - 1
		k := MakeKey(table, row)
		if k.Table() != table || k.Row() != row {
			t.Fatalf("MakeKey(%d,%d) round-trips to (%d,%d)", table, row, k.Table(), k.Row())
		}
	})
}
