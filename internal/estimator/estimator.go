// Package estimator provides the transaction-cost estimators TsPAR
// relies on (Section 3 of the paper). Scheduling only needs *relative*
// costs: "any estimates that roughly preserve the relative costs of
// transactions suffice".
//
// Three estimators are provided, mirroring the paper's fallback chain:
//
//  1. History: match a transaction to past executions of the same
//     template with the same (or nearest) parameters.
//  2. DryRun: partially execute reads (no physical writes) against the
//     store to derive per-template costs.
//  3. AccessSetSize: the brute-force fallback — one unit per operation
//     (the convention of Example 1), plus the declared runtime knobs.
package estimator

import (
	"sync"
	"time"

	"tskd/internal/clock"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// Estimator predicts the serial execution time of a transaction in
// abstract units (1 unit ≈ one read/write operation).
type Estimator interface {
	// Estimate returns time(T) in units.
	Estimate(t *txn.Transaction) clock.Units
}

// knobUnits converts a transaction's declared runtime knobs to units:
// the effective serial duration is max(opWork, MinRuntime) + IODelay.
// unit is the wall-clock length of one unit; a zero unit ignores the
// knobs (pure op counting).
func knobUnits(t *txn.Transaction, opUnits clock.Units, unit time.Duration) clock.Units {
	if unit <= 0 {
		return opUnits
	}
	mi := clock.Units(float64(t.MinRuntime) / float64(unit))
	if mi > opUnits {
		opUnits = mi
	}
	return opUnits + clock.Units(float64(t.IODelay)/float64(unit))
}

// AccessSetSize estimates cost as the number of operations plus the
// declared runtime knobs — the "extreme case" fallback of Section 3.
type AccessSetSize struct {
	// Unit is the wall-clock duration of one op, used to convert the
	// MinRuntime/IODelay knobs into units. Zero disables the knobs.
	Unit time.Duration
}

// Estimate implements Estimator.
func (e AccessSetSize) Estimate(t *txn.Transaction) clock.Units {
	return knobUnits(t, clock.Units(len(t.Ops)), e.Unit)
}

// History estimates costs from recorded executions: an exact
// (template, params) match first, then the template's running average,
// then the AccessSetSize fallback. It is safe for concurrent use; the
// engine records observed durations as transactions commit and TsPAR
// reads them when scheduling the next bundle.
type History struct {
	// Fallback handles templates never seen before. The zero value
	// (AccessSetSize{}) is used when nil.
	Fallback Estimator

	mu        sync.RWMutex
	exact     map[string]clock.Units // template+params -> EWMA cost
	templates map[string]*ewma       // template -> EWMA cost
}

type ewma struct {
	v clock.Units
	n int
}

// NewHistory returns an empty history estimator.
func NewHistory() *History {
	return &History{
		exact:     make(map[string]clock.Units),
		templates: make(map[string]*ewma),
	}
}

func exactKey(template string, params []uint64) string {
	// Parameters are small ids; a compact textual key suffices and
	// avoids collisions.
	b := make([]byte, 0, len(template)+len(params)*8)
	b = append(b, template...)
	for _, p := range params {
		b = append(b, '/')
		for p >= 10 {
			b = append(b, byte('0'+p%10))
			p /= 10
		}
		b = append(b, byte('0'+p))
	}
	return string(b)
}

// Record feeds an observed execution cost into the history.
func (h *History) Record(template string, params []uint64, cost clock.Units) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := exactKey(template, params)
	if old, ok := h.exact[k]; ok {
		h.exact[k] = old*0.5 + cost*0.5
	} else {
		h.exact[k] = cost
	}
	e := h.templates[template]
	if e == nil {
		e = &ewma{}
		h.templates[template] = e
	}
	e.n++
	alpha := clock.Units(1 / float64(e.n))
	if alpha < 0.05 {
		alpha = 0.05
	}
	e.v += alpha * (cost - e.v)
}

// Estimate implements Estimator.
func (h *History) Estimate(t *txn.Transaction) clock.Units {
	h.mu.RLock()
	if c, ok := h.exact[exactKey(t.Template, t.Params)]; ok {
		h.mu.RUnlock()
		return c
	}
	if e, ok := h.templates[t.Template]; ok && e.n > 0 {
		v := e.v
		h.mu.RUnlock()
		return v
	}
	h.mu.RUnlock()
	if h.Fallback != nil {
		return h.Fallback.Estimate(t)
	}
	return AccessSetSize{}.Estimate(t)
}

// Len returns the number of exact records; for tests.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.exact)
}

// DryRun estimates costs by partially executing transactions against
// the store: reads are performed (to measure real access cost), writes
// are counted but not applied — "no writes are physically executed
// during the dry-run" (Section 3). Sampled per template: the first
// SampleSize transactions of each template are dry-run, later ones
// reuse the template average.
type DryRun struct {
	DB *storage.DB
	// Unit converts runtime knobs; see AccessSetSize.Unit.
	Unit time.Duration
	// SampleSize bounds dry-runs per template (default 32).
	SampleSize int

	mu      sync.Mutex
	perTmpl map[string]*ewma
}

// NewDryRun returns a dry-run estimator over db.
func NewDryRun(db *storage.DB) *DryRun {
	return &DryRun{DB: db, SampleSize: 32, perTmpl: make(map[string]*ewma)}
}

// Estimate implements Estimator.
func (d *DryRun) Estimate(t *txn.Transaction) clock.Units {
	d.mu.Lock()
	e := d.perTmpl[t.Template]
	if e == nil {
		e = &ewma{}
		d.perTmpl[t.Template] = e
	}
	sampled := e.n >= d.sampleSize()
	d.mu.Unlock()

	var opUnits clock.Units
	if sampled {
		d.mu.Lock()
		opUnits = e.v
		d.mu.Unlock()
	} else {
		opUnits = d.run(t)
		d.mu.Lock()
		e.n++
		alpha := clock.Units(1 / float64(e.n))
		e.v += alpha * (opUnits - e.v)
		d.mu.Unlock()
	}
	return knobUnits(t, opUnits, d.Unit)
}

func (d *DryRun) sampleSize() int {
	if d.SampleSize <= 0 {
		return 32
	}
	return d.SampleSize
}

// run performs the partial dry-run: execute reads, count writes.
func (d *DryRun) run(t *txn.Transaction) clock.Units {
	units := clock.Units(0)
	for _, op := range t.Ops {
		switch op.Kind {
		case txn.OpRead:
			if r := d.DB.Resolve(op.Key); r != nil {
				_ = r.Load()
			}
			units++
		case txn.OpWrite, txn.OpInsert:
			// Writes are not physically executed; charge one unit.
			units++
		}
	}
	return units
}
