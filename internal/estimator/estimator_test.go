package estimator

import (
	"sync"
	"testing"
	"time"

	"tskd/internal/clock"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

func TestAccessSetSize(t *testing.T) {
	tx := txn.MustParse(0, "R[x1]W[x2]R[x3]")
	if got := (AccessSetSize{}).Estimate(tx); got != 3 {
		t.Errorf("Estimate = %v, want 3", got)
	}
}

func TestAccessSetSizeKnobs(t *testing.T) {
	tx := txn.MustParse(0, "R[x1]W[x2]")
	tx.MinRuntime = 10 * time.Millisecond
	tx.IODelay = 5 * time.Millisecond
	e := AccessSetSize{Unit: time.Millisecond}
	// max(2, 10) + 5 = 15 units.
	if got := e.Estimate(tx); got != 15 {
		t.Errorf("Estimate = %v, want 15", got)
	}
	// Zero Unit ignores knobs.
	if got := (AccessSetSize{}).Estimate(tx); got != 2 {
		t.Errorf("Estimate without unit = %v, want 2", got)
	}
	// Op work dominating MinRuntime.
	tx2 := txn.MustParse(1, "R[x1]W[x2]R[x3]W[x4]")
	tx2.MinRuntime = 2 * time.Millisecond
	if got := e.Estimate(tx2); got != 4 {
		t.Errorf("Estimate = %v, want 4 (ops dominate)", got)
	}
}

func TestHistoryExactMatch(t *testing.T) {
	h := NewHistory()
	h.Record("Pay", []uint64{1, 2}, 50)
	tx := &txn.Transaction{ID: 0, Template: "Pay", Params: []uint64{1, 2}}
	if got := h.Estimate(tx); got != 50 {
		t.Errorf("exact match = %v, want 50", got)
	}
}

func TestHistoryExactMatchAveraged(t *testing.T) {
	h := NewHistory()
	h.Record("Pay", []uint64{1}, 100)
	h.Record("Pay", []uint64{1}, 50)
	tx := &txn.Transaction{Template: "Pay", Params: []uint64{1}}
	if got := h.Estimate(tx); got != 75 {
		t.Errorf("averaged = %v, want 75", got)
	}
}

func TestHistoryTemplateFallback(t *testing.T) {
	h := NewHistory()
	h.Record("Pay", []uint64{1}, 40)
	h.Record("Pay", []uint64{2}, 60)
	// Unknown params of a known template: template average.
	tx := &txn.Transaction{Template: "Pay", Params: []uint64{999}}
	got := h.Estimate(tx)
	if got < 40 || got > 60 {
		t.Errorf("template average = %v, want within [40,60]", got)
	}
}

func TestHistoryUnknownTemplateFallback(t *testing.T) {
	h := NewHistory()
	tx := txn.MustParse(0, "R[x1]W[x1]")
	tx.Template = "Never"
	if got := h.Estimate(tx); got != 2 {
		t.Errorf("fallback = %v, want 2 (AccessSetSize)", got)
	}
	h.Fallback = fixed(7)
	if got := h.Estimate(tx); got != 7 {
		t.Errorf("custom fallback = %v, want 7", got)
	}
}

type fixed clock.Units

func (f fixed) Estimate(*txn.Transaction) clock.Units { return clock.Units(f) }

func TestHistoryPreservesRelativeOrder(t *testing.T) {
	// The paper only requires relative costs to be preserved.
	h := NewHistory()
	for i := 0; i < 10; i++ {
		h.Record("Short", []uint64{uint64(i)}, 10)
		h.Record("Long", []uint64{uint64(i)}, 100)
	}
	s := h.Estimate(&txn.Transaction{Template: "Short", Params: []uint64{77}})
	l := h.Estimate(&txn.Transaction{Template: "Long", Params: []uint64{77}})
	if s >= l {
		t.Errorf("relative order lost: short=%v long=%v", s, l)
	}
}

func TestHistoryConcurrent(t *testing.T) {
	h := NewHistory()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Record("T", []uint64{uint64(w), uint64(i)}, clock.Units(i))
				h.Estimate(&txn.Transaction{Template: "T", Params: []uint64{uint64(i)}})
			}
		}(w)
	}
	wg.Wait()
	if h.Len() == 0 {
		t.Error("no records stored")
	}
}

func TestDryRun(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	for i := uint64(0); i < 10; i++ {
		tbl.Insert(i)
	}
	d := NewDryRun(db)
	tx := txn.MustParse(0, "R[x1]W[x2]R[x3]")
	tx.Template = "X"
	if got := d.Estimate(tx); got != 3 {
		t.Errorf("dry-run = %v, want 3", got)
	}
	// Writes were not applied.
	if tbl.Get(2).Field(0) != 0 {
		t.Error("dry-run physically wrote")
	}
}

func TestDryRunSamplingReusesAverage(t *testing.T) {
	db := storage.NewDB()
	db.CreateTable(0, "t", 1)
	d := NewDryRun(db)
	d.SampleSize = 2
	mk := func(id int, n string) *txn.Transaction {
		tx := txn.MustParse(id, n)
		tx.Template = "T"
		return tx
	}
	d.Estimate(mk(0, "R[x1]"))           // sample 1: cost 1
	d.Estimate(mk(1, "R[x1]R[x2]R[x3]")) // sample 2: cost 3 -> avg 2
	// Past the sample size: template average regardless of shape.
	if got := d.Estimate(mk(2, "R[x1]R[x2]R[x3]R[x4]R[x5]R[x6]R[x7]R[x8]")); got != 2 {
		t.Errorf("sampled estimate = %v, want template average 2", got)
	}
}

func TestDryRunKnobs(t *testing.T) {
	db := storage.NewDB()
	db.CreateTable(0, "t", 1)
	d := NewDryRun(db)
	d.Unit = time.Millisecond
	tx := txn.MustParse(0, "R[x1]")
	tx.Template = "K"
	tx.MinRuntime = 9 * time.Millisecond
	tx.IODelay = time.Millisecond
	if got := d.Estimate(tx); got != 10 {
		t.Errorf("knobbed dry-run = %v, want 10", got)
	}
}

func TestDryRunMissingRows(t *testing.T) {
	db := storage.NewDB() // no tables at all
	d := NewDryRun(db)
	tx := txn.MustParse(0, "R[x1]W[x2]")
	tx.Template = "M"
	if got := d.Estimate(tx); got != 2 {
		t.Errorf("dry-run over missing rows = %v, want 2", got)
	}
}
