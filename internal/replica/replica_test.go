package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tskd/internal/wal"
)

// replica_test.go: end-to-end pair tests over loopback TCP — a real
// wal.Log shipping into a real Server, then the shipped directory
// recovered with the ordinary wal.ReplayDir path and compared against
// the primary's.

func testShipper(t *testing.T, addr string, epoch uint64, sync bool) *Shipper {
	t.Helper()
	s, err := NewShipper(ShipperConfig{
		Addr:       addr,
		Epoch:      epoch,
		Sync:       sync,
		AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testServer(t *testing.T, dir string) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func replayAll(t *testing.T, dir string) (recs []wal.Record, next uint64) {
	t.Helper()
	next, _, err := wal.ReplayDir(dir, func(_ uint64, rec wal.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay %s: %v", dir, err)
	}
	return recs, next
}

func rec(id int64, key, ver uint64) wal.Record {
	return wal.Record{TxnID: id, Writes: []wal.Update{{Key: key, Ver: ver, Fields: []uint64{ver}}}}
}

// TestShipAndRecover runs the whole life of a pair in sync mode: a
// primary log with pre-existing history (catch-up snapshot), live
// appends with rotation, then promotion — the shipped directory must
// replay identically to the primary's.
func TestShipAndRecover(t *testing.T) {
	primary := t.TempDir()
	backup := t.TempDir()

	// Pre-replication history, including a sidecar-style file that
	// catch-up must carry over byte-for-byte.
	l0, err := wal.OpenDir(primary, wal.DirOptions{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l0.Append(rec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l0.Close(); err != nil {
		t.Fatal(err)
	}
	sidecar := []byte("checkpoint image bytes")
	if err := os.WriteFile(filepath.Join(primary, "ckpt-000000000000000a.ckpt"), sidecar, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := testServer(t, backup)
	ship := testShipper(t, srv.Addr(), 0, true)
	defer ship.Close()

	// Catch-up, then reopen the log for appending with the stream
	// attached — the startup order the server wiring uses.
	next, _, err := wal.ReplayDir(primary, func(uint64, wal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ship.Stream(".", primary)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenDir(primary, wal.DirOptions{SegmentBytes: 256, NoSync: true, StartLSN: next, Shipper: stream})
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 40; i++ {
		if err := l.Append(rec(int64(i), uint64(i), 1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ship.Stats(); st.State != "sync" || st.LagBytes != 0 {
		t.Fatalf("after sync shipping: %+v", st)
	}
	ship.Close()

	// Promote and compare: shipped directory == primary directory as
	// far as replay is concerned, sidecar included.
	epoch, err := Promote(backup)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted epoch %d, want 1", epoch)
	}
	prec, pnext := replayAll(t, primary)
	brec, bnext := replayAll(t, backup)
	if pnext != bnext || !reflect.DeepEqual(prec, brec) {
		t.Fatalf("shipped replay diverges: primary (%d recs, next %d) vs backup (%d recs, next %d)",
			len(prec), pnext, len(brec), bnext)
	}
	got, err := os.ReadFile(filepath.Join(backup, "ckpt-000000000000000a.ckpt"))
	if err != nil || string(got) != string(sidecar) {
		t.Fatalf("sidecar snapshot: %q, %v", got, err)
	}
}

// TestSplitBrainFenced is the deposed-primary case: after promotion
// bumps the backup's epoch, a shipper holding the old epoch must be
// refused at the handshake, and one already connected must have its
// appends fenced — in both cases the stale primary cannot ack.
func TestSplitBrainFenced(t *testing.T) {
	backup := t.TempDir()
	srv := testServer(t, backup)

	// Old primary connects at epoch 0 and ships healthily.
	old := testShipper(t, srv.Addr(), 0, true)
	defer old.Close()
	stream, err := old.Stream(".", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Ship(0, 1, []byte("x")); err != nil {
		t.Fatalf("healthy ship: %v", err)
	}

	// Failover: epoch bumps (the promoted incarnation would ship at 1;
	// here the bump alone is the fence).
	if err := WriteEpoch(backup, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Promote(backup); err != nil { // now 2
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.epoch = 2 // the running receiver picks up the persisted bump
	srv.mu.Unlock()

	// The connected stale shipper's next append must be fenced and the
	// error must reach the flush (so the deposed primary cannot ack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := stream.Ship(1, 1, []byte("y"))
		if errors.Is(err, ErrFenced) {
			break
		}
		if err != nil {
			t.Fatalf("ship: %v, want ErrFenced", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("stale shipper never fenced")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !old.Stats().Fenced {
		t.Fatal("shipper stats do not report fenced")
	}

	// A deposed primary reconnecting is refused at the handshake.
	if _, err := NewShipper(ShipperConfig{Addr: srv.Addr(), Epoch: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale handshake: %v, want ErrFenced", err)
	}
	// The promoted epoch is accepted.
	fresh, err := NewShipper(ShipperConfig{Addr: srv.Addr(), Epoch: 2})
	if err != nil {
		t.Fatalf("promoted-epoch handshake: %v", err)
	}
	fresh.Close()
}

// TestEpochPersistence: the adopted epoch must survive a backup
// restart, so fencing holds even if the backup crashes between the
// promotion and the stale primary's return.
func TestEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	srv := testServer(t, dir)
	ship := testShipper(t, srv.Addr(), 5, false)
	ship.Close()
	srv.Close()

	e, err := ReadEpoch(dir)
	if err != nil || e != 5 {
		t.Fatalf("persisted epoch %d, %v; want 5", e, err)
	}
	srv2 := testServer(t, dir)
	if _, err := NewShipper(ShipperConfig{Addr: srv2.Addr(), Epoch: 4}); !errors.Is(err, ErrFenced) {
		t.Fatalf("restarted backup accepted stale epoch: %v", err)
	}
	if e, _ := ReadEpoch(dir); e != 5 {
		t.Fatalf("epoch moved to %d", e)
	}
}

// TestWriteEpochMonotonic: the epoch file never moves backwards.
func TestWriteEpochMonotonic(t *testing.T) {
	dir := t.TempDir()
	if err := WriteEpoch(dir, 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteEpoch(dir, 2); err == nil {
		t.Fatal("backwards epoch write accepted")
	}
	if e, _ := ReadEpoch(dir); e != 3 {
		t.Fatalf("epoch %d after refused write, want 3", e)
	}
}

// TestAsyncModeDoesNotBlock: with Sync off, Ship returns without an
// ack round-trip; the backlog drains and the backup still converges.
func TestAsyncModeDoesNotBlock(t *testing.T) {
	primary := t.TempDir()
	backup := t.TempDir()
	srv := testServer(t, backup)
	ship := testShipper(t, srv.Addr(), 0, false)
	defer ship.Close()

	stream, err := ship.Stream(".", primary)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenDir(primary, wal.DirOptions{NoSync: true, Shipper: stream})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := l.Append(rec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Convergence: acks are async, so wait for the lag to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		brec, _ := replayAll(t, backup)
		if len(brec) == 25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backup converged to %d records, want 25", len(brec))
		}
		time.Sleep(10 * time.Millisecond)
	}
	prec, _ := replayAll(t, primary)
	brec, _ := replayAll(t, backup)
	if !reflect.DeepEqual(prec, brec) {
		t.Fatal("async shipped replay diverges")
	}
}

// TestBackupDownDegrades: with no backup reachable the shipper cannot
// even be built; with the backup dying mid-life, sync flushes must
// degrade (release locally) rather than wedge, and the monitor must
// leave StateSync.
func TestBackupDownDegrades(t *testing.T) {
	backup := t.TempDir()
	srv := testServer(t, backup)
	ship, err := NewShipper(ShipperConfig{
		Addr: srv.Addr(), Epoch: 0, Sync: true,
		AckTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()
	stream, err := ship.Stream(".", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Ship(0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	srv.Close() // backup dies

	// Every subsequent flush must complete (nil), never wedge, and the
	// monitor must degrade.
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 5 && err == nil; i++ {
			err = stream.Ship(uint64(1+i), 1, []byte("b"))
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ship after backup death: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ship wedged after backup death")
	}
	if st := ship.Monitor().State(); st == StateSync {
		t.Fatalf("monitor still %v after backup death", st)
	}
}

// TestWireOrderMatchesSeq: acks are cumulative, so the backup must see
// seqs in allocation order even when many streams and a fast heartbeat
// ship concurrently — an out-of-order frame would let a lower seq's
// ack release a not-yet-written sync flush, losing an acked group on
// failover. A fake backup asserts strict seq sequencing on the wire.
func TestWireOrderMatchesSeq(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	violation := make(chan string, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReaderSize(conn, 1<<20)
		hello, err := ReadFrame(br)
		if err != nil || hello.Type != FrameHello {
			return
		}
		conn.Write(AppendFrame(nil, Frame{Type: FrameHelloAck, Epoch: hello.Epoch}))
		var last uint64
		for {
			f, err := ReadFrame(br)
			if err != nil {
				return
			}
			if f.Type != FrameAppend && f.Type != FrameHeartbeat {
				continue
			}
			if f.Seq != last+1 {
				select {
				case violation <- fmt.Sprintf("seq %d on the wire after %d", f.Seq, last):
				default:
				}
			}
			last = f.Seq
			conn.Write(AppendFrame(nil, Frame{Type: FrameAck, Seq: f.Seq}))
		}
	}()

	ship, err := NewShipper(ShipperConfig{
		Addr: ln.Addr().String(), Epoch: 0, Sync: true,
		AckTimeout:     2 * time.Second,
		HeartbeatEvery: time.Millisecond, // contend hard with the appends
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	const workers, ships = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		stream, err := ship.Stream(fmt.Sprintf("shard-%02d", w), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(st *Stream) {
			defer wg.Done()
			for i := 0; i < ships; i++ {
				if err := st.Ship(uint64(i), 1, []byte("payload")); err != nil {
					t.Errorf("ship: %v", err)
					return
				}
			}
		}(stream)
	}
	wg.Wait()
	select {
	case v := <-violation:
		t.Fatal(v)
	default:
	}
	if st := ship.Stats(); st.ShippedGroups != workers*ships {
		t.Fatalf("shipped %d groups, want %d", st.ShippedGroups, workers*ships)
	}
}

// TestSecondPrimaryDeposesFirst: epochs cannot order two primaries at
// the SAME epoch (a restarted primary racing its deposed predecessor's
// still-draining connection), so the newest handshake must depose the
// older connection — the deposed one's appends may no longer reach the
// shipped directory, which holds exactly the newcomer's timeline.
func TestSecondPrimaryDeposesFirst(t *testing.T) {
	backup := t.TempDir()
	srv := testServer(t, backup)

	a := testShipper(t, srv.Addr(), 0, true)
	defer a.Close()
	sa, err := a.Stream("shard-00", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Ship(0, 1, []byte("old")); err != nil {
		t.Fatal(err)
	}

	b := testShipper(t, srv.Addr(), 0, true) // same epoch: deposes a
	defer b.Close()
	sb, err := b.Stream("shard-00", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Ship(0, 1, []byte("new")); err != nil {
		t.Fatal(err)
	}

	// The deposed shipper's flushes must degrade locally (nil, never
	// wedge) and must not land on the backup.
	for i := 0; i < 5; i++ {
		if err := sa.Ship(uint64(1+i), 1, []byte("stale")); err != nil {
			t.Fatalf("deposed ship: %v", err)
		}
	}
	seg := filepath.Join(backup, "shard-00", "wal-0000000000000000.seg")
	got, err := os.ReadFile(seg)
	if err != nil || string(got) != "new" {
		t.Fatalf("segment after depose: %q, %v; want %q", got, err, "new")
	}
}

// TestStreamRejectsOversizedCatchup: a catch-up file too large for one
// frame must fail registration with a descriptive error rather than
// ship a frame the backup rejects as corruption on every attempt.
func TestStreamRejectsOversizedCatchup(t *testing.T) {
	backup := t.TempDir()
	srv := testServer(t, backup)
	ship := testShipper(t, srv.Addr(), 0, false)
	defer ship.Close()

	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "ckpt-0000000000000000.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(MaxFrameBytes + 1); err != nil { // sparse: no real I/O
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ship.Stream(".", dir); err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("oversized catch-up: %v, want frame-limit error", err)
	}
}

// TestStreamRejectsLongName: stream names ride a u8 wire length;
// registration must refuse anything longer than 255 bytes up front.
func TestStreamRejectsLongName(t *testing.T) {
	backup := t.TempDir()
	srv := testServer(t, backup)
	ship := testShipper(t, srv.Addr(), 0, false)
	defer ship.Close()
	if _, err := ship.Stream(strings.Repeat("s", 256), t.TempDir()); err == nil {
		t.Fatal("256-byte stream name accepted")
	}
}

// TestChecksummedShipping runs a sync pair with per-frame CRC32C
// negotiated: catch-up, live appends, and acks all flow through the
// checked framing, and the shipped directory still replays identically.
func TestChecksummedShipping(t *testing.T) {
	primary := t.TempDir()
	backup := t.TempDir()
	srv := testServer(t, backup)
	ship, err := NewShipper(ShipperConfig{
		Addr:       srv.Addr(),
		Epoch:      0,
		Sync:       true,
		AckTimeout: 2 * time.Second,
		Checksums:  true,
	})
	if err != nil {
		t.Fatalf("checksummed handshake: %v", err)
	}
	defer ship.Close()
	if st := ship.Stats(); !st.Checksums {
		t.Fatalf("checksums not negotiated: %+v", st)
	}

	stream, err := ship.Stream(".", primary)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenDir(primary, wal.DirOptions{SegmentBytes: 256, NoSync: true, Shipper: stream})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := l.Append(rec(int64(i), uint64(i), 1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ship.Stats(); st.State != "sync" || st.LagBytes != 0 {
		t.Fatalf("after checksummed sync shipping: %+v", st)
	}
	ship.Close()

	prec, pnext := replayAll(t, primary)
	brec, bnext := replayAll(t, backup)
	if pnext != bnext || !reflect.DeepEqual(prec, brec) {
		t.Fatalf("checksummed replay diverges: primary (%d recs, next %d) vs backup (%d recs, next %d)",
			len(prec), pnext, len(brec), bnext)
	}
}
