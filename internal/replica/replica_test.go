package replica

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tskd/internal/wal"
)

// replica_test.go: end-to-end pair tests over loopback TCP — a real
// wal.Log shipping into a real Server, then the shipped directory
// recovered with the ordinary wal.ReplayDir path and compared against
// the primary's.

func testShipper(t *testing.T, addr string, epoch uint64, sync bool) *Shipper {
	t.Helper()
	s, err := NewShipper(ShipperConfig{
		Addr:       addr,
		Epoch:      epoch,
		Sync:       sync,
		AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testServer(t *testing.T, dir string) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func replayAll(t *testing.T, dir string) (recs []wal.Record, next uint64) {
	t.Helper()
	next, _, err := wal.ReplayDir(dir, func(_ uint64, rec wal.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay %s: %v", dir, err)
	}
	return recs, next
}

func rec(id int64, key, ver uint64) wal.Record {
	return wal.Record{TxnID: id, Writes: []wal.Update{{Key: key, Ver: ver, Fields: []uint64{ver}}}}
}

// TestShipAndRecover runs the whole life of a pair in sync mode: a
// primary log with pre-existing history (catch-up snapshot), live
// appends with rotation, then promotion — the shipped directory must
// replay identically to the primary's.
func TestShipAndRecover(t *testing.T) {
	primary := t.TempDir()
	backup := t.TempDir()

	// Pre-replication history, including a sidecar-style file that
	// catch-up must carry over byte-for-byte.
	l0, err := wal.OpenDir(primary, wal.DirOptions{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l0.Append(rec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l0.Close(); err != nil {
		t.Fatal(err)
	}
	sidecar := []byte("checkpoint image bytes")
	if err := os.WriteFile(filepath.Join(primary, "ckpt-000000000000000a.ckpt"), sidecar, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := testServer(t, backup)
	ship := testShipper(t, srv.Addr(), 0, true)
	defer ship.Close()

	// Catch-up, then reopen the log for appending with the stream
	// attached — the startup order the server wiring uses.
	next, _, err := wal.ReplayDir(primary, func(uint64, wal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ship.Stream(".", primary)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenDir(primary, wal.DirOptions{SegmentBytes: 256, NoSync: true, StartLSN: next, Shipper: stream})
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 40; i++ {
		if err := l.Append(rec(int64(i), uint64(i), 1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ship.Stats(); st.State != "sync" || st.LagBytes != 0 {
		t.Fatalf("after sync shipping: %+v", st)
	}
	ship.Close()

	// Promote and compare: shipped directory == primary directory as
	// far as replay is concerned, sidecar included.
	epoch, err := Promote(backup)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted epoch %d, want 1", epoch)
	}
	prec, pnext := replayAll(t, primary)
	brec, bnext := replayAll(t, backup)
	if pnext != bnext || !reflect.DeepEqual(prec, brec) {
		t.Fatalf("shipped replay diverges: primary (%d recs, next %d) vs backup (%d recs, next %d)",
			len(prec), pnext, len(brec), bnext)
	}
	got, err := os.ReadFile(filepath.Join(backup, "ckpt-000000000000000a.ckpt"))
	if err != nil || string(got) != string(sidecar) {
		t.Fatalf("sidecar snapshot: %q, %v", got, err)
	}
}

// TestSplitBrainFenced is the deposed-primary case: after promotion
// bumps the backup's epoch, a shipper holding the old epoch must be
// refused at the handshake, and one already connected must have its
// appends fenced — in both cases the stale primary cannot ack.
func TestSplitBrainFenced(t *testing.T) {
	backup := t.TempDir()
	srv := testServer(t, backup)

	// Old primary connects at epoch 0 and ships healthily.
	old := testShipper(t, srv.Addr(), 0, true)
	defer old.Close()
	stream, err := old.Stream(".", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Ship(0, 1, []byte("x")); err != nil {
		t.Fatalf("healthy ship: %v", err)
	}

	// Failover: epoch bumps (the promoted incarnation would ship at 1;
	// here the bump alone is the fence).
	if err := WriteEpoch(backup, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Promote(backup); err != nil { // now 2
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.epoch = 2 // the running receiver picks up the persisted bump
	srv.mu.Unlock()

	// The connected stale shipper's next append must be fenced and the
	// error must reach the flush (so the deposed primary cannot ack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := stream.Ship(1, 1, []byte("y"))
		if errors.Is(err, ErrFenced) {
			break
		}
		if err != nil {
			t.Fatalf("ship: %v, want ErrFenced", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("stale shipper never fenced")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !old.Stats().Fenced {
		t.Fatal("shipper stats do not report fenced")
	}

	// A deposed primary reconnecting is refused at the handshake.
	if _, err := NewShipper(ShipperConfig{Addr: srv.Addr(), Epoch: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale handshake: %v, want ErrFenced", err)
	}
	// The promoted epoch is accepted.
	fresh, err := NewShipper(ShipperConfig{Addr: srv.Addr(), Epoch: 2})
	if err != nil {
		t.Fatalf("promoted-epoch handshake: %v", err)
	}
	fresh.Close()
}

// TestEpochPersistence: the adopted epoch must survive a backup
// restart, so fencing holds even if the backup crashes between the
// promotion and the stale primary's return.
func TestEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	srv := testServer(t, dir)
	ship := testShipper(t, srv.Addr(), 5, false)
	ship.Close()
	srv.Close()

	e, err := ReadEpoch(dir)
	if err != nil || e != 5 {
		t.Fatalf("persisted epoch %d, %v; want 5", e, err)
	}
	srv2 := testServer(t, dir)
	if _, err := NewShipper(ShipperConfig{Addr: srv2.Addr(), Epoch: 4}); !errors.Is(err, ErrFenced) {
		t.Fatalf("restarted backup accepted stale epoch: %v", err)
	}
	if e, _ := ReadEpoch(dir); e != 5 {
		t.Fatalf("epoch moved to %d", e)
	}
}

// TestWriteEpochMonotonic: the epoch file never moves backwards.
func TestWriteEpochMonotonic(t *testing.T) {
	dir := t.TempDir()
	if err := WriteEpoch(dir, 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteEpoch(dir, 2); err == nil {
		t.Fatal("backwards epoch write accepted")
	}
	if e, _ := ReadEpoch(dir); e != 3 {
		t.Fatalf("epoch %d after refused write, want 3", e)
	}
}

// TestAsyncModeDoesNotBlock: with Sync off, Ship returns without an
// ack round-trip; the backlog drains and the backup still converges.
func TestAsyncModeDoesNotBlock(t *testing.T) {
	primary := t.TempDir()
	backup := t.TempDir()
	srv := testServer(t, backup)
	ship := testShipper(t, srv.Addr(), 0, false)
	defer ship.Close()

	stream, err := ship.Stream(".", primary)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.OpenDir(primary, wal.DirOptions{NoSync: true, Shipper: stream})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := l.Append(rec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Convergence: acks are async, so wait for the lag to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		brec, _ := replayAll(t, backup)
		if len(brec) == 25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backup converged to %d records, want 25", len(brec))
		}
		time.Sleep(10 * time.Millisecond)
	}
	prec, _ := replayAll(t, primary)
	brec, _ := replayAll(t, backup)
	if !reflect.DeepEqual(prec, brec) {
		t.Fatal("async shipped replay diverges")
	}
}

// TestBackupDownDegrades: with no backup reachable the shipper cannot
// even be built; with the backup dying mid-life, sync flushes must
// degrade (release locally) rather than wedge, and the monitor must
// leave StateSync.
func TestBackupDownDegrades(t *testing.T) {
	backup := t.TempDir()
	srv := testServer(t, backup)
	ship, err := NewShipper(ShipperConfig{
		Addr: srv.Addr(), Epoch: 0, Sync: true,
		AckTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()
	stream, err := ship.Stream(".", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Ship(0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	srv.Close() // backup dies

	// Every subsequent flush must complete (nil), never wedge, and the
	// monitor must degrade.
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 5 && err == nil; i++ {
			err = stream.Ship(uint64(1+i), 1, []byte("b"))
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ship after backup death: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ship wedged after backup death")
	}
	if st := ship.Monitor().State(); st == StateSync {
		t.Fatalf("monitor still %v after backup death", st)
	}
}
