package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// server.go: the backup side. A Server listens for one primary's
// shipping connection and materializes the shipped streams under its
// own data directory, mirroring the primary's layout (stream name =
// relative directory). Catch-up file snapshots are written atomically;
// append frames go into segment files named by their first LSN — the
// same naming contract the wal package uses, so the shipped directory
// is a valid data directory at every instant and promotion is just
// Promote(dir) followed by the ordinary server startup over it.
//
// Every append is fsynced before its ack leaves, because the ack is
// what releases the primary's sync-mode client acks: an acked byte is
// durable on both nodes. The backup never truncates anything — it
// accumulates segments and snapshot generations until it is promoted
// (after which the normal checkpoint cycle resumes) or re-seeded.
//
// Fencing: the handshake and every append carry the shipper's epoch.
// Anything below the persisted epoch gets FrameFence and the
// connection closed; anything at or above it is adopted and persisted
// before the hello is acknowledged, so the fence survives a backup
// restart. Epochs alone cannot order two primaries at the SAME epoch
// (a restarted primary racing its deposed predecessor's still-draining
// connection), so the backup additionally admits only one shipping
// connection at a time: a completed handshake deposes any previous
// connection, and a deposed connection can no longer mutate the
// shipped directory — its appends would otherwise O_TRUNC and
// interleave with the newcomer's into the same segment files.

// ServerConfig configures a backup receiver.
type ServerConfig struct {
	// Dir is the backup data directory (created if missing).
	Dir string
	// NoSync skips fsyncs (tests only — an acked byte must normally be
	// durable here, that is the whole point of the ack).
	NoSync bool
}

// ServerStats snapshots a receiver for /metrics.
type ServerStats struct {
	Epoch         uint64 `json:"epoch"`
	Conns         int    `json:"conns"`
	AppendedBytes uint64 `json:"appended_bytes"`
	Appends       uint64 `json:"appends"`
	Snapshots     uint64 `json:"snapshots"`
	LastSeq       uint64 `json:"last_seq"`
	FencedConns   uint64 `json:"fenced_conns"`
}

// Server is the backup receiver.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu     sync.Mutex
	epoch  uint64
	conns  map[net.Conn]struct{}
	active net.Conn // the one connection allowed to mutate the directory
	closed bool
	stats  ServerStats

	// applyMu serializes directory mutations across connection
	// turnover: a deposed connection's in-flight apply completes before
	// its successor's first one, and nothing applies after deposition.
	applyMu sync.Mutex

	wg sync.WaitGroup
}

// NewServer loads the directory's persisted epoch and prepares a
// receiver (no listener yet; Start binds one).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: ServerConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	epoch, err := ReadEpoch(cfg.Dir)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, epoch: epoch, conns: make(map[net.Conn]struct{})}, nil
}

// Start binds addr and serves shipping connections until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.stats.Conns++
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				if s.active == conn {
					s.active = nil
				}
				s.stats.Conns--
				s.mu.Unlock()
			}()
		}
	}()
	return nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Epoch returns the persisted epoch.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Stats snapshots the receiver.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Epoch = s.epoch
	return st
}

// Close stops the listener and tears down every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// appendState tracks one stream's active append chain on a
// connection.
type appendState struct {
	f    *os.File
	next uint64 // LSN the next contiguous append must start at
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 256<<10)
	streams := make(map[string]*appendState)
	defer func() {
		for _, st := range streams {
			if st.f != nil {
				st.f.Close()
			}
		}
	}()

	// checked flips on when the handshake negotiates FlagChecksums;
	// from then on both directions carry per-frame CRC32C.
	checked := false
	reply := func(f Frame) bool {
		var buf []byte
		if checked {
			buf = AppendCheckedFrame(nil, f)
		} else {
			buf = AppendFrame(nil, f)
		}
		_, err := conn.Write(buf)
		return err == nil
	}
	read := func() (Frame, error) {
		if checked {
			return ReadCheckedFrame(br)
		}
		return ReadFrame(br)
	}
	fence := func() {
		s.mu.Lock()
		s.stats.FencedConns++
		epoch := s.epoch
		s.mu.Unlock()
		reply(Frame{Type: FrameFence, Epoch: epoch})
	}

	// Handshake.
	hello, err := ReadFrame(br)
	if err != nil || hello.Type != FrameHello {
		return
	}
	s.mu.Lock()
	stale := hello.Epoch < s.epoch
	s.mu.Unlock()
	if stale {
		fence()
		return
	}
	// Adopt and persist a newer epoch before acking the hello, so the
	// fence against the old primary survives a backup restart.
	if err := s.adoptEpoch(hello.Epoch); err != nil {
		return
	}
	// Single writer: the newest handshake deposes any previous shipping
	// connection — epochs cannot order two primaries at the same epoch,
	// so connection turnover must (see the fencing comment above).
	s.mu.Lock()
	prev := s.active
	s.active = conn
	s.mu.Unlock()
	if prev != nil {
		prev.Close()
	}
	// Echo the checksum flag if the shipper requested it: the ack
	// itself is still plain (the shipper reads it before enabling
	// checked framing); everything after is checksummed both ways.
	var ackFlags uint32
	if hello.Flags&FlagChecksums != 0 {
		ackFlags |= FlagChecksums
	}
	if !reply(Frame{Type: FrameHelloAck, Epoch: hello.Epoch, Flags: ackFlags}) {
		return
	}
	checked = ackFlags&FlagChecksums != 0

	for {
		f, err := read()
		if err != nil {
			return
		}
		switch f.Type {
		case FrameFile:
			if !validStream(f.Stream) || !validName(f.Name) {
				return
			}
			if err := s.applyActive(conn, func() error {
				return s.writeSnapshot(f.Stream, f.Name, f.Data)
			}); err != nil {
				return
			}
			s.mu.Lock()
			s.stats.Snapshots++
			s.mu.Unlock()
		case FrameAppend:
			if !validStream(f.Stream) {
				return
			}
			if s.staleEpoch(f.Epoch) {
				fence()
				return
			}
			if err := s.applyActive(conn, func() error {
				return s.applyAppend(streams, f)
			}); err != nil {
				return
			}
			s.mu.Lock()
			s.stats.Appends++
			s.stats.AppendedBytes += uint64(len(f.Data))
			if f.Seq > s.stats.LastSeq {
				s.stats.LastSeq = f.Seq
			}
			s.mu.Unlock()
			if !reply(Frame{Type: FrameAck, Seq: f.Seq}) {
				return
			}
		case FrameHeartbeat:
			if s.staleEpoch(f.Epoch) {
				fence()
				return
			}
			s.mu.Lock()
			deposed := s.active != conn
			if !deposed && f.Seq > s.stats.LastSeq {
				s.stats.LastSeq = f.Seq
			}
			s.mu.Unlock()
			if deposed {
				// A deposed primary must not keep reading healthy
				// heartbeat acks off a dying connection.
				return
			}
			if !reply(Frame{Type: FrameAck, Seq: f.Seq}) {
				return
			}
		default:
			return
		}
	}
}

var errDeposed = errors.New("replica: connection deposed by a newer handshake")

// applyActive runs fn only while conn is still the active shipping
// connection, holding applyMu so mutations from a deposed connection
// and its successor never interleave (see the Server.applyMu comment).
func (s *Server) applyActive(conn net.Conn, fn func() error) error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	active := s.active == conn
	s.mu.Unlock()
	if !active {
		return errDeposed
	}
	return fn()
}

func (s *Server) staleEpoch(e uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return e < s.epoch
}

func (s *Server) adoptEpoch(e uint64) error {
	s.mu.Lock()
	cur := s.epoch
	s.mu.Unlock()
	if e <= cur {
		return nil
	}
	if err := WriteEpoch(s.cfg.Dir, e); err != nil {
		return err
	}
	s.mu.Lock()
	if e > s.epoch {
		s.epoch = e
	}
	s.mu.Unlock()
	return nil
}

// streamDir maps a stream name to its directory ("." is the root).
func (s *Server) streamDir(stream string) string {
	if stream == "." {
		return s.cfg.Dir
	}
	return filepath.Join(s.cfg.Dir, stream)
}

// writeSnapshot replaces <stream>/<name> atomically with data.
func (s *Server) writeSnapshot(stream, name string, data []byte) error {
	dir := s.streamDir(stream)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	tmp := path + ".rtmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if !s.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if s.cfg.NoSync {
		return nil
	}
	return syncPath(dir)
}

// applyAppend writes one shipped group into the stream's active
// segment and fsyncs it. A non-contiguous first LSN (a fresh
// connection, or the primary reopened its log) starts a new chain: the
// segment named at that LSN is created or truncated, mirroring
// wal.OpenDir's contract that a file named at the reopen LSN holds
// zero replayable records.
func (s *Server) applyAppend(streams map[string]*appendState, f Frame) error {
	st := streams[f.Stream]
	if st == nil {
		st = &appendState{}
		streams[f.Stream] = st
	}
	if st.f == nil || f.FirstLSN != st.next {
		if st.f != nil {
			st.f.Close()
			st.f = nil
		}
		dir := s.streamDir(f.Stream)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		nf, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", f.FirstLSN)),
			os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if !s.cfg.NoSync {
			if err := syncPath(dir); err != nil {
				nf.Close()
				return err
			}
		}
		st.f = nf
		st.next = f.FirstLSN
	}
	if _, err := st.f.Write(f.Data); err != nil {
		return err
	}
	if !s.cfg.NoSync {
		if err := st.f.Sync(); err != nil {
			return err
		}
	}
	st.next += uint64(f.Records)
	return nil
}

// validStream accepts "." or a single path component.
func validStream(s string) bool { return s == "." || validName(s) }

// validName accepts a single, non-traversing path component.
func validName(s string) bool {
	return s != "" && s != "." && s != ".." &&
		!strings.ContainsAny(s, "/\\") && !strings.Contains(s, "\x00")
}
