// Package replica implements per-shard primary/backup WAL shipping
// with fenced failover — the layer that makes an acknowledged commit
// survive the loss of the primary's disk, not just its process.
//
// The primary attaches a Shipper to every WAL directory it appends to
// (each shard's log and the never-truncated 2PC coordinator log); the
// wal package hands the shipper every group flush after the local
// fsync, and in sync mode the flush — and therefore every client ack
// riding on it — completes only once the backup acknowledged its own
// fsync of the same bytes. The backup (Server) mirrors the primary's
// directory layout and never truncates, so promotion is nothing more
// than bumping the fencing epoch and running the ordinary recovery
// path over the shipped directory.
//
// Failover is fenced by a monotonic epoch persisted in an EPOCH file
// under each data directory. The epoch rides the handshake and every
// append frame; a backup refuses anything below its persisted epoch.
// Promote bumps the backup's epoch, so a deposed primary that comes
// back keeps its stale epoch and is refused — it can flush locally but
// in sync mode can no longer acknowledge clients (split-brain safety).
//
// Failure detection is availability-first (semi-synchronous): a
// Monitor state machine on an injectable clock degrades sync shipping
// to async when the backup goes quiet, and stops shipping entirely
// (failed-over) when the silence or the unacked lag exceeds its
// bounds. The states surface in /metrics; an operator (or the chaos
// harness) decides whether to promote.
package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types. The wire form of every frame is
//
//	u32 payloadLen | payload
//
// little endian, payload starting with the one-byte type. Field
// layouts per type are documented on the constants; trailing bytes
// are the Data field where one is named, and are rejected otherwise.
const (
	// FrameHello opens a shipping connection: u64 epoch. The receiver
	// answers FrameHelloAck or FrameFence.
	FrameHello = byte(iota + 1)
	// FrameHelloAck accepts a hello: u64 epoch (the backup's adopted
	// epoch, >= the hello's).
	FrameHelloAck
	// FrameFence refuses a stale peer: u64 epoch (the backup's
	// persisted epoch, which the refused peer's epoch is below).
	FrameFence
	// FrameFile is a whole-file catch-up snapshot: u8 streamLen |
	// stream | u8 nameLen | name | data. The receiver replaces
	// <dir>/<stream>/<name> atomically.
	FrameFile
	// FrameAppend is one flushed WAL group: u8 streamLen | stream |
	// u64 epoch | u64 seq | u64 firstLSN | u32 records | data. The
	// receiver appends the bytes to the stream's active segment,
	// fsyncs, and answers FrameAck{seq}.
	FrameAppend
	// FrameAck acknowledges the append or heartbeat carrying seq:
	// u64 seq. Acks are cumulative — frames are processed in order, so
	// an ack for seq covers everything below it.
	FrameAck
	// FrameHeartbeat is a liveness probe: u64 seq | u64 epoch. The
	// receiver answers FrameAck{seq}; the round-trip feeds the
	// primary's failure detector.
	FrameHeartbeat
)

// MaxFrameBytes bounds a frame payload; larger lengths are treated as
// stream corruption. Generous: the largest legitimate frame is a
// checkpoint file snapshot.
const MaxFrameBytes = 256 << 20

// Handshake feature flags, carried as an optional trailing u32 on
// FrameHello and FrameHelloAck. A zero Flags field encodes to the
// legacy 8-byte payload, so peers that never set a flag are
// byte-identical to the pre-flags protocol.
const (
	// FlagChecksums negotiates per-frame CRC32C protection: the shipper
	// requests it in Hello, the backup echoes it in HelloAck, and from
	// then on every frame in both directions carries a trailing CRC32C
	// (Castagnoli) of its payload inside the length prefix. For
	// non-loopback deployments where TCP's checksum is too weak.
	FlagChecksums = uint32(1 << 0)
)

// castagnoli is the CRC32C table shared by every checksummed frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is the decoded form of any replication frame; which fields
// are meaningful depends on Type.
type Frame struct {
	Type     byte
	Epoch    uint64
	Seq      uint64
	FirstLSN uint64
	Records  uint32
	Stream   string
	Name     string
	Data     []byte
	// Flags carries handshake feature bits (FrameHello/FrameHelloAck
	// only); zero encodes to the legacy payload with no flags word.
	Flags uint32
}

var errShortFrame = errors.New("replica: short frame")

// AppendFrame appends f's full wire encoding (length prefix included)
// to buf and returns the extended slice. Stream and Name ride a u8
// length on the wire; AppendFrame panics if either exceeds 255 bytes
// rather than silently truncating into a corrupt frame (Shipper.Stream
// validates at registration, so reaching the panic is a caller bug).
func AppendFrame(buf []byte, f Frame) []byte {
	if len(f.Stream) > 255 || len(f.Name) > 255 {
		panic(fmt.Sprintf("replica: frame stream %q / name %q exceeds 255 bytes", f.Stream, f.Name))
	}
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // backfilled below
	buf = append(buf, f.Type)
	switch f.Type {
	case FrameHello, FrameHelloAck, FrameFence:
		buf = binary.LittleEndian.AppendUint64(buf, f.Epoch)
		if f.Flags != 0 {
			buf = binary.LittleEndian.AppendUint32(buf, f.Flags)
		}
	case FrameFile:
		buf = append(buf, byte(len(f.Stream)))
		buf = append(buf, f.Stream...)
		buf = append(buf, byte(len(f.Name)))
		buf = append(buf, f.Name...)
		buf = append(buf, f.Data...)
	case FrameAppend:
		buf = append(buf, byte(len(f.Stream)))
		buf = append(buf, f.Stream...)
		buf = binary.LittleEndian.AppendUint64(buf, f.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, f.FirstLSN)
		buf = binary.LittleEndian.AppendUint32(buf, f.Records)
		buf = append(buf, f.Data...)
	case FrameAck:
		buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
	case FrameHeartbeat:
		buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, f.Epoch)
	}
	binary.LittleEndian.PutUint32(buf[lenAt:lenAt+4], uint32(len(buf)-lenAt-4))
	return buf
}

// DecodeFrame parses one frame payload (the bytes after the length
// prefix). Data aliases b; callers that retain the frame past the
// buffer's lifetime must copy it.
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) < 1 {
		return f, errShortFrame
	}
	f.Type = b[0]
	b = b[1:]
	u64 := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[:8])
		b = b[8:]
		return v, true
	}
	str := func() (string, bool) {
		if len(b) < 1 {
			return "", false
		}
		n := int(b[0])
		if len(b) < 1+n {
			return "", false
		}
		s := string(b[1 : 1+n])
		b = b[1+n:]
		return s, true
	}
	ok := true
	switch f.Type {
	case FrameHello, FrameHelloAck, FrameFence:
		f.Epoch, ok = u64()
		// Optional trailing flags word (new peers); absent means no
		// flags. A present-but-zero word is rejected to keep the
		// encoding canonical (zero flags always encodes to 8 bytes).
		if ok && len(b) == 4 {
			f.Flags = binary.LittleEndian.Uint32(b[:4])
			if f.Flags == 0 {
				return f, fmt.Errorf("replica: zero flags word in frame type %d", f.Type)
			}
			b = b[4:]
		}
		if ok && len(b) != 0 {
			return f, fmt.Errorf("replica: %d trailing bytes in frame type %d", len(b), f.Type)
		}
	case FrameFile:
		if f.Stream, ok = str(); ok {
			f.Name, ok = str()
		}
		f.Data = b
	case FrameAppend:
		f.Stream, ok = str()
		if ok {
			f.Epoch, ok = u64()
		}
		if ok {
			f.Seq, ok = u64()
		}
		if ok {
			f.FirstLSN, ok = u64()
		}
		if ok && len(b) >= 4 {
			f.Records = binary.LittleEndian.Uint32(b[:4])
			b = b[4:]
		} else {
			ok = false
		}
		f.Data = b
	case FrameAck:
		f.Seq, ok = u64()
		if ok && len(b) != 0 {
			return f, fmt.Errorf("replica: %d trailing bytes in ack", len(b))
		}
	case FrameHeartbeat:
		f.Seq, ok = u64()
		if ok {
			f.Epoch, ok = u64()
		}
		if ok && len(b) != 0 {
			return f, fmt.Errorf("replica: %d trailing bytes in heartbeat", len(b))
		}
	default:
		return f, fmt.Errorf("replica: unknown frame type %d", f.Type)
	}
	if !ok {
		return f, errShortFrame
	}
	return f, nil
}

// ReadFrame reads one length-prefixed frame from r. The returned
// frame's Data is freshly allocated (it does not alias an internal
// buffer).
func ReadFrame(r *bufio.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("replica: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, err
	}
	return DecodeFrame(payload)
}

// Checked framing: once a connection negotiates FlagChecksums, every
// subsequent frame carries a trailing CRC32C of its payload, covered
// by the length prefix. The checksum protects the payload end to end
// (TCP's 16-bit checksum is too weak for non-loopback links); the
// length prefix itself is implicitly validated because a corrupted
// length either exceeds MaxFrameBytes or misaligns the CRC.

// AppendCheckedFrame is AppendFrame plus the trailing CRC32C.
func AppendCheckedFrame(buf []byte, f Frame) []byte {
	lenAt := len(buf)
	buf = AppendFrame(buf, f)
	payload := buf[lenAt+4:]
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(buf[lenAt:lenAt+4], uint32(len(buf)-lenAt-4))
	return buf
}

// DecodeCheckedFrame verifies and strips the trailing CRC32C, then
// decodes the remaining payload. Exposed for fuzzing.
func DecodeCheckedFrame(b []byte) (Frame, error) {
	if len(b) < 5 {
		return Frame{}, errShortFrame
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return Frame{}, fmt.Errorf("replica: frame checksum mismatch: computed %08x, carried %08x", got, sum)
	}
	return DecodeFrame(body)
}

// ReadCheckedFrame is ReadFrame for a connection that negotiated
// FlagChecksums.
func ReadCheckedFrame(r *bufio.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("replica: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, err
	}
	return DecodeCheckedFrame(payload)
}
