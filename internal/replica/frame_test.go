package replica

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func roundTripFrames() []Frame {
	return []Frame{
		{Type: FrameHello, Epoch: 0},
		{Type: FrameHello, Epoch: 42},
		{Type: FrameHello, Epoch: 42, Flags: FlagChecksums},
		{Type: FrameHelloAck, Epoch: 7},
		{Type: FrameHelloAck, Epoch: 7, Flags: FlagChecksums},
		{Type: FrameFence, Epoch: 9},
		{Type: FrameFile, Stream: ".", Name: "ckpt-0000000000000010.ckpt", Data: []byte("image")},
		{Type: FrameFile, Stream: "shard-03", Name: "wal-0000000000000000.seg", Data: nil},
		{Type: FrameAppend, Stream: "coord", Epoch: 3, Seq: 17, FirstLSN: 1234, Records: 2, Data: []byte{1, 2, 3}},
		{Type: FrameAppend, Stream: ".", Epoch: 0, Seq: 1, FirstLSN: 0, Records: 0, Data: nil},
		{Type: FrameAck, Seq: 99},
		{Type: FrameHeartbeat, Seq: 5, Epoch: 2},
	}
}

// TestFrameRoundTrip encodes every frame shape through the wire form
// and back, both via DecodeFrame and via ReadFrame over a stream of
// all of them.
func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	for _, f := range roundTripFrames() {
		wire := AppendFrame(nil, f)
		got, err := DecodeFrame(wire[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if !frameEqual(got, f) {
			t.Fatalf("round trip: got %+v, want %+v", got, f)
		}
		stream = append(stream, wire...)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for _, want := range roundTripFrames() {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("stream read: got %+v, want %+v", got, want)
		}
	}
}

// frameEqual compares frames treating nil and empty Data as equal
// (decode always yields a subslice, possibly empty).
func frameEqual(a, b Frame) bool {
	if !bytes.Equal(a.Data, b.Data) {
		return false
	}
	a.Data, b.Data = nil, nil
	return reflect.DeepEqual(a, b)
}

// TestDecodeFrameRejects feeds malformed payloads; all must error, not
// panic or mis-parse.
func TestDecodeFrameRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                   // unknown type 0
		{200},                 // unknown high type
		{FrameHello},          // missing epoch
		{FrameHello, 1, 2, 3}, // short epoch
		append([]byte{FrameHello}, make([]byte, 12)...),     // present-but-zero flags word
		append([]byte{FrameHello}, make([]byte, 10)...),     // partial flags word
		{FrameAck, 1, 2, 3, 4, 5, 6, 7, 8, 9},               // trailing byte
		{FrameAppend, 5, 'a'},                               // stream length overruns
		{FrameFile, 3, 'a'},                                 // stream length overruns
		append([]byte{FrameHeartbeat}, make([]byte, 17)...), // trailing byte
	}
	for i, c := range cases {
		if _, err := DecodeFrame(c); err == nil {
			t.Errorf("case %d (% x): decoded without error", i, c)
		}
	}
}

// TestAppendFramePanicsOnLongName: u8 wire lengths cannot carry a
// >255-byte stream or file name; AppendFrame must refuse loudly
// instead of truncating into a corrupt frame.
func TestAppendFramePanicsOnLongName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendFrame encoded a 256-byte stream name without panicking")
		}
	}()
	AppendFrame(nil, Frame{Type: FrameAppend, Stream: strings.Repeat("x", 256)})
}

// TestCheckedFrameRoundTrip covers the negotiated CRC32C framing: the
// checksum survives a round trip, and any single flipped bit in the
// payload or the checksum itself is detected.
func TestCheckedFrameRoundTrip(t *testing.T) {
	var stream []byte
	for _, f := range roundTripFrames() {
		wire := AppendCheckedFrame(nil, f)
		got, err := DecodeCheckedFrame(wire[4:])
		if err != nil {
			t.Fatalf("checked decode %+v: %v", f, err)
		}
		if !frameEqual(got, f) {
			t.Fatalf("checked round trip: got %+v, want %+v", got, f)
		}
		stream = append(stream, wire...)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for _, want := range roundTripFrames() {
		got, err := ReadCheckedFrame(br)
		if err != nil {
			t.Fatalf("ReadCheckedFrame: %v", err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("checked stream read: got %+v, want %+v", got, want)
		}
	}

	// Bit flips anywhere in the checked payload must be caught.
	wire := AppendCheckedFrame(nil, Frame{Type: FrameAppend, Stream: "coord", Epoch: 3, Seq: 17, FirstLSN: 9, Records: 1, Data: []byte("group bytes")})
	payload := wire[4:]
	for i := range payload {
		corrupt := append([]byte(nil), payload...)
		corrupt[i] ^= 0x40
		if _, err := DecodeCheckedFrame(corrupt); err == nil {
			t.Fatalf("flipped bit at payload offset %d went undetected", i)
		}
	}
	if _, err := DecodeCheckedFrame([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("checksum-only payload must be rejected")
	}
}

// TestChecksumNegotiationInterop pins the wire compatibility contract:
// a Hello/HelloAck with no flags encodes to the legacy 8-byte payload
// byte for byte, so peers that never request checksums interoperate
// with old binaries in both directions.
func TestChecksumNegotiationInterop(t *testing.T) {
	plain := AppendFrame(nil, Frame{Type: FrameHello, Epoch: 5})
	if len(plain) != 4+1+8 {
		t.Fatalf("flagless hello is %d bytes, want %d (legacy layout)", len(plain), 4+1+8)
	}
	flagged := AppendFrame(nil, Frame{Type: FrameHello, Epoch: 5, Flags: FlagChecksums})
	if len(flagged) != 4+1+8+4 {
		t.Fatalf("flagged hello is %d bytes, want %d", len(flagged), 4+1+8+4)
	}
	if !bytes.Equal(plain[:13], flagged[:4+1+8]) {
		// Everything but the length prefix and trailing flags matches.
		got, err := DecodeFrame(flagged[4:])
		if err != nil || got.Epoch != 5 {
			t.Fatalf("flagged hello decode: %+v err %v", got, err)
		}
	}
}

// FuzzDecodeFrame is the CI fuzz target for the replication stream
// decoder: arbitrary payloads must never panic, and whatever decodes
// successfully must re-encode and re-decode to the same frame —
// through both the plain and the checksummed framing.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range roundTripFrames() {
		wire := AppendFrame(nil, fr)
		f.Add(wire[4:])
		checked := AppendCheckedFrame(nil, fr)
		f.Add(checked[4:])
	}
	f.Add([]byte{FrameAppend, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeFrame(payload)
		if err == nil {
			wire := AppendFrame(nil, fr)
			again, derr := DecodeFrame(wire[4:])
			if derr != nil {
				t.Fatalf("re-decode of re-encoded frame failed: %v (frame %+v)", derr, fr)
			}
			// Stream/Name longer than 255 bytes cannot re-encode faithfully
			// (u8 length); DecodeFrame never produces them, so equality must
			// hold.
			if !frameEqual(fr, again) {
				t.Fatalf("re-encode changed frame: %+v -> %+v", fr, again)
			}
		}
		// The checksummed path: whatever passes CRC validation must
		// round-trip identically through the checked encoder too.
		cfr, err := DecodeCheckedFrame(payload)
		if err != nil {
			return
		}
		wire := AppendCheckedFrame(nil, cfr)
		again, err := DecodeCheckedFrame(wire[4:])
		if err != nil {
			t.Fatalf("checked re-decode failed: %v (frame %+v)", err, cfr)
		}
		if !frameEqual(cfr, again) {
			t.Fatalf("checked re-encode changed frame: %+v -> %+v", cfr, again)
		}
	})
}
