package replica

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func roundTripFrames() []Frame {
	return []Frame{
		{Type: FrameHello, Epoch: 0},
		{Type: FrameHello, Epoch: 42},
		{Type: FrameHelloAck, Epoch: 7},
		{Type: FrameFence, Epoch: 9},
		{Type: FrameFile, Stream: ".", Name: "ckpt-0000000000000010.ckpt", Data: []byte("image")},
		{Type: FrameFile, Stream: "shard-03", Name: "wal-0000000000000000.seg", Data: nil},
		{Type: FrameAppend, Stream: "coord", Epoch: 3, Seq: 17, FirstLSN: 1234, Records: 2, Data: []byte{1, 2, 3}},
		{Type: FrameAppend, Stream: ".", Epoch: 0, Seq: 1, FirstLSN: 0, Records: 0, Data: nil},
		{Type: FrameAck, Seq: 99},
		{Type: FrameHeartbeat, Seq: 5, Epoch: 2},
	}
}

// TestFrameRoundTrip encodes every frame shape through the wire form
// and back, both via DecodeFrame and via ReadFrame over a stream of
// all of them.
func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	for _, f := range roundTripFrames() {
		wire := AppendFrame(nil, f)
		got, err := DecodeFrame(wire[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if !frameEqual(got, f) {
			t.Fatalf("round trip: got %+v, want %+v", got, f)
		}
		stream = append(stream, wire...)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for _, want := range roundTripFrames() {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("stream read: got %+v, want %+v", got, want)
		}
	}
}

// frameEqual compares frames treating nil and empty Data as equal
// (decode always yields a subslice, possibly empty).
func frameEqual(a, b Frame) bool {
	if !bytes.Equal(a.Data, b.Data) {
		return false
	}
	a.Data, b.Data = nil, nil
	return reflect.DeepEqual(a, b)
}

// TestDecodeFrameRejects feeds malformed payloads; all must error, not
// panic or mis-parse.
func TestDecodeFrameRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                      // unknown type 0
		{200},                    // unknown high type
		{FrameHello},             // missing epoch
		{FrameHello, 1, 2, 3},    // short epoch
		{FrameAck, 1, 2, 3, 4, 5, 6, 7, 8, 9}, // trailing byte
		{FrameAppend, 5, 'a'},    // stream length overruns
		{FrameFile, 3, 'a'},      // stream length overruns
		append([]byte{FrameHeartbeat}, make([]byte, 17)...), // trailing byte
	}
	for i, c := range cases {
		if _, err := DecodeFrame(c); err == nil {
			t.Errorf("case %d (% x): decoded without error", i, c)
		}
	}
}

// TestAppendFramePanicsOnLongName: u8 wire lengths cannot carry a
// >255-byte stream or file name; AppendFrame must refuse loudly
// instead of truncating into a corrupt frame.
func TestAppendFramePanicsOnLongName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendFrame encoded a 256-byte stream name without panicking")
		}
	}()
	AppendFrame(nil, Frame{Type: FrameAppend, Stream: strings.Repeat("x", 256)})
}

// FuzzDecodeFrame is the CI fuzz target for the replication stream
// decoder: arbitrary payloads must never panic, and whatever decodes
// successfully must re-encode and re-decode to the same frame.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range roundTripFrames() {
		wire := AppendFrame(nil, fr)
		f.Add(wire[4:])
	}
	f.Add([]byte{FrameAppend, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeFrame(payload)
		if err != nil {
			return
		}
		wire := AppendFrame(nil, fr)
		again, err := DecodeFrame(wire[4:])
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v (frame %+v)", err, fr)
		}
		// Stream/Name longer than 255 bytes cannot re-encode faithfully
		// (u8 length); DecodeFrame never produces them, so equality must
		// hold.
		if !frameEqual(fr, again) {
			t.Fatalf("re-encode changed frame: %+v -> %+v", fr, again)
		}
	})
}
