package replica

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"tskd/internal/storage"
)

// epoch.go: the fencing epoch. Every data directory — primary and
// backup alike — carries its incarnation's epoch in a plain-text EPOCH
// file. A fresh directory is epoch 0. Promotion bumps the file under
// the backup directory before the promoted server starts; the number
// then rides every handshake and append frame, and a receiver refuses
// anything below its own persisted epoch. Monotonicity is the whole
// invariant: the file is only ever written with a value >= what it
// held, and the write is atomic (tmp + fsync + rename + dir fsync).

// EpochFile is the epoch file's name under a data directory.
const EpochFile = "EPOCH"

// ReadEpoch returns the epoch persisted under dir (0 when the file
// does not exist — a never-replicated or first-incarnation directory).
// A corrupt EPOCH is recovered from a surviving atomic-write temp file
// when one parses (the crash window of an interrupted WriteEpoch, or a
// torn direct write from an older binary); only when no recovery
// candidate exists does corruption become a hard error, so a single
// torn write can no longer brick a backup.
func ReadEpoch(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, EpochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	e, perr := strconv.ParseUint(string(bytes.TrimSpace(b)), 10, 64)
	if perr == nil {
		return e, nil
	}
	if rec, ok := recoverEpoch(dir); ok {
		return rec, nil
	}
	return 0, fmt.Errorf("replica: corrupt %s: %w", EpochFile, perr)
}

// recoverEpoch scans the EPOCH atomic-write temp files left by a crash
// (EPOCH.tmp-* from the storage helper, EPOCH.tmp from older builds)
// and, if any parses, adopts the highest value found: epochs only ever
// move forward, so a temp file always holds a value at least as new as
// anything EPOCH legitimately contained. The recovered value is
// rewritten atomically and the temp files are removed.
func recoverEpoch(dir string) (uint64, bool) {
	var cands []string
	if m, err := filepath.Glob(filepath.Join(dir, EpochFile+".tmp-*")); err == nil {
		cands = append(cands, m...)
	}
	cands = append(cands, filepath.Join(dir, EpochFile+".tmp"))
	best, found := uint64(0), false
	for _, p := range cands {
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		if e, err := strconv.ParseUint(string(bytes.TrimSpace(b)), 10, 64); err == nil && (!found || e > best) {
			best, found = e, true
		}
	}
	if !found {
		return 0, false
	}
	if err := storage.WriteFileAtomic(filepath.Join(dir, EpochFile), epochBytes(best), true); err != nil {
		return 0, false
	}
	for _, p := range cands {
		os.Remove(p)
	}
	return best, true
}

func epochBytes(epoch uint64) []byte {
	return []byte(strconv.FormatUint(epoch, 10) + "\n")
}

// WriteEpoch persists epoch under dir, atomically and durably. It
// refuses to move the epoch backwards.
func WriteEpoch(dir string, epoch uint64) error {
	if cur, err := ReadEpoch(dir); err != nil {
		return err
	} else if epoch < cur {
		return fmt.Errorf("replica: epoch moving backwards: %d < persisted %d", epoch, cur)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return storage.WriteFileAtomic(filepath.Join(dir, EpochFile), epochBytes(epoch), true)
}

// Promote fences off the old primary: it bumps the epoch persisted
// under dir (a backup's shipped directory) and returns the new epoch.
// A server subsequently started over dir boots with that epoch, and
// any deposed primary still holding the old one is refused by every
// receiver that saw the new number. Promote itself never touches the
// WAL or checkpoint files — recovery over the shipped directory is the
// ordinary startup path.
func Promote(dir string) (uint64, error) {
	cur, err := ReadEpoch(dir)
	if err != nil {
		return 0, err
	}
	next := cur + 1
	if err := WriteEpoch(dir, next); err != nil {
		return 0, err
	}
	return next, nil
}

// syncPath fsyncs a file or directory by path (the rename barrier).
func syncPath(p string) error {
	d, err := os.Open(p)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
