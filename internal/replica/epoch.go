package replica

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// epoch.go: the fencing epoch. Every data directory — primary and
// backup alike — carries its incarnation's epoch in a plain-text EPOCH
// file. A fresh directory is epoch 0. Promotion bumps the file under
// the backup directory before the promoted server starts; the number
// then rides every handshake and append frame, and a receiver refuses
// anything below its own persisted epoch. Monotonicity is the whole
// invariant: the file is only ever written with a value >= what it
// held, and the write is atomic (tmp + fsync + rename + dir fsync).

// EpochFile is the epoch file's name under a data directory.
const EpochFile = "EPOCH"

// ReadEpoch returns the epoch persisted under dir (0 when the file
// does not exist — a never-replicated or first-incarnation directory).
func ReadEpoch(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, EpochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	e, err := strconv.ParseUint(string(bytes.TrimSpace(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: corrupt %s: %w", EpochFile, err)
	}
	return e, nil
}

// WriteEpoch persists epoch under dir, atomically and durably. It
// refuses to move the epoch backwards.
func WriteEpoch(dir string, epoch uint64) error {
	if cur, err := ReadEpoch(dir); err != nil {
		return err
	} else if epoch < cur {
		return fmt.Errorf("replica: epoch moving backwards: %d < persisted %d", epoch, cur)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, EpochFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(strconv.FormatUint(epoch, 10) + "\n"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncPath(dir)
}

// Promote fences off the old primary: it bumps the epoch persisted
// under dir (a backup's shipped directory) and returns the new epoch.
// A server subsequently started over dir boots with that epoch, and
// any deposed primary still holding the old one is refused by every
// receiver that saw the new number. Promote itself never touches the
// WAL or checkpoint files — recovery over the shipped directory is the
// ordinary startup path.
func Promote(dir string) (uint64, error) {
	cur, err := ReadEpoch(dir)
	if err != nil {
		return 0, err
	}
	next := cur + 1
	if err := WriteEpoch(dir, next); err != nil {
		return 0, err
	}
	return next, nil
}

// syncPath fsyncs a file or directory by path (the rename barrier).
func syncPath(p string) error {
	d, err := os.Open(p)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
