package replica

import (
	"testing"
	"time"

	"tskd/internal/clock"
)

// monitor_test.go: table tests on a fake clock, the internal/overload
// discipline — every timeline is hand-written, no sleeps anywhere.

func newTestMonitor(t *testing.T) (*Monitor, *clock.Fake, *[]string) {
	t.Helper()
	fake := clock.NewFake(time.Unix(1000, 0))
	var transitions []string
	m := NewMonitor(MonitorConfig{
		AckTimeout:  time.Second,
		FailAfter:   10 * time.Second,
		MaxLagBytes: 1000,
		Clock:       fake,
		OnTransition: func(from, to State) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})
	return m, fake, &transitions
}

func TestMonitorTimeline(t *testing.T) {
	type step struct {
		advance time.Duration
		do      func(m *Monitor)
		want    State
	}
	cases := []struct {
		name        string
		steps       []step
		transitions []string
	}{
		{
			name: "healthy acks stay sync",
			steps: []step{
				{advance: 500 * time.Millisecond, do: func(m *Monitor) { m.ObserveShip(100) }, want: StateSync},
				{advance: 100 * time.Millisecond, do: func(m *Monitor) { m.ObserveAck(0) }, want: StateSync},
				{advance: 900 * time.Millisecond, do: func(m *Monitor) { m.ObserveAck(0) }, want: StateSync},
			},
			transitions: nil,
		},
		{
			name: "silence degrades then heals on ack",
			steps: []step{
				{advance: time.Second, do: func(m *Monitor) { m.Tick() }, want: StateDegraded},
				{advance: time.Second, do: func(m *Monitor) { m.Tick() }, want: StateDegraded},
				{advance: 0, do: func(m *Monitor) { m.ObserveAck(0) }, want: StateSync},
			},
			transitions: []string{"sync->degraded", "degraded->sync"},
		},
		{
			name: "silence past FailAfter fails over, absorbing",
			steps: []step{
				{advance: time.Second, do: func(m *Monitor) { m.Tick() }, want: StateDegraded},
				{advance: 9 * time.Second, do: func(m *Monitor) { m.Tick() }, want: StateFailed},
				// Nothing heals failed, not even acks.
				{advance: 0, do: func(m *Monitor) { m.ObserveAck(0) }, want: StateFailed},
			},
			transitions: []string{"sync->degraded", "degraded->failed"},
		},
		{
			name: "lag bound fails over even while acks flow",
			steps: []step{
				{advance: 100 * time.Millisecond, do: func(m *Monitor) { m.ObserveShip(600) }, want: StateSync},
				{advance: 100 * time.Millisecond, do: func(m *Monitor) { m.ObserveAck(600) }, want: StateSync},
				{advance: 100 * time.Millisecond, do: func(m *Monitor) { m.ObserveShip(600) }, want: StateFailed},
			},
			transitions: []string{"sync->failed"},
		},
		{
			name: "transport failure degrades immediately",
			steps: []step{
				{advance: 10 * time.Millisecond, do: func(m *Monitor) { m.ObserveFailure() }, want: StateDegraded},
				{advance: 0, do: func(m *Monitor) { m.ObserveAck(0) }, want: StateSync},
			},
			transitions: []string{"sync->degraded", "degraded->sync"},
		},
		{
			name: "ack with lag still over bound does not heal",
			steps: []step{
				{advance: 0, do: func(m *Monitor) { m.ObserveFailure() }, want: StateDegraded},
				{advance: 0, do: func(m *Monitor) { m.ObserveAck(1500) }, want: StateFailed},
			},
			transitions: []string{"sync->degraded", "degraded->failed"},
		},
		{
			// The semi-sync catch-up story: a link failure degrades the
			// pair, async shipping keeps piling bytes onto the backlog
			// (ships never heal — only an ack proves the backup is
			// consuming), and the first ack of the reconnected backup with
			// the lag back inside MaxLagBytes restores sync.
			name: "degraded pair heals after backup catch-up",
			steps: []step{
				{advance: 10 * time.Millisecond, do: func(m *Monitor) { m.ObserveFailure() }, want: StateDegraded},
				{advance: 50 * time.Millisecond, do: func(m *Monitor) { m.ObserveShip(400) }, want: StateDegraded},
				{advance: 50 * time.Millisecond, do: func(m *Monitor) { m.ObserveShip(500) }, want: StateDegraded},
				// Backup reconnects and starts draining: lag 900 -> 400.
				{advance: 100 * time.Millisecond, do: func(m *Monitor) { m.ObserveAck(400) }, want: StateSync},
				{advance: 100 * time.Millisecond, do: func(m *Monitor) { m.ObserveAck(0) }, want: StateSync},
			},
			transitions: []string{"sync->degraded", "degraded->sync"},
		},
		{
			// Catch-up is not one-shot: a stall mid-drain re-degrades the
			// pair, and the next ack heals it again. Two full
			// degraded->sync round trips on one monitor.
			name: "re-degrade during catch-up heals again",
			steps: []step{
				{advance: time.Second, do: func(m *Monitor) { m.Tick() }, want: StateDegraded},
				{advance: 0, do: func(m *Monitor) { m.ObserveShip(700) }, want: StateDegraded},
				{advance: 100 * time.Millisecond, do: func(m *Monitor) { m.ObserveAck(300) }, want: StateSync},
				{advance: time.Second, do: func(m *Monitor) { m.Tick() }, want: StateDegraded},
				{advance: 0, do: func(m *Monitor) { m.ObserveAck(0) }, want: StateSync},
			},
			transitions: []string{"sync->degraded", "degraded->sync", "sync->degraded", "degraded->sync"},
		},
		{
			name: "reset re-arms a failed pair",
			steps: []step{
				{advance: 10 * time.Second, do: func(m *Monitor) { m.Tick() }, want: StateFailed},
				{advance: 0, do: func(m *Monitor) { m.Reset() }, want: StateSync},
				{advance: 500 * time.Millisecond, do: func(m *Monitor) { m.Tick() }, want: StateSync},
			},
			transitions: []string{"sync->failed", "failed->sync"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, fake, transitions := newTestMonitor(t)
			for i, s := range tc.steps {
				fake.Advance(s.advance)
				s.do(m)
				if got := m.State(); got != s.want {
					t.Fatalf("step %d: state %v, want %v", i, got, s.want)
				}
			}
			if len(*transitions) != len(tc.transitions) {
				t.Fatalf("transitions %v, want %v", *transitions, tc.transitions)
			}
			for i := range tc.transitions {
				if (*transitions)[i] != tc.transitions[i] {
					t.Fatalf("transitions %v, want %v", *transitions, tc.transitions)
				}
			}
		})
	}
}

func TestMonitorDefaults(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	if m.cfg.AckTimeout <= 0 || m.cfg.FailAfter <= m.cfg.AckTimeout || m.cfg.MaxLagBytes <= 0 {
		t.Fatalf("bad defaults: %+v", m.cfg)
	}
	if m.State() != StateSync {
		t.Fatalf("fresh monitor in %v", m.State())
	}
}
