package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tskd/internal/clock"
)

// ship.go: the primary side. One Shipper owns one connection to the
// backup and multiplexes every WAL directory the primary appends to as
// a named stream ("." for a single-pipeline data dir, "shard-NN" and
// "coord" for the sharded layout — stream names are the relative
// directory names, so the backup mirrors the layout verbatim).
//
// Stream registration happens during startup recovery, before the
// corresponding log opens for appending; it ships every file already
// in the directory (segments, checkpoints, dedup sidecars) as
// whole-file snapshots, which is what lets a backup join mid-life:
// the primary truncates sealed segments at checkpoints, so the
// snapshot is the only complete prefix the backup will ever see. After
// the snapshot, the wal package hands the stream every flushed group
// and the backup appends forever, never truncating — promotion then
// recovers the shipped directory with the ordinary startup path.
//
// Ship is called under the owning log's mutex with the group already
// fsynced locally. In sync mode (while the monitor holds StateSync)
// it blocks until the backup acknowledged the group's seq — the
// ack-after-replication point — and on timeout degrades to async
// rather than failing the flush: semi-synchronous semantics, where
// the one hard failure is fencing. A fenced shipper fails every
// subsequent flush with ErrFenced, because a deposed primary must not
// acknowledge commits that the promoted timeline will never contain.

// ErrFenced reports a backup refusing this shipper's epoch: a newer
// incarnation was promoted and this primary is deposed.
var ErrFenced = errors.New("replica: fenced: backup holds a newer epoch")

// ShipperConfig configures the primary side of a pair.
type ShipperConfig struct {
	// Addr is the backup's replication listener.
	Addr string
	// Epoch is this primary's fencing epoch (from its data directory's
	// EPOCH file; 0 for a first incarnation).
	Epoch uint64
	// Sync makes flushes wait for the backup's ack while the pair is
	// healthy; false ships purely asynchronously.
	Sync bool
	// AckTimeout / FailAfter / MaxLagBytes tune the failure detector
	// (see MonitorConfig); AckTimeout also bounds a sync flush's wait.
	AckTimeout  time.Duration
	FailAfter   time.Duration
	MaxLagBytes int64
	// HeartbeatEvery is the idle liveness-probe interval (default
	// AckTimeout/2). Heartbeat acks keep an idle pair in StateSync.
	HeartbeatEvery time.Duration
	// DialTimeout bounds the connect + handshake (default 5s).
	DialTimeout time.Duration
	// Clock injects time into the failure detector.
	Clock clock.Clock
	// OnTransition observes monitor state changes (see MonitorConfig).
	OnTransition func(from, to State)
	// Checksums requests per-frame CRC32C protection (FlagChecksums) in
	// the Hello. A backup new enough to understand the flag echoes it
	// and both directions are checksummed from then on; a pre-flags
	// backup rejects the extended Hello, which surfaces as a handshake
	// error — leave this off when the backup may be older. With it off
	// the wire bytes are identical to the pre-checksum protocol.
	Checksums bool
}

// ShipperStats is a point-in-time snapshot for /metrics.
type ShipperStats struct {
	Epoch         uint64 `json:"epoch"`
	Sync          bool   `json:"sync"`
	State         string `json:"state"`
	LagBytes      int64  `json:"lag_bytes"`
	ShippedGroups uint64 `json:"shipped_groups"`
	ShippedBytes  uint64 `json:"shipped_bytes"`
	AckedSeq      uint64 `json:"acked_seq"`
	SyncWaits     uint64 `json:"sync_waits"`
	SyncTimeouts  uint64 `json:"sync_timeouts"`
	Fenced        bool   `json:"fenced"`
	Checksums     bool   `json:"checksums,omitempty"`
}

type ackWaiter struct {
	seq uint64
	ch  chan error
}

type pendingGroup struct {
	seq   uint64
	bytes int64
}

// Shipper is the primary-side replication client. Safe for concurrent
// use by many logs.
type Shipper struct {
	cfg     ShipperConfig
	conn    net.Conn
	monitor *Monitor
	// checked: both ends negotiated FlagChecksums during the handshake
	// (immutable afterwards); every subsequent frame carries a CRC32C.
	checked bool

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte

	mu        sync.Mutex // seq/ack state
	nextSeq   uint64
	ackedSeq  uint64
	lagBytes  int64
	pending   []pendingGroup // unacked groups, seq ascending
	waiters   []ackWaiter    // sync flushes parked on acks, seq ascending
	err       error          // sticky transport error
	fenced    bool
	closed    bool
	shipped   uint64
	shippedB  uint64
	syncWaits uint64
	syncTOs   uint64

	done chan struct{} // closes when the reader loop exits
	hbT  *time.Ticker
	hbQ  chan struct{}
	hbWG sync.WaitGroup
}

// NewShipper dials the backup and performs the epoch handshake. A
// backup holding a newer epoch refuses the handshake with ErrFenced —
// a deposed primary finds out before it serves a single request.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 500 * time.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.AckTimeout / 2
	}
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("replica: dial backup %s: %w", cfg.Addr, err)
	}
	conn.SetDeadline(time.Now().Add(cfg.DialTimeout))
	var flags uint32
	if cfg.Checksums {
		flags |= FlagChecksums
	}
	if _, err := conn.Write(AppendFrame(nil, Frame{Type: FrameHello, Epoch: cfg.Epoch, Flags: flags})); err != nil {
		conn.Close()
		return nil, fmt.Errorf("replica: hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	resp, err := ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("replica: handshake: %w", err)
	}
	switch resp.Type {
	case FrameHelloAck:
	case FrameFence:
		conn.Close()
		return nil, fmt.Errorf("%w (ours %d, backup %d)", ErrFenced, cfg.Epoch, resp.Epoch)
	default:
		conn.Close()
		return nil, fmt.Errorf("replica: handshake: unexpected frame type %d", resp.Type)
	}
	if cfg.Checksums && resp.Flags&FlagChecksums == 0 {
		conn.Close()
		return nil, fmt.Errorf("replica: handshake: backup did not negotiate checksums")
	}
	conn.SetDeadline(time.Time{})

	s := &Shipper{
		cfg:     cfg,
		conn:    conn,
		checked: cfg.Checksums && resp.Flags&FlagChecksums != 0,
		monitor: NewMonitor(MonitorConfig{
			AckTimeout:   cfg.AckTimeout,
			FailAfter:    cfg.FailAfter,
			MaxLagBytes:  cfg.MaxLagBytes,
			Clock:        cfg.Clock,
			OnTransition: cfg.OnTransition,
		}),
		done: make(chan struct{}),
		hbQ:  make(chan struct{}),
	}
	go s.readLoop(br)
	s.hbT = time.NewTicker(cfg.HeartbeatEvery)
	s.hbWG.Add(1)
	go s.heartbeatLoop()
	return s, nil
}

// Epoch returns the epoch this shipper ships under.
func (s *Shipper) Epoch() uint64 { return s.cfg.Epoch }

// appendFrame / readFrame pick the plain or checksummed framing the
// handshake negotiated. s.checked is immutable after NewShipper.
func (s *Shipper) appendFrame(buf []byte, f Frame) []byte {
	if s.checked {
		return AppendCheckedFrame(buf, f)
	}
	return AppendFrame(buf, f)
}

func (s *Shipper) readFrame(br *bufio.Reader) (Frame, error) {
	if s.checked {
		return ReadCheckedFrame(br)
	}
	return ReadFrame(br)
}

// Monitor exposes the failure detector (read-only use).
func (s *Shipper) Monitor() *Monitor { return s.monitor }

// Stats snapshots the shipper for /metrics.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShipperStats{
		Epoch:         s.cfg.Epoch,
		Sync:          s.cfg.Sync,
		State:         s.monitor.Tick().String(),
		LagBytes:      s.lagBytes,
		ShippedGroups: s.shipped,
		ShippedBytes:  s.shippedB,
		AckedSeq:      s.ackedSeq,
		SyncWaits:     s.syncWaits,
		SyncTimeouts:  s.syncTOs,
		Fenced:        s.fenced,
		Checksums:     s.checked,
	}
}

// Stream registers a named stream backed by dir and ships every file
// already in it as catch-up snapshots (dir may not exist yet: nothing
// to snapshot). The returned value implements wal.Shipper; attach it
// to the directory's log via wal.DirOptions.Shipper before the log
// opens for appending, so no flush escapes the stream.
func (s *Shipper) Stream(name, dir string) (*Stream, error) {
	if len(name) > 255 {
		return nil, fmt.Errorf("replica: stream name %q exceeds 255 bytes (u8 wire length)", name)
	}
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || e.Name() == EpochFile {
			continue
		}
		if len(e.Name()) > 255 {
			return nil, fmt.Errorf("replica: catch-up %s/%s: file name exceeds 255 bytes", name, e.Name())
		}
		// A FrameFile carries the whole file in one frame; anything the
		// backup's ReadFrame would reject as oversized must fail here,
		// descriptively, instead of tearing down every catch-up attempt.
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		if maxData := int64(MaxFrameBytes) - int64(3+len(name)+len(e.Name())); info.Size() > maxData {
			return nil, fmt.Errorf("replica: catch-up %s/%s: %d bytes exceeds the %d-byte frame limit",
				name, e.Name(), info.Size(), MaxFrameBytes)
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if err := s.writeFrame(Frame{Type: FrameFile, Stream: name, Name: e.Name(), Data: data}); err != nil {
			return nil, fmt.Errorf("replica: catch-up %s/%s: %w", name, e.Name(), err)
		}
	}
	return &Stream{s: s, name: name}, nil
}

// Stream is one WAL directory's shipping endpoint; it satisfies
// wal.Shipper.
type Stream struct {
	s    *Shipper
	name string
}

// Ship forwards one flushed group (see the package comment for the
// blocking and error contract).
func (st *Stream) Ship(firstLSN uint64, records int, data []byte) error {
	return st.s.ship(st.name, firstLSN, records, data)
}

func (s *Shipper) ship(stream string, firstLSN uint64, records int, data []byte) error {
	// Seq allocation and the wire write are one unit under wmu: acks
	// are cumulative (see FrameAck), so wire order must match seq
	// order. If a concurrent shipper or the heartbeat could write a
	// higher seq first, its ack would release this flush's sync waiter
	// before these bytes reached the backup — losing the acked group
	// on failover.
	s.wmu.Lock()
	s.mu.Lock()
	if s.fenced {
		s.mu.Unlock()
		s.wmu.Unlock()
		return ErrFenced
	}
	if s.closed || s.err != nil || s.monitor.Tick() == StateFailed {
		// Failed over (or torn down): the pair is broken, the local log
		// is the only copy, and the flush proceeds locally. Surfaced via
		// Stats, decided by the operator.
		s.mu.Unlock()
		s.wmu.Unlock()
		return nil
	}
	s.nextSeq++
	seq := s.nextSeq
	s.lagBytes += int64(len(data))
	s.pending = append(s.pending, pendingGroup{seq: seq, bytes: int64(len(data))})
	s.shipped++
	s.shippedB += uint64(len(data))
	wantSync := s.cfg.Sync && s.monitor.State() == StateSync
	var ch chan error
	if wantSync {
		ch = make(chan error, 1)
		s.waiters = append(s.waiters, ackWaiter{seq: seq, ch: ch})
		s.syncWaits++
	}
	s.mu.Unlock()
	s.monitor.ObserveShip(int64(len(data)))

	s.wbuf = s.appendFrame(s.wbuf[:0], Frame{
		Type: FrameAppend, Stream: stream, Epoch: s.cfg.Epoch,
		Seq: seq, FirstLSN: firstLSN, Records: uint32(records), Data: data,
	})
	_, err := s.conn.Write(s.wbuf)
	s.wmu.Unlock()
	if err != nil {
		s.transportError(err)
		if s.isFenced() {
			return ErrFenced
		}
		return nil // degraded: local durability already holds
	}
	if !wantSync {
		return nil
	}
	t := time.NewTimer(s.cfg.AckTimeout)
	defer t.Stop()
	select {
	case werr := <-ch:
		if werr != nil {
			return werr // fencing: the one error that must fail the ack
		}
		return nil
	case <-t.C:
		s.mu.Lock()
		s.syncTOs++
		s.dropWaiterLocked(seq)
		s.mu.Unlock()
		s.monitor.Tick() // silence >= AckTimeout: degrades
		return nil
	}
}

// dropWaiterLocked removes the waiter for seq (its flush timed out and
// released locally; a late ack must not send on an abandoned channel).
func (s *Shipper) dropWaiterLocked(seq uint64) {
	for i, w := range s.waiters {
		if w.seq == seq {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// writeFrame ships one seq-less frame (catch-up snapshots). Frames
// carrying a seq are encoded and written inline under wmu in ship()
// and heartbeatLoop(), so that seq allocation and the wire write are
// atomic.
func (s *Shipper) writeFrame(f Frame) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.wbuf = s.appendFrame(s.wbuf[:0], f)
	_, err := s.conn.Write(s.wbuf)
	return err
}

// readLoop drains acks and fence frames from the backup.
func (s *Shipper) readLoop(br *bufio.Reader) {
	defer close(s.done)
	for {
		f, err := s.readFrame(br)
		if err != nil {
			s.transportError(err)
			return
		}
		switch f.Type {
		case FrameAck:
			s.mu.Lock()
			if f.Seq > s.ackedSeq {
				s.ackedSeq = f.Seq
			}
			for len(s.pending) > 0 && s.pending[0].seq <= f.Seq {
				s.lagBytes -= s.pending[0].bytes
				s.pending = s.pending[1:]
			}
			lag := s.lagBytes
			var release []ackWaiter
			for len(s.waiters) > 0 && s.waiters[0].seq <= f.Seq {
				release = append(release, s.waiters[0])
				s.waiters = s.waiters[1:]
			}
			s.mu.Unlock()
			s.monitor.ObserveAck(lag)
			for _, w := range release {
				w.ch <- nil
			}
		case FrameFence:
			s.fence()
			return
		}
	}
}

// fence marks the shipper deposed and fails every parked flush.
func (s *Shipper) fence() {
	s.mu.Lock()
	s.fenced = true
	s.err = ErrFenced
	release := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	for _, w := range release {
		w.ch <- ErrFenced
	}
}

// transportError latches a connection failure and releases parked
// flushes locally (degraded, not failed).
func (s *Shipper) transportError(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	release := s.waiters
	s.waiters = nil
	closed := s.closed
	s.mu.Unlock()
	if !closed {
		s.monitor.ObserveFailure()
	}
	for _, w := range release {
		w.ch <- nil
	}
}

func (s *Shipper) isFenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

// heartbeatLoop keeps an idle pair's failure detector fed.
func (s *Shipper) heartbeatLoop() {
	defer s.hbWG.Done()
	for {
		select {
		case <-s.hbQ:
			return
		case <-s.done:
			return
		case <-s.hbT.C:
		}
		// Same wmu-spans-seq-and-write discipline as ship(): a
		// heartbeat shares the seq space, so one written ahead of an
		// already-allocated append seq would ack that append early.
		s.wmu.Lock()
		s.mu.Lock()
		if s.closed || s.err != nil {
			s.mu.Unlock()
			s.wmu.Unlock()
			return
		}
		s.nextSeq++
		seq := s.nextSeq
		s.mu.Unlock()
		s.wbuf = s.appendFrame(s.wbuf[:0], Frame{Type: FrameHeartbeat, Seq: seq, Epoch: s.cfg.Epoch})
		_, err := s.conn.Write(s.wbuf)
		s.wmu.Unlock()
		if err != nil {
			s.transportError(err)
			return
		}
		s.monitor.Tick()
	}
}

// Close tears the shipper down. Call after the logs it serves are
// closed, so no flush ships into a closing connection.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.hbT.Stop()
	close(s.hbQ)
	err := s.conn.Close()
	<-s.done
	s.hbWG.Wait()
	return err
}
