package replica

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEpochRoundTripAndMonotonicity(t *testing.T) {
	dir := t.TempDir()
	if e, err := ReadEpoch(dir); err != nil || e != 0 {
		t.Fatalf("fresh dir: epoch %d err %v", e, err)
	}
	if err := WriteEpoch(dir, 3); err != nil {
		t.Fatalf("WriteEpoch: %v", err)
	}
	if e, err := ReadEpoch(dir); err != nil || e != 3 {
		t.Fatalf("after write: epoch %d err %v", e, err)
	}
	if err := WriteEpoch(dir, 2); err == nil {
		t.Fatal("backwards write must be refused")
	}
	if e, err := Promote(dir); err != nil || e != 4 {
		t.Fatalf("Promote: epoch %d err %v", e, err)
	}
	// No atomic-write temp files survive a clean write.
	if m, _ := filepath.Glob(filepath.Join(dir, EpochFile+".tmp*")); len(m) != 0 {
		t.Fatalf("stray temp files after clean writes: %v", m)
	}
}

// TestEpochTornWriteRecovery simulates the crash windows of an epoch
// bump: a corrupt EPOCH with a surviving atomic-write temp recovers to
// the temp's (newer) value instead of bricking the backup.
func TestEpochTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	if err := WriteEpoch(dir, 5); err != nil {
		t.Fatalf("WriteEpoch: %v", err)
	}
	path := filepath.Join(dir, EpochFile)

	// Crash mid-write of a legacy (non-atomic) binary: EPOCH is torn
	// garbage, but the interrupted promote's temp file survived.
	if err := os.WriteFile(path, []byte("5\x00\xffgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp-recov1", []byte("6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An older temp naming scheme, with a staler value: the highest
	// candidate must win (epochs only move forward).
	if err := os.WriteFile(path+".tmp", []byte("4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := ReadEpoch(dir)
	if err != nil {
		t.Fatalf("recovery read: %v", err)
	}
	if e != 6 {
		t.Fatalf("recovered epoch %d, want 6", e)
	}
	// Recovery rewrote EPOCH durably and cleaned the temps: a second
	// read takes the fast path.
	if b, err := os.ReadFile(path); err != nil || string(b) != "6\n" {
		t.Fatalf("rewritten EPOCH: %q err %v", b, err)
	}
	if m, _ := filepath.Glob(path + ".tmp*"); len(m) != 0 {
		t.Fatalf("temp files not cleaned: %v", m)
	}
	if e, err := ReadEpoch(dir); err != nil || e != 6 {
		t.Fatalf("post-recovery read: epoch %d err %v", e, err)
	}
	// Promotion continues from the recovered value.
	if e, err := Promote(dir); err != nil || e != 7 {
		t.Fatalf("Promote after recovery: epoch %d err %v", e, err)
	}

	// Corruption with no recovery candidate is still a hard error: the
	// epoch is a fencing invariant, not a guessable default.
	if err := os.WriteFile(path, []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpoch(dir); err == nil {
		t.Fatal("unrecoverable corruption must fail")
	}
}
