package replica

import (
	"sync"
	"time"

	"tskd/internal/clock"
)

// monitor.go: the primary-side failure detector, a Breaker-style state
// machine (internal/overload) on an injectable clock. The shipper
// feeds it ship/ack/failure observations; the monitor decides what
// shipping mode the pair is actually in:
//
//	StateSync      acks are flowing. Sync-mode flushes wait for the
//	               backup before releasing client acks.
//	StateDegraded  the backup is late or the link hiccupped. Shipping
//	               continues asynchronously (acks release on local
//	               fsync alone) with the unacked lag tracked — the
//	               availability-over-consistency half of semi-sync.
//	StateFailed    silence outlasted FailAfter or the lag outgrew
//	               MaxLagBytes. Shipping stops; the state surfaces in
//	               /metrics and the operator (or chaos harness)
//	               decides whether to promote the backup. Absorbing
//	               until Reset.
//
// Degraded heals back to sync the moment an ack arrives with the lag
// back inside bounds. All transitions run under the monitor's mutex —
// it is a leaf: OnTransition must not call back into the monitor or
// the shipper.

// State is the replication health state.
type State int

const (
	// StateSync: healthy, backup acking promptly.
	StateSync State = iota
	// StateDegraded: async with bounded lag, trying to heal.
	StateDegraded
	// StateFailed: failed over; shipping stopped.
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateSync:
		return "sync"
	case StateDegraded:
		return "degraded"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// MonitorConfig tunes the failure detector.
type MonitorConfig struct {
	// AckTimeout is the ack/heartbeat silence that degrades sync to
	// async (default 500ms). It is also the longest a sync-mode flush
	// waits on the backup before releasing locally.
	AckTimeout time.Duration
	// FailAfter is the silence that declares the pair failed over
	// (default 10s). Must exceed AckTimeout.
	FailAfter time.Duration
	// MaxLagBytes bounds the unacked backlog a degraded pair may carry
	// before failing over (default 64 MiB).
	MaxLagBytes int64
	// Clock injects time (default the wall clock).
	Clock clock.Clock
	// OnTransition, when set, observes every state change. Called under
	// the monitor's mutex: must not call back into monitor or shipper.
	OnTransition func(from, to State)
}

func (c *MonitorConfig) withDefaults() {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 500 * time.Millisecond
	}
	if c.FailAfter <= c.AckTimeout {
		c.FailAfter = 10 * time.Second
		if c.FailAfter <= c.AckTimeout {
			c.FailAfter = 20 * c.AckTimeout
		}
	}
	if c.MaxLagBytes <= 0 {
		c.MaxLagBytes = 64 << 20
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
}

// Monitor is the failure-detector state machine. Safe for concurrent
// use.
type Monitor struct {
	mu      sync.Mutex
	cfg     MonitorConfig
	state   State
	lastAck time.Time
	lag     int64
}

// NewMonitor builds a monitor starting in StateSync with the ack clock
// running from now.
func NewMonitor(cfg MonitorConfig) *Monitor {
	cfg.withDefaults()
	return &Monitor{cfg: cfg, lastAck: cfg.Clock.Now()}
}

// ObserveShip records bytes shipped but not yet acknowledged, and
// re-evaluates (a blown lag bound fails the pair over even while acks
// trickle). Returns the state after the observation.
func (m *Monitor) ObserveShip(bytes int64) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lag += bytes
	return m.evalLocked(m.cfg.Clock.Now())
}

// ObserveAck records an acknowledgment that leaves lag unacked bytes
// outstanding. An ack heals degraded back to sync when the lag is back
// inside bounds; nothing heals failed (Reset does).
func (m *Monitor) ObserveAck(lag int64) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock.Now()
	m.lastAck = now
	m.lag = lag
	if m.state == StateDegraded && m.lag <= m.cfg.MaxLagBytes {
		m.setLocked(StateSync)
	}
	return m.evalLocked(now)
}

// ObserveFailure records a transport failure (dial, write or read
// error): sync degrades immediately rather than waiting out the ack
// timeout.
func (m *Monitor) ObserveFailure() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateSync {
		m.setLocked(StateDegraded)
	}
	return m.evalLocked(m.cfg.Clock.Now())
}

// Tick re-evaluates the timeouts against the clock and returns the
// current state. The shipper calls it on every flush and heartbeat, so
// silence is noticed even with no acks arriving.
func (m *Monitor) Tick() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evalLocked(m.cfg.Clock.Now())
}

// State returns the current state without re-evaluating timeouts.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Lag returns the unacked backlog in bytes.
func (m *Monitor) Lag() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lag
}

// Reset re-arms a failed monitor (a reconnected shipper starting a
// fresh catch-up): back to sync with an empty backlog.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lag = 0
	m.lastAck = m.cfg.Clock.Now()
	if m.state != StateSync {
		m.setLocked(StateSync)
	}
}

// evalLocked applies the timeout and lag rules at instant now.
func (m *Monitor) evalLocked(now time.Time) State {
	if m.state == StateFailed {
		return m.state
	}
	silence := now.Sub(m.lastAck)
	switch {
	case silence >= m.cfg.FailAfter || m.lag > m.cfg.MaxLagBytes:
		m.setLocked(StateFailed)
	case silence >= m.cfg.AckTimeout && m.state == StateSync:
		m.setLocked(StateDegraded)
	}
	return m.state
}

func (m *Monitor) setLocked(to State) {
	from := m.state
	if from == to {
		return
	}
	m.state = to
	if m.cfg.OnTransition != nil {
		m.cfg.OnTransition(from, to)
	}
}
