package sched

import (
	"fmt"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/txn"
)

// MaxOptimalN bounds the exhaustive search of Optimal.
const MaxOptimalN = 7

// Objective selects which side of the paper's bi-criteria optimization
// Optimal treats as primary.
type Objective int

const (
	// MinimizeTotal minimizes total time, breaking ties toward more
	// scheduled transactions — the paper's ultimate aim ("we aim to
	// find a schedule that minimizes the total execution time"). The
	// search costs the residual serially (not spread over k threads):
	// residual transactions conflict by construction, so the
	// conservative model is full serialization — without this, an
	// all-residual schedule would look free and the objective would
	// degenerate (which is why the paper states objective (b)).
	MinimizeTotal Objective = iota
	// MaximizeMerged maximizes the number of scheduled transactions
	// first (objective (b)), breaking ties by total time.
	MaximizeMerged
)

// Optimal computes an exact optimum of the transaction scheduling
// problem by exhaustive search over every assignment of transactions
// to queues or residual AND every per-queue ordering, under the given
// objective.
//
// The problem is NP-complete (Theorem 1); this search is factorial and
// refuses workloads larger than MaxOptimalN. It exists to measure how
// close the TSgen heuristic gets to the optimum on small instances
// (see TestTSgenVsOptimal), not for production use.
func Optimal(w txn.Workload, g *conflict.Graph, est estimator.Estimator, k int, obj Objective) (*Schedule, error) {
	if len(w) > MaxOptimalN {
		return nil, fmt.Errorf("sched: Optimal limited to %d transactions (NP-complete search), got %d",
			MaxOptimalN, len(w))
	}
	n := len(w)
	cost := make([]clock.Units, n)
	for _, t := range w {
		c := est.Estimate(t)
		if c <= 0 {
			c = 1
		}
		cost[t.ID] = c
	}

	o := &optSearch{
		w: w, g: g, cost: cost, k: k, obj: obj,
		cur: optState{
			queues: make([][]*txn.Transaction, k),
			qEnd:   make([]clock.Units, k),
			place:  make([]Placement, n),
			state:  make([]int8, n),
		},
		bestMerged: -1,
	}
	o.search(0)

	s := &Schedule{
		Queues:   o.bestQueues,
		Residual: o.bestResidual,
		place:    o.bestPlace,
		cost:     cost,
		graph:    g,
	}
	s.Stats = Stats{InputResidual: n, Merged: o.bestMerged}
	return s, nil
}

const (
	optUnplaced int8 = iota
	optQueued
	optResidual
)

type optState struct {
	queues   [][]*txn.Transaction
	residual []*txn.Transaction
	qEnd     []clock.Units
	place    []Placement
	state    []int8
	resTotal clock.Units
}

type optSearch struct {
	w    txn.Workload
	g    *conflict.Graph
	cost []clock.Units
	k    int
	obj  Objective
	cur  optState

	bestMerged   int
	bestTotal    clock.Units
	bestQueues   [][]*txn.Transaction
	bestResidual []*txn.Transaction
	bestPlace    []Placement
}

// totalTime is the search's cost model: queue makespan plus the
// residual costed serially (see MinimizeTotal).
func (o *optSearch) totalTime() clock.Units {
	var makespan clock.Units
	for _, e := range o.cur.qEnd {
		if e > makespan {
			makespan = e
		}
	}
	return makespan + o.cur.resTotal
}

func (o *optSearch) snapshot(merged int) {
	o.bestMerged = merged
	o.bestTotal = o.totalTime()
	o.bestQueues = make([][]*txn.Transaction, o.k)
	for i := range o.cur.queues {
		o.bestQueues[i] = append([]*txn.Transaction(nil), o.cur.queues[i]...)
	}
	o.bestResidual = append([]*txn.Transaction(nil), o.cur.residual...)
	o.bestPlace = append([]Placement(nil), o.cur.place...)
}

// search places one more transaction (any unplaced one — covering all
// queue orderings) or finishes.
func (o *optSearch) search(placed int) {
	if placed == len(o.w) {
		merged := placed - len(o.cur.residual)
		better := false
		switch o.obj {
		case MaximizeMerged:
			better = merged > o.bestMerged ||
				(merged == o.bestMerged && o.totalTime() < o.bestTotal)
		default: // MinimizeTotal
			better = o.bestMerged < 0 || o.totalTime() < o.bestTotal ||
				(o.totalTime() == o.bestTotal && merged > o.bestMerged)
		}
		if better {
			o.snapshot(merged)
		}
		return
	}
	for _, t := range o.w {
		if o.cur.state[t.ID] != optUnplaced {
			continue
		}
		// Queue placements. Symmetry pruning: only allow queue qi if
		// every earlier queue is non-empty (queues are interchangeable
		// until first used).
		for qi := 0; qi < o.k; qi++ {
			if qi > 0 && len(o.cur.queues[qi-1]) == 0 {
				break
			}
			p := Placement{Queue: qi, Start: o.cur.qEnd[qi], End: o.cur.qEnd[qi] + o.cost[t.ID]}
			if !o.rcFree(t.ID, p) {
				continue
			}
			o.cur.queues[qi] = append(o.cur.queues[qi], t)
			o.cur.qEnd[qi] = p.End
			o.cur.place[t.ID] = p
			o.cur.state[t.ID] = optQueued
			o.search(placed + 1)
			o.cur.state[t.ID] = optUnplaced
			o.cur.queues[qi] = o.cur.queues[qi][:len(o.cur.queues[qi])-1]
			o.cur.qEnd[qi] = p.Start
		}
		// Residual placement.
		o.cur.residual = append(o.cur.residual, t)
		o.cur.resTotal += o.cost[t.ID]
		o.cur.place[t.ID] = Placement{Queue: -1}
		o.cur.state[t.ID] = optResidual
		o.search(placed + 1)
		o.cur.state[t.ID] = optUnplaced
		o.cur.resTotal -= o.cost[t.ID]
		o.cur.residual = o.cur.residual[:len(o.cur.residual)-1]
	}
}

func (o *optSearch) rcFree(id int, p Placement) bool {
	for _, nb := range o.g.Neighbors(id) {
		if o.cur.state[nb] != optQueued {
			continue
		}
		np := o.cur.place[nb]
		if np.Queue != p.Queue && p.Overlaps(np) {
			return false
		}
	}
	return true
}
