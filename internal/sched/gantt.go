package sched

import (
	"fmt"
	"io"
	"strings"
)

// Gantt renders the schedule as an ASCII chart, one row per queue,
// time flowing right, width columns wide. Each transaction occupies
// its scheduled interval; cells show the transaction id (mod 10) so
// adjacent transactions are distinguishable; idle gaps (dependency
// waits) render as dots.
//
// The render exists for the tskd-sched CLI and for debugging schedules
// by eye — Example 1 at width 28 looks like:
//
//	Q1 |111222222333334444444444444|
//	Q2 |55555555666666666666.......|
func (s *Schedule) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	span := float64(s.Makespan())
	if span <= 0 {
		fmt.Fprintln(w, "(empty schedule)")
		return
	}
	scale := float64(width) / span
	for qi, q := range s.Queues {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, t := range q {
			p := s.place[t.ID]
			lo := int(float64(p.Start) * scale)
			hi := int(float64(p.End) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			ch := byte('0' + t.ID%10)
			for i := lo; i < hi; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(w, "Q%-2d |%s|\n", qi+1, row)
	}
	if n := len(s.Residual); n > 0 {
		fmt.Fprintf(w, "R_s  %d transactions (executed after the queues, with CC)\n", n)
	}
	fmt.Fprintf(w, "     %s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "     0%*v\n", width-1, s.Makespan())
}
