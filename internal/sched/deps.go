package sched

import (
	"fmt"
	"sort"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/txn"
)

// Deps is a set of application-specified transaction dependencies:
// each edge (Before, After) requires Before's execution to complete
// before After starts. The paper notes (Section 3, Limitations) that
// unlike CC and TsDEFER, "transaction partitioners and TsPAR can
// readily incorporate transaction dependencies by enforcing
// dependencies in partitions and during scheduling" — this file is
// that extension.
type Deps struct {
	edges map[int][]int32 // after -> befores
	n     int
}

// NewDeps returns an empty dependency set.
func NewDeps() *Deps { return &Deps{edges: make(map[int][]int32)} }

// Add requires before to complete before after starts.
func (d *Deps) Add(before, after int) {
	d.edges[after] = append(d.edges[after], int32(before))
	d.n++
}

// Len returns the number of dependency edges.
func (d *Deps) Len() int { return d.n }

// Before returns the IDs that must complete before id starts.
func (d *Deps) Before(id int) []int32 {
	if d == nil {
		return nil
	}
	return d.edges[id]
}

// TopoOrder returns w sorted consistently with the dependencies
// (Kahn's algorithm), or an error naming a transaction on a dependency
// cycle. Ties (independent transactions) keep workload order, so the
// result is deterministic.
func (d *Deps) TopoOrder(w txn.Workload) ([]*txn.Transaction, error) {
	indeg := make(map[int]int, len(w))
	dependents := make(map[int][]int, len(w))
	for _, t := range w {
		indeg[t.ID] += 0
	}
	for after, befores := range d.edges {
		for _, b := range befores {
			indeg[after]++
			dependents[int(b)] = append(dependents[int(b)], after)
		}
	}
	byID := w.ByID()
	// Ready set kept sorted by workload position for determinism.
	pos := make(map[int]int, len(w))
	for i, t := range w {
		pos[t.ID] = i
	}
	var ready []int
	for _, t := range w {
		if indeg[t.ID] == 0 {
			ready = append(ready, t.ID)
		}
	}
	out := make([]*txn.Transaction, 0, len(w))
	for len(ready) > 0 {
		// Pop the earliest-position ready transaction.
		best := 0
		for i := 1; i < len(ready); i++ {
			if pos[ready[i]] < pos[ready[best]] {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		out = append(out, byID[id])
		deps := dependents[id]
		sort.Ints(deps)
		for _, a := range deps {
			indeg[a]--
			if indeg[a] == 0 {
				ready = append(ready, a)
			}
		}
	}
	if len(out) != len(w) {
		for _, t := range w {
			if indeg[t.ID] > 0 {
				return nil, fmt.Errorf("sched: dependency cycle through transaction %d", t.ID)
			}
		}
		return nil, fmt.Errorf("sched: dependency cycle")
	}
	return out, nil
}

// GenerateWithDeps computes a schedule for w from scratch that
// respects deps: transactions are placed in a topological order, each
// on the least-loaded queue whose cursor can host it, starting no
// earlier than the completion of every dependency (queues may carry
// idle gaps to wait for cross-queue dependencies). A transaction that
// cannot be placed RC-free moves to R_s together with — by
// construction, since descendants are processed later and check their
// dependencies — every transaction that depends on it.
//
// The resulting queue positions are globally topologically consistent,
// which is exactly what the engine's execution-time dependency waits
// require for deadlock freedom.
func GenerateWithDeps(w txn.Workload, g *conflict.Graph, est estimator.Estimator, k int, deps *Deps, opt Options) (*Schedule, error) {
	order, err := deps.TopoOrder(w)
	if err != nil {
		return nil, err
	}
	n := len(w)
	s := &Schedule{
		Queues: make([][]*txn.Transaction, k),
		place:  make([]Placement, n),
		cost:   make([]clock.Units, n),
		graph:  g,
	}
	for _, t := range w {
		c := est.Estimate(t)
		if c <= 0 {
			c = 1
		}
		s.cost[t.ID] = c
	}
	s.Stats.InputResidual = n

	qEnd := make([]clock.Units, k)
	queuedIn := make([]int, n)
	inRs := make([]bool, n)
	for i := range queuedIn {
		queuedIn[i] = -1
	}

	for _, t := range order {
		// Earliest start: after every dependency completes. A residual
		// dependency forces this transaction to the residual too (the
		// residual phase runs after all queues).
		var after clock.Units
		forced := false
		for _, b := range deps.Before(t.ID) {
			if inRs[b] {
				forced = true
				break
			}
			if bp := s.place[b]; bp.Queue >= 0 && bp.End > after {
				after = bp.End
			}
		}
		placed := false
		if !forced && k > 0 {
			// Try queues from least-loaded upward.
			idx := make([]int, k)
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return qEnd[idx[a]] < qEnd[idx[b]] })
			for _, qi := range idx {
				start := qEnd[qi]
				if after > start {
					start = after
				}
				tentative := Placement{Queue: qi, Start: start, End: start + s.cost[t.ID]}
				if s.ckRCF(t.ID, tentative, queuedIn, opt.CkRCF) {
					s.place[t.ID] = tentative
					s.Queues[qi] = append(s.Queues[qi], t)
					qEnd[qi] = tentative.End
					queuedIn[t.ID] = qi
					s.Stats.Merged++
					placed = true
					break
				}
			}
		}
		if !placed {
			inRs[t.ID] = true
			s.Residual = append(s.Residual, t)
			s.place[t.ID] = Placement{Queue: -1}
		}
	}
	return s, nil
}

// ValidateDeps checks that the schedule respects every dependency:
// either both endpoints are queued with tc(before) <= ts(after), or
// the dependent is residual (the residual phase runs after all
// queues) with the dependency queued or residual-ordered earlier.
func (s *Schedule) ValidateDeps(deps *Deps, w txn.Workload) error {
	resPos := make(map[int]int, len(s.Residual))
	for i, t := range s.Residual {
		resPos[t.ID] = i
	}
	for _, t := range w {
		for _, b := range deps.Before(t.ID) {
			bp, tp := s.place[b], s.place[t.ID]
			switch {
			case tp.Queue >= 0 && bp.Queue >= 0:
				if bp.End > tp.Start {
					return fmt.Errorf("sched: dependency %d -> %d violated: before ends %v, after starts %v",
						b, t.ID, bp.End, tp.Start)
				}
			case tp.Queue >= 0 && bp.Queue < 0:
				return fmt.Errorf("sched: dependency %d -> %d violated: before is residual but after is queued", b, t.ID)
			case tp.Queue < 0 && bp.Queue < 0:
				if resPos[int(b)] > resPos[t.ID] {
					return fmt.Errorf("sched: dependency %d -> %d violated: residual order", b, t.ID)
				}
			}
		}
	}
	return nil
}
