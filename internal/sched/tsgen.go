package sched

import (
	"math/rand"
	"sort"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/partition"
	"tskd/internal/txn"
)

// ResidualOrder selects the ordering R̂ of the residual set TSgen
// iterates over (line 4 of Algorithm 1).
type ResidualOrder int

const (
	// OrderRandom is the paper's default: a random permutation.
	OrderRandom ResidualOrder = iota
	// OrderLongestFirst schedules costly transactions first, giving
	// them first pick of queue slots (ablation).
	OrderLongestFirst
	// OrderMostConflictingFirst schedules high-degree transactions
	// first (ablation).
	OrderMostConflictingFirst
)

// CkRCFMode selects the runtime-conflict check used when merging a
// residual transaction (procedure ckRCF).
type CkRCFMode int

const (
	// CkExact tests exact interval overlap against every queued
	// conflicting transaction.
	CkExact CkRCFMode = iota
	// CkTail conservatively rejects the merge if any conflicting
	// transaction in another queue ends after the candidate's start —
	// cheaper, never admits a runtime conflict CkExact would reject
	// (ablation).
	CkTail
)

// Options configures TSgen.
type Options struct {
	// Order is the residual iteration order (default OrderRandom).
	Order ResidualOrder
	// CkRCF is the runtime-conflict check variant (default CkExact).
	CkRCF CkRCFMode
	// Seed drives the random residual order.
	Seed int64
}

// transaction placement state during TSgen
const (
	stUnseen  = -1 // residual, not yet examined
	stQueued  = -2 // sentinel base; >=0 means "still in partition i"
	stInRs    = -3 // moved to R_s
	stPending = -4
)

// Generate is algorithm TSgen (Algorithm 1): it refines the partition
// plan into a schedule for w over plan.K() threads, reusing the
// conflict graph g built by the partitioner and the cost estimates of
// est.
//
// The plan's CC-free partitions must be pairwise conflict-free (as
// produced natively by Strife, or via partition.ExtractResidual for
// Schism/Horticulture); TSgen's RC-freedom invariant builds on that.
//
// Scheduling from scratch (Section 4, "Scheduling without input
// partition") is the special case of a plan whose partitions are empty
// and whose residual is all of w — see GenerateFromScratch.
func Generate(w txn.Workload, plan *partition.Plan, g *conflict.Graph, est estimator.Estimator, opt Options) *Schedule {
	k := plan.K()
	n := len(w)
	s := &Schedule{
		Queues: make([][]*txn.Transaction, k),
		place:  make([]Placement, n),
		cost:   make([]clock.Units, n),
		graph:  g,
	}
	// Estimate time(T) for every transaction once.
	for _, t := range w {
		c := est.Estimate(t)
		if c <= 0 {
			c = 1 // a zero-cost transaction would make intervals degenerate
		}
		s.cost[t.ID] = c
	}

	// State per transaction: >=0 partition index; stUnseen residual
	// not yet examined; stInRs in R_s. Queue placement is tracked in
	// s.place with queuedIn[id] >= 0.
	state := make([]int, n)
	queuedIn := make([]int, n)
	for i := range state {
		state[i] = stPending
		queuedIn[i] = -1
	}

	// Partition bookkeeping: remaining members (in order) and loads.
	// load_i = total estimated cost of everything destined for thread
	// i (still-in-partition + already-queued), per line 2.
	load := make([]clock.Units, k)
	qEnd := make([]clock.Units, k) // interval cursor of queue i
	for i, part := range plan.Parts {
		for _, t := range part {
			state[t.ID] = i
			load[i] += s.cost[t.ID]
		}
	}
	for _, t := range plan.Residual {
		state[t.ID] = stUnseen
	}
	s.Stats.InputResidual = len(plan.Residual)

	// Degenerate case: with no threads everything stays residual.
	if k == 0 {
		for _, t := range plan.Residual {
			s.Residual = append(s.Residual, t)
			s.place[t.ID] = Placement{Queue: -1}
		}
		return s
	}

	enqueue := func(t *txn.Transaction, qi int) {
		s.place[t.ID] = Placement{Queue: qi, Start: qEnd[qi], End: qEnd[qi] + s.cost[t.ID]}
		s.Queues[qi] = append(s.Queues[qi], t)
		qEnd[qi] += s.cost[t.ID]
		queuedIn[t.ID] = qi
	}

	byID := w.ByID()

	// Residual iteration order R̂ (line 4).
	order := append([]*txn.Transaction(nil), plan.Residual...)
	switch opt.Order {
	case OrderLongestFirst:
		sort.SliceStable(order, func(a, b int) bool {
			return s.cost[order[a].ID] > s.cost[order[b].ID]
		})
	case OrderMostConflictingFirst:
		sort.SliceStable(order, func(a, b int) bool {
			return g.Degree(order[a].ID) > g.Degree(order[b].ID)
		})
	default:
		rng := rand.New(rand.NewSource(opt.Seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	for _, tStar := range order {
		// Line 6: pick the least-loaded thread l.
		l := 0
		for i := 1; i < k; i++ {
			if load[i] < load[l] {
				l = i
			}
		}
		// Lines 7-9: move every partition transaction in conflict with
		// T* into its queue, pinning its scheduled runtime before T*.
		for _, nb := range g.Neighbors(tStar.ID) {
			if pi := state[nb]; pi >= 0 {
				state[nb] = stQueued
				enqueue(byID[int(nb)], pi)
				s.Stats.Moved++
			}
		}
		// Line 10: ckRCF — would appending T* to Q_l conflict at
		// runtime with any queued transaction in another queue?
		tentative := Placement{Queue: l, Start: qEnd[l], End: qEnd[l] + s.cost[tStar.ID]}
		if s.ckRCF(tStar.ID, tentative, queuedIn, opt.CkRCF) {
			state[tStar.ID] = stQueued
			enqueue(tStar, l)
			load[l] += s.cost[tStar.ID]
			s.Stats.Merged++
		} else {
			state[tStar.ID] = stInRs
			s.Residual = append(s.Residual, tStar)
			s.place[tStar.ID] = Placement{Queue: -1}
		}
	}

	// Lines 13-14: append the remaining partition transactions to
	// their queues, in partition order.
	for i, part := range plan.Parts {
		for _, t := range part {
			if state[t.ID] == i {
				state[t.ID] = stQueued
				enqueue(t, i)
			}
		}
	}
	return s
}

// ckRCF reports whether placing the candidate at the tentative
// placement keeps all queues pairwise RC-free. It inspects only the
// candidate's conflict-graph neighborhood: a runtime conflict needs a
// conventional conflict first.
func (s *Schedule) ckRCF(id int, tentative Placement, queuedIn []int, mode CkRCFMode) bool {
	for _, nb := range s.graph.Neighbors(id) {
		qi := queuedIn[nb]
		if qi < 0 || qi == tentative.Queue {
			continue
		}
		np := s.place[nb]
		switch mode {
		case CkTail:
			if np.End > tentative.Start {
				return false
			}
		default:
			if tentative.Overlaps(np) {
				return false
			}
		}
	}
	return true
}

// GenerateFromScratch computes a schedule for w without an input
// partition plan: all of w is treated as residual over empty CC-free
// partitions, exactly as Section 4 describes for TSKD[0].
func GenerateFromScratch(w txn.Workload, g *conflict.Graph, est estimator.Estimator, k int, opt Options) *Schedule {
	plan := partition.NewPlan(k)
	plan.Residual = append(plan.Residual, w...)
	return Generate(w, plan, g, est, opt)
}
