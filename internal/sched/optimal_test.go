package sched

import (
	"testing"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/txn"
)

func TestOptimalRefusesLargeInput(t *testing.T) {
	w := make(txn.Workload, MaxOptimalN+1)
	for i := range w {
		w[i] = txn.New(i)
	}
	g := conflict.Build(w, conflict.Serializability)
	if _, err := Optimal(w, g, opCount(), 2, MinimizeTotal); err == nil {
		t.Error("oversized input accepted")
	}
}

func TestOptimalExample1(t *testing.T) {
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	s, err := Optimal(w, g, opCount(), 2, MaximizeMerged)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(w); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
	// The optimum schedules everything (Example 3 proves a full
	// schedule exists) and cannot be worse than TSgen's 14.
	if len(s.Residual) != 0 {
		t.Errorf("optimal left %d residual", len(s.Residual))
	}
	if s.TotalTime() > 14 {
		t.Errorf("optimal total %v, TSgen achieves 14", s.TotalTime())
	}
	t.Logf("optimal: makespan %v vs TSgen's 14", s.Makespan())
}

func TestOptimalConflictClique(t *testing.T) {
	// Three mutually conflicting unit transactions over 2 queues: at
	// most ... actually all three can be scheduled on ONE queue
	// (serial), so the optimum merges all with makespan 3; or spread
	// with non-overlapping intervals. Either way residual is empty.
	w := txn.Workload{
		txn.MustParse(0, "W[x1]"),
		txn.MustParse(1, "W[x1]"),
		txn.MustParse(2, "W[x1]"),
	}
	g := conflict.Build(w, conflict.Serializability)
	s, err := Optimal(w, g, opCount(), 2, MaximizeMerged)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Residual) != 0 {
		t.Errorf("clique not fully scheduled: %d residual", len(s.Residual))
	}
	if err := s.Validate(w); err != nil {
		t.Fatal(err)
	}
}

// TSgen against the exact optimum on random small instances: never
// schedules more than the optimum (sanity) and stays within a small
// constant factor on total time.
func TestTSgenVsOptimal(t *testing.T) {
	worst := 0.0
	for seed := int64(0); seed < 12; seed++ {
		w := randomWorkload(6, 6, 3, 0.8, seed)
		g := conflict.Build(w, conflict.Serializability)
		optM, err := Optimal(w, g, opCount(), 2, MaximizeMerged)
		if err != nil {
			t.Fatal(err)
		}
		if err := optM.Validate(w); err != nil {
			t.Fatalf("seed %d: optimal (merged) invalid: %v", seed, err)
		}
		optT, err := Optimal(w, g, opCount(), 2, MinimizeTotal)
		if err != nil {
			t.Fatal(err)
		}
		if err := optT.Validate(w); err != nil {
			t.Fatalf("seed %d: optimal (total) invalid: %v", seed, err)
		}
		heur := GenerateFromScratch(w, g, opCount(), 2, Options{Seed: seed})
		if heur.Stats.Merged > optM.Stats.Merged {
			t.Errorf("seed %d: TSgen merged %d > optimal %d — optimum search is broken",
				seed, heur.Stats.Merged, optM.Stats.Merged)
		}
		// Compare under the search's conservative cost model
		// (makespan + serial residual).
		serialTotal := func(s *Schedule) clock.Units { return s.Makespan() + s.ResidualUnits() }
		if serialTotal(optT) > serialTotal(heur) {
			t.Errorf("seed %d: time-optimal total %v worse than heuristic %v",
				seed, serialTotal(optT), serialTotal(heur))
		}
		if serialTotal(optT) > 0 {
			r := float64(serialTotal(heur)) / float64(serialTotal(optT))
			if r > worst {
				worst = r
			}
		}
	}
	t.Logf("worst TSgen/optimal total-time ratio over instances: %.2f", worst)
	if worst > 3.0 {
		t.Errorf("TSgen strays %.2fx from optimal on tiny instances", worst)
	}
}

func TestOptimalCostTiebreak(t *testing.T) {
	// Two conflict-free transactions of different lengths over 2
	// queues: the optimum puts them on different queues (makespan =
	// max cost), not on one (sum).
	w := txn.Workload{
		txn.MustParse(0, "W[x1]W[x1]W[x1]W[x1]"),
		txn.MustParse(1, "W[x2]"),
	}
	g := conflict.Build(w, conflict.Serializability)
	s, err := Optimal(w, g, opCount(), 2, MinimizeTotal)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != clock.Units(4) {
		t.Errorf("makespan %v, want 4 (parallel placement)", got)
	}
}
