package sched

import (
	"fmt"
	"testing"

	"tskd/internal/conflict"
	"tskd/internal/partition"
)

// BenchmarkTSgen measures the scheduler itself — the overhead TsPAR
// adds to a partitioner (the paper reports < 5% of partitioning time).
func BenchmarkTSgen(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := randomWorkload(n, n/2, 8, 0.8, 1)
			g := conflict.Build(w, conflict.Serializability)
			plan := partition.NewStrife(1).Partition(w, g, 8)
			est := opCount()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Generate(w, plan, g, est, Options{Seed: int64(i)})
			}
		})
	}
}

func BenchmarkTSgenFromScratch(b *testing.B) {
	w := randomWorkload(5000, 2500, 8, 0.8, 1)
	g := conflict.Build(w, conflict.Serializability)
	est := opCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateFromScratch(w, g, est, 8, Options{Seed: int64(i)})
	}
}

func BenchmarkCkRCFModes(b *testing.B) {
	w := randomWorkload(2000, 500, 8, 0.9, 1)
	g := conflict.Build(w, conflict.Serializability)
	est := opCount()
	for _, m := range []struct {
		name string
		mode CkRCFMode
	}{{"exact", CkExact}, {"tail", CkTail}} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GenerateFromScratch(w, g, est, 8, Options{CkRCF: m.mode, Seed: int64(i)})
			}
		})
	}
}
