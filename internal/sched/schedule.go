// Package sched implements the paper's core contribution: transaction
// schedules, runtime conflicts, and the TSgen scheduling algorithm
// (Section 4) that refines a partition plan (P_1..P_k, R) into k
// runtime-conflict-free queues (Q_1..Q_k) plus a residual set R_s.
//
// A schedule (f, ≺) assigns each transaction to a queue and totally
// orders each queue. The scheduled start time ts(T) of a queued
// transaction is the sum of the estimated costs of its predecessors in
// the queue; its scheduled runtime is [ts(T), ts(T)+time(T)). Two
// transactions are in conflict *at runtime* iff they are conventionally
// in conflict AND their scheduled runtimes overlap. Queues are pairwise
// RC-free, so they can execute concurrently — even without CC if the
// estimates are exact (Example 1 of the paper).
package sched

import (
	"fmt"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/txn"
)

// Placement records where the schedule put a transaction and its
// scheduled runtime interval (half-open, in cost units).
type Placement struct {
	// Queue is the queue index, or -1 for residual transactions.
	Queue int
	// Start is the scheduled start time ts(T).
	Start clock.Units
	// End is the scheduled completion time tc(T) = ts(T) + time(T).
	End clock.Units
}

// Overlaps reports whether two scheduled runtimes intersect.
func (p Placement) Overlaps(q Placement) bool {
	return p.Start < q.End && q.Start < p.End
}

// Stats summarizes a TSgen run.
type Stats struct {
	// InputResidual is |R|, the residual size of the input plan.
	InputResidual int
	// Merged is the number of residual transactions scheduled into
	// RC-free queues.
	Merged int
	// Moved is the number of partition transactions whose order was
	// pinned early because they conflict with a merged residual.
	Moved int
}

// ScheduledPct returns the paper's s% metric: the percentage of input
// residual transactions that were merged into RC-free queues (Table 2).
func (s Stats) ScheduledPct() float64 {
	if s.InputResidual == 0 {
		return 100
	}
	return 100 * float64(s.Merged) / float64(s.InputResidual)
}

// Schedule is a transaction schedule (f, ≺): k ordered RC-free queues
// and a residual set R_s, plus the placements and cost estimates the
// schedule was computed with.
type Schedule struct {
	// Queues are the RC-free queues Q_1..Q_k, each in execution order.
	Queues [][]*txn.Transaction
	// Residual is R_s, executed by all threads under CC afterwards.
	Residual []*txn.Transaction
	// Stats reports how much of the input residual was scheduled.
	Stats Stats

	place []Placement   // indexed by transaction ID
	cost  []clock.Units // indexed by transaction ID
	graph *conflict.Graph
}

// K returns the number of queues.
func (s *Schedule) K() int { return len(s.Queues) }

// Placement returns the placement of the transaction with the given
// ID. Residual transactions report Queue == -1.
func (s *Schedule) Placement(id int) Placement { return s.place[id] }

// Cost returns the estimate time(T) the schedule used for id.
func (s *Schedule) Cost(id int) clock.Units { return s.cost[id] }

// Graph returns the conflict graph the schedule was computed against.
func (s *Schedule) Graph() *conflict.Graph { return s.graph }

// QueueTime returns the serial execution time of queue i under the
// schedule's estimates.
func (s *Schedule) QueueTime(i int) clock.Units {
	var sum clock.Units
	for _, t := range s.Queues[i] {
		sum += s.cost[t.ID]
	}
	return sum
}

// Makespan returns the concurrent execution time of the k RC-free
// queues: the latest scheduled completion time across queues
// (objective (a) of the scheduling problem). For contiguous schedules
// this equals the maximum serial queue time; schedules with dependency
// gaps count the idle waits too.
func (s *Schedule) Makespan() clock.Units {
	var m clock.Units
	for _, q := range s.Queues {
		if len(q) > 0 {
			if e := s.place[q[len(q)-1].ID].End; e > m {
				m = e
			}
		}
	}
	return m
}

// ResidualUnits returns the total estimated cost of R_s.
func (s *Schedule) ResidualUnits() clock.Units {
	var sum clock.Units
	for _, t := range s.Residual {
		sum += s.cost[t.ID]
	}
	return sum
}

// TotalTime returns the idealized end-to-end execution time: queue
// makespan plus the residual spread perfectly over the k threads. Used
// by the analytic benchmarks to compare schedules without running them.
func (s *Schedule) TotalTime() clock.Units {
	if s.K() == 0 {
		return s.ResidualUnits()
	}
	return s.Makespan() + s.ResidualUnits()/clock.Units(s.K())
}

// Size returns the number of transactions covered by the schedule.
func (s *Schedule) Size() int {
	n := len(s.Residual)
	for _, q := range s.Queues {
		n += len(q)
	}
	return n
}

// Validate checks the schedule invariants:
//
//  1. queues plus residual are a disjoint cover of w;
//  2. per-queue intervals are contiguous and sized by the estimates;
//  3. queues are pairwise RC-free: no two conventionally conflicting
//     transactions in different queues have overlapping intervals.
func (s *Schedule) Validate(w txn.Workload) error {
	seen := make(map[int]bool, len(w))
	count := 0
	mark := func(t *txn.Transaction) error {
		if seen[t.ID] {
			return fmt.Errorf("sched: transaction %d scheduled twice", t.ID)
		}
		seen[t.ID] = true
		count++
		return nil
	}
	for qi, q := range s.Queues {
		var cursor clock.Units
		for pos, t := range q {
			if err := mark(t); err != nil {
				return err
			}
			p := s.place[t.ID]
			if p.Queue != qi {
				return fmt.Errorf("sched: transaction %d in queue %d but placed in %d", t.ID, qi, p.Queue)
			}
			if p.Start < cursor {
				// Gaps are legal (dependency waits); overlaps are not.
				return fmt.Errorf("sched: queue %d pos %d: start %v before cursor %v", qi, pos, p.Start, cursor)
			}
			if p.End != p.Start+s.cost[t.ID] {
				return fmt.Errorf("sched: transaction %d interval [%v,%v) inconsistent with cost %v",
					t.ID, p.Start, p.End, s.cost[t.ID])
			}
			cursor = p.End
		}
	}
	for _, t := range s.Residual {
		if err := mark(t); err != nil {
			return err
		}
		if s.place[t.ID].Queue != -1 {
			return fmt.Errorf("sched: residual transaction %d has queue placement", t.ID)
		}
	}
	if count != len(w) {
		return fmt.Errorf("sched: schedule covers %d of %d transactions", count, len(w))
	}
	// RC-freedom across queues.
	for _, q := range s.Queues {
		for _, t := range q {
			p := s.place[t.ID]
			for _, n := range s.graph.Neighbors(t.ID) {
				np := s.place[n]
				if np.Queue >= 0 && np.Queue != p.Queue && p.Overlaps(np) {
					return fmt.Errorf("sched: runtime conflict between %d (Q%d [%v,%v)) and %d (Q%d [%v,%v))",
						t.ID, p.Queue, p.Start, p.End, n, np.Queue, np.Start, np.End)
				}
			}
		}
	}
	return nil
}

// Refines reports whether every transaction of plan partition i ended
// up in queue i (the schedule refines the partitioning, Section 2.2).
func (s *Schedule) Refines(parts [][]*txn.Transaction) bool {
	for i, part := range parts {
		for _, t := range part {
			if p := s.place[t.ID]; p.Queue != i {
				return false
			}
		}
	}
	return true
}
