package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/partition"
	"tskd/internal/txn"
	"tskd/internal/zipf"
)

// example1 returns the workload of Example 1 (IDs 0..4 for T1..T5).
func example1() txn.Workload {
	return txn.MustParseWorkload(`
		R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]
		R[x1]W[x2]W[x1]
		R[x3]W[x3]R[x2]R[x3]W[x2]
		R[x5]W[x5]R[x6]W[x6]
		R[x1]W[x1]R[x5]W[x5]R[x1]W[x1]
	`)
}

// example1Plan is the partition of Example 1: P1 = {T1,T2,T3},
// P2 = {T4}, R = {T5}.
func example1Plan(w txn.Workload) *partition.Plan {
	p := partition.NewPlan(2)
	p.Parts[0] = []*txn.Transaction{w[0], w[1], w[2]}
	p.Parts[1] = []*txn.Transaction{w[3]}
	p.Residual = []*txn.Transaction{w[4]}
	return p
}

func opCount() estimator.Estimator { return estimator.AccessSetSize{} }

// TestExample4 reproduces Example 4 of the paper exactly: TSgen turns
// the Example 1 partition into Q1 = <T2, T1, T3>, Q2 = <T4, T5>, with
// makespan 14 (down from 20) and an empty residual.
func TestExample4(t *testing.T) {
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	s := Generate(w, example1Plan(w), g, opCount(), Options{})
	if err := s.Validate(w); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	wantQ0 := []int{1, 0, 2} // T2, T1, T3
	wantQ1 := []int{3, 4}    // T4, T5
	for i, want := range [][]int{wantQ0, wantQ1} {
		if len(s.Queues[i]) != len(want) {
			t.Fatalf("queue %d = %v", i, s.Queues[i])
		}
		for j, id := range want {
			if s.Queues[i][j].ID != id {
				t.Errorf("queue %d pos %d = T%d, want T%d", i, j, s.Queues[i][j].ID+1, id+1)
			}
		}
	}
	if len(s.Residual) != 0 {
		t.Errorf("residual = %v, want empty", s.Residual)
	}
	if got := s.Makespan(); got != 14 {
		t.Errorf("makespan = %v, want 14", got)
	}
	if s.Stats.Merged != 1 || s.Stats.InputResidual != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
	if s.Stats.ScheduledPct() != 100 {
		t.Errorf("s%% = %v, want 100", s.Stats.ScheduledPct())
	}
	// T5's scheduled runtime is [4,10) on queue 2: no overlap with T2's
	// [0,3) on queue 1 although they conventionally conflict.
	p5, p2 := s.Placement(4), s.Placement(1)
	if p5.Start != 4 || p5.End != 10 || p2.Start != 0 || p2.End != 3 {
		t.Errorf("placements: T5=%+v T2=%+v", p5, p2)
	}
	if p5.Overlaps(p2) {
		t.Error("T5 and T2 overlap at runtime")
	}
	if !s.Refines(example1Plan(w).Parts) {
		t.Error("schedule does not refine the input partition")
	}
}

func TestScheduleBeatsPartitionMakespan(t *testing.T) {
	// The partitioned execution of Example 1 takes 20 units (queues
	// then residual after both complete); the schedule takes 14.
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	plan := example1Plan(w)
	s := Generate(w, plan, g, opCount(), Options{})
	partitionTime := clock.Units(14 + 6) // max(P1,P2) + T5
	if s.TotalTime() >= partitionTime {
		t.Errorf("scheduled total %v not below partitioned %v", s.TotalTime(), partitionTime)
	}
}

func TestGenerateFromScratchExample1(t *testing.T) {
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	s := GenerateFromScratch(w, g, opCount(), 2, Options{Seed: 3})
	if err := s.Validate(w); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if s.Size() != len(w) {
		t.Errorf("Size = %d", s.Size())
	}
}

func randomWorkload(n, nKeys, opsPer int, theta float64, seed int64) txn.Workload {
	g := zipf.New(uint64(nKeys), theta, seed)
	w := make(txn.Workload, n)
	for i := range w {
		tx := txn.New(i)
		ops := int(g.Uniform(uint64(opsPer))) + 1
		for j := 0; j < ops; j++ {
			k := txn.MakeKey(0, g.Next())
			if g.Float64() < 0.5 {
				tx.R(k)
			} else {
				tx.W(k)
			}
		}
		w[i] = tx
	}
	return w
}

// Property: for arbitrary workloads and Strife plans, TSgen yields a
// valid schedule that refines the plan, and R_s ⊆ R.
func TestGenerateInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomWorkload(120, 60, 6, 0.8, seed)
		g := conflict.Build(w, conflict.Serializability)
		plan := partition.NewStrife(seed).Partition(w, g, 3)
		if err := plan.Validate(w, g); err != nil {
			t.Fatalf("strife plan invalid: %v", err)
		}
		s := Generate(w, plan, g, opCount(), Options{Seed: seed})
		if err := s.Validate(w); err != nil {
			t.Logf("schedule invalid: %v", err)
			return false
		}
		if !s.Refines(plan.Parts) {
			t.Log("does not refine")
			return false
		}
		// R_s must be a subset of the input residual.
		inR := make(map[int]bool)
		for _, tr := range plan.Residual {
			inR[tr.ID] = true
		}
		for _, tr := range s.Residual {
			if !inR[tr.ID] {
				t.Log("R_s contains a non-residual transaction")
				return false
			}
		}
		return s.Stats.Merged+len(s.Residual) == s.Stats.InputResidual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: scheduling from scratch is always valid for every residual
// ordering and ckRCF mode.
func TestFromScratchAllModesQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomWorkload(80, 40, 5, 0.8, seed)
		g := conflict.Build(w, conflict.Serializability)
		for _, ord := range []ResidualOrder{OrderRandom, OrderLongestFirst, OrderMostConflictingFirst} {
			for _, ck := range []CkRCFMode{CkExact, CkTail} {
				s := GenerateFromScratch(w, g, opCount(), 4, Options{Order: ord, CkRCF: ck, Seed: seed})
				if err := s.Validate(w); err != nil {
					t.Logf("order %d ck %d: %v", ord, ck, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// CkTail is conservative: it never schedules more residual
// transactions than CkExact on the same input and order.
func TestCkTailConservative(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w := randomWorkload(150, 50, 6, 0.9, seed)
		g := conflict.Build(w, conflict.Serializability)
		exact := GenerateFromScratch(w, g, opCount(), 3, Options{Order: OrderLongestFirst, CkRCF: CkExact})
		tail := GenerateFromScratch(w, g, opCount(), 3, Options{Order: OrderLongestFirst, CkRCF: CkTail})
		if tail.Stats.Merged > exact.Stats.Merged {
			t.Errorf("seed %d: tail merged %d > exact %d", seed, tail.Stats.Merged, exact.Stats.Merged)
		}
	}
}

// Scheduling balances skewed partitions: a plan with one long partition
// and empty others must end with a far lower makespan than the input.
func TestBalancesSkewedLoad(t *testing.T) {
	// 40 pairwise conflict-free transactions all in P1 (they share no
	// keys), none in P2..P4.
	w := make(txn.Workload, 40)
	for i := range w {
		w[i] = txn.New(i).R(txn.MakeKey(0, uint64(i))).W(txn.MakeKey(0, uint64(i)))
	}
	g := conflict.Build(w, conflict.Serializability)
	plan := partition.NewPlan(4)
	plan.Residual = append(plan.Residual, w...) // schedule from scratch
	s := Generate(w, plan, g, opCount(), Options{})
	if err := s.Validate(w); err != nil {
		t.Fatal(err)
	}
	// Perfectly balanceable: makespan should be ~ total/4.
	total := clock.Units(80)
	if s.Makespan() > total/4+2 {
		t.Errorf("makespan %v, want ≈ %v", s.Makespan(), total/4)
	}
	if len(s.Residual) != 0 {
		t.Errorf("conflict-free residual not fully scheduled: %d left", len(s.Residual))
	}
}

func TestZeroCostFloored(t *testing.T) {
	w := txn.Workload{txn.New(0), txn.New(1)} // no ops → estimate 0
	g := conflict.Build(w, conflict.Serializability)
	s := GenerateFromScratch(w, g, opCount(), 2, Options{})
	if err := s.Validate(w); err != nil {
		t.Fatal(err)
	}
	if s.Cost(0) != 1 || s.Cost(1) != 1 {
		t.Error("zero cost not floored to 1")
	}
}

func TestStatsScheduledPct(t *testing.T) {
	s := Stats{InputResidual: 0}
	if s.ScheduledPct() != 100 {
		t.Error("empty residual should report 100%")
	}
	s = Stats{InputResidual: 4, Merged: 1}
	if s.ScheduledPct() != 25 {
		t.Errorf("s%% = %v, want 25", s.ScheduledPct())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	s := Generate(w, example1Plan(w), g, opCount(), Options{})
	// Corrupt: move T5 to queue 0 creating an overlap with T2.
	s.place[4] = Placement{Queue: 0, Start: 0, End: 6}
	if err := s.Validate(w); err == nil {
		t.Error("corrupted schedule validated")
	}
}

func TestTotalTimeKZero(t *testing.T) {
	w := txn.Workload{txn.MustParse(0, "W[x1]")}
	g := conflict.Build(w, conflict.Serializability)
	plan := partition.NewPlan(0)
	plan.Residual = append(plan.Residual, w...)
	s := Generate(w, plan, g, opCount(), Options{})
	if got := s.TotalTime(); got != 1 {
		t.Errorf("TotalTime = %v, want 1", got)
	}
}

// The scheduled makespan never exceeds serial execution of everything
// on one thread.
func TestMakespanBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomWorkload(60, 30, 5, 0.8, seed)
		g := conflict.Build(w, conflict.Serializability)
		s := GenerateFromScratch(w, g, opCount(), 4, Options{Seed: seed})
		var serial clock.Units
		for _, tx := range w {
			serial += s.Cost(tx.ID)
		}
		return s.Makespan() <= serial && s.TotalTime() <= serial+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGanttRender(t *testing.T) {
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	s := Generate(w, example1Plan(w), g, opCount(), Options{})
	var sb strings.Builder
	s.Gantt(&sb, 28)
	out := sb.String()
	if !strings.Contains(out, "Q1 ") || !strings.Contains(out, "Q2 ") {
		t.Fatalf("missing queue rows:\n%s", out)
	}
	// T2 (id 1) opens queue 1; T4 (id 3) opens queue 2.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "|1") {
		t.Errorf("Q1 should start with T2's digit: %q", lines[0])
	}
	if !strings.Contains(lines[1], "|3") {
		t.Errorf("Q2 should start with T4's digit: %q", lines[1])
	}
	// Empty schedule.
	empty := &Schedule{Queues: make([][]*txn.Transaction, 2), graph: g, place: []Placement{}, cost: []clock.Units{}}
	var sb2 strings.Builder
	empty.Gantt(&sb2, 20)
	if !strings.Contains(sb2.String(), "empty") {
		t.Error("empty schedule not reported")
	}
}
