package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tskd/internal/conflict"
	"tskd/internal/txn"
)

func TestTopoOrderBasic(t *testing.T) {
	w := txn.Workload{txn.New(0), txn.New(1), txn.New(2)}
	d := NewDeps()
	d.Add(2, 0) // 2 before 0
	d.Add(1, 2) // 1 before 2
	order, err := d.TopoOrder(w)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, tx := range order {
		pos[tx.ID] = i
	}
	if !(pos[1] < pos[2] && pos[2] < pos[0]) {
		t.Errorf("topo order wrong: %v", pos)
	}
}

func TestTopoOrderCycle(t *testing.T) {
	w := txn.Workload{txn.New(0), txn.New(1)}
	d := NewDeps()
	d.Add(0, 1)
	d.Add(1, 0)
	if _, err := d.TopoOrder(w); err == nil {
		t.Error("cycle not detected")
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	w := make(txn.Workload, 20)
	for i := range w {
		w[i] = txn.New(i)
	}
	d := NewDeps()
	d.Add(10, 3)
	d.Add(15, 4)
	a, _ := d.TopoOrder(w)
	b, _ := d.TopoOrder(w)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("topo order not deterministic")
		}
	}
}

func TestGenerateWithDepsRespectsDeps(t *testing.T) {
	// A chain of conflicting transactions with dependencies across
	// them: the schedule must keep dependency order and RC-freedom.
	w := make(txn.Workload, 12)
	for i := range w {
		w[i] = txn.New(i).R(txn.MakeKey(0, uint64(i%4))).W(txn.MakeKey(0, uint64(i%4)))
	}
	d := NewDeps()
	d.Add(0, 5)
	d.Add(5, 11)
	d.Add(2, 3)
	g := conflict.Build(w, conflict.Serializability)
	s, err := GenerateWithDeps(w, g, opCount(), 3, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(w); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if err := s.ValidateDeps(d, w); err != nil {
		t.Fatalf("deps violated: %v", err)
	}
	if s.Size() != len(w) {
		t.Errorf("Size = %d", s.Size())
	}
}

func TestGenerateWithDepsCrossQueueGap(t *testing.T) {
	// Two conflict-free transactions with a dependency land on
	// different queues only if the second starts after the first ends.
	w := txn.Workload{
		txn.New(0).W(txn.MakeKey(0, 1)),
		txn.New(1).W(txn.MakeKey(0, 2)),
	}
	d := NewDeps()
	d.Add(0, 1)
	g := conflict.Build(w, conflict.Serializability)
	s, err := GenerateWithDeps(w, g, opCount(), 2, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := s.Placement(0), s.Placement(1)
	if p1.Queue >= 0 && p0.Queue >= 0 && p1.Start < p0.End {
		t.Errorf("dependent starts %v before dependency ends %v", p1.Start, p0.End)
	}
	if err := s.ValidateDeps(d, w); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateWithDepsResidualTaint(t *testing.T) {
	// If a dependency lands in the residual, its dependents must too.
	// Force residual by making every pair conflict and using 1 queue
	// with an artificial rejection: use CkTail with heavy conflicts
	// across 2 queues.
	w := make(txn.Workload, 30)
	for i := range w {
		w[i] = txn.New(i).U(txn.MakeKey(0, 0), 1) // all conflict on one key
	}
	d := NewDeps()
	for i := 1; i < 30; i++ {
		d.Add(i-1, i) // a chain
	}
	g := conflict.Build(w, conflict.Serializability)
	s, err := GenerateWithDeps(w, g, opCount(), 4, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeps(d, w); err != nil {
		t.Fatalf("deps violated: %v", err)
	}
	if err := s.Validate(w); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

// Property: random DAGs over random workloads produce valid,
// dependency-respecting schedules.
func TestGenerateWithDepsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkload(60, 30, 5, 0.8, seed)
		d := NewDeps()
		for i := 0; i < 25; i++ {
			a, b := rng.Intn(len(w)), rng.Intn(len(w))
			if a < b { // forward edges only: guaranteed acyclic
				d.Add(a, b)
			}
		}
		g := conflict.Build(w, conflict.Serializability)
		s, err := GenerateWithDeps(w, g, opCount(), 4, d, Options{Seed: seed})
		if err != nil {
			return false
		}
		return s.Validate(w) == nil && s.ValidateDeps(d, w) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDepsNilSafe(t *testing.T) {
	var d *Deps
	if d.Before(3) != nil {
		t.Error("nil Deps.Before should be empty")
	}
}
