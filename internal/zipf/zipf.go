// Package zipf provides the Zipfian generator used to drive data
// skewness (YCSB θ), runtime-skewness (θ_T) and I/O-latency skewness
// (θ_IO) in the benchmark extensions of the paper (Table 1).
//
// The generator follows the classic Gray et al. "Quickly generating
// billion-record synthetic databases" construction, the same one used
// by the YCSB client and by DBx1000: item ranks are drawn with
// P(rank=i) ∝ 1/i^θ over [0, n). Unlike math/rand's Zipf it supports
// any θ > 0 (including θ < 1, the YCSB range) and is cheap to
// re-parameterize.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator draws Zipf-distributed ranks in [0, n).
//
// A Generator is not safe for concurrent use; give each worker its own
// (the engine does).
type Generator struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	alpha, zetan, eta float64
	zeta2             float64
}

// New returns a generator over [0, n) with skew theta, seeded
// deterministically from seed. It panics if n == 0 or theta <= 0 or
// theta == 1 (the harmonic exponent must not be exactly 1 for this
// construction; use 0.99 or 1.01).
func New(n uint64, theta float64, seed int64) *Generator {
	if n == 0 {
		panic("zipf: n must be positive")
	}
	if theta <= 0 || theta == 1 {
		panic(fmt.Sprintf("zipf: unsupported theta %v", theta))
	}
	g := &Generator{
		rng:   rand.New(rand.NewSource(seed)),
		n:     n,
		theta: theta,
	}
	g.zeta2 = zeta(2, theta)
	g.zetan = zeta(n, theta)
	g.alpha = 1 / (1 - theta)
	g.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - g.zeta2/g.zetan)
	return g
}

// zeta computes the generalized harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank in [0, n). Rank 0 is the hottest item.
func (g *Generator) Next() uint64 {
	u := g.rng.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	r := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if r >= g.n {
		r = g.n - 1
	}
	return r
}

// N returns the size of the rank space.
func (g *Generator) N() uint64 { return g.n }

// Theta returns the skew parameter.
func (g *Generator) Theta() float64 { return g.theta }

// NextRange maps a draw into [lo, hi] (inclusive), keeping rank 0 at
// lo. It panics if hi < lo.
func (g *Generator) NextRange(lo, hi uint64) uint64 {
	if hi < lo {
		panic("zipf: hi < lo")
	}
	span := hi - lo + 1
	r := g.Next()
	if g.n > span {
		r %= span
	}
	return lo + r
}

// Uniform draws a uniformly distributed value in [0, n) from the same
// underlying stream; handy for workload generators that mix skewed and
// uniform choices without carrying two RNGs.
func (g *Generator) Uniform(n uint64) uint64 {
	if n == 0 {
		panic("zipf: Uniform(0)")
	}
	return uint64(g.rng.Int63n(int64(n)))
}

// Float64 exposes a uniform [0,1) draw from the same stream.
func (g *Generator) Float64() float64 { return g.rng.Float64() }
