package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInRange(t *testing.T) {
	g := New(1000, 0.8, 42)
	for i := 0; i < 100000; i++ {
		if r := g.Next(); r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestInRangeQuick(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw)%1000 + 1
		g := New(n, 0.8, seed)
		for i := 0; i < 100; i++ {
			if g.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, b := New(500, 0.9, 7), New(500, 0.9, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(500, 0.9, 8)
	same := true
	a2 := New(500, 0.9, 7)
	for i := 0; i < 100; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// Higher theta must concentrate more mass on the hottest ranks.
func TestSkewMonotonicInTheta(t *testing.T) {
	hotShare := func(theta float64) float64 {
		g := New(10000, theta, 1)
		const draws = 200000
		hot := 0
		for i := 0; i < draws; i++ {
			if g.Next() < 100 { // hottest 1%
				hot++
			}
		}
		return float64(hot) / draws
	}
	s70, s90 := hotShare(0.7), hotShare(0.9)
	if s90 <= s70 {
		t.Errorf("theta=0.9 hot share %.3f not above theta=0.7 %.3f", s90, s70)
	}
	if s70 < 0.2 {
		t.Errorf("theta=0.7 hot share %.3f implausibly low for zipf", s70)
	}
}

// The empirical frequency of rank 0 should approximate 1/zeta(n,theta).
func TestRankZeroFrequency(t *testing.T) {
	const n, theta = 1000, 0.8
	g := New(n, theta, 3)
	const draws = 500000
	zero := 0
	for i := 0; i < draws; i++ {
		if g.Next() == 0 {
			zero++
		}
	}
	want := 1 / zeta(n, theta)
	got := float64(zero) / draws
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(rank 0) = %.4f, want ≈ %.4f", got, want)
	}
}

func TestNextRange(t *testing.T) {
	g := New(100, 0.8, 5)
	for i := 0; i < 10000; i++ {
		v := g.NextRange(10, 19)
		if v < 10 || v > 19 {
			t.Fatalf("NextRange out of [10,19]: %d", v)
		}
	}
}

func TestUniform(t *testing.T) {
	g := New(10, 0.8, 5)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(5)
		if v >= 5 {
			t.Fatalf("Uniform out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Uniform over 5 values hit only %d", len(seen))
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, 0.8, 1) },
		func() { New(10, 0, 1) },
		func() { New(10, 1, 1) },
		func() { New(10, -0.5, 1) },
		func() { New(10, 0.8, 1).NextRange(5, 4) },
		func() { New(10, 0.8, 1).Uniform(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	g := New(123, 0.85, 1)
	if g.N() != 123 || g.Theta() != 0.85 {
		t.Errorf("accessors wrong: N=%d Theta=%v", g.N(), g.Theta())
	}
}
