// Package engine is the transaction execution engine: a DBx1000-style
// multi-worker in-memory executor with thread-local transaction
// buffers, pluggable CC protocols (internal/cc), optional proactive
// deferment (internal/deferment), and retry-until-commit semantics.
//
// Execution is organized in phases: each phase assigns every worker an
// ordered list of transactions, workers drain their lists concurrently,
// and all workers synchronize before the next phase starts. That is
// exactly the paper's deployment:
//
//   - partitioner baseline: phase 1 = partitions, phase 2 = residual;
//   - TSKD: phase 1 = RC-free queues (CC + TsDEFER guarding against
//     estimate error), phase 2 = residual R_s with CC + TsDEFER;
//   - CC baseline / TSKD[CC]: a single phase of round-robin buffers.
package engine

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tskd/internal/cc"
	"tskd/internal/clock"
	"tskd/internal/deferment"
	"tskd/internal/estimator"
	"tskd/internal/history"
	"tskd/internal/metrics"
	"tskd/internal/sched"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
)

// DeferConfig enables TsDEFER with the Section 5 knobs.
type DeferConfig struct {
	// Lookups is #lookups (Table 1 default 2).
	Lookups int
	// DeferP is deferp% in [0,1] (Table 1 default 0.6).
	DeferP float64
	// Horizon is the look-ahead window (default 1).
	Horizon int
	// Alpha is the access-set accuracy α in (0,1] (Fig. 5h); 1 means
	// exact predicted write sets.
	Alpha float64
	// MaxDefers bounds how many times one transaction can be deferred
	// before it is forced to execute (starvation control; default 8).
	MaxDefers int
	// Exact selects the exact bounded-thread probe instead of the
	// per-item probe; see deferment.Deferrer.Exact.
	Exact bool
	// Adaptive enables online deferp adaptation per worker; see
	// deferment.EnableAdaptive.
	Adaptive bool
}

// DefaultDefer returns the Table 1 defaults, with the exact probe mode
// (one lookup = one remote thread).
func DefaultDefer() *DeferConfig {
	return &DeferConfig{Lookups: 2, DeferP: 0.6, Horizon: 1, Alpha: 1, MaxDefers: 8, Exact: true}
}

// Hooks is the engine's fault-injection surface: optional callbacks on
// the execution, retry, dependency-wait and durability paths. The chaos
// harness (internal/chaos) drives them from a seeded, site-keyed
// deterministic schedule; production runs leave Hooks nil, which costs
// a single pointer check per site. Hook implementations are called
// concurrently from every worker and must be safe for concurrent use.
type Hooks struct {
	// BeforeAttempt runs before each execution attempt of a
	// transaction (attempt 0 is the first try, >0 are retries). A
	// positive return stalls the worker that long; the stall counts
	// into the attempt's virtual busy time, shifting the transaction's
	// execution interval exactly like an OS-level preemption.
	BeforeAttempt func(worker, txnID, attempt int) time.Duration
	// BeforeOp runs before each data access (opIdx counts the
	// operations executed so far in this attempt). A positive return
	// injects a per-access latency spike, also charged to busy time.
	BeforeOp func(worker, txnID, opIdx int) time.Duration
	// BeforeDepWait runs once per application-specified dependency
	// before the worker starts spinning on it; a positive return
	// stalls the worker first (wait time is not busy time, matching
	// the engine's accounting of genuine dependency waits).
	BeforeDepWait func(worker, txnID, dep int) time.Duration
	// SkewBusy rewrites a commit's recorded busy time — clock skew on
	// the worker's virtual-time progress tracking. It perturbs
	// VirtualTime, latency percentiles and ExecSpans but must never
	// affect isolation; the chaos checker verifies exactly that.
	SkewBusy func(worker int, busy time.Duration) time.Duration
	// OnWALError, when non-nil, is called instead of panicking when a
	// commit's WAL append fails; the transaction stays committed in
	// memory but its durability is not acknowledged. The chaos harness
	// uses it to track which commits survived an injected log failure.
	OnWALError func(t *txn.Transaction, err error)
}

// Config configures a run.
type Config struct {
	// Workers is the number of execution threads (#core).
	Workers int
	// Protocol is the CC protocol instance; required.
	Protocol cc.Protocol
	// DB is the database; required.
	DB *storage.DB
	// OpTime is the simulated per-operation work (busy-wait). Zero
	// runs operations at raw speed.
	OpTime time.Duration
	// Defer enables TsDEFER when non-nil.
	Defer *DeferConfig
	// Recorder, when non-nil, captures version observations of every
	// commit for serializability checking (slow; tests only).
	Recorder *history.Recorder
	// CostSink, when non-nil, receives observed execution costs so the
	// history estimator learns across bundles.
	CostSink *estimator.History
	// WAL, when non-nil, makes every commit append its redo record to
	// the log and waits for durability before acknowledging (group
	// commit batches the waits). Recovery is wal.Recover.
	WAL *wal.Log
	// Deps, when non-nil, makes workers wait before executing a
	// transaction until all of its dependencies have committed —
	// execution-time enforcement of application-specified causal
	// dependencies. The phase assignment must be topologically
	// consistent (sched.GenerateWithDeps produces such schedules);
	// otherwise cross-queue waits could deadlock.
	Deps *sched.Deps
	// TraceSpans makes workers record each commit's virtual-time span
	// into Metrics.Spans, for planned-vs-actual drift analysis (Drift).
	TraceSpans bool
	// Ctx, when non-nil, cancels the run: workers stop starting new
	// transactions (and abandon retry loops) once the context is done.
	// Abandoned transactions count into Metrics.Canceled — they neither
	// committed nor aborted for application reasons. Nil means run to
	// completion.
	Ctx context.Context
	// Hooks, when non-nil, enables fault injection on the execution,
	// retry, dependency-wait and durability paths; see Hooks.
	Hooks *Hooks
	// Seed drives worker-local randomness (backoff, probe choices).
	Seed int64

	// committed marks transactions that have committed, for dependency
	// waits; allocated by Run when Deps is set.
	committed []atomic.Bool
}

// Metrics aggregates the outcome of a run.
type Metrics struct {
	// Committed is the number of transactions committed.
	Committed uint64
	// Retries is the total number of aborted attempts (the paper's
	// #retry, reported per 100k transactions by RetryPer100k).
	Retries uint64
	// Defers is the number of TsDEFER deferrals performed.
	Defers uint64
	// UserAborts counts transactions rolled back by application logic
	// (not retried; e.g. TPC-C's invalid-item NewOrders).
	UserAborts uint64
	// Canceled counts transactions abandoned because Config.Ctx was
	// done before they could commit (never executed, or mid-retry).
	Canceled uint64
	// Expired counts transactions dropped because their Deadline passed
	// before commit (never executed, or between retries). An expired
	// transaction never commits.
	Expired uint64
	// Contended counts contended lock/latch acquisitions
	// (#contended_mutex).
	Contended uint64
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
	// VirtualTime is the simulated k-core execution time: per phase,
	// the maximum per-worker busy time (operation work × OpTime,
	// including retried work, runtime lower bounds and I/O stalls),
	// summed over phases. On a host with as many free cores as
	// workers, Elapsed ≈ VirtualTime; on smaller hosts, where workers
	// time-share cores, VirtualTime is the faithful measure of the
	// schedule's parallel cost (idle workers hide inside Elapsed but
	// not inside VirtualTime).
	VirtualTime time.Duration
	// LatencyP50/P95/P99 are commit-latency percentiles in virtual
	// (on-core) time per transaction: the busy time from first attempt
	// to commit, including retried work.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
	// PerTemplate breaks committed/retry counts down by transaction
	// template (e.g. the five TPC-C transactions).
	PerTemplate map[string]TemplateMetrics
	// Spans holds per-commit execution spans when Config.TraceSpans
	// was set.
	Spans []ExecSpan
}

// TemplateMetrics is the per-template slice of a run's counters.
type TemplateMetrics struct {
	Committed uint64
	Retries   uint64
}

// Throughput returns committed transactions per wall-clock second.
func (m Metrics) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Committed) / m.Elapsed.Seconds()
}

// VThroughput returns committed transactions per simulated k-core
// second — the headline throughput metric of the experiment harness.
func (m Metrics) VThroughput() float64 {
	if m.VirtualTime <= 0 {
		return 0
	}
	return float64(m.Committed) / m.VirtualTime.Seconds()
}

// RetryPer100k returns retries normalized per 100,000 transactions,
// the paper's #retry metric.
func (m Metrics) RetryPer100k() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.Retries) * 100_000 / float64(m.Committed)
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Committed += other.Committed
	m.Retries += other.Retries
	m.Defers += other.Defers
	m.UserAborts += other.UserAborts
	m.Canceled += other.Canceled
	m.Expired += other.Expired
	m.Contended += other.Contended
	m.Elapsed += other.Elapsed
	m.VirtualTime += other.VirtualTime
}

// Phase is one synchronized execution phase: PerThread[i] is worker
// i's ordered transaction list.
type Phase struct {
	PerThread [][]*txn.Transaction
}

// SpreadRoundRobin builds a phase that deals ts across k threads in
// order, the lightweight assignment used for residuals and unbundled
// workloads.
func SpreadRoundRobin(ts []*txn.Transaction, k int) Phase {
	p := Phase{PerThread: make([][]*txn.Transaction, k)}
	for i, t := range ts {
		p.PerThread[i%k] = append(p.PerThread[i%k], t)
	}
	return p
}

// Run executes the phases in order against cfg.DB and returns the
// aggregated metrics. w is the full workload (used to size trackers and
// predicted access sets); every transaction in the phases must come
// from w.
func Run(w txn.Workload, phases []Phase, cfg Config) Metrics {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	nID := w.MaxID() + 1
	byID := make([]*txn.Transaction, nID)
	for _, t := range w {
		byID[t.ID] = t
	}
	if cfg.Deps != nil && cfg.Deps.Len() > 0 {
		cfg.committed = make([]atomic.Bool, nID)
	}
	var predicted [][]txn.Key
	if cfg.Defer != nil && cfg.Defer.Lookups > 0 {
		alpha := cfg.Defer.Alpha
		if alpha <= 0 || alpha > 1 {
			alpha = 1
		}
		predicted = deferment.MaskWriteSets(w, alpha, cfg.Seed)
	}

	// All per-phase scaffolding — worker structs, CC contexts, RNGs,
	// stat sinks, list headers — is allocated once here and recycled
	// across phases, so a multi-phase run allocates no per-phase worker
	// state (the paper's bundles run two phases per bundle; the serve
	// path calls Run once per bundle).
	k := cfg.Workers
	sc := &phaseScratch{
		lists:   make([][]*txn.Transaction, k),
		stats:   make([]workerStats, k),
		ccStats: make([]cc.Stats, k),
		workers: make([]worker, k),
	}
	for i := range sc.workers {
		wk := &sc.workers[i]
		wk.id = i
		wk.cfg = cfg
		wk.src = rand.NewSource(cfg.Seed)
		wk.rng = rand.New(wk.src)
		wk.ccStats = &sc.ccStats[i]
		wk.byID = byID
		wk.stats = &sc.stats[i]
		wk.unitScale = cfg.OpTime
		if wk.unitScale <= 0 {
			wk.unitScale = time.Microsecond
		}
		wk.ctx = cc.NewCtx(wk.ccStats)
		wk.ctx.Observe = cfg.Recorder != nil
		if predicted != nil {
			wk.deferCount = make([]int32, nID)
		}
	}

	total := Metrics{}
	var lat metrics.Histogram
	start := time.Now()
	for pi, phase := range phases {
		m, phaseLat := runPhase(phase, sc, predicted, cfg, int64(pi))
		total.Committed += m.Committed
		total.Retries += m.Retries
		total.Defers += m.Defers
		total.UserAborts += m.UserAborts
		total.Canceled += m.Canceled
		total.Expired += m.Expired
		total.Contended += m.Contended
		total.VirtualTime += m.VirtualTime
		lat.Merge(phaseLat)
		total.Spans = append(total.Spans, m.Spans...)
		for name, tm := range m.PerTemplate {
			if total.PerTemplate == nil {
				total.PerTemplate = make(map[string]TemplateMetrics)
			}
			agg := total.PerTemplate[name]
			agg.Committed += tm.Committed
			agg.Retries += tm.Retries
			total.PerTemplate[name] = agg
		}
	}
	total.Elapsed = time.Since(start)
	if lat.Count() > 0 {
		total.LatencyP50 = lat.Quantile(0.50)
		total.LatencyP95 = lat.Quantile(0.95)
		total.LatencyP99 = lat.Quantile(0.99)
	}
	return total
}

// phaseScratch is the run-level pool of per-phase worker scaffolding;
// see Run. Everything in it is reset (not reallocated) between phases.
type phaseScratch struct {
	lists   [][]*txn.Transaction
	stats   []workerStats
	ccStats []cc.Stats
	workers []worker
	ids     []int // tracker.Load staging (Load copies)
}

func runPhase(phase Phase, sc *phaseScratch, predicted [][]txn.Key, cfg Config, salt int64) (Metrics, *metrics.Histogram) {
	k := cfg.Workers
	lists := sc.lists
	for i := range lists {
		lists[i] = nil
	}
	copy(lists, phase.PerThread)
	if len(phase.PerThread) > k {
		// More lists than workers: fold the extras round-robin. Clamp
		// each copied list's capacity to its length first so the
		// appends below reallocate instead of growing into (and
		// corrupting) the caller's phase.PerThread backing arrays.
		for i := range lists {
			lists[i] = lists[i][:len(lists[i]):len(lists[i])]
		}
		for i := k; i < len(phase.PerThread); i++ {
			lists[i%k] = append(lists[i%k], phase.PerThread[i]...)
		}
	}

	maxLen := 0
	for _, l := range lists {
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	var tracker *deferment.Tracker
	if predicted != nil {
		tracker = deferment.NewTracker(k, maxLen)
		tracker.SetWriteSets(predicted)
		ids := sc.ids
		for i, l := range lists {
			ids = ids[:0]
			for _, t := range l {
				ids = append(ids, t.ID)
			}
			tracker.Load(i, ids)
		}
		sc.ids = ids
	}

	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wk := &sc.workers[i]
		wk.stats.reset()
		*wk.ccStats = cc.Stats{}
		wk.src.Seed(cfg.Seed ^ salt<<32 ^ int64(i)*0x9E3779B9)
		wk.tracker = tracker
		wk.deferrer = nil
		if tracker != nil {
			wk.deferrer = deferment.NewDeferrer(tracker)
			wk.deferrer.Lookups = cfg.Defer.Lookups
			wk.deferrer.DeferP = cfg.Defer.DeferP
			wk.deferrer.Exact = cfg.Defer.Exact
			if cfg.Defer.Adaptive {
				wk.deferrer.EnableAdaptive()
			}
			if cfg.Defer.Horizon > 0 {
				wk.deferrer.Horizon = cfg.Defer.Horizon
			}
		}
		wg.Add(1)
		go func(wk *worker, list []*txn.Transaction) {
			defer wg.Done()
			wk.drain(list)
		}(wk, lists[i])
	}
	wg.Wait()

	var m Metrics
	lat := &metrics.Histogram{}
	for i := range sc.stats {
		stats := &sc.stats[i]
		m.Committed += stats.committed
		m.Retries += stats.retries
		m.Defers += stats.defers
		m.UserAborts += stats.userAborts
		m.Canceled += stats.canceled
		m.Expired += stats.expired
		m.Contended += sc.ccStats[i].Contended
		// Virtual k-core time of the phase: the busiest worker (the
		// barrier makes the others wait for it).
		if stats.busy > m.VirtualTime {
			m.VirtualTime = stats.busy
		}
		lat.Merge(&stats.lat)
		m.Spans = append(m.Spans, stats.spans...)
		for name, tm := range stats.perTpl {
			if m.PerTemplate == nil {
				m.PerTemplate = make(map[string]TemplateMetrics)
			}
			agg := m.PerTemplate[name]
			agg.Committed += tm.Committed
			agg.Retries += tm.Retries
			m.PerTemplate[name] = agg
		}
	}
	return m, lat
}

type workerStats struct {
	committed  uint64
	retries    uint64
	defers     uint64
	userAborts uint64
	canceled   uint64
	expired    uint64
	busy       time.Duration     // intended on-core work; see Metrics.VirtualTime
	lat        metrics.Histogram // per-commit virtual latency
	perTpl     map[string]*TemplateMetrics
	spans      []ExecSpan
}

// reset clears the stats for a new phase, keeping the spans slice's
// capacity (the aggregation loop copies values out before reuse).
func (ws *workerStats) reset() {
	ws.committed, ws.retries, ws.defers, ws.userAborts, ws.canceled, ws.expired = 0, 0, 0, 0, 0, 0
	ws.busy = 0
	ws.lat = metrics.Histogram{}
	clear(ws.perTpl)
	ws.spans = ws.spans[:0]
}

func (ws *workerStats) tpl(name string) *TemplateMetrics {
	if ws.perTpl == nil {
		ws.perTpl = make(map[string]*TemplateMetrics)
	}
	tm := ws.perTpl[name]
	if tm == nil {
		tm = &TemplateMetrics{}
		ws.perTpl[name] = tm
	}
	return tm
}

// worker executes one thread's list for one phase. Workers live for the
// whole run; runPhase reseeds src and swaps the tracker between phases.
type worker struct {
	id        int
	cfg       Config
	src       rand.Source
	rng       *rand.Rand
	ctx       *cc.Ctx
	ccStats   *cc.Stats
	byID      []*txn.Transaction
	tracker   *deferment.Tracker
	deferrer  *deferment.Deferrer
	stats     *workerStats
	unitScale time.Duration
	// opsRun counts the operations executed in the current attempt,
	// feeding the virtual-time accounting.
	opsRun int
	// injected accumulates fault-injected stall time in the current
	// attempt; it is charged into the attempt's busy time so injected
	// faults shift execution intervals in virtual time too.
	injected time.Duration
	// deferCount[id] counts how many times this worker deferred txn id
	// in the current drain (dense by txn ID; cleared per drain). Nil
	// when deferment is off.
	deferCount []int32
	// ccWrites/walWrites/scanRows are per-worker scratch buffers reused
	// across commits (logCommit) and scans (runScan).
	ccWrites  []cc.CommittedWrite
	walWrites []wal.Update
	scanRows  []*storage.Row
}

// opUnit is the virtual cost charged per operation: the configured
// OpTime, or a nominal in-memory access cost when running at raw
// speed.
func (wk *worker) opUnit() time.Duration {
	if wk.cfg.OpTime > 0 {
		return wk.cfg.OpTime
	}
	return 500 * time.Nanosecond
}

// canceled reports whether the run's context is done.
func (wk *worker) canceled() bool {
	return wk.cfg.Ctx != nil && wk.cfg.Ctx.Err() != nil
}

// drain executes the worker's list, with TsDEFER reordering when
// enabled.
func (wk *worker) drain(list []*txn.Transaction) {
	if wk.tracker == nil {
		for i, t := range list {
			if wk.canceled() {
				wk.stats.canceled += uint64(len(list) - i)
				return
			}
			if wk.execute(t) == execCanceled {
				wk.stats.canceled += uint64(len(list) - i)
				return
			}
		}
		return
	}
	maxDefers := wk.cfg.Defer.MaxDefers
	if maxDefers <= 0 {
		maxDefers = 8
	}
	clear(wk.deferCount)
	for {
		id, ok := wk.tracker.Peek(wk.id)
		if !ok {
			return
		}
		if wk.canceled() {
			// Count the head and everything still queued behind it.
			for {
				wk.stats.canceled++
				wk.tracker.Advance(wk.id)
				if _, more := wk.tracker.Peek(wk.id); !more {
					return
				}
			}
		}
		t := wk.byID[id]
		if int(wk.deferCount[id]) < maxDefers && wk.deferrer.ShouldDefer(wk.id, t, wk.rng) {
			wk.deferCount[id]++
			wk.stats.defers++
			wk.tracker.DeferHead(wk.id)
			continue
		}
		outcome := wk.execute(t)
		wk.tracker.Advance(wk.id)
		if outcome == execCanceled {
			wk.stats.canceled++
		}
	}
}

// execOutcome classifies how execute left a transaction. Expired is
// distinct from canceled: an expired transaction is dropped alone and
// the drain continues, while cancellation abandons the whole run.
type execOutcome int8

const (
	execDone     execOutcome = iota // committed or user-aborted
	execCanceled                    // run context done before a terminal outcome
	execExpired                     // t.Deadline passed before commit; dropped
)

// expire drops t if its deadline has passed: it counts the drop and
// releases dependents (they wait on completion, not on effects — a
// dropped dependency must not stall them forever). Reports true when t
// is dead. Checked before the first attempt and between retries, so an
// expired transaction never (re-)executes — work the caller has
// abandoned only inflates runtime conflicts for live transactions.
func (wk *worker) expire(t *txn.Transaction) bool {
	if t.Deadline.IsZero() || !time.Now().After(t.Deadline) {
		return false
	}
	wk.stats.expired++
	if wk.cfg.committed != nil {
		wk.cfg.committed[t.ID].Store(true)
	}
	return true
}

// execute runs t to commit, retrying on conflicts. Transactions marked
// UserAbort execute and then roll back once, without retry. It returns
// execCanceled when the run's context was canceled, and execExpired
// when t's deadline passed, before t reached a terminal outcome
// (commit or user abort); the caller accounts the abandonment.
func (wk *worker) execute(t *txn.Transaction) execOutcome {
	proto := wk.cfg.Protocol
	if wk.expire(t) {
		return execExpired
	}
	// Application-specified dependencies: wait until every dependency
	// has committed. Schedules from sched.GenerateWithDeps order queue
	// positions topologically, so these waits cannot cycle.
	if wk.cfg.committed != nil {
		for _, dep := range wk.cfg.Deps.Before(t.ID) {
			if h := wk.cfg.Hooks; h != nil && h.BeforeDepWait != nil {
				clock.Spin(h.BeforeDepWait(wk.id, t.ID, int(dep)))
			}
			for !wk.cfg.committed[dep].Load() {
				if wk.canceled() {
					return execCanceled
				}
				if wk.expire(t) {
					return execExpired
				}
				runtime.Gosched()
			}
		}
	}
	start := time.Now()
	var busy time.Duration // intended on-core time across attempts
	contended0 := wk.ccStats.Contended
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if wk.canceled() {
				// Mid-retry cancellation: give up without committing.
				// The first attempt always runs so a canceled context
				// cannot starve short uncontended transactions during
				// drain.
				return execCanceled
			}
			if wk.expire(t) {
				return execExpired
			}
		}
		attemptStart := time.Now()
		proto.Begin(wk.ctx)
		wk.opsRun = 0
		wk.injected = 0
		if h := wk.cfg.Hooks; h != nil && h.BeforeAttempt != nil {
			if d := h.BeforeAttempt(wk.id, t.ID, attempt); d > 0 {
				clock.Spin(d)
				wk.injected += d
			}
		}
		err := wk.runOps(t)
		if err == nil && t.UserAbort {
			proto.Abort(wk.ctx)
			wk.stats.userAborts++
			wk.stats.busy += time.Duration(wk.opsRun)*wk.opUnit() + wk.injected
			if wk.cfg.committed != nil {
				// The transaction finished (rolled back): dependents
				// must not wait forever.
				wk.cfg.committed[t.ID].Store(true)
			}
			return execDone
		}
		// Per-attempt cost: the operation work, floored by the runtime
		// lower bound — every retry re-runs the transaction and re-pays
		// its runtime, which is precisely why conflict penalties grow
		// with transaction length (Section 6.1).
		attemptWork := time.Duration(wk.opsRun)*wk.opUnit() + wk.injected
		if err == nil {
			// Runtime lower bound (minT extension): delay commit until
			// the bound has elapsed for this attempt.
			if t.MinRuntime > 0 {
				clock.SpinUntil(attemptStart.Add(t.MinRuntime))
			}
			// Commit-time I/O latency extension: the stall sits between
			// execution and validation/commit, stretching the
			// vulnerability window exactly like a write-ahead flush.
			if t.IODelay > 0 {
				clock.SpinUntil(time.Now().Add(t.IODelay))
			}
			err = proto.Commit(wk.ctx)
			if t.MinRuntime > attemptWork {
				attemptWork = t.MinRuntime
			}
			attemptWork += t.IODelay
		}
		busy += attemptWork
		if err == nil {
			wk.stats.committed++
			if wk.cfg.WAL != nil {
				wk.logCommit(t)
			}
			if wk.cfg.committed != nil {
				wk.cfg.committed[t.ID].Store(true)
			}
			// Charge a nominal stall per contended latch/mutex
			// acquisition on top of the attempt work.
			busy += time.Duration(wk.ccStats.Contended-contended0) * wk.opUnit()
			if h := wk.cfg.Hooks; h != nil && h.SkewBusy != nil {
				busy = h.SkewBusy(wk.id, busy)
			}
			wk.stats.busy += busy
			wk.stats.lat.Record(busy)
			if t.Template != "" {
				tm := wk.stats.tpl(t.Template)
				tm.Committed++
				tm.Retries += uint64(attempt)
			}
			if wk.cfg.TraceSpans {
				wk.stats.spans = append(wk.stats.spans, ExecSpan{
					TxnID: t.ID, Worker: wk.id, Retries: attempt,
					Start: wk.stats.busy - busy, End: wk.stats.busy,
				})
			}
			if wk.cfg.Recorder != nil {
				reads, writes := wk.ctx.Observations()
				wk.cfg.Recorder.Record(history.Event{
					TxnID:  t.ID,
					Reads:  toHistObs(reads),
					Writes: toHistObs(writes),
				})
			}
			if wk.cfg.CostSink != nil {
				units := clock.Units(float64(time.Since(start)) / float64(wk.unitScale))
				wk.cfg.CostSink.Record(t.Template, t.Params, units)
			}
			return execDone
		}
		proto.Abort(wk.ctx)
		wk.stats.retries++
		wk.backoff(attempt)
	}
}

// runOps interprets the transaction's declared operations through the
// protocol.
func (wk *worker) runOps(t *txn.Transaction) error {
	proto := wk.cfg.Protocol
	db := wk.cfg.DB
	for _, op := range t.Ops {
		if h := wk.cfg.Hooks; h != nil && h.BeforeOp != nil {
			if d := h.BeforeOp(wk.id, t.ID, wk.opsRun); d > 0 {
				clock.Spin(d)
				wk.injected += d
			}
		}
		if op.Kind == txn.OpScan {
			if err := wk.runScan(t, op); err != nil {
				return err
			}
			continue
		}
		var row *storage.Row
		if op.Kind == txn.OpInsert {
			table := db.Table(op.Key.Table())
			if table == nil {
				continue
			}
			var created bool
			row, created = table.Insert(op.Key.Row())
			if created {
				// Our own structure bump must not invalidate our own
				// earlier scans of this table.
				wk.ctx.NoteStructureChange(table)
			}
		} else {
			row = db.ResolveOrInsert(op.Key)
		}
		if row == nil {
			continue // unknown table: treat as a no-op read
		}
		var err error
		switch op.Kind {
		case txn.OpRead:
			_, err = proto.Read(wk.ctx, row)
		case txn.OpWrite, txn.OpInsert:
			arg, field := op.Arg, int(op.Field)
			err = proto.Write(wk.ctx, row, func(tu *storage.Tuple) {
				if field < len(tu.Fields) {
					tu.Fields[field] = arg
				}
			})
		case txn.OpUpdate:
			// Read-modify-write: the read is validated by the
			// protocol, so concurrent increments are never lost.
			if _, err = proto.Read(wk.ctx, row); err == nil {
				arg, field := op.Arg, int(op.Field)
				err = proto.Write(wk.ctx, row, func(tu *storage.Tuple) {
					if field < len(tu.Fields) {
						tu.Fields[field] += arg
					}
				})
			}
		}
		if err != nil {
			return err
		}
		wk.opsRun++
		if wk.cfg.OpTime > 0 {
			clock.Spin(wk.cfg.OpTime)
		} else {
			// Even at raw speed, yield between operations so workers
			// interleave on hosts with fewer cores than workers.
			runtime.Gosched()
		}
	}
	return nil
}

// runScan executes a range scan: record the table's structure version,
// enumerate the range from the ordered index (collecting row pointers
// so no index lock is held while the protocol runs), then read every
// row through the protocol. Phantom protection comes from the
// structure-version validation every protocol performs at commit.
func (wk *worker) runScan(t *txn.Transaction, op txn.Op) error {
	table := wk.cfg.DB.Table(op.Key.Table())
	if table == nil {
		return nil
	}
	wk.ctx.RecordScan(table)
	rows := wk.scanRows[:0]
	table.Scan(op.Key.Row(), op.Arg, func(r *storage.Row) bool {
		rows = append(rows, r)
		return true
	})
	wk.scanRows = rows
	proto := wk.cfg.Protocol
	for _, row := range rows {
		if _, err := proto.Read(wk.ctx, row); err != nil {
			return err
		}
		wk.opsRun++
		if wk.cfg.OpTime > 0 {
			clock.Spin(wk.cfg.OpTime)
		} else {
			runtime.Gosched()
		}
	}
	return nil
}

// logCommit appends the transaction's redo record to the WAL and
// blocks until it is durable (the write-ahead rule: acknowledge only
// after the log reached stable storage).
func (wk *worker) logCommit(t *txn.Transaction) {
	cw := wk.ctx.AppendCommittedWrites(wk.ccWrites[:0])
	wk.ccWrites = cw
	if len(cw) == 0 {
		return // read-only: nothing to redo
	}
	// The scratch Writes buffer is safe to reuse next commit: Append
	// serializes the record before returning (it only blocks on the
	// group flush afterwards).
	upd := wk.walWrites[:0]
	for _, w := range cw {
		upd = append(upd, wal.Update{Key: uint64(w.Key), Ver: w.Ver, Fields: w.Fields})
	}
	wk.walWrites = upd
	rec := wal.Record{TxnID: int64(t.ID), IdemKey: t.IdemKey, Writes: upd}
	// Log failures are fatal to durability but not to the in-memory
	// execution; surface them loudly in tests via the panic below,
	// unless a fault hook claims them (chaos runs inject log errors on
	// purpose and track which commits lost durability).
	if err := wk.cfg.WAL.Append(rec); err != nil {
		if h := wk.cfg.Hooks; h != nil && h.OnWALError != nil {
			h.OnWALError(t, err)
			return
		}
		panic("engine: WAL append failed: " + err.Error())
	}
}

// toHistObs converts protocol observations to checker observations.
func toHistObs(in []cc.Obs) []history.Obs {
	out := make([]history.Obs, len(in))
	for i, o := range in {
		out[i] = history.Obs{Key: o.Key, Ver: o.Ver}
	}
	return out
}

// backoff applies short randomized backoff between retries so NO_WAIT
// style protocols do not livelock.
func (wk *worker) backoff(attempt int) {
	runtime.Gosched()
	if attempt == 0 {
		return
	}
	max := attempt
	if max > 16 {
		max = 16
	}
	clock.Spin(time.Duration(wk.rng.Intn(max*2)+1) * time.Microsecond)
}
