package engine

import (
	"time"

	"tskd/internal/sched"
)

// ExecSpan records when a transaction actually ran on its worker's
// virtual clock: Start is the worker's accumulated busy time when the
// successful attempt began, End when it committed. Comparing spans
// against a schedule's planned placements quantifies execution drift —
// the reason RC-free queues still need the CC backstop (Section 3).
type ExecSpan struct {
	TxnID  int
	Worker int
	// Retries is the number of aborted attempts before the span's
	// committing attempt (0 = committed first try).
	Retries int
	Start   time.Duration
	End     time.Duration
}

// DriftReport summarizes planned-vs-actual timing for a schedule
// execution.
type DriftReport struct {
	// Spans is the number of queued transactions compared.
	Spans int
	// MeanAbs is the mean absolute difference between planned and
	// actual start times.
	MeanAbs time.Duration
	// MaxAbs is the largest absolute difference.
	MaxAbs time.Duration
	// Overlaps counts conventionally-conflicting queued pairs whose
	// ACTUAL spans overlapped although their planned intervals did not
	// — realized runtime conflicts the schedule failed to prevent.
	Overlaps int
}

// Drift compares the schedule's planned placements against observed
// execution spans. unit is the wall-clock length of one estimate unit
// (the engine's OpTime). Only transactions present in both are
// compared.
func Drift(s *sched.Schedule, spans []ExecSpan, unit time.Duration) DriftReport {
	if unit <= 0 {
		unit = time.Microsecond
	}
	var rep DriftReport
	var sum time.Duration
	actual := make(map[int]ExecSpan, len(spans))
	for _, sp := range spans {
		actual[sp.TxnID] = sp
	}
	for _, q := range s.Queues {
		for _, t := range q {
			sp, ok := actual[t.ID]
			if !ok {
				continue
			}
			planned := time.Duration(float64(s.Placement(t.ID).Start) * float64(unit))
			d := sp.Start - planned
			if d < 0 {
				d = -d
			}
			sum += d
			if d > rep.MaxAbs {
				rep.MaxAbs = d
			}
			rep.Spans++
		}
	}
	if rep.Spans > 0 {
		rep.MeanAbs = sum / time.Duration(rep.Spans)
	}
	// Realized runtime conflicts: conflicting queued pairs on different
	// workers whose actual spans overlapped.
	for _, q := range s.Queues {
		for _, t := range q {
			sp, ok := actual[t.ID]
			if !ok {
				continue
			}
			p := s.Placement(t.ID)
			for _, nb := range s.Graph().Neighbors(t.ID) {
				np := s.Placement(int(nb))
				if np.Queue < 0 || np.Queue == p.Queue || int(nb) < t.ID {
					continue
				}
				nsp, ok := actual[int(nb)]
				if !ok || nsp.Worker == sp.Worker {
					continue
				}
				if sp.Start < nsp.End && nsp.Start < sp.End {
					rep.Overlaps++
				}
			}
		}
	}
	return rep
}
