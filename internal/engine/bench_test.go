package engine

import (
	"testing"

	"tskd/internal/cc"
)

// BenchmarkPhaseLoop measures a full two-phase engine run over a YCSB
// bundle — the per-bundle cost the serving layer pays — reporting
// allocations per transaction (the engine's headline efficiency
// metric; the bundle runs 256 transactions per op).
func BenchmarkPhaseLoop(b *testing.B) {
	for _, mode := range []string{"plain", "tsdefer"} {
		b.Run(mode, func(b *testing.B) {
			db, w := ycsbBundle(1, 256)
			phases := []Phase{SpreadRoundRobin(w[:128], 4), SpreadRoundRobin(w[128:], 4)}
			cfg := Config{Workers: 4, Protocol: cc.NewSilo(), DB: db, Seed: 1}
			if mode == "tsdefer" {
				cfg.Defer = DefaultDefer()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := Run(w, phases, cfg)
				if m.Committed != uint64(len(w)) {
					b.Fatalf("committed %d of %d", m.Committed, len(w))
				}
			}
		})
	}
}

// TestPhaseLoopAllocBudget gates the engine's steady-state allocation
// rate: a two-phase 256-transaction bundle must stay under 20 allocs
// per transaction (pre-overhaul it was ~59/txn, currently ~15). What
// remains is load-bearing: each committed write installs a freshly
// cloned tuple (published to lock-free readers, so never pooled) and
// each staged write composes an update closure; the per-phase worker
// scaffolding, byID/defer-count maps and redo-buffer churn are gone.
func TestPhaseLoopAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement loop")
	}
	db, w := ycsbBundle(1, 256)
	phases := []Phase{SpreadRoundRobin(w[:128], 4), SpreadRoundRobin(w[128:], 4)}
	cfg := Config{Workers: 4, Protocol: cc.NewSilo(), DB: db, Seed: 1}
	run := func() {
		if m := Run(w, phases, cfg); m.Committed != uint64(len(w)) {
			t.Fatalf("committed %d of %d", m.Committed, len(w))
		}
	}
	run() // warm protocol state
	perRun := testing.AllocsPerRun(20, run)
	perTxn := perRun / float64(len(w))
	t.Logf("phase loop: %.0f allocs/run, %.2f allocs/txn", perRun, perTxn)
	if perTxn > 20 {
		t.Errorf("phase loop allocs/txn = %.2f, budget 20", perTxn)
	}
}
