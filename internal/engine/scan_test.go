package engine

import (
	"testing"

	"tskd/internal/cc"
	"tskd/internal/history"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func TestScanReadsRange(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	var want uint64
	for k := uint64(0); k < 100; k++ {
		r, _ := tbl.Insert(k)
		tu := r.Load().Clone()
		tu.Fields[0] = k
		r.Install(tu)
		if k >= 10 && k <= 19 {
			want += k
		}
	}
	// One scanning transaction reading [10,19] and summing into row 0
	// would need logic; instead verify through the recorder that all
	// ten rows were read.
	tx := txn.New(0).S(txn.MakeKey(0, 10), 9)
	rec := history.NewRecorder()
	m := Run(txn.Workload{tx}, []Phase{SpreadRoundRobin(txn.Workload{tx}, 1)}, Config{
		Workers: 1, Protocol: cc.NewSilo(), DB: db, Recorder: rec,
	})
	if m.Committed != 1 {
		t.Fatal("scan txn did not commit")
	}
	evs := rec.Events()
	if len(evs) != 1 || len(evs[0].Reads) != 10 {
		t.Fatalf("scan read %d rows, want 10", len(evs[0].Reads))
	}
}

func TestScanPhantomProtection(t *testing.T) {
	// A scanner whose table is concurrently grown must still commit a
	// consistent view: with an insert racing the scan, the execution
	// remains serializable. We force the scenario deterministically:
	// phase 1 scans AND phase-1's other worker inserts into the range.
	for _, name := range append(cc.Names(), "NONE") {
		t.Run(name, func(t *testing.T) {
			db := storage.NewDB()
			tbl := db.CreateTable(0, "t", 2)
			for k := uint64(0); k < 50; k++ {
				tbl.Insert(k * 2) // even keys; odd keys get inserted
			}
			proto, err := cc.New(name)
			if err != nil {
				t.Fatal(err)
			}
			// Heavy interleaving: scanners and inserters.
			var w txn.Workload
			for i := 0; i < 30; i++ {
				if i%2 == 0 {
					w = append(w, txn.New(i).S(txn.MakeKey(0, 0), 200))
				} else {
					w = append(w, txn.New(i).IF(txn.MakeKey(0, uint64(i*7+1)), 0, uint64(i)))
				}
			}
			m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
				Workers: 4, Protocol: proto, DB: db, Seed: int64(len(name)),
			})
			if m.Committed != 30 {
				t.Fatalf("committed %d of 30", m.Committed)
			}
			// Scanners must have retried at least once somewhere if an
			// insert landed mid-scan; either way the run terminates and
			// commits everything. (Retry count is workload dependent;
			// just log it.)
			t.Logf("retries=%d", m.Retries)
		})
	}
}

func TestScanSelfInsertDoesNotSelfAbort(t *testing.T) {
	// A transaction that scans then inserts into the same table must
	// not invalidate its own scan (workload-E shape).
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	for k := uint64(0); k < 20; k++ {
		tbl.Insert(k)
	}
	tx := txn.New(0).S(txn.MakeKey(0, 0), 50).IF(txn.MakeKey(0, 100), 0, 1)
	m := Run(txn.Workload{tx}, []Phase{SpreadRoundRobin(txn.Workload{tx}, 1)}, Config{
		Workers: 1, Protocol: cc.NewOCC(), DB: db,
	})
	if m.Committed != 1 {
		t.Fatal("self-inserting scanner did not commit")
	}
	if m.Retries != 0 {
		t.Errorf("self-inserting scanner retried %d times", m.Retries)
	}
}

func TestYCSBEWorkloadRuns(t *testing.T) {
	cfg := workload.YCSB{
		Records: 2000, Theta: 0.8, Txns: 300, OpsPerTxn: 8,
		ReadRatio: 0.5, RMW: true, ScanRatio: 0.3, Seed: 9,
	}
	db := cfg.BuildDB()
	w := cfg.Generate()
	scans := 0
	for _, tx := range w {
		if tx.HasScan() {
			scans++
			if tx.Template != "YCSB-E" {
				t.Fatal("scan txn mislabeled")
			}
		}
	}
	if scans < 50 || scans > 150 {
		t.Fatalf("scan transactions = %d, want ≈ 90", scans)
	}
	rec := history.NewRecorder()
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewTicToc(), DB: db, Recorder: rec, Seed: 9,
	})
	if m.Committed != 300 {
		t.Fatalf("committed %d", m.Committed)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("workload E not serializable: %v", err)
	}
}
