package engine

import (
	"testing"

	"tskd/internal/cc"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/history"
	"tskd/internal/sched"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// TestDependencyWaits verifies execution-time dependency enforcement.
// Transaction i writes its own row (version 0 → 1) and reads the rows
// of its dependencies; because the engine blocks T until its
// dependencies committed, every such read must observe version >= 1.
// Without the waits, a dependent running concurrently could read
// version 0.
func TestDependencyWaits(t *testing.T) {
	const n = 60
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	for i := uint64(0); i < n; i++ {
		tbl.Insert(i)
	}
	d := sched.NewDeps()
	w := make(txn.Workload, n)
	for i := 0; i < n; i++ {
		tx := txn.New(i)
		if i >= 4 {
			dep := i - 4 // four chains woven across queues
			d.Add(dep, i)
			tx.R(txn.MakeKey(0, uint64(dep)))
		}
		tx.U(txn.MakeKey(0, uint64(i)), 1)
		w[i] = tx
	}
	g := conflict.Build(w, conflict.Serializability)
	s, err := sched.GenerateWithDeps(w, g, estimator.AccessSetSize{}, 4, d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(w); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeps(d, w); err != nil {
		t.Fatal(err)
	}

	rec := history.NewRecorder()
	phases := []Phase{{PerThread: s.Queues}}
	if len(s.Residual) > 0 {
		phases = append(phases, SpreadRoundRobin(s.Residual, 4))
	}
	m := Run(w, phases, Config{
		Workers: 4, Protocol: cc.NewSilo(), DB: db, Deps: d, Recorder: rec, Seed: 3,
	})
	if m.Committed != n {
		t.Fatalf("committed %d of %d (deadlock?)", m.Committed, n)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("not serializable: %v", err)
	}
	// Every read of a dependency row observed the dependency's write.
	for _, e := range rec.Events() {
		deps := d.Before(e.TxnID)
		for _, rd := range e.Reads {
			for _, dep := range deps {
				if rd.Key == txn.MakeKey(0, uint64(dep)) && rd.Ver < 1 {
					t.Errorf("txn %d read dependency %d's row at version %d (before its commit)",
						e.TxnID, dep, rd.Ver)
				}
			}
		}
	}
}

// TestDepsHeavyChainNoDeadlock drives a single long dependency chain
// across many queues — the worst case for cross-queue waits.
func TestDepsHeavyChainNoDeadlock(t *testing.T) {
	const n = 80
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	for i := uint64(0); i < n; i++ {
		tbl.Insert(i)
	}
	d := sched.NewDeps()
	w := make(txn.Workload, n)
	for i := 0; i < n; i++ {
		w[i] = txn.New(i).U(txn.MakeKey(0, uint64(i)), 1)
		if i > 0 {
			d.Add(i-1, i)
		}
	}
	g := conflict.Build(w, conflict.Serializability)
	s, err := sched.GenerateWithDeps(w, g, estimator.AccessSetSize{}, 8, d, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	phases := []Phase{{PerThread: s.Queues}}
	if len(s.Residual) > 0 {
		phases = append(phases, SpreadRoundRobin(s.Residual, 8))
	}
	m := Run(w, phases, Config{Workers: 8, Protocol: cc.NewOCC(), DB: db, Deps: d, Seed: 4})
	if m.Committed != n {
		t.Fatalf("committed %d of %d", m.Committed, n)
	}
}
