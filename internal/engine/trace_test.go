package engine

import (
	"testing"
	"time"

	"tskd/internal/cc"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/sched"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func TestTraceSpansRecorded(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	for i := uint64(0); i < 20; i++ {
		tbl.Insert(i)
	}
	w := make(txn.Workload, 20)
	for i := range w {
		w[i] = txn.New(i).U(txn.MakeKey(0, uint64(i)), 1)
	}
	m := Run(w, []Phase{SpreadRoundRobin(w, 2)}, Config{
		Workers: 2, Protocol: cc.NewSilo(), DB: db, TraceSpans: true,
	})
	if len(m.Spans) != 20 {
		t.Fatalf("spans = %d, want 20", len(m.Spans))
	}
	// Spans on one worker must be disjoint and ordered.
	byWorker := map[int][]ExecSpan{}
	for _, sp := range m.Spans {
		if sp.End < sp.Start {
			t.Fatalf("inverted span %+v", sp)
		}
		byWorker[sp.Worker] = append(byWorker[sp.Worker], sp)
	}
	for wkr, spans := range byWorker {
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End {
				t.Fatalf("worker %d spans overlap: %+v then %+v", wkr, spans[i-1], spans[i])
			}
		}
	}
	// Disabled by default.
	m2 := Run(w, []Phase{SpreadRoundRobin(w, 2)}, Config{
		Workers: 2, Protocol: cc.NewSilo(), DB: db,
	})
	if len(m2.Spans) != 0 {
		t.Error("spans recorded without TraceSpans")
	}
}

// TestDriftMeasurement executes a real schedule with tracing and
// quantifies planned-vs-actual drift — the phenomenon that forces the
// CC backstop on RC-free queues.
func TestDriftMeasurement(t *testing.T) {
	cfg := workload.YCSB{Records: 2000, Theta: 0.8, Txns: 300, OpsPerTxn: 8,
		ReadRatio: 0.5, RMW: true, Seed: 19}
	db := cfg.BuildDB()
	w := cfg.Generate()
	g := conflict.Build(w, conflict.Serializability)
	unit := time.Microsecond
	s := sched.GenerateFromScratch(w, g, estimator.AccessSetSize{Unit: unit}, 4, sched.Options{Seed: 19})
	if err := s.Validate(w); err != nil {
		t.Fatal(err)
	}
	m := Run(w, []Phase{{PerThread: s.Queues}}, Config{
		Workers: 4, Protocol: cc.NewSilo(), DB: db,
		OpTime: unit, TraceSpans: true, Seed: 19,
	})
	rep := Drift(s, m.Spans, unit)
	if rep.Spans == 0 {
		t.Fatal("no spans compared")
	}
	t.Logf("drift over %d txns: mean |Δstart| = %v, max = %v, realized overlaps = %d (retries %d)",
		rep.Spans, rep.MeanAbs, rep.MaxAbs, rep.Overlaps, m.Retries)
	// Sanity: drift must be bounded by the total schedule span (a wild
	// value would indicate a units bug).
	horizon := time.Duration(float64(s.Makespan()) * float64(unit) * 10)
	if rep.MaxAbs > horizon {
		t.Errorf("max drift %v implausible against makespan %v", rep.MaxAbs, horizon)
	}
}

func TestDriftEmpty(t *testing.T) {
	w := txn.Workload{txn.MustParse(0, "W[x1]")}
	g := conflict.Build(w, conflict.Serializability)
	s := sched.GenerateFromScratch(w, g, estimator.AccessSetSize{}, 1, sched.Options{})
	rep := Drift(s, nil, time.Microsecond)
	if rep.Spans != 0 || rep.MeanAbs != 0 {
		t.Errorf("empty drift = %+v", rep)
	}
}
