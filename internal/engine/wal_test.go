package engine

import (
	"bytes"
	"testing"
	"time"

	"tskd/internal/cc"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

// TestWALRecoveryEquivalence: run a contended workload with redo
// logging, then recover the log into a freshly loaded database and
// check every row matches the post-run state.
func TestWALRecoveryEquivalence(t *testing.T) {
	cfg := workload.YCSB{
		Records: 500, Theta: 0.9, Txns: 400, OpsPerTxn: 8,
		ReadRatio: 0.4, RMW: true, Seed: 21,
	}
	db := cfg.BuildDB()
	w := cfg.Generate()

	var logBuf bytes.Buffer
	l := wal.New(&logBuf, time.Millisecond) // group commit
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewSilo(), DB: db, WAL: l, Seed: 21,
	})
	if m.Committed != 400 {
		t.Fatalf("committed %d", m.Committed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Flushes == 0 || l.Records == 0 {
		t.Fatal("nothing logged")
	}
	t.Logf("records=%d flushes=%d (group factor %.1f)",
		l.Records, l.Flushes, float64(l.Records)/float64(l.Flushes))

	// Crash recovery: fresh load, replay.
	recovered := cfg.BuildDB()
	n, err := wal.Recover(bytes.NewReader(logBuf.Bytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != l.Records {
		t.Fatalf("recovered %d of %d records", n, l.Records)
	}
	// Every row must match.
	mismatch := 0
	db.Table(workload.YCSBTable).Range(func(r *storage.Row) bool {
		rec := recovered.Resolve(txn.Key(r.Key))
		if rec == nil {
			t.Fatalf("row %v missing after recovery", r.Key)
		}
		a, b := r.Load().Fields, rec.Load().Fields
		for i := range a {
			if a[i] != b[i] {
				mismatch++
				break
			}
		}
		return true
	})
	if mismatch != 0 {
		t.Fatalf("%d rows differ after recovery", mismatch)
	}
}

func TestWALIdempotentRecovery(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	tbl.Insert(0)
	w := txn.Workload{txn.New(0).U(txn.MakeKey(0, 0), 5)}
	var buf bytes.Buffer
	l := wal.New(&buf, 0)
	Run(w, []Phase{SpreadRoundRobin(w, 1)}, Config{
		Workers: 1, Protocol: cc.NewOCC(), DB: db, WAL: l,
	})
	l.Close()
	// Recover twice over the live database: state unchanged.
	if _, err := wal.Recover(bytes.NewReader(buf.Bytes()), db); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Recover(bytes.NewReader(buf.Bytes()), db); err != nil {
		t.Fatal(err)
	}
	if tbl.Get(0).Field(0) != 5 {
		t.Errorf("value = %d after double recovery", tbl.Get(0).Field(0))
	}
}

// TestCheckpointPlusLogTail is the full recovery story: run a bundle
// with logging, checkpoint, run another bundle, "crash", then restore
// the checkpoint and replay the whole log — the version-gated replay
// skips records the checkpoint already covers and applies the tail.
func TestCheckpointPlusLogTail(t *testing.T) {
	cfg := workload.YCSB{
		Records: 300, Theta: 0.9, Txns: 200, OpsPerTxn: 6,
		ReadRatio: 0.3, RMW: true, Seed: 31,
	}
	db := cfg.BuildDB()
	var logBuf bytes.Buffer
	l := wal.New(&logBuf, 0)

	run := func(seed int64) {
		c := cfg
		c.Seed = seed
		w := c.Generate()
		m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
			Workers: 4, Protocol: cc.NewTicToc(), DB: db, WAL: l, Seed: seed,
		})
		if m.Committed != 200 {
			t.Fatalf("bundle %d committed %d", seed, m.Committed)
		}
	}
	run(1)

	var ckpt bytes.Buffer
	if err := storage.WriteCheckpoint(&ckpt, db); err != nil {
		t.Fatal(err)
	}
	run(2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash recovery.
	restored, err := storage.ReadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Recover(bytes.NewReader(logBuf.Bytes()), restored); err != nil {
		t.Fatal(err)
	}
	mismatch := 0
	db.Table(workload.YCSBTable).Range(func(r *storage.Row) bool {
		rec := restored.Resolve(txn.Key(r.Key))
		if rec == nil {
			t.Fatalf("row %v missing", r.Key)
		}
		a, b := r.Load().Fields, rec.Load().Fields
		for i := range a {
			if a[i] != b[i] {
				mismatch++
				break
			}
		}
		return true
	})
	if mismatch != 0 {
		t.Fatalf("%d rows differ after checkpoint+tail recovery", mismatch)
	}
}
