package engine

import (
	"testing"
	"time"

	"tskd/internal/cc"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

func TestLatencyPercentiles(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	for i := uint64(0); i < 100; i++ {
		tbl.Insert(i)
	}
	// 90 short transactions and 10 long ones (runtime lower bound):
	// P50 must be short, P99 long.
	w := make(txn.Workload, 100)
	for i := range w {
		w[i] = txn.New(i).R(txn.MakeKey(0, uint64(i)))
		if i >= 90 {
			w[i].MinRuntime = 5 * time.Millisecond
		}
	}
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewSilo(), DB: db, Seed: 1,
	})
	if m.Committed != 100 {
		t.Fatal("not all committed")
	}
	if m.LatencyP50 >= 5*time.Millisecond {
		t.Errorf("P50 = %v, want well below the 5ms long-txn bound", m.LatencyP50)
	}
	// The histogram reports bucket lower bounds (~12% error).
	if m.LatencyP99 < 4400*time.Microsecond {
		t.Errorf("P99 = %v, want ≈ 5ms", m.LatencyP99)
	}
	if m.LatencyP95 < m.LatencyP50 || m.LatencyP99 < m.LatencyP95 {
		t.Errorf("percentiles not monotone: %v %v %v", m.LatencyP50, m.LatencyP95, m.LatencyP99)
	}
}

func TestLatencyEmptyRun(t *testing.T) {
	db := storage.NewDB()
	db.CreateTable(0, "t", 1)
	m := Run(nil, []Phase{SpreadRoundRobin(nil, 2)}, Config{
		Workers: 2, Protocol: cc.NewSilo(), DB: db,
	})
	if m.LatencyP50 != 0 || m.Committed != 0 {
		t.Error("empty run produced latencies")
	}
}
