package engine

import (
	"testing"

	"tskd/internal/cc"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// TestRunPhaseFoldDoesNotCorruptCallerLists pins the fix for a slice
// aliasing bug in runPhase: when a phase has more per-thread lists than
// workers, the extras are folded round-robin with append. The folded
// lists start as copies of the caller's slice headers, so if those
// slices have spare capacity — here, four lists cut from one backing
// array — the appends used to grow into the caller's backing array,
// overwriting the next list's transactions. The symptoms were a
// mutated Phase (bad for callers that reuse or inspect it) and
// transactions silently executed twice or never.
func TestRunPhaseFoldDoesNotCorruptCallerLists(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	const n = 4
	backing := make([]*txn.Transaction, n)
	for i := range backing {
		tbl.Insert(uint64(i))
		// Each transaction increments only its own row, so a clobbered
		// list shows up as a row updated twice or not at all.
		backing[i] = txn.New(i).U(txn.MakeKey(0, uint64(i)), 100)
	}
	// Four single-transaction lists sharing one backing array: list i
	// is backing[i:i+1] with spare capacity reaching into list i+1.
	phase := Phase{PerThread: make([][]*txn.Transaction, n)}
	for i := range phase.PerThread {
		phase.PerThread[i] = backing[i : i+1]
	}

	m := Run(txn.Workload(backing), []Phase{phase}, Config{
		Workers: 2, Protocol: cc.NewSilo(), DB: db, Seed: 7,
	})
	if m.Committed != n {
		t.Fatalf("committed %d of %d", m.Committed, n)
	}
	for i := range phase.PerThread {
		if len(phase.PerThread[i]) != 1 || phase.PerThread[i][0] != backing[i] {
			t.Errorf("caller's PerThread[%d] was rewritten: got %v", i, phase.PerThread[i])
		}
	}
	for i := 0; i < n; i++ {
		row := tbl.Get(uint64(i))
		if row == nil {
			t.Fatalf("row %d missing", i)
		}
		if got := row.Load().Fields[0]; got != 100 {
			t.Errorf("row %d = %d, want 100 (transaction ran %d times)", i, got, got/100)
		}
	}
}
