package engine

import (
	"testing"
	"time"

	"tskd/internal/cc"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// TestDeadlineDropsBeforeFirstAttempt: transactions admitted with an
// already-passed deadline are counted expired and never executed —
// their writes must not land.
func TestDeadlineDropsBeforeFirstAttempt(t *testing.T) {
	db, w := ycsbBundle(3, 100)
	past := time.Now().Add(-time.Second)
	for _, tx := range w {
		tx.Deadline = past
	}
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewOCC(), DB: db, Seed: 3,
	})
	if m.Expired != 100 || m.Committed != 0 {
		t.Fatalf("expired=%d committed=%d, want 100/0", m.Expired, m.Committed)
	}
}

// TestDeadlineMixedDrain: expired transactions are dropped
// individually; live ones in the same drain still commit.
func TestDeadlineMixedDrain(t *testing.T) {
	db, w := ycsbBundle(4, 200)
	past := time.Now().Add(-time.Second)
	future := time.Now().Add(time.Hour)
	for i, tx := range w {
		if i%2 == 0 {
			tx.Deadline = past
		} else {
			tx.Deadline = future
		}
	}
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewOCC(), DB: db, Seed: 4,
	})
	if m.Expired != 100 {
		t.Fatalf("expired = %d, want 100", m.Expired)
	}
	if m.Committed != 100 {
		t.Fatalf("committed = %d, want 100", m.Committed)
	}
}

// TestDeadlineExpiresBetweenRetries: a deadline that passes while a
// transaction is retrying stops its retry loop — dropped, not
// committed. A single hot row under OCC with per-op work keeps the
// drain busy well past the 5ms deadline, so later transactions (and
// mid-retry ones) must expire rather than execute.
func TestDeadlineExpiresBetweenRetries(t *testing.T) {
	db, w := hotRowWorkload(400)
	deadline := time.Now().Add(5 * time.Millisecond)
	for _, tx := range w {
		tx.Deadline = deadline
	}
	m := Run(w, []Phase{SpreadRoundRobin(w, 8)}, Config{
		Workers: 8, Protocol: cc.NewOCC(), DB: db, Seed: 5,
		OpTime: 50 * time.Microsecond,
	})
	if m.Expired == 0 {
		t.Fatalf("no transactions expired under a 5ms deadline on a contended drain (committed=%d retries=%d)", m.Committed, m.Retries)
	}
	if m.Committed+m.Expired+m.UserAborts != 400 {
		t.Fatalf("committed=%d expired=%d: outcomes do not cover the workload", m.Committed, m.Expired)
	}
}

func hotRowWorkload(n int) (*storage.DB, txn.Workload) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "hot", 1)
	tbl.Insert(0)
	w := make(txn.Workload, n)
	for i := range w {
		w[i] = txn.New(i).R(txn.MakeKey(0, 0)).U(txn.MakeKey(0, 0), 1)
	}
	return db, w
}
