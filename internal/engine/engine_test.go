package engine

import (
	"testing"
	"time"

	"tskd/internal/cc"
	"tskd/internal/estimator"
	"tskd/internal/history"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func ycsbBundle(seed int64, txns int) (*storage.DB, txn.Workload) {
	c := workload.YCSB{Records: 500, Theta: 0.9, Txns: txns, OpsPerTxn: 8, ReadRatio: 0.5, RMW: true, Seed: seed}
	return c.BuildDB(), c.Generate()
}

func TestRunCommitsAllUnderEveryProtocol(t *testing.T) {
	for _, name := range cc.Names() {
		t.Run(name, func(t *testing.T) {
			db, w := ycsbBundle(1, 400)
			proto, err := cc.New(name)
			if err != nil {
				t.Fatal(err)
			}
			rec := history.NewRecorder()
			m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
				Workers: 4, Protocol: proto, DB: db, Recorder: rec, Seed: 1,
			})
			if m.Committed != 400 {
				t.Fatalf("committed %d of 400", m.Committed)
			}
			if rec.Len() != 400 {
				t.Fatalf("recorded %d commits", rec.Len())
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("execution not serializable: %v", err)
			}
		})
	}
}

func TestRetriesCountedUnderContention(t *testing.T) {
	// Single hot row hammered by 8 workers under OCC: retries must
	// occur and all updates must land.
	db := storage.NewDB()
	tbl := db.CreateTable(0, "hot", 1)
	tbl.Insert(0)
	const n = 400
	w := make(txn.Workload, n)
	for i := range w {
		// Read the hot row, do some work, then update it: a real
		// vulnerability window for optimistic validation.
		w[i] = txn.New(i).R(txn.MakeKey(0, 0)).U(txn.MakeKey(0, 0), 1)
	}
	m := Run(w, []Phase{SpreadRoundRobin(w, 8)}, Config{
		Workers: 8, Protocol: cc.NewOCC(), DB: db, Seed: 2,
		OpTime: 20 * time.Microsecond,
	})
	if m.Committed != n {
		t.Fatalf("committed %d", m.Committed)
	}
	if got := tbl.Get(0).Field(0); got != n {
		t.Fatalf("hot counter = %d, want %d (lost updates)", got, n)
	}
	if m.Retries == 0 {
		t.Error("no retries under extreme contention is implausible")
	}
	if m.RetryPer100k() <= 0 {
		t.Error("RetryPer100k not positive")
	}
}

func TestTPCCConsistencyAfterRun(t *testing.T) {
	cfg := workload.TPCC{
		Warehouses: 4, CrossPct: 0.25, Txns: 600,
		Items: 100, CustomersPerDistrict: 30, InitOrders: 15, Seed: 3,
	}
	db, w := cfg.Build()
	rec := history.NewRecorder()
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewSilo(), DB: db, Recorder: rec, Seed: 3,
	})
	if m.Committed+m.UserAborts != 600 {
		t.Fatalf("committed %d + user aborts %d != 600", m.Committed, m.UserAborts)
	}
	// ~1% of NewOrders (~45% of the mix) roll back per the spec.
	if m.UserAborts > 30 {
		t.Errorf("implausible user abort count %d", m.UserAborts)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("not serializable: %v", err)
	}
	if err := workload.CheckTPCC(db, cfg); err != nil {
		t.Error(err)
	}
}

func TestPhasesRunInOrder(t *testing.T) {
	// Phase 2 must observe phase 1's effects: phase 1 sets a flag row,
	// phase 2 reads and increments conditioned on it — since our ops
	// are unconditional, instead check ordering via version counts.
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	tbl.Insert(0)
	w := txn.Workload{
		txn.New(0).U(txn.MakeKey(0, 0), 10),
		txn.New(1).U(txn.MakeKey(0, 0), 100),
	}
	m := Run(w, []Phase{
		{PerThread: [][]*txn.Transaction{{w[0]}}},
		{PerThread: [][]*txn.Transaction{{w[1]}}},
	}, Config{Workers: 2, Protocol: cc.NewNoWait(), DB: db, Seed: 1})
	if m.Committed != 2 {
		t.Fatalf("committed %d", m.Committed)
	}
	if tbl.Get(0).Field(0) != 110 {
		t.Errorf("value = %d", tbl.Get(0).Field(0))
	}
}

func TestMinRuntimeEnforced(t *testing.T) {
	db := storage.NewDB()
	db.CreateTable(0, "t", 1).Insert(0)
	tx := txn.New(0).R(txn.MakeKey(0, 0))
	tx.MinRuntime = 20 * time.Millisecond
	m := Run(txn.Workload{tx}, []Phase{SpreadRoundRobin(txn.Workload{tx}, 1)},
		Config{Workers: 1, Protocol: cc.NewSilo(), DB: db})
	if m.Elapsed < 20*time.Millisecond {
		t.Errorf("elapsed %v below the 20ms runtime lower bound", m.Elapsed)
	}
}

func TestIODelayEnforced(t *testing.T) {
	db := storage.NewDB()
	db.CreateTable(0, "t", 1).Insert(0)
	tx := txn.New(0).R(txn.MakeKey(0, 0))
	tx.IODelay = 15 * time.Millisecond
	m := Run(txn.Workload{tx}, []Phase{SpreadRoundRobin(txn.Workload{tx}, 1)},
		Config{Workers: 1, Protocol: cc.NewSilo(), DB: db})
	if m.Elapsed < 15*time.Millisecond {
		t.Errorf("elapsed %v below the 15ms IO delay", m.Elapsed)
	}
}

func TestDeferReducesOrKeepsCorrectness(t *testing.T) {
	db, w := ycsbBundle(5, 600)
	rec := history.NewRecorder()
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewOCC(), DB: db,
		Defer: DefaultDefer(), Recorder: rec, Seed: 5,
	})
	if m.Committed != 600 {
		t.Fatalf("committed %d", m.Committed)
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("not serializable with TsDEFER: %v", err)
	}
	t.Logf("defers=%d retries=%d contended=%d", m.Defers, m.Retries, m.Contended)
}

func TestDeferAlphaMasking(t *testing.T) {
	db, w := ycsbBundle(6, 300)
	d := DefaultDefer()
	d.Alpha = 0.5
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewOCC(), DB: db, Defer: d, Seed: 6,
	})
	if m.Committed != 300 {
		t.Fatalf("committed %d", m.Committed)
	}
}

func TestCostSinkLearns(t *testing.T) {
	db, w := ycsbBundle(7, 100)
	h := estimator.NewHistory()
	Run(w, []Phase{SpreadRoundRobin(w, 2)}, Config{
		Workers: 2, Protocol: cc.NewSilo(), DB: db, CostSink: h, Seed: 7,
	})
	if h.Len() == 0 {
		t.Error("history estimator learned nothing")
	}
	est := h.Estimate(&txn.Transaction{Template: "YCSB-A"})
	if est <= 0 {
		t.Errorf("estimate = %v", est)
	}
}

func TestMoreListsThanWorkersFolded(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 1)
	tbl.Insert(0)
	w := make(txn.Workload, 8)
	per := make([][]*txn.Transaction, 8)
	for i := range w {
		w[i] = txn.New(i).U(txn.MakeKey(0, 0), 1)
		per[i] = []*txn.Transaction{w[i]}
	}
	m := Run(w, []Phase{{PerThread: per}}, Config{
		Workers: 2, Protocol: cc.NewNoWait(), DB: db, Seed: 1,
	})
	if m.Committed != 8 {
		t.Fatalf("committed %d of 8", m.Committed)
	}
	if tbl.Get(0).Field(0) != 8 {
		t.Error("folded lists lost transactions")
	}
}

func TestSpreadRoundRobin(t *testing.T) {
	w := make([]*txn.Transaction, 7)
	for i := range w {
		w[i] = txn.New(i)
	}
	p := SpreadRoundRobin(w, 3)
	if len(p.PerThread) != 3 {
		t.Fatal("wrong thread count")
	}
	if len(p.PerThread[0]) != 3 || len(p.PerThread[1]) != 2 || len(p.PerThread[2]) != 2 {
		t.Errorf("deal = %d/%d/%d", len(p.PerThread[0]), len(p.PerThread[1]), len(p.PerThread[2]))
	}
	if p.PerThread[0][1].ID != 3 {
		t.Error("order not round-robin")
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{Committed: 50_000, Retries: 5_000, Elapsed: 2 * time.Second}
	if m.Throughput() != 25_000 {
		t.Errorf("Throughput = %v", m.Throughput())
	}
	if m.RetryPer100k() != 10_000 {
		t.Errorf("RetryPer100k = %v", m.RetryPer100k())
	}
	var z Metrics
	if z.Throughput() != 0 || z.RetryPer100k() != 0 {
		t.Error("zero metrics not zero")
	}
	a := Metrics{Committed: 1, Retries: 2, Defers: 3, Contended: 4, Elapsed: time.Second}
	a.Add(Metrics{Committed: 10, Retries: 20, Defers: 30, Contended: 40, Elapsed: time.Second})
	if a.Committed != 11 || a.Retries != 22 || a.Defers != 33 || a.Contended != 44 || a.Elapsed != 2*time.Second {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestInsertsCreateRows(t *testing.T) {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "t", 2)
	w := txn.Workload{txn.New(0).IF(txn.MakeKey(0, 99), 1, 42)}
	m := Run(w, []Phase{SpreadRoundRobin(w, 1)}, Config{
		Workers: 1, Protocol: cc.NewSilo(), DB: db,
	})
	if m.Committed != 1 {
		t.Fatal("insert txn did not commit")
	}
	r := tbl.Get(99)
	if r == nil || r.Field(1) != 42 {
		t.Error("insert did not create/initialize the row")
	}
}

func TestUnknownTableIgnored(t *testing.T) {
	db := storage.NewDB()
	w := txn.Workload{txn.New(0).R(txn.MakeKey(42, 1))}
	m := Run(w, []Phase{SpreadRoundRobin(w, 1)}, Config{
		Workers: 1, Protocol: cc.NewSilo(), DB: db,
	})
	if m.Committed != 1 {
		t.Error("transaction over unknown table did not commit as no-op")
	}
}

func TestPerTemplateMetrics(t *testing.T) {
	cfg := workload.TPCC{
		Warehouses: 4, CrossPct: 0.25, Txns: 500,
		Items: 100, CustomersPerDistrict: 30, InitOrders: 15, Seed: 8,
	}
	db, w := cfg.Build()
	m := Run(w, []Phase{SpreadRoundRobin(w, 4)}, Config{
		Workers: 4, Protocol: cc.NewSilo(), DB: db, Seed: 8,
	})
	if len(m.PerTemplate) < 4 {
		t.Fatalf("templates tracked: %v", m.PerTemplate)
	}
	var total uint64
	for name, tm := range m.PerTemplate {
		if tm.Committed == 0 {
			t.Errorf("template %s committed 0", name)
		}
		total += tm.Committed
	}
	if total != m.Committed {
		t.Errorf("per-template sum %d != committed %d", total, m.Committed)
	}
	// The mix: NewOrder should dominate.
	if m.PerTemplate["NewOrder"].Committed < m.PerTemplate["Delivery"].Committed {
		t.Error("NewOrder should outnumber Delivery")
	}
}
