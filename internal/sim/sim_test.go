package sim

import (
	"testing"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/estimator"
	"tskd/internal/partition"
	"tskd/internal/sched"
	"tskd/internal/txn"
	"tskd/internal/zipf"
)

func opCost() func(*txn.Transaction) clock.Units {
	return func(t *txn.Transaction) clock.Units { return clock.Units(t.Len()) }
}

func example1() txn.Workload {
	return txn.MustParseWorkload(`
		R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]
		R[x1]W[x2]W[x1]
		R[x3]W[x3]R[x2]R[x3]W[x2]
		R[x5]W[x5]R[x6]W[x6]
		R[x1]W[x1]R[x5]W[x5]R[x1]W[x1]
	`)
}

// With exact estimates (zero noise), executing the Example 1 schedule
// produces zero retries and exactly the analytic makespan of 14 — the
// paper's core claim that a proper schedule is runtime-conflict free.
func TestExample1ScheduleExact(t *testing.T) {
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	plan := partition.NewPlan(2)
	plan.Parts[0] = []*txn.Transaction{w[0], w[1], w[2]}
	plan.Parts[1] = []*txn.Transaction{w[3]}
	plan.Residual = []*txn.Transaction{w[4]}
	s := sched.Generate(w, plan, g, estimator.AccessSetSize{}, sched.Options{})

	res := Run([][][]*txn.Transaction{s.Queues}, g, Config{Cost: opCost(), Noise: 0, Seed: 1})
	if res.Retries != 0 {
		t.Errorf("exact schedule retried %d times", res.Retries)
	}
	if res.Makespan != 14 {
		t.Errorf("makespan = %v, want 14", res.Makespan)
	}
	if res.Committed != 5 {
		t.Errorf("committed %d", res.Committed)
	}
}

// The partitioned execution of Example 1 (partitions then residual
// phase) costs 20 — the simulator reproduces Fig. 1(a) as well.
func TestExample1PartitionCosts20(t *testing.T) {
	w := example1()
	g := conflict.Build(w, conflict.Serializability)
	phases := [][][]*txn.Transaction{
		{{w[0], w[1], w[2]}, {w[3]}}, // P1, P2
		{{w[4]}, nil},                // residual after the barrier
	}
	res := Run(phases, g, Config{Cost: opCost(), Noise: 0, Seed: 1})
	if res.Makespan != 20 {
		t.Errorf("makespan = %v, want 20 (Fig. 1a)", res.Makespan)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d", res.Retries)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	w := randomWorkload(200, 50, 6, 0.9, 3)
	g := conflict.Build(w, conflict.Serializability)
	s := sched.GenerateFromScratch(w, g, estimator.AccessSetSize{}, 4, sched.Options{Seed: 3})
	phases := [][][]*txn.Transaction{s.Queues}
	if len(s.Residual) > 0 {
		per := make([][]*txn.Transaction, 4)
		for i, t := range s.Residual {
			per[i%4] = append(per[i%4], t)
		}
		phases = append(phases, per)
	}
	a := Run(phases, g, Config{Cost: opCost(), Noise: 0.3, Seed: 7})
	b := Run(phases, g, Config{Cost: opCost(), Noise: 0.3, Seed: 7})
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := Run(phases, g, Config{Cost: opCost(), Noise: 0.3, Seed: 8})
	if a == c {
		t.Error("different seeds identical (suspicious)")
	}
}

// Noise creates drift, drift creates retries on a schedule that is
// only RC-free under exact estimates.
func TestNoiseCausesRetries(t *testing.T) {
	w := randomWorkload(300, 30, 6, 0.9, 5)
	g := conflict.Build(w, conflict.Serializability)
	s := sched.GenerateFromScratch(w, g, estimator.AccessSetSize{}, 4, sched.Options{Seed: 5})
	phases := [][][]*txn.Transaction{s.Queues}
	exact := Run(phases, g, Config{Cost: opCost(), Noise: 0, Seed: 9})
	noisy := Run(phases, g, Config{Cost: opCost(), Noise: 0.5, Seed: 9})
	if exact.Retries != 0 {
		t.Errorf("exact estimates retried %d times — ckRCF or the simulator is wrong", exact.Retries)
	}
	if noisy.Retries == 0 {
		t.Error("50%% duration noise caused no retries (model inert)")
	}
}

// The simulator reproduces the paper's headline comparison shape
// deterministically: a TSgen schedule beats round-robin assignment of
// the same workload.
func TestScheduleBeatsRoundRobinDeterministic(t *testing.T) {
	w := randomWorkload(400, 60, 6, 0.9, 11)
	g := conflict.Build(w, conflict.Serializability)

	s := sched.GenerateFromScratch(w, g, estimator.AccessSetSize{}, 4, sched.Options{Seed: 11})
	phases := [][][]*txn.Transaction{s.Queues}
	if len(s.Residual) > 0 {
		per := make([][]*txn.Transaction, 4)
		for i, t := range s.Residual {
			per[i%4] = append(per[i%4], t)
		}
		phases = append(phases, per)
	}
	scheduled := Run(phases, g, Config{Cost: opCost(), Noise: 0.1, Seed: 13})

	rr := make([][]*txn.Transaction, 4)
	for i, t := range w {
		rr[i%4] = append(rr[i%4], t)
	}
	baseline := Run([][][]*txn.Transaction{rr}, g, Config{Cost: opCost(), Noise: 0.1, Seed: 13})

	if scheduled.Retries >= baseline.Retries {
		t.Errorf("scheduled retries %d not below round-robin %d",
			scheduled.Retries, baseline.Retries)
	}
	t.Logf("scheduled: makespan %v retries %d; round-robin: makespan %v retries %d",
		scheduled.Makespan, scheduled.Retries, baseline.Makespan, baseline.Retries)
}

func TestMaxRetriesBound(t *testing.T) {
	// Two eternally conflicting txns on two threads with pathological
	// noise would retry a lot; the bound forces progress.
	w := txn.Workload{
		txn.MustParse(0, "W[x1]W[x1]"),
		txn.MustParse(1, "W[x1]W[x1]"),
	}
	g := conflict.Build(w, conflict.Serializability)
	phases := [][][]*txn.Transaction{{{w[0]}, {w[1]}}}
	res := Run(phases, g, Config{Cost: opCost(), Noise: 0, MaxRetries: 3, Seed: 1})
	if res.Committed != 2 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.Retries > 6 {
		t.Errorf("retries %d exceed bound", res.Retries)
	}
}

func randomWorkload(n, nKeys, opsPer int, theta float64, seed int64) txn.Workload {
	g := zipf.New(uint64(nKeys), theta, seed)
	w := make(txn.Workload, n)
	for i := range w {
		tx := txn.New(i)
		ops := int(g.Uniform(uint64(opsPer))) + 1
		for j := 0; j < ops; j++ {
			k := txn.MakeKey(0, g.Next())
			if g.Float64() < 0.5 {
				tx.R(k)
			} else {
				tx.W(k)
			}
		}
		w[i] = tx
	}
	return w
}
