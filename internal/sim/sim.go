// Package sim is a deterministic discrete-event simulator of
// multi-core transaction execution under optimistic concurrency
// control. It complements the real executor (internal/engine): the
// engine measures true concurrent behaviour but inherits scheduler and
// host noise; the simulator replays the same phase structure in pure
// virtual time with a seeded duration-noise model, so experiment
// *shapes* can be verified bit-for-bit reproducibly on any machine.
//
// Model: each thread executes its list serially. A transaction's
// attempt occupies [s, s+d) where d = estimate × a seeded noise
// factor (emulating estimate error / drift). At the attempt's end the
// transaction validates: if any conflicting transaction committed with
// an interval overlapping the attempt window, the attempt aborts and
// retries immediately (OCC semantics — the validation victim re-pays
// its duration). Phases are barriers, as in the engine.
package sim

import (
	"container/heap"
	"math/rand"

	"tskd/internal/clock"
	"tskd/internal/conflict"
	"tskd/internal/txn"
)

// Config parameterizes a simulation.
type Config struct {
	// Cost returns time(T) in units.
	Cost func(*txn.Transaction) clock.Units
	// Noise is the maximum relative duration error ε: each attempt
	// draws its duration uniformly from [est·(1−ε), est·(1+ε)].
	// Zero makes estimates exact (a perfect schedule never retries).
	Noise float64
	// MaxRetries bounds retries per transaction (0 = unbounded); the
	// simulation counts a forced commit after the bound.
	MaxRetries int
	// Seed drives the noise.
	Seed int64
}

// Result is the simulation outcome.
type Result struct {
	// Makespan is the total virtual time across phases.
	Makespan clock.Units
	// Retries is the total number of aborted attempts.
	Retries uint64
	// Committed is the number of committed transactions.
	Committed int
}

// Throughput returns committed per unit of makespan (×1000 for
// readable magnitudes).
func (r Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return 1000 * float64(r.Committed) / float64(r.Makespan)
}

// committedIval is a committed transaction's final interval.
type committedIval struct {
	start, end clock.Units
}

// event is a pending commit attempt.
type event struct {
	end    clock.Units
	thread int
	seq    int // tiebreaker for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run simulates the phases (lists per thread, barrier between phases)
// against the conflict graph g.
func Run(phases [][][]*txn.Transaction, g *conflict.Graph, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{}
	committed := map[int]committedIval{}
	var phaseOffset clock.Units

	for _, phase := range phases {
		k := len(phase)
		threadTime := make([]clock.Units, k)
		nextIdx := make([]int, k)
		attemptStart := make([]clock.Units, k)
		retries := make([]int, k)

		var h eventHeap
		seq := 0
		dur := func(t *txn.Transaction) clock.Units {
			d := cfg.Cost(t)
			if d <= 0 {
				d = 1
			}
			if cfg.Noise > 0 {
				f := 1 + cfg.Noise*(2*rng.Float64()-1)
				d = clock.Units(float64(d) * f)
			}
			return d
		}
		start := func(th int) {
			if nextIdx[th] >= len(phase[th]) {
				return
			}
			t := phase[th][nextIdx[th]]
			attemptStart[th] = threadTime[th]
			threadTime[th] += dur(t)
			heap.Push(&h, event{end: threadTime[th], thread: th, seq: seq})
			seq++
		}
		for th := 0; th < k; th++ {
			start(th)
		}
		for h.Len() > 0 {
			ev := heap.Pop(&h).(event)
			th := ev.thread
			t := phase[th][nextIdx[th]]
			s, e := attemptStart[th], ev.end
			// Validate in global time: any conflicting commit with an
			// interval overlapping this attempt's window? (Commits from
			// earlier phases ended before phaseOffset and cannot
			// overlap.)
			gs, ge := phaseOffset+s, phaseOffset+e
			aborted := false
			if cfg.MaxRetries <= 0 || retries[th] < cfg.MaxRetries {
				for _, nb := range g.Neighbors(t.ID) {
					if iv, ok := committed[int(nb)]; ok && iv.end > gs && iv.start < ge {
						aborted = true
						break
					}
				}
			}
			if aborted {
				res.Retries++
				retries[th]++
				attemptStart[th] = e
				threadTime[th] = e + dur(t)
				heap.Push(&h, event{end: threadTime[th], thread: th, seq: seq})
				seq++
				continue
			}
			committed[t.ID] = committedIval{start: phaseOffset + s, end: phaseOffset + e}
			res.Committed++
			retries[th] = 0
			nextIdx[th]++
			start(th)
		}
		var phaseLen clock.Units
		for _, tt := range threadTime {
			if tt > phaseLen {
				phaseLen = tt
			}
		}
		phaseOffset += phaseLen
		res.Makespan += phaseLen
	}
	return res
}
