package wal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

type recordingMonitor struct {
	mu     sync.Mutex
	starts int
	ends   int
	errs   int
	minDur time.Duration
}

func (m *recordingMonitor) FlushStart() {
	m.mu.Lock()
	m.starts++
	m.mu.Unlock()
}

func (m *recordingMonitor) FlushEnd(d time.Duration, err error) {
	m.mu.Lock()
	m.ends++
	if err != nil {
		m.errs++
	}
	if m.minDur == 0 || d < m.minDur {
		m.minDur = d
	}
	m.mu.Unlock()
}

type errSyncer struct{ err error }

func (s errSyncer) Sync() error { return s.err }

// TestFlushMonitor pins the monitor contract: one Start/End pair per
// physical flush, the End carrying the flush's outcome.
func TestFlushMonitor(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 0)
	var m recordingMonitor
	l.SetMonitor(&m)
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{TxnID: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if m.starts != 3 || m.ends != 3 || m.errs != 0 {
		t.Fatalf("monitor saw starts=%d ends=%d errs=%d, want 3/3/0", m.starts, m.ends, m.errs)
	}

	// A failing sync barrier surfaces through FlushEnd's error.
	le := NewDurable(&buf, errSyncer{errors.New("EIO")}, 0)
	m = recordingMonitor{}
	le.SetMonitor(&m)
	if err := le.Append(Record{TxnID: 9}); err == nil {
		t.Fatal("append over failing syncer should error")
	}
	if m.starts != 1 || m.ends != 1 || m.errs != 1 {
		t.Fatalf("monitor saw starts=%d ends=%d errs=%d, want 1/1/1", m.starts, m.ends, m.errs)
	}
}
