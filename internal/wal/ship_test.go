package wal

import (
	"bytes"
	"errors"
	"testing"
)

// captureShipper records every shipped group and can be armed to fail.
type captureShipper struct {
	groups  [][]byte
	firsts  []uint64
	records []int
	fail    error
}

func (c *captureShipper) Ship(first uint64, records int, data []byte) error {
	if c.fail != nil {
		return c.fail
	}
	c.groups = append(c.groups, append([]byte(nil), data...))
	c.firsts = append(c.firsts, first)
	c.records = append(c.records, records)
	return nil
}

// TestShipperSeesEveryGroup appends through a shipping log and checks
// the shipped byte stream is the log itself: concatenating the groups
// and replaying yields every record, and the (firstLSN, records)
// framing tiles the LSN space exactly.
func TestShipperSeesEveryGroup(t *testing.T) {
	dir := t.TempDir()
	ship := &captureShipper{}
	l, err := OpenDir(dir, DirOptions{NoSync: true, Shipper: ship})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(segRec(int64(i), uint64(i), uint64(i+1))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var next uint64
	total := 0
	var stream bytes.Buffer
	for i, g := range ship.groups {
		if ship.firsts[i] != next {
			t.Fatalf("group %d starts at LSN %d, want %d", i, ship.firsts[i], next)
		}
		next = ship.firsts[i] + uint64(ship.records[i])
		total += ship.records[i]
		stream.Write(g)
	}
	if total != n || next != n {
		t.Fatalf("shipped %d records up to LSN %d, want %d", total, next, n)
	}
	applied := 0
	if _, err := Replay(&stream, func(rec Record) error {
		if rec.TxnID != int64(applied) {
			t.Fatalf("shipped record %d has txn id %d", applied, rec.TxnID)
		}
		applied++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if applied != n {
		t.Fatalf("shipped stream replays %d records, want %d", applied, n)
	}
}

// TestShipperErrorFailsAppend: a failing Ship must surface to the
// appender — the sync-replication contract that an unreplicated commit
// is never acknowledged.
func TestShipperErrorFailsAppend(t *testing.T) {
	dir := t.TempDir()
	shipErr := errors.New("backup unreachable")
	ship := &captureShipper{fail: shipErr}
	l, err := OpenDir(dir, DirOptions{NoSync: true, Shipper: ship})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(segRec(1, 1, 1)); !errors.Is(err, shipErr) {
		t.Fatalf("Append = %v, want the ship error", err)
	}
	// The record is on disk regardless (local flush preceded the ship),
	// so clearing the shipper lets the log continue.
	l.SetShipper(nil)
	if err := l.Append(segRec(2, 2, 1)); err != nil {
		t.Fatalf("append after clearing shipper: %v", err)
	}
	l.Close()
}

// TestShipperGroupedAppends checks group commit ships one frame per
// flush, not per record, with the group window armed.
func TestShipperGroupedAppends(t *testing.T) {
	ship := &captureShipper{}
	var buf bytes.Buffer
	l := New(&buf, 0)
	l.SetShipper(ship)
	for i := 0; i < 3; i++ {
		if err := l.Append(segRec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ship.groups) != 3 {
		t.Fatalf("synchronous log shipped %d groups, want 3", len(ship.groups))
	}
	for i, first := range ship.firsts {
		if first != uint64(i) || ship.records[i] != 1 {
			t.Fatalf("group %d = (first %d, records %d)", i, first, ship.records[i])
		}
	}
}
