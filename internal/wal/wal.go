// Package wal implements a redo-only write-ahead log with group
// commit, the durability substrate behind the paper's commit-time I/O
// latency knob: real systems stall at commit exactly because a log
// record must reach stable storage before the transaction
// acknowledges.
//
// Records carry the installed row versions (redo images tagged with
// their version numbers), so replay is idempotent and order-
// independent per key: a record applies only when its version is newer
// than what the database already holds. That makes the log correct
// even though concurrent workers append in nondeterministic order.
//
// Format (little endian), one record:
//
//	u32 payload length | u32 CRC32(payload) | payload
//
// payload: i64 txnID | u32 nWrites | nWrites × (u64 key | u64 ver |
// u16 nFields | nFields × u64) | [u64 idemKey [u8 kind]]. The trailing
// idempotency key is optional (older logs omit it; decode treats a
// missing tail as key 0), carrying the serving layer's exactly-once
// dedup window through crashes. The kind byte after it distinguishes
// the multi-shard runtime's record roles — 2PC prepares, coordinator
// commit decisions, coordinator boot marks — from plain redo; it is
// written only for non-commit kinds, so commit records stay
// byte-identical to the original format and the trailer remains
// unambiguous by length (8 bytes = idemKey only, 9 = idemKey + kind).
// Replay stops cleanly at a torn or corrupt tail, which is how crash
// recovery discards incomplete group flushes.
//
// Records are addressed by LSN — the zero-based index of the record in
// the log's lifetime append order. A Log opened over a directory
// (OpenDir) rotates size-bounded segment files named by the LSN of
// their first record, syncs every group flush through a Syncer (the
// fsync that makes "durable" mean durable), and truncates sealed
// segments once a checkpoint covers them (TruncateSealed).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Update is the redo image of one row write.
type Update struct {
	// Key is the row's global key (txn.Key as raw bits).
	Key uint64
	// Ver is the installed version; replay applies the highest.
	Ver uint64
	// Fields is the committed image.
	Fields []uint64
}

// RecordKind distinguishes the roles a log record can play. Plain redo
// (RecordCommit) is the zero value and the only kind replay applies to
// the store; the other kinds carry the multi-shard runtime's two-phase
// commit protocol state through crashes.
type RecordKind uint8

const (
	// RecordCommit is a committed transaction's redo images — the only
	// kind ApplyRecord installs.
	RecordCommit RecordKind = iota
	// RecordPrepare is a 2PC participant's prepared redo: the write set
	// a shard voted yes on, not yet decided. Recovery parks it until the
	// coordinator log resolves the global transaction (TxnID carries the
	// global transaction id); absence of a decision means abort.
	RecordPrepare
	// RecordDecision is a coordinator's durable commit decision for the
	// global transaction in TxnID (presumed abort: only commits are
	// logged). It carries no writes; IdemKey rides along so cross-shard
	// exactly-once survives crashes.
	RecordDecision
	// RecordBoot marks a coordinator incarnation in its log. Counting
	// boot records yields a monotonic epoch that keeps global
	// transaction ids unique across restarts.
	RecordBoot
)

// Record is one transaction's commit record (or, for non-commit kinds,
// one 2PC protocol record).
type Record struct {
	TxnID  int64
	Writes []Update
	// IdemKey is the client-chosen idempotency key of the request that
	// produced this commit (0 = none). Recovery feeds it back into the
	// serving layer's dedup window so resubmission after a crash stays
	// exactly-once.
	IdemKey uint64
	// Kind is the record's role; the zero value is plain redo.
	Kind RecordKind
}

// Syncer is the stable-storage barrier a durable log flushes through:
// *os.File satisfies it with fsync. A nil Syncer means group flushes
// stop at the OS page cache (fine for tests and simulations, not for a
// server that acknowledges commits).
type Syncer interface {
	Sync() error
}

// FlushMonitor observes physical group flushes (write plus Syncer
// barrier). FlushStart is called as a flush enters the device and
// FlushEnd with its duration and outcome; the pair lets an overload
// breaker watch both finished-flush latency and the age of a flush
// that never returns. The monitor is called under the log's mutex and
// must not call back into the Log.
type FlushMonitor interface {
	FlushStart()
	FlushEnd(d time.Duration, err error)
}

// Shipper receives every flushed group after it reached stable storage
// locally — the replication hook. firstLSN is the LSN of the group's
// first record, records the count in the group, and data the exact
// bytes written (framed records, replayable as-is). A non-nil return
// fails the flush: every appender waiting on the group gets the error
// instead of a durability ack, which is how synchronous replication
// withholds client acks until the backup confirmed the bytes. Ship is
// called under the log's mutex after the local fsync and after the
// FlushMonitor saw the flush (so a WAL-stall breaker never charges
// network latency to the disk); it must not call back into the Log,
// and data is only valid for the duration of the call.
type Shipper interface {
	Ship(firstLSN uint64, records int, data []byte) error
}

// FlushGate vetoes durability acknowledgements: it is consulted on
// every flush after the local fsync, alongside the Shipper, and a
// non-nil return fails the flush exactly as a ship failure does —
// every appender waiting on the group gets the error instead of an
// ack. The automatic-failover path installs the primary's lease check
// here, so a node whose lease lapsed (or that was fenced by the
// arbiter) can never acknowledge another commit even if its replica
// link is still up. Called under the log's mutex; must not call back
// into the Log.
type FlushGate func() error

// Log is a group-committing redo log over an io.Writer. Append is safe
// for concurrent use; records become durable when the group they
// joined is flushed (Append returns after the flush, i.e. commits are
// acknowledged only once durable).
type Log struct {
	mu      sync.Mutex
	w       io.Writer
	sync    Syncer // nil: no stable-storage barrier
	monitor FlushMonitor
	shipper Shipper
	gate    FlushGate
	// shipStart is the LSN of the first record in the pending group
	// (meaningful only while pending is non-empty): nextLSN advances per
	// append, so the group's base must be pinned when the group opens.
	shipStart uint64
	// wrapSync decorates the stable-storage barrier (fault injection);
	// rotation re-applies it to each new segment file.
	wrapSync func(Syncer) Syncer
	pending  []byte
	waiters  []chan error

	// GroupWindow batches appends for up to this long before flushing
	// (group commit). Zero flushes on every append.
	groupWindow time.Duration
	flushTimer  *time.Timer
	closed      bool

	// LSN and byte accounting.
	nextLSN uint64 // LSN the next appended record receives
	bytes   int64  // total bytes appended over the log's lifetime

	// Segmented (directory-backed) mode; zero values for plain logs.
	dir        string
	segBytes   int64
	segStart   uint64 // first LSN of the active segment
	segWritten int64  // bytes flushed into the active segment
	active     *os.File
	sealed     []SegmentInfo

	// Flushes counts physical flushes (for observing group commit).
	Flushes uint64
	// Syncs counts Syncer barriers issued (one per flush when armed).
	Syncs uint64
	// Records counts appended records.
	Records uint64
}

// New returns a log writing to w with the given group-commit window
// (0 = synchronous flush per record).
func New(w io.Writer, groupWindow time.Duration) *Log {
	return &Log{w: w, groupWindow: groupWindow}
}

// NewDurable is New with a stable-storage barrier: every group flush is
// followed by sync.Sync() before waiters are released, so Append
// returning nil means the record survived a crash of the process or
// the OS. Pass the same *os.File as both w and sync for a plain
// file-backed log; OpenDir builds on this with segment rotation.
func NewDurable(w io.Writer, sync Syncer, groupWindow time.Duration) *Log {
	return &Log{w: w, sync: sync, groupWindow: groupWindow}
}

// NextLSN returns the LSN the next appended record will receive —
// equivalently, the number of records ever appended (plus the StartLSN
// the log was opened at). Between bundles, with no append in flight,
// it is the exclusive upper bound of the durable prefix and therefore
// the LSN a checkpoint is taken at.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// AppendedBytes returns the total bytes appended over the log's
// lifetime (headers included). The serving layer's checkpointer uses
// the delta since the last checkpoint as its trigger.
func (l *Log) AppendedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// SetMonitor installs the flush monitor (nil removes it). Install
// before traffic: the monitor is read under the log's mutex.
func (l *Log) SetMonitor(m FlushMonitor) {
	l.mu.Lock()
	l.monitor = m
	l.mu.Unlock()
}

// SetShipper installs the replication shipper (nil removes it).
// Install before traffic: the shipper is read under the log's mutex.
func (l *Log) SetShipper(s Shipper) {
	l.mu.Lock()
	l.shipper = s
	l.mu.Unlock()
}

// SetFlushGate installs the flush gate (nil removes it). Install
// before traffic: the gate is read under the log's mutex.
func (l *Log) SetFlushGate(g FlushGate) {
	l.mu.Lock()
	l.gate = g
	l.mu.Unlock()
}

// Counters returns (records, flushes, syncs) under the log's mutex —
// the race-safe way to observe a live log (the exported fields are for
// single-threaded inspection after Close).
func (l *Log) Counters() (records, flushes, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.Records, l.Flushes, l.Syncs
}

// ErrClosed reports appends to a closed log.
var ErrClosed = errors.New("wal: closed")

// encodeBufPool recycles record encode buffers across appends: a record
// is serialized (with its 8-byte header backfilled) into a pooled
// buffer outside the log mutex, copied into the pending group under it,
// and the buffer returned before the append blocks on durability.
var encodeBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// waiterPool recycles the single-use durability-notification channels.
// Every registered waiter is sent exactly one error (flush, Close) and
// its appender receives exactly once before recycling, so a pooled
// channel is always empty when reused.
var waiterPool = sync.Pool{New: func() any { return make(chan error, 1) }}

// Append serializes rec into the current group and blocks until that
// group is durable.
func (l *Log) Append(rec Record) error {
	bp := encodeBufPool.Get().(*[]byte)
	buf := appendRecord((*bp)[:0], rec)
	*bp = buf

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		encodeBufPool.Put(bp)
		return ErrClosed
	}
	if len(l.pending) == 0 {
		l.shipStart = l.nextLSN
	}
	l.pending = append(l.pending, buf...)
	l.Records++
	l.nextLSN++
	l.bytes += int64(len(buf))
	if l.groupWindow <= 0 {
		err := l.flushLocked()
		l.mu.Unlock()
		encodeBufPool.Put(bp)
		return err
	}
	ch := waiterPool.Get().(chan error)
	l.waiters = append(l.waiters, ch)
	if l.flushTimer == nil {
		l.flushTimer = time.AfterFunc(l.groupWindow, func() {
			l.mu.Lock()
			l.flushTimer = nil
			err := l.flushLocked()
			l.notifyLocked(err)
			l.mu.Unlock()
		})
	}
	l.mu.Unlock()
	encodeBufPool.Put(bp)
	err := <-ch
	waiterPool.Put(ch)
	return err
}

// Flush forces the current group out.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	l.notifyLocked(err)
	return err
}

// Close flushes and marks the log closed. Directory-backed logs also
// sync and close their active segment file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	l.notifyLocked(err)
	l.closed = true
	if l.flushTimer != nil {
		l.flushTimer.Stop()
		l.flushTimer = nil
	}
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	return err
}

func (l *Log) flushLocked() error {
	if len(l.pending) == 0 {
		return nil
	}
	n := len(l.pending)
	// The group's bytes stay valid through the Ship call below: pending
	// is reset to length zero but the backing array is untouched, and no
	// append can reuse it while the mutex is held.
	group := l.pending
	first := l.shipStart
	records := int(l.nextLSN - l.shipStart)
	var start time.Time
	if l.monitor != nil {
		l.monitor.FlushStart()
		start = time.Now()
	}
	_, err := l.w.Write(group)
	l.pending = l.pending[:0]
	l.Flushes++
	if err == nil && l.sync != nil {
		err = l.sync.Sync()
		l.Syncs++
	}
	if l.monitor != nil {
		l.monitor.FlushEnd(time.Since(start), err)
	}
	// The gate runs before the ship: a fenced primary must not even
	// offer the group to its backup, let alone ack it locally.
	if err == nil && l.gate != nil {
		err = l.gate()
	}
	if err == nil && l.shipper != nil {
		err = l.shipper.Ship(first, records, group)
	}
	l.segWritten += int64(n)
	if err == nil && l.active != nil && l.segWritten >= l.segBytes {
		err = l.rotateLocked()
	}
	return err
}

func (l *Log) notifyLocked(err error) {
	for _, ch := range l.waiters {
		ch <- err
	}
	l.waiters = l.waiters[:0]
}

// appendRecord appends rec's framed encoding (length/CRC header plus
// payload) to buf: the header bytes are reserved first and backfilled
// once the payload is serialized, so the whole record is built in one
// buffer with no intermediate payload allocation.
func appendRecord(buf []byte, rec Record) []byte {
	head := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.TxnID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Writes)))
	for _, u := range rec.Writes {
		buf = binary.LittleEndian.AppendUint64(buf, u.Key)
		buf = binary.LittleEndian.AppendUint64(buf, u.Ver)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u.Fields)))
		for _, f := range u.Fields {
			buf = binary.LittleEndian.AppendUint64(buf, f)
		}
	}
	// Trailing idempotency key: written only when set, so logs from
	// clients that do not use idempotency stay byte-identical to the
	// original format. Non-commit kinds always write the key plus a
	// kind byte; the trailer stays unambiguous by length.
	if rec.Kind != RecordCommit {
		buf = binary.LittleEndian.AppendUint64(buf, rec.IdemKey)
		buf = append(buf, byte(rec.Kind))
	} else if rec.IdemKey != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, rec.IdemKey)
	}
	payload := buf[head+8:]
	binary.LittleEndian.PutUint32(buf[head:head+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[head+4:head+8], crc32.ChecksumIEEE(payload))
	return buf
}

// Replay scans records from r, calling apply for each intact record in
// order. It returns the number of applied records. A torn or corrupt
// tail terminates the scan without error (standard crash-recovery
// semantics); corruption mid-payload is detected by the checksum.
func Replay(r io.Reader, apply func(Record) error) (int, error) {
	applied := 0
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return applied, nil // clean or torn end
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return applied, nil // corrupt length: stop
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return applied, nil // torn record
		}
		if crc32.ChecksumIEEE(payload) != want {
			return applied, nil // corrupt record: stop
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return applied, nil
		}
		if err := apply(rec); err != nil {
			return applied, fmt.Errorf("wal: apply: %w", err)
		}
		applied++
	}
}

func decodePayload(b []byte) (Record, error) {
	var rec Record
	if len(b) < 12 {
		return rec, errors.New("short payload")
	}
	rec.TxnID = int64(binary.LittleEndian.Uint64(b[0:8]))
	n := binary.LittleEndian.Uint32(b[8:12])
	off := 12
	rec.Writes = make([]Update, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < off+18 {
			return rec, errors.New("short write header")
		}
		var u Update
		u.Key = binary.LittleEndian.Uint64(b[off : off+8])
		u.Ver = binary.LittleEndian.Uint64(b[off+8 : off+16])
		nf := int(binary.LittleEndian.Uint16(b[off+16 : off+18]))
		off += 18
		if len(b) < off+8*nf {
			return rec, errors.New("short fields")
		}
		u.Fields = make([]uint64, nf)
		for j := 0; j < nf; j++ {
			u.Fields[j] = binary.LittleEndian.Uint64(b[off : off+8])
			off += 8
		}
		rec.Writes = append(rec.Writes, u)
	}
	switch rest := len(b) - off; {
	case rest >= 9:
		rec.IdemKey = binary.LittleEndian.Uint64(b[off : off+8])
		rec.Kind = RecordKind(b[off+8])
	case rest >= 8:
		rec.IdemKey = binary.LittleEndian.Uint64(b[off : off+8])
	}
	return rec, nil
}
