// Package wal implements a redo-only write-ahead log with group
// commit, the durability substrate behind the paper's commit-time I/O
// latency knob: real systems stall at commit exactly because a log
// record must reach stable storage before the transaction
// acknowledges.
//
// Records carry the installed row versions (redo images tagged with
// their version numbers), so replay is idempotent and order-
// independent per key: a record applies only when its version is newer
// than what the database already holds. That makes the log correct
// even though concurrent workers append in nondeterministic order.
//
// Format (little endian), one record:
//
//	u32 payload length | u32 CRC32(payload) | payload
//
// payload: i64 txnID | u32 nWrites | nWrites × (u64 key | u64 ver |
// u16 nFields | nFields × u64). Replay stops cleanly at a torn or
// corrupt tail, which is how crash recovery discards incomplete group
// flushes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

// Update is the redo image of one row write.
type Update struct {
	// Key is the row's global key (txn.Key as raw bits).
	Key uint64
	// Ver is the installed version; replay applies the highest.
	Ver uint64
	// Fields is the committed image.
	Fields []uint64
}

// Record is one transaction's commit record.
type Record struct {
	TxnID  int64
	Writes []Update
}

// Log is a group-committing redo log over an io.Writer. Append is safe
// for concurrent use; records become durable when the group they
// joined is flushed (Append returns after the flush, i.e. commits are
// acknowledged only once durable).
type Log struct {
	mu      sync.Mutex
	w       io.Writer
	pending []byte
	waiters []chan error

	// GroupWindow batches appends for up to this long before flushing
	// (group commit). Zero flushes on every append.
	groupWindow time.Duration
	flushTimer  *time.Timer
	closed      bool

	// Flushes counts physical flushes (for observing group commit).
	Flushes uint64
	// Records counts appended records.
	Records uint64
}

// New returns a log writing to w with the given group-commit window
// (0 = synchronous flush per record).
func New(w io.Writer, groupWindow time.Duration) *Log {
	return &Log{w: w, groupWindow: groupWindow}
}

// ErrClosed reports appends to a closed log.
var ErrClosed = errors.New("wal: closed")

// Append serializes rec into the current group and blocks until that
// group is durable.
func (l *Log) Append(rec Record) error {
	payload := encodePayload(rec)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, payload...)
	l.Records++
	if l.groupWindow <= 0 {
		err := l.flushLocked()
		l.mu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, ch)
	if l.flushTimer == nil {
		l.flushTimer = time.AfterFunc(l.groupWindow, func() {
			l.mu.Lock()
			l.flushTimer = nil
			err := l.flushLocked()
			l.notifyLocked(err)
			l.mu.Unlock()
		})
	}
	l.mu.Unlock()
	return <-ch
}

// Flush forces the current group out.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	l.notifyLocked(err)
	return err
}

// Close flushes and marks the log closed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	l.notifyLocked(err)
	l.closed = true
	if l.flushTimer != nil {
		l.flushTimer.Stop()
		l.flushTimer = nil
	}
	return err
}

func (l *Log) flushLocked() error {
	if len(l.pending) == 0 {
		return nil
	}
	_, err := l.w.Write(l.pending)
	l.pending = l.pending[:0]
	l.Flushes++
	return err
}

func (l *Log) notifyLocked(err error) {
	for _, ch := range l.waiters {
		ch <- err
	}
	l.waiters = l.waiters[:0]
}

func encodePayload(rec Record) []byte {
	size := 8 + 4
	for _, u := range rec.Writes {
		size += 8 + 8 + 2 + 8*len(u.Fields)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.TxnID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Writes)))
	for _, u := range rec.Writes {
		buf = binary.LittleEndian.AppendUint64(buf, u.Key)
		buf = binary.LittleEndian.AppendUint64(buf, u.Ver)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u.Fields)))
		for _, f := range u.Fields {
			buf = binary.LittleEndian.AppendUint64(buf, f)
		}
	}
	return buf
}

// Replay scans records from r, calling apply for each intact record in
// order. It returns the number of applied records. A torn or corrupt
// tail terminates the scan without error (standard crash-recovery
// semantics); corruption mid-payload is detected by the checksum.
func Replay(r io.Reader, apply func(Record) error) (int, error) {
	applied := 0
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return applied, nil // clean or torn end
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return applied, nil // corrupt length: stop
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return applied, nil // torn record
		}
		if crc32.ChecksumIEEE(payload) != want {
			return applied, nil // corrupt record: stop
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return applied, nil
		}
		if err := apply(rec); err != nil {
			return applied, fmt.Errorf("wal: apply: %w", err)
		}
		applied++
	}
}

func decodePayload(b []byte) (Record, error) {
	var rec Record
	if len(b) < 12 {
		return rec, errors.New("short payload")
	}
	rec.TxnID = int64(binary.LittleEndian.Uint64(b[0:8]))
	n := binary.LittleEndian.Uint32(b[8:12])
	off := 12
	rec.Writes = make([]Update, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < off+18 {
			return rec, errors.New("short write header")
		}
		var u Update
		u.Key = binary.LittleEndian.Uint64(b[off : off+8])
		u.Ver = binary.LittleEndian.Uint64(b[off+8 : off+16])
		nf := int(binary.LittleEndian.Uint16(b[off+16 : off+18]))
		off += 18
		if len(b) < off+8*nf {
			return rec, errors.New("short fields")
		}
		u.Fields = make([]uint64, nf)
		for j := 0; j < nf; j++ {
			u.Fields[j] = binary.LittleEndian.Uint64(b[off : off+8])
			off += 8
		}
		rec.Writes = append(rec.Writes, u)
	}
	return rec, nil
}
