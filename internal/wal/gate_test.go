package wal

import (
	"errors"
	"testing"
)

// TestFlushGateVetoesAcks: a failing gate turns every durability ack
// into its error (the fenced-primary path), and clearing it restores
// normal appends.
func TestFlushGateVetoesAcks(t *testing.T) {
	dir := t.TempDir()
	errFenced := errors.New("lease lost")
	gateErr := error(nil)
	log, err := OpenDir(dir, DirOptions{NoSync: true, FlushGate: func() error { return gateErr }})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer log.Close()

	if err := log.Append(Record{TxnID: 1}); err != nil {
		t.Fatalf("append with open gate: %v", err)
	}
	gateErr = errFenced
	if err := log.Append(Record{TxnID: 2}); !errors.Is(err, errFenced) {
		t.Fatalf("append with closed gate: got %v, want %v", err, errFenced)
	}
	gateErr = nil
	if err := log.Append(Record{TxnID: 3}); err != nil {
		t.Fatalf("append after gate reopened: %v", err)
	}

	// The gated record was still written locally (the gate vetoes the
	// ack, not the bytes); replay sees all three.
	log.Close()
	var got []int64
	if _, _, err := ReplayDir(dir, func(lsn uint64, rec Record) error {
		got = append(got, rec.TxnID)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (%v)", len(got), got)
	}
}
