package wal

import (
	"bytes"
	"testing"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// TestKindRoundTrip pins the trailer encoding for every record kind:
// non-commit kinds always carry idemKey + kind byte, commit records
// keep the legacy format (idemKey only when set), and decode recovers
// every combination.
func TestKindRoundTrip(t *testing.T) {
	recs := []Record{
		{TxnID: 1, Writes: []Update{{Key: 9, Ver: 3, Fields: []uint64{7}}}},
		{TxnID: 2, IdemKey: 0xABCD, Writes: []Update{{Key: 9, Ver: 4, Fields: []uint64{8}}}},
		{TxnID: 3, Kind: RecordPrepare, Writes: []Update{{Key: 10, Ver: 1, Fields: []uint64{5}}}},
		{TxnID: 3, Kind: RecordPrepare, IdemKey: 0x77},
		{TxnID: 3, Kind: RecordDecision, IdemKey: 0x77},
		{TxnID: 1, Kind: RecordBoot},
	}
	var buf bytes.Buffer
	l := New(&buf, 0)
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	var got []Record
	n, err := Replay(bytes.NewReader(buf.Bytes()), func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != len(recs) {
		t.Fatalf("replay = %d, %v; want %d", n, err, len(recs))
	}
	for i, want := range recs {
		g := got[i]
		if g.TxnID != want.TxnID || g.Kind != want.Kind || g.IdemKey != want.IdemKey {
			t.Errorf("record %d: got {txn=%d kind=%d idem=%#x}, want {txn=%d kind=%d idem=%#x}",
				i, g.TxnID, g.Kind, g.IdemKey, want.TxnID, want.Kind, want.IdemKey)
		}
		if len(g.Writes) != len(want.Writes) {
			t.Errorf("record %d: %d writes, want %d", i, len(g.Writes), len(want.Writes))
		}
	}
}

// TestCommitRecordFormatUnchanged: a commit record with no idemKey must
// encode byte-identically to the original format — no kind byte.
func TestCommitRecordFormatUnchanged(t *testing.T) {
	rec := Record{TxnID: 5, Writes: []Update{{Key: 1, Ver: 2, Fields: []uint64{3}}}}
	buf := appendRecord(nil, rec)
	// header(8) + txnID(8) + nWrites(4) + key(8)+ver(8)+nFields(2)+field(8)
	if want := 8 + 8 + 4 + 8 + 8 + 2 + 8; len(buf) != want {
		t.Fatalf("commit record encodes to %d bytes, want %d (format drifted)", len(buf), want)
	}
}

// TestApplyRecordSkipsProtocolKinds: replaying a log that interleaves
// prepares and decisions with commits installs only the commits —
// prepared writes must not leak into the store before resolution.
func TestApplyRecordSkipsProtocolKinds(t *testing.T) {
	db := storage.NewDB()
	db.CreateTable(1, "t", 1)
	k := uint64(txn.MakeKey(1, 42))
	ApplyRecord(db, Record{TxnID: 1, Kind: RecordPrepare, Writes: []Update{{Key: k, Ver: 1, Fields: []uint64{99}}}})
	if row := db.Table(1).Get(42); row != nil {
		t.Fatal("prepare record applied to the store")
	}
	ApplyRecord(db, Record{TxnID: 2, Writes: []Update{{Key: k, Ver: 1, Fields: []uint64{7}}}})
	row := db.Table(1).Get(42)
	if row == nil || row.Field(0) != 7 {
		t.Fatal("commit record did not apply")
	}
}
