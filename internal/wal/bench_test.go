package wal

import (
	"io"
	"testing"
)

func benchRecord() Record {
	return Record{
		TxnID:   42,
		IdemKey: 7,
		Writes: []Update{
			{Key: 1, Ver: 10, Fields: []uint64{1, 2, 3, 4}},
			{Key: 2, Ver: 11, Fields: []uint64{5, 6, 7, 8}},
			{Key: 3, Ver: 12, Fields: []uint64{9, 10, 11, 12}},
		},
	}
}

// BenchmarkWALFlush measures a synchronous append+flush (group window
// zero: every append is one coalesced write), the per-commit durability
// cost with group commit factored out.
func BenchmarkWALFlush(b *testing.B) {
	l := New(io.Discard, 0)
	rec := benchRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWALAppendAllocBudget gates the append path at 0 allocs/op in
// steady state: the record encodes into a pooled buffer, the pending
// group buffer and waiter channels are recycled across flushes.
func TestWALAppendAllocBudget(t *testing.T) {
	l := New(io.Discard, 0)
	rec := benchRecord()
	// Warm the pools and grow the pending buffer to steady state.
	for i := 0; i < 16; i++ {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("Append allocs/op = %v, budget 0", n)
	}
}
