package wal

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"
)

func rec(id int64, writes ...Update) Record { return Record{TxnID: id, Writes: writes} }

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 0)
	want := []Record{
		rec(1, Update{Key: 10, Ver: 1, Fields: []uint64{7, 8}}),
		rec(2, Update{Key: 11, Ver: 1, Fields: []uint64{9}}, Update{Key: 10, Ver: 2, Fields: []uint64{1, 2}}),
		rec(3), // no writes
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	n, err := Replay(bytes.NewReader(buf.Bytes()), func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	for i := range want {
		if got[i].TxnID != want[i].TxnID || len(got[i].Writes) != len(want[i].Writes) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
		for j := range want[i].Writes {
			if !reflect.DeepEqual(got[i].Writes[j], want[i].Writes[j]) {
				t.Fatalf("record %d write %d mismatch", i, j)
			}
		}
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 0)
	l.Append(rec(1, Update{Key: 1, Ver: 1, Fields: []uint64{5}}))
	l.Append(rec(2, Update{Key: 2, Ver: 1, Fields: []uint64{6}}))
	l.Close()
	data := buf.Bytes()
	// Tear the last record in half.
	torn := data[:len(data)-7]
	n, err := Replay(bytes.NewReader(torn), func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Errorf("torn replay = %d, %v; want 1 record", n, err)
	}
}

func TestCorruptChecksumStops(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 0)
	l.Append(rec(1, Update{Key: 1, Ver: 1, Fields: []uint64{5}}))
	l.Append(rec(2, Update{Key: 2, Ver: 1, Fields: []uint64{6}}))
	l.Close()
	data := append([]byte(nil), buf.Bytes()...)
	data[10] ^= 0xFF // corrupt first payload
	n, err := Replay(bytes.NewReader(data), func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Errorf("corrupt replay = %d, %v; want 0", n, err)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 2*time.Millisecond)
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Append(rec(int64(i), Update{Key: uint64(i), Ver: 1, Fields: []uint64{1}})); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	l.Close()
	if l.Records != n {
		t.Fatalf("Records = %d", l.Records)
	}
	if l.Flushes >= n {
		t.Errorf("Flushes = %d; group commit should batch well below %d", l.Flushes, n)
	}
	cnt, _ := Replay(bytes.NewReader(buf.Bytes()), func(Record) error { return nil })
	if cnt != n {
		t.Errorf("replayed %d of %d", cnt, n)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l := New(&bytes.Buffer{}, 0)
	l.Close()
	if err := l.Append(rec(1)); err != ErrClosed {
		t.Errorf("append after close err = %v", err)
	}
}

func TestEmptyReplay(t *testing.T) {
	n, err := Replay(bytes.NewReader(nil), func(Record) error { return nil })
	if n != 0 || err != nil {
		t.Errorf("empty replay = %d, %v", n, err)
	}
}
