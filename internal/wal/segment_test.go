package wal

import (
	"os"
	"path/filepath"
	"testing"

	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func segRec(id int64, key, ver uint64) Record {
	return Record{TxnID: id, Writes: []Update{{Key: key, Ver: ver, Fields: []uint64{ver * 10}}}}
}

// TestOpenDirRotatesAndReplays fills a directory-backed log past
// several rotation thresholds and replays the whole directory back.
func TestOpenDirRotatesAndReplays(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, DirOptions{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(segRec(int64(i), uint64(i), uint64(i+1))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := l.NextLSN(); got != n {
		t.Fatalf("NextLSN = %d, want %d", got, n)
	}
	if len(l.SealedSegments()) == 0 {
		t.Fatal("no rotation happened at a 256-byte threshold")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var lsns []uint64
	next, applied, err := ReplayDir(dir, func(lsn uint64, r Record) error {
		lsns = append(lsns, lsn)
		if r.TxnID != int64(lsn) {
			t.Fatalf("record at lsn %d has txn id %d", lsn, r.TxnID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != n || next != n {
		t.Fatalf("ReplayDir = (%d, %d), want (%d, %d)", next, applied, n, n)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i) {
			t.Fatalf("lsn sequence broken at %d: %d", i, lsn)
		}
	}
}

// TestReopenContinuesLSNs closes a directory log and reopens it at the
// recovered LSN: appends continue the sequence and old segments seal.
func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, DirOptions{SegmentBytes: 1 << 20, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(segRec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	next, applied, err := ReplayDir(dir, nil2)
	if err != nil || applied != 10 || next != 10 {
		t.Fatalf("replay = (%d, %d, %v)", next, applied, err)
	}
	l2, err := OpenDir(dir, DirOptions{SegmentBytes: 1 << 20, NoSync: true, StartLSN: next})
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := l2.Append(segRec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if sealed := l2.SealedSegments(); len(sealed) != 1 || sealed[0].Start != 0 || sealed[0].End != 10 {
		t.Fatalf("sealed = %+v", sealed)
	}
	l2.Close()

	var got []int64
	next, applied, err = ReplayDir(dir, func(_ uint64, r Record) error {
		got = append(got, r.TxnID)
		return nil
	})
	if err != nil || applied != 15 || next != 15 {
		t.Fatalf("replay after reopen = (%d, %d, %v)", next, applied, err)
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("record order broken at %d: %d", i, id)
		}
	}
}

func nil2(uint64, Record) error { return nil }

// TestTruncateSealed checks that truncation removes exactly the sealed
// segments a checkpoint LSN covers, never the active one, and that the
// surviving tail still replays.
func TestTruncateSealed(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, DirOptions{SegmentBytes: 200, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := l.Append(segRec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	sealed := l.SealedSegments()
	if len(sealed) < 2 {
		t.Fatalf("need >= 2 sealed segments, got %d", len(sealed))
	}
	ckptLSN := sealed[1].End // covers the first two segments exactly
	removed, err := l.TruncateSealed(ckptLSN)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d segments, want 2", removed)
	}
	for _, s := range sealed[:2] {
		if _, err := os.Stat(s.Path); !os.IsNotExist(err) {
			t.Fatalf("truncated segment %s still exists", s.Path)
		}
	}
	l.Close()

	next, applied, err := ReplayDir(dir, func(lsn uint64, _ Record) error {
		if lsn < ckptLSN {
			t.Fatalf("replayed lsn %d below truncation point %d", lsn, ckptLSN)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 40 || applied != 40-int(ckptLSN) {
		t.Fatalf("tail replay = (%d, %d), want (40, %d)", next, applied, 40-ckptLSN)
	}
}

// TestOpenDirReusesEmptyCollision reopens a directory whose last
// segment holds zero intact records (e.g. a crash left only a torn
// tail): OpenDir at the same StartLSN must truncate and reuse it
// rather than fail, and the garbage must not resurface on replay.
func TestOpenDirReusesEmptyCollision(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(segRec(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a crash mid-group-flush into a *new* segment: a torn
	// header only.
	torn := filepath.Join(dir, segName(1))
	if err := os.WriteFile(torn, []byte{0xFF, 0xFF, 0x01}, 0o644); err != nil {
		t.Fatal(err)
	}
	next, applied, err := ReplayDir(dir, nil2)
	if err != nil || next != 1 || applied != 1 {
		t.Fatalf("replay = (%d, %d, %v)", next, applied, err)
	}
	l2, err := OpenDir(dir, DirOptions{NoSync: true, StartLSN: next})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(segRec(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	next, applied, err = ReplayDir(dir, nil2)
	if err != nil || next != 2 || applied != 2 {
		t.Fatalf("replay after reuse = (%d, %d, %v)", next, applied, err)
	}
}

// TestDurableSyncCounting pins the Syncer contract: every group flush
// of a durable log issues exactly one barrier.
func TestDurableSyncCounting(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := NewDurable(f, f, 0)
	for i := 0; i < 5; i++ {
		if err := l.Append(segRec(int64(i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if l.Syncs != l.Flushes || l.Syncs != 5 {
		t.Fatalf("syncs = %d, flushes = %d, want 5 each", l.Syncs, l.Flushes)
	}
}

// TestIdemKeyRoundTrip pins the optional trailing idempotency key: set
// keys survive the trip, zero keys keep the original byte format.
func TestIdemKeyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	with := Record{TxnID: 1, IdemKey: 0xDEADBEEF, Writes: []Update{{Key: 9, Ver: 1, Fields: []uint64{7}}}}
	without := Record{TxnID: 2, Writes: []Update{{Key: 10, Ver: 1, Fields: []uint64{8}}}}
	if err := l.Append(with); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(without); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var got []Record
	_, _, err = ReplayDir(dir, func(_ uint64, r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || len(got) != 2 {
		t.Fatalf("replay: %v (%d records)", err, len(got))
	}
	if got[0].IdemKey != 0xDEADBEEF || got[1].IdemKey != 0 {
		t.Fatalf("idem keys = %x, %x", got[0].IdemKey, got[1].IdemKey)
	}
}

// TestRecoverDirVersionGating recovers a directory over a database
// that is already partially current: replay must never regress a row,
// and recovering twice converges (idempotence across the segment
// boundary).
func TestRecoverDirVersionGating(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	key := txn.MakeKey(workload.YCSBTable, 5)
	if err := l.Append(Record{TxnID: 1, Writes: []Update{{Key: uint64(key), Ver: 1, Fields: []uint64{10}}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{TxnID: 2, Writes: []Update{{Key: uint64(key), Ver: 3, Fields: []uint64{30}}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	db := workload.YCSB{Records: 10}.BuildDB()
	row := db.ResolveOrInsert(key)
	row.Install(&storage.Tuple{Fields: []uint64{99}})
	row.Ver.Store(5 << 1) // already past every logged version

	for pass := 0; pass < 2; pass++ {
		if _, _, err := RecoverDir(dir, db, nil); err != nil {
			t.Fatal(err)
		}
		if got := storage.VerNumber(row.Ver.Load()); got != 5 {
			t.Fatalf("pass %d: recovery regressed version to %d", pass, got)
		}
		if got := row.Load().Fields[0]; got != 99 {
			t.Fatalf("pass %d: recovery regressed image to %d", pass, got)
		}
	}
}

// TestReplayDirEmptyNewestSegment simulates a crash right after
// rotation: the newest segment file exists but holds zero records.
// Recovery must succeed and resume at that segment's start LSN rather
// than erroring on the empty tail.
func TestReplayDirEmptyNewestSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDir(dir, DirOptions{SegmentBytes: 1 << 20, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := 0; i < n; i++ {
		if err := l.Append(segRec(int64(i), uint64(i), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The empty post-rotation segment: created, never written.
	empty := filepath.Join(dir, segName(n))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	next, applied, err := ReplayDir(dir, func(lsn uint64, r Record) error {
		if r.TxnID != int64(lsn) {
			t.Fatalf("record at lsn %d has txn id %d", lsn, r.TxnID)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayDir over empty newest segment: %v", err)
	}
	if applied != n || next != n {
		t.Fatalf("ReplayDir = (next %d, applied %d), want (%d, %d)", next, applied, n, n)
	}

	// Reopening at the recovered LSN reuses the empty file and appends
	// continue the sequence.
	l2, err := OpenDir(dir, DirOptions{SegmentBytes: 1 << 20, NoSync: true, StartLSN: next})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(segRec(n, n, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	next2, applied2, err := ReplayDir(dir, func(uint64, Record) error { return nil })
	if err != nil || next2 != n+1 || applied2 != n+1 {
		t.Fatalf("ReplayDir after reopen = (%d, %d, %v), want (%d, %d, nil)", next2, applied2, err, n+1, n+1)
	}
}
