package wal

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReplay feeds arbitrary bytes to the replayer: it must never
// panic, never report an error for pure garbage (torn-tail semantics),
// and never hand a corrupt record to apply (the checksum gate).
func FuzzReplay(f *testing.F) {
	// Seed with a valid log, a truncation, and noise.
	var buf bytes.Buffer
	l := New(&buf, 0)
	l.Append(Record{TxnID: 1, Writes: []Update{{Key: 1, Ver: 1, Fields: []uint64{1, 2, 3}}}})
	l.Append(Record{TxnID: 2})
	l.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Replay(bytes.NewReader(data), func(rec Record) error {
			// Records that reach apply passed the CRC; sanity-check
			// the shape invariants decode guarantees.
			for _, u := range rec.Writes {
				if len(u.Fields) > 1<<16 {
					t.Fatal("oversized fields escaped decode")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored on fuzz input: %v", err)
		}
		if n < 0 {
			t.Fatal("negative count")
		}
	})
}

// FuzzRoundTrip: any record we encode must replay back identically.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint64(10), uint64(3), uint64(7))
	f.Add(int64(-5), uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, id int64, key, ver, field uint64) {
		var buf bytes.Buffer
		l := New(&buf, time.Duration(0))
		want := Record{TxnID: id, Writes: []Update{{Key: key, Ver: ver, Fields: []uint64{field}}}}
		if err := l.Append(want); err != nil {
			t.Fatal(err)
		}
		l.Close()
		var got []Record
		n, err := Replay(bytes.NewReader(buf.Bytes()), func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil || n != 1 {
			t.Fatalf("replay = %d, %v", n, err)
		}
		if got[0].TxnID != id || got[0].Writes[0].Key != key ||
			got[0].Writes[0].Ver != ver || got[0].Writes[0].Fields[0] != field {
			t.Fatalf("round trip mismatch: %+v", got[0])
		}
	})
}
