package wal

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingWriter counts Write calls; safe for use under the log's own
// mutex only (the log serializes flushes).
type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.writes++
	return cw.buf.Write(p)
}

// TestGroupCommitConcurrentAppendFlush hammers one group-committing log
// from many appenders while another goroutine forces flushes: every
// Append must return exactly once (no waiter lost, none notified
// twice — a double notify would panic the send on the drained buffered
// channel or deadlock the next group), and every record must be intact
// in the stream afterwards. Run under -race in CI.
func TestGroupCommitConcurrentAppendFlush(t *testing.T) {
	var cw countingWriter
	l := New(&cw, 200*time.Microsecond)
	const appenders = 8
	const perAppender = 200

	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := l.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	var returned atomic.Int64
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				id := int64(a*perAppender + i)
				if err := l.Append(Record{TxnID: id, Writes: []Update{{Key: uint64(id), Ver: 1, Fields: []uint64{1}}}}); err != nil {
					t.Errorf("append %d: %v", id, err)
					return
				}
				returned.Add(1)
			}
		}(a)
	}
	wg.Wait()
	close(stop)
	flusher.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if got := returned.Load(); got != appenders*perAppender {
		t.Fatalf("%d of %d appends returned", got, appenders*perAppender)
	}
	seen := make(map[int64]bool)
	n, err := Replay(bytes.NewReader(cw.buf.Bytes()), func(r Record) error {
		if seen[r.TxnID] {
			t.Fatalf("record %d appears twice", r.TxnID)
		}
		seen[r.TxnID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != appenders*perAppender {
		t.Fatalf("replayed %d of %d records", n, appenders*perAppender)
	}
	// Group commit must actually have grouped: far fewer physical
	// writes than records (with an 8-way append storm and a 200µs
	// window this holds with enormous margin).
	if cw.writes >= appenders*perAppender {
		t.Errorf("no grouping: %d writes for %d records", cw.writes, appenders*perAppender)
	}
}

// TestCloseWhileTimerPending closes the log while a group window is
// still open: the pending appender must be released exactly once with
// the flush outcome, the record must be durable in the buffer, and the
// armed timer must not fire into a closed log afterwards.
func TestCloseWhileTimerPending(t *testing.T) {
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		l := New(&buf, 50*time.Millisecond) // long window: Close races the timer, not the flush
		done := make(chan error, 1)
		go func() {
			done <- l.Append(Record{TxnID: 7})
		}()
		// Wait until the appender has joined the group (its bytes are
		// pending), then close underneath the armed timer.
		for l.NextLSN() == 0 {
			time.Sleep(10 * time.Microsecond)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("append after close-flush: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("append never released after Close")
		}
		if n, _ := Replay(bytes.NewReader(buf.Bytes()), func(Record) error { return nil }); n != 1 {
			t.Fatalf("record not durable after Close: %d replayed", n)
		}
		if err := l.Append(Record{TxnID: 8}); err != ErrClosed {
			t.Fatalf("append on closed log: %v", err)
		}
	}
}

// TestConcurrentAppendClose races Close against in-flight appends:
// every Append must return (ErrClosed or nil), never hang, and the
// log must replay cleanly.
func TestConcurrentAppendClose(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, 100*time.Microsecond)
	var wg sync.WaitGroup
	for a := 0; a < 6; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := l.Append(Record{TxnID: int64(a*100 + i)}); err == ErrClosed {
					return
				} else if err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	time.Sleep(300 * time.Microsecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // must not hang: every waiter was notified
	if _, err := Replay(bytes.NewReader(buf.Bytes()), func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
