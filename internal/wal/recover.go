package wal

import (
	"io"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// ApplyRecord installs one record's redo images into db: each update
// applies only when its version is newer than the row's current
// version (rows are created as needed), which makes application
// idempotent and order-independent per key. Only RecordCommit records
// apply; prepares and coordinator records are protocol state, not
// redo — the sharded recovery path resolves prepares against the
// coordinator log and re-applies the committed ones itself.
func ApplyRecord(db *storage.DB, rec Record) {
	if rec.Kind != RecordCommit {
		return
	}
	for _, u := range rec.Writes {
		row := db.ResolveOrInsert(txn.Key(u.Key))
		if row == nil {
			continue // table unknown to this catalog
		}
		if storage.VerNumber(row.Ver.Load()) >= u.Ver {
			continue // already at or past this version
		}
		row.Install(&storage.Tuple{Fields: append([]uint64(nil), u.Fields...)})
		row.Ver.Store(u.Ver << 1) // version word: counter above the lock bit
	}
}

// Recover replays a log stream into db via ApplyRecord. Idempotent —
// recovering twice, or over a partially current database, converges to
// the same state.
func Recover(r io.Reader, db *storage.DB) (int, error) {
	return Replay(r, func(rec Record) error {
		ApplyRecord(db, rec)
		return nil
	})
}

// RecoverDir replays every segment under dir into db in LSN order,
// reporting each record to onRecord (nil to skip). It returns the next
// LSN — the StartLSN to reopen the directory at — and the number of
// records applied. The serving layer's startup recovery runs this over
// the checkpoint-restored database, then OpenDirs at the returned LSN.
func RecoverDir(dir string, db *storage.DB, onRecord func(lsn uint64, rec Record)) (next uint64, applied int, err error) {
	return ReplayDir(dir, func(lsn uint64, rec Record) error {
		ApplyRecord(db, rec)
		if onRecord != nil {
			onRecord(lsn, rec)
		}
		return nil
	})
}
