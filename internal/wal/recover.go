package wal

import (
	"io"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// Recover replays a log into db: each update installs its redo image
// when its version is newer than the row's current version (rows are
// created as needed). Idempotent — recovering twice, or over a
// partially current database, converges to the same state.
func Recover(r io.Reader, db *storage.DB) (int, error) {
	return Replay(r, func(rec Record) error {
		for _, u := range rec.Writes {
			row := db.ResolveOrInsert(txn.Key(u.Key))
			if row == nil {
				continue // table unknown to this catalog
			}
			if storage.VerNumber(row.Ver.Load()) >= u.Ver {
				continue // already at or past this version
			}
			row.Install(&storage.Tuple{Fields: append([]uint64(nil), u.Fields...)})
			row.Ver.Store(u.Ver << 1) // version word: counter above the lock bit
		}
		return nil
	})
}
