package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// segment.go: the directory-backed form of the log. A data directory
// holds a sequence of size-bounded segment files
//
//	wal-<startLSN-16-hex>.seg
//
// each a plain record stream in the package's wire format. The file
// name carries the LSN of the segment's first record, so the set of
// file names alone orders the log and locates any LSN. The active
// segment is the one being appended to; all others are sealed and
// immutable, which is what makes checkpoint-driven truncation a plain
// file delete (TruncateSealed).

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// DefaultSegmentBytes is the rotation threshold when DirOptions
	// leaves SegmentBytes zero.
	DefaultSegmentBytes = 4 << 20
)

// SegmentInfo describes one segment file.
type SegmentInfo struct {
	// Start is the LSN of the segment's first record.
	Start uint64
	// End is the exclusive upper LSN bound (0 when unknown: the active
	// segment, or a tail segment whose record count has not been
	// established by replay).
	End uint64
	// Path is the file path.
	Path string
}

func segName(start uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix)
}

// ListSegments returns the segment files under dir ordered by start
// LSN. Non-segment files are ignored.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // not a segment name after all
		}
		segs = append(segs, SegmentInfo{Start: start, Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	return segs, nil
}

// DirOptions configure OpenDir.
type DirOptions struct {
	// GroupWindow is the group-commit window (0 = flush per append).
	GroupWindow time.Duration
	// SegmentBytes rotates the active segment once it holds at least
	// this many bytes (default DefaultSegmentBytes).
	SegmentBytes int64
	// StartLSN is the LSN of the first record the opened log will
	// append — the NextLSN a prior recovery pass established (0 for a
	// fresh directory).
	StartLSN uint64
	// NoSync skips the fsync barrier on flushes and rotations. Tests
	// and benchmarks only: a NoSync log can acknowledge commits the
	// machine then loses.
	NoSync bool
	// WrapSyncer, when set, decorates the stable-storage barrier of the
	// active segment file — applied at open and again on every rotation,
	// so an injected fault (a stalling or failing fsync) follows the log
	// across segments. Ignored under NoSync (there is no barrier to
	// wrap). Chaos testing only.
	WrapSyncer func(Syncer) Syncer
	// Shipper, when set, receives every flushed group after the local
	// fsync (see Shipper); its error fails the flush, so appenders —
	// and therefore client acks — wait on replication.
	Shipper Shipper
	// FlushGate, when set, can veto every flush after the local fsync
	// and before the ship (see FlushGate) — the lease-check hook for
	// automatic failover.
	FlushGate FlushGate
}

// OpenDir opens a directory-backed log for appending. Pre-existing
// segments are retained as sealed history (recovery replays them; the
// caller passes the resulting next LSN as StartLSN) and a fresh active
// segment is created at StartLSN. If a file with that exact name
// already exists it necessarily holds zero intact records — StartLSN
// is past every replayable record — so it is truncated and reused,
// discarding any torn tail.
func OpenDir(dir string, o DirOptions) (*Log, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	active := filepath.Join(dir, segName(o.StartLSN))
	var sealed []SegmentInfo
	for i, s := range segs {
		if s.Path == active {
			continue // reused below
		}
		if i+1 < len(segs) {
			s.End = segs[i+1].Start
		} else {
			s.End = o.StartLSN
		}
		sealed = append(sealed, s)
	}
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if !o.NoSync {
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	l := &Log{
		w:           f,
		groupWindow: o.GroupWindow,
		shipper:     o.Shipper,
		gate:        o.FlushGate,
		nextLSN:     o.StartLSN,
		dir:         dir,
		segBytes:    o.SegmentBytes,
		segStart:    o.StartLSN,
		active:      f,
		sealed:      sealed,
	}
	if !o.NoSync {
		l.sync = f
		if o.WrapSyncer != nil {
			l.wrapSync = o.WrapSyncer
			l.sync = l.wrapSync(f)
		}
	}
	return l, nil
}

// rotateLocked seals the active segment and starts the next one at the
// current LSN. Called under l.mu after a clean flush, so segment
// boundaries always coincide with group-commit boundaries.
func (l *Log) rotateLocked() error {
	if err := l.active.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, SegmentInfo{
		Start: l.segStart,
		End:   l.nextLSN,
		Path:  l.active.Name(),
	})
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.nextLSN)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if l.sync != nil {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
		l.sync = f
		if l.wrapSync != nil {
			l.sync = l.wrapSync(f)
		}
	}
	l.w = f
	l.active = f
	l.segStart = l.nextLSN
	l.segWritten = 0
	return nil
}

// SealedSegments returns the sealed (immutable) segments, oldest first.
func (l *Log) SealedSegments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SegmentInfo(nil), l.sealed...)
}

// TruncateSealed deletes sealed segments every record of which is
// below upTo — i.e. fully covered by a checkpoint taken at LSN upTo.
// The active segment is never touched. Returns the number of segments
// removed.
func (l *Log) TruncateSealed(upTo uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	var kept []SegmentInfo
	var firstErr error
	for _, s := range l.sealed {
		if firstErr == nil && s.End <= upTo {
			if err := os.Remove(s.Path); err != nil && !os.IsNotExist(err) {
				firstErr = err // keep it tracked, report the failure
				kept = append(kept, s)
				continue
			}
			removed++
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	if removed > 0 && l.sync != nil {
		if err := syncDir(l.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return removed, firstErr
}

// ReplayDir replays every segment under dir in LSN order, calling
// apply with each intact record and its LSN. Torn or corrupt tails
// terminate a segment's scan (standard crash semantics); later
// segments still replay, since their names carry their own LSNs.
// Returns the next LSN — the exclusive upper bound of the replayed
// records, which is the StartLSN to reopen the directory at — and the
// number of records applied.
func ReplayDir(dir string, apply func(lsn uint64, rec Record) error) (next uint64, applied int, err error) {
	segs, err := ListSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	for _, s := range segs {
		f, err := os.Open(s.Path)
		if err != nil {
			return next, applied, err
		}
		lsn := s.Start
		n, rerr := Replay(f, func(rec Record) error {
			err := apply(lsn, rec)
			lsn++
			return err
		})
		f.Close()
		applied += n
		if lsn > next {
			next = lsn
		}
		if rerr != nil {
			return next, applied, rerr
		}
	}
	return next, applied, nil
}

// syncDir fsyncs a directory so file creations and deletions inside it
// are durable (the rename/creat barrier every journaled store needs).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
