package wal

import (
	"bytes"
	"errors"
	"testing"

	"tskd/internal/chaos/faultio"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

// rec builds a one-write commit record for table 1.
func testRec(id int64, row, ver, val uint64) Record {
	return Record{TxnID: id, Writes: []Update{{
		Key: uint64(txn.MakeKey(1, row)), Ver: ver, Fields: []uint64{val, val + 1},
	}}}
}

// TestRecoverTornFinalRecord crashes the log device mid-way through the
// final record — the torn-write mode of the chaos harness's fault
// injector — and checks the crash-recovery contract: the intact prefix
// recovers completely, the torn tail is discarded without error, and
// the writer that suffered the tear reported the failure to the
// appender (so the commit was never acknowledged as durable).
func TestRecoverTornFinalRecord(t *testing.T) {
	// Size the intact prefix by writing the first two records cleanly.
	var sizing bytes.Buffer
	l := New(&sizing, 0)
	if err := l.Append(testRec(1, 10, 1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRec(2, 20, 1, 200)); err != nil {
		t.Fatal(err)
	}
	prefix := int64(sizing.Len())

	for _, tc := range []struct {
		name string
		torn bool
		cut  int64 // bytes into the final record
	}{
		{"torn mid-payload", true, 13}, // header + part of the payload
		{"torn mid-header", true, 3},   // not even a full length word
		{"clean error", false, 13},     // device fails without emitting anything
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			fw := &faultio.Writer{W: &buf, FailAfter: prefix + tc.cut, Torn: tc.torn}
			l := New(fw, 0)
			if err := l.Append(testRec(1, 10, 1, 100)); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(testRec(2, 20, 1, 200)); err != nil {
				t.Fatal(err)
			}
			// The final record hits the fault: the append must surface
			// the device error — this commit is NOT durable.
			if err := l.Append(testRec(3, 30, 1, 300)); !errors.Is(err, faultio.ErrInjected) {
				t.Fatalf("torn append returned %v, want ErrInjected", err)
			}
			if tc.torn && int64(buf.Len()) != prefix+tc.cut {
				t.Fatalf("torn device emitted %d bytes, want %d", buf.Len(), prefix+tc.cut)
			}
			if !tc.torn && int64(buf.Len()) != prefix {
				t.Fatalf("clean-failing device emitted %d bytes, want %d", buf.Len(), prefix)
			}

			db := storage.NewDB()
			db.CreateTable(1, "t", 2)
			applied, err := Recover(bytes.NewReader(buf.Bytes()), db)
			if err != nil {
				t.Fatalf("recover over torn tail errored: %v", err)
			}
			if applied != 2 {
				t.Fatalf("recovered %d records, want 2", applied)
			}
			for _, want := range []struct{ row, ver, val uint64 }{{10, 1, 100}, {20, 1, 200}} {
				r := db.Resolve(txn.MakeKey(1, want.row))
				if r == nil {
					t.Fatalf("row %d lost", want.row)
				}
				if v := storage.VerNumber(r.Ver.Load()); v != want.ver {
					t.Errorf("row %d at version %d, want %d", want.row, v, want.ver)
				}
				if got := r.Load().Fields[0]; got != want.val {
					t.Errorf("row %d field 0 = %d, want %d", want.row, got, want.val)
				}
			}
			// The unacknowledged third record must not materialize.
			if r := db.Resolve(txn.MakeKey(1, 30)); r != nil {
				t.Error("torn record's row materialized after recovery")
			}
		})
	}
}
