package history

import (
	"sync"
	"testing"

	"tskd/internal/txn"
)

func k(n uint64) txn.Key { return txn.MakeKey(0, n) }

func TestEmptyAndSingle(t *testing.T) {
	r := NewRecorder()
	if err := r.Check(); err != nil {
		t.Errorf("empty history: %v", err)
	}
	r.Record(Event{TxnID: 1,
		Reads:  []Obs{{k(1), 0}},
		Writes: []Obs{{k(1), 1}},
	})
	if err := r.Check(); err != nil {
		t.Errorf("single txn: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestSerialChainOK(t *testing.T) {
	r := NewRecorder()
	// T1 writes v1, T2 reads v1 writes v2, T3 reads v2.
	r.Record(Event{TxnID: 1, Writes: []Obs{{k(1), 1}}})
	r.Record(Event{TxnID: 2, Reads: []Obs{{k(1), 1}}, Writes: []Obs{{k(1), 2}}})
	r.Record(Event{TxnID: 3, Reads: []Obs{{k(1), 2}}})
	if err := r.Check(); err != nil {
		t.Errorf("serial chain: %v", err)
	}
}

func TestLostUpdateCycle(t *testing.T) {
	// Classic lost update: both read v0, both install (different
	// versions) — T1 rw-> T2 (T1 read v0, T2 installed v1) and
	// T2 rw-> T1? T2 read v0 and T1 installed v1... both read version
	// 0 and wrote versions 1 and 2: T1 reads v0 -> precedes installer
	// of v1 (T1 itself? no: T1 installed v1). Make it two keys for a
	// proper write-skew cycle.
	r := NewRecorder()
	// Write skew: T1 reads x@0 writes y@1; T2 reads y@0 writes x@1.
	r.Record(Event{TxnID: 1, Reads: []Obs{{k(1), 0}}, Writes: []Obs{{k(2), 1}}})
	r.Record(Event{TxnID: 2, Reads: []Obs{{k(2), 0}}, Writes: []Obs{{k(1), 1}}})
	if err := r.Check(); err == nil {
		t.Error("write skew not detected")
	}
}

func TestLostUpdateSameKey(t *testing.T) {
	// T1 and T2 both read x@0; T1 installs x@1, T2 installs x@2.
	// T2 read v0 so T2 rw-> installer of v1 (T1); T1 installed v1 so
	// ww T1 -> T2; and T1 read v0 → T1 rw-> T1 (self, skipped). The
	// cycle: T2 -> T1 (rw) and T1 -> T2 (ww).
	r := NewRecorder()
	r.Record(Event{TxnID: 1, Reads: []Obs{{k(1), 0}}, Writes: []Obs{{k(1), 1}}})
	r.Record(Event{TxnID: 2, Reads: []Obs{{k(1), 0}}, Writes: []Obs{{k(1), 2}}})
	if err := r.Check(); err == nil {
		t.Error("lost update not detected")
	}
}

func TestDuplicateInstallDetected(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{TxnID: 1, Writes: []Obs{{k(1), 1}}})
	r.Record(Event{TxnID: 2, Writes: []Obs{{k(1), 1}}})
	if err := r.Check(); err == nil {
		t.Error("duplicate version install not detected")
	}
}

func TestNonAdjacentVersions(t *testing.T) {
	// Versions observed with gaps (unrecorded transactions in between
	// would be a usage bug, but gaps from per-key chains must still
	// order correctly).
	r := NewRecorder()
	r.Record(Event{TxnID: 1, Writes: []Obs{{k(1), 3}}})
	r.Record(Event{TxnID: 2, Reads: []Obs{{k(1), 3}}, Writes: []Obs{{k(1), 7}}})
	if err := r.Check(); err != nil {
		t.Errorf("gapped versions: %v", err)
	}
}

func TestThreeCycle(t *testing.T) {
	// T1 -> T2 -> T3 -> T1 via three keys.
	r := NewRecorder()
	r.Record(Event{TxnID: 1, Reads: []Obs{{k(1), 0}}, Writes: []Obs{{k(2), 1}}})
	r.Record(Event{TxnID: 2, Reads: []Obs{{k(2), 0}}, Writes: []Obs{{k(3), 1}}})
	r.Record(Event{TxnID: 3, Reads: []Obs{{k(3), 0}}, Writes: []Obs{{k(1), 1}}})
	if err := r.Check(); err == nil {
		t.Error("3-cycle not detected")
	}
}

func TestLongAcyclicChain(t *testing.T) {
	// Deep chain exercises the iterative DFS (no stack overflow).
	r := NewRecorder()
	for i := 0; i < 50000; i++ {
		e := Event{TxnID: i, Writes: []Obs{{k(1), uint64(i + 1)}}}
		if i > 0 {
			e.Reads = []Obs{{k(1), uint64(i)}}
		}
		r.Record(e)
	}
	if err := r.Check(); err != nil {
		t.Errorf("long chain: %v", err)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{TxnID: w*100 + i})
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestReadFromUnrecordedVersion(t *testing.T) {
	// Reading the initial (load-time) version that nobody recorded
	// installing: only an rw edge to the first installer.
	r := NewRecorder()
	r.Record(Event{TxnID: 1, Reads: []Obs{{k(1), 0}}})
	r.Record(Event{TxnID: 2, Writes: []Obs{{k(1), 1}}})
	if err := r.Check(); err != nil {
		t.Errorf("unrecorded base version: %v", err)
	}
}
