// Package history records version observations of committed
// transactions and checks serializability by building the
// serialization (precedence) graph and testing it for cycles.
//
// Every committed transaction reports, per data item, the row version
// it read and the row version it installed (versions are the per-row
// counters the CC protocols maintain). From these the checker derives
// the classic dependency edges:
//
//	ww: the installer of version v precedes the installer of v+1;
//	wr: the installer of version v precedes every reader of v;
//	rw: every reader of version v precedes the installer of v+1.
//
// An acyclic graph proves the execution was conflict-serializable. The
// integration tests run every execution mode of the engine under this
// checker; it is the safety net that catches scheduler or protocol
// bugs that throughput metrics would hide.
package history

import (
	"fmt"
	"sort"
	"sync"

	"tskd/internal/txn"
)

// Obs is one version observation: transaction saw (read) or produced
// (wrote) version Ver of item Key.
type Obs struct {
	Key txn.Key
	Ver uint64
}

// Event is the observation record of one committed transaction.
type Event struct {
	TxnID  int
	Reads  []Obs
	Writes []Obs
}

// Recorder collects events from concurrent workers.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends a committed transaction's observations. Safe for
// concurrent use.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Len returns the number of recorded commits.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Check builds the serialization graph and returns an error describing
// the first anomaly found (duplicate version installs or a dependency
// cycle); nil means the recorded execution is conflict-serializable.
func (r *Recorder) Check() error {
	events := r.Events()
	return CheckEvents(events)
}

// CheckEvents is Check over an explicit event list.
func CheckEvents(events []Event) error {
	// Node ids are positions in events.
	type keyVer struct {
		key txn.Key
		ver uint64
	}
	writer := make(map[keyVer]int) // who installed version v of key
	type reader struct {
		node int
		ver  uint64
	}
	readersOf := make(map[txn.Key][]reader)
	versionsOf := make(map[txn.Key][]uint64)

	for node, e := range events {
		for _, w := range e.Writes {
			kv := keyVer{w.Key, w.Ver}
			if prev, dup := writer[kv]; dup {
				return fmt.Errorf("history: txn %d and txn %d both installed version %d of %v",
					events[prev].TxnID, e.TxnID, w.Ver, w.Key)
			}
			writer[kv] = node
			versionsOf[w.Key] = append(versionsOf[w.Key], w.Ver)
		}
		for _, rd := range e.Reads {
			readersOf[rd.Key] = append(readersOf[rd.Key], reader{node, rd.Ver})
		}
	}

	adj := make([][]int32, len(events))
	addEdge := func(from, to int) {
		if from != to {
			adj[from] = append(adj[from], int32(to))
		}
	}

	// ww edges along each key's version chain.
	for key, vers := range versionsOf {
		sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
		for i := 1; i < len(vers); i++ {
			addEdge(writer[keyVer{key, vers[i-1]}], writer[keyVer{key, vers[i]}])
		}
	}

	// wr and rw edges.
	for key, rds := range readersOf {
		vers := versionsOf[key]
		for _, rd := range rds {
			if wr, ok := writer[keyVer{key, rd.ver}]; ok {
				addEdge(wr, rd.node)
			}
			// rw: the reader precedes the installer of the first
			// version strictly greater than the one it read.
			i := sort.Search(len(vers), func(i int) bool { return vers[i] > rd.ver })
			if i < len(vers) {
				addEdge(rd.node, writer[keyVer{key, vers[i]}])
			}
		}
	}

	if cycle := findCycle(adj); cycle != nil {
		ids := make([]int, len(cycle))
		for i, n := range cycle {
			ids[i] = events[n].TxnID
		}
		return fmt.Errorf("history: serialization cycle among transactions %v", ids)
	}
	return nil
}

// findCycle returns one cycle in the graph (as node ids) or nil.
// Iterative three-color DFS; recursion would overflow on long chains.
func findCycle(adj [][]int32) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(adj))
	parent := make([]int32, len(adj))
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		node int32
		next int
	}
	for start := range adj {
		if color[start] != white {
			continue
		}
		stack := []frame{{int32(start), 0}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				child := adj[f.node][f.next]
				f.next++
				switch color[child] {
				case white:
					color[child] = gray
					parent[child] = f.node
					stack = append(stack, frame{child, 0})
				case gray:
					// Found a cycle: walk parents from f.node to child.
					cyc := []int{int(child)}
					for n := f.node; n != child; n = parent[n] {
						cyc = append(cyc, int(n))
						if parent[n] < 0 {
							break
						}
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}
