package arbiter

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tskd/internal/clock"
)

// Lease errors surfaced by LeaseClient.Check. ErrNoLease is transient
// (the lease may come back if a renew succeeds at the same epoch
// before the arbiter grants it away); ErrLeaseFenced is sticky — the
// arbiter told us a newer epoch exists, so this node must never ack a
// commit again.
var (
	ErrNoLease     = errors.New("arbiter: lease not held")
	ErrLeaseFenced = errors.New("arbiter: fenced: lease lost to a newer epoch")
)

// LeaseConfig configures a primary's lease client.
type LeaseConfig struct {
	// Addr is the arbiter address. Required.
	Addr string
	// Group names this shard-group's lease. Required.
	Group string
	// Epoch is this primary's current fencing epoch (from the data
	// directory / shipper).
	Epoch uint64
	// Announce is the address transaction clients should dial for this
	// node — handed to fenced peers as the redirect target.
	Announce string
	// Clock injects time (default wall clock). Lease validity is
	// measured on this clock from the instant just BEFORE each renew is
	// sent, so the holder's view of expiry always precedes the
	// arbiter's (which measures from receipt).
	Clock clock.Clock
	// DialTimeout bounds each (re)connection attempt (default 2s).
	DialTimeout time.Duration
	// Logf, when set, receives one line per lease transition.
	Logf func(format string, args ...any)
}

// LeaseStats snapshots the lease for /metrics and /healthz.
type LeaseStats struct {
	Held   bool   `json:"held"`
	Fenced bool   `json:"fenced"`
	Epoch  uint64 `json:"epoch"`
	Leader string `json:"leader,omitempty"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

// LeaseClient maintains a primary's lease with the arbiter in the
// background. The serving layer consults Check before dispatching a
// transaction and the WAL consults it before acking a flush; both
// paths fail closed the instant the lease lapses.
type LeaseClient struct {
	cfg LeaseConfig

	mu         sync.Mutex
	validUntil time.Time
	ttl        time.Duration
	fenced     bool
	leader     string
	lastErr    error

	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewLeaseClient starts the lease loop. It returns immediately; use
// WaitHeld to gate readiness on the first successful lease.
func NewLeaseClient(cfg LeaseConfig) (*LeaseClient, error) {
	if cfg.Addr == "" || cfg.Group == "" {
		return nil, errors.New("arbiter: LeaseConfig.Addr and Group are required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &LeaseClient{cfg: cfg, closed: make(chan struct{})}
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// Check reports whether this node may act as primary right now.
func (c *LeaseClient) Check() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fenced {
		return ErrLeaseFenced
	}
	if !c.validUntil.IsZero() && c.cfg.Clock.Now().Before(c.validUntil) {
		return nil
	}
	return ErrNoLease
}

// Leader returns the best-known current leader's announce address —
// ourselves while the lease is held, the new primary once fenced.
func (c *LeaseClient) Leader() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader != "" {
		return c.leader
	}
	return c.cfg.Announce
}

// Stats snapshots the lease state.
func (c *LeaseClient) Stats() LeaseStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return LeaseStats{
		Held:   !c.fenced && !c.validUntil.IsZero() && c.cfg.Clock.Now().Before(c.validUntil),
		Fenced: c.fenced,
		Epoch:  c.cfg.Epoch,
		Leader: c.leader,
		TTLMS:  c.ttl.Milliseconds(),
	}
}

// WaitHeld blocks until the lease is held, the client is fenced or
// closed, or d elapses. It returns true only if the lease is held.
func (c *LeaseClient) WaitHeld(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		if err := c.Check(); err == nil {
			return true
		} else if errors.Is(err, ErrLeaseFenced) {
			return false
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-c.closed:
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close stops the lease loop. The current lease is left to lapse.
func (c *LeaseClient) Close() {
	c.once.Do(func() { close(c.closed) })
	c.wg.Wait()
}

func (c *LeaseClient) run() {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		if c.session() {
			return // fenced or closed
		}
		// Connection lost: back off briefly and redial. The lease keeps
		// counting down on validUntil meanwhile.
		select {
		case <-c.closed:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// session runs one arbiter connection: register, then renew until the
// connection breaks. Returns true when the loop should stop for good
// (fenced or closed).
func (c *LeaseClient) session() bool {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		c.noteErr(err)
		return false
	}
	defer conn.Close()
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() { // unblock reads/writes on Close
		select {
		case <-c.closed:
			conn.Close()
		case <-sessionDone:
		}
	}()
	br := bufio.NewReader(conn)
	req := Msg{Type: MsgRegister, Role: RolePrimary, Group: c.cfg.Group, Epoch: c.cfg.Epoch, Addr: c.cfg.Announce}
	for {
		// Stamp validity from before the send: if the arbiter acks, the
		// lease is good for TTL from this instant, which is strictly
		// earlier than the arbiter's own receive-time deadline.
		sent := c.cfg.Clock.Now()
		if err := WriteMsg(conn, req); err != nil {
			c.noteErr(err)
			return false
		}
		reply, err := ReadMsg(br)
		if err != nil {
			c.noteErr(err)
			return false
		}
		switch reply.Type {
		case MsgLease:
			ttl := time.Duration(reply.TTLMS) * time.Millisecond
			c.mu.Lock()
			first := c.validUntil.IsZero()
			c.validUntil = sent.Add(ttl)
			c.ttl = ttl
			c.leader = reply.Leader
			c.lastErr = nil
			c.mu.Unlock()
			if first {
				c.cfg.Logf("lease acquired group=%s epoch=%d ttl=%v", c.cfg.Group, c.cfg.Epoch, ttl)
			}
			// Renew at TTL/3 so two renews can be lost before expiry.
			select {
			case <-c.closed:
				return true
			case <-time.After(ttl / 3):
			}
			req = Msg{Type: MsgRenew, Group: c.cfg.Group, Epoch: c.cfg.Epoch}
		case MsgFence:
			c.mu.Lock()
			c.fenced = true
			c.validUntil = time.Time{}
			if reply.Leader != "" {
				c.leader = reply.Leader
			}
			c.mu.Unlock()
			c.cfg.Logf("lease FENCED group=%s epoch=%d current=%d leader=%s err=%s", c.cfg.Group, c.cfg.Epoch, reply.Epoch, reply.Leader, reply.Err)
			return true
		default:
			c.noteErr(fmt.Errorf("arbiter: unexpected reply %q", reply.Type))
			return false
		}
	}
}

func (c *LeaseClient) noteErr(err error) {
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

// BackupConfig configures a backup's arbiter agent.
type BackupConfig struct {
	// Addr is the arbiter address; Group the shard-group. Required.
	Addr  string
	Group string
	// Announce is the address clients should dial once this backup is
	// promoted.
	Announce string
	// Seq reports the highest replica ship sequence applied locally —
	// the arbiter compares these across backups to pick the
	// most-caught-up grantee. Required.
	Seq func() uint64
	// ReportEvery paces lag reports (default 100ms).
	ReportEvery time.Duration
	// OnGrant runs exactly once when the arbiter grants this backup the
	// (bumped) epoch. The callee persists the epoch and begins serving;
	// the agent stops after the callback returns.
	OnGrant func(epoch uint64)
	// DialTimeout bounds each (re)connection attempt (default 2s).
	DialTimeout time.Duration
	// Logf, when set, receives one line per agent transition.
	Logf func(format string, args ...any)
}

// BackupAgent registers a backup with the arbiter, streams lag
// reports, and waits for a promotion grant.
type BackupAgent struct {
	cfg     BackupConfig
	closed  chan struct{}
	granted chan uint64
	once    sync.Once
	wg      sync.WaitGroup
}

// StartBackupAgent starts the agent loop.
func StartBackupAgent(cfg BackupConfig) (*BackupAgent, error) {
	if cfg.Addr == "" || cfg.Group == "" {
		return nil, errors.New("arbiter: BackupConfig.Addr and Group are required")
	}
	if cfg.Seq == nil {
		return nil, errors.New("arbiter: BackupConfig.Seq is required")
	}
	if cfg.ReportEvery <= 0 {
		cfg.ReportEvery = 100 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &BackupAgent{cfg: cfg, closed: make(chan struct{}), granted: make(chan uint64, 1)}
	a.wg.Add(1)
	go a.run()
	return a, nil
}

// Granted returns a channel that receives the granted epoch (at most
// once) when this backup is promoted.
func (a *BackupAgent) Granted() <-chan uint64 { return a.granted }

// Close stops the agent.
func (a *BackupAgent) Close() {
	a.once.Do(func() { close(a.closed) })
	a.wg.Wait()
}

func (a *BackupAgent) run() {
	defer a.wg.Done()
	for {
		select {
		case <-a.closed:
			return
		default:
		}
		if a.session() {
			return // granted or closed
		}
		select {
		case <-a.closed:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// session runs one arbiter connection. Returns true when the agent is
// done for good (granted or closed).
func (a *BackupAgent) session() bool {
	conn, err := net.DialTimeout("tcp", a.cfg.Addr, a.cfg.DialTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		select {
		case <-a.closed:
			conn.Close()
		case <-sessionDone:
		}
	}()
	br := bufio.NewReader(conn)
	req := Msg{Type: MsgRegister, Role: RoleBackup, Group: a.cfg.Group, Addr: a.cfg.Announce, Seq: a.cfg.Seq()}
	for {
		if err := WriteMsg(conn, req); err != nil {
			return false
		}
		reply, err := ReadMsg(br)
		if err != nil {
			return false
		}
		switch reply.Type {
		case MsgOK:
			select {
			case <-a.closed:
				return true
			case <-time.After(a.cfg.ReportEvery):
			}
			req = Msg{Type: MsgReport, Group: a.cfg.Group, Seq: a.cfg.Seq()}
		case MsgGrant:
			a.cfg.Logf("promotion grant group=%s epoch=%d", a.cfg.Group, reply.Epoch)
			select {
			case a.granted <- reply.Epoch:
			default:
			}
			if a.cfg.OnGrant != nil {
				a.cfg.OnGrant(reply.Epoch)
			}
			return true
		case MsgFence:
			a.cfg.Logf("backup agent fenced group=%s err=%s", a.cfg.Group, reply.Err)
			return false
		default:
			return false
		}
	}
}
